(* brokercheck — typed static analysis for the broker-set repo.

   Where brokerlint (tools/lint) walks the *Parsetree* and can only see
   spelling, brokercheck walks the *Typedtree*: it loads the [.cmt]
   files the ordinary dune build already produces ([Cmt_format]) and
   traverses them with [Tast_iterator], so every identifier is resolved
   to its defining path and every expression carries its inferred type.
   That is exactly the information the two rule families below need —
   an [int Atomic.t] and a plain [int ref] are indistinguishable to a
   syntactic pass, and "does this application allocate a closure"
   (partial application) is a typing fact, not a spelling fact.

   C1 [domain-safety]
     Compute the set of code reachable from the closures handed to the
     parallel fan-out points ([Parallel.strided], [Parallel.chunked],
     [Parallel.map_array], [Domain.spawn]) and, inside that set, flag
     writes to shared non-[Atomic] mutable state:
       - module-level [ref]s (and [incr]/[decr] on them),
       - mutable record fields of module-level values,
       - [Array.set]/[unsafe_set]/[fill]/[blit] (and [Bytes], [Hashtbl],
         [Queue], [Stack], [Buffer] mutators) whose target is
         module-level,
       - inside the worker closure itself, the same writes to values
         *captured* from the enclosing scope (shared across every
         worker spawned at that site).
     Values created inside the worker body are worker-local and free to
     mutate; writes through function parameters are the call site's
     responsibility (the spawning closure is where locality is checked).
     The strided-disjoint-writes idiom — every worker writes a distinct
     index of one shared array, as [Parallel.map_array] does — is
     blessed by annotating the binding [@brokercheck.owned].

   C2 [noalloc]
     For functions annotated [let[@brokercheck.noalloc] f ... = ...],
     reject allocating constructs in the typed body:
       - anywhere: closure construction and partial application (both
         allocate a closure block, and usually signal an accidental
         capture on a hot path);
       - inside [for]/[while] loops: tuples, records (including
         [ref]), non-constant constructors ([::] included), variant
         arguments, array literals, [lazy], boxed-float-returning
         applications, and a table of allocating stdlib calls
         ([Array.make], [@], [^], [List.map], ...).
     O(1) setup allocation before the loops (a handful of refs, a
     result record) is deliberately tolerated: the discipline protects
     the per-iteration path, which is what the zero-alloc workspaces in
     lib/graph/bfs.ml exist for.

   Findings are reported as [file:line:col: [rule] message]; a finding
   is suppressible with a comment containing
   [brokercheck: allow <rule>] on the offending line. Exit codes: 0
   clean, 1 findings, 2 usage/read error. *)

module Sset = Set.Make (String)

module Rule = struct
  type t = Domain_safety | Noalloc

  let name = function
    | Domain_safety -> "domain-safety"
    | Noalloc -> "noalloc"

  let id = function Domain_safety -> 1 | Noalloc -> 2
end

type violation = {
  file : string;
  line : int;
  col : int;
  rule : Rule.t;
  msg : string;
}

let violations : violation list ref = ref []

let report_loc (loc : Location.t) rule msg =
  let p = loc.loc_start in
  if p.pos_lnum >= 1 then
    violations :=
      {
        file = p.pos_fname;
        line = p.pos_lnum;
        col = p.pos_cnum - p.pos_bol;
        rule;
        msg;
      }
      :: !violations

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)
(* ------------------------------------------------------------------ *)

let source_root = ref "."
let source_lines : (string, string array) Hashtbl.t = Hashtbl.create 64

let load_lines file =
  match Hashtbl.find_opt source_lines file with
  | Some lines -> lines
  | None ->
      let path = Filename.concat !source_root file in
      let lines =
        match In_channel.with_open_bin path In_channel.input_all with
        | contents -> Array.of_list (String.split_on_char '\n' contents)
        | exception Sys_error _ -> [||]
      in
      Hashtbl.replace source_lines file lines;
      lines

(* Allocation-free substring probe (same discipline as brokerlint's). *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec eq i j = j >= nn || (haystack.[i + j] = needle.[j] && eq i (j + 1)) in
  let rec probe i = i + nn <= nh && (eq i 0 || probe (i + 1)) in
  nn = 0 || probe 0

let suppressed (v : violation) =
  let lines = load_lines v.file in
  v.line >= 1
  && v.line <= Array.length lines
  && contains_substring lines.(v.line - 1)
       ("brokercheck: allow " ^ Rule.name v.rule)

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)
(* ------------------------------------------------------------------ *)

(* Dune wraps libraries: the unit implementing [Bfs] is compiled as
   [Broker_graph__Bfs] and cross-library references resolve through the
   wrapper ([Broker_graph.Bfs.run]). Normalize both spellings to the
   same dotted name by rewriting every component to its segment after
   the last ["__"] (dropping pure-prefix components like
   [Broker_graph__]), then matching definitions against reference
   *suffixes* of length >= 2. The over-approximation when two libraries
   share a module name (graph/metrics.ml vs obs/metrics.ml) only ever
   widens the reachable set. *)
let norm_component s =
  let n = String.length s in
  let rec last_sep i found =
    if i >= n - 1 then found
    else if s.[i] = '_' && s.[i + 1] = '_' then last_sep (i + 2) (i + 2)
    else last_sep (i + 1) found
  in
  match last_sep 0 (-1) with
  | -1 -> s
  | i when i >= n -> ""
  | i -> String.sub s i (n - i)

let rec path_components = function
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_components p @ [ s ]
  | _ -> []

let norm_path p =
  List.filter_map
    (fun c ->
      let c' = norm_component c in
      if c' = "" then None else Some c')
    (path_components p)

let dotted = String.concat "."

(* All dotted suffixes of length >= 2, e.g. [A.B.f] -> ["A.B.f"; "B.f"]. *)
let suffixes2 comps =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | _ :: tl as l -> go (dotted l :: acc) tl
  in
  go [] comps

(* ------------------------------------------------------------------ *)
(* Per-unit model                                                      *)
(* ------------------------------------------------------------------ *)

type unit_info = {
  u_mod : string;  (** normalized unit module name, e.g. ["Bfs"] *)
  u_globals : Sset.t ref;
      (** unique keys of structure-level value idents (any module depth) *)
  u_structure : Typedtree.structure;
}

type def = {
  d_name : string;  (** full dotted name, e.g. ["Bfs.run"] *)
  d_unit : unit_info;
  d_body : Typedtree.expression;
}

(* Idents are stamped per unit; qualify with the unit name so keys are
   unique across the whole scan. *)
let ident_key u id = u.u_mod ^ "#" ^ Ident.unique_name id

let units : unit_info list ref = ref []
let defs_by_suffix : (string, def list) Hashtbl.t = Hashtbl.create 512
let noalloc_defs : (string * unit_info * Typedtree.value_binding) list ref =
  ref []

(* [@brokercheck.owned] bindings: local ones by ident key, module-level
   ones additionally by every dotted suffix of their full name. *)
let owned_idents : (string, unit) Hashtbl.t = Hashtbl.create 16
let owned_names : (string, unit) Hashtbl.t = Hashtbl.create 16

(* Locally let-bound functions, for resolving [~worker:f] roots. *)
let local_fns : (string, Typedtree.expression) Hashtbl.t = Hashtbl.create 256

type root =
  | Closure of unit_info * Typedtree.expression
      (** walked with capture tracking: writes to captured state flagged *)
  | Named of def  (** reachable function: module-level writes flagged *)

let roots : root list ref = ref []

let has_attr name (attrs : Parsetree.attributes) =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let vb_has_attr name (vb : Typedtree.value_binding) =
  has_attr name vb.vb_attributes || has_attr name vb.vb_expr.exp_attributes

let is_function_expr (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass A: collect definitions, globals, owned bindings, local fns     *)
(* ------------------------------------------------------------------ *)

let collect_unit (u : unit_info) =
  (* Structure-level values (module prefix tracked by hand so nested
     modules contribute qualified names). Functor bodies are skipped:
     their idents are not module-level state of this unit. *)
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let ids = Typedtree.pat_bound_idents vb.vb_pat in
            List.iter
              (fun id -> u.u_globals := Sset.add (ident_key u id) !(u.u_globals))
              ids;
            match ids with
            | [ id ] ->
                let full = prefix @ [ Ident.name id ] in
                let name = dotted full in
                if vb_has_attr "brokercheck.owned" vb then
                  List.iter
                    (fun s -> Hashtbl.replace owned_names s ())
                    (suffixes2 full);
                if vb_has_attr "brokercheck.noalloc" vb then
                  noalloc_defs := (name, u, vb) :: !noalloc_defs;
                if is_function_expr vb.vb_expr then begin
                  let d = { d_name = name; d_unit = u; d_body = vb.vb_expr } in
                  List.iter
                    (fun s ->
                      let prev =
                        Option.value ~default:[]
                          (Hashtbl.find_opt defs_by_suffix s)
                      in
                      Hashtbl.replace defs_by_suffix s (d :: prev))
                    (suffixes2 full)
                end
            | _ -> ())
          vbs
    | Tstr_module mb -> walk_module prefix mb
    | Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
    | Tstr_include inc -> walk_module_expr prefix inc.incl_mod
    | _ -> ()
  and walk_module prefix (mb : Typedtree.module_binding) =
    let sub =
      match mb.mb_id with
      | Some id -> prefix @ [ Ident.name id ]
      | None -> prefix
    in
    walk_module_expr sub mb.mb_expr
  and walk_module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> walk_structure prefix str
    | Tmod_constraint (me, _, _, _) -> walk_module_expr prefix me
    | _ -> ()
  in
  walk_structure [ u.u_mod ] u.u_structure;
  (* Every value binding anywhere: local function bodies (for resolving
     ident roots) and locally-owned bindings. *)
  let super = Tast_iterator.default_iterator in
  let value_binding it (vb : Typedtree.value_binding) =
    (match Typedtree.pat_bound_idents vb.vb_pat with
    | [ id ] ->
        if is_function_expr vb.vb_expr then
          Hashtbl.replace local_fns (ident_key u id) vb.vb_expr;
        if vb_has_attr "brokercheck.owned" vb then
          Hashtbl.replace owned_idents (ident_key u id) ()
    | ids ->
        if vb_has_attr "brokercheck.owned" vb then
          List.iter
            (fun id -> Hashtbl.replace owned_idents (ident_key u id) ())
            ids);
    super.value_binding it vb
  in
  let it = { super with value_binding } in
  it.structure it u.u_structure

(* ------------------------------------------------------------------ *)
(* Pass B: spawn sites and reference collection                        *)
(* ------------------------------------------------------------------ *)

let spawn_targets =
  [ "Parallel.strided"; "Parallel.chunked"; "Parallel.map_array"; "Domain.spawn" ]

(* Candidate dotted names a resolved path can be referred to by: its
   normalized spelling, and — for bare toplevel idents — the
   unit-qualified form ([chunked] inside parallel.ml is
   [Parallel.chunked]). *)
let candidate_names u p =
  let comps = norm_path p in
  let qualified =
    match p with
    | Path.Pident id when Sset.mem (ident_key u id) !(u.u_globals) ->
        [ [ u.u_mod; Ident.name id ] ]
    | _ -> []
  in
  comps :: qualified

let is_spawn_path u p =
  List.exists
    (fun comps ->
      List.exists (fun s -> List.mem s spawn_targets) (suffixes2 comps))
    (candidate_names u p)

let rec type_is_arrow ty =
  match Types.get_desc ty with
  | Tarrow _ -> true
  | Tpoly (t, _) -> type_is_arrow t
  | _ -> false

let resolve_defs comps =
  (* Longest suffix wins; all defs registered under it are taken. *)
  let rec go = function
    | [] | [ _ ] -> []
    | l -> (
        match Hashtbl.find_opt defs_by_suffix (dotted l) with
        | Some ds -> ds
        | None -> go (List.tl l))
  in
  go comps

let reference_targets u (e : Typedtree.expression) =
  (* Every resolved ident mentioned in [e], as candidate component lists
     for the reachability worklist. *)
  let acc = ref [] in
  let super = Tast_iterator.default_iterator in
  let expr it (ex : Typedtree.expression) =
    (match ex.exp_desc with
    | Texp_ident (p, _, _) -> acc := candidate_names u p @ !acc
    | _ -> ());
    super.expr it ex
  in
  let it = { super with expr } in
  it.expr it e;
  !acc

let collect_roots (u : unit_info) =
  let super = Tast_iterator.default_iterator in
  let add_root (arg : Typedtree.expression) =
    match arg.exp_desc with
    | Texp_function _ -> roots := Closure (u, arg) :: !roots
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem local_fns (ident_key u id) ->
        roots := Closure (u, Hashtbl.find local_fns (ident_key u id)) :: !roots
    | Texp_ident (p, _, _) ->
        List.iter
          (fun d -> roots := Named d :: !roots)
          (List.concat_map resolve_defs (candidate_names u p))
    | _ -> ()
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when is_spawn_path u p ->
        List.iter
          (fun ((lbl : Asttypes.arg_label), arg) ->
            match (lbl, arg) with
            | Asttypes.Labelled "worker", Some a -> add_root a
            | Asttypes.Nolabel, Some (a : Typedtree.expression)
              when is_function_expr a || type_is_arrow a.exp_type ->
                add_root a
            | _ -> ())
          args
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr } in
  it.structure it u.u_structure

(* ------------------------------------------------------------------ *)
(* C1 domain-safety walk                                               *)
(* ------------------------------------------------------------------ *)

(* Mutators of shared state, by fully-resolved path: the typedtree has
   already resolved [incr] to [Stdlib.incr], so a user-defined [incr]
   (e.g. Metrics.incr, which is Atomic-backed) never collides. The int
   is the index of the argument that names the mutated container. *)
let mutators =
  [
    ("Stdlib.:=", 0, "ref assignment");
    ("Stdlib.incr", 0, "Stdlib.incr");
    ("Stdlib.decr", 0, "Stdlib.decr");
    ("Stdlib.Array.set", 0, "Array.set");
    ("Stdlib.Array.unsafe_set", 0, "Array.unsafe_set");
    ("Stdlib.Array.fill", 0, "Array.fill");
    ("Stdlib.Array.blit", 2, "Array.blit (destination)");
    ("Stdlib.Bytes.set", 0, "Bytes.set");
    ("Stdlib.Bytes.unsafe_set", 0, "Bytes.unsafe_set");
    ("Stdlib.Bytes.fill", 0, "Bytes.fill");
    ("Stdlib.Bytes.blit", 2, "Bytes.blit (destination)");
    ("Stdlib.Hashtbl.add", 0, "Hashtbl.add");
    ("Stdlib.Hashtbl.replace", 0, "Hashtbl.replace");
    ("Stdlib.Hashtbl.remove", 0, "Hashtbl.remove");
    ("Stdlib.Hashtbl.reset", 0, "Hashtbl.reset");
    ("Stdlib.Hashtbl.clear", 0, "Hashtbl.clear");
    ("Stdlib.Queue.add", 0, "Queue.add");
    ("Stdlib.Queue.push", 0, "Queue.push");
    ("Stdlib.Queue.pop", 0, "Queue.pop");
    ("Stdlib.Queue.take", 0, "Queue.take");
    ("Stdlib.Queue.clear", 0, "Queue.clear");
    ("Stdlib.Stack.push", 1, "Stack.push");
    ("Stdlib.Stack.pop", 0, "Stack.pop");
    ("Stdlib.Stack.clear", 0, "Stack.clear");
    ("Stdlib.Buffer.add_string", 0, "Buffer.add_string");
    ("Stdlib.Buffer.add_char", 0, "Buffer.add_char");
    ("Stdlib.Buffer.add_buffer", 0, "Buffer.add_buffer");
    ("Stdlib.Buffer.clear", 0, "Buffer.clear");
    ("Stdlib.Buffer.reset", 0, "Buffer.reset");
  ]

(* A unit-local redefinition of e.g. [:=] resolves to a different path,
   so matching the fully-resolved [Stdlib.*] name never shadow-fires. *)
let mutator_of p =
  let name = dotted (norm_path p) in
  List.find_opt (fun (m, _, _) -> m = name) mutators
  |> Option.map (fun (_, i, what) -> (i, what))

(* Syntactic owner of a write target: [x], [x.f], [x.f.(i)] all resolve
   to [x]; anything without a stable head (function results, match
   scrutinee temporaries) resolves to [None] and is given the benefit of
   the doubt — the analysis is a reviewed gate, not a proof. *)
let rec head_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> head_path e
  | Texp_open (_, e) -> head_path e
  | _ -> None

type locality = Local | Global of string | Captured of string

let classify ~u ~locals p =
  match p with
  | Path.Pdot _ -> Global (dotted (norm_path p))
  | Path.Pident id ->
      let key = ident_key u id in
      if Sset.mem key !locals then Local
      else if Sset.mem (ident_key u id) !(u.u_globals) then
        Global (dotted [ u.u_mod; Ident.name id ])
      else Captured (Ident.name id)
  | _ -> Local

let owned ~u p =
  match p with
  | Path.Pident id -> Hashtbl.mem owned_idents (ident_key u id)
  | Path.Pdot _ ->
      List.exists
        (fun s -> Hashtbl.mem owned_names s)
        (suffixes2 (norm_path p))
  | _ -> false

let check_write ~u ~locals ~in_closure (target : Typedtree.expression)
    (loc : Location.t) what =
  match head_path target with
  | None -> ()
  | Some p ->
      if not (owned ~u p) then begin
        match classify ~u ~locals p with
        | Local -> ()
        | Global name ->
            report_loc loc Rule.Domain_safety
              (Printf.sprintf
                 "%s on module-level mutable state '%s' reachable from a \
                  parallel worker; use an Atomic.t cell, confine the write \
                  to one domain, or mark the binding [@brokercheck.owned] \
                  if writes are provably disjoint"
                 what name)
        | Captured name when in_closure ->
            report_loc loc Rule.Domain_safety
              (Printf.sprintf
                 "%s on '%s', captured by a parallel worker closure and \
                  shared across workers; allocate it inside the worker, \
                  use Atomic, or mark the binding [@brokercheck.owned] if \
                  writes are provably disjoint"
                 what name)
        | Captured _ -> ()
      end

(* Walk one root/reachable body. [in_closure] distinguishes a worker
   closure (captures are shared across workers: flagged) from a named
   reachable function (its frame is per-call, hence per-worker: only
   module-level state is shared). *)
let c1_walk ~u ~in_closure (e : Typedtree.expression) =
  let locals = ref Sset.empty in
  let add_ident id = locals := Sset.add (ident_key u id) !locals in
  let super = Tast_iterator.default_iterator in
  let pat (type k) it (p : k Typedtree.general_pattern) =
    List.iter add_ident (Typedtree.pat_bound_idents p);
    super.pat it p
  in
  let expr it (ex : Typedtree.expression) =
    (match ex.exp_desc with
    | Texp_function { param; _ } -> add_ident param
    | Texp_for (id, _, _, _, _, _) -> add_ident id
    | Texp_let (_, vbs, _) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            List.iter add_ident (Typedtree.pat_bound_idents vb.vb_pat))
          vbs
    | Texp_setfield (target, lid, ld, _) ->
        ignore lid;
        check_write ~u ~locals ~in_closure target ex.exp_loc
          (Printf.sprintf "write to mutable field '%s'" ld.lbl_name)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match mutator_of p with
        | None -> ()
        | Some (idx, what) -> (
            match List.nth_opt args idx with
            | Some (_, Some target) ->
                check_write ~u ~locals ~in_closure target ex.exp_loc what
            | _ -> ()))
    | _ -> ());
    super.expr it ex
  in
  let it = { super with expr; pat } in
  it.expr it e

(* ------------------------------------------------------------------ *)
(* C2 noalloc walk                                                     *)
(* ------------------------------------------------------------------ *)

let allocating_calls =
  [
    "Stdlib.ref"; "Stdlib.@"; "Stdlib.^"; "Stdlib.^^";
    "Stdlib.Array.make"; "Stdlib.Array.create_float"; "Stdlib.Array.init";
    "Stdlib.Array.copy"; "Stdlib.Array.append"; "Stdlib.Array.sub";
    "Stdlib.Array.concat"; "Stdlib.Array.of_list"; "Stdlib.Array.to_list";
    "Stdlib.Array.make_matrix"; "Stdlib.Array.map"; "Stdlib.Array.mapi";
    "Stdlib.List.init"; "Stdlib.List.map"; "Stdlib.List.mapi";
    "Stdlib.List.rev"; "Stdlib.List.rev_append"; "Stdlib.List.append";
    "Stdlib.List.concat"; "Stdlib.List.concat_map"; "Stdlib.List.flatten";
    "Stdlib.List.filter"; "Stdlib.List.filter_map"; "Stdlib.List.cons";
    "Stdlib.List.sort"; "Stdlib.List.stable_sort"; "Stdlib.List.sort_uniq";
    "Stdlib.List.merge";
    "Stdlib.Bytes.create"; "Stdlib.Bytes.make"; "Stdlib.Bytes.copy";
    "Stdlib.Bytes.sub"; "Stdlib.Bytes.cat"; "Stdlib.Bytes.of_string";
    "Stdlib.Bytes.to_string";
    "Stdlib.String.make"; "Stdlib.String.init"; "Stdlib.String.sub";
    "Stdlib.String.concat"; "Stdlib.String.cat"; "Stdlib.String.map";
    "Stdlib.Printf.sprintf"; "Stdlib.Format.asprintf";
    "Stdlib.Buffer.create"; "Stdlib.Buffer.contents";
    "Stdlib.Seq.map"; "Stdlib.Seq.filter";
  ]

let is_float_type ty =
  match Types.get_desc ty with
  | Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

(* The curried parameter chain of an annotated binding: descend through
   single-case [Texp_function] layers (each is a declared parameter, not
   an allocation) and the lets the type checker inserts for optional-
   argument defaults; anything else starts the real body. *)
let param_chain (e : Typedtree.expression) =
  let marked = ref [] in
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_function { cases = [ { c_rhs; _ } ]; _ } ->
        marked := e :: !marked;
        go c_rhs
    | Texp_function _ -> marked := e :: !marked
    | Texp_let (_, _, body) -> go body
    | _ -> ()
  in
  go e;
  !marked

let c2_walk ~fname (vb : Typedtree.value_binding) =
  let params = param_chain vb.vb_expr in
  let is_param e = List.memq e params in
  let loop_depth = ref 0 in
  let flag loc what =
    report_loc loc Rule.Noalloc
      (Printf.sprintf "[@brokercheck.noalloc] %s: %s" fname what)
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_function _ when not (is_param e) ->
        flag e.exp_loc
          "closure construction allocates (and captures); lift the \
           function out of the kernel or inline it"
    | Texp_apply _ when type_is_arrow e.exp_type ->
        flag e.exp_loc
          "partial application allocates a closure; apply all arguments \
           or eta-expand at definition site"
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when !loop_depth > 0
           && List.mem (dotted (norm_path p)) allocating_calls ->
        flag e.exp_loc
          (Printf.sprintf "allocating call %s inside a loop"
             (dotted (norm_path p)))
    | Texp_apply _ when !loop_depth > 0 && is_float_type e.exp_type ->
        flag e.exp_loc
          "boxed float produced inside a loop; keep the hot path in \
           integers or hoist the float math out of the loop"
    | Texp_tuple _ when !loop_depth > 0 ->
        flag e.exp_loc "tuple allocation inside a loop"
    | Texp_record _ when !loop_depth > 0 ->
        flag e.exp_loc "record allocation inside a loop"
    | Texp_construct (_, cd, _ :: _) when !loop_depth > 0 ->
        flag e.exp_loc
          (Printf.sprintf "constructor %s with arguments allocates inside \
                           a loop"
             cd.cstr_name)
    | Texp_variant (_, Some _) when !loop_depth > 0 ->
        flag e.exp_loc "variant argument allocates inside a loop"
    | Texp_array (_ :: _) when !loop_depth > 0 ->
        flag e.exp_loc "array literal allocates inside a loop"
    | Texp_lazy _ when !loop_depth > 0 ->
        flag e.exp_loc "lazy block allocates inside a loop"
    | _ -> ());
    match e.exp_desc with
    | Texp_for (_, _, lo, hi, _, body) ->
        it.Tast_iterator.expr it lo;
        it.Tast_iterator.expr it hi;
        incr loop_depth;
        it.Tast_iterator.expr it body;
        decr loop_depth
    | Texp_while (cond, body) ->
        incr loop_depth;
        it.Tast_iterator.expr it cond;
        it.Tast_iterator.expr it body;
        decr loop_depth
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  it.expr it vb.vb_expr

(* ------------------------------------------------------------------ *)
(* cmt discovery and loading                                           *)
(* ------------------------------------------------------------------ *)

let has_suffix s suf =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

(* Unlike brokerlint's source scan, dot-directories are included: dune
   keeps compiled artifacts under [.<lib>.objs/byte/]. *)
let rec collect_cmt acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc e -> collect_cmt acc (Filename.concat path e)) acc
  else if has_suffix path ".cmt" then path :: acc
  else acc

let load_unit file =
  let infos = Cmt_format.read_cmt file in
  match infos.cmt_annots with
  | Cmt_format.Implementation str ->
      let m = norm_component infos.cmt_modname in
      if m = "" then None
      else
        Some { u_mod = m; u_globals = ref Sset.empty; u_structure = str }
  | _ -> None
  | exception exn ->
      Printf.eprintf "brokercheck: cannot read %s (%s)\n" file
        (Printexc.to_string exn);
      exit 2

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage =
  "brokercheck [--source-root DIR] [path ...]\n\
   Check the .cmt files under the given files/directories (default: lib).\n\
  \  --source-root DIR  prefix for source paths when reading suppression\n\
  \                     comments (default: .)\n\
   Exit codes: 0 clean, 1 findings, 2 usage or read error."

let () =
  let paths = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
      | "--source-root" ->
          if i + 1 >= Array.length Sys.argv then begin
            prerr_endline "brokercheck: --source-root needs an argument";
            exit 2
          end;
          source_root := Sys.argv.(i + 1);
          parse (i + 2);
          raise Exit
      | "--help" | "-help" ->
          print_endline usage;
          exit 0
      | arg when String.length arg > 0 && arg.[0] = '-' ->
          prerr_endline ("brokercheck: unknown option " ^ arg);
          prerr_endline usage;
          exit 2
      | arg -> paths := arg :: !paths);
      parse (i + 1)
    end
  in
  (try parse 1 with Exit -> ());
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let files =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then begin
          prerr_endline ("brokercheck: no such file or directory: " ^ p);
          exit 2
        end;
        List.rev (collect_cmt [] p))
      paths
  in
  if files = [] then begin
    prerr_endline
      "brokercheck: no .cmt files found (build the libraries first: the \
       @check alias depends on them)";
    exit 2
  end;
  units := List.filter_map load_unit files;
  List.iter collect_unit !units;
  List.iter collect_roots !units;
  (* Reachability: walk roots, then the transitive closure of referenced
     definitions, flagging C1 writes as we go. *)
  let seen_defs : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let seen_closures : (Typedtree.expression * unit_info) list ref = ref [] in
  let queue = Queue.create () in
  List.iter (fun r -> Queue.add r queue) !roots;
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | Closure (u, e) ->
        if
          not
            (List.exists
               (fun (e', u') -> e' == e && u' == u)
               !seen_closures)
        then begin
          seen_closures := (e, u) :: !seen_closures;
          c1_walk ~u ~in_closure:true e;
          List.iter
            (fun comps ->
              List.iter (fun d -> Queue.add (Named d) queue) (resolve_defs comps))
            (reference_targets u e)
        end
    | Named d ->
        if not (Hashtbl.mem seen_defs d.d_name) then begin
          Hashtbl.replace seen_defs d.d_name ();
          c1_walk ~u:d.d_unit ~in_closure:false d.d_body;
          List.iter
            (fun comps ->
              List.iter (fun d' -> Queue.add (Named d') queue) (resolve_defs comps))
            (reference_targets d.d_unit d.d_body)
        end
  done;
  (* C2 on every annotated binding. *)
  List.iter (fun (name, _, vb) -> c2_walk ~fname:name vb) !noalloc_defs;
  (* Sort, dedup per (file, line, rule), then drop suppressed findings —
     one cached line lookup per surviving diagnostic. *)
  let sorted =
    List.sort_uniq
      (fun (a : violation) (b : violation) ->
        let c = String.compare a.file b.file in
        if c <> 0 then c
        else
          let c = Int.compare a.line b.line in
          if c <> 0 then c
          else
            let c = Int.compare (Rule.id a.rule) (Rule.id b.rule) in
            if c <> 0 then c else Int.compare a.col b.col)
      !violations
  in
  let deduped =
    List.fold_left
      (fun acc (v : violation) ->
        match acc with
        | prev :: _
          when prev.file = v.file && prev.line = v.line && prev.rule = v.rule
          ->
            acc
        | _ -> v :: acc)
      [] sorted
    |> List.rev
  in
  let live = List.filter (fun v -> not (suppressed v)) deduped in
  List.iter
    (fun v ->
      Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col
        (Rule.name v.rule) v.msg)
    live;
  match live with
  | [] -> ()
  | vs ->
      Printf.eprintf "brokercheck: %d finding(s) in %d file(s)\n"
        (List.length vs)
        (List.length
           (List.sort_uniq String.compare
              (List.map (fun (v : violation) -> v.file) vs)));
      exit 1
