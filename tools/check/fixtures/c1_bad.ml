(* Seeded domain-safety races: writes to shared mutable state from a
   parallel worker. The fixture carries its own [Parallel] so the spawn
   site resolves without depending on the real libraries. *)

module Parallel = struct
  let strided ~n ~worker ~merge init =
    ignore n;
    merge init (worker ~start:0 ~step:1)
end

let total = ref 0
let hits = Array.make 8 0

type cell = { mutable value : int }

let shared = { value = 0 }

(* Not itself a worker, but reachable from one: its global write below
   must still be flagged. *)
let bump () = total := !total + 1

let race n =
  let local_sum = ref 0 in
  Parallel.strided ~n
    ~worker:(fun ~start ~step ->
      let i = ref start in
      while !i < n do
        total := !total + !i;
        hits.(!i mod 8) <- 1;
        shared.value <- !i;
        local_sum := !local_sum + !i;
        bump ();
        i := !i + step
      done;
      !local_sum)
    ~merge:( + ) 0
