(* Same race as c1_bad.ml, silenced by a suppression comment on the
   offending line: the file must check clean. *)

module Parallel = struct
  let strided ~n ~worker ~merge init =
    ignore n;
    merge init (worker ~start:0 ~step:1)
end

let total = ref 0

let bump n =
  Parallel.strided ~n
    ~worker:(fun ~start ~step ->
      ignore step;
      total := !total + start (* brokercheck: allow domain-safety *))
    ~merge:(fun () () -> ()) ()
