(* Zero-alloc kernels that must pass: O(1) setup allocation before the
   loop is tolerated by design; the per-iteration path is pure int
   arithmetic on preallocated arrays. *)

let[@brokercheck.noalloc] prefix_sums src =
  let n = Array.length src in
  let out = Array.make (n + 1) 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + src.(i);
    out.(i + 1) <- !acc
  done;
  out

let[@brokercheck.noalloc] count_even a =
  let c = ref 0 in
  for i = 0 to Array.length a - 1 do
    if a.(i) land 1 = 0 then incr c
  done;
  !c
