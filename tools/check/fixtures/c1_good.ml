(* Domain-safe counterparts of c1_bad.ml: cross-domain accumulation goes
   through Atomic, per-worker scratch lives inside the worker closure,
   and the one shared array is written at provably disjoint strided
   indices under the owned annotation. *)

module Parallel = struct
  let strided ~n ~worker ~merge init =
    ignore n;
    merge init (worker ~start:0 ~step:1)
end

let total = Atomic.make 0

let sum n =
  Parallel.strided ~n
    ~worker:(fun ~start ~step ->
      let acc = ref 0 in
      let i = ref start in
      while !i < n do
        acc := !acc + !i;
        i := !i + step
      done;
      Atomic.fetch_and_add total !acc)
    ~merge:(fun a _ -> a) 0

let fill n =
  let[@brokercheck.owned] out = Array.make (max n 1) 0 in
  let () =
    Parallel.strided ~n
      ~worker:(fun ~start ~step ->
        let i = ref start in
        while !i < n do
          out.(!i) <- !i;
          i := !i + step
        done)
      ~merge:(fun () () -> ()) ()
  in
  out
