(* Seeded allocations inside [@brokercheck.noalloc] bodies, one per
   construct class the rule rejects. *)

let[@brokercheck.noalloc] sum_pairs a b =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    let p = (a.(i), b.(i)) in
    acc := !acc + fst p + snd p
  done;
  !acc

let[@brokercheck.noalloc] collect n =
  let out = ref [] in
  for i = 0 to n - 1 do
    out := i :: !out
  done;
  !out

let[@brokercheck.noalloc] scaled xs =
  let acc = ref 0 in
  for i = 0 to Array.length xs - 1 do
    acc := !acc + int_of_float (float_of_int xs.(i) *. 2.0)
  done;
  !acc

let[@brokercheck.noalloc] with_closure base xs =
  let f = fun x -> x + base in
  Array.map f xs

let[@brokercheck.noalloc] partial xs = List.map (( + ) 1) xs
