(* brokerlint — project-specific static analysis for the broker-set repo.

   A small compiler-libs lint pass: every [.ml] under the scanned
   directories is parsed with {!Pparse} and walked with {!Ast_iterator};
   violations are reported as [file:line:col: [rule] message] on stdout
   and the process exits non-zero if any were found.

   The rules encode the invariants HACKING.md argues for — the paper's
   headline connectivity numbers are only reproducible if every algorithm
   is deterministic and every sort comparator is well-defined:

   - R1 [no-poly-compare]: the polymorphic [compare] (or [=], [<], ...)
     must not be passed to [Array.sort]/[List.sort] anywhere, and bare
     [compare] must not appear at all in library code. Polymorphic
     compares on floats/records are both slower in the O(n log n) hot
     sorts and a trap once a type grows a field whose structural order is
     meaningless (closures raise at runtime).
   - R2 [determinism]: no [Random.self_init] anywhere; no [Stdlib.Random]
     or [Unix.gettimeofday] in library code outside
     [lib/util/xrandom.ml]. All stochastic code draws from the seeded
     [Xrandom] streams.
   - R3 [mli-complete]: every library [.ml] has a sibling [.mli] — the
     interface files carry the documentation and keep internals private.
   - R4 [domain-confinement]: [Domain.spawn] only inside
     [lib/util/parallel.ml]; ad-hoc domains escape the deterministic
     chunk-merge discipline (and its [REPRO_DOMAINS] override).
   - R5 [no-stdout-in-lib]: [print_*]/[Printf.printf]/[Format.printf]/
     [Fmt.pr]/[exit] are banned in library code — print on an explicit
     formatter (or [Logs]) so output is redirectable and libraries never
     terminate the process.
   - R6 [no-list-nth]: [List.nth] and [( @ )] inside [for]/[while] loop
     bodies are almost always accidentally-quadratic; index an array or
     restructure.
   - R7 [report-pure]: experiment modules (lib/experiments/) must not
     print through the retired [Ctx] output helpers ([Ctx.printf],
     [Ctx.table], ...); they build a [Broker_report.Report.t] and let the
     harness pick a backend. Applies automatically under
     [lib/experiments/]; [--experiments] forces it (fixture/test mode).
   - R8 [clock-discipline]: [Unix.gettimeofday] and [Sys.time] are banned
     everywhere except [lib/obs/] (the sanctioned monotonic clock) and
     [bench/] (hand-rolled harness timing). Ad-hoc clocks fragment the
     timing story: time through [Broker_obs.Clock] so probes stay behind
     the single observability switch.
   - R9 [no-unsafe-obj]: [Obj.magic]/[Obj.repr]/[Obj.obj] are banned
     everywhere (they defeat the type system the typed checker in
     tools/check relies on); in library code the polymorphic hash
     surface ([Hashtbl.hash]/[hash_param]/[seeded_hash]/[randomize] and
     [Hashtbl.create ~random:true]) is banned too — randomized or
     structural hashing breaks the determinism story the same way
     polymorphic compare does.

   Any finding is suppressible by putting [(* brokerlint: allow <rule> *)]
   on the offending line. *)

let scanned_dirs_default = [ "lib"; "bin"; "bench"; "examples" ]

module Rule = struct
  type t =
    | No_poly_compare
    | Determinism
    | Mli_complete
    | Domain_confinement
    | No_stdout_in_lib
    | No_list_nth
    | Report_pure
    | Clock_discipline
    | No_unsafe_obj

  let name = function
    | No_poly_compare -> "no-poly-compare"
    | Determinism -> "determinism"
    | Mli_complete -> "mli-complete"
    | Domain_confinement -> "domain-confinement"
    | No_stdout_in_lib -> "no-stdout-in-lib"
    | No_list_nth -> "no-list-nth"
    | Report_pure -> "report-pure"
    | Clock_discipline -> "clock-discipline"
    | No_unsafe_obj -> "no-unsafe-obj"

  (* Total order for stable reports: file, then line, then rule id. *)
  let id = function
    | No_poly_compare -> 1
    | Determinism -> 2
    | Mli_complete -> 3
    | Domain_confinement -> 4
    | No_stdout_in_lib -> 5
    | No_list_nth -> 6
    | Report_pure -> 7
    | Clock_discipline -> 8
    | No_unsafe_obj -> 9
end

type violation = {
  file : string;
  line : int;
  col : int;
  rule : Rule.t;
  msg : string;
}

(* ------------------------------------------------------------------ *)
(* Suppression comments                                                *)
(* ------------------------------------------------------------------ *)

let source_lines : (string, string array) Hashtbl.t = Hashtbl.create 64

let load_lines file =
  match Hashtbl.find_opt source_lines file with
  | Some lines -> lines
  | None ->
      let lines =
        match In_channel.with_open_bin file In_channel.input_all with
        | contents -> Array.of_list (String.split_on_char '\n' contents)
        | exception Sys_error _ -> [||]
      in
      Hashtbl.replace source_lines file lines;
      lines

(* Character-by-character probe: no [String.sub] garbage per candidate
   offset (this runs once per source line scanned for a suppression). *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec eq i j = j >= nn || (haystack.[i + j] = needle.[j] && eq i (j + 1)) in
  let rec probe i = i + nn <= nh && (eq i 0 || probe (i + 1)) in
  nn = 0 || probe 0

let suppressed (v : violation) =
  let lines = load_lines v.file in
  v.line >= 1
  && v.line <= Array.length lines
  && contains_substring lines.(v.line - 1)
       ("brokerlint: allow " ^ Rule.name v.rule)

(* ------------------------------------------------------------------ *)
(* Violation accumulation                                              *)
(* ------------------------------------------------------------------ *)

(* Raw accumulation only: suppression comments are applied once per
   deduplicated (file, line, rule) diagnostic in the driver, not per AST
   hit — a line that fires a rule through many nodes costs one source
   lookup instead of one per node. *)
let violations : violation list ref = ref []

let report ~file ~line ~col rule msg =
  violations := { file; line; col; rule; msg } :: !violations

let report_loc ~file (loc : Location.t) rule msg =
  let p = loc.loc_start in
  report ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) rule msg

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

(* Flatten a dotted path, erasing an explicit [Stdlib.] prefix so that
   [Stdlib.compare] and [compare] are the same identifier to the rules.
   Functor applications cannot name the entities we ban. *)
let path lid =
  let rec flatten acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (t, s) -> flatten (s :: acc) t
    | Longident.Lapply _ -> []
  in
  match flatten [] lid with "Stdlib" :: rest -> rest | p -> p

let is_sort_function = function
  | [ "Array"; ("sort" | "stable_sort" | "fast_sort") ]
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ] ->
      true
  | _ -> false

let is_poly_comparator = function
  | [ ("compare" | "=" | "<" | ">" | "<=" | ">=" | "<>") ] -> true
  | _ -> false

(* The retired [Ctx] output surface: any dotted path ending in
   [Ctx.<one of these>] is a text-backend bypass in an experiment module. *)
let is_ctx_output = function
  | "printf" | "table" | "section" | "out" | "set_out" | "flush_out" -> true
  | _ -> false

let ends_in_ctx_output p =
  match List.rev p with op :: "Ctx" :: _ -> is_ctx_output op | _ -> false

let is_stdout_printer = function
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_bytes" | "print_int" | "print_float" | "exit" );
    ] ->
      true
  | [ "Printf"; "printf" ] | [ "Fmt"; "pr" ] -> true
  | [ "Format"; f ] ->
      f = "printf" || String.length f >= 6 && String.sub f 0 6 = "print_"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The AST walk                                                        *)
(* ------------------------------------------------------------------ *)

type file_ctx = {
  file : string;  (** path as reported in diagnostics *)
  in_lib : bool;  (** library-code rules (R1-bare, R2, R5) apply *)
  in_experiments : bool;  (** experiment-module rules (R7) apply *)
  rng_exempt : bool;  (** this file IS the sanctioned RNG module *)
  spawn_exempt : bool;  (** this file IS the sanctioned parallel runner *)
  clock_exempt : bool;  (** lib/obs/ or bench/: ad-hoc clocks allowed *)
}

let check_ident ctx ~loop_depth p loc =
  let report rule msg = report_loc ~file:ctx.file loc rule msg in
  match p with
  | [ "compare" ] when ctx.in_lib ->
      report Rule.No_poly_compare
        "bare polymorphic compare in library code; use Int.compare, \
         Float.compare, String.compare or an explicit comparator"
  | [ "Random"; "self_init" ] ->
      report Rule.Determinism
        "Random.self_init makes runs irreproducible; seed Xrandom.create \
         explicitly"
  | "Random" :: _ when ctx.in_lib && not ctx.rng_exempt ->
      report Rule.Determinism
        "Stdlib.Random in library code; draw from Broker_util.Xrandom streams"
  | [ "Unix"; "gettimeofday" ] ->
      if ctx.in_lib then
        report Rule.Determinism
          "wall-clock in library code breaks reproducibility; thread an \
           explicit seed or clock";
      if not ctx.clock_exempt then
        report Rule.Clock_discipline
          "Unix.gettimeofday outside lib/obs/ and bench/; time through \
           Broker_obs.Clock so probes stay behind the observability switch"
  | [ "Sys"; "time" ] when not ctx.clock_exempt ->
      report Rule.Clock_discipline
        "Sys.time outside lib/obs/ and bench/; use Broker_obs.Clock.time \
         (monotonic, observability-gated sinks)"
  | [ "Domain"; "spawn" ] when not ctx.spawn_exempt ->
      report Rule.Domain_confinement
        "Domain.spawn outside lib/util/parallel.ml; use Parallel.chunked / \
         Parallel.map_array"
  | p when ctx.in_experiments && ends_in_ctx_output p ->
      report Rule.Report_pure
        (Printf.sprintf
           "%s in an experiment module; build a Broker_report.Report.t and \
            let the harness pick a backend"
           (String.concat "." p))
  | p when ctx.in_lib && is_stdout_printer p ->
      report Rule.No_stdout_in_lib
        (Printf.sprintf
           "%s in library code; print via Fmt on an explicit formatter (or \
            Logs)"
           (String.concat "." p))
  | [ "Obj"; (("magic" | "repr" | "obj") as f) ] ->
      report Rule.No_unsafe_obj
        (Printf.sprintf
           "Obj.%s defeats the type system (and the typed checks in \
            tools/check); restructure with a variant or GADT"
           f)
  | [ "Hashtbl"; (("hash" | "hash_param" | "seeded_hash") as f) ]
    when ctx.in_lib ->
      report Rule.No_unsafe_obj
        (Printf.sprintf
           "Hashtbl.%s is the polymorphic structural hash; like polymorphic \
            compare it silently changes meaning as types grow — key on an \
            explicit int/string instead"
           f)
  | [ "Hashtbl"; "randomize" ] when ctx.in_lib ->
      report Rule.No_unsafe_obj
        "Hashtbl.randomize makes iteration order vary across runs; library \
         containers must stay deterministic"
  | [ "List"; "nth" ] when loop_depth > 0 ->
      report Rule.No_list_nth
        "List.nth inside a loop body is quadratic; index an array instead"
  | [ "@" ] when loop_depth > 0 ->
      report Rule.No_list_nth
        "list append inside a loop body is quadratic; accumulate and reverse \
         once"
  | _ -> ()

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  let loop_depth = ref 0 in
  let expr iter (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args)
      when is_sort_function (path f) ->
        List.iter
          (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
            match arg.pexp_desc with
            | Pexp_ident { txt; _ } when is_poly_comparator (path txt) ->
                report_loc ~file:ctx.file arg.pexp_loc Rule.No_poly_compare
                  (Printf.sprintf
                     "polymorphic comparator passed to %s; use a monomorphic \
                      comparator (Int.compare, Float.compare, ...)"
                     (String.concat "." (path f)))
            | _ -> ())
          args
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args)
      when ctx.in_lib
           && path f = [ "Hashtbl"; "create" ]
           && List.exists
                (fun ((lbl, arg) : Asttypes.arg_label * Parsetree.expression) ->
                  match (lbl, arg.pexp_desc) with
                  | ( (Asttypes.Labelled "random" | Asttypes.Optional "random"),
                      Pexp_construct ({ txt = Longident.Lident "false"; _ }, None)
                    ) ->
                      false
                  | (Asttypes.Labelled "random" | Asttypes.Optional "random"), _
                    ->
                      true
                  | _ -> false)
                args ->
        report_loc ~file:ctx.file e.pexp_loc Rule.No_unsafe_obj
          "Hashtbl.create ~random makes iteration order vary across runs; \
           library containers must stay deterministic (the non-randomized \
           default is fine)"
    | Pexp_ident { txt; _ } ->
        check_ident ctx ~loop_depth:!loop_depth (path txt) e.pexp_loc
    | _ -> ());
    match e.pexp_desc with
    | Pexp_for (pat, lo, hi, _, body) ->
        (* Bounds are evaluated once, outside the loop. *)
        iter.Ast_iterator.pat iter pat;
        iter.Ast_iterator.expr iter lo;
        iter.Ast_iterator.expr iter hi;
        incr loop_depth;
        iter.Ast_iterator.expr iter body;
        decr loop_depth
    | Pexp_while (cond, body) ->
        (* The condition re-runs every iteration: it is loop body too. *)
        incr loop_depth;
        iter.Ast_iterator.expr iter cond;
        iter.Ast_iterator.expr iter body;
        decr loop_depth
    | _ -> super.Ast_iterator.expr iter e
  in
  { super with Ast_iterator.expr }

(* ------------------------------------------------------------------ *)
(* File discovery and per-file scan                                    *)
(* ------------------------------------------------------------------ *)

let normalize f =
  let f = if String.length f > 2 && String.sub f 0 2 = "./" then String.sub f 2 (String.length f - 2) else f in
  String.concat "/" (String.split_on_char Filename.dir_sep.[0] f)

let is_lib_path f =
  let f = normalize f in
  (String.length f >= 4 && String.sub f 0 4 = "lib/") || contains_substring f "/lib/"

let is_experiments_path f = contains_substring (normalize f) "lib/experiments/"

(* R8 exemptions: the observability clock implementation itself, and the
   bench harness (hand-timed full-scale runs, Bechamel already owns the
   clock there). *)
let is_clock_exempt_path f =
  let f = normalize f in
  contains_substring f "lib/obs/"
  || (String.length f >= 6 && String.sub f 0 6 = "bench/")
  || contains_substring f "/bench/"

let has_suffix s suf =
  let ns = String.length s and nf = String.length suf in
  ns >= nf && String.sub s (ns - nf) nf = suf

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry <> "" && entry.[0] = '.' then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if has_suffix path ".ml" then path :: acc
  else acc

let parse_implementation file =
  (* Pparse rather than Parse: it honours any -pp/-ppx configuration and
     produces locations already anchored to [file]. *)
  Pparse.parse_implementation ~tool_name:"brokerlint" file

let scan_file ~force_lib ~force_experiments file =
  let file = normalize file in
  let in_lib = force_lib || is_lib_path file in
  let ctx =
    {
      file;
      in_lib;
      in_experiments = force_experiments || is_experiments_path file;
      rng_exempt = has_suffix file "lib/util/xrandom.ml";
      spawn_exempt = has_suffix file "lib/util/parallel.ml";
      clock_exempt = is_clock_exempt_path file;
    }
  in
  if in_lib && not (Sys.file_exists (file ^ "i")) then
    report ~file ~line:1 ~col:0 Rule.Mli_complete
      (Printf.sprintf "library module %s has no interface file %si"
         (Filename.basename file)
         (Filename.basename file));
  let ast = parse_implementation file in
  let iter = make_iterator ctx in
  iter.Ast_iterator.structure iter ast

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage =
  "brokerlint [--lib] [--experiments] [path ...]\n\
   Lint .ml files under the given files/directories (default: lib bin bench \
   examples).\n\
  \  --lib          treat every scanned file as library code (fixture/test \
   mode)\n\
  \  --experiments  treat every scanned file as an experiment module \
   (fixture/test mode)\n\
   Exit codes: 0 clean, 1 violations found, 2 usage or parse error."

let () =
  let force_lib = ref false in
  let force_experiments = ref false in
  let paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--lib" -> force_lib := true
        | "--experiments" -> force_experiments := true
        | "--help" | "-help" ->
            print_endline usage;
            exit 0
        | _ when String.length arg > 0 && arg.[0] = '-' ->
            prerr_endline ("brokerlint: unknown option " ^ arg);
            prerr_endline usage;
            exit 2
        | _ -> paths := arg :: !paths)
    Sys.argv;
  let paths =
    match List.rev !paths with [] -> scanned_dirs_default | ps -> ps
  in
  let files =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then begin
          prerr_endline ("brokerlint: no such file or directory: " ^ p);
          exit 2
        end;
        List.rev (collect_ml [] p))
      paths
  in
  (try
     List.iter
       (scan_file ~force_lib:!force_lib ~force_experiments:!force_experiments)
       files
   with exn ->
     Location.report_exception Format.err_formatter exn;
     exit 2);
  let sorted =
    List.sort_uniq
      (fun (a : violation) (b : violation) ->
        let c = String.compare a.file b.file in
        if c <> 0 then c
        else
          let c = Int.compare a.line b.line in
          if c <> 0 then c
          else
            let c = Int.compare (Rule.id a.rule) (Rule.id b.rule) in
            if c <> 0 then c else Int.compare a.col b.col)
      !violations
  in
  (* Several AST nodes can hit the same rule on the same line (e.g. a
     sort call and the bare ident inside it); one diagnostic is enough. *)
  let deduped =
    List.fold_left
      (fun (acc : violation list) (v : violation) ->
        match acc with
        | prev :: _
          when prev.file = v.file && prev.line = v.line && prev.rule = v.rule
          ->
            acc
        | _ -> v :: acc)
      [] sorted
    |> List.rev
  in
  let deduped = List.filter (fun v -> not (suppressed v)) deduped in
  List.iter
    (fun (v : violation) ->
      Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col
        (Rule.name v.rule) v.msg)
    deduped;
  match deduped with
  | [] -> ()
  | vs ->
      Printf.eprintf "brokerlint: %d violation(s) in %d file(s)\n"
        (List.length vs)
        (List.length (List.sort_uniq String.compare (List.map (fun (v : violation) -> v.file) vs)));
      exit 1
