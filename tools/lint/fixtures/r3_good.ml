(* Fixture: R3 clean — r3_good.mli sits next to this file. *)

let answer = 42
