(* Fixture (brokerlint: allow mli-complete): R6 clean — array indexing in loops; cons then reverse. *)

let sum_first_k xs k =
  let arr = Array.of_list xs in
  let s = ref 0 in
  for i = 0 to k - 1 do
    s := !s + arr.(i)
  done;
  !s

let replicate x n =
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    out := x :: !out;
    incr i
  done;
  List.rev !out
