(* Fixture (brokerlint: allow mli-complete): R7 report-pure — an experiment
   module printing through the retired Ctx output surface. *)

let run ctx =
  Ctx.printf ctx "saturated = %.2f%%\n" 98.5;
  Ctx.table ctx [ ("k", 100); ("coverage", 92) ];
  Broker_experiments.Ctx.section ctx "Table 1"
