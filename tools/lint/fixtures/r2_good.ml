(* Fixture (brokerlint: allow mli-complete): R2 clean — randomness comes from an explicitly seeded stream
   threaded by the caller. *)

let roll rng = Xrandom.int rng 6
