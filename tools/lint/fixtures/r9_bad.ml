(* Fixture (brokerlint: allow mli-complete): R9 no-unsafe-obj — Obj casts
   (banned everywhere) and polymorphic-hash hazards (library mode). *)
let f (x : int) : string = Obj.magic x
let g x = Obj.repr x
let h x = Hashtbl.hash x
let t : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16
let () = Hashtbl.randomize ()
