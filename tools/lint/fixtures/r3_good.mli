(** Interface for the R3 clean fixture. *)

val answer : int
