(* Fixture: R3 mli-complete — this library module has no sibling .mli. *)

let answer = 42
