(* Fixture (brokerlint: allow mli-complete): R1 clean — monomorphic comparators everywhere. *)

let sort_ints (a : int array) = Array.sort Int.compare a

let sort_pairs_desc (a : (float * int) array) =
  Array.sort (fun (x, _) (y, _) -> Float.compare y x) a
