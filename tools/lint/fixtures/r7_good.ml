(* Fixture (brokerlint: allow mli-complete): R7 clean — the experiment builds
   a typed report; non-output Ctx accessors stay fair game. *)

module Report = Broker_report.Report

let report ctx =
  let r = Report.create ~name:"fixture" () in
  let s = Report.section r "Table 1 — coverage" in
  Report.notef s "seed = %d\n" (Ctx.seed ctx);
  Report.metricf s ~key:"saturated" 0.985 "saturated = %.2f%%\n" 98.5;
  r
