(* Fixture (brokerlint: allow mli-complete): R6 no-list-nth — List.nth and list append inside loop bodies
   are accidentally quadratic. *)

let sum_first_k xs k =
  let s = ref 0 in
  for i = 0 to k - 1 do
    s := !s + List.nth xs i
  done;
  !s

let replicate x n =
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    out := !out @ [ x ];
    incr i
  done;
  !out
