(* Fixture (brokerlint: allow mli-complete): R5 no-stdout-in-lib — direct stdout writes and process exit
   from library code. *)

let report x =
  Printf.printf "x = %d\n" x;
  print_endline "done"

let fail_hard () = exit 1
