(* Fixture (brokerlint: allow mli-complete): R5 clean — an explicit formatter threaded by the caller. *)

let report ppf x = Fmt.pf ppf "x = %d@." x
let fail_soft () = invalid_arg "fail_soft"
