(* Fixture (brokerlint: allow mli-complete): the same R1 violation as r1_bad.ml, silenced by an inline
   suppression comment on the offending line. *)

let sort_ints (a : int array) =
  Array.sort compare a (* brokerlint: allow no-poly-compare *)
