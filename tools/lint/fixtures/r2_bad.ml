(* Fixture (brokerlint: allow mli-complete): R2 determinism — self-seeded global RNG, plus Stdlib.Random
   draws in library code. *)

let () = Random.self_init ()
let roll () = Random.int 6
