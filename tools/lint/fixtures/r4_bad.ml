(* Fixture (brokerlint: allow mli-complete): R4 domain-confinement — ad-hoc Domain.spawn outside
   lib/util/parallel.ml escapes the deterministic chunk-merge discipline. *)

let sum_halves a =
  let n = Array.length a in
  let half lo hi () =
    let s = ref 0 in
    for i = lo to hi - 1 do
      s := !s + a.(i)
    done;
    !s
  in
  let left = Domain.spawn (half 0 (n / 2)) in
  let right = half (n / 2) n () in
  Domain.join left + right
