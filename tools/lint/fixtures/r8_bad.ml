(* Fixture (brokerlint: allow mli-complete): R8 clock-discipline — ad-hoc wall/CPU clocks outside
   the sanctioned lib/obs/ and bench/ homes. *)

let started_at = Unix.gettimeofday ()
let cpu_budget_spent () = Sys.time () > 10.0
