(* Fixture (brokerlint: allow mli-complete): R4 clean — parallelism goes through the sanctioned runner. *)

let doubled arr = Parallel.map_array (fun x -> 2 * x) arr
