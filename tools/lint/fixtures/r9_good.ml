(* Fixture (brokerlint: allow mli-complete): R9 clean — deterministic
   explicit keys and non-randomized tables. *)
let key (x : int) = x land max_int
let t : (int, int) Hashtbl.t = Hashtbl.create 16
let u : (string, int) Hashtbl.t = Hashtbl.create ~random:false 16
