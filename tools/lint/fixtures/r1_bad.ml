(* Fixture (brokerlint: allow mli-complete): R1 no-poly-compare — polymorphic comparator passed to a sort,
   and a bare [compare] in a comparator lambda (library mode). *)

let sort_ints (a : int array) = Array.sort compare a

let sort_pairs_desc (a : (float * int) array) =
  Array.sort (fun (x, _) (y, _) -> compare y x) a
