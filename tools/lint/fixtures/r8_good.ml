(* Fixture (brokerlint: allow mli-complete): R8 clean — timing through the sanctioned observability
   clock instead of ad-hoc Unix/Sys wall clocks. *)

let time_it f = Broker_obs.Clock.time f
let elapsed_ns t0 = Broker_obs.Clock.now_ns () - t0
