(* brokerctl — command-line driver for the broker-set library.

   Subcommands:
     generate    synthesize an AS+IXP topology and save it
     summary     Table-2 style summary of a saved topology
     select      run a broker-selection algorithm on a saved topology
     evaluate    l-hop connectivity of a broker set
     export-dot  write a renderable DOT sample
     experiment  run one of the paper reproductions *)

open Cmdliner

let topo_arg =
  let doc = "Topology file (produced by $(b,generate))." in
  Arg.(required & opt (some string) None & info [ "t"; "topology" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let scale_arg =
  let doc = "Scale factor in (0,1] relative to the paper's 52,079 nodes." in
  Arg.(value & opt float 0.1 & info [ "scale" ] ~doc)

let load path =
  try Ok (Broker_topo.Dataset.load ~path)
  with Sys_error msg | Failure msg -> Error msg

(* generate *)
let generate scale seed out =
  let params =
    if scale >= 1.0 then { Broker_topo.Internet.default with seed }
    else { (Broker_topo.Internet.scaled scale) with seed }
  in
  let topo = Broker_topo.Internet.generate params in
  Broker_topo.Dataset.save ~path:out topo;
  Format.printf "%a@." Broker_topo.Dataset.pp_summary
    (Broker_topo.Dataset.summarize topo);
  Printf.printf "saved to %s\n" out

let generate_cmd =
  let out =
    Arg.(value & opt string "topology.txt" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an AS+IXP topology")
    Term.(const generate $ scale_arg $ seed_arg $ out)

(* summary *)
let summary path =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      Format.printf "%a@." Broker_topo.Dataset.pp_summary
        (Broker_topo.Dataset.summarize topo)

let summary_cmd =
  Cmd.v
    (Cmd.info "summary" ~doc:"Summarize a topology (Table 2 rows)")
    Term.(const summary $ topo_arg)

(* select *)
let algo_arg =
  let alts = [ "maxsg"; "greedy"; "mcbg"; "db"; "prb"; "ixpb"; "tier1"; "sc" ] in
  let doc = Printf.sprintf "Selection algorithm: %s." (String.concat ", " alts) in
  Arg.(value & opt (enum (List.map (fun a -> (a, a)) alts)) "maxsg" & info [ "a"; "algorithm" ] ~doc)

let k_arg =
  let doc = "Broker budget k." in
  Arg.(value & opt int 100 & info [ "k" ] ~doc)

let select_brokers topo algo k seed =
  let g = topo.Broker_topo.Topology.graph in
  match algo with
  | "maxsg" -> Broker_core.Maxsg.run g ~k
  | "greedy" -> Broker_core.Greedy_mcb.celf g ~k
  | "mcbg" -> (Broker_core.Mcbg.run ~all_roots:false g ~k ~beta:4).Broker_core.Mcbg.brokers
  | "db" -> Broker_core.Baselines.db g ~k
  | "prb" -> Broker_core.Baselines.prb g ~k
  | "ixpb" -> Broker_core.Baselines.ixpb topo ~min_degree:0
  | "tier1" -> Broker_core.Baselines.tier1_only topo
  | "sc" -> Broker_core.Baselines.set_cover ~rng:(Broker_util.Xrandom.create seed) g
  | _ -> assert false

let select path algo k seed out =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let brokers = select_brokers topo algo k seed in
      let oc = open_out out in
      Array.iter (fun b -> Printf.fprintf oc "%d\n" b) brokers;
      close_out oc;
      let cov = Broker_core.Coverage.create topo.Broker_topo.Topology.graph in
      Array.iter (Broker_core.Coverage.add cov) brokers;
      Printf.printf "%d brokers -> coverage f(B) = %d (%.2f%% of nodes); saved to %s\n"
        (Array.length brokers) (Broker_core.Coverage.f cov)
        (100.0 *. Broker_core.Coverage.coverage_fraction cov)
        out

let select_cmd =
  let out =
    Arg.(value & opt string "brokers.txt" & info [ "o"; "output" ] ~doc:"Broker list output file.")
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Select a broker set")
    Term.(const select $ topo_arg $ algo_arg $ k_arg $ seed_arg $ out)

(* evaluate *)
let read_brokers path =
  let ic = open_in path in
  let acc = ref [] in
  (try
     while true do
       acc := int_of_string (String.trim (input_line ic)) :: !acc
     done
   with End_of_file -> close_in ic);
  Array.of_list (List.rev !acc)

let evaluate path brokers_path sources seed =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let g = topo.Broker_topo.Topology.graph in
      let brokers = read_brokers brokers_path in
      let n = Broker_graph.Graph.n g in
      let curve =
        Broker_core.Connectivity.sampled ~l_max:8
          ~rng:(Broker_util.Xrandom.create seed)
          ~sources g
          ~is_broker:(Broker_core.Connectivity.of_brokers ~n brokers)
      in
      for l = 1 to 8 do
        Printf.printf "l=%d  %.2f%%\n" l
          (100.0 *. Broker_core.Connectivity.value_at curve l)
      done;
      Printf.printf "saturated  %.2f%%\n"
        (100.0 *. curve.Broker_core.Connectivity.saturated)

let evaluate_cmd =
  let brokers =
    Arg.(required & opt (some string) None & info [ "b"; "brokers" ] ~doc:"Broker list file.")
  in
  let sources =
    Arg.(value & opt int 192 & info [ "sources" ] ~doc:"BFS source sample size.")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"l-hop E2E connectivity of a broker set")
    Term.(const evaluate $ topo_arg $ brokers $ sources $ seed_arg)

(* export-dot *)
let export_dot path out max_vertices =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let attrs v =
        if Broker_topo.Topology.is_ixp topo v then [ ("color", "red") ] else []
      in
      Broker_graph.Dot.write_file ~path:out
        (Broker_graph.Dot.to_dot ~vertex_attrs:attrs ~max_vertices
           topo.Broker_topo.Topology.graph);
      Printf.printf "wrote %s\n" out

let export_dot_cmd =
  let out = Arg.(value & opt string "topology.dot" & info [ "o"; "output" ] ~doc:"DOT output.") in
  let mv = Arg.(value & opt int 2000 & info [ "max-vertices" ] ~doc:"Keep the k highest-degree vertices.") in
  Cmd.v
    (Cmd.info "export-dot" ~doc:"Export a renderable DOT sample")
    Term.(const export_dot $ topo_arg $ out $ mv)

(* simulate *)
let simulate path brokers_path n_sessions capacity_factor seed chaos_on mtbf
    mttr scenario no_failover retries cache_strategy vnodes topo_updates
    topo_propagation topo_delay topo_per_hop topo_at stats_window timeline =
  if stats_window < 0.0 then begin
    prerr_endline "brokerctl simulate: --stats-window must be positive";
    exit 2
  end;
  let cache =
    match Broker_sim.Shard_cache.strategy_of_string ~vnodes cache_strategy with
    | Ok s -> s
    | Error msg ->
        prerr_endline ("brokerctl simulate: " ^ msg);
        exit 2
  in
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let g = topo.Broker_topo.Topology.graph in
      let brokers = read_brokers brokers_path in
      let rng = Broker_util.Xrandom.create seed in
      let model = Broker_core.Traffic.gravity ~rng g in
      let sessions =
        Broker_sim.Workload.generate ~rng model ~n_sessions
          Broker_sim.Workload.default_params
      in
      let config = Broker_sim.Simulator.degree_capacity g ~factor:capacity_factor in
      let chaos =
        if not chaos_on then None
        else
          let horizon =
            (if Array.length sessions = 0 then 0.0
             else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival)
            +. 20.0
          in
          let scen =
            match scenario with
            | "independent" -> Broker_sim.Faults.Independent { mtbf; mttr }
            | "degree" -> Broker_sim.Faults.Degree_targeted { mtbf; mttr; bias = 1.0 }
            | "ixp" -> Broker_sim.Faults.Ixp_outage { mtbf; mttr }
            | _ -> assert false
          in
          let faults =
            Broker_sim.Faults.generate
              ~rng:(Broker_util.Xrandom.create (seed + 1))
              topo ~brokers ~horizon scen
          in
          Some
            {
              (Broker_sim.Simulator.default_chaos faults) with
              Broker_sim.Simulator.failover = not no_failover;
              retry =
                { Broker_sim.Simulator.default_retry with max_attempts = retries };
              chaos_seed = seed;
            }
      in
      let topo_churn =
        if topo_updates <= 0 then None
        else begin
          let horizon =
            if Array.length sessions = 0 then 0.0
            else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival
          in
          let ops =
            Broker_sim.Topo_stream.burst
              ~rng:(Broker_util.Xrandom.create (seed + 2))
              g ~size:topo_updates
          in
          let time = topo_at *. horizon in
          let propagation =
            match topo_propagation with
            | "centralized" ->
                Broker_sim.Topo_stream.Centralized { delay = topo_delay }
            | "bgp" ->
                Broker_sim.Topo_stream.Bgp_like
                  { base = topo_delay; per_hop = topo_per_hop }
            | _ -> assert false
          in
          Some
            {
              Broker_sim.Simulator.updates =
                Array.map (fun op -> { Broker_sim.Topo_stream.time; op }) ops;
              propagation;
            }
        end
      in
      let stats_window =
        (* --timeline without an explicit window defaults to 40 windows
           across the arrival horizon. *)
        if stats_window > 0.0 then Some stats_window
        else if Option.is_some timeline then begin
          let horizon =
            (if Array.length sessions = 0 then 0.0
             else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival)
            +. 20.0
          in
          Some (Float.max 1e-6 (horizon /. 40.0))
        end
        else None
      in
      let s =
        Broker_sim.Simulator.run ?chaos ?topo:topo_churn ~cache ?stats_window
          topo ~brokers ~sessions config
      in
      Printf.printf "offered             %d\n" s.Broker_sim.Simulator.offered;
      Printf.printf "admitted            %d (%.2f%%)\n" s.Broker_sim.Simulator.admitted
        (100.0 *. s.Broker_sim.Simulator.admission_rate);
      Printf.printf "rejected: no path   %d\n" s.Broker_sim.Simulator.rejected_no_path;
      Printf.printf "rejected: capacity  %d\n" s.Broker_sim.Simulator.rejected_capacity;
      Printf.printf "mean hops           %.2f\n" s.Broker_sim.Simulator.mean_hops;
      Printf.printf "employee-hop share  %.2f%%\n"
        (100.0 *. s.Broker_sim.Simulator.employee_hop_fraction);
      Printf.printf "mean utilization    %.2f%%\n"
        (100.0 *. s.Broker_sim.Simulator.mean_broker_utilization);
      Printf.printf "net revenue         %.1f\n" s.Broker_sim.Simulator.revenue;
      if chaos_on then begin
        Printf.printf "failed over         %d\n" s.Broker_sim.Simulator.failed_over;
        Printf.printf "dropped mid-flight  %d\n"
          s.Broker_sim.Simulator.dropped_midflight;
        Printf.printf "retried+admitted    %d\n"
          s.Broker_sim.Simulator.retried_admitted;
        Printf.printf "delivered rate      %.2f%%\n"
          (100.0 *. Broker_sim.Simulator.delivered_rate s);
        Printf.printf "broker downtime     %.1f\n"
          s.Broker_sim.Simulator.broker_downtime;
        Printf.printf "revenue lost        %.1f\n"
          s.Broker_sim.Simulator.revenue_lost;
        Printf.printf "availability        %.2f%%\n"
          (100.0 *. s.Broker_sim.Simulator.availability)
      end;
      if topo_updates > 0 then begin
        Printf.printf "topo propagation    %s\n" topo_propagation;
        Printf.printf "topo applied        %d\n"
          s.Broker_sim.Simulator.topo_applied;
        Printf.printf "topo ignored        %d\n"
          s.Broker_sim.Simulator.topo_ignored
      end;
      let c = s.Broker_sim.Simulator.cache in
      Printf.printf "cache strategy      %s\n"
        (Broker_sim.Shard_cache.strategy_name cache);
      Printf.printf "cache lookups       %d\n" c.Broker_sim.Shard_cache.lookups;
      Printf.printf "cache hits          %d\n" c.Broker_sim.Shard_cache.hits;
      Printf.printf "cache degraded      %d\n"
        c.Broker_sim.Shard_cache.served_degraded;
      Printf.printf "cache repaired      %d\n"
        c.Broker_sim.Shard_cache.repaired_lazily;
      Printf.printf "cache recomputed    %d\n"
        c.Broker_sim.Shard_cache.recomputed;
      Printf.printf "cache evicted       %d\n" c.Broker_sim.Shard_cache.evicted;
      Printf.printf "cache flushed       %d\n" c.Broker_sim.Shard_cache.flushed;
      (match stats_window with
      | None -> ()
      | Some w ->
          Printf.printf "stats window        %.3f\n" w;
          let with_data =
            List.filter
              (fun ts ->
                Array.length (Broker_obs.Timeseries.points ts) > 0)
              (Broker_obs.Timeseries.all ())
          in
          Printf.printf "timeline series     %d\n" (List.length with_data);
          (match timeline with
          | None -> ()
          | Some out ->
              let json = Broker_report.Report_obs.timeline_to_json () in
              let oc = open_out out in
              output_string oc json;
              output_string oc "\n";
              close_out oc;
              Printf.eprintf "timeline: %d series -> %s\n"
                (List.length with_data) out))

let simulate_cmd =
  let brokers =
    Arg.(required & opt (some string) None & info [ "b"; "brokers" ] ~doc:"Broker list file.")
  in
  let sessions =
    Arg.(value & opt int 5000 & info [ "sessions" ] ~doc:"Number of QoS sessions.")
  in
  let factor =
    Arg.(value & opt float 0.2 & info [ "capacity-factor" ] ~doc:"Broker capacity per unit degree.")
  in
  let chaos =
    Arg.(value & flag & info [ "chaos" ] ~doc:"Inject broker crash/recover faults.")
  in
  let mtbf =
    Arg.(value & opt float 300.0 & info [ "mtbf" ] ~doc:"Mean time between broker failures.")
  in
  let mttr =
    Arg.(value & opt float 20.0 & info [ "mttr" ] ~doc:"Mean time to recover.")
  in
  let scenario =
    let alts = [ "independent"; "degree"; "ixp" ] in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) alts)) "independent"
      & info [ "fault-scenario" ]
          ~doc:"Fault scenario: independent, degree (hub-targeted), ixp (correlated).")
  in
  let no_failover =
    Arg.(value & flag & info [ "no-failover" ] ~doc:"Drop in-flight sessions of a crashed broker instead of rerouting.")
  in
  let retries =
    Arg.(value & opt int 3 & info [ "retries" ] ~doc:"Retry budget for blocked arrivals (chaos mode).")
  in
  let cache_strategy =
    Arg.(
      value
      & opt string "flush"
      & info [ "cache-strategy" ]
          ~doc:
            "Path-cache strategy: flush (historical flush-on-crash), modulo \
             (static sharding), ring (consistent hashing).")
  in
  let vnodes =
    Arg.(
      value
      & opt int Broker_sim.Shard_cache.default_vnodes
      & info [ "vnodes" ] ~doc:"Virtual nodes per broker shard (ring strategy).")
  in
  let topo_updates =
    Arg.(
      value & opt int 0
      & info [ "topo-updates" ]
          ~doc:
            "Inject a burst of this many announce/withdraw topology updates \
             (0 disables streaming updates).")
  in
  let topo_propagation =
    let alts = [ "centralized"; "bgp" ] in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) alts)) "centralized"
      & info [ "topo-propagation" ]
          ~doc:
            "Update propagation model: centralized (constant delay) or bgp \
             (base + per-hop crawl to the nearest broker).")
  in
  let topo_delay =
    Arg.(
      value & opt float 5.0
      & info [ "topo-delay" ]
          ~doc:"Centralized delivery delay, or the bgp base delay.")
  in
  let topo_per_hop =
    Arg.(
      value & opt float 1.0
      & info [ "topo-per-hop" ] ~doc:"Per-hop delay of the bgp model.")
  in
  let topo_at =
    Arg.(
      value & opt float 0.5
      & info [ "topo-at" ]
          ~doc:
            "Burst origin time as a fraction of the arrival horizon \
             (default 0.5).")
  in
  let stats_window =
    Arg.(
      value & opt float 0.0
      & info [ "stats-window" ]
          ~doc:
            "Collect brokerstat sim-time timelines with this window width \
             (0 disables; --timeline implies a default window).")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ]
          ~doc:
            "Write the collected timelines (per-window throughput and \
             latency percentiles) as a report JSON artifact.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Flow-level brokerage simulation with admission control")
    Term.(
      const simulate $ topo_arg $ brokers $ sessions $ factor $ seed_arg
      $ chaos $ mtbf $ mttr $ scenario $ no_failover $ retries
      $ cache_strategy $ vnodes $ topo_updates $ topo_propagation
      $ topo_delay $ topo_per_hop $ topo_at $ stats_window $ timeline)

(* resilience *)
let resilience path brokers_path sources seed =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let g = topo.Broker_topo.Topology.graph in
      let brokers = read_brokers brokers_path in
      let fractions = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
      List.iter
        (fun model ->
          let name =
            match model with
            | Broker_core.Resilience.Random -> "random"
            | Broker_core.Resilience.Targeted -> "targeted"
          in
          let points =
            Broker_core.Resilience.degradation
              ~rng:(Broker_util.Xrandom.create seed)
              ~sources g ~brokers ~model ~fractions
          in
          List.iter
            (fun (p : Broker_core.Resilience.point) ->
              Printf.printf "%-9s failed=%3d (%.0f%%)  connectivity=%.2f%%\n" name
                p.Broker_core.Resilience.failed
                (100.0 *. p.Broker_core.Resilience.failed_fraction)
                (100.0 *. p.Broker_core.Resilience.connectivity))
            points)
        [ Broker_core.Resilience.Random; Broker_core.Resilience.Targeted ]

let resilience_cmd =
  let brokers =
    Arg.(required & opt (some string) None & info [ "b"; "brokers" ] ~doc:"Broker list file.")
  in
  let sources =
    Arg.(value & opt int 96 & info [ "sources" ] ~doc:"BFS source sample size.")
  in
  Cmd.v
    (Cmd.info "resilience" ~doc:"Broker failure degradation sweep")
    Term.(const resilience $ topo_arg $ brokers $ sources $ seed_arg)

(* bgp-stats *)
let bgp_stats path destinations seed =
  match load path with
  | Error msg ->
      prerr_endline msg;
      exit 1
  | Ok topo ->
      let rng = Broker_util.Xrandom.create seed in
      Printf.printf "policy-compliant reachability: %.2f%%\n"
        (100.0 *. Broker_routing.Bgp.reachable_fraction ~rng ~destinations topo);
      let rng = Broker_util.Xrandom.create seed in
      Printf.printf "mean BGP path length:          %.2f hops\n"
        (Broker_routing.Bgp.average_path_length ~rng ~destinations topo)

let bgp_stats_cmd =
  let destinations =
    Arg.(value & opt int 32 & info [ "destinations" ] ~doc:"Sampled destination ASes.")
  in
  Cmd.v
    (Cmd.info "bgp-stats" ~doc:"Valley-free BGP reachability and path lengths")
    Term.(const bgp_stats $ topo_arg $ destinations $ seed_arg)

(* experiment *)
module Report = Broker_report.Report
module Report_text = Broker_report.Report_text
module Report_json = Broker_report.Report_json
module Report_csv = Broker_report.Report_csv
module Report_diff = Broker_report.Report_diff

let write_file ~regen path contents =
  if (not regen) && Sys.file_exists path then begin
    Printf.eprintf
      "refusing to overwrite %s (pass --regen to regenerate artifacts)\n" path;
    exit 1
  end;
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* observability: --trace/--metrics/--obs-summary on `run`, plus the
   REPRO_TRACE env hook honored by both `run` and `experiment`. *)
module Obs = Broker_obs

let obs_env_trace () =
  match Sys.getenv_opt "REPRO_TRACE" with
  | Some p when not (String.equal p "") -> Some p
  | Some _ | None -> None

let obs_begin ~trace ~metrics ~summary =
  let trace =
    match trace with Some p -> Some p | None -> obs_env_trace ()
  in
  if Option.is_some trace || Option.is_some metrics || summary then
    Obs.Control.set_enabled true;
  if Option.is_some trace then Obs.Trace.arm ();
  trace

let write_trace path =
  if Obs.Trace.write ~path then begin
    (* The sink self-checks: a trace artifact that does not parse as JSON
       is a bug, not a degraded artifact. *)
    (match Report_json.json_of_string (Obs.Trace.to_chrome_json ()) with
    | Ok _ -> ()
    | Error msg ->
        Printf.eprintf "internal error: trace JSON invalid: %s
" msg;
        exit 1);
    Printf.eprintf "trace: %d events (%d dropped) -> %s
"
      (Obs.Trace.recorded ()) (Obs.Trace.dropped ()) path
  end

let obs_finish ~trace ~metrics ~summary ~regen =
  (* Fold ring truncation into the snapshot before taking it, so
     `--obs-summary` and `--metrics` surface trace.dropped even when the
     trace itself is not written. *)
  if Obs.Trace.armed () then Obs.Trace.publish_dropped ();
  let snap =
    if Obs.Control.enabled () then Some (Obs.Metrics.snapshot ()) else None
  in
  (match trace with Some path -> write_trace path | None -> ());
  match snap with
  | None -> ()
  | Some snap ->
      (match metrics with
      | Some path ->
          write_file ~regen path (Broker_report.Report_obs.to_json snap ^ "\n")
      | None -> ());
      if summary then print_string (Broker_report.Report_obs.to_text snap)

let experiment id =
  let trace = obs_begin ~trace:None ~metrics:None ~summary:false in
  let ctx = Broker_experiments.Ctx.from_env () in
  match Broker_experiments.All.run_one ctx id with
  | Ok r ->
      Report_text.print r;
      Report_text.flush ();
      obs_finish ~trace ~metrics:None ~summary:false ~regen:false
  | Error msg ->
      prerr_endline msg;
      exit 2

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id, e.g. table1.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Run a paper reproduction (env: REPRO_SCALE, REPRO_SOURCES, REPRO_SEED)")
    Term.(const experiment $ id)

(* list *)
let list_experiments () =
  Printf.printf "%-18s %-16s %s\n" "ID" "ARTIFACT" "DESCRIPTION";
  List.iter
    (fun (e : Broker_experiments.All.experiment) ->
      Printf.printf "%-18s %-16s %s\n" e.id e.artifact e.description)
    Broker_experiments.All.experiments

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the experiment registry (id, paper artifact, description)")
    Term.(const list_experiments $ const ())

(* run *)
let run_suite format out regen trace metrics obs_summary ids =
  let trace = obs_begin ~trace ~metrics ~summary:obs_summary in
  let ctx = Broker_experiments.Ctx.from_env () in
  let selected =
    match ids with
    | [] -> Broker_experiments.All.experiments
    | ids ->
        List.map
          (fun id ->
            match Broker_experiments.All.find id with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (see brokerctl list)\n" id;
                exit 2)
          ids
  in
  (match out with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let emit (e : Broker_experiments.All.experiment) r =
    match (format, out) with
    | "text", None ->
        Report_text.print r;
        Report_text.flush ()
    | "text", Some dir ->
        write_file ~regen (Filename.concat dir (e.id ^ ".txt"))
          (Format.asprintf "%a" Report_text.pp r)
    | "json", None -> print_endline (Report_json.to_string r)
    | "json", Some dir ->
        write_file ~regen (Filename.concat dir (e.id ^ ".json"))
          (Report_json.to_string r ^ "\n")
    | "csv", dir ->
        let dir = match dir with Some d -> d | None -> "." in
        List.iter
          (fun (name, contents) ->
            write_file ~regen (Filename.concat dir name) contents)
          (Report_csv.files r)
    | _ -> assert false
  in
  List.iter (fun e -> emit e (Broker_experiments.All.report_of ctx e)) selected;
  obs_finish ~trace ~metrics ~summary:obs_summary ~regen

let run_cmd =
  let format =
    let alts = [ "text"; "json"; "csv" ] in
    Arg.(
      value
      & opt (enum (List.map (fun a -> (a, a)) alts)) "text"
      & info [ "format" ] ~doc:"Output backend: text, json or csv.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Write one artifact file per experiment into $(docv) instead of stdout.")
  in
  let regen =
    Arg.(value & flag & info [ "regen" ] ~doc:"Overwrite existing artifact files.")
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids to run (default: the whole suite, in registry order).")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event file (Perfetto-loadable) of the \
                 run into $(docv). The REPRO_TRACE env var is an equivalent \
                 hook.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the end-of-run metrics snapshot as a \
                 brokerset-report/1 JSON artifact into $(docv) (deterministic \
                 counters diffable via `report diff`).")
  in
  let obs_summary =
    Arg.(value & flag & info [ "obs-summary" ]
           ~doc:"Print the metrics snapshot as a text table after the run.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the reproduction suite through a report backend \
             (env: REPRO_SCALE, REPRO_SOURCES, REPRO_SEED, REPRO_TRACE)")
    Term.(const run_suite $ format $ out $ regen $ trace $ metrics
          $ obs_summary $ ids)

(* report diff *)
let parse_tol spec =
  match String.index_opt spec '=' with
  | Some i ->
      let key = String.sub spec 0 i in
      let v = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match float_of_string_opt v with
      | Some eps -> (key, eps)
      | None -> Printf.eprintf "bad --tol %S: epsilon is not a float\n" spec; exit 2)
  | None -> (
      (* A bare float is a global tolerance (empty key prefix). *)
      match float_of_string_opt spec with
      | Some eps -> ("", eps)
      | None ->
          Printf.eprintf "bad --tol %S: expected KEY=EPS or a bare float\n" spec;
          exit 2)

let load_report path =
  let contents =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      prerr_endline msg;
      exit 2
  in
  match Report_json.of_string contents with
  | Ok r -> r
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2

let report_diff a_path b_path tol_specs =
  let tols = List.map parse_tol tol_specs in
  let a = load_report a_path and b = load_report b_path in
  let outcome = Report_diff.compare ~tols a b in
  Format.printf "%a@." Report_diff.pp outcome;
  if not (Report_diff.ok outcome) then exit 1

let report_diff_cmd =
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A.json" ~doc:"Baseline report.") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B.json" ~doc:"Candidate report.") in
  let tols =
    Arg.(value & opt_all string [] & info [ "tol" ] ~docv:"KEY=EPS"
           ~doc:"Numeric tolerance for keys starting with KEY (longest prefix \
                 wins; a bare float sets the global default).")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two JSON reports; exit 1 on drift")
    Term.(const report_diff $ a $ b $ tols)

let report_cmd =
  Cmd.group
    (Cmd.info "report" ~doc:"Operations on serialized experiment reports")
    [ report_diff_cmd ]

let () =
  let info =
    Cmd.info "brokerctl" ~version:"1.0.0"
      ~doc:"Inter-domain routing via a small broker set - reproduction toolkit"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            summary_cmd;
            select_cmd;
            evaluate_cmd;
            export_dot_cmd;
            simulate_cmd;
            resilience_cmd;
            bgp_stats_cmd;
            experiment_cmd;
            list_cmd;
            run_cmd;
            report_cmd;
          ]))
