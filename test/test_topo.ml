(* Tests for Broker_topo: Node_meta, Topology, Classic generators,
   Internet generator, Dataset round-trip. *)

open Helpers
module G = Broker_graph.Graph
module Nm = Broker_topo.Node_meta
module T = Broker_topo.Topology
module Classic = Broker_topo.Classic
module Internet = Broker_topo.Internet
module Dataset = Broker_topo.Dataset

(* ---------- Node_meta.Relations ---------- *)

let test_relations_c2p_orientation () =
  let r = Nm.Relations.create () in
  Nm.Relations.add_c2p r ~customer:5 ~provider:2;
  check_bool "customer" true (Nm.Relations.customer_of r 5 2);
  check_bool "not reversed" false (Nm.Relations.customer_of r 2 5);
  check_bool "provider" true (Nm.Relations.provider_of r 2 5);
  check_bool "find" true (Nm.Relations.find r 2 5 = Some Nm.Customer_provider);
  check_bool "not peers" false (Nm.Relations.peers r 5 2)

let test_relations_peer_ixp () =
  let r = Nm.Relations.create () in
  Nm.Relations.add_peer r 1 2;
  Nm.Relations.add_ixp_member r ~as_node:3 ~ixp:9;
  check_bool "peer both ways" true (Nm.Relations.peers r 2 1);
  check_bool "ixp as peer" true (Nm.Relations.peers r 3 9);
  check_bool "find ixp" true (Nm.Relations.find r 9 3 = Some Nm.Ixp_member);
  check_bool "missing" true (Nm.Relations.find r 1 9 = None);
  check_int "cardinal" 2 (Nm.Relations.cardinal r)

let test_relations_self_edge () =
  let r = Nm.Relations.create () in
  Alcotest.check_raises "self" (Invalid_argument "Relations.add_peer: self edge")
    (fun () -> Nm.Relations.add_peer r 4 4)

(* ---------- Classic generators ---------- *)

let test_er_size () =
  let g = Classic.erdos_renyi ~rng:(rng ()) ~n:200 ~m:400 in
  check_int "n" 200 (G.n g);
  check_bool "m close to target" true (G.m g > 350 && G.m g <= 400)

let test_ws_degree () =
  let g = Classic.watts_strogatz ~rng:(rng ()) ~n:100 ~k:4 ~beta:0.0 in
  (* No rewiring: a perfect ring lattice, everyone degree 4. *)
  for v = 0 to 99 do
    check_int "lattice degree" 4 (G.degree g v)
  done

let test_ws_rewired_connect () =
  let g = Classic.watts_strogatz ~rng:(rng ()) ~n:100 ~k:4 ~beta:0.3 in
  check_int "n" 100 (G.n g);
  check_bool "about 2n edges" true (abs (G.m g - 200) < 20)

let test_ws_bad_k () =
  Alcotest.check_raises "odd k"
    (Invalid_argument "Classic.watts_strogatz: k must be positive and even")
    (fun () -> ignore (Classic.watts_strogatz ~rng:(rng ()) ~n:10 ~k:3 ~beta:0.0))

let test_ba_heavy_tail () =
  let g = Classic.barabasi_albert ~rng:(rng ()) ~n:500 ~m:3 in
  check_int "n" 500 (G.n g);
  (* Preferential attachment: the max degree is far above the mean. *)
  let avg = Broker_graph.Metrics.average_degree g in
  check_bool "hub exists" true (float_of_int (G.max_degree g) > 4.0 *. avg);
  (* connected by construction *)
  let c = Broker_graph.Components.compute g in
  check_int "connected" 1 (Broker_graph.Components.count c)

(* ---------- Internet generator ---------- *)

let small = lazy (small_internet ~seed:77 ~scale:0.02 ())

let test_internet_table2_shape () =
  let t = Lazy.force small in
  let s = Dataset.summarize t in
  let p = Internet.scaled 0.02 in
  check_int "ixps" p.Internet.n_ixp s.Dataset.ixps;
  check_int "ases" p.Internet.n_as s.Dataset.ases;
  check_bool "as-as edges within 2%" true
    (abs (s.Dataset.as_as_connections - p.Internet.as_as_edge_target)
    < p.Internet.as_as_edge_target / 50);
  check_bool "as-ixp edges within 5%" true
    (abs (s.Dataset.as_ixp_connections - p.Internet.as_ixp_edge_target)
    < p.Internet.as_ixp_edge_target / 20);
  check_float_eps 0.02 "ixp membership fraction" 0.402 s.Dataset.ixp_connected_fraction

let test_internet_giant_component () =
  let t = Lazy.force small in
  let s = Dataset.summarize t in
  check_bool "giant component ~ everything" true
    (s.Dataset.max_connected_subgraph > 99 * T.n t / 100)

let test_internet_deterministic () =
  let a = small_internet ~seed:5 ~scale:0.01 () in
  let b = small_internet ~seed:5 ~scale:0.01 () in
  Alcotest.(check (array (pair int int))) "same edges"
    (G.edges a.T.graph) (G.edges b.T.graph);
  let c = small_internet ~seed:6 ~scale:0.01 () in
  check_bool "different seed differs" false (G.edges a.T.graph = G.edges c.T.graph)

let test_internet_relations_complete () =
  let t = Lazy.force small in
  let missing = ref 0 in
  G.iter_edges t.T.graph (fun u v ->
      if Nm.Relations.find t.T.relations u v = None then incr missing);
  check_int "every edge classified" 0 !missing

let test_internet_ixp_edges_touch_ixps () =
  let t = Lazy.force small in
  let bad = ref 0 in
  G.iter_edges t.T.graph (fun u v ->
      match Nm.Relations.find t.T.relations u v with
      | Some Nm.Ixp_member -> if not (T.is_ixp t u || T.is_ixp t v) then incr bad
      | Some Nm.Customer_provider | Some Nm.Peer ->
          if T.is_ixp t u || T.is_ixp t v then incr bad
      | None -> ()
  );
  check_int "relation kinds consistent with node kinds" 0 !bad

let test_internet_tiers () =
  let t = Lazy.force small in
  let tier1 = T.tier1_members t in
  check_int "tier1 count" (Internet.scaled 0.02).Internet.n_tier1 (Array.length tier1);
  (* Tier-1 clique: all pairs connected, as peers. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if u <> v then begin
            check_bool "clique edge" true (G.mem_edge t.T.graph u v);
            check_bool "peer link" true (Nm.Relations.peers t.T.relations u v)
          end)
        tier1)
    tier1

let test_internet_small_world () =
  let t = Lazy.force small in
  let est =
    Broker_core.Alpha_beta.estimate ~rng:(rng ()) ~sources:32 t.T.graph ~alpha:0.99
  in
  check_bool "beta small" true (est.Broker_core.Alpha_beta.beta <= 5)

let test_internet_scaled_bounds () =
  Alcotest.check_raises "scale 0" (Invalid_argument "Internet.scaled: factor in (0,1]")
    (fun () -> ignore (Internet.scaled 0.0))

(* ---------- Topology ---------- *)

let test_topology_counts () =
  let t = Lazy.force small in
  let total =
    List.fold_left (fun acc k -> acc + T.count_kind t k) 0 Nm.all_kinds
  in
  check_int "kinds partition nodes" (T.n t) total;
  check_int "edge split" (G.m t.T.graph) (T.as_as_edges t + T.as_ixp_edges t)

let test_topology_ases_only () =
  let t = Lazy.force small in
  let restricted, mapping = T.with_ases_only t in
  check_int "no ixps left" 0 (T.count_kind restricted Nm.Ixp);
  check_int "as count preserved" (Array.length (T.ases t)) (T.n restricted);
  check_int "edges are the AS-AS edges" (T.as_as_edges t) (G.m restricted.T.graph);
  (* Mapping consistency: kinds survive. *)
  Array.iteri
    (fun new_id old_id ->
      check_bool "kind preserved" true
        (Nm.kind_equal restricted.T.kinds.(new_id) t.T.kinds.(old_id)))
    mapping

(* ---------- Dataset ---------- *)

let test_dataset_roundtrip () =
  let t = small_internet ~seed:9 ~scale:0.005 () in
  let path = Filename.temp_file "topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dataset.save ~path t;
      let t' = Dataset.load ~path in
      check_int "n" (T.n t) (T.n t');
      Alcotest.(check (array (pair int int))) "edges" (G.edges t.T.graph) (G.edges t'.T.graph);
      for v = 0 to T.n t - 1 do
        check_bool "kind" true (Nm.kind_equal t.T.kinds.(v) t'.T.kinds.(v));
        check_int "tier" t.T.tiers.(v) t'.T.tiers.(v);
        Alcotest.(check string) "name" t.T.names.(v) t'.T.names.(v)
      done;
      (* Relations survive with orientation. *)
      let mismatch = ref 0 in
      G.iter_edges t.T.graph (fun u v ->
          let r1 = Nm.Relations.find t.T.relations u v in
          let r2 = Nm.Relations.find t'.T.relations u v in
          if r1 <> r2 then incr mismatch;
          if
            Nm.Relations.customer_of t.T.relations u v
            <> Nm.Relations.customer_of t'.T.relations u v
          then incr mismatch);
      check_int "relations preserved" 0 !mismatch)

let suite =
  [
    ( "topo.relations",
      [
        Alcotest.test_case "c2p orientation" `Quick test_relations_c2p_orientation;
        Alcotest.test_case "peer & ixp" `Quick test_relations_peer_ixp;
        Alcotest.test_case "self edge" `Quick test_relations_self_edge;
      ] );
    ( "topo.classic",
      [
        Alcotest.test_case "ER size" `Quick test_er_size;
        Alcotest.test_case "WS lattice degree" `Quick test_ws_degree;
        Alcotest.test_case "WS rewired" `Quick test_ws_rewired_connect;
        Alcotest.test_case "WS bad k" `Quick test_ws_bad_k;
        Alcotest.test_case "BA heavy tail" `Quick test_ba_heavy_tail;
      ] );
    ( "topo.internet",
      [
        Alcotest.test_case "Table-2 shape" `Quick test_internet_table2_shape;
        Alcotest.test_case "giant component" `Quick test_internet_giant_component;
        Alcotest.test_case "deterministic" `Quick test_internet_deterministic;
        Alcotest.test_case "relations complete" `Quick test_internet_relations_complete;
        Alcotest.test_case "relation/node kinds" `Quick test_internet_ixp_edges_touch_ixps;
        Alcotest.test_case "tier-1 clique" `Quick test_internet_tiers;
        Alcotest.test_case "small world" `Quick test_internet_small_world;
        Alcotest.test_case "scaled bounds" `Quick test_internet_scaled_bounds;
      ] );
    ( "topo.topology",
      [
        Alcotest.test_case "counts" `Quick test_topology_counts;
        Alcotest.test_case "ases only" `Quick test_topology_ases_only;
      ] );
    ("topo.dataset", [ Alcotest.test_case "roundtrip" `Quick test_dataset_roundtrip ]);
  ]
