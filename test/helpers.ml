(* Shared test fixtures and small graph builders. *)

module G = Broker_graph.Graph

let rng () = Broker_util.Xrandom.create 12345

(* Path 0-1-2-...-(n-1). *)
let path_graph n = G.of_edges ~n (Array.init (n - 1) (fun i -> (i, i + 1)))

(* Cycle. *)
let cycle_graph n =
  G.of_edges ~n (Array.init n (fun i -> (i, (i + 1) mod n)))

(* Star with center 0. *)
let star_graph n = G.of_edges ~n (Array.init (n - 1) (fun i -> (0, i + 1)))

(* Complete graph. *)
let clique_graph n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  G.of_edges ~n (Array.of_list !edges)

(* Two triangles joined by one bridge: 0-1-2-0, 3-4-5-3, bridge 2-3. *)
let barbell_graph () =
  G.of_edges ~n:6 [| (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) |]

(* Random connected-ish graph generator for qcheck. *)
let random_graph rng ~n ~m =
  let edges =
    Array.init m (fun _ ->
        (Broker_util.Xrandom.int rng n, Broker_util.Xrandom.int rng n))
  in
  (* A spanning chain keeps most of it connected. *)
  let chain = Array.init (n - 1) (fun i -> (i, i + 1)) in
  G.of_edges ~n (Array.append edges chain)

let small_internet ?(seed = 77) ?(scale = 0.01) () =
  Broker_topo.Internet.generate
    { (Broker_topo.Internet.scaled scale) with Broker_topo.Internet.seed }

(* qcheck arbitrary for small random graphs, shrinking-free. *)
let graph_arbitrary =
  QCheck.make
    ~print:(fun g -> Printf.sprintf "<graph n=%d m=%d>" (G.n g) (G.m g))
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      int_range 0 80 >>= fun m ->
      int_range 0 1_000_000 >|= fun seed ->
      random_graph (Broker_util.Xrandom.create seed) ~n ~m)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
