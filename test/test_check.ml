(* Drives the brokercheck executable (tools/check) over the compiled
   fixture library in tools/check/fixtures/: the bad fixtures seed one
   violation per rule-construct (a data race per shared-state class for
   C1, an allocation per construct class for C2) and must fail with
   [file:line:col: [rule]] diagnostics; the good and suppressed ones
   must pass silently. A final case checks the real lib/ artifacts,
   pinning the "annotated kernels check clean" acceptance criterion.

   The checker reads .cmt files, so every target here is a build
   artifact (under .brokercheck_fixtures.objs/byte/), not a source
   file; [--source-root ..] lets it find the sources the diagnostics
   (and suppression comments) refer to. *)

let exe = "../tools/check/brokercheck.exe"

let fixture name =
  "../tools/check/fixtures/.brokercheck_fixtures.objs/byte/brokercheck_fixtures__"
  ^ name ^ ".cmt"

type result = { code : int; output : string }

let run_check args =
  let cmd =
    Filename.quote_command exe ("--source-root" :: ".." :: args) ^ " 2>&1"
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED code -> { code; output = Buffer.contents buf }
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      Alcotest.fail "brokercheck killed by signal"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec probe i =
    i + nn <= nh && (String.sub haystack i nn = needle || probe (i + 1))
  in
  nn = 0 || probe 0

let check_contains output needle =
  Alcotest.(check bool)
    (Printf.sprintf "output mentions %S" needle)
    true (contains output needle)

let check_bad ~rule ~file ~lines r =
  Alcotest.(check int) (file ^ " exits 1") 1 r.code;
  check_contains r.output ("[" ^ rule ^ "]");
  List.iter
    (fun line -> check_contains r.output (Printf.sprintf "%s:%d:" file line))
    lines

let check_clean ~file r =
  Alcotest.(check int) (file ^ " exits 0") 0 r.code;
  Alcotest.(check string) (file ^ " is silent") "" r.output

let c1 () =
  (* One diagnostic per shared-state class: global ref (both in the
     worker closure and in the reachable [bump]), global array, global
     mutable field, and a captured ref shared across workers. *)
  check_bad ~rule:"domain-safety" ~file:"c1_bad.ml"
    ~lines:[ 20; 28; 29; 30; 31 ]
    (run_check [ fixture "C1_bad" ]);
  check_clean ~file:"c1_good.ml" (run_check [ fixture "C1_good" ])

let c1_owned () =
  (* The clean fixture's strided fill writes a shared array from workers
     and passes only because of [@brokercheck.owned]; pin that the good
     file exercises the escape hatch rather than avoiding the pattern. *)
  let src = "../tools/check/fixtures/c1_good.ml" in
  let contents = In_channel.with_open_bin src In_channel.input_all in
  Alcotest.(check bool)
    "c1_good.ml uses [@brokercheck.owned]" true
    (contains contents "[@brokercheck.owned]")

let c1_suppression () =
  check_clean ~file:"c1_suppressed.ml" (run_check [ fixture "C1_suppressed" ])

let c2 () =
  (* One diagnostic per allocating construct: tuple-in-loop, ::-in-loop,
     boxed float in loop, closure construction, partial application. *)
  check_bad ~rule:"noalloc" ~file:"c2_bad.ml" ~lines:[ 7; 15; 22; 27; 30 ]
    (run_check [ fixture "C2_bad" ]);
  check_clean ~file:"c2_good.ml" (run_check [ fixture "C2_good" ])

let c2_construct_classes () =
  let r = run_check [ fixture "C2_bad" ] in
  List.iter (check_contains r.output)
    [
      "tuple allocation";
      "constructor ::";
      "boxed float";
      "closure construction";
      "partial application";
    ]

let whole_directory () =
  (* Directory mode scans every .cmt under the path (including the
     dot-directories dune hides artifacts in) and aggregates only the
     bad fixtures; diagnostics come out sorted for stable diffs. *)
  let r = run_check [ "../tools/check/fixtures" ] in
  Alcotest.(check int) "fixtures dir exits 1" 1 r.code;
  List.iter (fun f -> check_contains r.output (f ^ ":")) [ "c1_bad.ml"; "c2_bad.ml" ];
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " not flagged") false
        (contains r.output (f ^ ":")))
    [ "c1_good.ml"; "c1_suppressed.ml"; "c2_good.ml" ]

let repo_lib_clean () =
  (* The repo as shipped checks clean: the annotated kernels carry no
     unsuppressed C1/C2 findings. This is the typed-analysis half of
     test_lint's "repo lib/ lints clean". *)
  let r = run_check [ "../lib" ] in
  Alcotest.(check string) "lib/ check output" "" r.output;
  Alcotest.(check int) "lib/ checks clean" 0 r.code

let repo_lib_annotated () =
  (* The acceptance bar is >= 4 kernels carrying [@brokercheck.noalloc];
     count the annotations in the library sources the suite already
     depends on. *)
  let rec walk acc dir =
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if String.length entry > 0 && entry.[0] = '.' then acc
          else walk acc path
        else if Filename.check_suffix path ".ml" then (
          let contents = In_channel.with_open_bin path In_channel.input_all in
          let rec count i acc =
            match String.index_from_opt contents i '[' with
            | None -> acc
            | Some j ->
                let probe = "[@brokercheck.noalloc]" in
                let n = String.length probe in
                if
                  j + n <= String.length contents
                  && String.sub contents j n = probe
                then count (j + n) (acc + 1)
                else count (j + 1) acc
          in
          count 0 acc)
        else acc)
      acc (Sys.readdir dir)
  in
  let n = walk 0 "../lib" in
  Alcotest.(check bool)
    (Printf.sprintf "lib/ carries >= 4 noalloc kernels (found %d)" n)
    true (n >= 4)

let missing_path () =
  let r = run_check [ "../tools/check/fixtures/enoent.cmt" ] in
  Alcotest.(check int) "missing path exits 2" 2 r.code

let () =
  Alcotest.run "brokercheck"
    [
      ( "rules",
        [
          Alcotest.test_case "C1 domain-safety" `Quick c1;
          Alcotest.test_case "C1 owned escape hatch" `Quick c1_owned;
          Alcotest.test_case "C2 noalloc" `Quick c2;
          Alcotest.test_case "C2 construct classes" `Quick
            c2_construct_classes;
        ] );
      ( "driver",
        [
          Alcotest.test_case "suppression comment" `Quick c1_suppression;
          Alcotest.test_case "directory mode" `Quick whole_directory;
          Alcotest.test_case "repo lib/ checks clean" `Quick repo_lib_clean;
          Alcotest.test_case "repo lib/ annotation floor" `Quick
            repo_lib_annotated;
          Alcotest.test_case "missing path" `Quick missing_path;
        ] );
    ]
