(* Tests for Broker_econ: Market, Bargain, Stackelberg, Shapley,
   Coalition. *)

open Helpers
module Market = Broker_econ.Market
module Bargain = Broker_econ.Bargain
module Stackelberg = Broker_econ.Stackelberg
module Shapley = Broker_econ.Shapley
module Coalition = Broker_econ.Coalition

(* ---------- Market ---------- *)

let test_market_v_shape () =
  let c = Market.customer () in
  check_float "V(0) = 0" 0.0 (Market.v c 0.0);
  check_float "V(1) = v_scale" c.Market.v_scale (Market.v c 1.0);
  (* Strictly increasing, concave (second difference negative). *)
  let h = 0.1 in
  for i = 0 to 8 do
    let a = float_of_int i *. h in
    check_bool "increasing" true (Market.v c (a +. h) > Market.v c a);
    check_bool "concave" true
      (Market.v c (a +. (2.0 *. h)) -. (2.0 *. Market.v c (a +. h)) +. Market.v c a
      < 1e-12)
  done

let test_market_p_shape () =
  let c = Market.customer ~p_peak:0.6 () in
  check_float "P(1) = 0" 0.0 (Market.p c 1.0);
  (* Peak at p_peak. *)
  check_bool "peak" true
    (Market.p c 0.6 > Market.p c 0.3 && Market.p c 0.6 > Market.p c 0.9)

let test_market_best_response_bounds () =
  let c = Market.customer ~a0:0.1 () in
  List.iter
    (fun price ->
      let a = Market.best_response c ~price in
      check_bool "within [a0, 1]" true (a >= c.Market.a0 -. 1e-9 && a <= 1.0 +. 1e-9))
    [ 0.0; 1.0; 5.0; 50.0 ]

let test_market_best_response_zero_price_full () =
  (* With no price and increasing V, P pulling toward its peak then flat
     cost, adoption should be high. *)
  let c = Market.customer ~p_scale:0.0 () in
  let a = Market.best_response c ~price:0.0 in
  check_float_eps 1e-3 "full adoption at zero price" 1.0 a

let test_market_best_response_is_argmax () =
  let c = Market.customer () in
  let price = 3.0 in
  let a_star = Market.best_response c ~price in
  let u_star = Market.utility c ~price a_star in
  (* Grid sanity: no grid point beats the reported optimum. *)
  for i = 0 to 100 do
    let a = c.Market.a0 +. (float_of_int i /. 100.0 *. (1.0 -. c.Market.a0)) in
    check_bool "argmax" true (Market.utility c ~price a <= u_star +. 1e-6)
  done

let test_market_invalid () =
  Alcotest.check_raises "bad peak"
    (Invalid_argument "Market.customer: p_peak in [0,1]") (fun () ->
      ignore (Market.customer ~p_peak:1.5 ()));
  Alcotest.check_raises "bad cost" (Invalid_argument "Market.cost: negative traffic")
    (fun () -> ignore (Market.cost Market.default_cost (-1.0)))

let test_market_population () =
  let pop = Market.random_population ~rng:(rng ()) ~n:50 in
  check_int "size" 50 (Array.length pop);
  Array.iter
    (fun c -> check_bool "valid a0" true (c.Market.a0 >= 0.0 && c.Market.a0 <= 1.0))
    pop

(* ---------- Bargain ---------- *)

let test_bargain_feasibility () =
  (* Feasible iff p_B > h * c. *)
  check_bool "feasible" true (Bargain.feasible ~broker_price:1.0 ~hops:2 ~cost:0.2);
  check_bool "infeasible" false (Bargain.feasible ~broker_price:0.3 ~hops:2 ~cost:0.2);
  check_bool "solve none" true (Bargain.solve ~broker_price:0.3 ~hops:2 0.2 = None)

let test_bargain_closed_form () =
  match Bargain.solve ~cross_check:true ~broker_price:2.0 ~hops:2 0.2 with
  | None -> Alcotest.fail "should be feasible"
  | Some b ->
      (* R = 2*2 - 2*0.2 = 3.6; roots c=0.2 and R/h=1.8; midpoint 1.0. *)
      check_float_eps 1e-9 "price" 1.0 b.Bargain.price;
      check_float_eps 1e-9 "employee surplus" 0.8 b.Bargain.u_employee;
      check_float_eps 1e-9 "broker surplus" 1.6 b.Bargain.u_broker;
      check_bool "both positive" true (b.Bargain.u_employee > 0.0 && b.Bargain.u_broker > 0.0)

let test_bargain_split_equal_surplus_ratio () =
  (* At the Nash solution of this linear problem the employee gets half the
     per-employee pie: u_broker = h * u_employee. *)
  match Bargain.solve ~broker_price:5.0 ~hops:3 0.5 with
  | None -> Alcotest.fail "feasible"
  | Some b -> check_float_eps 1e-9 "h-ratio" (3.0 *. b.Bargain.u_employee) b.Bargain.u_broker

let test_bargain_invalid () =
  Alcotest.check_raises "hops" (Invalid_argument "Bargain: hops must be >= 1")
    (fun () -> ignore (Bargain.feasible ~broker_price:1.0 ~hops:0 ~cost:0.1))

(* ---------- Stackelberg ---------- *)

let test_stackelberg_equilibrium_exists () =
  let pop = Market.random_population ~rng:(rng ()) ~n:40 in
  let eq = Stackelberg.solve pop ~cost:Market.default_cost in
  check_bool "price nonnegative" true (eq.Stackelberg.price >= 0.0);
  check_bool "alpha bounded" true
    (eq.Stackelberg.alpha >= 0.0 && eq.Stackelberg.alpha <= float_of_int 40);
  check_int "adoption per customer" 40 (Array.length eq.Stackelberg.adoptions);
  (* The equilibrium price should not be beaten by nearby prices. *)
  let u p = Stackelberg.broker_utility pop ~cost:Market.default_cost ~price:p in
  let u_star = u eq.Stackelberg.price in
  check_bool "local optimality +" true (u (eq.Stackelberg.price +. 0.05) <= u_star +. 1e-3);
  check_bool "local optimality -" true
    (u (Float.max 0.0 (eq.Stackelberg.price -. 0.05)) <= u_star +. 1e-3)

let test_stackelberg_adoption_decreasing_in_price () =
  let pop = Market.random_population ~rng:(rng ()) ~n:30 in
  let a1 = Stackelberg.aggregate_response pop ~price:0.5 in
  let a2 = Stackelberg.aggregate_response pop ~price:2.0 in
  let a3 = Stackelberg.aggregate_response pop ~price:8.0 in
  check_bool "monotone" true (a1 >= a2 -. 1e-9 && a2 >= a3 -. 1e-9)

let test_stackelberg_full_adoption_price () =
  (* Homogeneous cheap-to-please population adopts fully at low price. *)
  let pop = Array.make 10 (Market.customer ~v_scale:20.0 ~p_scale:0.1 ()) in
  match Stackelberg.full_adoption_price pop ~epsilon:0.02 with
  | None -> Alcotest.fail "full adoption should be achievable at price 0"
  | Some p -> check_bool "positive threshold" true (p >= 0.0)

let test_stackelberg_no_customers () =
  Alcotest.check_raises "empty" (Invalid_argument "Stackelberg.solve: no customers")
    (fun () -> ignore (Stackelberg.solve [||] ~cost:Market.default_cost))

(* ---------- Shapley ---------- *)

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let test_shapley_additive_game () =
  (* v(S) = sum of member weights: phi_j = weight_j. *)
  let w = [| 1.0; 2.0; 4.0 |] in
  let v mask =
    let acc = ref 0.0 in
    for j = 0 to 2 do
      if mask land (1 lsl j) <> 0 then acc := !acc +. w.(j)
    done;
    !acc
  in
  let phi = Shapley.exact ~n:3 ~v in
  Alcotest.(check (array (float 1e-9))) "additive" w phi

let test_shapley_symmetric_game () =
  (* v(S) = |S|^2: all players symmetric, equal shares of v(N) = 16. *)
  let v mask = float_of_int (popcount mask * popcount mask) in
  let phi = Shapley.exact ~n:4 ~v in
  Array.iter (fun p -> check_float "equal split" 4.0 p) phi

let test_shapley_dummy_player () =
  (* Player 2 never contributes. *)
  let v mask = if mask land 0b011 <> 0 then 10.0 else 0.0 in
  let phi = Shapley.exact ~n:3 ~v in
  check_float "dummy gets zero" 0.0 phi.(2)

let test_shapley_efficiency () =
  let v mask = float_of_int (popcount mask) ** 1.5 in
  let phi = Shapley.exact ~n:6 ~v in
  check_float_eps 1e-9 "efficiency" 0.0 (Shapley.efficiency_gap ~v ~n:6 phi)

let test_shapley_monte_carlo_close () =
  let v mask = float_of_int (popcount mask * popcount mask) in
  let exact = Shapley.exact ~n:5 ~v in
  let mc = Shapley.monte_carlo ~rng:(rng ()) ~n:5 ~samples:4000 ~v in
  Array.iteri
    (fun j p -> check_float_eps 0.3 "mc close" p mc.(j))
    exact

let test_shapley_bounds () =
  Alcotest.check_raises "n too big" (Invalid_argument "Shapley.exact: n in [1, 20]")
    (fun () -> ignore (Shapley.exact ~n:21 ~v:(fun _ -> 0.0)))

(* ---------- Coalition ---------- *)

let test_coalition_supermodular_convex_game () =
  (* v(S) = |S|^2 is supermodular and superadditive. *)
  let v mask = float_of_int (popcount mask * popcount mask) in
  let r = rng () in
  check_bool "supermodular" true
    (Coalition.supermodular ~rng:r ~n:6 ~v ~trials:1000).Coalition.holds;
  check_bool "superadditive" true
    (Coalition.superadditive ~rng:r ~n:6 ~v ~trials:1000).Coalition.holds;
  let phi = Shapley.exact ~n:6 ~v in
  check_bool "individually rational" true (Coalition.individually_rational ~v ~n:6 phi);
  check_bool "group rational" true
    (Coalition.group_rational ~rng:r ~n:6 ~v phi ~trials:1000).Coalition.holds

let test_coalition_submodular_violations () =
  (* v(S) = sqrt(|S|) is submodular: supermodularity must be flagged. *)
  let v mask = sqrt (float_of_int (popcount mask)) in
  let r = rng () in
  let check_result = Coalition.supermodular ~rng:r ~n:5 ~v ~trials:1000 in
  check_bool "violations found" true (check_result.Coalition.violations > 0)

let test_coalition_marginal_curve () =
  let values = [| 1.0; 3.0; 6.0; 8.0; 9.0 |] in
  Alcotest.(check (array (float 1e-9)))
    "first differences" [| 1.0; 2.0; 3.0; 2.0; 1.0 |]
    (Coalition.marginal_curve values);
  check_bool "break at index 3" true
    (Coalition.supermodularity_break values = Some 3)

let test_coalition_no_break () =
  check_bool "monotone marginals" true
    (Coalition.supermodularity_break [| 1.0; 2.5; 5.0 |] = None);
  check_bool "short input" true (Coalition.supermodularity_break [| 4.0 |] = None)

let suite =
  [
    ( "econ.market",
      [
        Alcotest.test_case "V shape" `Quick test_market_v_shape;
        Alcotest.test_case "P shape" `Quick test_market_p_shape;
        Alcotest.test_case "best response bounds" `Quick test_market_best_response_bounds;
        Alcotest.test_case "zero price adoption" `Quick test_market_best_response_zero_price_full;
        Alcotest.test_case "best response argmax" `Quick test_market_best_response_is_argmax;
        Alcotest.test_case "invalid params" `Quick test_market_invalid;
        Alcotest.test_case "population" `Quick test_market_population;
      ] );
    ( "econ.bargain",
      [
        Alcotest.test_case "feasibility" `Quick test_bargain_feasibility;
        Alcotest.test_case "closed form" `Quick test_bargain_closed_form;
        Alcotest.test_case "surplus ratio" `Quick test_bargain_split_equal_surplus_ratio;
        Alcotest.test_case "invalid" `Quick test_bargain_invalid;
      ] );
    ( "econ.stackelberg",
      [
        Alcotest.test_case "equilibrium exists" `Quick test_stackelberg_equilibrium_exists;
        Alcotest.test_case "adoption monotone" `Quick test_stackelberg_adoption_decreasing_in_price;
        Alcotest.test_case "full adoption price" `Quick test_stackelberg_full_adoption_price;
        Alcotest.test_case "no customers" `Quick test_stackelberg_no_customers;
      ] );
    ( "econ.shapley",
      [
        Alcotest.test_case "additive game" `Quick test_shapley_additive_game;
        Alcotest.test_case "symmetric game" `Quick test_shapley_symmetric_game;
        Alcotest.test_case "dummy player" `Quick test_shapley_dummy_player;
        Alcotest.test_case "efficiency" `Quick test_shapley_efficiency;
        Alcotest.test_case "monte carlo" `Quick test_shapley_monte_carlo_close;
        Alcotest.test_case "bounds" `Quick test_shapley_bounds;
      ] );
    ( "econ.coalition",
      [
        Alcotest.test_case "convex game stable" `Quick test_coalition_supermodular_convex_game;
        Alcotest.test_case "submodular flagged" `Quick test_coalition_submodular_violations;
        Alcotest.test_case "marginal curve" `Quick test_coalition_marginal_curve;
        Alcotest.test_case "no break" `Quick test_coalition_no_break;
      ] );
  ]
