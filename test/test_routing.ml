(* Tests for valley-free policy machinery: Broker_routing.Policy, Bgp,
   Stitch, and Broker_core.Directional. Uses a small hand-built topology
   with known business relationships. *)

open Helpers
module G = Broker_graph.Graph
module Nm = Broker_topo.Node_meta
module T = Broker_topo.Topology
module Policy = Broker_routing.Policy
module Bgp = Broker_routing.Bgp
module Directional = Broker_core.Directional
module Conn = Broker_core.Connectivity

(* Hand-built topology:

      0 ------- 1        tier-1 peers
     / \         \
    2   3         4      transit (customers of tier-1)
    |   |        / \
    5   6       7   8    stubs (customers of transit)

    plus IXP 9 with members 2 and 4 (peering fabric),
    plus a direct peering link 3 -- 4.                      *)
let fixture () =
  let edges =
    [|
      (0, 1); (0, 2); (0, 3); (1, 4); (2, 5); (3, 6); (4, 7); (4, 8); (2, 9);
      (4, 9); (3, 4);
    |]
  in
  let graph = G.of_edges ~n:10 edges in
  let kinds =
    [|
      Nm.Tier1; Nm.Tier1; Nm.Transit; Nm.Transit; Nm.Transit; Nm.Enterprise;
      Nm.Content; Nm.Access; Nm.Enterprise; Nm.Ixp;
    |]
  in
  let tiers = [| 1; 1; 2; 2; 2; 3; 3; 3; 3; 0 |] in
  let names = Array.init 10 (fun i -> Printf.sprintf "N%d" i) in
  let relations = Nm.Relations.create () in
  Nm.Relations.add_peer relations 0 1;
  Nm.Relations.add_c2p relations ~customer:2 ~provider:0;
  Nm.Relations.add_c2p relations ~customer:3 ~provider:0;
  Nm.Relations.add_c2p relations ~customer:4 ~provider:1;
  Nm.Relations.add_c2p relations ~customer:5 ~provider:2;
  Nm.Relations.add_c2p relations ~customer:6 ~provider:3;
  Nm.Relations.add_c2p relations ~customer:7 ~provider:4;
  Nm.Relations.add_c2p relations ~customer:8 ~provider:4;
  Nm.Relations.add_ixp_member relations ~as_node:2 ~ixp:9;
  Nm.Relations.add_ixp_member relations ~as_node:4 ~ixp:9;
  Nm.Relations.add_peer relations 3 4;
  { T.graph; kinds; tiers; names; relations }

(* ---------- Policy ---------- *)

let test_policy_classify () =
  let t = fixture () in
  check_bool "up" true (Policy.classify t 2 0 = Policy.Up);
  check_bool "down" true (Policy.classify t 0 2 = Policy.Down);
  check_bool "flat" true (Policy.classify t 0 1 = Policy.Flat);
  check_bool "into fabric" true (Policy.classify t 2 9 = Policy.Into_fabric);
  check_bool "out of fabric" true (Policy.classify t 9 4 = Policy.Out_of_fabric)

let test_policy_classify_non_edge () =
  let t = fixture () in
  Alcotest.check_raises "non-edge" (Invalid_argument "Policy.classify: not an edge")
    (fun () -> ignore (Policy.classify t 5 6))

let test_policy_valley_free_accepts () =
  let t = fixture () in
  (* Up, peer at the top, down: 5 -> 2 -> 0 -> 1 -> 4 -> 7. *)
  check_bool "classic valley-free" true (Policy.valley_free t [ 5; 2; 0; 1; 4; 7 ]);
  (* Pure ascent. *)
  check_bool "ascent" true (Policy.valley_free t [ 5; 2; 0 ]);
  (* Pure descent. *)
  check_bool "descent" true (Policy.valley_free t [ 0; 2; 5 ]);
  (* Through the IXP fabric: 5 -> 2 -> 9 -> 4 -> 8. *)
  check_bool "via ixp" true (Policy.valley_free t [ 5; 2; 9; 4; 8 ]);
  (* Direct peering at the peak: 6 -> 3 -> 4 -> 7. *)
  check_bool "peer peak" true (Policy.valley_free t [ 6; 3; 4; 7 ])

let test_policy_valley_free_rejects () =
  let t = fixture () in
  (* Down then up: a valley. 0 -> 2 -> ... cannot climb back: 5 -> 2 is
     down-up? Build: 0 -> 3 -> 6 is descent, then 6 has no up after...
     use 2 -> 0 -> 1 -> 4 then up again 4 -> ... no up edge from 4 except
     to 1. Valley: 5 -> 2 -> 0 (up,up) then 0 -> 3 (down) then 3 -> 4
     (peer after descent - illegal). *)
  check_bool "peer after descent" false (Policy.valley_free t [ 5; 2; 0; 3; 4 ]);
  (* Two peer hops: 3 -> 4 peer then 4 -> 9 -> 2 fabric peer. *)
  check_bool "second peering" false (Policy.valley_free t [ 3; 4; 9; 2 ]);
  (* Peer hop while already descending. *)
  check_bool "peer while descending" false (Policy.valley_free t [ 0; 3; 4 ]);
  (* Up after down. *)
  check_bool "up after down is a valley" false (Policy.valley_free t [ 0; 2; 0 ]);
  (* Non-edge path invalid. *)
  check_bool "non-edge" false (Policy.valley_free t [ 5; 6 ])

let test_policy_exports () =
  let t = fixture () in
  (* Routes learned from a customer (Down neighbor) export to everyone. *)
  check_bool "customer->peer" true
    (Policy.exports_to t ~learned_from:Policy.Down ~toward:Policy.Flat);
  (* Routes learned from a peer export only to customers. *)
  check_bool "peer->peer" false
    (Policy.exports_to t ~learned_from:Policy.Flat ~toward:Policy.Flat);
  check_bool "peer->customer" true
    (Policy.exports_to t ~learned_from:Policy.Flat ~toward:Policy.Down);
  check_bool "provider->provider" false
    (Policy.exports_to t ~learned_from:Policy.Up ~toward:Policy.Up)

(* ---------- Bgp ---------- *)

let test_bgp_routes_to_stub () =
  let t = fixture () in
  let routes = Bgp.routes_to t 5 in
  (* 5's provider chain: 2 then 0 have customer routes. *)
  (match routes.(2) with
  | Some r -> check_int "direct customer" 1 r.Bgp.hops
  | None -> Alcotest.fail "2 should reach 5");
  (match routes.(0) with
  | Some r ->
      check_int "two customer hops" 2 r.Bgp.hops;
      check_bool "via customer" true (r.Bgp.via = Bgp.Via_customer)
  | None -> Alcotest.fail "0 should reach 5");
  (* 1 reaches 5 via its peer 0 (peer route). *)
  (match routes.(1) with
  | Some r -> check_bool "via peer" true (r.Bgp.via = Bgp.Via_peer)
  | None -> Alcotest.fail "1 should reach 5");
  (* 6 reaches 5 via its provider 3 (provider route). *)
  (match routes.(6) with
  | Some r -> check_bool "via provider" true (r.Bgp.via = Bgp.Via_provider)
  | None -> Alcotest.fail "6 should reach 5");
  (* destination itself *)
  (match routes.(5) with
  | Some r -> check_int "self" 0 r.Bgp.hops
  | None -> Alcotest.fail "self route")

let test_bgp_prefers_customer () =
  let t = fixture () in
  (* Destination 7: AS 4 has customer route (1 hop). AS 3 has peer route via
     peering 3-4 (2 hops) even though provider route via 0-1-4 exists. *)
  let routes = Bgp.routes_to t 7 in
  (match routes.(3) with
  | Some r ->
      check_bool "peer preferred over provider" true (r.Bgp.via = Bgp.Via_peer);
      check_int "hops" 2 r.Bgp.hops
  | None -> Alcotest.fail "3 should reach 7")

let test_bgp_reachability_full_on_tree () =
  let t = fixture () in
  let frac = Bgp.reachable_fraction ~rng:(rng ()) ~destinations:9 t in
  (* Everything is reachable in this little hierarchy. *)
  check_float "full reachability" 1.0 frac;
  let len = Bgp.average_path_length ~rng:(rng ()) ~destinations:9 t in
  check_bool "positive path length" true (len > 0.0)

(* ---------- Directional ---------- *)

let test_directional_matches_policy () =
  let t = fixture () in
  (* With every node a broker, directional connectivity counts exactly the
     valley-free-reachable ordered pairs. Cross-check a few pairs against
     Policy.valley_free path existence. *)
  let sat =
    Directional.saturated_sampled ~rng:(rng ()) ~sources:10 t
      ~is_broker:(fun _ -> true)
  in
  check_bool "most pairs valley-free reachable" true (sat > 0.8)

let test_directional_broker_restriction () =
  let t = fixture () in
  (* No brokers: nothing moves. *)
  let sat =
    Directional.saturated_sampled ~rng:(rng ()) ~sources:10 t
      ~is_broker:(fun _ -> false)
  in
  check_float "zero" 0.0 sat

let test_directional_upgrades_monotone () =
  let t = fixture () in
  let brokers = [| 0; 1; 2; 3; 4 |] in
  let is_broker = Conn.of_brokers ~n:10 brokers in
  let source_set = Array.init 10 (fun i -> i) in
  let sat_plain =
    Directional.saturated_sampled ~source_set ~rng:(rng ()) ~sources:10 t ~is_broker
  in
  let upgrades =
    Directional.upgrade_broker_edges ~rng:(rng ()) t ~brokers ~fraction:1.0
  in
  let sat_up =
    Directional.saturated_sampled ~upgrades ~source_set ~rng:(rng ()) ~sources:10 t
      ~is_broker
  in
  check_bool "upgrades never hurt" true (sat_up >= sat_plain -. 1e-12);
  check_bool "some upgrades counted" true (Directional.upgrade_count upgrades > 0)

let test_directional_below_bidirectional () =
  let t = small_internet ~seed:6 ~scale:0.01 () in
  let g = t.T.graph in
  let n = G.n g in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  let is_broker = Conn.of_brokers ~n brokers in
  let source_set = Broker_util.Sampling.without_replacement (rng ()) ~n ~k:40 in
  let dir =
    Directional.saturated_sampled ~source_set ~rng:(rng ()) ~sources:40 t ~is_broker
  in
  let bidir =
    (Conn.sampled ~l_max:1 ~source_set ~rng:(rng ()) ~sources:40 g ~is_broker)
      .Conn.saturated
  in
  check_bool "valley-free <= bidirectional" true (dir <= bidir +. 1e-12)

let test_upgrade_fraction_bounds () =
  let t = fixture () in
  Alcotest.check_raises "fraction"
    (Invalid_argument "Directional.upgrade_broker_edges: fraction in [0,1]")
    (fun () ->
      ignore (Directional.upgrade_broker_edges ~rng:(rng ()) t ~brokers:[| 0 |] ~fraction:1.5))

(* ---------- Stitch ---------- *)

let test_stitch_simple () =
  let t = fixture () in
  let is_broker v = v = 2 || v = 0 || v = 1 || v = 4 in
  match Broker_routing.Stitch.stitch t.T.graph ~is_broker ~src:5 ~dst:7 with
  | None -> Alcotest.fail "path should exist"
  | Some s ->
      check_bool "path endpoints" true
        (List.hd s.Broker_routing.Stitch.path = 5
        && List.nth s.Broker_routing.Stitch.path (List.length s.Broker_routing.Stitch.path - 1) = 7);
      check_bool "dominated" true
        (Broker_core.Dominating.is_dominated_path ~is_broker s.Broker_routing.Stitch.path);
      (* Shortest dominated route is 5-2-9-4-7: the IXP fabric 9 sits
         between brokers 2 and 4 and is "hired". *)
      Alcotest.(check (list int)) "fabric hop hired" [ 9 ] s.Broker_routing.Stitch.employees

let test_stitch_with_employee () =
  (* Brokers 0 and 2 with a non-broker 1 between them: path 0-1-2 hires 1. *)
  let g = path_graph 3 in
  let is_broker v = v = 0 || v = 2 in
  match Broker_routing.Stitch.stitch g ~is_broker ~src:0 ~dst:2 with
  | None -> Alcotest.fail "path should exist"
  | Some s ->
      Alcotest.(check (list int)) "employee is 1" [ 1 ] s.Broker_routing.Stitch.employees;
      check_int "employee hops" 2 (Broker_routing.Stitch.total_employee_hops s)

let test_stitch_none () =
  let g = G.of_edges ~n:4 [| (0, 1); (2, 3) |] in
  check_bool "no path" true
    (Broker_routing.Stitch.stitch g ~is_broker:(fun _ -> true) ~src:0 ~dst:3 = None)

let suite =
  [
    ( "routing.policy",
      [
        Alcotest.test_case "classify" `Quick test_policy_classify;
        Alcotest.test_case "classify non-edge" `Quick test_policy_classify_non_edge;
        Alcotest.test_case "valley-free accepts" `Quick test_policy_valley_free_accepts;
        Alcotest.test_case "valley-free rejects" `Quick test_policy_valley_free_rejects;
        Alcotest.test_case "export rules" `Quick test_policy_exports;
      ] );
    ( "routing.bgp",
      [
        Alcotest.test_case "routes to stub" `Quick test_bgp_routes_to_stub;
        Alcotest.test_case "class preference" `Quick test_bgp_prefers_customer;
        Alcotest.test_case "reachability" `Quick test_bgp_reachability_full_on_tree;
      ] );
    ( "core.directional",
      [
        Alcotest.test_case "matches policy" `Quick test_directional_matches_policy;
        Alcotest.test_case "broker restriction" `Quick test_directional_broker_restriction;
        Alcotest.test_case "upgrades monotone" `Quick test_directional_upgrades_monotone;
        Alcotest.test_case "below bidirectional" `Quick test_directional_below_bidirectional;
        Alcotest.test_case "fraction bounds" `Quick test_upgrade_fraction_bounds;
      ] );
    ( "routing.stitch",
      [
        Alcotest.test_case "simple" `Quick test_stitch_simple;
        Alcotest.test_case "employee hop" `Quick test_stitch_with_employee;
        Alcotest.test_case "no path" `Quick test_stitch_none;
      ] );
  ]
