(* Integration smoke tests: every table/figure reproduction runs end to end
   on a tiny topology, and the shared context's invariants hold. Output is
   diverted so `dune runtest` stays readable. *)

open Helpers
module E = Broker_experiments

let tiny_ctx () = E.Ctx.create ~scale:0.008 ~sources:24 ~seed:99 ()

let with_quiet_stdout f =
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let test_ctx_caching () =
  let ctx = tiny_ctx () in
  let t1 = E.Ctx.topo ctx and t2 = E.Ctx.topo ctx in
  check_bool "topology cached" true (t1 == t2);
  let o1 = E.Ctx.maxsg_order ctx and o2 = E.Ctx.maxsg_order ctx in
  check_bool "order cached" true (o1 == o2)

let test_ctx_scale_count () =
  let ctx = E.Ctx.create ~scale:0.1 () in
  check_int "scaled" 100 (E.Ctx.scale_count ctx 1000);
  check_int "min 1" 1 (E.Ctx.scale_count ctx 3)

let test_ctx_saturated_monotone () =
  let ctx = tiny_ctx () in
  let order = E.Ctx.maxsg_order ctx in
  let k2 = min 4 (Array.length order) and k1 = min 2 (Array.length order) in
  let s1 = E.Ctx.saturated ctx ~brokers:(Array.sub order 0 k1) in
  let s2 = E.Ctx.saturated ctx ~brokers:(Array.sub order 0 k2) in
  check_bool "monotone in brokers" true (s2 >= s1 -. 1e-12)

let test_ctx_free_dominates () =
  let ctx = tiny_ctx () in
  let order = E.Ctx.maxsg_order ctx in
  let restricted = E.Ctx.saturated ctx ~brokers:order in
  let free = (E.Ctx.free_curve ctx).Broker_core.Connectivity.saturated in
  check_bool "free >= restricted" true (free >= restricted -. 1e-12)

let test_table1_rows () =
  let ctx = tiny_ctx () in
  let rows = with_quiet_stdout (fun () -> E.Table1.compute ctx) in
  check_int "5 rows" 5 (List.length rows);
  List.iter
    (fun (r : E.Table1.row) ->
      check_bool "coverage in [0,1]" true
        (r.E.Table1.coverage >= 0.0 && r.E.Table1.coverage <= 1.0))
    rows

let test_table3_rows () =
  let ctx = tiny_ctx () in
  let rows = with_quiet_stdout (fun () -> E.Table3.compute ctx) in
  check_int "5 topologies" 5 (List.length rows)

let test_fig2a_result () =
  let ctx = tiny_ctx () in
  let r = with_quiet_stdout (fun () -> E.Fig2a.compute ~runs:20 ctx) in
  check_int "runs" 20 (Array.length r.E.Fig2a.sizes);
  check_bool "sets are large" true (r.E.Fig2a.mean_fraction > 0.2)

let test_fig3_correlation_decays () =
  let ctx = tiny_ctx () in
  let small = with_quiet_stdout (fun () -> E.Fig3.compute ~candidates:24 ctx ~base_k:2) in
  check_bool "some candidates" true (Array.length small.E.Fig3.points > 4);
  check_bool "correlation defined" true
    (Float.is_finite small.E.Fig3.correlation)

let test_ext_chaos_rows () =
  let module R = E.Ext_chaos in
  let ctx = tiny_ctx () in
  let rows = with_quiet_stdout (fun () -> R.compute ~n_sessions:800 ctx) in
  let n_keeps = List.length R.keeps in
  check_int "3 alliance sizes x rate sweep" (3 * n_keeps) (List.length rows);
  List.iter
    (fun (r : R.row) ->
      check_bool "availability in [0,1]" true
        (r.R.availability >= 0.0 && r.R.availability <= 1.0);
      check_bool "delivered rates in [0,1]" true
        (r.R.delivered_on >= 0.0 && r.R.delivered_on <= 1.0
        && r.R.delivered_off >= 0.0 && r.R.delivered_off <= 1.0);
      if r.R.keep = 0.0 then begin
        check_float "full availability at zero rate" 1.0 r.R.availability;
        check_int "no drops at zero rate" 0 r.R.dropped_off;
        check_int "no reroutes at zero rate" 0 r.R.failed_over;
        check_float "failover irrelevant at zero rate" r.R.delivered_off
          r.R.delivered_on
      end
      else begin
        (* The X7 acceptance bar: failover recovers strictly more delivered
           sessions at every nonzero fault rate. *)
        check_bool "failover strictly wins" true
          (r.R.delivered_on > r.R.delivered_off);
        check_bool "some sessions rerouted" true (r.R.failed_over > 0);
        check_bool "drops without failover" true (r.R.dropped_off > 0)
      end)
    rows;
  (* Within each alliance size (keeps ascend), availability degrades
     monotonically — guaranteed sample-wise by the coupled thinning. *)
  List.iteri
    (fun i group_start ->
      ignore i;
      let group = List.filteri (fun j _ -> j >= group_start && j < group_start + n_keeps) rows in
      ignore
        (List.fold_left
           (fun prev (r : R.row) ->
             check_bool "availability monotone in fault rate" true
               (r.R.availability <= prev +. 1e-12);
             r.R.availability)
           1.0 group))
    [ 0; n_keeps; 2 * n_keeps ];
  (* A fresh identically-seeded context replays the exact rows (Ctx.rng
     streams are counter-derived, so reuse of the same context would not). *)
  let rows2 = with_quiet_stdout (fun () -> R.compute ~n_sessions:800 (tiny_ctx ())) in
  check_bool "seed-deterministic" true (rows = rows2)

(* Copied from test_obs.ml: run [f] under a pinned REPRO_DOMAINS. *)
let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

let test_ext_churn_cache_rows () =
  let module R = E.Ext_churn_cache in
  let run () =
    with_quiet_stdout (fun () -> R.compute ~requests_per_phase:1200 (tiny_ctx ()))
  in
  let phases, remaps = run () in
  (* Shape: strategies in registry order, phases in schedule order. *)
  let expect_order =
    List.concat_map
      (fun (name, _) -> List.map (fun p -> (name, p)) R.phase_names)
      R.strategies
  in
  check_bool "phase rows ordered by strategy then phase" true
    (List.map (fun (r : R.phase_row) -> (r.R.strategy, r.R.phase)) phases
    = expect_order);
  check_int "one remap row per strategy" (List.length R.strategies)
    (List.length remaps);
  let row s p =
    List.find
      (fun (r : R.phase_row) ->
        String.equal r.R.strategy s && String.equal r.R.phase p)
      phases
  in
  List.iter
    (fun (r : R.phase_row) ->
      check_bool "lookups positive" true (r.R.lookups > 0);
      check_bool "hit rate in [0,1]" true
        (r.R.hit_rate >= 0.0 && r.R.hit_rate <= 1.0))
    phases;
  (* Warm phase: no churn yet, so every strategy replays identically. *)
  let warm_flush = (row "flush" "warm").R.hit_rate in
  List.iter
    (fun (name, _) ->
      check_float (name ^ " warm hit rate matches flush") warm_flush
        (row name "warm").R.hit_rate)
    R.strategies;
  (* The X8 acceptance bar: consistent hashing holds a strictly higher
     hit rate than static modulo through churn AND after recovery. *)
  check_bool "ring beats modulo under churn" true
    ((row "ring" "churn").R.hit_rate > (row "modulo" "churn").R.hit_rate);
  check_bool "ring beats modulo after recovery" true
    ((row "ring" "recovered").R.hit_rate > (row "modulo" "recovered").R.hit_rate);
  (* Remap fractions: ring ~ m/n, modulo ~ (n-1)/n, flush has no owners. *)
  let remap s = List.find (fun (r : R.remap_row) -> String.equal r.R.strategy s) remaps in
  let ring = remap "ring" and md = remap "modulo" and fl = remap "flush" in
  check_bool "flush remap undefined" true (Float.is_nan fl.R.remap_fraction);
  check_bool "modulo remaps most keys" true (md.R.remap_fraction >= 0.5);
  check_bool "ring remap bounded" true
    (ring.R.remap_fraction
    <= 3.5 *. float_of_int ring.R.crashed_shards /. float_of_int ring.R.shards);
  check_bool "ring remaps less than modulo" true
    (ring.R.remap_fraction < md.R.remap_fraction);
  (* Deterministic: a fresh identically-seeded context replays the rows
     exactly, and the row values are domain-count independent. *)
  let d1 = with_domains "1" run and d4 = with_domains "4" run in
  check_bool "seed-deterministic" true (compare (phases, remaps) d1 = 0);
  check_bool "identical across REPRO_DOMAINS" true (compare d1 d4 = 0);
  (* The same schedule end to end through the simulator. *)
  let sims = with_quiet_stdout (fun () -> R.compute_sim ~n_sessions:600 (tiny_ctx ())) in
  check_bool "one sim row per strategy, registry order" true
    (List.map (fun (r : R.sim_row) -> r.R.strategy) sims
    = List.map fst R.strategies);
  List.iter
    (fun (r : R.sim_row) ->
      check_bool "delivered in [0,1]" true
        (r.R.delivered >= 0.0 && r.R.delivered <= 1.0);
      check_bool "sim hit rate in [0,1]" true
        (r.R.sim_hit_rate >= 0.0 && r.R.sim_hit_rate <= 1.0))
    sims;
  (* Only the legacy strategy flushes on recovery; sharded ones never do. *)
  List.iter
    (fun (r : R.sim_row) ->
      if not (String.equal r.R.strategy "flush") then
        check_int (r.R.strategy ^ " never flushes") 0 r.R.flushed)
    sims

(* X10: brokerstat phase timelines. *)
let test_ext_timeline_rows () =
  let module R = E.Ext_timeline in
  let run () = R.compute ~n_sessions:500 (tiny_ctx ()) in
  let r = run () in
  check_bool "horizon positive" true (r.R.horizon > 0.0);
  check_bool "window is horizon/40" true
    (Float.abs (r.R.window -. (r.R.horizon /. 40.0)) < 1e-9);
  check_int "two kinds x three phases of latency rows"
    (2 * List.length R.phase_names)
    (List.length r.R.latencies);
  List.iter
    (fun (row : R.latency_row) ->
      check_bool "samples non-negative" true (row.R.samples >= 0);
      check_bool "p50 <= p90" true (row.R.p50 <= row.R.p90 +. 1e-9);
      check_bool "p90 <= p99" true (row.R.p90 <= row.R.p99 +. 1e-9);
      check_bool "p99 <= p99.9" true (row.R.p99 <= row.R.p999 +. 1e-9))
    r.R.latencies;
  (* Every delivered session contributes exactly one e2e sample. *)
  let e2e_samples =
    List.fold_left
      (fun acc (row : R.latency_row) ->
        if String.equal row.R.kind "e2e" then acc + row.R.samples else acc)
      0 r.R.latencies
  in
  let s = r.R.stats in
  check_int "e2e samples = delivered sessions"
    (s.Broker_sim.Simulator.admitted
    - s.Broker_sim.Simulator.dropped_midflight)
    e2e_samples;
  check_bool "throughput rows in phase order" true
    (List.map (fun (row : R.throughput_row) -> row.R.tp_phase) r.R.throughput
    = R.phase_names);
  List.iter
    (fun (row : R.throughput_row) ->
      check_bool "duration positive" true (row.R.duration > 0.0);
      check_bool "rates non-negative" true
        (row.R.admitted_rate >= 0.0
        && row.R.delivered_rate >= 0.0
        && row.R.rejected_rate >= 0.0);
      check_bool "hit rate in [0,1]" true
        (row.R.hit_rate >= 0.0 && row.R.hit_rate <= 1.0);
      check_bool "recomputes non-negative" true (row.R.recomputes >= 0))
    r.R.throughput;
  check_bool "recovery after the all-clear" true
    (Float.is_nan r.R.recovery_time || r.R.recovery_time >= 0.0);
  check_bool "delivered series present" true
    (Array.length r.R.delivered_series > 0);
  (* Bitwise determinism: identical results on a fresh identically-seeded
     context, and independent of the domain count. *)
  let d1 = with_domains "1" run and d4 = with_domains "4" run in
  check_bool "seed-deterministic" true (compare r d1 = 0);
  check_bool "identical across REPRO_DOMAINS" true (compare d1 d4 = 0)

let test_all_experiments_run () =
  let ctx = tiny_ctx () in
  let reports = with_quiet_stdout (fun () -> E.All.run_all ctx) in
  check_int "one report per registry entry"
    (List.length E.All.experiments)
    (List.length reports);
  List.iter2
    (fun (e : E.All.experiment) (id, r) ->
      check_bool "registry order" true (String.equal e.id id);
      check_bool "report named after id" true
        (String.equal (Broker_report.Report.name r) e.id))
    E.All.experiments reports

let test_run_one_unknown () =
  let ctx = tiny_ctx () in
  match E.All.run_one ctx "nonsense" with
  | Ok _ -> Alcotest.fail "should not resolve"
  | Error msg -> check_bool "helpful error" true (contains ~needle:"table1" msg)

let test_find () =
  check_bool "case insensitive" true (E.All.find "TABLE1" <> None);
  check_bool "unknown" true (E.All.find "nope" = None)

let suite =
  [
    ( "experiments.ctx",
      [
        Alcotest.test_case "caching" `Quick test_ctx_caching;
        Alcotest.test_case "scale_count" `Quick test_ctx_scale_count;
        Alcotest.test_case "saturated monotone" `Quick test_ctx_saturated_monotone;
        Alcotest.test_case "free dominates" `Quick test_ctx_free_dominates;
      ] );
    ( "experiments.results",
      [
        Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        Alcotest.test_case "table3 rows" `Quick test_table3_rows;
        Alcotest.test_case "fig2a" `Quick test_fig2a_result;
        Alcotest.test_case "fig3" `Quick test_fig3_correlation_decays;
        Alcotest.test_case "ext_chaos" `Quick test_ext_chaos_rows;
        Alcotest.test_case "ext_churn_cache" `Quick test_ext_churn_cache_rows;
        Alcotest.test_case "ext_timeline" `Quick test_ext_timeline_rows;
        Alcotest.test_case "lookup unknown" `Quick test_run_one_unknown;
        Alcotest.test_case "find" `Quick test_find;
      ] );
    ( "experiments.integration",
      [ Alcotest.test_case "all experiments run" `Slow test_all_experiments_run ] );
  ]
