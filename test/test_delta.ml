(* The dynamic-topology layer: delta overlays over the immutable CSR,
   view-based kernel equivalence, compaction bitwise-equality, the
   incremental connectivity tracker vs the from-scratch oracle (across
   REPRO_DOMAINS), the update-stream generator/scheduler, and the
   simulator's streaming-update path. *)

open Helpers
module G = Broker_graph.Graph
module View = Broker_graph.View
module Delta = Broker_graph.Delta
module Bfs = Broker_graph.Bfs
module X = Broker_util.Xrandom
module Conn = Broker_core.Connectivity
module Incr = Broker_core.Incremental
module Sim = Broker_sim.Simulator
module Stream = Broker_sim.Topo_stream
module Cache = Broker_sim.Shard_cache
module Workload = Broker_sim.Workload

let q ?(count = 80) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

(* A base graph plus a random announce/withdraw script (endpoints may
   collide or repeat: self-loops and duplicate ops must be no-ops). *)
let script_arb =
  QCheck.make
    ~print:(fun (n, m, nops, seed) ->
      Printf.sprintf "<n=%d m=%d nops=%d seed=%d>" n m nops seed)
    QCheck.Gen.(
      int_range 2 32 >>= fun n ->
      int_range 0 64 >>= fun m ->
      int_range 0 96 >>= fun nops ->
      int_range 0 1_000_000 >|= fun seed -> (n, m, nops, seed))

(* Replay a script into a delta and, in lockstep, a naive edge-set model.
   Returns the delta and the model's edge array. *)
let replay (n, m, nops, seed) =
  let rng = X.create seed in
  let g = random_graph rng ~n ~m in
  let d = Delta.create g in
  let model = Hashtbl.create 64 in
  let key u v = (min u v * n) + max u v in
  G.iter_edges g (fun u v -> Hashtbl.replace model (key u v) (u, v));
  let ok = ref true in
  for _ = 1 to nops do
    let u = X.int rng n and v = X.int rng n in
    let announce = X.int rng 2 = 0 in
    let present = Hashtbl.mem model (key u v) in
    if announce then begin
      let changed = Delta.add_edge d u v in
      if changed <> ((not present) && u <> v) then ok := false;
      if u <> v then Hashtbl.replace model (key u v) (u, v)
    end
    else begin
      let changed = Delta.remove_edge d u v in
      if changed <> present then ok := false;
      Hashtbl.remove model (key u v)
    end
  done;
  let edges = Array.of_seq (Hashtbl.to_seq_values model) in
  (g, d, G.of_edges ~n edges, !ok)

let neighbors_of_view vw u =
  List.rev (View.fold_neighbors vw u (fun acc v -> v :: acc) [])

let overlay_reads_match_rebuild =
  q "overlay reads = rebuilt-CSR reads" script_arb (fun script ->
      let _, d, rebuilt, ok = replay script in
      let vw = Delta.view d in
      let n = G.n rebuilt in
      ok
      && Delta.edges d = G.m rebuilt
      && Delta.arcs d = G.arcs rebuilt
      && View.n vw = n
      && View.arcs vw = G.arcs rebuilt
      &&
      let per_vertex = ref true in
      for u = 0 to n - 1 do
        if Delta.degree d u <> G.degree rebuilt u then per_vertex := false;
        if View.degree vw u <> G.degree rebuilt u then per_vertex := false;
        if neighbors_of_view vw u <> Array.to_list (G.neighbors rebuilt u)
        then per_vertex := false;
        for v = 0 to n - 1 do
          if Delta.mem_edge d u v <> G.mem_edge rebuilt u v then
            per_vertex := false;
          if View.mem_edge vw u v <> G.mem_edge rebuilt u v then
            per_vertex := false
        done
      done;
      !per_vertex)

let compact_equals_rebuild =
  q "compact = of_edges rebuild (bitwise)" script_arb (fun script ->
      let g, d, rebuilt, _ = replay script in
      G.equal (Delta.compact g d) rebuilt)

let view_is_snapshot =
  q "views are immutable snapshots" script_arb (fun ((n, _, _, seed) as script) ->
      let _, d, rebuilt, _ = replay script in
      let vw = Delta.view d in
      (* Mutate on: flip edges around a random vertex. *)
      let rng = X.create (seed + 1) in
      for _ = 1 to 8 do
        let u = X.int rng n and v = X.int rng n in
        if Delta.mem_edge d u v then ignore (Delta.remove_edge d u v)
        else ignore (Delta.add_edge d u v)
      done;
      let still = ref true in
      for u = 0 to n - 1 do
        if neighbors_of_view vw u <> Array.to_list (G.neighbors rebuilt u)
        then still := false
      done;
      !still)

let bfs_view_matches_rebuild =
  let ws = Bfs.workspace () in
  let ws' = Bfs.workspace () in
  q "Bfs.run_view on overlay = Bfs.run on rebuild" script_arb
    (fun ((n, _, _, seed) as script) ->
      let _, d, rebuilt, _ = replay script in
      let src = X.int (X.create (seed + 2)) n in
      Bfs.run_view ws (Delta.view d) src;
      Bfs.run ws' rebuilt src;
      let a = Array.make n 0 and b = Array.make n 0 in
      Bfs.distances_into ws a;
      Bfs.distances_into ws' b;
      a = b)

(* ---------- incremental tracker vs from-scratch oracle ---------- *)

let curves_equal (a : Conn.curve) (b : Conn.curve) =
  a.Conn.l_max = b.Conn.l_max
  && Float.equal a.Conn.saturated b.Conn.saturated
  && Array.for_all2 Float.equal a.Conn.per_hop b.Conn.per_hop

let incr_script_arb =
  QCheck.make
    ~print:(fun (n, m, k, nops, seed) ->
      Printf.sprintf "<n=%d m=%d brokers=%d nops=%d seed=%d>" n m k nops seed)
    QCheck.Gen.(
      int_range 2 28 >>= fun n ->
      int_range 0 56 >>= fun m ->
      int_range 0 6 >>= fun k ->
      int_range 0 24 >>= fun nops ->
      int_range 0 1_000_000 >|= fun seed -> (n, m, k, nops, seed))

let incremental_matches_oracle_under ~domains =
  q ~count:40
    (Printf.sprintf "incremental = oracle (REPRO_DOMAINS=%s)" domains)
    incr_script_arb
    (fun (n, m, k, nops, seed) ->
      with_domains domains (fun () ->
          let rng = X.create seed in
          let g = random_graph rng ~n ~m in
          let brokers = Array.init k (fun _ -> X.int rng n) in
          let is_broker = Conn.of_brokers ~n brokers in
          let nsrc = 1 + X.int rng 70 in
          let sources = Array.init nsrc (fun _ -> X.int rng n) in
          let tracker = Incr.create g ~is_broker ~sources in
          let d = Delta.create g in
          (* Two bursts: the second starts from an already-dirty overlay. *)
          let burst () =
            Array.init (nops / 2) (fun _ ->
                let u = X.int rng n and v = X.int rng n in
                if X.int rng 2 = 0 then Incr.Add (u, v) else Incr.Remove (u, v))
          in
          let check_burst ops =
            ignore (Incr.apply tracker ops);
            Array.iter
              (fun op ->
                ignore
                  (match op with
                  | Incr.Add (u, v) -> Delta.add_edge d u v
                  | Incr.Remove (u, v) -> Delta.remove_edge d u v))
              ops;
            let g' = Delta.compact g d in
            curves_equal (Incr.curve tracker)
              (Conn.eval_sources g' ~is_broker sources)
          in
          let initial =
            curves_equal (Incr.curve tracker)
              (Conn.eval_sources g ~is_broker sources)
          in
          initial && check_burst (burst ()) && check_burst (burst ())))

let incr_stats_accounting () =
  (* Hand-built scene: broker 0 in a 4-chain 0-1-2-3. *)
  let g = G.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  let is_broker v = v = 0 in
  let sources = [| 0; 1; 2; 3 |] in
  let t = Incr.create g ~is_broker ~sources in
  (* (2,3) has no broker endpoint: ignored. (0,1) exists: noop.
     (0,3) is new and dominated: applied. *)
  let s =
    Incr.apply t [| Incr.Remove (2, 3); Incr.Add (0, 1); Incr.Add (0, 3) |]
  in
  check_int "applied" 1 s.Incr.applied;
  check_int "noops" 1 s.Incr.noops;
  check_int "ignored" 1 s.Incr.ignored;
  check_int "batches total" 1 s.Incr.batches_total;
  check_int "batches reevaluated" 1 s.Incr.batches_reevaluated;
  (* No dominated change -> no re-evaluation. *)
  let s2 = Incr.apply t [| Incr.Remove (1, 2) |] in
  check_int "ignored only" 1 s2.Incr.ignored;
  check_int "no re-eval" 0 s2.Incr.batches_reevaluated

(* ---------- update streams ---------- *)

let burst_is_valid =
  q ~count:60 "burst: disjoint valid withdraw/announce ops" graph_arbitrary
    (fun g ->
      let n = G.n g in
      let rng = X.create 4242 in
      let ops = Stream.burst ~rng g ~size:24 in
      let seen = Hashtbl.create 64 in
      Array.for_all
        (fun op ->
          let u, v = Stream.op_endpoints op in
          let k = (min u v * n) + max u v in
          let fresh = not (Hashtbl.mem seen k) in
          Hashtbl.replace seen k ();
          fresh && u <> v
          &&
          match op with
          | Stream.Withdraw _ -> G.mem_edge g u v
          | Stream.Announce _ -> not (G.mem_edge g u v))
        ops)

let schedule_delays () =
  let g = G.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3); (3, 4) |] in
  let ev op = { Stream.time = 1.0; op } in
  let events = [| ev (Stream.Announce (3, 4)); ev (Stream.Withdraw (0, 1)) |] in
  let central =
    Stream.schedule g ~brokers:[| 0 |] (Stream.Centralized { delay = 2.5 })
      events
  in
  Array.iter
    (fun e -> check_float "constant delay" 3.5 e.Stream.time)
    central;
  let bgp =
    Stream.schedule g ~brokers:[| 0 |]
      (Stream.Bgp_like { base = 1.0; per_hop = 2.0 })
      events
  in
  (* (3,4): nearer endpoint 3 hops to broker 0 -> 1.0 + (1 + 2*3). *)
  check_float "hop-staggered" 8.0 bgp.(0).Stream.time;
  (* (0,1): broker endpoint itself -> 0 hops. *)
  check_float "broker-adjacent" 2.0 bgp.(1).Stream.time;
  (* No broker reachable: pessimistic n hops. *)
  let far =
    Stream.schedule g ~brokers:[||]
      (Stream.Bgp_like { base = 0.0; per_hop = 1.0 })
      [| ev (Stream.Announce (0, 1)) |]
  in
  check_float "unreachable pays n" 6.0 far.(0).Stream.time

(* ---------- cache invalidation ---------- *)

let test_invalidate_all () =
  List.iter
    (fun strategy ->
      let c =
        Cache.create ~strategy ~n:10 ~shards:[| 1; 2; 3 |] ()
      in
      for s = 0 to 4 do
        ignore
          (Cache.find c ~compute:(fun () -> Some [| s; 9 |]) s 9)
      done;
      check_int "filled" 5 (Cache.size c);
      Cache.invalidate_all c;
      check_int "emptied" 0 (Cache.size c);
      check_int "evictions counted" 5 (Cache.stats c).Cache.evicted;
      (* Idempotent on empty. *)
      Cache.invalidate_all c;
      check_int "still counted once" 5 (Cache.stats c).Cache.evicted;
      check_bool "invariants hold" true (Cache.invariant_ok c))
    [ Cache.Flush; Cache.Modulo; Cache.Ring { vnodes = 8 } ]

(* ---------- simulator streaming-update path ---------- *)

let sim_scene () =
  let topo = small_internet ~seed:5 ~scale:0.01 () in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let brokers = Array.sub order 0 (min 12 (Array.length order)) in
  let model = Workload.zipf ~n:(G.n g) () in
  let sessions =
    Workload.generate ~rng:(X.create 7) model ~n_sessions:400
      Workload.default_params
  in
  (topo, g, brokers, sessions)

let test_sim_empty_topo_identical () =
  let topo, g, brokers, sessions = sim_scene () in
  let config = Sim.degree_capacity g ~factor:0.3 in
  let base = Sim.run topo ~brokers ~sessions config in
  let empty =
    Sim.run
      ~topo:
        {
          Sim.updates = [||];
          propagation = Stream.Centralized { delay = 1.0 };
        }
      topo ~brokers ~sessions config
  in
  check_bool "empty stream = static run" true (Sim.stats_equal base empty);
  check_int "nothing applied" 0 empty.Sim.topo_applied;
  check_int "nothing ignored" 0 empty.Sim.topo_ignored

let test_sim_applies_updates () =
  let topo, g, brokers, sessions = sim_scene () in
  let config = Sim.degree_capacity g ~factor:0.3 in
  let horizon = sessions.(Array.length sessions - 1).Workload.arrival in
  let ops = Stream.burst ~rng:(X.create 21) g ~size:16 in
  let updates =
    Array.map (fun op -> { Stream.time = 0.5 *. horizon; op }) ops
  in
  let run prop =
    Sim.run ~topo:{ Sim.updates; propagation = prop } topo ~brokers ~sessions
      config
  in
  let s = run (Stream.Centralized { delay = 1.0 }) in
  check_int "every op lands once" (Array.length ops)
    (s.Sim.topo_applied + s.Sim.topo_ignored);
  check_bool "burst ops all change the graph" true (s.Sim.topo_applied > 0);
  check_bool "cache flushed on change" true
    (s.Sim.cache.Cache.evicted > 0 || s.Sim.cache.Cache.lookups = 0);
  (* Deterministic replay, including under the BGP-like scheduler. *)
  let s2 = run (Stream.Centralized { delay = 1.0 }) in
  check_bool "replay identical" true (Sim.stats_equal s s2);
  let b1 = run (Stream.Bgp_like { base = 0.5; per_hop = 1.0 }) in
  let b2 = run (Stream.Bgp_like { base = 0.5; per_hop = 1.0 }) in
  check_bool "bgp replay identical" true (Sim.stats_equal b1 b2)

let test_sim_rejects_bad_update () =
  let topo, g, brokers, sessions = sim_scene () in
  let config = Sim.degree_capacity g ~factor:0.3 in
  let updates =
    [| { Stream.time = 0.0; op = Stream.Announce (0, G.n g) } |]
  in
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Simulator.run: topo update endpoint out of range")
    (fun () ->
      ignore
        (Sim.run
           ~topo:
             {
               Sim.updates;
               propagation = Stream.Centralized { delay = 1.0 };
             }
           topo ~brokers ~sessions config))

let suite =
  [
    ( "delta.overlay",
      [
        overlay_reads_match_rebuild;
        compact_equals_rebuild;
        view_is_snapshot;
        bfs_view_matches_rebuild;
      ] );
    ( "delta.incremental",
      [
        incremental_matches_oracle_under ~domains:"1";
        incremental_matches_oracle_under ~domains:"4";
        Alcotest.test_case "stats accounting" `Quick incr_stats_accounting;
      ] );
    ( "delta.stream",
      [
        burst_is_valid;
        Alcotest.test_case "schedule delays" `Quick schedule_delays;
        Alcotest.test_case "invalidate_all" `Quick test_invalidate_all;
      ] );
    ( "delta.sim",
      [
        Alcotest.test_case "empty topo stream is identity" `Quick
          test_sim_empty_topo_identical;
        Alcotest.test_case "updates applied & deterministic" `Quick
          test_sim_applies_updates;
        Alcotest.test_case "rejects out-of-range endpoints" `Quick
          test_sim_rejects_bad_update;
      ] );
  ]
