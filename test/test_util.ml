(* Unit + property tests for Broker_util: Xrandom, Bitset, Heap,
   Union_find, Stats, Sampling, Optimize, Table. *)

open Helpers
module R = Broker_util.Xrandom
module Bitset = Broker_util.Bitset
module Heap = Broker_util.Heap
module Uf = Broker_util.Union_find
module Stats = Broker_util.Stats
module Sampling = Broker_util.Sampling
module Opt = Broker_util.Optimize
module Table = Broker_util.Table

(* ---------- Xrandom ---------- *)

let test_xrandom_deterministic () =
  let a = R.create 1 and b = R.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let test_xrandom_different_seeds () =
  let a = R.create 1 and b = R.create 2 in
  check_bool "different streams" false (R.bits64 a = R.bits64 b)

let test_xrandom_copy_independent () =
  let a = R.create 3 in
  let b = R.copy a in
  Alcotest.(check int64) "copy matches" (R.bits64 a) (R.bits64 b);
  ignore (R.bits64 a);
  (* advancing a does not affect b's next draw *)
  let a' = R.bits64 a and b' = R.bits64 b in
  check_bool "diverged" false (a' = b')

let test_xrandom_int_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let v = R.int r 7 in
    check_bool "in [0,7)" true (v >= 0 && v < 7)
  done

let test_xrandom_int_in () =
  let r = rng () in
  for _ = 1 to 1_000 do
    let v = R.int_in r (-5) 5 in
    check_bool "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_xrandom_float_mean () =
  let r = rng () in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. R.float r 1.0
  done;
  check_float_eps 0.02 "uniform mean" 0.5 (!acc /. float_of_int n)

let test_xrandom_bernoulli () =
  let r = rng () in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if R.bernoulli r 0.3 then incr hits
  done;
  check_float_eps 0.03 "p=0.3" 0.3 (float_of_int !hits /. 10_000.0)

let test_xrandom_shuffle_permutes () =
  let r = rng () in
  let a = Array.init 50 (fun i -> i) in
  R.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_xrandom_permutation () =
  let r = rng () in
  let p = R.permutation r 30 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 (fun i -> i)) sorted

let test_xrandom_invalid_args () =
  let r = rng () in
  Alcotest.check_raises "int 0" (Invalid_argument "Xrandom.int: bound must be positive")
    (fun () -> ignore (R.int r 0));
  Alcotest.check_raises "pick empty" (Invalid_argument "Xrandom.pick: empty array")
    (fun () -> ignore (R.pick r [||]))

let test_xrandom_exponential_positive () =
  let r = rng () in
  for _ = 1 to 1_000 do
    check_bool "positive" true (R.exponential r 2.0 >= 0.0)
  done

let test_xrandom_pareto_min () =
  let r = rng () in
  for _ = 1 to 1_000 do
    check_bool ">= x_min" true (R.pareto r ~alpha:1.5 ~x_min:2.0 >= 2.0)
  done

let test_xrandom_geometric () =
  let r = rng () in
  for _ = 1 to 1_000 do
    check_bool "non-negative" true (R.geometric r 0.5 >= 0)
  done;
  check_int "p=1 -> 0" 0 (R.geometric r 1.0)

let xrandom_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"Xrandom.int in range"
       QCheck.(pair (int_range 1 1000) small_nat)
       (fun (bound, seed) ->
         let r = R.create seed in
         let v = R.int r bound in
         v >= 0 && v < bound))

(* ---------- Bitset ---------- *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check_bool "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 99" true (Bitset.mem s 99);
  check_bool "not mem 50" false (Bitset.mem s 50);
  check_int "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 2 (Bitset.cardinal s)

let test_bitset_iter_order () =
  let s = Bitset.of_list 200 [ 150; 3; 77; 3 ] in
  Alcotest.(check (list int)) "sorted members" [ 3; 77; 150 ] (Bitset.to_list s)

let test_bitset_union_inter () =
  let a = Bitset.of_list 64 [ 1; 2; 3 ] in
  let b = Bitset.of_list 64 [ 3; 4 ] in
  check_int "inter" 1 (Bitset.inter_cardinal a b);
  Bitset.union_into ~into:a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list a)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Bitset: index out of bounds") (fun () -> Bitset.add s 10)

let test_bitset_clear_copy () =
  let s = Bitset.of_list 32 [ 5; 6 ] in
  let c = Bitset.copy s in
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s);
  check_int "copy intact" 2 (Bitset.cardinal c)

let bitset_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Bitset matches list-set semantics"
       QCheck.(small_list (int_range 0 255))
       (fun items ->
         let s = Bitset.of_list 256 items in
         let reference = List.sort_uniq compare items in
         Bitset.to_list s = reference
         && Bitset.cardinal s = List.length reference))

(* One add/test per bit position: the branch-free SWAR popcount against
   the obvious shift-and-mask loop, over full-width patterns. *)
let naive_popcount x =
  let c = ref 0 in
  for b = 0 to Bitset.bits_per_word - 1 do
    if (x lsr b) land 1 = 1 then incr c
  done;
  !c

let test_popcount_edges () =
  check_int "popcount 0" 0 (Bitset.popcount 0);
  check_int "popcount 1" 1 (Bitset.popcount 1);
  check_int "popcount -1 (all 63 bits)" 63 (Bitset.popcount (-1));
  check_int "popcount max_int" 62 (Bitset.popcount max_int);
  check_int "popcount min_int" 1 (Bitset.popcount min_int);
  check_int "popcount top bit" 1 (Bitset.popcount (1 lsl 62));
  check_int "alternating 0101" (naive_popcount 0x1555555555555555)
    (Bitset.popcount 0x1555555555555555)

let popcount_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"SWAR popcount = naive bit loop"
       QCheck.(triple int int int)
       (fun (a, b, c) ->
         (* Mix the generator's ints into denser full-width patterns. *)
         let xs = [ a; b; c; a lxor b; a lor (b lsl 13); a land c; lnot b ] in
         List.for_all (fun x -> Bitset.popcount x = naive_popcount x) xs))

let test_word_accessors () =
  let s = Bitset.of_list 200 [ 0; 62; 63; 126 ] in
  (* ceil(200/63) = 4 payload words plus the trailing sentinel word. *)
  check_int "num_words" 5 (Bitset.num_words s);
  check_int "word 0 = bits 0 and 62" ((1 lsl 62) lor 1) (Bitset.word s 0);
  check_int "word 1 = bit 63 at offset 0" 1 (Bitset.word s 1);
  check_int "word 2 = bit 126 at offset 0" 1 (Bitset.word s 2);
  check_int "word 3 empty" 0 (Bitset.word s 3);
  check_int "unsafe_word agrees" (Bitset.word s 1) (Bitset.unsafe_word s 1);
  check_int "cardinal = sum of word popcounts"
    (Bitset.cardinal s)
    (let acc = ref 0 in
     for w = 0 to Bitset.num_words s - 1 do
       acc := !acc + Bitset.popcount (Bitset.word s w)
     done;
     !acc);
  Alcotest.check_raises "word index out of bounds"
    (Invalid_argument "Bitset.word: word index out of bounds") (fun () ->
      ignore (Bitset.word s 5))

(* ---------- Heap ---------- *)

let test_heap_sorts_min () =
  let h = Heap.create Heap.Min in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v)
    [ (3.0, 3); (1.0, 1); (2.0, 2); (0.5, 0) ];
  let order = List.init 4 (fun _ -> snd (Heap.pop_exn h)) in
  Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3 ] order

let test_heap_sorts_max () =
  let h = Heap.create Heap.Max in
  List.iter (fun v -> Heap.push h ~priority:(float_of_int v) v) [ 5; 1; 9; 3 ];
  let order = List.init 4 (fun _ -> snd (Heap.pop_exn h)) in
  Alcotest.(check (list int)) "descending" [ 9; 5; 3; 1 ] order

let test_heap_empty () =
  let h = Heap.create Heap.Min in
  check_bool "pop empty" true (Heap.pop h = None);
  check_bool "peek empty" true (Heap.peek h = None);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_grow () =
  let h = Heap.create ~initial_capacity:1 Heap.Min in
  for i = 99 downto 0 do
    Heap.push h ~priority:(float_of_int i) i
  done;
  check_int "size" 100 (Heap.size h);
  for i = 0 to 99 do
    check_int "ordered" i (snd (Heap.pop_exn h))
  done

let heap_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"Heap sort = List.sort"
       QCheck.(small_list (float_range (-1000.0) 1000.0))
       (fun floats ->
         let h = Heap.create Heap.Min in
         List.iteri (fun i p -> Heap.push h ~priority:p i) floats;
         let popped = List.init (List.length floats) (fun _ -> fst (Heap.pop_exn h)) in
         popped = List.sort compare floats))

(* ---------- Union_find ---------- *)

let test_uf_basic () =
  let uf = Uf.create 10 in
  check_int "initial count" 10 (Uf.count uf);
  check_bool "union" true (Uf.union uf 0 1);
  check_bool "redundant union" false (Uf.union uf 0 1);
  check_bool "same" true (Uf.same uf 0 1);
  check_bool "not same" false (Uf.same uf 0 2);
  check_int "size" 2 (Uf.size uf 1);
  check_int "count" 9 (Uf.count uf)

let test_uf_max_component () =
  let uf = Uf.create 8 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 1 2);
  ignore (Uf.union uf 3 4);
  check_int "max size" 3 (Uf.max_component_size uf);
  ignore (Uf.union uf 3 5);
  ignore (Uf.union uf 5 6);
  check_int "max size moves" 4 (Uf.max_component_size uf)

(* ---------- Stats ---------- *)

let test_stats_moments () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "variance" 1.25 (Stats.variance xs);
  check_float "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_stats_quantiles () =
  let xs = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "median" 2.5 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 4.0 (Stats.quantile xs 1.0)

let test_stats_pearson () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  check_float "perfect" 1.0 (Stats.pearson xs [| 2.0; 4.0; 6.0 |]);
  check_float "anti" (-1.0) (Stats.pearson xs [| 3.0; 2.0; 1.0 |]);
  check_float "constant" 0.0 (Stats.pearson xs [| 5.0; 5.0; 5.0 |])

let test_stats_spearman () =
  (* Monotone but nonlinear: Spearman 1, Pearson < 1. *)
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 1.0; 10.0; 100.0; 1000.0 |] in
  check_float "spearman" 1.0 (Stats.spearman xs ys);
  check_bool "pearson below" true (Stats.pearson xs ys < 1.0)

let test_stats_ranks_ties () =
  Alcotest.(check (array (float 1e-9)))
    "mid-ranks" [| 1.5; 1.5; 3.0 |]
    (Stats.ranks [| 7.0; 7.0; 9.0 |])

let test_stats_histogram () =
  let h = Stats.histogram ~bins:4 [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  check_int "total preserved" 5 (Array.fold_left ( + ) 0 h.Stats.counts)

let test_stats_cdf () =
  let pts = Stats.cdf [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "cdf points"
    [ (1.0, 1.0 /. 3.0); (2.0, 2.0 /. 3.0); (3.0, 1.0) ]
    pts;
  check_float "cdf_at" (2.0 /. 3.0) (Stats.cdf_at [| 3.0; 1.0; 2.0 |] 2.5)

let test_stats_linear_fit () =
  let slope, intercept = Stats.linear_fit [| 0.0; 1.0; 2.0 |] [| 1.0; 3.0; 5.0 |] in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "n" 3 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 3.0 s.Stats.max

let stats_qcheck_quantile =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"quantile within [min,max]"
       QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.)) (float_range 0.0 1.0))
       (fun (l, q) ->
         let xs = Array.of_list l in
         let v = Stats.quantile xs q in
         let lo = Array.fold_left min xs.(0) xs and hi = Array.fold_left max xs.(0) xs in
         v >= lo -. 1e-9 && v <= hi +. 1e-9))

(* ---------- Sampling ---------- *)

let test_sampling_without_replacement () =
  let r = rng () in
  let s = Sampling.without_replacement r ~n:100 ~k:30 in
  check_int "k items" 30 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "sorted output" sorted s;
  let distinct = List.sort_uniq compare (Array.to_list s) in
  check_int "distinct" 30 (List.length distinct);
  Array.iter (fun v -> check_bool "range" true (v >= 0 && v < 100)) s

let test_sampling_full () =
  let r = rng () in
  let s = Sampling.without_replacement r ~n:10 ~k:10 in
  Alcotest.(check (array int)) "all items" (Array.init 10 (fun i -> i)) s

let test_sampling_reservoir () =
  let r = rng () in
  let s = Sampling.reservoir r ~k:5 (List.to_seq (List.init 100 (fun i -> i))) in
  check_int "k items" 5 (Array.length s);
  let s2 = Sampling.reservoir r ~k:50 (List.to_seq [ 1; 2; 3 ]) in
  check_int "short stream" 3 (Array.length s2)

let test_sampling_weighted_index () =
  let r = rng () in
  let hits = Array.make 3 0 in
  for _ = 1 to 3_000 do
    let i = Sampling.weighted_index r [| 1.0; 2.0; 1.0 |] in
    hits.(i) <- hits.(i) + 1
  done;
  check_bool "middle heaviest" true (hits.(1) > hits.(0) && hits.(1) > hits.(2))

let test_sampling_alias () =
  let r = rng () in
  let draw = Sampling.weighted_alias [| 1.0; 0.0; 3.0 |] in
  let hits = Array.make 3 0 in
  for _ = 1 to 4_000 do
    let i = draw r in
    hits.(i) <- hits.(i) + 1
  done;
  check_int "zero weight never drawn" 0 hits.(1);
  check_bool "heavy dominates" true (hits.(2) > 2 * hits.(0))

(* ---------- Optimize ---------- *)

let test_golden_section () =
  let x, fx = Opt.golden_section_max (fun x -> -.((x -. 2.0) ** 2.0)) ~lo:0.0 ~hi:5.0 in
  check_float_eps 1e-6 "argmax" 2.0 x;
  check_float_eps 1e-9 "max" 0.0 fx

let test_bisect_root () =
  let x = Opt.bisect_root (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0 in
  check_float_eps 1e-9 "sqrt2" (sqrt 2.0) x

let test_bisect_no_sign_change () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Optimize.bisect_root: no sign change") (fun () ->
      ignore (Opt.bisect_root (fun x -> x +. 10.0) ~lo:0.0 ~hi:1.0))

let test_grid_then_golden_bimodal () =
  (* Two peaks at 1 and 4; the higher is at 4. Plain golden section from
     the full bracket can land on the wrong one; the grid localizes. *)
  let f x = Float.max (1.0 -. ((x -. 1.0) ** 2.0)) (1.5 -. ((x -. 4.0) ** 2.0)) in
  let x, _ = Opt.grid_then_golden ~steps:64 f ~lo:0.0 ~hi:5.0 in
  check_float_eps 0.05 "higher peak" 4.0 x

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  check_bool "has header" true
    (String.length out > 0
    && String.sub out 0 4 = "name");
  (* Numeric column right-aligned: " 1" before "22". *)
  check_bool "contains rows" true
    (String.length out > 0)

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only one" ])

let test_table_cells () =
  Alcotest.(check string) "pct" "12.50%" (Table.cell_pct 0.125);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_int 42)

(* --- Parallel chunk/stride boundary coverage ------------------------- *)

module Parallel = Broker_util.Parallel

(* The fan-out helpers read the domain budget from REPRO_DOMAINS when no
   explicit ?domains is passed; exercising them through the env var
   covers the same path the experiments use. *)
let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

(* Each worker lists the indices it visited (worker-local accumulator);
   the deterministic merge concatenates in stride/chunk order. Sorting
   the union and comparing against [0 .. n-1] catches both missed and
   doubly-visited indices. *)
let strided_visits n =
  Parallel.strided ~n
    ~worker:(fun ~start ~step ->
      let acc = ref [] in
      let i = ref start in
      while !i < n do
        acc := !i :: !acc;
        i := !i + step
      done;
      List.rev !acc)
    ~merge:( @ ) []

let chunked_visits n =
  Parallel.chunked ~n
    ~worker:(fun ~lo ~hi ->
      let acc = ref [] in
      for i = lo to hi - 1 do
        acc := i :: !acc
      done;
      List.rev !acc)
    ~merge:( @ ) []

let exact_cover n visits =
  List.sort Int.compare visits = List.init n (fun i -> i)

let test_parallel_boundaries () =
  (* Exhaustive sweep of the adversarial corner pairs: n = 0, n below the
     sequential-fallback threshold (n < 4), n < domains, n = domains,
     and n just past a multiple of the domain count. *)
  List.iter
    (fun domains ->
      with_domains (string_of_int domains) (fun () ->
          List.iter
            (fun n ->
              Alcotest.(check bool)
                (Printf.sprintf "strided exact cover (n=%d domains=%d)" n
                   domains)
                true
                (exact_cover n (strided_visits n));
              Alcotest.(check bool)
                (Printf.sprintf "chunked exact cover (n=%d domains=%d)" n
                   domains)
                true
                (exact_cover n (chunked_visits n)))
            [ 0; 1; 2; 3; 4; 5; 7; 8; 9; 12; 13 ]))
    [ 1; 3; 4 ]

let parallel_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60
       ~name:"Parallel.strided/chunked visit every index exactly once"
       QCheck.(pair (int_range 0 97) (oneofl [ 1; 3; 4 ]))
       (fun (n, domains) ->
         with_domains (string_of_int domains) (fun () ->
             exact_cover n (strided_visits n)
             && exact_cover n (chunked_visits n))))

let suite =
  [
    ( "util.xrandom",
      [
        Alcotest.test_case "deterministic" `Quick test_xrandom_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_xrandom_different_seeds;
        Alcotest.test_case "copy independence" `Quick test_xrandom_copy_independent;
        Alcotest.test_case "int bounds" `Quick test_xrandom_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_xrandom_int_in;
        Alcotest.test_case "float mean" `Quick test_xrandom_float_mean;
        Alcotest.test_case "bernoulli rate" `Quick test_xrandom_bernoulli;
        Alcotest.test_case "shuffle permutes" `Quick test_xrandom_shuffle_permutes;
        Alcotest.test_case "permutation" `Quick test_xrandom_permutation;
        Alcotest.test_case "invalid args" `Quick test_xrandom_invalid_args;
        Alcotest.test_case "exponential" `Quick test_xrandom_exponential_positive;
        Alcotest.test_case "pareto min" `Quick test_xrandom_pareto_min;
        Alcotest.test_case "geometric" `Quick test_xrandom_geometric;
        xrandom_qcheck;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic ops" `Quick test_bitset_basic;
        Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
        Alcotest.test_case "union/inter" `Quick test_bitset_union_inter;
        Alcotest.test_case "bounds check" `Quick test_bitset_bounds;
        Alcotest.test_case "clear/copy" `Quick test_bitset_clear_copy;
        bitset_qcheck;
        Alcotest.test_case "popcount edge patterns" `Quick test_popcount_edges;
        popcount_qcheck;
        Alcotest.test_case "word-level accessors" `Quick test_word_accessors;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "min order" `Quick test_heap_sorts_min;
        Alcotest.test_case "max order" `Quick test_heap_sorts_max;
        Alcotest.test_case "empty" `Quick test_heap_empty;
        Alcotest.test_case "grow" `Quick test_heap_grow;
        heap_qcheck;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "max component" `Quick test_uf_max_component;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "moments" `Quick test_stats_moments;
        Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
        Alcotest.test_case "pearson" `Quick test_stats_pearson;
        Alcotest.test_case "spearman" `Quick test_stats_spearman;
        Alcotest.test_case "rank ties" `Quick test_stats_ranks_ties;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "cdf" `Quick test_stats_cdf;
        Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        stats_qcheck_quantile;
      ] );
    ( "util.sampling",
      [
        Alcotest.test_case "without replacement" `Quick test_sampling_without_replacement;
        Alcotest.test_case "k = n" `Quick test_sampling_full;
        Alcotest.test_case "reservoir" `Quick test_sampling_reservoir;
        Alcotest.test_case "weighted index" `Quick test_sampling_weighted_index;
        Alcotest.test_case "alias method" `Quick test_sampling_alias;
      ] );
    ( "util.optimize",
      [
        Alcotest.test_case "golden section" `Quick test_golden_section;
        Alcotest.test_case "bisect root" `Quick test_bisect_root;
        Alcotest.test_case "bisect bad bracket" `Quick test_bisect_no_sign_change;
        Alcotest.test_case "bimodal grid+golden" `Quick test_grid_then_golden_bimodal;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity" `Quick test_table_arity;
        Alcotest.test_case "cell formats" `Quick test_table_cells;
      ] );
    ( "util.parallel",
      [
        Alcotest.test_case "chunk/stride boundaries" `Quick
          test_parallel_boundaries;
        parallel_qcheck;
      ] );
  ]
