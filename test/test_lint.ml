(* Drives the brokerlint executable (tools/lint) over the fixture
   snippets in tools/lint/fixtures/: each rule has one violating and one
   clean fixture, plus a suppression-comment case; the violating ones
   must fail with [file:line:col: [rule]] diagnostics and the clean ones
   must pass silently. A final case lints the real lib/ tree, pinning
   the "repo as shipped lints clean" acceptance criterion. *)

let exe = "../tools/lint/brokerlint.exe"
let fixture name = "../tools/lint/fixtures/" ^ name

type result = { code : int; output : string }

let run_lint args =
  let cmd = Filename.quote_command exe args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED code -> { code; output = Buffer.contents buf }
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      Alcotest.fail "brokerlint killed by signal"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec probe i =
    i + nn <= nh && (String.sub haystack i nn = needle || probe (i + 1))
  in
  nn = 0 || probe 0

let check_contains output needle =
  Alcotest.(check bool)
    (Printf.sprintf "output mentions %S" needle)
    true (contains output needle)

(* A violating fixture must exit 1 and name every expected
   file:line / rule pair; a clean one must exit 0 with no output. *)
let check_bad ~rule ~file ~lines r =
  Alcotest.(check int) (file ^ " exits 1") 1 r.code;
  check_contains r.output ("[" ^ rule ^ "]");
  List.iter
    (fun line -> check_contains r.output (Printf.sprintf "%s:%d:" file line))
    lines

let check_clean ~file r =
  Alcotest.(check int) (file ^ " exits 0") 0 r.code;
  Alcotest.(check string) (file ^ " is silent") "" r.output

let test_rule ~rule ~bad ~bad_lines ~good () =
  check_bad ~rule ~file:bad ~lines:bad_lines
    (run_lint [ "--lib"; fixture bad ]);
  check_clean ~file:good (run_lint [ "--lib"; fixture good ])

let r1 =
  test_rule ~rule:"no-poly-compare" ~bad:"r1_bad.ml" ~bad_lines:[ 4; 7 ]
    ~good:"r1_good.ml"

let r1_outside_lib () =
  (* The sort-comparator half of R1 applies to non-library code too ... *)
  let r = run_lint [ fixture "r1_bad.ml" ] in
  Alcotest.(check int) "sort compare flagged outside lib" 1 r.code;
  check_contains r.output "r1_bad.ml:4:";
  (* ... but the bare-compare half is library-only: line 7's lambda only
     uses compare applied to tuple components, not passed to the sort. *)
  Alcotest.(check bool)
    "bare compare not flagged outside lib" false
    (contains r.output "r1_bad.ml:7:")

let suppression () =
  check_clean ~file:"r1_suppressed.ml"
    (run_lint [ "--lib"; fixture "r1_suppressed.ml" ])

let r2 =
  test_rule ~rule:"determinism" ~bad:"r2_bad.ml" ~bad_lines:[ 4; 5 ]
    ~good:"r2_good.ml"

let r2_self_init_outside_lib () =
  let r = run_lint [ fixture "r2_bad.ml" ] in
  Alcotest.(check int) "self_init flagged outside lib" 1 r.code;
  check_contains r.output "r2_bad.ml:4:";
  (* Plain Random draws are only banned in library code. *)
  Alcotest.(check bool)
    "Random.int allowed outside lib" false
    (contains r.output "r2_bad.ml:5:")

let r3 () =
  check_bad ~rule:"mli-complete" ~file:"r3_bad.ml" ~lines:[ 1 ]
    (run_lint [ "--lib"; fixture "r3_bad.ml" ]);
  check_clean ~file:"r3_good.ml" (run_lint [ "--lib"; fixture "r3_good.ml" ])

let r4 =
  test_rule ~rule:"domain-confinement" ~bad:"r4_bad.ml" ~bad_lines:[ 13 ]
    ~good:"r4_good.ml"

let r5 =
  test_rule ~rule:"no-stdout-in-lib" ~bad:"r5_bad.ml" ~bad_lines:[ 5; 6; 8 ]
    ~good:"r5_good.ml"

let r6 =
  test_rule ~rule:"no-list-nth" ~bad:"r6_bad.ml" ~bad_lines:[ 7; 15 ]
    ~good:"r6_good.ml"

let r7 () =
  check_bad ~rule:"report-pure" ~file:"r7_bad.ml" ~lines:[ 5; 6; 7 ]
    (run_lint [ "--experiments"; fixture "r7_bad.ml" ]);
  check_clean ~file:"r7_good.ml"
    (run_lint [ "--lib"; "--experiments"; fixture "r7_good.ml" ])

let r7_scope () =
  (* R7 only binds experiment modules: the same file lints clean outside
     --experiments (and outside lib/experiments/). *)
  check_clean ~file:"r7_bad.ml" (run_lint [ fixture "r7_bad.ml" ])

let r8 =
  test_rule ~rule:"clock-discipline" ~bad:"r8_bad.ml" ~bad_lines:[ 4; 5 ]
    ~good:"r8_good.ml"

let r9 =
  test_rule ~rule:"no-unsafe-obj" ~bad:"r9_bad.ml" ~bad_lines:[ 3; 4; 5; 6; 7 ]
    ~good:"r9_good.ml"

let r9_scope () =
  (* The Obj half binds everywhere; the polymorphic-hash half is
     library-only (tests/bench may hash ad hoc). *)
  let r = run_lint [ fixture "r9_bad.ml" ] in
  Alcotest.(check int) "Obj casts flagged outside lib" 1 r.code;
  check_contains r.output "r9_bad.ml:3:";
  check_contains r.output "r9_bad.ml:4:";
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "hash arm silent outside lib (line %d)" line)
        false
        (contains r.output (Printf.sprintf "r9_bad.ml:%d:" line)))
    [ 5; 6; 7 ]

let r8_scope () =
  (* R8 binds everywhere the linter looks, not just library code — the
     fixture fails even without --lib (where the overlapping R2 arm for
     Unix.gettimeofday stays silent). *)
  let r = run_lint [ fixture "r8_bad.ml" ] in
  Alcotest.(check int) "ad-hoc clocks flagged outside lib" 1 r.code;
  check_contains r.output "[clock-discipline]";
  Alcotest.(check bool)
    "R2 arm is library-only" false
    (contains r.output "[determinism]")

let whole_directory () =
  (* Directory mode aggregates every bad fixture and none of the clean
     ones; diagnostics come out sorted by file for stable diffs. *)
  let r = run_lint [ "--lib"; "../tools/lint/fixtures" ] in
  Alcotest.(check int) "fixtures dir exits 1" 1 r.code;
  List.iter
    (fun f -> check_contains r.output (f ^ ":"))
    [ "r1_bad.ml"; "r2_bad.ml"; "r3_bad.ml"; "r4_bad.ml"; "r5_bad.ml";
      "r6_bad.ml"; "r8_bad.ml"; "r9_bad.ml" ];
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " not flagged") false
        (contains r.output (f ^ ":")))
    [ "r1_good.ml"; "r2_good.ml"; "r3_good.ml"; "r4_good.ml"; "r5_good.ml";
      "r6_good.ml"; "r7_good.ml"; "r7_bad.ml"; "r8_good.ml"; "r9_good.ml";
      "r1_suppressed.ml" ]

let repo_lib_clean () =
  (* The repo as shipped lints clean; lib/ is the strictest subtree and
     its sources are guaranteed present in the build dir (the suite links
     all eight libraries). *)
  let r = run_lint [ "../lib" ] in
  Alcotest.(check string) "lib/ lint output" "" r.output;
  Alcotest.(check int) "lib/ lints clean" 0 r.code

let missing_path () =
  let r = run_lint [ "../tools/lint/fixtures/enoent.ml" ] in
  Alcotest.(check int) "missing path exits 2" 2 r.code

let () =
  Alcotest.run "brokerlint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 no-poly-compare" `Quick r1;
          Alcotest.test_case "R1 scope outside lib" `Quick r1_outside_lib;
          Alcotest.test_case "R2 determinism" `Quick r2;
          Alcotest.test_case "R2 scope outside lib" `Quick
            r2_self_init_outside_lib;
          Alcotest.test_case "R3 mli-complete" `Quick r3;
          Alcotest.test_case "R4 domain-confinement" `Quick r4;
          Alcotest.test_case "R5 no-stdout-in-lib" `Quick r5;
          Alcotest.test_case "R6 no-list-nth" `Quick r6;
          Alcotest.test_case "R7 report-pure" `Quick r7;
          Alcotest.test_case "R7 scope" `Quick r7_scope;
          Alcotest.test_case "R8 clock-discipline" `Quick r8;
          Alcotest.test_case "R8 scope" `Quick r8_scope;
          Alcotest.test_case "R9 no-unsafe-obj" `Quick r9;
          Alcotest.test_case "R9 scope" `Quick r9_scope;
        ] );
      ( "driver",
        [
          Alcotest.test_case "suppression comment" `Quick suppression;
          Alcotest.test_case "directory mode" `Quick whole_directory;
          Alcotest.test_case "repo lib/ lints clean" `Quick repo_lib_clean;
          Alcotest.test_case "missing path" `Quick missing_path;
        ] );
    ]
