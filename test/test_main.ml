let () =
  Alcotest.run "brokerset"
    (Test_util.suite @ Test_graph.suite @ Test_topo.suite @ Test_core.suite
   @ Test_routing.suite @ Test_econ.suite @ Test_extensions.suite @ Test_sim.suite
   @ Test_properties.suite @ Test_edge_cases.suite @ Test_bfs_engine.suite
   @ Test_msbfs.suite @ Test_delta.suite @ Test_experiments.suite
   @ Test_report.suite @ Test_obs.suite)
