(* The bit-parallel multi-source BFS kernel: per-lane equivalence with
   the scalar workspace engine, batched connectivity curves bitwise equal
   to the frozen reference oracle across batch-boundary source counts,
   batched gain probes equal to scalar Coverage.gain, determinism across
   REPRO_DOMAINS, and argument validation. *)

open Helpers
module G = Broker_graph.Graph
module Bfs = Broker_graph.Bfs
module Msbfs = Broker_graph.Msbfs
module Conn = Broker_core.Connectivity

let q ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* A graph, a random broker set, and a seed for drawing sources. *)
let graph_brokers_arb =
  QCheck.make
    ~print:(fun (g, brokers, seed) ->
      Printf.sprintf "<graph n=%d m=%d brokers=%d seed=%d>" (G.n g) (G.m g)
        (Array.length brokers) seed)
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      int_range 0 80 >>= fun m ->
      int_range 0 8 >>= fun k ->
      int_range 0 1_000_000 >|= fun seed ->
      let rng = Broker_util.Xrandom.create seed in
      let g = random_graph rng ~n ~m in
      let brokers = Array.init k (fun _ -> Broker_util.Xrandom.int rng n) in
      (g, brokers, seed))

(* Sources drawn with replacement: exercises duplicate sources (distinct
   lanes) and lets a 40-vertex graph host a 192-source batch sequence. *)
let draw_sources rng ~n ~count =
  Array.init count (fun _ -> Broker_util.Xrandom.int rng n)

let lanes_is_word_width () =
  check_int "lanes = Bitset.bits_per_word" Broker_util.Bitset.bits_per_word
    Msbfs.lanes;
  check_int "63-bit native ints" 63 Msbfs.lanes

(* --- per-lane semantics vs the scalar engine -------------------------- *)

let lanes_match_scalar =
  (* One workspace reused across cases: stresses the epoch/tick-stamp
     reuse invariants exactly like the scalar engine's suite does. *)
  let ws = Msbfs.workspace () in
  let sws = Bfs.workspace () in
  q "each lane settles the scalar BFS levels" graph_brokers_arb
    (fun (g, _, seed) ->
      let n = G.n g in
      let rng = Broker_util.Xrandom.create (seed + 1) in
      let len = 1 + Broker_util.Xrandom.int rng (min Msbfs.lanes (4 * n)) in
      let sources = draw_sources rng ~n ~count:len in
      Msbfs.run ws g sources ~lo:0 ~len;
      let dist = Array.make n 0 in
      let ok = ref (Msbfs.batch_lanes ws = len) in
      let max_level = ref 0 in
      let reached = ref 0 in
      let level = Array.make (n + 1) 0 in
      for b = 0 to len - 1 do
        Bfs.run sws g sources.(b);
        Bfs.distances_into sws dist;
        if Bfs.max_level sws > !max_level then max_level := Bfs.max_level sws;
        for v = 0 to n - 1 do
          (* bit b of v's settled word <-> lane b's scalar BFS reaches v *)
          let bit = Msbfs.settled_bits ws v land (1 lsl b) <> 0 in
          if bit <> (dist.(v) >= 0) then ok := false;
          if dist.(v) >= 1 then begin
            incr reached;
            level.(dist.(v)) <- level.(dist.(v)) + 1
          end
        done
      done;
      if Msbfs.max_level ws <> !max_level then ok := false;
      if Msbfs.reached_pairs ws <> !reached then ok := false;
      if Msbfs.level_pairs ws 0 <> len then ok := false;
      for d = 1 to !max_level do
        if Msbfs.level_pairs ws d <> level.(d) then ok := false
      done;
      !ok)

let max_depth_matches_bounded =
  let ws = Msbfs.workspace () in
  q ~count:40 "max_depth truncates like the scalar bounded BFS"
    graph_brokers_arb
    (fun (g, _, seed) ->
      let n = G.n g in
      let rng = Broker_util.Xrandom.create (seed + 2) in
      let len = min Msbfs.lanes (1 + Broker_util.Xrandom.int rng 8) in
      let sources = draw_sources rng ~n ~count:len in
      let ok = ref true in
      List.iter
        (fun md ->
          Msbfs.run ws g ~max_depth:md sources ~lo:0 ~len;
          for b = 0 to len - 1 do
            let dist = Bfs.distances_bounded g ~max_depth:md sources.(b) in
            for v = 0 to n - 1 do
              let bit = Msbfs.settled_bits ws v land (1 lsl b) <> 0 in
              if bit <> (dist.(v) >= 0) then ok := false
            done
          done)
        [ 0; 1; 2 ];
      !ok)

(* --- batched connectivity = reference oracle, bitwise ----------------- *)

let curves_equal (a : Conn.curve) (b : Conn.curve) =
  a.Conn.l_max = b.Conn.l_max
  && a.Conn.per_hop = b.Conn.per_hop
  && a.Conn.saturated = b.Conn.saturated

(* Source counts straddling the 63-lane word boundary: 1 (degenerate
   batch), 63 (one full word), 64/65 (full word + ragged tail), 192
   (three words + tail). *)
let boundary_counts = [ 1; 63; 64; 65; 192 ]

let eval_matches_reference_at_boundaries =
  q ~count:30 "batched eval = reference across batch-boundary source counts"
    graph_brokers_arb
    (fun (g, brokers, seed) ->
      let n = G.n g in
      let is_broker = Conn.of_brokers ~n brokers in
      let rng = Broker_util.Xrandom.create (seed + 3) in
      List.for_all
        (fun count ->
          let sources = draw_sources rng ~n ~count in
          List.for_all
            (fun l_max ->
              let batched = Conn.eval_sources ~l_max g ~is_broker sources in
              let scalar =
                Conn.eval_sources_scalar ~l_max g ~is_broker sources
              in
              let oracle =
                Conn.eval_sources_reference ~l_max g ~is_broker sources
              in
              curves_equal batched oracle && curves_equal batched scalar)
            [ 1; 2; 10 ])
        boundary_counts)

(* --- batched gain probes = scalar Coverage.gain ----------------------- *)

let gains_match_scalar =
  q "Coverage.gains_into = Coverage.gain per candidate" graph_brokers_arb
    (fun (g, brokers, seed) ->
      let n = G.n g in
      let cov = Broker_core.Coverage.create g in
      Array.iter (Broker_core.Coverage.add cov) brokers;
      let rng = Broker_util.Xrandom.create (seed + 4) in
      let len = 1 + Broker_util.Xrandom.int rng (min Msbfs.lanes (2 * n)) in
      let cands = draw_sources rng ~n ~count:(len + 3) in
      let out = Array.make Msbfs.lanes (-7) in
      Broker_core.Coverage.gains_into cov cands ~lo:2 ~len out;
      let ok = ref true in
      for b = 0 to len - 1 do
        if out.(b) <> Broker_core.Coverage.gain cov cands.(2 + b) then
          ok := false
      done;
      (* entries beyond the batch stay untouched *)
      for b = len to Msbfs.lanes - 1 do
        if out.(b) <> -7 then ok := false
      done;
      !ok)

(* The greedy selectors ride the batched probes: their selections must be
   what the scalar probes produced before (CELF and naive agree on
   submodular coverage with deterministic tie-breaks). *)
let celf_matches_naive () =
  let t = small_internet ~seed:3 ~scale:0.008 () in
  let g = t.Broker_topo.Topology.graph in
  let c = Broker_core.Greedy_mcb.celf g ~k:20 in
  let nv = Broker_core.Greedy_mcb.naive g ~k:20 in
  check_bool "celf = naive selections" true (c = nv)

(* --- determinism across REPRO_DOMAINS --------------------------------- *)

let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

let deterministic_across_domains () =
  let t = small_internet ~seed:11 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let brokers = Broker_core.Maxsg.run g ~k:16 in
  let is_broker = Conn.of_brokers ~n brokers in
  let sources =
    draw_sources (Broker_util.Xrandom.create 23) ~n ~count:192
  in
  let run () = Conn.eval_sources ~l_max:10 g ~is_broker sources in
  let c1 = with_domains "1" run in
  let c4 = with_domains "4" run in
  check_bool "REPRO_DOMAINS=1 = REPRO_DOMAINS=4" true (curves_equal c1 c4);
  let scalar =
    with_domains "4" (fun () ->
        Conn.eval_sources_scalar ~l_max:10 g ~is_broker sources)
  in
  check_bool "batched = scalar under domains" true (curves_equal c1 scalar)

(* --- validation ------------------------------------------------------- *)

let run_validates_arguments () =
  let ws = Msbfs.workspace () in
  let g = path_graph 4 in
  let srcs = [| 0; 1; 2; 3 |] in
  Alcotest.check_raises "len = 0"
    (Invalid_argument "Msbfs: batch size out of range") (fun () ->
      Msbfs.run ws g srcs ~lo:0 ~len:0);
  Alcotest.check_raises "len > lanes"
    (Invalid_argument "Msbfs: batch size out of range") (fun () ->
      Msbfs.run ws g srcs ~lo:0 ~len:(Msbfs.lanes + 1));
  Alcotest.check_raises "range escapes sources"
    (Invalid_argument "Msbfs: source range out of bounds") (fun () ->
      Msbfs.run ws g srcs ~lo:2 ~len:3);
  Alcotest.check_raises "negative lo"
    (Invalid_argument "Msbfs: source range out of bounds") (fun () ->
      Msbfs.run ws g srcs ~lo:(-1) ~len:2);
  Alcotest.check_raises "source out of range"
    (Invalid_argument "Msbfs: source out of range") (fun () ->
      Msbfs.run ws g [| 0; 99 |] ~lo:0 ~len:2);
  (* Validation happens before any mutation: the workspace still answers
     for the last good run. *)
  Msbfs.run ws g srcs ~lo:0 ~len:2;
  Alcotest.check_raises "level out of range"
    (Invalid_argument "Msbfs.level_pairs: level out of range") (fun () ->
      ignore (Msbfs.level_pairs ws (Msbfs.max_level ws + 1)));
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Msbfs.settled_bits: vertex out of range") (fun () ->
      ignore (Msbfs.settled_bits ws 99));
  Alcotest.check_raises "short out array"
    (Invalid_argument "Msbfs.lane_counts_into: output shorter than the batch")
    (fun () -> Msbfs.lane_counts_into ws ~keep:(fun _ -> true) (Array.make 1 0))

let suite =
  [
    ( "msbfs.lanes",
      [
        Alcotest.test_case "word width" `Quick lanes_is_word_width;
        lanes_match_scalar;
        max_depth_matches_bounded;
      ] );
    ( "msbfs.connectivity",
      [
        eval_matches_reference_at_boundaries;
        Alcotest.test_case "deterministic across REPRO_DOMAINS" `Quick
          deterministic_across_domains;
      ] );
    ( "msbfs.gains",
      [
        gains_match_scalar;
        Alcotest.test_case "celf selections unchanged" `Quick celf_matches_naive;
      ] );
    ( "msbfs.validation",
      [ Alcotest.test_case "argument validation" `Quick run_validates_arguments ] );
  ]
