(* Tests for Broker_core: Coverage, Greedy_mcb, Maxsg, Mcbg, Baselines,
   Connectivity, Alpha_beta, Path_constraint, Dominating, Directional,
   Composition. *)

open Helpers
module G = Broker_graph.Graph
module Coverage = Broker_core.Coverage
module Greedy = Broker_core.Greedy_mcb
module Maxsg = Broker_core.Maxsg
module Mcbg = Broker_core.Mcbg
module Baselines = Broker_core.Baselines
module Conn = Broker_core.Connectivity
module Dominating = Broker_core.Dominating

(* ---------- Coverage ---------- *)

let test_coverage_star () =
  let g = star_graph 10 in
  let cov = Coverage.create g in
  check_int "empty f" 0 (Coverage.f cov);
  check_int "gain of center" 10 (Coverage.gain cov 0);
  check_int "gain of leaf" 2 (Coverage.gain cov 1);
  Coverage.add cov 0;
  check_int "full coverage" 10 (Coverage.f cov);
  check_int "no more gain" 0 (Coverage.gain cov 5);
  check_bool "is broker" true (Coverage.is_broker cov 0);
  check_bool "covered" true (Coverage.is_covered cov 7);
  check_float "fraction" 1.0 (Coverage.coverage_fraction cov)

let test_coverage_add_idempotent () =
  let g = path_graph 5 in
  let cov = Coverage.create g in
  Coverage.add cov 2;
  Coverage.add cov 2;
  check_int "size once" 1 (Coverage.size cov);
  Alcotest.(check (array int)) "order" [| 2 |] (Coverage.brokers cov)

let test_coverage_order () =
  let g = path_graph 6 in
  let cov = Coverage.create g in
  List.iter (Coverage.add cov) [ 3; 0; 5 ];
  Alcotest.(check (array int)) "insertion order" [| 3; 0; 5 |] (Coverage.brokers cov)

let coverage_qcheck_gain_consistent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"gain v = f(B+v) - f(B)" graph_arbitrary
       (fun g ->
         let r = Broker_util.Xrandom.create 5 in
         let cov = Coverage.create g in
         let ok = ref true in
         for _ = 1 to 5 do
           let v = Broker_util.Xrandom.int r (G.n g) in
           let predicted = Coverage.gain cov v in
           let before = Coverage.f cov in
           Coverage.add cov v;
           if Coverage.f cov - before <> predicted then ok := false
         done;
         !ok))

(* ---------- Greedy MCB ---------- *)

let test_greedy_star () =
  let g = star_graph 10 in
  let brokers = Greedy.celf g ~k:3 in
  (* The center covers everything; greedy stops after it. *)
  Alcotest.(check (array int)) "center only" [| 0 |] brokers

let test_greedy_respects_k () =
  let g = random_graph (rng ()) ~n:60 ~m:100 in
  let brokers = Greedy.celf g ~k:5 in
  check_bool "at most k" true (Array.length brokers <= 5)

let greedy_qcheck_naive_eq_celf =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"naive greedy = CELF" graph_arbitrary
       (fun g ->
         Greedy.naive g ~k:6 = Greedy.celf g ~k:6))

let test_greedy_optimality_small () =
  (* Brute-force optimum for k=2 on a small fixed graph: greedy's first two
     picks must achieve >= (1 - 1/e) of it (they achieve it exactly here). *)
  let g = random_graph (Broker_util.Xrandom.create 42) ~n:14 ~m:18 in
  let best = ref 0 in
  for u = 0 to 13 do
    for v = u + 1 to 13 do
      let cov = Coverage.create g in
      Coverage.add cov u;
      Coverage.add cov v;
      if Coverage.f cov > !best then best := Coverage.f cov
    done
  done;
  let cov = Coverage.create g in
  Array.iter (Coverage.add cov) (Greedy.celf g ~k:2);
  check_bool "within (1 - 1/e) of OPT" true
    (float_of_int (Coverage.f cov) >= (1.0 -. exp (-1.0)) *. float_of_int !best)

let test_greedy_celf_into_topup () =
  let g = random_graph (rng ()) ~n:40 ~m:60 in
  let cov = Coverage.create g in
  Coverage.add cov 0;
  Greedy.celf_into cov ~k:4;
  check_bool "topped up" true (Coverage.size cov <= 4 && Coverage.size cov >= 1);
  check_bool "0 still first" true ((Coverage.brokers cov).(0) = 0)

(* ---------- MaxSG ---------- *)

let test_maxsg_star () =
  let g = star_graph 8 in
  Alcotest.(check (array int)) "center" [| 0 |] (Maxsg.run g ~k:5)

let test_maxsg_prefix_property () =
  let g = random_graph (rng ()) ~n:80 ~m:150 in
  let k5 = Maxsg.run g ~k:5 in
  let k10 = Maxsg.run g ~k:10 in
  Alcotest.(check (array int)) "prefix" k5 (Array.sub k10 0 (Array.length k5))

let maxsg_qcheck_dominating_guarantee =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"MaxSG output is mutually dominated"
       graph_arbitrary (fun g ->
         let brokers = Maxsg.run g ~k:8 in
         Mcbg.guarantees_dominating_paths g brokers))

let test_maxsg_saturation_dominates_component () =
  let t = small_internet ~seed:3 ~scale:0.005 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Maxsg.run_to_saturation g in
  let cov = Coverage.create g in
  Array.iter (Coverage.add cov) brokers;
  let members = Broker_graph.Components.largest_members g in
  Array.iter
    (fun v -> check_bool "dominated" true (Coverage.is_covered cov v))
    members

let test_maxsg_coverage_curve () =
  let g = random_graph (rng ()) ~n:50 ~m:80 in
  let brokers = Maxsg.run g ~k:10 in
  let curve = Maxsg.coverage_curve g brokers in
  check_int "one point per broker" (Array.length brokers) (Array.length curve);
  (* Coverage is nondecreasing along the curve. *)
  let ok = ref true in
  for i = 1 to Array.length curve - 1 do
    if snd curve.(i) < snd curve.(i - 1) then ok := false
  done;
  check_bool "monotone" true !ok

(* ---------- MCBG ---------- *)

let test_mcbg_budget_formulas () =
  check_int "x* k=7 beta=4" 4 (Mcbg.x_star ~k:7 ~beta:4);
  check_int "x* k=1" 1 (Mcbg.x_star ~k:1 ~beta:4);
  check_int "theta even" 4 (Mcbg.theta ~beta:4);
  check_int "theta odd" 6 (Mcbg.theta ~beta:5)

let test_mcbg_respects_k () =
  let g = random_graph (rng ()) ~n:100 ~m:160 in
  let r = Mcbg.run g ~k:10 ~beta:4 in
  check_bool "size <= k" true (Array.length r.Mcbg.brokers <= 10);
  check_bool "coverage brokers <= x*" true
    (Array.length r.Mcbg.coverage_brokers <= r.Mcbg.x_star)

let mcbg_qcheck_guarantee =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"MCBG output satisfies dominating paths"
       graph_arbitrary (fun g ->
         let r = Mcbg.run g ~k:6 ~beta:4 in
         Mcbg.guarantees_dominating_paths g r.Mcbg.brokers))

let test_mcbg_connectors_on_long_path () =
  (* Coverage brokers at the two ends of a long path need connectors. *)
  let g = path_graph 9 in
  let r = Mcbg.run g ~k:9 ~beta:8 in
  check_bool "guarantee" true (Mcbg.guarantees_dominating_paths g r.Mcbg.brokers)

let test_mcbg_invalid () =
  let g = path_graph 3 in
  Alcotest.check_raises "k=0" (Invalid_argument "Mcbg.run") (fun () ->
      ignore (Mcbg.run g ~k:0 ~beta:4))

(* ---------- Baselines ---------- *)

let test_db_order () =
  let g = star_graph 6 in
  Alcotest.(check int) "center first" 0 (Baselines.db g ~k:1).(0);
  check_int "k respected" 3 (Array.length (Baselines.db g ~k:3))

let test_degree_order_monotone () =
  let g = random_graph (rng ()) ~n:50 ~m:100 in
  let order = Baselines.degree_order g in
  let ok = ref true in
  for i = 1 to Array.length order - 1 do
    if G.degree g order.(i) > G.degree g order.(i - 1) then ok := false
  done;
  check_bool "descending degrees" true !ok

let test_prb_star () =
  let g = star_graph 9 in
  Alcotest.(check int) "center first" 0 (Baselines.prb g ~k:1).(0)

let test_set_cover_dominates () =
  let g = random_graph (rng ()) ~n:60 ~m:90 in
  let brokers = Baselines.set_cover ~rng:(rng ()) g in
  let cov = Coverage.create g in
  Array.iter (Coverage.add cov) brokers;
  check_int "dominating set" (G.n g) (Coverage.f cov)

let test_ixpb_tier1 () =
  let t = small_internet ~seed:4 ~scale:0.01 () in
  let ixpb = Baselines.ixpb t ~min_degree:0 in
  Array.iter
    (fun v -> check_bool "only ixps" true (Broker_topo.Topology.is_ixp t v))
    ixpb;
  check_int "all ixps"
    (Broker_topo.Topology.count_kind t Broker_topo.Node_meta.Ixp)
    (Array.length ixpb);
  let t1 = Baselines.tier1_only t in
  Array.iter
    (fun v ->
      check_bool "tier1 kind" true
        (Broker_topo.Node_meta.kind_equal
           t.Broker_topo.Topology.kinds.(v)
           Broker_topo.Node_meta.Tier1))
    t1

(* ---------- Connectivity ---------- *)

let test_connectivity_star_center_broker () =
  let g = star_graph 5 in
  let c = Conn.exact ~l_max:4 g ~is_broker:(Conn.of_brokers ~n:5 [| 0 |]) in
  (* All 20 ordered pairs reachable: leaves at distance 2 via center. *)
  check_float "saturated" 1.0 c.Conn.saturated;
  check_float "l=2 is full" 1.0 (Conn.value_at c 2);
  (* l=1: only pairs adjacent to the center: 8 of 20. *)
  check_float "l=1" 0.4 (Conn.value_at c 1)

let test_connectivity_no_brokers () =
  let g = path_graph 4 in
  let c = Conn.exact g ~is_broker:(fun _ -> false) in
  check_float "nothing" 0.0 c.Conn.saturated

let test_connectivity_unrestricted_path () =
  let g = path_graph 4 in
  let c = Conn.exact ~l_max:3 g ~is_broker:Conn.unrestricted in
  check_float "all pairs" 1.0 c.Conn.saturated;
  (* l=1: 6 adjacent ordered pairs of 12. *)
  check_float "l=1" 0.5 (Conn.value_at c 1)

let test_connectivity_sampled_all_sources_equals_exact () =
  let g = random_graph (rng ()) ~n:30 ~m:50 in
  let is_broker = Conn.of_brokers ~n:30 (Maxsg.run g ~k:4) in
  let exact = Conn.exact ~l_max:6 g ~is_broker in
  let sampled = Conn.sampled ~l_max:6 ~rng:(rng ()) ~sources:30 g ~is_broker in
  check_float "saturated equal" exact.Conn.saturated sampled.Conn.saturated;
  for l = 1 to 6 do
    check_float "curve equal" (Conn.value_at exact l) (Conn.value_at sampled l)
  done

let test_connectivity_monotone_in_l () =
  let g = random_graph (rng ()) ~n:40 ~m:60 in
  let c = Conn.exact ~l_max:8 g ~is_broker:(Conn.of_brokers ~n:40 (Maxsg.run g ~k:5)) in
  for l = 2 to 8 do
    check_bool "nondecreasing" true (Conn.value_at c l >= Conn.value_at c (l - 1))
  done;
  check_bool "below saturated" true (Conn.value_at c 8 <= c.Conn.saturated +. 1e-12)

let conn_qcheck_broker_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"more brokers never hurt connectivity"
       graph_arbitrary (fun g ->
         let n = G.n g in
         let order = Maxsg.run g ~k:8 in
         let take k = Conn.of_brokers ~n (Array.sub order 0 (min k (Array.length order))) in
         let c_small = Conn.exact ~l_max:4 g ~is_broker:(take 3) in
         let c_big = Conn.exact ~l_max:4 g ~is_broker:(take 8) in
         c_big.Conn.saturated >= c_small.Conn.saturated -. 1e-12))

(* ---------- Alpha_beta & Path_constraint ---------- *)

let test_alpha_beta_clique () =
  let g = clique_graph 12 in
  let est = Broker_core.Alpha_beta.estimate ~rng:(rng ()) ~sources:12 g ~alpha:0.99 in
  check_int "beta 1 on clique" 1 est.Broker_core.Alpha_beta.beta;
  check_float "alpha 1" 1.0 est.Broker_core.Alpha_beta.alpha

let test_alpha_beta_path () =
  let g = path_graph 16 in
  let est = Broker_core.Alpha_beta.estimate ~rng:(rng ()) ~sources:16 g ~alpha:0.5 in
  check_bool "beta mid-size" true
    (est.Broker_core.Alpha_beta.beta >= 4 && est.Broker_core.Alpha_beta.beta <= 12)

let test_alpha_beta_cdf_monotone () =
  let g = random_graph (rng ()) ~n:40 ~m:60 in
  let est = Broker_core.Alpha_beta.estimate ~rng:(rng ()) ~sources:20 g ~alpha:0.9 in
  let cdf = est.Broker_core.Alpha_beta.cdf in
  for l = 1 to Array.length cdf - 1 do
    check_bool "monotone cdf" true (cdf.(l) >= cdf.(l - 1) -. 1e-12)
  done

let test_path_constraint_self () =
  let g = random_graph (rng ()) ~n:30 ~m:60 in
  let c = Conn.exact g ~is_broker:Conn.unrestricted in
  let v = Broker_core.Path_constraint.feasible ~epsilon:1e-9 c ~target:c in
  check_bool "self feasible" true v.Broker_core.Path_constraint.feasible;
  check_float "zero deviation" 0.0 v.Broker_core.Path_constraint.max_deviation

let test_path_constraint_detects_gap () =
  let g = path_graph 10 in
  let free = Conn.exact g ~is_broker:Conn.unrestricted in
  let none = Conn.exact g ~is_broker:(fun _ -> false) in
  let v = Broker_core.Path_constraint.feasible ~epsilon:0.1 none ~target:free in
  check_bool "infeasible" false v.Broker_core.Path_constraint.feasible;
  check_bool "large deviation" true (v.Broker_core.Path_constraint.max_deviation > 0.5)

(* ---------- Dominating ---------- *)

let test_is_dominated_path () =
  let is_broker v = v = 1 in
  check_bool "dominated" true (Dominating.is_dominated_path ~is_broker [ 0; 1; 2 ]);
  check_bool "not dominated" false (Dominating.is_dominated_path ~is_broker [ 0; 2; 3 ]);
  check_bool "trivial" true (Dominating.is_dominated_path ~is_broker [ 0 ]);
  check_bool "empty" true (Dominating.is_dominated_path ~is_broker [])

let test_find_dominated_path () =
  let g = path_graph 5 in
  (* Brokers 1 and 3 dominate the whole path. *)
  let is_broker v = v = 1 || v = 3 in
  let path = Dominating.find_dominated_path g ~is_broker 0 4 in
  Alcotest.(check (list int)) "path found" [ 0; 1; 2; 3; 4 ] path;
  check_bool "dominated" true (Dominating.is_dominated_path ~is_broker path);
  (* Broker 1 only: edge (2,3) and (3,4) undominated. *)
  let path2 = Dominating.find_dominated_path g ~is_broker:(fun v -> v = 1) 0 4 in
  Alcotest.(check (list int)) "no path" [] path2

let test_broker_only_star () =
  let g = star_graph 6 in
  let r = Dominating.broker_only_fraction ~rng:(rng ()) ~sources:6 g ~brokers:[| 0 |] in
  check_float "everything through the hub" 1.0 r.Dominating.broker_only_pairs;
  check_float "ratio" 1.0 r.Dominating.ratio

let test_broker_only_partial () =
  (* Path 0-1-2-3-4 with broker 1: pairs among {0,1,2} are broker-only;
     3,4 unreachable. *)
  let g = path_graph 5 in
  let r = Dominating.broker_only_fraction ~rng:(rng ()) ~sources:5 g ~brokers:[| 1 |] in
  (* Ordered pairs total 20; {0,1,2} pairwise = 6. *)
  check_float "broker-only pairs" 0.3 r.Dominating.broker_only_pairs;
  check_float "saturated equals" 0.3 r.Dominating.saturated_pairs;
  check_float "ratio 1" 1.0 r.Dominating.ratio

(* ---------- Composition ---------- *)

let test_composition_shares () =
  let t = small_internet ~seed:8 ~scale:0.01 () in
  let brokers = Maxsg.run t.Broker_topo.Topology.graph ~k:30 in
  let shares = Broker_core.Composition.shares t ~brokers in
  let total =
    List.fold_left (fun acc (s : Broker_core.Composition.share) -> acc + s.Broker_core.Composition.count) 0 shares
  in
  check_int "shares partition brokers" (Array.length brokers) total;
  let frac =
    List.fold_left (fun acc (s : Broker_core.Composition.share) -> acc +. s.Broker_core.Composition.fraction) 0.0 shares
  in
  check_float_eps 1e-9 "fractions sum to 1" 1.0 frac

let test_composition_ranking () =
  let t = small_internet ~seed:8 ~scale:0.01 () in
  let brokers = Maxsg.run t.Broker_topo.Topology.graph ~k:10 in
  let ranked = Broker_core.Composition.ranking t ~brokers in
  check_int "all ranked" 10 (Array.length ranked);
  Array.iteri
    (fun i r ->
      check_int "rank order" (i + 1) r.Broker_core.Composition.rank;
      check_int "node matches" brokers.(i) r.Broker_core.Composition.node)
    ranked

let suite =
  [
    ( "core.coverage",
      [
        Alcotest.test_case "star" `Quick test_coverage_star;
        Alcotest.test_case "idempotent add" `Quick test_coverage_add_idempotent;
        Alcotest.test_case "insertion order" `Quick test_coverage_order;
        coverage_qcheck_gain_consistent;
      ] );
    ( "core.greedy_mcb",
      [
        Alcotest.test_case "star" `Quick test_greedy_star;
        Alcotest.test_case "respects k" `Quick test_greedy_respects_k;
        Alcotest.test_case "near-optimal small" `Quick test_greedy_optimality_small;
        Alcotest.test_case "celf_into topup" `Quick test_greedy_celf_into_topup;
        greedy_qcheck_naive_eq_celf;
      ] );
    ( "core.maxsg",
      [
        Alcotest.test_case "star" `Quick test_maxsg_star;
        Alcotest.test_case "prefix property" `Quick test_maxsg_prefix_property;
        Alcotest.test_case "saturation dominates" `Quick test_maxsg_saturation_dominates_component;
        Alcotest.test_case "coverage curve" `Quick test_maxsg_coverage_curve;
        maxsg_qcheck_dominating_guarantee;
      ] );
    ( "core.mcbg",
      [
        Alcotest.test_case "budget formulas" `Quick test_mcbg_budget_formulas;
        Alcotest.test_case "respects k" `Quick test_mcbg_respects_k;
        Alcotest.test_case "long path connectors" `Quick test_mcbg_connectors_on_long_path;
        Alcotest.test_case "invalid input" `Quick test_mcbg_invalid;
        mcbg_qcheck_guarantee;
      ] );
    ( "core.baselines",
      [
        Alcotest.test_case "db" `Quick test_db_order;
        Alcotest.test_case "degree order" `Quick test_degree_order_monotone;
        Alcotest.test_case "prb" `Quick test_prb_star;
        Alcotest.test_case "set cover dominates" `Quick test_set_cover_dominates;
        Alcotest.test_case "ixpb & tier1" `Quick test_ixpb_tier1;
      ] );
    ( "core.connectivity",
      [
        Alcotest.test_case "star broker" `Quick test_connectivity_star_center_broker;
        Alcotest.test_case "no brokers" `Quick test_connectivity_no_brokers;
        Alcotest.test_case "unrestricted" `Quick test_connectivity_unrestricted_path;
        Alcotest.test_case "sampled = exact" `Quick test_connectivity_sampled_all_sources_equals_exact;
        Alcotest.test_case "monotone in l" `Quick test_connectivity_monotone_in_l;
        conn_qcheck_broker_monotone;
      ] );
    ( "core.alpha_beta",
      [
        Alcotest.test_case "clique" `Quick test_alpha_beta_clique;
        Alcotest.test_case "path" `Quick test_alpha_beta_path;
        Alcotest.test_case "cdf monotone" `Quick test_alpha_beta_cdf_monotone;
      ] );
    ( "core.path_constraint",
      [
        Alcotest.test_case "self feasible" `Quick test_path_constraint_self;
        Alcotest.test_case "detects gap" `Quick test_path_constraint_detects_gap;
      ] );
    ( "core.dominating",
      [
        Alcotest.test_case "predicate" `Quick test_is_dominated_path;
        Alcotest.test_case "find path" `Quick test_find_dominated_path;
        Alcotest.test_case "broker-only star" `Quick test_broker_only_star;
        Alcotest.test_case "broker-only partial" `Quick test_broker_only_partial;
      ] );
    ( "core.composition",
      [
        Alcotest.test_case "shares" `Quick test_composition_shares;
        Alcotest.test_case "ranking" `Quick test_composition_ranking;
      ] );
  ]
