(* Cross-module property tests: invariants that tie the substrates
   together, each checked over randomized instances. *)

open Helpers
module G = Broker_graph.Graph
module Conn = Broker_core.Connectivity

let q ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.int_range 0 100_000

(* Connectivity is symmetric: the dominated-edge predicate is symmetric, so
   u reaches v iff v reaches u. *)
let connectivity_symmetric =
  q "dominated reachability is symmetric" graph_arbitrary (fun g ->
      let n = G.n g in
      let brokers = Broker_core.Maxsg.run g ~k:4 in
      let is_broker = Conn.of_brokers ~n brokers in
      let edge_ok = Conn.edge_ok ~is_broker in
      let ok = ref true in
      for u = 0 to min 5 (n - 1) do
        let du = Broker_graph.Bfs.distances_filtered g ~edge_ok u in
        for v = 0 to n - 1 do
          if du.(v) >= 0 then begin
            let dv = Broker_graph.Bfs.distances_filtered g ~edge_ok v in
            if dv.(u) <> du.(v) then ok := false
          end
        done
      done;
      !ok)

(* Greedy coverage is monotone in the budget. *)
let greedy_monotone_in_k =
  q "greedy coverage monotone in k" graph_arbitrary (fun g ->
      let f brokers =
        let cov = Broker_core.Coverage.create g in
        Array.iter (Broker_core.Coverage.add cov) brokers;
        Broker_core.Coverage.f cov
      in
      let prev = ref 0 in
      let ok = ref true in
      List.iter
        (fun k ->
          let v = f (Broker_core.Greedy_mcb.celf g ~k) in
          if v < !prev then ok := false;
          prev := v)
        [ 1; 2; 4; 8 ];
      !ok)

(* Exact optimum dominates greedy. *)
let exact_dominates_greedy =
  q ~count:30 "OPT >= greedy"
    QCheck.(pair seed_arb (int_range 1 3))
    (fun (seed, k) ->
      let g = random_graph (Broker_util.Xrandom.create seed) ~n:12 ~m:16 in
      let _, opt = Broker_core.Exact.mcb_opt g ~k in
      let cov = Broker_core.Coverage.create g in
      Array.iter (Broker_core.Coverage.add cov) (Broker_core.Greedy_mcb.celf g ~k);
      opt >= Broker_core.Coverage.f cov)

(* Stitch returns a shortest dominated path. *)
let stitch_shortest =
  q "stitched path is a shortest dominated path" graph_arbitrary (fun g ->
      let n = G.n g in
      let brokers = Broker_core.Maxsg.run g ~k:5 in
      let is_broker = Conn.of_brokers ~n brokers in
      let edge_ok = Conn.edge_ok ~is_broker in
      let src = 0 and dst = n - 1 in
      let dist = Broker_graph.Bfs.distances_filtered g ~edge_ok src in
      match Broker_routing.Stitch.stitch g ~is_broker ~src ~dst with
      | None -> dist.(dst) < 0 || src = dst
      | Some s ->
          s.Broker_routing.Stitch.hops = dist.(dst)
          && Broker_core.Dominating.is_dominated_path ~is_broker
               s.Broker_routing.Stitch.path)

(* Components agree with union-find over the edge list. *)
let components_match_union_find =
  q "components = union-find" graph_arbitrary (fun g ->
      let n = G.n g in
      let uf = Broker_util.Union_find.create n in
      G.iter_edges g (fun u v -> ignore (Broker_util.Union_find.union uf u v));
      let c = Broker_graph.Components.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if
            Broker_graph.Components.same c u v
            <> Broker_util.Union_find.same uf u v
          then ok := false
        done
      done;
      !ok)

(* Coreness is bounded by degree, and the k-core has min internal degree k. *)
let kcore_invariants =
  q "k-core invariants" graph_arbitrary (fun g ->
      let core = Broker_graph.Kcore.coreness g in
      let ok = ref true in
      Array.iteri (fun v c -> if c > G.degree g v then ok := false) core;
      let k = Broker_graph.Kcore.degeneracy g in
      if k > 0 then begin
        let members = Broker_graph.Kcore.core_members g ~k in
        let in_core = Array.make (G.n g) false in
        Array.iter (fun v -> in_core.(v) <- true) members;
        Array.iter
          (fun v ->
            let internal =
              G.fold_neighbors g v (fun acc w -> if in_core.(w) then acc + 1 else acc) 0
            in
            if internal < k then ok := false)
          members
      end;
      !ok)

(* PageRank conserves probability mass on arbitrary graphs. *)
let pagerank_mass =
  q "pagerank sums to 1" graph_arbitrary (fun g ->
      let pr = Broker_graph.Pagerank.compute g in
      abs_float (Array.fold_left ( +. ) 0.0 pr -. 1.0) < 1e-6)

(* Betweenness of degree-1 vertices is zero. *)
let betweenness_leaves =
  q "leaves carry no betweenness" graph_arbitrary (fun g ->
      let c =
        Broker_graph.Betweenness.compute ~samples:(G.n g)
          ~rng:(Broker_util.Xrandom.create 1) g
      in
      let ok = ref true in
      Array.iteri (fun v x -> if G.degree g v <= 1 && x <> 0.0 then ok := false) c;
      !ok)

(* Dataset save/load is the identity on generated topologies. *)
let dataset_roundtrip =
  q ~count:10 "dataset roundtrip" seed_arb (fun seed ->
      let t = small_internet ~seed ~scale:0.004 () in
      let path = Filename.temp_file "topo_prop" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Broker_topo.Dataset.save ~path t;
          let t' = Broker_topo.Dataset.load ~path in
          G.edges t.Broker_topo.Topology.graph = G.edges t'.Broker_topo.Topology.graph
          && t.Broker_topo.Topology.kinds = t'.Broker_topo.Topology.kinds))

(* MCBG keeps its guarantee across beta values. *)
let mcbg_guarantee_any_beta =
  q ~count:40 "MCBG guarantee for any beta"
    QCheck.(pair seed_arb (int_range 1 8))
    (fun (seed, beta) ->
      let g = random_graph (Broker_util.Xrandom.create seed) ~n:30 ~m:45 in
      let r = Broker_core.Mcbg.run g ~k:6 ~beta in
      Broker_core.Mcbg.guarantees_dominating_paths g r.Broker_core.Mcbg.brokers)

(* Nash bargaining price sits strictly inside the bargaining interval. *)
let bargain_interior =
  q ~count:200 "bargain price interior"
    QCheck.(triple (float_range 0.1 10.0) (int_range 1 6) (float_range 0.01 1.0))
    (fun (p_b, hops, cost) ->
      match Broker_econ.Bargain.solve ~broker_price:p_b ~hops cost with
      | None -> not (Broker_econ.Bargain.feasible ~broker_price:p_b ~hops ~cost)
      | Some o ->
          let h = float_of_int hops in
          let r = (2.0 *. p_b) -. (h *. cost) in
          o.Broker_econ.Bargain.price > cost
          && o.Broker_econ.Bargain.price < r /. h
          && o.Broker_econ.Bargain.u_employee > 0.0
          && o.Broker_econ.Bargain.u_broker > 0.0)

(* Customer best responses never exceed bounds and are monotone in price. *)
let best_response_monotone =
  q ~count:100 "best response monotone in price" seed_arb (fun seed ->
      let rng = Broker_util.Xrandom.create seed in
      let c =
        (Broker_econ.Market.random_population ~rng ~n:1).(0)
      in
      let a1 = Broker_econ.Market.best_response c ~price:0.5 in
      let a2 = Broker_econ.Market.best_response c ~price:3.0 in
      let a3 = Broker_econ.Market.best_response c ~price:10.0 in
      a1 >= a2 -. 1e-6 && a2 >= a3 -. 1e-6)

(* Shapley efficiency on random monotone games. *)
let shapley_efficiency_random =
  q ~count:50 "shapley efficiency on random games" seed_arb (fun seed ->
      let rng = Broker_util.Xrandom.create seed in
      let n = 6 in
      let weights = Array.init n (fun _ -> Broker_util.Xrandom.float rng 5.0) in
      let v mask =
        (* Weighted coverage-style value: sqrt of summed weights. *)
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          if mask land (1 lsl j) <> 0 then acc := !acc +. weights.(j)
        done;
        sqrt !acc
      in
      let phi = Broker_econ.Shapley.exact ~n ~v in
      Broker_econ.Shapley.efficiency_gap ~v ~n phi < 1e-9)

(* Simulator conservation: with infinite capacity, admission equals
   path availability. *)
let sim_infinite_capacity =
  q ~count:15 "infinite capacity admits every routable session" seed_arb
    (fun seed ->
      let t = small_internet ~seed ~scale:0.005 () in
      let g = t.Broker_topo.Topology.graph in
      let brokers = Broker_core.Maxsg.run g ~k:10 in
      let rng = Broker_util.Xrandom.create seed in
      let model = Broker_core.Traffic.gravity ~rng g in
      let sessions =
        Broker_sim.Workload.generate ~rng model ~n_sessions:200
          Broker_sim.Workload.default_params
      in
      let stats =
        Broker_sim.Simulator.run t ~brokers ~sessions
          (Broker_sim.Simulator.uniform_capacity infinity)
      in
      stats.Broker_sim.Simulator.rejected_capacity = 0
      && stats.Broker_sim.Simulator.admitted
         + stats.Broker_sim.Simulator.rejected_no_path
         = 200)

(* Lemma 3: the coverage function f is submodular and nondecreasing —
   marginal gains shrink as the set grows. *)
let coverage_submodular =
  q "f is submodular (Lemma 3)" graph_arbitrary (fun g ->
      let n = G.n g in
      let rng = Broker_util.Xrandom.create 17 in
      let ok = ref true in
      for _ = 1 to 5 do
        let small = Broker_core.Coverage.create g in
        let big = Broker_core.Coverage.create g in
        (* A ⊆ B: B gets A's brokers plus extras. *)
        let a = Broker_util.Xrandom.int rng n in
        Broker_core.Coverage.add small a;
        Broker_core.Coverage.add big a;
        Broker_core.Coverage.add big (Broker_util.Xrandom.int rng n);
        Broker_core.Coverage.add big (Broker_util.Xrandom.int rng n);
        let v = Broker_util.Xrandom.int rng n in
        if Broker_core.Coverage.gain small v < Broker_core.Coverage.gain big v
        then ok := false
      done;
      !ok)

(* CELF does strictly less work than the naive greedy re-scan. *)
let celf_work_bound =
  q ~count:20 "CELF work << naive" seed_arb (fun seed ->
      let g = random_graph (Broker_util.Xrandom.create seed) ~n:200 ~m:400 in
      ignore (Broker_core.Greedy_mcb.naive g ~k:10);
      let naive_work = Broker_core.Greedy_mcb.gain_evaluations () in
      ignore (Broker_core.Greedy_mcb.celf g ~k:10);
      let celf_work = Broker_core.Greedy_mcb.gain_evaluations () in
      celf_work < naive_work)

(* Bounded coverage: radius-r covered count is monotone in r. *)
let bounded_monotone_radius =
  q "r-cover monotone in radius" graph_arbitrary (fun g ->
      let brokers = Broker_core.Maxsg.run g ~k:3 in
      let c1 = Broker_core.Bounded_coverage.covered_within g ~brokers ~radius:1 in
      let c2 = Broker_core.Bounded_coverage.covered_within g ~brokers ~radius:2 in
      let c3 = Broker_core.Bounded_coverage.covered_within g ~brokers ~radius:3 in
      c1 <= c2 && c2 <= c3)

(* Theorem 3's budget constraint: x* + (x*-1)(⌈β/2⌉-1) <= k. *)
let mcbg_budget_constraint =
  q ~count:300 "x* satisfies Theorem 3's constraint"
    QCheck.(pair (int_range 1 500) (int_range 1 16))
    (fun (k, beta) ->
      let xs = Broker_core.Mcbg.x_star ~k ~beta in
      let c = (beta + 1) / 2 in
      xs >= 1 && xs + ((xs - 1) * (c - 1)) <= k)

(* Valley-free connectivity never exceeds unconstrained connectivity on
   the same sources. *)
let directional_below_free =
  q ~count:10 "valley-free <= bidirectional" seed_arb (fun seed ->
      let t = small_internet ~seed ~scale:0.005 () in
      let g = t.Broker_topo.Topology.graph in
      let n = G.n g in
      let brokers = Broker_core.Maxsg.run g ~k:12 in
      let is_broker = Conn.of_brokers ~n brokers in
      let source_set = Array.init (min 30 n) Fun.id in
      let dir =
        Broker_core.Directional.saturated_sampled ~source_set
          ~rng:(Broker_util.Xrandom.create seed)
          ~sources:(Array.length source_set) t ~is_broker
      in
      let free =
        (Conn.eval_sources ~l_max:1 g ~is_broker source_set).Conn.saturated
      in
      dir <= free +. 1e-12)

(* Workload generation is a pure function of the seed. *)
let workload_deterministic =
  q ~count:30 "workload deterministic in seed" seed_arb (fun seed ->
      let model = { Broker_core.Traffic.masses = Array.make 10 1.0 } in
      let gen () =
        Broker_sim.Workload.generate
          ~rng:(Broker_util.Xrandom.create seed)
          model ~n_sessions:50 Broker_sim.Workload.default_params
      in
      gen () = gen ())

(* Traffic-weighted connectivity stays a fraction. *)
let traffic_fraction_bounds =
  q ~count:15 "weighted connectivity in [0,1]" seed_arb (fun seed ->
      let t = small_internet ~seed ~scale:0.005 () in
      let g = t.Broker_topo.Topology.graph in
      let rng = Broker_util.Xrandom.create seed in
      let model = Broker_core.Traffic.gravity ~rng g in
      let brokers = Broker_core.Maxsg.run g ~k:8 in
      let w =
        Broker_core.Traffic.weighted_saturated ~rng ~sources:32 g model
          ~is_broker:(Conn.of_brokers ~n:(G.n g) brokers)
      in
      w >= 0.0 && w <= 1.0 +. 1e-9)

(* Saving a loaded topology reproduces the file byte for byte. *)
let dataset_save_idempotent =
  q ~count:5 "dataset save is idempotent" seed_arb (fun seed ->
      let t = small_internet ~seed ~scale:0.003 () in
      let p1 = Filename.temp_file "idem1" ".txt" in
      let p2 = Filename.temp_file "idem2" ".txt" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove p1;
          Sys.remove p2)
        (fun () ->
          Broker_topo.Dataset.save ~path:p1 t;
          let t' = Broker_topo.Dataset.load ~path:p1 in
          Broker_topo.Dataset.save ~path:p2 t';
          let read p =
            let ic = open_in_bin p in
            let len = in_channel_length ic in
            let s = really_input_string ic len in
            close_in ic;
            s
          in
          read p1 = read p2))

let suite =
  [
    ( "properties.cross_module",
      [
        connectivity_symmetric;
        greedy_monotone_in_k;
        exact_dominates_greedy;
        stitch_shortest;
        components_match_union_find;
        kcore_invariants;
        pagerank_mass;
        betweenness_leaves;
        dataset_roundtrip;
        mcbg_guarantee_any_beta;
        bargain_interior;
        best_response_monotone;
        shapley_efficiency_random;
        sim_infinite_capacity;
        bounded_monotone_radius;
        coverage_submodular;
        celf_work_bound;
        mcbg_budget_constraint;
        directional_below_free;
        workload_deterministic;
        traffic_fraction_bounds;
        dataset_save_idempotent;
      ] );
  ]
