(* Report IR tests: JSON round-trip, text byte-identity against the
   committed goldens in test/goldens/, and the regression-diff semantics
   behind `brokerctl report diff`. *)

open Helpers
module R = Broker_report.Report
module Rtext = Broker_report.Report_text
module Rjson = Broker_report.Report_json
module Rcsv = Broker_report.Report_csv
module Rdiff = Broker_report.Report_diff
module E = Broker_experiments

(* A synthetic report exercising every item and cell constructor; the
   optional arguments let the diff tests perturb one value at a time. *)
let synthetic ?(frac = 0.123456) ?(secs = 0.031) ?(vol = 0.125)
    ?(extra_metric = false) () =
  let r =
    R.create ~meta:[ ("scale", 0.02); ("seed", 42.0) ] ~name:"synthetic" ()
  in
  let s = R.section r "Section one" in
  R.note s "plain note\n";
  R.notef s "formatted %d\n" 7;
  R.metric s ~key:"silent.metric" 0.5;
  R.metricf s ~key:"loud.metric" ~unit:"ms" 12.5 "latency = %.1f ms\n" 12.5;
  R.metric s ~key:"volatile.metric" ~volatile:true vol;
  R.series s ~key:"curve" ~x:"k" ~y:"conn"
    [| (1.0, 0.5); (2.0, nan); (3.0, infinity) |];
  let t =
    R.table s ~key:"cells"
      ~columns:
        [
          R.col "Name"; R.col ~unit:"count" "N"; R.col "Frac"; R.col "Pct";
          R.col "Secs";
        ]
      ()
  in
  R.row t
    [ R.str "a"; R.int 3; R.float ~decimals:5 frac; R.pct 0.25; R.seconds secs ];
  R.rule t;
  R.row t
    [
      R.strf "b%d" 2; R.int (-1); R.float nan; R.pct ~decimals:0 1.0;
      R.seconds ~decimals:1 2.5;
    ];
  if extra_metric then R.metric s ~key:"extra.metric" 1.0;
  r

let test_json_roundtrip_synthetic () =
  let r = synthetic () in
  match Rjson.of_string (Rjson.to_string r) with
  | Ok r' -> check_bool "round-trip equal" true (R.equal r r')
  | Error msg -> Alcotest.fail msg

let test_json_rejects_garbage () =
  (match Rjson.of_string "{\"schema\": \"nope\"}" with
  | Ok _ -> Alcotest.fail "bad schema accepted"
  | Error _ -> ());
  match Rjson.of_string "{ not json" with
  | Ok _ -> Alcotest.fail "malformed input accepted"
  | Error _ -> ()

let tiny_ctx () = E.Ctx.create ~scale:0.008 ~sources:24 ~seed:99 ()

let test_json_roundtrip_experiments () =
  (* Every experiment's report must survive serialization. *)
  List.iter
    (fun (id, r) ->
      match Rjson.of_string (Rjson.to_string r) with
      | Ok r' -> check_bool (id ^ " round-trips") true (R.equal r r')
      | Error msg -> Alcotest.fail (id ^ ": " ^ msg))
    (E.All.run_all (tiny_ctx ()))

(* Text byte-identity: the four pinned experiments must render exactly
   the goldens captured at the CI reproduction point (fresh context,
   scale 0.02, sources 192, seed 42). *)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let render r = Format.asprintf "%a" Rtext.pp r

let test_text_golden id () =
  let golden = read_file ("goldens/" ^ id ^ ".txt") in
  let ctx = E.Ctx.create ~scale:0.02 ~sources:192 ~seed:42 () in
  match E.All.run_one ctx id with
  | Error msg -> Alcotest.fail msg
  | Ok r -> Alcotest.(check string) (id ^ " text output") golden (render r)

(* Diff semantics. *)

let test_diff_equal () =
  let o = Rdiff.compare (synthetic ()) (synthetic ()) in
  check_bool "identical reports match" true (Rdiff.ok o)

let test_diff_volatile_ignored () =
  (* Wall-clock cells and volatile metrics must not gate regressions. *)
  let o = Rdiff.compare (synthetic ()) (synthetic ~secs:9.9 ~vol:7.0 ()) in
  check_bool "volatile drift ignored" true (Rdiff.ok o)

let test_diff_drift () =
  let o = Rdiff.compare (synthetic ()) (synthetic ~frac:0.124456 ()) in
  check_bool "perturbation detected" false (Rdiff.ok o);
  check_int "exactly one drift" 1 (List.length o.Rdiff.drifts);
  let d = List.hd o.Rdiff.drifts in
  check_bool "key names the cell" true
    (String.equal d.Rdiff.key "table.cells.r0.frac");
  let rendered = Format.asprintf "%a" Rdiff.pp o in
  check_bool "pp mentions the key" true
    (contains ~needle:"table.cells.r0.frac" rendered)

let test_diff_tolerance () =
  let a = synthetic () and b = synthetic ~frac:0.124456 () in
  check_bool "within global tolerance" true
    (Rdiff.ok (Rdiff.compare ~tols:[ ("", 0.01) ] a b));
  (* Longest matching prefix wins: the tighter table-specific epsilon
     overrides the loose global default. *)
  check_bool "specific prefix overrides global" false
    (Rdiff.ok
       (Rdiff.compare ~tols:[ ("", 0.01); ("table.cells", 1e-6) ] a b));
  check_bool "unrelated prefix ignored" false
    (Rdiff.ok (Rdiff.compare ~tols:[ ("metric.", 0.01) ] a b))

let test_diff_missing_keys () =
  let o = Rdiff.compare (synthetic ()) (synthetic ~extra_metric:true ()) in
  check_bool "extra key is drift" false (Rdiff.ok o);
  check_int "reported as only-b" 1 (List.length o.Rdiff.only_b);
  check_int "nothing missing in a" 0 (List.length o.Rdiff.only_a)

(* IR invariants. *)

let test_duplicate_key_rejected () =
  let r = R.create ~name:"dup" () in
  let s = R.section r "s" in
  R.metric s ~key:"k" 1.0;
  match R.metric s ~key:"k" 2.0 with
  | () -> Alcotest.fail "duplicate key accepted"
  | exception Invalid_argument _ -> ()

let test_row_arity_rejected () =
  let r = R.create ~name:"arity" () in
  let s = R.section r "s" in
  let t = R.table s ~columns:[ R.col "A"; R.col "B" ] () in
  match R.row t [ R.int 1 ] with
  | () -> Alcotest.fail "short row accepted"
  | exception Invalid_argument _ -> ()

let test_cell_text () =
  Alcotest.(check string) "pct" "25.00%" (R.cell_text (R.pct 0.25));
  Alcotest.(check string) "float decimals" "0.12346"
    (R.cell_text (R.float ~decimals:5 0.123456));
  Alcotest.(check string) "seconds" "0.031" (R.cell_text (R.seconds 0.031))

let test_csv_files () =
  let files = Rcsv.files (synthetic ()) in
  let names = List.map fst files in
  check_bool "table file" true
    (List.exists (String.equal "synthetic.table.cells.csv") names);
  check_bool "series file" true
    (List.exists (String.equal "synthetic.series.curve.csv") names);
  let table = List.assoc "synthetic.table.cells.csv" files in
  check_bool "unit in header" true (contains ~needle:"N (count)" table)

let suite =
  [
    ( "report.json",
      [
        Alcotest.test_case "round-trip synthetic" `Quick
          test_json_roundtrip_synthetic;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "round-trip all experiments" `Slow
          test_json_roundtrip_experiments;
      ] );
    ( "report.text-goldens",
      [
        Alcotest.test_case "table1" `Quick (test_text_golden "table1");
        Alcotest.test_case "fig5c" `Quick (test_text_golden "fig5c");
        Alcotest.test_case "ext_resilience" `Quick
          (test_text_golden "ext_resilience");
        Alcotest.test_case "ext_churn_cache" `Quick
          (test_text_golden "ext_churn_cache");
        Alcotest.test_case "ext_reconverge" `Quick
          (test_text_golden "ext_reconverge");
        Alcotest.test_case "ext_timeline" `Quick
          (test_text_golden "ext_timeline");
      ] );
    ( "report.diff",
      [
        Alcotest.test_case "equal" `Quick test_diff_equal;
        Alcotest.test_case "volatile ignored" `Quick test_diff_volatile_ignored;
        Alcotest.test_case "drift" `Quick test_diff_drift;
        Alcotest.test_case "tolerance prefixes" `Quick test_diff_tolerance;
        Alcotest.test_case "missing keys" `Quick test_diff_missing_keys;
      ] );
    ( "report.ir",
      [
        Alcotest.test_case "duplicate key" `Quick test_duplicate_key_rejected;
        Alcotest.test_case "row arity" `Quick test_row_arity_rejected;
        Alcotest.test_case "cell text" `Quick test_cell_text;
        Alcotest.test_case "csv files" `Quick test_csv_files;
      ] );
  ]
