(* The dominated-path BFS engine: projection correctness, equivalence of
   the direction-optimizing workspace BFS with the generic filtered BFS,
   bitwise equality of the engine and reference connectivity curves, and
   determinism across REPRO_DOMAINS settings. *)

open Helpers
module G = Broker_graph.Graph
module Bfs = Broker_graph.Bfs
module Projected = Broker_graph.Projected
module Conn = Broker_core.Connectivity

let q ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.int_range 0 100_000

(* A graph together with a random broker set (possibly empty). *)
let graph_brokers_arb =
  QCheck.make
    ~print:(fun (g, brokers) ->
      Printf.sprintf "<graph n=%d m=%d brokers=%d>" (G.n g) (G.m g)
        (Array.length brokers))
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      int_range 0 80 >>= fun m ->
      int_range 0 8 >>= fun k ->
      int_range 0 1_000_000 >|= fun seed ->
      let rng = Broker_util.Xrandom.create seed in
      let g = random_graph rng ~n ~m in
      let brokers =
        Array.init k (fun _ -> Broker_util.Xrandom.int rng n)
      in
      (g, brokers))

(* --- projection ------------------------------------------------------ *)

let projection_barbell () =
  (* Brokers {2,3}: the bridge and both triangles are dominated, but the
     far edges 0-1 and 4-5 (no broker endpoint) are dropped. *)
  let g = barbell_graph () in
  let proj = Projected.project g ~is_broker:(fun v -> v = 2 || v = 3) in
  let pg = Projected.graph proj in
  check_int "same vertex count" (G.n g) (G.n pg);
  check_int "dominated edges" 5 (G.m pg);
  check_bool "bridge kept" true (G.mem_edge pg 2 3);
  check_bool "0-2 kept" true (G.mem_edge pg 0 2);
  check_bool "0-1 dropped" false (G.mem_edge pg 0 1);
  check_bool "4-5 dropped" false (G.mem_edge pg 4 5);
  check_int "broker count" 2 (Projected.broker_count proj);
  check_int "arcs = 2m" (2 * G.m pg) (Projected.arcs proj)

let projection_empty_and_full () =
  let g = clique_graph 6 in
  let none = Projected.graph (Projected.project g ~is_broker:(fun _ -> false)) in
  check_int "no brokers -> no edges" 0 (G.m none);
  let all = Projected.graph (Projected.project g ~is_broker:(fun _ -> true)) in
  check_int "all brokers -> all edges" (G.m g) (G.m all)

let projection_matches_predicate =
  q "projected edges = dominated edges" graph_brokers_arb (fun (g, brokers) ->
      let n = G.n g in
      let is_broker = Conn.of_brokers ~n brokers in
      let pg = Projected.graph (Projected.project g ~is_broker) in
      let ok = ref true in
      (* Every original edge appears in the projection iff dominated; the
         projection introduces nothing new. *)
      G.iter_edges g (fun u v ->
          let dominated = is_broker u || is_broker v in
          if G.mem_edge pg u v <> dominated then ok := false);
      G.iter_edges pg (fun u v -> if not (G.mem_edge g u v) then ok := false);
      !ok)

(* --- workspace BFS vs the generic filtered oracle -------------------- *)

let engine_matches_filtered =
  (* One workspace reused across every qcheck case and every source: also
     stresses the epoch/regrow invariants the zero-alloc design rests on. *)
  let ws = Bfs.workspace () in
  q "workspace BFS distances = distances_filtered" graph_brokers_arb
    (fun (g, brokers) ->
      let n = G.n g in
      let is_broker = Conn.of_brokers ~n brokers in
      let edge_ok = Conn.edge_ok ~is_broker in
      let pg = Projected.graph (Projected.project g ~is_broker) in
      let got = Array.make n 0 in
      let ok = ref true in
      for src = 0 to min 7 (n - 1) do
        let expect = Bfs.distances_filtered g ~edge_ok src in
        Bfs.run ws pg src;
        Bfs.distances_into ws got;
        if got <> expect then ok := false;
        (* level counts and reached must agree with the distance array *)
        let settled = Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0 expect in
        if Bfs.reached ws <> settled then ok := false;
        for d = 0 to Bfs.max_level ws do
          let c =
            Array.fold_left (fun a x -> if x = d then a + 1 else a) 0 expect
          in
          if Bfs.level_count ws d <> c then ok := false
        done
      done;
      !ok)

let engine_unrestricted_matches_plain =
  let ws = Bfs.workspace () in
  q "workspace BFS on raw graph = distances" graph_arbitrary (fun g ->
      let n = G.n g in
      let got = Array.make n 0 in
      let ok = ref true in
      for src = 0 to min 5 (n - 1) do
        Bfs.run ws g src;
        Bfs.distances_into ws got;
        if got <> Broker_graph.Bfs.distances g src then ok := false
      done;
      !ok)

let engine_max_depth =
  let ws = Bfs.workspace () in
  q ~count:40 "workspace BFS respects max_depth" graph_arbitrary (fun g ->
      let n = G.n g in
      let got = Array.make n 0 in
      let ok = ref true in
      List.iter
        (fun md ->
          Bfs.run ws g ~max_depth:md 0;
          Bfs.distances_into ws got;
          if got <> Bfs.distances_bounded g ~max_depth:md 0 then ok := false)
        [ 0; 1; 2; 3 ];
      !ok)

let engine_source_out_of_range () =
  let ws = Bfs.workspace () in
  let g = path_graph 4 in
  Alcotest.check_raises "negative source"
    (Invalid_argument "Bfs: source out of range") (fun () ->
      Bfs.run ws g (-1));
  Alcotest.check_raises "source too large"
    (Invalid_argument "Bfs: source out of range") (fun () -> Bfs.run ws g 4)

(* --- Bfs.generic validates all sources before mutating --------------- *)

let generic_validates_sources_upfront () =
  let g = path_graph 5 in
  Alcotest.check_raises "bad source in multi-source list"
    (Invalid_argument "Bfs: source out of range") (fun () ->
      ignore (Bfs.distances_multi g [ 0; 2; 99 ]));
  (* The same traversal without the bad source still works — and a caller
     that catches the exception observes no partially-run state because
     validation happens before any mutation. *)
  let d = Bfs.distances_multi g [ 0; 2 ] in
  check_int "multi-source still correct" 1 d.(3)

(* --- connectivity: engine = reference, bitwise ----------------------- *)

let curves_equal (a : Conn.curve) (b : Conn.curve) =
  a.Conn.l_max = b.Conn.l_max
  && a.Conn.per_hop = b.Conn.per_hop
  && a.Conn.saturated = b.Conn.saturated

let eval_matches_reference =
  q ~count:40 "Connectivity.eval = reference oracle (bitwise)"
    graph_brokers_arb
    (fun (g, brokers) ->
      let n = G.n g in
      let is_broker = Conn.of_brokers ~n brokers in
      let sources = Array.init (min 12 n) (fun i -> i) in
      let engine = Conn.eval_sources ~l_max:6 g ~is_broker sources in
      let oracle = Conn.eval_sources_reference ~l_max:6 g ~is_broker sources in
      curves_equal engine oracle)

let exact_matches_reference () =
  let t = small_internet ~seed:5 ~scale:0.008 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let brokers = Broker_core.Maxsg.run g ~k:12 in
  let is_broker = Conn.of_brokers ~n brokers in
  let engine = Conn.exact ~l_max:8 g ~is_broker in
  let oracle =
    Conn.eval_sources_reference ~l_max:8 g ~is_broker
      (Array.init n (fun i -> i))
  in
  check_bool "exact curve bitwise equal" true (curves_equal engine oracle)

(* --- determinism across REPRO_DOMAINS -------------------------------- *)

let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

let deterministic_across_domains () =
  let t = small_internet ~seed:9 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let brokers = Broker_core.Maxsg.run g ~k:16 in
  let is_broker = Conn.of_brokers ~n brokers in
  let sources = Array.init (min 64 n) (fun i -> i) in
  let run () = Conn.eval_sources ~l_max:10 g ~is_broker sources in
  let c1 = with_domains "1" run in
  let c4 = with_domains "4" run in
  check_bool "REPRO_DOMAINS=1 = REPRO_DOMAINS=4" true (curves_equal c1 c4);
  let oracle =
    with_domains "4" (fun () ->
        Conn.eval_sources_reference ~l_max:10 g ~is_broker sources)
  in
  check_bool "engine = oracle under domains" true (curves_equal c1 oracle)

(* --- Graph.of_edges in-place construction ---------------------------- *)

let of_edges_matches_naive =
  q ~count:80 "of_edges: in-place sort/dedup matches naive construction"
    QCheck.(pair seed_arb (pair (int_range 1 30) (int_range 0 120)))
    (fun (seed, (n, m)) ->
      let rng = Broker_util.Xrandom.create seed in
      (* Raw edges with self-loops and duplicates in both orientations. *)
      let edges =
        Array.init m (fun _ ->
            (Broker_util.Xrandom.int rng n, Broker_util.Xrandom.int rng n))
      in
      let g = G.of_edges ~n edges in
      let naive u =
        Array.to_list edges
        |> List.concat_map (fun (a, b) ->
               if a = u && b <> u then [ b ]
               else if b = u && a <> u then [ a ]
               else [])
        |> List.sort_uniq Int.compare
      in
      let ok = ref true in
      for u = 0 to n - 1 do
        if Array.to_list (G.neighbors g u) <> naive u then ok := false
      done;
      !ok)

let of_edges_hub_segment () =
  (* A hub of degree > the insertion-sort cutoff, fed in descending order
     with duplicates: exercises the heapsort path of the range sort. *)
  let spokes = Array.init 100 (fun i -> (0, 100 - i)) in
  let dups = Array.init 50 (fun i -> ((2 * i) + 1, 0)) in
  let g = G.of_edges ~n:101 (Array.append spokes dups) in
  check_int "hub degree" 100 (G.degree g 0);
  let nb = G.neighbors g 0 in
  check_bool "hub adjacency sorted" true
    (Array.for_all Fun.id (Array.init 99 (fun i -> nb.(i) < nb.(i + 1))))

let suite =
  [
    ( "bfs_engine.projection",
      [
        Alcotest.test_case "barbell projection" `Quick projection_barbell;
        Alcotest.test_case "empty/full broker sets" `Quick projection_empty_and_full;
        projection_matches_predicate;
      ] );
    ( "bfs_engine.workspace",
      [
        engine_matches_filtered;
        engine_unrestricted_matches_plain;
        engine_max_depth;
        Alcotest.test_case "source validation" `Quick engine_source_out_of_range;
        Alcotest.test_case "generic validates sources upfront" `Quick
          generic_validates_sources_upfront;
      ] );
    ( "bfs_engine.connectivity",
      [
        eval_matches_reference;
        Alcotest.test_case "exact = reference at small scale" `Quick
          exact_matches_reference;
        Alcotest.test_case "deterministic across REPRO_DOMAINS" `Quick
          deterministic_across_domains;
      ] );
    ( "bfs_engine.graph_build",
      [
        of_edges_matches_naive;
        Alcotest.test_case "hub segment heapsort" `Quick of_edges_hub_segment;
      ] );
  ]
