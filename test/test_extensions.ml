(* Tests for the reproduction extensions: Betweenness, Exact solvers,
   Resilience, Traffic, Bounded_coverage, Churn, and the extension
   experiments' invariants. *)

open Helpers
module G = Broker_graph.Graph
module Betweenness = Broker_graph.Betweenness
module Exact = Broker_core.Exact
module Resilience = Broker_core.Resilience
module Traffic = Broker_core.Traffic
module Bounded = Broker_core.Bounded_coverage
module Conn = Broker_core.Connectivity

(* ---------- Betweenness ---------- *)

let test_betweenness_star () =
  let g = star_graph 8 in
  let c = Betweenness.compute ~samples:8 ~rng:(rng ()) g in
  (* Every leaf pair routes through the center; leaves carry nothing. *)
  for v = 1 to 7 do
    check_float "leaf zero" 0.0 c.(v);
    check_bool "center dominates" true (c.(0) > c.(v))
  done;
  Alcotest.(check int) "top is center" 0 (Betweenness.top ~samples:8 ~rng:(rng ()) g ~k:1).(0)

let test_betweenness_path_exact () =
  (* Path 0-1-2-3-4 (full Brandes since n <= samples). Betweenness of the
     middle vertex 2: pairs (0,3),(0,4),(1,3),(1,4) in both directions plus
     (1,3)... standard value: vertex 2 lies on 4 of the shortest paths each
     direction = 8 directed dependencies. *)
  let g = path_graph 5 in
  let c = Betweenness.compute ~samples:5 ~rng:(rng ()) g in
  check_float "endpoints zero" 0.0 c.(0);
  check_float "middle" 8.0 c.(2);
  check_float "off middle" 6.0 c.(1)

let test_betweenness_cycle_uniform () =
  let g = cycle_graph 6 in
  let c = Betweenness.compute ~samples:6 ~rng:(rng ()) g in
  for v = 1 to 5 do
    check_float_eps 1e-9 "symmetric" c.(0) c.(v)
  done

(* ---------- Exact ---------- *)

let test_exact_mcb_star () =
  let g = star_graph 7 in
  let set, value = Exact.mcb_opt g ~k:1 in
  Alcotest.(check (array int)) "center" [| 0 |] set;
  check_int "covers all" 7 value

let test_exact_matches_greedy_on_easy () =
  (* Star (5 nodes) + disjoint 4-path: optimum k=2 = center (covers 5) +
     either interior path vertex (covers 3 of the 4) = 8. *)
  let g = G.of_edges ~n:9 [| (0, 1); (0, 2); (0, 3); (0, 4); (5, 6); (6, 7); (7, 8) |] in
  let _, opt = Exact.mcb_opt g ~k:2 in
  check_int "opt value" 8 opt;
  let _, opt3 = Exact.mcb_opt g ~k:3 in
  check_int "k=3 covers all" 9 opt3

let test_exact_greedy_bound () =
  (* Lemma 4: greedy >= (1 - 1/e) OPT, on a batch of random graphs. *)
  let r = rng () in
  for _ = 1 to 20 do
    let g = random_graph r ~n:14 ~m:20 in
    let k = 3 in
    let _, opt = Exact.mcb_opt g ~k in
    let cov = Broker_core.Coverage.create g in
    Array.iter (Broker_core.Coverage.add cov) (Broker_core.Greedy_mcb.celf g ~k);
    check_bool "greedy bound" true
      (float_of_int (Broker_core.Coverage.f cov)
      >= ((1.0 -. exp (-1.0)) *. float_of_int opt) -. 1e-9)
  done

let test_exact_mcbg_guarantee () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = random_graph r ~n:12 ~m:14 in
    let set, value = Exact.mcbg_opt g ~k:3 in
    check_bool "guarantee holds" true (Broker_core.Mcbg.guarantees_dominating_paths g set);
    let _, mcb_value = Exact.mcb_opt g ~k:3 in
    check_bool "mcbg <= mcb" true (value <= mcb_value)
  done

let test_exact_pds () =
  (* A star is path-dominated by its center alone. *)
  check_bool "star pds k=1" true (Exact.pds_exists (star_graph 6) ~k:1);
  (* A path of 7 cannot be dominated-with-paths by 1 vertex. *)
  check_bool "path pds k=1" false (Exact.pds_exists (path_graph 7) ~k:1)

let test_exact_too_large () =
  let g = path_graph 30 in
  Alcotest.check_raises "n > 25"
    (Invalid_argument "Exact: graph too large for enumeration") (fun () ->
      ignore (Exact.mcb_opt g ~k:2))

(* ---------- Resilience ---------- *)

let test_resilience_zero_failures () =
  let g = random_graph (rng ()) ~n:60 ~m:100 in
  let brokers = Broker_core.Maxsg.run g ~k:8 in
  let alive =
    Resilience.survivors ~rng:(rng ()) g ~brokers ~model:Resilience.Random
      ~fraction:0.0
  in
  Alcotest.(check (array int)) "all alive" brokers alive

let test_resilience_targeted_kills_hubs () =
  let g = star_graph 10 in
  let brokers = [| 0; 1; 2 |] in
  let alive =
    Resilience.survivors ~rng:(rng ()) g ~brokers ~model:Resilience.Targeted
      ~fraction:0.34
  in
  (* One broker dies: the center (highest degree). *)
  check_int "one died" 2 (Array.length alive);
  check_bool "center gone" true (not (Array.mem 0 alive))

let test_resilience_monotone_degradation () =
  let t = small_internet ~seed:13 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  List.iter
    (fun model ->
      let points =
        Resilience.degradation ~rng:(rng ()) ~sources:32 g ~brokers ~model
          ~fractions:[ 0.0; 0.25; 0.5 ]
      in
      let rec check_mono = function
        | (a : Resilience.point) :: (b :: _ as rest) ->
            check_bool "monotone" true
              (b.Resilience.connectivity <= a.Resilience.connectivity +. 1e-12);
            check_mono rest
        | [ _ ] | [] -> ()
      in
      check_mono points)
    [ Resilience.Random; Resilience.Targeted ]

let test_resilience_bad_fraction () =
  let g = path_graph 4 in
  Alcotest.check_raises "fraction" (Invalid_argument "Resilience: fraction in [0,1]")
    (fun () ->
      ignore
        (Resilience.survivors ~rng:(rng ()) g ~brokers:[| 0 |]
           ~model:Resilience.Random ~fraction:2.0))

(* ---------- Traffic ---------- *)

let test_traffic_masses_normalized () =
  let g = random_graph (rng ()) ~n:100 ~m:200 in
  let m = Traffic.gravity ~rng:(rng ()) g in
  check_int "one mass per node" 100 (Array.length m.Traffic.masses);
  Array.iter (fun x -> check_bool "positive" true (x > 0.0)) m.Traffic.masses;
  check_float_eps 1e-6 "mean one" 1.0
    (Array.fold_left ( +. ) 0.0 m.Traffic.masses /. 100.0)

let test_traffic_total_demand () =
  let m = { Traffic.masses = [| 1.0; 2.0; 3.0 |] } in
  (* (1+2+3)^2 - (1+4+9) = 36 - 14 = 22. *)
  check_float "demand" 22.0 (Traffic.total_demand m)

let test_traffic_full_broker_serves_all () =
  let g = random_graph (rng ()) ~n:50 ~m:120 in
  let m = Traffic.gravity ~rng:(rng ()) g in
  (* Connected-ish graph with every node a broker: ~100% of demand. *)
  let w =
    Traffic.weighted_saturated ~rng:(rng ()) ~sources:64 g m ~is_broker:(fun _ -> true)
  in
  check_bool "nearly all traffic" true (w > 0.95)

let test_traffic_weighting_favors_hubs () =
  (* Star: broker = center. Every pair served either way, so compare a
     *partial* setting: two disjoint stars bridged; broker set covers one
     side. The covered side has the heavy masses by construction. *)
  let t = small_internet ~seed:21 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let m = Traffic.gravity ~rng:(rng ()) g in
  let brokers = Broker_core.Maxsg.run g ~k:8 in
  let is_broker = Conn.of_brokers ~n brokers in
  let weighted = Traffic.weighted_saturated ~rng:(rng ()) ~sources:96 g m ~is_broker in
  let unweighted =
    (Conn.sampled ~l_max:1 ~rng:(rng ()) ~sources:96 g ~is_broker).Conn.saturated
  in
  check_bool "traffic share exceeds pair share" true (weighted > unweighted)

(* ---------- Bounded_coverage ---------- *)

let test_bounded_radius1_matches_maxsg_objective () =
  let g = random_graph (rng ()) ~n:60 ~m:100 in
  let b1 = Bounded.run g ~k:6 ~radius:1 in
  let maxsg = Broker_core.Maxsg.run g ~k:6 in
  (* Same objective and same tie-breaking: identical selections. *)
  Alcotest.(check (array int)) "radius-1 = MaxSG" maxsg b1

let test_bounded_covers_within_radius () =
  let t = small_internet ~seed:31 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let b = Bounded.run g ~k:40 ~radius:2 in
  let members = Broker_graph.Components.largest_members g in
  let covered = Bounded.covered_within g ~brokers:b ~radius:2 in
  check_bool "giant component 2-covered" true (covered >= Array.length members)

let test_bounded_guarantee () =
  let g = random_graph (rng ()) ~n:70 ~m:120 in
  let b = Bounded.run g ~k:10 ~radius:2 in
  check_bool "mutual domination kept" true
    (Broker_core.Mcbg.guarantees_dominating_paths g b)

let test_bounded_invalid_radius () =
  Alcotest.check_raises "radius 0"
    (Invalid_argument "Bounded_coverage.run: radius >= 1") (fun () ->
      ignore (Bounded.run (path_graph 4) ~k:2 ~radius:0))

let test_covered_within_path () =
  let g = path_graph 7 in
  check_int "radius 2 around middle" 5 (Bounded.covered_within g ~brokers:[| 3 |] ~radius:2);
  check_int "radius 1" 3 (Bounded.covered_within g ~brokers:[| 3 |] ~radius:1)

(* ---------- Regions ---------- *)

let test_regions_partition_total () =
  let g = random_graph (rng ()) ~n:80 ~m:150 in
  let regions = Broker_core.Regions.partition g ~k:4 in
  check_int "every vertex assigned" 80 (Array.length regions);
  Array.iter (fun r -> check_bool "valid id" true (r >= 0 && r < 4)) regions;
  let sizes = Broker_core.Regions.region_sizes regions ~k:4 in
  check_int "sizes partition" 80 (Array.fold_left ( + ) 0 sizes)

let test_regions_k1 () =
  let g = path_graph 10 in
  let regions = Broker_core.Regions.partition g ~k:1 in
  Array.iter (fun r -> check_int "single region" 0 r) regions

let test_regions_path_split () =
  (* On a path, 2 farthest-point seeds are the two ends: the partition
     splits the path roughly in half. *)
  let g = path_graph 10 in
  let regions = Broker_core.Regions.partition g ~k:2 in
  let sizes = Broker_core.Regions.region_sizes regions ~k:2 in
  check_bool "both regions populated" true (sizes.(0) >= 4 && sizes.(1) >= 4)

let test_regions_seeded_selection () =
  let t = small_internet ~seed:51 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let regions = Broker_core.Regions.partition g ~k:4 in
  let brokers = Broker_core.Regions.seeded_selection g ~regions ~k:20 in
  check_bool "k respected" true (Array.length brokers <= 20);
  (* Every region hosts at least one broker. *)
  let hosts = Array.make 4 false in
  Array.iter (fun b -> hosts.(regions.(b)) <- true) brokers;
  Array.iteri
    (fun r populated ->
      let sizes = Broker_core.Regions.region_sizes regions ~k:4 in
      if sizes.(r) > 0 then check_bool "region seeded" true populated)
    hosts

let test_regions_fairness_bounds () =
  let t = small_internet ~seed:51 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let regions = Broker_core.Regions.partition g ~k:4 in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let f = Broker_core.Regions.coverage_fairness g ~regions ~n_regions:4 ~brokers in
  check_bool "jain in (0,1]" true (f.Broker_core.Regions.jain > 0.0 && f.Broker_core.Regions.jain <= 1.0 +. 1e-9);
  check_bool "min <= max" true (f.Broker_core.Regions.min_region <= f.Broker_core.Regions.max_region);
  Array.iter
    (fun x -> check_bool "fractions" true (x >= 0.0 && x <= 1.0))
    f.Broker_core.Regions.per_region

(* ---------- Churn ---------- *)

let test_churn_preserves_ids () =
  let t = small_internet ~seed:41 ~scale:0.01 () in
  let n0 = Broker_topo.Topology.n t in
  let grown = Broker_topo.Churn.grow ~rng:(rng ()) t ~new_ases:50 in
  check_int "size" (n0 + 50) (Broker_topo.Topology.n grown);
  (* Old nodes keep kind, tier, name. *)
  for v = 0 to n0 - 1 do
    check_bool "kind kept" true
      (Broker_topo.Node_meta.kind_equal
         t.Broker_topo.Topology.kinds.(v)
         grown.Broker_topo.Topology.kinds.(v))
  done;
  (* Old edges survive. *)
  let old_edges = G.edges t.Broker_topo.Topology.graph in
  Array.iter
    (fun (u, v) ->
      check_bool "edge kept" true (G.mem_edge grown.Broker_topo.Topology.graph u v))
    old_edges

let test_churn_new_nodes_attached () =
  let t = small_internet ~seed:41 ~scale:0.01 () in
  let n0 = Broker_topo.Topology.n t in
  let grown = Broker_topo.Churn.grow ~rng:(rng ()) t ~new_ases:30 in
  let g = grown.Broker_topo.Topology.graph in
  for v = n0 to n0 + 29 do
    check_bool "has providers" true (G.degree g v >= 1);
    (* All new relations recorded. *)
    G.iter_neighbors g v (fun w ->
        check_bool "relation recorded" true
          (Broker_topo.Node_meta.Relations.find grown.Broker_topo.Topology.relations v w
          <> None))
  done

let test_churn_zero_growth () =
  let t = small_internet ~seed:41 ~scale:0.01 () in
  let grown = Broker_topo.Churn.grow ~rng:(rng ()) t ~new_ases:0 in
  check_int "unchanged size" (Broker_topo.Topology.n t) (Broker_topo.Topology.n grown)

let suite =
  [
    ( "graph.betweenness",
      [
        Alcotest.test_case "star" `Quick test_betweenness_star;
        Alcotest.test_case "path exact" `Quick test_betweenness_path_exact;
        Alcotest.test_case "cycle symmetric" `Quick test_betweenness_cycle_uniform;
      ] );
    ( "core.exact",
      [
        Alcotest.test_case "mcb star" `Quick test_exact_mcb_star;
        Alcotest.test_case "easy optimum" `Quick test_exact_matches_greedy_on_easy;
        Alcotest.test_case "greedy bound (Lemma 4)" `Quick test_exact_greedy_bound;
        Alcotest.test_case "mcbg guarantee" `Quick test_exact_mcbg_guarantee;
        Alcotest.test_case "pds decision" `Quick test_exact_pds;
        Alcotest.test_case "size limit" `Quick test_exact_too_large;
      ] );
    ( "core.resilience",
      [
        Alcotest.test_case "zero failures" `Quick test_resilience_zero_failures;
        Alcotest.test_case "targeted kills hubs" `Quick test_resilience_targeted_kills_hubs;
        Alcotest.test_case "monotone degradation" `Quick test_resilience_monotone_degradation;
        Alcotest.test_case "bad fraction" `Quick test_resilience_bad_fraction;
      ] );
    ( "core.traffic",
      [
        Alcotest.test_case "masses normalized" `Quick test_traffic_masses_normalized;
        Alcotest.test_case "total demand" `Quick test_traffic_total_demand;
        Alcotest.test_case "full broker set" `Quick test_traffic_full_broker_serves_all;
        Alcotest.test_case "favors hubs" `Quick test_traffic_weighting_favors_hubs;
      ] );
    ( "core.bounded_coverage",
      [
        Alcotest.test_case "radius 1 = MaxSG" `Quick test_bounded_radius1_matches_maxsg_objective;
        Alcotest.test_case "covers within radius" `Quick test_bounded_covers_within_radius;
        Alcotest.test_case "guarantee kept" `Quick test_bounded_guarantee;
        Alcotest.test_case "invalid radius" `Quick test_bounded_invalid_radius;
        Alcotest.test_case "covered_within path" `Quick test_covered_within_path;
      ] );
    ( "core.regions",
      [
        Alcotest.test_case "partition totals" `Quick test_regions_partition_total;
        Alcotest.test_case "k=1" `Quick test_regions_k1;
        Alcotest.test_case "path split" `Quick test_regions_path_split;
        Alcotest.test_case "seeded selection" `Quick test_regions_seeded_selection;
        Alcotest.test_case "fairness bounds" `Quick test_regions_fairness_bounds;
      ] );
    ( "topo.churn",
      [
        Alcotest.test_case "ids preserved" `Quick test_churn_preserves_ids;
        Alcotest.test_case "new nodes attached" `Quick test_churn_new_nodes_attached;
        Alcotest.test_case "zero growth" `Quick test_churn_zero_growth;
      ] );
  ]
