(* Tests for Broker_graph: Graph, Bfs, Components, Dijkstra, Pagerank,
   Kcore, Metrics, Dot. *)

open Helpers
module G = Broker_graph.Graph
module Bfs = Broker_graph.Bfs
module Components = Broker_graph.Components
module Dijkstra = Broker_graph.Dijkstra
module Pagerank = Broker_graph.Pagerank
module Kcore = Broker_graph.Kcore
module Metrics = Broker_graph.Metrics
module Dot = Broker_graph.Dot

(* ---------- Graph ---------- *)

let test_graph_dedupe_self_loops () =
  let g = G.of_edges ~n:4 [| (0, 1); (1, 0); (0, 1); (2, 2); (1, 2) |] in
  check_int "edges deduped" 2 (G.m g);
  check_int "degree 0" 1 (G.degree g 0);
  check_int "degree 1" 2 (G.degree g 1);
  check_int "degree 2 (self loop dropped)" 1 (G.degree g 2);
  check_int "degree 3" 0 (G.degree g 3)

let test_graph_neighbors_sorted () =
  let g = G.of_edges ~n:5 [| (2, 4); (2, 0); (2, 3); (2, 1) |] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (G.neighbors g 2)

let test_graph_mem_edge () =
  let g = barbell_graph () in
  check_bool "edge" true (G.mem_edge g 2 3);
  check_bool "sym" true (G.mem_edge g 3 2);
  check_bool "non-edge" false (G.mem_edge g 0 5);
  check_bool "out of range" false (G.mem_edge g 0 17)

let test_graph_iter_edges_once () =
  let g = clique_graph 5 in
  let count = ref 0 in
  G.iter_edges g (fun u v ->
      check_bool "u < v" true (u < v);
      incr count);
  check_int "C(5,2)" 10 !count;
  check_int "edges array" 10 (Array.length (G.edges g))

let test_graph_bad_endpoint () =
  Alcotest.check_raises "range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (G.of_edges ~n:3 [| (0, 3) |]))

let test_graph_max_degree () =
  let g = star_graph 10 in
  check_int "star center" 9 (G.max_degree g);
  Alcotest.(check (array int)) "degrees"
    (Array.init 10 (fun i -> if i = 0 then 9 else 1))
    (G.degrees g)

let graph_qcheck_symmetric =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"adjacency is symmetric" graph_arbitrary
       (fun g ->
         let ok = ref true in
         for u = 0 to G.n g - 1 do
           G.iter_neighbors g u (fun v -> if not (G.mem_edge g v u) then ok := false)
         done;
         !ok))

let graph_qcheck_degree_sum =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"sum of degrees = 2m" graph_arbitrary
       (fun g ->
         Array.fold_left ( + ) 0 (G.degrees g) = 2 * G.m g))

(* ---------- Bfs ---------- *)

let test_bfs_path_distances () =
  let g = path_graph 6 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4; 5 |] (Bfs.distances g 0)

let test_bfs_unreachable () =
  let g = G.of_edges ~n:4 [| (0, 1) |] in
  let d = Bfs.distances g 0 in
  check_int "reachable" 1 d.(1);
  check_int "unreachable" (-1) d.(2)

let test_bfs_bounded () =
  let g = path_graph 10 in
  let d = Bfs.distances_bounded g ~max_depth:3 0 in
  check_int "at bound" 3 d.(3);
  check_int "beyond bound" (-1) d.(4)

let test_bfs_filtered () =
  (* Forbid traversing through vertex 2 of the path: everything past is
     unreachable. *)
  let g = path_graph 6 in
  let edge_ok u v = u <> 2 && v <> 2 in
  let d = Bfs.distances_filtered g ~edge_ok 0 in
  check_int "before cut" 1 d.(1);
  check_int "cut vertex" (-1) d.(2);
  check_int "after cut" (-1) d.(3)

let test_bfs_multi_source () =
  let g = path_graph 10 in
  let d = Bfs.distances_multi g [ 0; 9 ] in
  check_int "near left" 1 d.(1);
  check_int "near right" 1 d.(8);
  check_int "middle" 4 d.(4)

let test_bfs_farthest () =
  let g = path_graph 7 in
  let v, d = Bfs.farthest g 0 in
  check_int "vertex" 6 v;
  check_int "distance" 6 d

let test_bfs_parents_path () =
  let g = barbell_graph () in
  let parents = Bfs.parents g 0 in
  let path = Bfs.path_to ~parents ~src:0 5 in
  check_bool "starts at src" true (List.hd path = 0);
  check_bool "ends at dst" true (List.nth path (List.length path - 1) = 5);
  (* consecutive vertices adjacent *)
  let rec ok = function
    | u :: (v :: _ as rest) -> G.mem_edge g u v && ok rest
    | _ -> true
  in
  check_bool "valid path" true (ok path);
  Alcotest.(check (list int)) "self path" [ 3 ] (Bfs.path_to ~parents ~src:3 3)

let test_bfs_reachable_count () =
  let g = G.of_edges ~n:5 [| (0, 1); (1, 2) |] in
  check_int "component size" 3 (Bfs.reachable_count g 0);
  check_int "isolated" 1 (Bfs.reachable_count g 4)

(* ---------- Components ---------- *)

let test_components () =
  let g = G.of_edges ~n:7 [| (0, 1); (1, 2); (3, 4) |] in
  let c = Components.compute g in
  check_int "count" 4 (Components.count c);
  let _, largest = Components.largest c in
  check_int "largest" 3 largest;
  check_bool "same" true (Components.same c 0 2);
  check_bool "not same" false (Components.same c 0 3);
  Alcotest.(check (array int)) "members" [| 0; 1; 2 |] (Components.largest_members g)

(* ---------- Dijkstra ---------- *)

let test_dijkstra_unit_weights_match_bfs () =
  let g = barbell_graph () in
  let dist, _ = Dijkstra.shortest_paths g ~weight:(fun _ _ -> 1.0) 0 in
  let bfs = Bfs.distances g 0 in
  for v = 0 to G.n g - 1 do
    check_float "matches BFS" (float_of_int bfs.(v)) dist.(v)
  done

let test_dijkstra_weighted_detour () =
  (* Triangle where the direct edge is expensive. *)
  let g = G.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let weight u v = if (u, v) = (0, 2) || (u, v) = (2, 0) then 10.0 else 1.0 in
  let dist, parent = Dijkstra.shortest_paths g ~weight 0 in
  check_float "detour wins" 2.0 dist.(2);
  check_int "via 1" 1 parent.(2);
  Alcotest.(check (list int)) "path" [ 0; 1; 2 ] (Dijkstra.shortest_path g ~weight 0 2)

let test_dijkstra_negative_weight () =
  let g = path_graph 3 in
  Alcotest.check_raises "negative"
    (Invalid_argument "Dijkstra: negative edge weight") (fun () ->
      ignore (Dijkstra.shortest_paths g ~weight:(fun _ _ -> -1.0) 0))

(* ---------- Pagerank ---------- *)

let test_pagerank_sums_to_one () =
  let g = random_graph (rng ()) ~n:50 ~m:100 in
  let pr = Pagerank.compute g in
  check_float_eps 1e-6 "total mass" 1.0 (Array.fold_left ( +. ) 0.0 pr)

let test_pagerank_cycle_uniform () =
  let g = cycle_graph 8 in
  let pr = Pagerank.compute g in
  Array.iter (fun p -> check_float_eps 1e-6 "uniform" 0.125 p) pr

let test_pagerank_star_center () =
  let g = star_graph 10 in
  let pr = Pagerank.compute g in
  for v = 1 to 9 do
    check_bool "center dominates" true (pr.(0) > pr.(v))
  done;
  Alcotest.(check int) "top is center" 0 (Pagerank.top g ~k:1).(0)

(* ---------- Kcore ---------- *)

let test_kcore_clique () =
  let g = clique_graph 6 in
  Array.iter (fun c -> check_int "clique coreness" 5 c) (Kcore.coreness g)

let test_kcore_path () =
  let g = path_graph 6 in
  Array.iter (fun c -> check_int "path coreness" 1 c) (Kcore.coreness g)

let test_kcore_clique_with_pendant () =
  (* 4-clique (0-3) plus pendant 4 attached to 0. *)
  let g = G.of_edges ~n:5 [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3); (0, 4) |] in
  let core = Kcore.coreness g in
  check_int "clique member" 3 core.(1);
  check_int "pendant" 1 core.(4);
  check_int "degeneracy" 3 (Kcore.degeneracy g);
  Alcotest.(check (array int)) "3-core members" [| 0; 1; 2; 3 |] (Kcore.core_members g ~k:3)

(* ---------- Metrics ---------- *)

let test_metrics_degree_distribution () =
  let g = star_graph 5 in
  Alcotest.(check (list (pair int int)))
    "distribution" [ (1, 4); (4, 1) ] (Metrics.degree_distribution g)

let test_metrics_average_degree () =
  let g = cycle_graph 10 in
  check_float "cycle avg" 2.0 (Metrics.average_degree g)

let test_metrics_clustering_triangle () =
  let g = clique_graph 3 in
  check_float "triangle" 1.0 (Metrics.clustering_coefficient ~samples:10 ~rng:(rng ()) g)

let test_metrics_clustering_star () =
  let g = star_graph 6 in
  check_float "star" 0.0 (Metrics.clustering_coefficient ~samples:10 ~rng:(rng ()) g)

let test_metrics_diameter () =
  let g = path_graph 9 in
  check_int "path diameter" 8 (Metrics.diameter_lower_bound g)

let test_metrics_hop_sample () =
  let g = path_graph 5 in
  let d = Metrics.hop_distance_sample ~rng:(rng ()) ~sources:5 g in
  (* 5 sources x 4 reachable targets each *)
  check_int "pooled count" 20 (Array.length d);
  Array.iter (fun x -> check_bool "positive" true (x >= 1 && x <= 4)) d

let test_metrics_assortativity_star () =
  let g = star_graph 10 in
  check_bool "disassortative" true (Metrics.degree_assortativity g < 0.0)

(* ---------- Dot ---------- *)

let test_dot_contains_edges () =
  let g = path_graph 3 in
  let dot = Dot.to_dot ~name:"p" g in
  check_bool "edge 0--1" true (contains ~needle:"0 -- 1" dot);
  check_bool "edge 1--2" true (contains ~needle:"1 -- 2" dot)

let test_dot_truncates () =
  let g = star_graph 100 in
  let dot = Dot.to_dot ~max_vertices:10 g in
  (* Only 9 edges among the kept top-degree vertices at most. *)
  check_bool "small output" true (String.length dot < 2000)

let suite =
  [
    ( "graph.graph",
      [
        Alcotest.test_case "dedupe & self loops" `Quick test_graph_dedupe_self_loops;
        Alcotest.test_case "neighbors sorted" `Quick test_graph_neighbors_sorted;
        Alcotest.test_case "mem_edge" `Quick test_graph_mem_edge;
        Alcotest.test_case "iter_edges once" `Quick test_graph_iter_edges_once;
        Alcotest.test_case "bad endpoint" `Quick test_graph_bad_endpoint;
        Alcotest.test_case "max degree" `Quick test_graph_max_degree;
        graph_qcheck_symmetric;
        graph_qcheck_degree_sum;
      ] );
    ( "graph.bfs",
      [
        Alcotest.test_case "path distances" `Quick test_bfs_path_distances;
        Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "bounded" `Quick test_bfs_bounded;
        Alcotest.test_case "filtered" `Quick test_bfs_filtered;
        Alcotest.test_case "multi-source" `Quick test_bfs_multi_source;
        Alcotest.test_case "farthest" `Quick test_bfs_farthest;
        Alcotest.test_case "parents & path" `Quick test_bfs_parents_path;
        Alcotest.test_case "reachable count" `Quick test_bfs_reachable_count;
      ] );
    ("graph.components", [ Alcotest.test_case "components" `Quick test_components ]);
    ( "graph.dijkstra",
      [
        Alcotest.test_case "unit weights = BFS" `Quick test_dijkstra_unit_weights_match_bfs;
        Alcotest.test_case "weighted detour" `Quick test_dijkstra_weighted_detour;
        Alcotest.test_case "negative weight" `Quick test_dijkstra_negative_weight;
      ] );
    ( "graph.pagerank",
      [
        Alcotest.test_case "mass conservation" `Quick test_pagerank_sums_to_one;
        Alcotest.test_case "cycle uniform" `Quick test_pagerank_cycle_uniform;
        Alcotest.test_case "star center" `Quick test_pagerank_star_center;
      ] );
    ( "graph.kcore",
      [
        Alcotest.test_case "clique" `Quick test_kcore_clique;
        Alcotest.test_case "path" `Quick test_kcore_path;
        Alcotest.test_case "clique + pendant" `Quick test_kcore_clique_with_pendant;
      ] );
    ( "graph.metrics",
      [
        Alcotest.test_case "degree distribution" `Quick test_metrics_degree_distribution;
        Alcotest.test_case "average degree" `Quick test_metrics_average_degree;
        Alcotest.test_case "clustering triangle" `Quick test_metrics_clustering_triangle;
        Alcotest.test_case "clustering star" `Quick test_metrics_clustering_star;
        Alcotest.test_case "diameter" `Quick test_metrics_diameter;
        Alcotest.test_case "hop sample" `Quick test_metrics_hop_sample;
        Alcotest.test_case "assortativity" `Quick test_metrics_assortativity_star;
      ] );
    ( "graph.dot",
      [
        Alcotest.test_case "edges present" `Quick test_dot_contains_edges;
        Alcotest.test_case "truncation" `Quick test_dot_truncates;
      ] );
  ]
