(* Tests for the Broker_obs instrumentation layer: the disabled-mode
   no-op guarantee, histogram bucketing, the span ring (nesting and
   wraparound), the Chrome trace sink, and counter determinism across
   runs and REPRO_DOMAINS settings. *)

open Helpers
module Obs = Broker_obs
module Control = Obs.Control
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Conn = Broker_core.Connectivity

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test leaves the global instrumentation state exactly as the
   rest of the suite expects it: disabled, disarmed, zeroed. *)
let with_obs_state f =
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Control.set_enabled false;
      Metrics.reset ())
    f

(* ---------- disabled-mode no-op ---------- *)

let c_disabled = Metrics.counter "test.obs.disabled_counter"

let test_disabled_noop () =
  with_obs_state @@ fun () ->
  Control.set_enabled false;
  Metrics.reset ();
  Metrics.incr c_disabled;
  Metrics.add c_disabled 41;
  (match Metrics.find (Metrics.snapshot ()) "test.obs.disabled_counter" with
  | Some { Metrics.value = Metrics.Counter v; _ } ->
      check_int "disabled counter never moves" 0 v
  | _ -> Alcotest.fail "counter not registered");
  let path = Filename.temp_file "obs_disabled" ".json" in
  Sys.remove path;
  check_bool "write without arm reports nothing" false (Trace.write ~path);
  check_bool "no trace file appears" false (Sys.file_exists path)

(* ---------- histogram buckets ---------- *)

let h_edges = Metrics.histogram "test.obs.hist_edges"

let test_histogram_buckets () =
  with_obs_state @@ fun () ->
  (* Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i). *)
  check_int "bucket_of 0" 0 (Metrics.bucket_of 0);
  check_int "bucket_of -3" 0 (Metrics.bucket_of (-3));
  check_int "bucket_of 1" 1 (Metrics.bucket_of 1);
  check_int "bucket_of 2" 2 (Metrics.bucket_of 2);
  check_int "bucket_of 3" 2 (Metrics.bucket_of 3);
  check_int "bucket_of 4" 3 (Metrics.bucket_of 4);
  check_int "bucket_of 7" 3 (Metrics.bucket_of 7);
  check_int "bucket_of 8" 4 (Metrics.bucket_of 8);
  check_int "bucket_of max_int saturates" (Metrics.bucket_count - 1)
    (Metrics.bucket_of max_int);
  Control.set_enabled true;
  Metrics.reset ();
  List.iter (Metrics.observe h_edges) [ 0; 1; 2; 3; 4 ];
  match Metrics.find (Metrics.snapshot ()) "test.obs.hist_edges" with
  | Some { Metrics.value = Metrics.Histogram b; _ } ->
      check_int "bucket 0 count" 1 b.(0);
      check_int "bucket 1 count" 1 b.(1);
      check_int "bucket 2 count" 2 b.(2);
      check_int "bucket 3 count" 1 b.(3);
      check_int "total observations" 5 (Array.fold_left ( + ) 0 b)
  | _ -> Alcotest.fail "histogram not registered"

(* ---------- span ring: nesting and wraparound ---------- *)

let t_outer = Trace.scope "test.obs.outer"
let t_inner = Trace.scope "test.obs.inner"

let test_span_ring () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  Trace.arm ~capacity:64 ();
  let t0 = Trace.enter () in
  Trace.with_span t_inner (fun () -> ());
  Trace.leave t_outer t0;
  check_int "nested spans recorded" 2 (Trace.recorded ());
  check_int "nothing dropped yet" 0 (Trace.dropped ());
  for _ = 1 to 200 do
    Trace.with_span t_inner (fun () -> ())
  done;
  check_int "ring holds exactly its capacity" 64 (Trace.recorded ());
  check_int "overflow counted as dropped" (202 - 64) (Trace.dropped ())

(* ---------- Chrome trace JSON ---------- *)

let field name = function
  | Broker_report.Report_json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let test_chrome_trace_json () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  Trace.arm ();
  (* Fan out over 4 explicit domains so the trace carries several tids
     (one per worker domain) for the thread-metadata assertions. *)
  let total =
    Broker_util.Parallel.chunked ~domains:4 ~n:64
      ~worker:(fun ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
      ~merge:( + ) 0
  in
  check_int "parallel result correct" (64 * 63 / 2) total;
  Trace.with_span t_outer (fun () -> ());
  Trace.sample t_inner 17;
  match Broker_report.Report_json.json_of_string (Trace.to_chrome_json ()) with
  | Error msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
  | Ok doc -> (
      match field "traceEvents" doc with
      | Some (Broker_report.Report_json.List events) ->
          check_bool "has events" true (List.length events > 0);
          let tids = Hashtbl.create 8 in
          List.iter
            (fun ev ->
              (match field "ph" ev with
              | Some (Broker_report.Report_json.Str ph) ->
                  check_bool "known phase" true
                    (List.mem ph [ "X"; "C"; "M" ]);
                  (match (ph, field "tid" ev) with
                  | "X", Some (Broker_report.Report_json.Num tid) ->
                      Hashtbl.replace tids (int_of_float tid) ()
                  | _ -> ())
              | _ -> Alcotest.fail "event without ph");
              match (field "pid" ev, field "name" ev) with
              | Some _, Some _ -> ()
              | _ -> Alcotest.fail "event missing pid or name")
            events;
          check_bool "spans from at least two domains" true
            (Hashtbl.length tids >= 2)
      | _ -> Alcotest.fail "no traceEvents array")

(* ---------- counter determinism ---------- *)

let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

(* A deterministic snapshot rendered to strings: Alcotest diffs lists of
   strings legibly, and rendering avoids polymorphic equality on the
   histogram payload arrays. *)
let render_deterministic () =
  List.map
    (fun (e : Metrics.entry) ->
      let v =
        match e.Metrics.value with
        | Metrics.Counter v -> string_of_int v
        | Metrics.Gauge_max v -> "max:" ^ string_of_int v
        | Metrics.Histogram b ->
            String.concat "," (Array.to_list (Array.map string_of_int b))
      in
      e.Metrics.name ^ "=" ^ v)
    (Metrics.deterministic (Metrics.snapshot ()))

let test_counter_determinism () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  let t = small_internet ~seed:9 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let brokers = Broker_core.Baselines.db g ~k:(min 50 n) in
  let is_broker = Conn.of_brokers ~n brokers in
  let sources = Array.init (min 32 n) (fun i -> i) in
  let run_snap domains =
    Metrics.reset ();
    ignore (with_domains domains (fun () ->
        Conn.eval_sources ~l_max:10 g ~is_broker sources));
    render_deterministic ()
  in
  let s1 = run_snap "1" in
  let s1' = run_snap "1" in
  Alcotest.(check (list string)) "identical across two runs" s1 s1';
  let s4 = run_snap "4" in
  Alcotest.(check (list string)) "identical across REPRO_DOMAINS" s1 s4;
  check_bool "snapshot is non-trivial" true
    (List.exists (fun line -> contains ~needle:"bfs.runs=" line) s1)

(* ---------- quantile sketch ---------- *)

module Sketch = Obs.Sketch
module Ts = Obs.Timeseries
module X = Broker_util.Xrandom

let test_sketch_index () =
  (* sub_bits = 0 degenerates to the historical histogram bucketing. *)
  List.iter
    (fun v ->
      check_int
        (Printf.sprintf "index_at ~sub_bits:0 %d = bucket_of" v)
        (Metrics.bucket_of v)
        (Sketch.index_at ~sub_bits:0 v))
    [ min_int; -3; 0; 1; 2; 3; 4; 7; 8; 1023; 1024; max_int ];
  let sk = Sketch.create () in
  check_int "default cells" ((63 - 5) * 32) (Sketch.cells sk);
  (* Below 2^sub_bits every value owns its cell exactly. *)
  for v = 0 to 31 do
    check_int "exact-region index" v (Sketch.index sk v);
    check_int "exact-region lower bound" v (Sketch.lower_bound sk v)
  done;
  (* lower_bound inverts index: the cell holding v starts at or below v
     and the next cell starts strictly above it. *)
  List.iter
    (fun v ->
      let i = Sketch.index sk v in
      check_bool "cell starts at or below v" true (Sketch.lower_bound sk i <= v);
      if i + 1 < Sketch.cells sk then
        check_bool "next cell starts above v" true
          (v < Sketch.lower_bound sk (i + 1)))
    [ 31; 32; 33; 100; 1000; 65535; 65536; 123_456_789; max_int / 2; max_int ]

let q_test ?(count = 60) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* The documented bound against the exact oracle: pick integral ranks
   (q = j/(n-1)) so Broker_util.Stats.quantile degenerates to the exact
   order statistic v, then l <= v < l * (1 + 2^-sub_bits). *)
let sketch_quantile_vs_oracle =
  q_test "sketch quantile within documented bound of Stats.quantile"
    QCheck.(pair (int_range 0 100_000) (int_range 2 400))
    (fun (seed, n) ->
      let rng = X.create seed in
      let xs = Array.init n (fun _ -> X.int rng 1_000_000) in
      let sk = Sketch.create () in
      Array.iter (Sketch.record sk) xs;
      let fs = Array.map float_of_int xs in
      let ranks = [ 0; (n - 1) / 4; (n - 1) / 2; n - 2; n - 1 ] in
      List.for_all
        (fun j ->
          let q = float_of_int j /. float_of_int (n - 1) in
          let oracle = Broker_util.Stats.quantile fs q in
          let l = float_of_int (Sketch.quantile sk q) in
          l <= oracle +. 1e-6 && oracle < (l *. (1.0 +. (1.0 /. 32.0))) +. 1e-6)
        ranks)

let sketch_merge_laws =
  q_test "sketch merge is commutative and associative"
    QCheck.(triple (int_range 0 100_000) (int_range 1 300) (int_range 1 300))
    (fun (seed, na, nb) ->
      let mk seed n =
        let rng = X.create seed in
        let sk = Sketch.create () in
        for _ = 1 to n do
          Sketch.record sk (X.int rng 1_000_000)
        done;
        sk
      in
      let a () = mk seed na
      and b () = mk (seed + 1) nb
      and c () = mk (seed + 2) (na + nb) in
      let ab = a () in
      Sketch.merge ~into:ab (b ());
      let ba = b () in
      Sketch.merge ~into:ba (a ());
      let commutes = Sketch.counts ab = Sketch.counts ba in
      let abc = ab in
      Sketch.merge ~into:abc (c ());
      let bc = b () in
      Sketch.merge ~into:bc (c ());
      let a_bc = a () in
      Sketch.merge ~into:a_bc bc;
      commutes
      && Sketch.counts abc = Sketch.counts a_bc
      && Sketch.count abc = na + nb + (na + nb))

let test_sketch_percentiles_into () =
  let sk = Sketch.create () in
  for v = 0 to 999 do
    Sketch.record sk v
  done;
  let qs = [| 0.0; 0.25; 0.5; 0.9; 1.0 |] in
  let out = Array.make (Array.length qs) (-1) in
  Sketch.percentiles_into sk qs out;
  Array.iteri
    (fun i q ->
      check_int
        (Printf.sprintf "percentiles_into agrees with quantile at %g" q)
        (Sketch.quantile sk q) out.(i))
    qs;
  for i = 1 to Array.length out - 1 do
    check_bool "percentiles ascend" true (out.(i - 1) <= out.(i))
  done;
  check_bool "non-ascending qs rejected" true
    (try
       Sketch.percentiles_into sk [| 0.5; 0.25 |] (Array.make 2 0);
       false
     with Invalid_argument _ -> true);
  check_bool "shape mismatch on merge rejected" true
    (try
       Sketch.merge ~into:(Sketch.create ~sub_bits:4 ()) sk;
       false
     with Invalid_argument _ -> true);
  check_bool "quantile out of range rejected" true
    (try
       ignore (Sketch.quantile sk 1.5);
       false
     with Invalid_argument _ -> true);
  check_int "empty sketch quantile is 0" 0
    (Sketch.quantile (Sketch.create ()) 0.5)

(* ---------- windowed time series ---------- *)

let test_timeseries_windows () =
  let ts = Ts.series ~window:2.0 "test.obs.ts.windows" in
  check_bool "registration is idempotent" true
    (ts == Ts.series "test.obs.ts.windows");
  Alcotest.(check (float 1e-9)) "width from first registration" 2.0 (Ts.width ts);
  Ts.restart ~window:0.5 ts;
  Alcotest.(check (float 1e-9)) "restart re-windows" 0.5 (Ts.width ts);
  check_int "restart clears data" 0 (Array.length (Ts.points ts));
  Ts.add ts ~time:0.2 3;
  Ts.add ts ~time:0.3 1;
  Ts.add ts ~time:1.7 5;
  let pts = Ts.points ts in
  (* Dense layout: windows 0..3 even though window 1 and 2 are empty. *)
  check_int "dense up to the last active window" 4 (Array.length pts);
  check_int "window 0 count" 2 pts.(0).Ts.count;
  check_int "window 0 sum" 4 pts.(0).Ts.sum;
  check_int "empty window count" 0 pts.(1).Ts.count;
  check_int "window 3 sum" 5 pts.(3).Ts.sum;
  Alcotest.(check (float 1e-9)) "window 3 starts at 1.5" 1.5
    pts.(3).Ts.t_start;
  check_bool "plain add carries no sketch" true (pts.(0).Ts.sketch = None);
  let vals = Ts.values ts in
  check_int "values mirror points" 4 (Array.length vals);
  check_bool "values carry sums" true (vals = [| (0.0, 4.0); (0.5, 0.0); (1.0, 0.0); (1.5, 5.0) |]);
  (* observe sketches its samples; fixed-point round-trips. *)
  let lat = Ts.series ~window:1.0 "test.obs.ts.latency" in
  Ts.restart lat;
  Ts.observe lat ~time:0.1 (Ts.to_fp 0.25);
  Ts.observe lat ~time:0.2 (Ts.to_fp 0.5);
  let lp = (Ts.points lat).(0) in
  check_int "observed count" 2 lp.Ts.count;
  (match lp.Ts.sketch with
  | None -> Alcotest.fail "observe must attach a sketch"
  | Some sk ->
      Alcotest.(check (float 1e-3)) "sketched p100 round-trips" 0.5
        (Ts.of_fp (Sketch.quantile sk 1.0)));
  check_bool "negative time rejected" true
    (try
       Ts.add ts ~time:(-1.0) 1;
       false
     with Invalid_argument _ -> true);
  check_bool "non-positive window rejected" true
    (try
       ignore (Ts.series ~window:0.0 "test.obs.ts.bad");
       false
     with Invalid_argument _ -> true);
  check_bool "registry lists by name" true
    (List.exists
       (fun t -> String.equal (Ts.name t) "test.obs.ts.windows")
       (Ts.all ()))

(* Window flushes emit Perfetto counter samples ("C" events) when the
   trace ring is armed. *)
let test_timeseries_trace_counters () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  Trace.arm ~capacity:256 ();
  let ts = Ts.series ~window:1.0 "test.obs.ts.counters" in
  Ts.restart ts;
  Ts.add ts ~time:0.5 2;
  Ts.add ts ~time:1.5 3;
  Ts.add ts ~time:2.5 4;
  Ts.flush ts;
  match Broker_report.Report_json.json_of_string (Trace.to_chrome_json ()) with
  | Error msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
  | Ok doc -> (
      match field "traceEvents" doc with
      | Some (Broker_report.Report_json.List events) ->
          let c_events =
            List.filter
              (fun ev ->
                match (field "ph" ev, field "name" ev) with
                | ( Some (Broker_report.Report_json.Str "C"),
                    Some (Broker_report.Report_json.Str name) ) ->
                    String.equal name "test.obs.ts.counters"
                | _ -> false)
              events
          in
          check_int "one counter sample per closed window" 3
            (List.length c_events)
      | _ -> Alcotest.fail "no traceEvents array")

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "disabled probes are no-ops" `Quick
          test_disabled_noop;
        Alcotest.test_case "histogram bucket edges" `Quick
          test_histogram_buckets;
        Alcotest.test_case "span nesting & ring wraparound" `Quick
          test_span_ring;
        Alcotest.test_case "Chrome trace JSON" `Quick test_chrome_trace_json;
        Alcotest.test_case "counter determinism" `Quick
          test_counter_determinism;
      ] );
    ( "obs.sketch",
      [
        Alcotest.test_case "index edges & histogram parity" `Quick
          test_sketch_index;
        sketch_quantile_vs_oracle;
        sketch_merge_laws;
        Alcotest.test_case "percentiles_into & validation" `Quick
          test_sketch_percentiles_into;
      ] );
    ( "obs.timeseries",
      [
        Alcotest.test_case "window assignment & restart" `Quick
          test_timeseries_windows;
        Alcotest.test_case "Perfetto counter samples" `Quick
          test_timeseries_trace_counters;
      ] );
  ]
