(* Tests for the Broker_obs instrumentation layer: the disabled-mode
   no-op guarantee, histogram bucketing, the span ring (nesting and
   wraparound), the Chrome trace sink, and counter determinism across
   runs and REPRO_DOMAINS settings. *)

open Helpers
module Obs = Broker_obs
module Control = Obs.Control
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Conn = Broker_core.Connectivity

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test leaves the global instrumentation state exactly as the
   rest of the suite expects it: disabled, disarmed, zeroed. *)
let with_obs_state f =
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Control.set_enabled false;
      Metrics.reset ())
    f

(* ---------- disabled-mode no-op ---------- *)

let c_disabled = Metrics.counter "test.obs.disabled_counter"

let test_disabled_noop () =
  with_obs_state @@ fun () ->
  Control.set_enabled false;
  Metrics.reset ();
  Metrics.incr c_disabled;
  Metrics.add c_disabled 41;
  (match Metrics.find (Metrics.snapshot ()) "test.obs.disabled_counter" with
  | Some { Metrics.value = Metrics.Counter v; _ } ->
      check_int "disabled counter never moves" 0 v
  | _ -> Alcotest.fail "counter not registered");
  let path = Filename.temp_file "obs_disabled" ".json" in
  Sys.remove path;
  check_bool "write without arm reports nothing" false (Trace.write ~path);
  check_bool "no trace file appears" false (Sys.file_exists path)

(* ---------- histogram buckets ---------- *)

let h_edges = Metrics.histogram "test.obs.hist_edges"

let test_histogram_buckets () =
  with_obs_state @@ fun () ->
  (* Bucket 0 holds v <= 0; bucket i >= 1 holds [2^(i-1), 2^i). *)
  check_int "bucket_of 0" 0 (Metrics.bucket_of 0);
  check_int "bucket_of -3" 0 (Metrics.bucket_of (-3));
  check_int "bucket_of 1" 1 (Metrics.bucket_of 1);
  check_int "bucket_of 2" 2 (Metrics.bucket_of 2);
  check_int "bucket_of 3" 2 (Metrics.bucket_of 3);
  check_int "bucket_of 4" 3 (Metrics.bucket_of 4);
  check_int "bucket_of 7" 3 (Metrics.bucket_of 7);
  check_int "bucket_of 8" 4 (Metrics.bucket_of 8);
  check_int "bucket_of max_int saturates" (Metrics.bucket_count - 1)
    (Metrics.bucket_of max_int);
  Control.set_enabled true;
  Metrics.reset ();
  List.iter (Metrics.observe h_edges) [ 0; 1; 2; 3; 4 ];
  match Metrics.find (Metrics.snapshot ()) "test.obs.hist_edges" with
  | Some { Metrics.value = Metrics.Histogram b; _ } ->
      check_int "bucket 0 count" 1 b.(0);
      check_int "bucket 1 count" 1 b.(1);
      check_int "bucket 2 count" 2 b.(2);
      check_int "bucket 3 count" 1 b.(3);
      check_int "total observations" 5 (Array.fold_left ( + ) 0 b)
  | _ -> Alcotest.fail "histogram not registered"

(* ---------- span ring: nesting and wraparound ---------- *)

let t_outer = Trace.scope "test.obs.outer"
let t_inner = Trace.scope "test.obs.inner"

let test_span_ring () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  Trace.arm ~capacity:64 ();
  let t0 = Trace.enter () in
  Trace.with_span t_inner (fun () -> ());
  Trace.leave t_outer t0;
  check_int "nested spans recorded" 2 (Trace.recorded ());
  check_int "nothing dropped yet" 0 (Trace.dropped ());
  for _ = 1 to 200 do
    Trace.with_span t_inner (fun () -> ())
  done;
  check_int "ring holds exactly its capacity" 64 (Trace.recorded ());
  check_int "overflow counted as dropped" (202 - 64) (Trace.dropped ())

(* ---------- Chrome trace JSON ---------- *)

let field name = function
  | Broker_report.Report_json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let test_chrome_trace_json () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  Trace.arm ();
  (* Fan out over 4 explicit domains so the trace carries several tids
     (one per worker domain) for the thread-metadata assertions. *)
  let total =
    Broker_util.Parallel.chunked ~domains:4 ~n:64
      ~worker:(fun ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
      ~merge:( + ) 0
  in
  check_int "parallel result correct" (64 * 63 / 2) total;
  Trace.with_span t_outer (fun () -> ());
  Trace.sample t_inner 17;
  match Broker_report.Report_json.json_of_string (Trace.to_chrome_json ()) with
  | Error msg -> Alcotest.fail ("trace is not valid JSON: " ^ msg)
  | Ok doc -> (
      match field "traceEvents" doc with
      | Some (Broker_report.Report_json.List events) ->
          check_bool "has events" true (List.length events > 0);
          let tids = Hashtbl.create 8 in
          List.iter
            (fun ev ->
              (match field "ph" ev with
              | Some (Broker_report.Report_json.Str ph) ->
                  check_bool "known phase" true
                    (List.mem ph [ "X"; "C"; "M" ]);
                  (match (ph, field "tid" ev) with
                  | "X", Some (Broker_report.Report_json.Num tid) ->
                      Hashtbl.replace tids (int_of_float tid) ()
                  | _ -> ())
              | _ -> Alcotest.fail "event without ph");
              match (field "pid" ev, field "name" ev) with
              | Some _, Some _ -> ()
              | _ -> Alcotest.fail "event missing pid or name")
            events;
          check_bool "spans from at least two domains" true
            (Hashtbl.length tids >= 2)
      | _ -> Alcotest.fail "no traceEvents array")

(* ---------- counter determinism ---------- *)

let with_domains v f =
  let saved = Sys.getenv_opt "REPRO_DOMAINS" in
  Unix.putenv "REPRO_DOMAINS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_DOMAINS" (Option.value ~default:"" saved))
    f

(* A deterministic snapshot rendered to strings: Alcotest diffs lists of
   strings legibly, and rendering avoids polymorphic equality on the
   histogram payload arrays. *)
let render_deterministic () =
  List.map
    (fun (e : Metrics.entry) ->
      let v =
        match e.Metrics.value with
        | Metrics.Counter v -> string_of_int v
        | Metrics.Gauge_max v -> "max:" ^ string_of_int v
        | Metrics.Histogram b ->
            String.concat "," (Array.to_list (Array.map string_of_int b))
      in
      e.Metrics.name ^ "=" ^ v)
    (Metrics.deterministic (Metrics.snapshot ()))

let test_counter_determinism () =
  with_obs_state @@ fun () ->
  Control.set_enabled true;
  let t = small_internet ~seed:9 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let brokers = Broker_core.Baselines.db g ~k:(min 50 n) in
  let is_broker = Conn.of_brokers ~n brokers in
  let sources = Array.init (min 32 n) (fun i -> i) in
  let run_snap domains =
    Metrics.reset ();
    ignore (with_domains domains (fun () ->
        Conn.eval_sources ~l_max:10 g ~is_broker sources));
    render_deterministic ()
  in
  let s1 = run_snap "1" in
  let s1' = run_snap "1" in
  Alcotest.(check (list string)) "identical across two runs" s1 s1';
  let s4 = run_snap "4" in
  Alcotest.(check (list string)) "identical across REPRO_DOMAINS" s1 s4;
  check_bool "snapshot is non-trivial" true
    (List.exists (fun line -> contains ~needle:"bfs.runs=" line) s1)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "disabled probes are no-ops" `Quick
          test_disabled_noop;
        Alcotest.test_case "histogram bucket edges" `Quick
          test_histogram_buckets;
        Alcotest.test_case "span nesting & ring wraparound" `Quick
          test_span_ring;
        Alcotest.test_case "Chrome trace JSON" `Quick test_chrome_trace_json;
        Alcotest.test_case "counter determinism" `Quick
          test_counter_determinism;
      ] );
  ]
