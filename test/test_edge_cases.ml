(* Edge-case tests: degenerate inputs, boundary sizes, and exact-value
   checks that the broader suites don't pin down. *)

open Helpers
module G = Broker_graph.Graph
module Conn = Broker_core.Connectivity

(* ---------- Degenerate graphs ---------- *)

let test_empty_graph () =
  let g = G.of_edges ~n:0 [||] in
  check_int "n" 0 (G.n g);
  check_int "m" 0 (G.m g);
  check_bool "is_empty" true (G.is_empty g);
  Alcotest.(check (array int)) "maxsg" [||] (Broker_core.Maxsg.run g ~k:3);
  check_int "pagerank" 0 (Array.length (Broker_graph.Pagerank.compute g))

let test_singleton_graph () =
  let g = G.of_edges ~n:1 [||] in
  check_int "degree" 0 (G.degree g 0);
  let c = Conn.exact g ~is_broker:(fun _ -> true) in
  check_float "no pairs" 0.0 c.Conn.saturated;
  let cov = Broker_core.Coverage.create g in
  Broker_core.Coverage.add cov 0;
  check_int "self coverage" 1 (Broker_core.Coverage.f cov)

let test_two_vertices () =
  let g = G.of_edges ~n:2 [| (0, 1) |] in
  (* Either endpoint as broker dominates the single edge. *)
  let c = Conn.exact g ~is_broker:(fun v -> v = 0) in
  check_float "both directions" 1.0 c.Conn.saturated;
  let none = Conn.exact g ~is_broker:(fun _ -> false) in
  check_float "undominated edge unusable" 0.0 none.Conn.saturated

let test_disconnected_broker_islands () =
  (* Two components, brokers in each: pairs across components stay
     unreachable; within, all served. *)
  let g = G.of_edges ~n:6 [| (0, 1); (1, 2); (3, 4); (4, 5) |] in
  let c = Conn.exact g ~is_broker:(fun v -> v = 1 || v = 4) in
  (* Served ordered pairs: 6 within each triangle-path = 12 of 30. *)
  check_float "cross-component blocked" 0.4 c.Conn.saturated

(* ---------- Mcbg / Maxsg boundaries ---------- *)

let test_maxsg_k_exceeds_saturation () =
  let g = star_graph 5 in
  let brokers = Broker_core.Maxsg.run g ~k:100 in
  Alcotest.(check (array int)) "stops at saturation" [| 0 |] brokers

let test_mcbg_k1 () =
  let g = star_graph 5 in
  let r = Broker_core.Mcbg.run g ~k:1 ~beta:4 in
  check_int "x* = 1" 1 r.Broker_core.Mcbg.x_star;
  Alcotest.(check (array int)) "just the hub" [| 0 |] r.Broker_core.Mcbg.brokers;
  check_int "no connectors" 0 (Array.length r.Broker_core.Mcbg.connectors)

let test_mcbg_disconnected_coverage_brokers () =
  (* Two far stars: coverage brokers land in both; connectors cannot link
     across components, but the guarantee still holds per covered region?
     No — covered nodes span both components and cannot reach each other,
     so the guarantee fails; MCBG's top-up phase never bridges components.
     The implementation must still terminate and respect k. *)
  let g = G.of_edges ~n:10 [| (0, 1); (0, 2); (0, 3); (5, 6); (5, 7); (5, 8) |] in
  let r = Broker_core.Mcbg.run g ~k:4 ~beta:2 in
  check_bool "size bound" true (Array.length r.Broker_core.Mcbg.brokers <= 4)

(* ---------- Table rendering details ---------- *)

let test_table_right_aligns_numbers () =
  let t = Broker_util.Table.create ~headers:[ "h"; "v" ] in
  Broker_util.Table.add_row t [ "x"; "1" ];
  Broker_util.Table.add_row t [ "y"; "1000" ];
  let out = Broker_util.Table.render t in
  (* The numeric column is right-aligned: "   1" appears. *)
  check_bool "right aligned" true (contains ~needle:"   1\n" out)

let test_table_rule () =
  let t = Broker_util.Table.create ~headers:[ "a" ] in
  Broker_util.Table.add_row t [ "1" ];
  Broker_util.Table.add_rule t;
  Broker_util.Table.add_row t [ "2" ];
  let out = Broker_util.Table.render t in
  (* Header rule + explicit rule = at least two dashed lines. *)
  let dashes =
    List.length
      (List.filter
         (fun line -> String.length line > 0 && line.[0] = '-')
         (String.split_on_char '\n' out))
  in
  check_int "two rules" 2 dashes

(* ---------- Optimize boundaries ---------- *)

let test_golden_flat_function () =
  let x, fx = Broker_util.Optimize.golden_section_max (fun _ -> 7.0) ~lo:0.0 ~hi:1.0 in
  check_float "flat max" 7.0 fx;
  check_bool "x in range" true (x >= 0.0 && x <= 1.0)

let test_golden_degenerate_interval () =
  let x, _ = Broker_util.Optimize.golden_section_max (fun x -> x) ~lo:2.0 ~hi:2.0 in
  check_float "point interval" 2.0 x

let test_grid_max_endpoint () =
  (* Maximum at the upper endpoint. *)
  let x, _ = Broker_util.Optimize.grid_max (fun x -> x) ~lo:0.0 ~hi:1.0 ~steps:10 in
  check_float "endpoint found" 1.0 x

(* ---------- Xrandom split ---------- *)

let test_xrandom_split_diverges () =
  let parent = rng () in
  let child = Broker_util.Xrandom.split parent in
  let a = Broker_util.Xrandom.bits64 parent in
  let b = Broker_util.Xrandom.bits64 child in
  check_bool "independent streams" false (a = b)

(* ---------- Dataset malformed input ---------- *)

let test_dataset_bad_header () =
  let path = Filename.temp_file "bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not-a-topology\n";
      close_out oc;
      Alcotest.check_raises "bad header" (Failure "Dataset.load: bad header")
        (fun () -> ignore (Broker_topo.Dataset.load ~path)))

(* ---------- Connectivity.value_at clamping ---------- *)

let test_value_at_clamps () =
  let g = path_graph 4 in
  let c = Conn.exact ~l_max:3 g ~is_broker:Conn.unrestricted in
  check_float "l=0" 0.0 (Conn.value_at c 0);
  check_float "negative l" 0.0 (Conn.value_at c (-2));
  check_float "beyond l_max" c.Conn.saturated (Conn.value_at c 50)

(* ---------- Alpha/beta on a disconnected graph ---------- *)

let test_alpha_beta_disconnected () =
  let g = G.of_edges ~n:6 [| (0, 1); (2, 3) |] in
  let est =
    Broker_core.Alpha_beta.estimate ~rng:(rng ()) ~sources:6 g ~alpha:0.99
  in
  (* Reachable pairs only; they are all 1 hop. *)
  check_int "beta 1" 1 est.Broker_core.Alpha_beta.beta

(* ---------- Directional on relation-free graph ---------- *)

let test_directional_unknown_relations_behave_as_peering () =
  (* No relations recorded: every edge is "unknown" = peering, so only
     2-hop (one peak) paths exist. *)
  let graph = path_graph 4 in
  let topo =
    {
      Broker_topo.Topology.graph;
      kinds = Array.make 4 Broker_topo.Node_meta.Transit;
      tiers = Array.make 4 2;
      names = Array.init 4 string_of_int;
      relations = Broker_topo.Node_meta.Relations.create ();
    }
  in
  let sat =
    Broker_core.Directional.saturated_sampled
      ~source_set:(Array.init 4 Fun.id) ~rng:(rng ()) ~sources:4 topo
      ~is_broker:(fun _ -> true)
  in
  (* Peer-only valley-free allows at most one hop... one peak = one peer
     edge. Reachable ordered pairs: adjacent ones only = 6 of 12. *)
  check_float "one peering hop only" 0.5 sat

let suite =
  [
    ( "edge_cases.graphs",
      [
        Alcotest.test_case "empty graph" `Quick test_empty_graph;
        Alcotest.test_case "singleton" `Quick test_singleton_graph;
        Alcotest.test_case "two vertices" `Quick test_two_vertices;
        Alcotest.test_case "broker islands" `Quick test_disconnected_broker_islands;
      ] );
    ( "edge_cases.algorithms",
      [
        Alcotest.test_case "maxsg k > saturation" `Quick test_maxsg_k_exceeds_saturation;
        Alcotest.test_case "mcbg k=1" `Quick test_mcbg_k1;
        Alcotest.test_case "mcbg disconnected" `Quick test_mcbg_disconnected_coverage_brokers;
      ] );
    ( "edge_cases.util",
      [
        Alcotest.test_case "table right-align" `Quick test_table_right_aligns_numbers;
        Alcotest.test_case "table rule" `Quick test_table_rule;
        Alcotest.test_case "golden flat" `Quick test_golden_flat_function;
        Alcotest.test_case "golden point interval" `Quick test_golden_degenerate_interval;
        Alcotest.test_case "grid endpoint" `Quick test_grid_max_endpoint;
        Alcotest.test_case "xrandom split" `Quick test_xrandom_split_diverges;
      ] );
    ( "edge_cases.misc",
      [
        Alcotest.test_case "dataset bad header" `Quick test_dataset_bad_header;
        Alcotest.test_case "value_at clamps" `Quick test_value_at_clamps;
        Alcotest.test_case "alpha_beta disconnected" `Quick test_alpha_beta_disconnected;
        Alcotest.test_case "directional unknown relations" `Quick test_directional_unknown_relations_behave_as_peering;
      ] );
  ]
