(* Tests for the flow-level simulator (Broker_sim) and the latency model
   (Broker_routing.Latency). *)

open Helpers
module G = Broker_graph.Graph
module Eq = Broker_sim.Event_queue
module Workload = Broker_sim.Workload
module Sim = Broker_sim.Simulator
module Latency = Broker_routing.Latency

(* ---------- Event_queue ---------- *)

let test_eq_time_order () =
  let q = Eq.create () in
  Eq.add q ~time:3.0 "c";
  Eq.add q ~time:1.0 "a";
  Eq.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  check_bool "drained" true (Eq.pop q = None)

let test_eq_stable_ties () =
  let q = Eq.create () in
  for i = 0 to 9 do
    Eq.add q ~time:5.0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_eq_interleaved () =
  let q = Eq.create () in
  Eq.add q ~time:2.0 2;
  check_bool "peek" true (Eq.peek_time q = Some 2.0);
  Eq.add q ~time:1.0 1;
  check_bool "peek updates" true (Eq.peek_time q = Some 1.0);
  check_int "size" 2 (Eq.size q);
  ignore (Eq.pop q);
  Eq.add q ~time:0.5 0;
  check_bool "reorder" true (snd (Option.get (Eq.pop q)) = 0)

let eq_qcheck_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"event queue pops sorted"
       QCheck.(small_list (float_range 0.0 1000.0))
       (fun times ->
         let q = Eq.create () in
         List.iteri (fun i t -> Eq.add q ~time:t i) times;
         let popped = List.init (List.length times) (fun _ -> fst (Option.get (Eq.pop q))) in
         popped = List.sort compare times))

(* ---------- Workload ---------- *)

let workload_fixture () =
  let masses = Array.make 20 1.0 in
  let model = { Broker_core.Traffic.masses } in
  Workload.generate ~rng:(rng ()) model ~n_sessions:200 Workload.default_params

let test_workload_sorted_and_valid () =
  let sessions = workload_fixture () in
  check_int "count" 200 (Array.length sessions);
  let prev = ref neg_infinity in
  Array.iter
    (fun (s : Workload.session) ->
      check_bool "sorted arrivals" true (s.Workload.arrival >= !prev);
      prev := s.Workload.arrival;
      check_bool "distinct endpoints" true (s.Workload.src <> s.Workload.dst);
      check_bool "positive duration" true (s.Workload.duration > 0.0);
      check_bool "endpoints in range" true
        (s.Workload.src >= 0 && s.Workload.src < 20 && s.Workload.dst >= 0
       && s.Workload.dst < 20))
    sessions

let test_workload_rate () =
  let sessions = workload_fixture () in
  let last = sessions.(199).Workload.arrival in
  (* 200 arrivals at rate 10/unit: expect ~20 time units. *)
  check_bool "arrival clock plausible" true (last > 10.0 && last < 40.0)

let test_workload_invalid () =
  let model = { Broker_core.Traffic.masses = [| 1.0; 1.0 |] } in
  Alcotest.check_raises "negative" (Invalid_argument "Workload.generate: negative count")
    (fun () ->
      ignore (Workload.generate ~rng:(rng ()) model ~n_sessions:(-1) Workload.default_params))

(* ---------- Simulator ---------- *)

(* Star topology fixture wrapped as a Topology.t: center 0 is the broker. *)
let star_topo n =
  let graph = star_graph n in
  {
    Broker_topo.Topology.graph;
    kinds = Array.make n Broker_topo.Node_meta.Transit;
    tiers = Array.make n 2;
    names = Array.init n (fun i -> Printf.sprintf "AS%d" i);
    relations = Broker_topo.Node_meta.Relations.create ();
  }

let session ~id ~src ~dst ~arrival ~duration =
  { Workload.id; src; dst; arrival; duration; demand = 1.0 }

let test_sim_capacity_blocks () =
  let topo = star_topo 6 in
  (* Two overlapping leaf-to-leaf sessions through the center broker. *)
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:10.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:1.0 ~duration:10.0;
    |]
  in
  let stats1 =
    Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)
  in
  check_int "one admitted" 1 stats1.Sim.admitted;
  check_int "one blocked on capacity" 1 stats1.Sim.rejected_capacity;
  let stats2 =
    Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 2.0)
  in
  check_int "both admitted with capacity 2" 2 stats2.Sim.admitted;
  check_int "peak in flight" 2 stats2.Sim.peak_in_flight

let test_sim_departure_frees_capacity () =
  let topo = star_topo 6 in
  (* Non-overlapping sessions reuse the same capacity unit. *)
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:1.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:2.0 ~duration:1.0;
    |]
  in
  let stats = Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0) in
  check_int "both admitted" 2 stats.Sim.admitted;
  check_int "peak one at a time" 1 stats.Sim.peak_in_flight

let test_sim_no_path () =
  let graph = G.of_edges ~n:4 [| (0, 1); (2, 3) |] in
  let topo = { (star_topo 4) with Broker_topo.Topology.graph } in
  let sessions = [| session ~id:0 ~src:0 ~dst:3 ~arrival:0.0 ~duration:1.0 |] in
  let stats = Sim.run topo ~brokers:[| 0; 2 |] ~sessions (Sim.uniform_capacity 10.0) in
  check_int "no path" 1 stats.Sim.rejected_no_path;
  check_float "admission 0" 0.0 stats.Sim.admission_rate

let test_sim_revenue_and_hops () =
  let topo = star_topo 4 in
  let sessions = [| session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:2.0 |] in
  let config = Sim.uniform_capacity 5.0 in
  let stats = Sim.run topo ~brokers:[| 0 |] ~sessions config in
  check_float "two hops via center" 2.0 stats.Sim.mean_hops;
  (* Revenue = 2 * price(1.0) * demand(1) * duration(2) = 4; no employees. *)
  check_float "revenue" 4.0 stats.Sim.revenue;
  check_float "no employee hops" 0.0 stats.Sim.employee_hop_fraction

let test_sim_employee_hops () =
  (* Path 0(broker) - 1 - 2(broker): vertex 1 is hired. *)
  let graph = path_graph 3 in
  let topo = { (star_topo 3) with Broker_topo.Topology.graph } in
  let sessions = [| session ~id:0 ~src:0 ~dst:2 ~arrival:0.0 ~duration:1.0 |] in
  let config = Sim.uniform_capacity 5.0 in
  let stats = Sim.run topo ~brokers:[| 0; 2 |] ~sessions config in
  check_int "admitted" 1 stats.Sim.admitted;
  check_float "employee hops 2 of 2" 1.0 stats.Sim.employee_hop_fraction;
  (* Revenue = 2*1*1*1 - 0.2*2*1*1 = 1.6. *)
  check_float_eps 1e-9 "revenue net of employee" 1.6 stats.Sim.revenue

let test_sim_unsorted_rejected () =
  let topo = star_topo 4 in
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:5.0 ~duration:1.0;
      session ~id:1 ~src:1 ~dst:2 ~arrival:1.0 ~duration:1.0;
    |]
  in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Simulator.run: sessions not sorted by arrival") (fun () ->
      ignore (Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)))

let test_sim_utilization_bounds () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let model = Broker_core.Traffic.gravity ~rng:(rng ()) g in
  let sessions =
    Workload.generate ~rng:(rng ()) model ~n_sessions:500 Workload.default_params
  in
  let stats = Sim.run t ~brokers ~sessions (Sim.degree_capacity g ~factor:0.2) in
  check_bool "admission in [0,1]" true
    (stats.Sim.admission_rate >= 0.0 && stats.Sim.admission_rate <= 1.0);
  check_bool "utilization in [0,1]" true
    (stats.Sim.mean_broker_utilization >= 0.0
    && stats.Sim.mean_broker_utilization <= 1.0 +. 1e-9);
  check_int "accounting adds up" stats.Sim.offered
    (stats.Sim.admitted + stats.Sim.rejected_no_path + stats.Sim.rejected_capacity)

(* ---------- brokerstat timelines (?stats_window) ---------- *)

module Ts = Broker_obs.Timeseries

let test_sim_stats_window () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let model = Broker_core.Traffic.gravity ~rng:(rng ()) g in
  let sessions =
    Workload.generate ~rng:(rng ()) model ~n_sessions:400 Workload.default_params
  in
  let config = Sim.degree_capacity g ~factor:0.2 in
  Alcotest.check_raises "non-positive window"
    (Invalid_argument "Simulator.run: stats_window must be > 0") (fun () ->
      ignore (Sim.run ~stats_window:0.0 t ~brokers ~sessions config));
  (* Collection is passive: stats are identical with and without it. *)
  let plain = Sim.run t ~brokers ~sessions config in
  let timed = Sim.run ~stats_window:5.0 t ~brokers ~sessions config in
  check_bool "collection never feeds back" true (Sim.stats_equal plain timed);
  List.iter
    (fun name ->
      check_bool (name ^ " registered") true
        (List.exists (fun ts -> String.equal (Ts.name ts) name) (Ts.all ())))
    Sim.timeline_names;
  let find name =
    List.find (fun ts -> String.equal (Ts.name ts) name) (Ts.all ())
  in
  let total name =
    Array.fold_left
      (fun acc (p : Ts.point) -> acc + p.Ts.sum)
      0
      (Ts.points (find name))
  in
  check_int "windowed admissions total the stats" timed.Sim.admitted
    (total "sim.ts.admitted");
  check_int "windowed deliveries total the stats" timed.Sim.admitted
    (total "sim.ts.delivered");
  check_int "windowed rejections total the stats"
    (timed.Sim.rejected_no_path + timed.Sim.rejected_capacity)
    (total "sim.ts.rejected");
  check_int "windowed lookups total the cache stats"
    timed.Sim.cache.Broker_sim.Shard_cache.lookups
    (total "sim.ts.cache.lookups");
  (* Without chaos nobody waits: admission happens at the intended
     arrival instant, so the queue-wait series is all zeros while the
     e2e series carries one sample per delivered session. *)
  let e2e = find "sim.ts.latency.e2e" in
  let samples =
    Array.fold_left (fun acc (p : Ts.point) -> acc + p.Ts.count) 0 (Ts.points e2e)
  in
  check_int "one e2e sample per delivered session" timed.Sim.admitted samples;
  check_int "no queue wait without chaos" 0
    (total "sim.ts.latency.queue_wait")

(* ---------- Event_queue clear & tie-break ---------- *)

let test_eq_clear () =
  let q = Eq.create () in
  for i = 0 to 5 do
    Eq.add q ~time:(float_of_int i) i
  done;
  Eq.clear q;
  check_int "size 0" 0 (Eq.size q);
  check_bool "empty" true (Eq.is_empty q);
  check_bool "pop none" true (Eq.pop q = None);
  (* Still usable after clear; the seq counter restarts so ties follow the
     new insertion order. *)
  Eq.add q ~time:1.0 10;
  Eq.add q ~time:1.0 11;
  check_bool "first tie" true (snd (Option.get (Eq.pop q)) = 10);
  check_bool "second tie" true (snd (Option.get (Eq.pop q)) = 11)

let test_eq_high_water () =
  let q = Eq.create () in
  check_int "empty length" 0 (Eq.length q);
  check_int "empty high-water" 0 (Eq.max_length q);
  for i = 0 to 4 do
    Eq.add q ~time:(float_of_int i) i
  done;
  check_int "length tracks adds" 5 (Eq.length q);
  check_int "high-water follows growth" 5 (Eq.max_length q);
  ignore (Eq.pop q);
  ignore (Eq.pop q);
  check_int "length drops on pop" 3 (Eq.length q);
  check_int "high-water never drops" 5 (Eq.max_length q);
  Eq.add q ~time:9.0 9;
  check_int "regrowth below peak keeps peak" 5 (Eq.max_length q);
  for i = 10 to 16 do
    Eq.add q ~time:(float_of_int i) i
  done;
  check_int "new peak raises high-water" 11 (Eq.max_length q);
  Eq.clear q;
  check_int "clear resets length" 0 (Eq.length q);
  check_int "clear resets high-water" 0 (Eq.max_length q)

let eq_qcheck_fifo_ties =
  (* Times drawn from a 3-value set so ties are common: the popped sequence
     must equal a stable sort by time (FIFO within equal times). *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"event queue FIFO on ties"
       QCheck.(small_list (int_bound 2))
       (fun raw ->
         let items = List.mapi (fun i t -> (float_of_int t, i)) raw in
         let q = Eq.create () in
         List.iter (fun (t, i) -> Eq.add q ~time:t i) items;
         let popped =
           List.init (List.length items) (fun _ -> Option.get (Eq.pop q))
         in
         let expected =
           List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) items
         in
         popped = expected))

(* ---------- Faults ---------- *)

module Faults = Broker_sim.Faults

let xr seed = Broker_util.Xrandom.create seed

let faults_fixture () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let brokers = Broker_core.Maxsg.run t.Broker_topo.Topology.graph ~k:10 in
  (t, brokers)

let test_faults_sorted_and_paired () =
  let t, brokers = faults_fixture () in
  let events =
    Faults.generate ~rng:(xr 5) t ~brokers ~horizon:200.0
      (Faults.Independent { mtbf = 50.0; mttr = 10.0 })
  in
  check_bool "nonempty" true (Array.length events > 0);
  let prev = ref neg_infinity in
  Array.iter
    (fun (e : Faults.event) ->
      check_bool "sorted" true (e.Faults.time >= !prev);
      prev := e.Faults.time;
      check_bool "in horizon" true (e.Faults.time >= 0.0 && e.Faults.time <= 200.0))
    events;
  (* Independent scenario: per broker, strict crash/recover alternation. *)
  let state = Hashtbl.create 16 in
  Array.iter
    (fun (e : Faults.event) ->
      let d = Option.value ~default:false (Hashtbl.find_opt state e.Faults.broker) in
      (match e.Faults.kind with
      | Faults.Crash -> check_bool "crash while up" false d
      | Faults.Recover -> check_bool "recover while down" true d);
      Hashtbl.replace state e.Faults.broker (Faults.kind_equal e.Faults.kind Faults.Crash))
    events;
  Hashtbl.iter (fun _ d -> check_bool "all pairs closed" false d) state

let test_faults_deterministic_and_zero_rate () =
  let t, brokers = faults_fixture () in
  let gen () =
    Faults.generate ~rng:(xr 9) t ~brokers ~horizon:150.0
      (Faults.Degree_targeted { mtbf = 40.0; mttr = 8.0; bias = 1.0 })
  in
  check_bool "same seed, same stream" true (gen () = gen ());
  let empty =
    Faults.generate ~rng:(xr 9) t ~brokers ~horizon:150.0
      (Faults.Independent { mtbf = infinity; mttr = 10.0 })
  in
  check_int "infinite mtbf is the zero-rate process" 0 (Array.length empty)

let test_faults_invalid () =
  let t, brokers = faults_fixture () in
  let expect msg scenario =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Faults.generate ~rng:(xr 1) t ~brokers ~horizon:10.0 scenario))
  in
  expect "Faults.generate: mtbf must be positive"
    (Faults.Independent { mtbf = 0.0; mttr = 1.0 });
  expect "Faults.generate: mttr must be positive and finite"
    (Faults.Independent { mtbf = 10.0; mttr = infinity });
  expect "Faults.generate: bias must be >= 0"
    (Faults.Degree_targeted { mtbf = 10.0; mttr = 1.0; bias = -1.0 });
  Alcotest.check_raises "negative horizon"
    (Invalid_argument "Faults.generate: horizon must be >= 0") (fun () ->
      ignore
        (Faults.generate ~rng:(xr 1) t ~brokers ~horizon:(-1.0)
           (Faults.Independent { mtbf = 10.0; mttr = 1.0 })))

let test_faults_ixp_groups () =
  (* Star with an IXP fabric at the center: its broker members fail as a
     unit, simultaneously. *)
  let topo = star_topo 5 in
  topo.Broker_topo.Topology.kinds.(0) <- Broker_topo.Node_meta.Ixp;
  let brokers = [| 1; 2; 3 |] in
  let events =
    Faults.generate ~rng:(xr 21) topo ~brokers ~horizon:500.0
      (Faults.Ixp_outage { mtbf = 40.0; mttr = 10.0 })
  in
  check_bool "some outages" true (Array.length events > 0);
  check_int "whole-group multiples" 0 (Array.length events mod (2 * 3));
  (* Every event time is shared by exactly the 3 member brokers. *)
  let by_time = Hashtbl.create 16 in
  Array.iter
    (fun (e : Faults.event) ->
      check_bool "member only" true (e.Faults.broker >= 1 && e.Faults.broker <= 3);
      let key = (e.Faults.time, Faults.kind_equal e.Faults.kind Faults.Crash) in
      Hashtbl.replace by_time key
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_time key)))
    events;
  Hashtbl.iter (fun _ c -> check_int "group of members" 3 c) by_time

let test_faults_thin_nested () =
  let t, brokers = faults_fixture () in
  let base =
    Faults.generate ~rng:(xr 5) t ~brokers ~horizon:400.0
      (Faults.Independent { mtbf = 60.0; mttr = 12.0 })
  in
  check_bool "keep=1 is identity" true (Faults.thin ~rng:(xr 2) ~keep:1.0 base = base);
  check_int "keep=0 is empty" 0 (Array.length (Faults.thin ~rng:(xr 2) ~keep:0.0 base));
  (* Identically seeded thinning couples the sweep: lower keep yields a
     subset of the higher keep's events. *)
  let lo = Faults.thin ~rng:(xr 2) ~keep:0.25 base in
  let hi = Faults.thin ~rng:(xr 2) ~keep:0.6 base in
  check_bool "nested" true
    (Array.for_all (fun e -> Array.exists (fun e' -> e' = e) hi) lo)

(* ---------- Simulator chaos layer ---------- *)

let fault ~time ~broker kind = { Faults.time; broker; kind }

let zero_chaos =
  {
    Sim.faults = [||];
    failover = true;
    retry = Sim.no_retry;
    breaker = None;
    chaos_seed = 0;
  }

let test_sim_validates_config () =
  let topo = star_topo 4 in
  let sessions = [| session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:1.0 |] in
  let base = Sim.uniform_capacity 1.0 in
  Alcotest.check_raises "negative price"
    (Invalid_argument "Simulator.run: price must be >= 0") (fun () ->
      ignore
        (Sim.run topo ~brokers:[| 0 |] ~sessions { base with Sim.price = -1.0 }));
  Alcotest.check_raises "negative employee cost"
    (Invalid_argument "Simulator.run: employee_cost must be >= 0") (fun () ->
      ignore
        (Sim.run topo ~brokers:[| 0 |] ~sessions
           { base with Sim.employee_cost = -0.1 }));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Simulator.run: capacity_of must be >= 0") (fun () ->
      ignore
        (Sim.run topo ~brokers:[| 0 |] ~sessions
           { base with Sim.capacity_of = (fun _ -> -2.0) }));
  Alcotest.check_raises "broker out of range"
    (Invalid_argument "Simulator.run: broker id out of range") (fun () ->
      ignore (Sim.run topo ~brokers:[| 99 |] ~sessions base))

let test_sim_chaos_noop_equivalence () =
  (* The chaos layer with a zero-rate fault process is a strict no-op: the
     stats are identical, field for field, to the plain simulator. *)
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let model = Broker_core.Traffic.gravity ~rng:(rng ()) g in
  let sessions =
    Workload.generate ~rng:(rng ()) model ~n_sessions:600 Workload.default_params
  in
  let config = Sim.degree_capacity g ~factor:0.2 in
  let plain = Sim.run t ~brokers ~sessions config in
  let chaos_on = Sim.run ~chaos:zero_chaos t ~brokers ~sessions config in
  let chaos_off =
    Sim.run ~chaos:{ zero_chaos with Sim.failover = false } t ~brokers ~sessions
      config
  in
  check_bool "zero-rate chaos = plain" true (Sim.stats_equal plain chaos_on);
  check_bool "failover flag irrelevant without faults" true
    (Sim.stats_equal plain chaos_off)

let sim_qcheck_noop =
  let t = small_internet ~seed:7 ~scale:0.008 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:12 in
  let model = Broker_core.Traffic.gravity ~rng:(xr 31) g in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"chaos layer no-op when disabled"
       QCheck.(pair (int_bound 120) (int_bound 3))
       (fun (n_sessions, fi) ->
         let factor = [| 0.05; 0.1; 0.3; 1.0 |].(fi) in
         let sessions =
           Workload.generate
             ~rng:(xr ((13 * n_sessions) + fi))
             model ~n_sessions Workload.default_params
         in
         let config = Sim.degree_capacity g ~factor in
         Sim.stats_equal
           (Sim.run t ~brokers ~sessions config)
           (Sim.run ~chaos:zero_chaos t ~brokers ~sessions config)))

(* 4-cycle 0-1-2-3-0 with brokers 1 and 3: both leaf pairs are bridged by
   either broker, so a session 0->2 can fail over from one to the other.
   The path picked at admission is an implementation detail, so crash each
   broker in turn: exactly one of the two runs must reroute. *)
let cycle_fixture () =
  let graph = G.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3); (3, 0) |] in
  let topo = { (star_topo 4) with Broker_topo.Topology.graph } in
  let sessions = [| session ~id:0 ~src:0 ~dst:2 ~arrival:0.0 ~duration:10.0 |] in
  (topo, sessions)

let cycle_run ~failover ~crash =
  let topo, sessions = cycle_fixture () in
  let faults =
    [|
      fault ~time:2.0 ~broker:crash Faults.Crash;
      fault ~time:50.0 ~broker:crash Faults.Recover;
    |]
  in
  Sim.run
    ~chaos:{ zero_chaos with Sim.faults; failover }
    topo ~brokers:[| 1; 3 |] ~sessions (Sim.uniform_capacity 5.0)

let test_sim_failover_reroutes () =
  let a = cycle_run ~failover:true ~crash:1 in
  let b = cycle_run ~failover:true ~crash:3 in
  check_int "exactly one run rerouted" 1 (a.Sim.failed_over + b.Sim.failed_over);
  check_int "no drops with an alternate path" 0
    (a.Sim.dropped_midflight + b.Sim.dropped_midflight);
  check_float "no revenue lost" 0.0 (a.Sim.revenue_lost +. b.Sim.revenue_lost);
  let a' = cycle_run ~failover:false ~crash:1 in
  let b' = cycle_run ~failover:false ~crash:3 in
  check_int "without failover the same crash drops it" 1
    (a'.Sim.dropped_midflight + b'.Sim.dropped_midflight);
  check_int "never rerouted when disabled" 0
    (a'.Sim.failed_over + b'.Sim.failed_over)

let test_sim_drop_without_alternate () =
  (* Star: the only broker is the center; its crash kills the session 80%
     through its revenue. *)
  let topo = star_topo 4 in
  let sessions = [| session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:10.0 |] in
  let faults =
    [|
      fault ~time:2.0 ~broker:0 Faults.Crash;
      fault ~time:50.0 ~broker:0 Faults.Recover;
    |]
  in
  let s =
    Sim.run
      ~chaos:{ zero_chaos with Sim.faults }
      topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 5.0)
  in
  check_int "dropped" 1 s.Sim.dropped_midflight;
  check_int "not rerouted" 0 s.Sim.failed_over;
  (* Admission booked 2*1*1*10 = 20; 8 of 10 units refunded. *)
  check_float_eps 1e-9 "revenue lost" 16.0 s.Sim.revenue_lost;
  check_float_eps 1e-9 "net revenue" 4.0 s.Sim.revenue;
  (* Downtime 2..50 over a horizon ending at the recover event. *)
  check_float_eps 1e-9 "downtime" 48.0 s.Sim.broker_downtime;
  check_float_eps 1e-9 "availability" (1.0 -. (48.0 /. 50.0)) s.Sim.availability

let test_sim_retry_admits_after_backoff () =
  (* Capacity 1: the second session is blocked at t=1, retries at t=5
     (still blocked) and t=13 (admitted, the first left at t=10). *)
  let topo = star_topo 6 in
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:10.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:1.0 ~duration:2.0;
    |]
  in
  let retry =
    { Sim.max_attempts = 2; base_delay = 4.0; multiplier = 2.0; jitter = 0.0 }
  in
  let s =
    Sim.run
      ~chaos:{ zero_chaos with Sim.retry }
      topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)
  in
  check_int "both admitted eventually" 2 s.Sim.admitted;
  check_int "one via retry" 1 s.Sim.retried_admitted;
  check_int "offered counts arrivals once" 2 s.Sim.offered;
  check_int "no capacity rejection" 0 s.Sim.rejected_capacity;
  (* Exhausting the budget still rejects: one attempt retries at t=5 only. *)
  let s' =
    Sim.run
      ~chaos:
        { zero_chaos with Sim.retry = { retry with Sim.max_attempts = 1 } }
      topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)
  in
  check_int "budget exhausted" 1 s'.Sim.rejected_capacity;
  check_int "only the first admitted" 1 s'.Sim.admitted

let test_sim_breaker_sheds () =
  (* high_water 0.5 with capacity 1: the first admission saturates the
     center broker at t=0; by t=2 the excursion exceeds trip_after=1, so
     the second arrival is shed (not a capacity rejection). *)
  let topo = star_topo 6 in
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:10.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:2.0 ~duration:1.0;
    |]
  in
  let breaker = Some { Sim.high_water = 0.5; trip_after = 1.0; cooldown = 100.0 } in
  let s =
    Sim.run
      ~chaos:{ zero_chaos with Sim.breaker }
      topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)
  in
  check_int "shed" 1 s.Sim.rejected_shed;
  check_int "not a capacity rejection" 0 s.Sim.rejected_capacity;
  check_int "one admitted" 1 s.Sim.admitted;
  check_int "accounting adds up" s.Sim.offered
    (s.Sim.admitted + s.Sim.rejected_no_path + s.Sim.rejected_capacity
   + s.Sim.rejected_shed)

let test_sim_chaos_deterministic () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:12 in
  let model = Broker_core.Traffic.gravity ~rng:(xr 41) g in
  let sessions =
    Workload.generate ~rng:(xr 42) model ~n_sessions:800 Workload.default_params
  in
  let horizon = sessions.(799).Workload.arrival +. 20.0 in
  let faults =
    Faults.generate ~rng:(xr 43) t ~brokers ~horizon
      (Faults.Independent { mtbf = horizon /. 6.0; mttr = 15.0 })
  in
  let chaos = { (Sim.default_chaos faults) with Sim.breaker = Some Sim.default_breaker } in
  let config = Sim.degree_capacity g ~factor:0.2 in
  let run () = Sim.run ~chaos t ~brokers ~sessions config in
  let a = run () and b = run () in
  check_bool "same inputs, same stats" true (Sim.stats_equal a b);
  check_bool "something failed over" true (a.Sim.failed_over > 0);
  check_bool "accounting adds up under chaos" true
    (a.Sim.offered
    = a.Sim.admitted + a.Sim.rejected_no_path + a.Sim.rejected_capacity
      + a.Sim.rejected_shed);
  check_bool "availability in [0,1]" true
    (a.Sim.availability >= 0.0 && a.Sim.availability <= 1.0)

(* ---------- Shard cache ---------- *)

module Cache = Broker_sim.Shard_cache

let test_cache_validation () =
  Alcotest.check_raises "ring vnodes < 1"
    (Invalid_argument "Shard_cache.create: vnodes must be >= 1") (fun () ->
      ignore
        (Cache.create ~strategy:(Cache.Ring { vnodes = 0 }) ~n:4 ~shards:[| 0 |] ()));
  Alcotest.check_raises "shard out of range"
    (Invalid_argument "Shard_cache.create: shard id out of range") (fun () ->
      ignore (Cache.create ~n:4 ~shards:[| 4 |] ()));
  (match Cache.strategy_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown strategy accepted");
  (match Cache.strategy_of_string ~vnodes:0 "ring" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ring with vnodes=0 accepted");
  check_bool "ring parses" true
    (Cache.strategy_of_string "ring"
    = Ok (Cache.Ring { vnodes = Cache.default_vnodes }));
  check_bool "case-insensitive" true
    (Cache.strategy_of_string "FLUSH" = Ok Cache.Flush);
  check_bool "modulo parses" true
    (Cache.strategy_of_string "modulo" = Ok Cache.Modulo);
  Alcotest.check_raises "phase duration zero"
    (Invalid_argument "Faults.phased: phase duration must be positive") (fun () ->
      ignore (Faults.phased [ (0.0, [||]) ]));
  Alcotest.check_raises "phase duration nan"
    (Invalid_argument "Faults.phased: phase duration must be positive") (fun () ->
      ignore (Faults.phased [ (Float.nan, [| 1 |]) ]));
  Alcotest.check_raises "phase broker negative"
    (Invalid_argument "Faults.phased: broker id must be >= 0") (fun () ->
      ignore (Faults.phased [ (1.0, [| -1 |]) ]));
  Alcotest.check_raises "zipf too small"
    (Invalid_argument "Workload.zipf: need at least 2 vertices") (fun () ->
      ignore (Workload.zipf ~n:1 ()));
  Alcotest.check_raises "zipf bad alpha"
    (Invalid_argument "Workload.zipf: alpha must be positive and finite")
    (fun () -> ignore (Workload.zipf ~alpha:0.0 ~n:8 ()))

let test_faults_phased () =
  let ev = Faults.phased [ (10.0, [||]); (5.0, [| 2; 1 |]); (5.0, [||]) ] in
  let expect =
    [|
      fault ~time:10.0 ~broker:1 Faults.Crash;
      fault ~time:10.0 ~broker:2 Faults.Crash;
      fault ~time:15.0 ~broker:1 Faults.Recover;
      fault ~time:15.0 ~broker:2 Faults.Recover;
    |]
  in
  check_bool "churn window diffs the down-sets" true (ev = expect);
  (* A broker down across consecutive phases emits nothing at the seam,
     and the trailing boundary always recovers it. *)
  let ev2 = Faults.phased [ (4.0, [| 7 |]); (4.0, [| 7; 7 |]) ] in
  let expect2 =
    [|
      fault ~time:0.0 ~broker:7 Faults.Crash;
      fault ~time:8.0 ~broker:7 Faults.Recover;
    |]
  in
  check_bool "stay-down spans phases" true (ev2 = expect2)

(* Satellite: the reverse index must never outlive the entries it points
   at. Synthetic compute closures stand in for the path solver so each
   cached path is chosen exactly. *)
let test_cache_flush_invariant () =
  let c = Cache.create ~n:6 ~shards:[| 1; 3; 5 |] () in
  let find path src dst = Cache.find c ~compute:(fun () -> path) src dst in
  ignore (find (Some [| 0; 1; 2 |]) 0 2);
  ignore (find (Some [| 0; 1; 3; 4 |]) 0 4);
  check_int "two entries" 2 (Cache.size c);
  check_bool "invariant warm" true (Cache.invariant_ok c);
  Cache.crash c 1;
  (* Both paths rode broker 1. Evicting (0,4) must also purge it from
     broker 3's reverse set, not only from the store. *)
  check_int "all riders evicted" 0 (Cache.size c);
  check_int "evicted tally" 2 (Cache.stats c).Cache.evicted;
  check_bool "invariant after crash" true (Cache.invariant_ok c);
  (* Re-cache (0,4) along the surviving broker, then crash 3: exactly the
     one current rider goes; a stale index would claim the old entry too. *)
  ignore (find (Some [| 0; 3; 4 |]) 0 4);
  Cache.crash c 3;
  check_int "only the live rider evicted" 3 (Cache.stats c).Cache.evicted;
  check_bool "invariant after second crash" true (Cache.invariant_ok c);
  (* A key computed under the outage is flushed once brokers recover. *)
  ignore (find (Some [| 2; 5; 4 |]) 2 4);
  check_int "degraded entry cached" 1 (Cache.size c);
  Cache.recover c 1;
  Cache.recover c 3;
  check_int "recovery flushes the degraded key" 1 (Cache.stats c).Cache.flushed;
  check_int "store empty after flush" 0 (Cache.size c);
  check_bool "invariant after recovery" true (Cache.invariant_ok c)

(* Satellite: crashing one of n shards remaps a bounded fraction of keys
   under Ring and nearly everything under Modulo. Owners are hash-derived
   and deterministic, so the property is exact per (nshards, seed). *)
let cache_qcheck_remap =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"ring remap bounded, modulo near-total"
       QCheck.(pair (int_range 4 12) (int_bound 1000))
       (fun (nshards, seed) ->
         let n = 64 in
         let shards = Array.init nshards Fun.id in
         let keys =
           List.concat_map
             (fun a -> List.init 16 (fun b -> (a, b + 16)))
             (List.init 16 Fun.id)
         in
         let frac strategy =
           let c = Cache.create ~strategy ~seed ~n ~shards () in
           let before = List.map (fun (a, b) -> Cache.owner c a b) keys in
           Cache.crash c (nshards - 1);
           let after = List.map (fun (a, b) -> Cache.owner c a b) keys in
           let covered =
             List.for_all Option.is_some before && List.for_all Option.is_some after
           in
           let moved =
             List.fold_left2
               (fun acc o o' -> if o <> o' then acc + 1 else acc)
               0 before after
           in
           (covered, float_of_int moved /. float_of_int (List.length keys))
         in
         let ring_ok, ring = frac (Cache.Ring { vnodes = 64 }) in
         let md_ok, md = frac Cache.Modulo in
         ring_ok && md_ok
         && ring <= 3.5 /. float_of_int nshards
         && md >= 0.5))

(* Without churn every strategy degenerates to the same
   compute-once-then-hit behavior, so whole-run stats (cache tallies
   included) are field-for-field identical to the Flush default. *)
let test_cache_noop_equivalence () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let model = Broker_core.Traffic.gravity ~rng:(rng ()) g in
  let sessions =
    Workload.generate ~rng:(rng ()) model ~n_sessions:600 Workload.default_params
  in
  let config = Sim.degree_capacity g ~factor:0.2 in
  let plain = Sim.run t ~brokers ~sessions config in
  let modulo = Sim.run ~cache:Cache.Modulo t ~brokers ~sessions config in
  let ring =
    Sim.run ~cache:(Cache.Ring { vnodes = 32 }) t ~brokers ~sessions config
  in
  check_bool "modulo = flush without churn" true (Sim.stats_equal plain modulo);
  check_bool "ring = flush without churn" true (Sim.stats_equal plain ring)

(* Graceful-degradation outcomes of a sharded lookup, one by one. Owners
   are hash-placed, so riders and key choices adapt to [owner] instead of
   hard-coding shard ids. *)
let test_cache_degraded_outcomes () =
  let c =
    Cache.create ~strategy:(Cache.Ring { vnodes = 32 }) ~seed:5 ~n:10
      ~shards:[| 0; 1; 2; 3 |] ()
  in
  let find path src dst = Cache.find c ~compute:(fun () -> path) src dst in
  let stat () = Cache.stats c in
  (* A rider broker that does not own (6,7): crashing it invalidates the
     cached path without purging the entry's own shard. *)
  let owner67 = Option.get (Cache.owner c 6 7) in
  let rider = if owner67 = 0 then 1 else 0 in
  let spare = if owner67 = 2 then 3 else 2 in
  (* A second key whose full-liveness owner is not the rider, so the
     recovery handback compaction cannot evict it mid-test. *)
  let deg_src, deg_dst =
    List.find
      (fun (a, b) -> Option.get (Cache.owner c a b) <> rider)
      [ (8, 9); (9, 8); (5, 8); (8, 5); (5, 9); (9, 5); (4, 8); (8, 4) ]
  in
  ignore (find (Some [| 6; rider; 7 |]) 6 7);
  check_int "cold miss recomputes" 1 (stat ()).Cache.recomputed;
  ignore (find (Some [| 6; rider; 7 |]) 6 7);
  check_int "clean hit" 1 (stat ()).Cache.hits;
  Cache.crash c rider;
  check_bool "invariant after crash" true (Cache.invariant_ok c);
  (* The cached path lost its only dominating broker: the next lookup
     repairs it lazily with a path avoiding the outage. *)
  (match find (Some [| 6; spare; 7 |]) 6 7 with
  | Some p -> check_bool "repair avoids the down broker" true (p = [| 6; spare; 7 |])
  | None -> Alcotest.fail "lazy repair returned no path");
  check_int "repaired lazily" 1 (stat ()).Cache.repaired_lazily;
  (* A key computed during the outage is degraded: valid hits are served
     but tallied as degraded service while the outage lasts. *)
  ignore (find (Some [| deg_src; spare; deg_dst |]) deg_src deg_dst);
  check_int "outage miss recomputes" 2 (stat ()).Cache.recomputed;
  ignore (find (Some [| deg_src; spare; deg_dst |]) deg_src deg_dst);
  check_int "served degraded" 1 (stat ()).Cache.served_degraded;
  Cache.recover c rider;
  check_bool "invariant after recovery" true (Cache.invariant_ok c);
  (* Once the outage clears, the degraded entry refreshes on its next hit
     (the lazy analogue of Flush's recovery flush) and then hits clean. *)
  ignore (find (Some [| deg_src; spare; deg_dst |]) deg_src deg_dst);
  check_int "post-outage refresh recomputes" 3 (stat ()).Cache.recomputed;
  ignore (find (Some [| deg_src; spare; deg_dst |]) deg_src deg_dst);
  check_int "clean hit after refresh" 2 (stat ()).Cache.hits;
  check_int "lookup accounting" 7 (stat ()).Cache.lookups

(* ---------- Latency ---------- *)

let test_latency_assign_all_edges () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  G.iter_edges t.Broker_topo.Topology.graph (fun u v ->
      let l = Latency.edge_latency lat u v in
      check_bool "positive" true (l > 0.0);
      check_float "symmetric" l (Latency.edge_latency lat v u))

let test_latency_relation_bases () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  G.iter_edges t.Broker_topo.Topology.graph (fun u v ->
      let l = Latency.edge_latency lat u v in
      match Broker_topo.Node_meta.Relations.find t.Broker_topo.Topology.relations u v with
      | Some Broker_topo.Node_meta.Ixp_member ->
          check_bool "ixp range" true (l >= 1.0 && l <= 3.0)
      | Some Broker_topo.Node_meta.Peer ->
          check_bool "peer range" true (l >= 2.5 && l <= 7.5)
      | Some Broker_topo.Node_meta.Customer_provider ->
          check_bool "transit range" true (l >= 5.0 && l <= 15.0)
      | None -> ())

let test_latency_path_latency () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  let g = t.Broker_topo.Topology.graph in
  (* Pick any 2-hop path via a neighbor. *)
  let u = 0 in
  let nbrs = G.neighbors g u in
  if Array.length nbrs > 0 then begin
    let v = nbrs.(0) in
    check_float "single hop" (Latency.edge_latency lat u v)
      (Latency.path_latency lat [ u; v ]);
    check_float "empty path" 0.0 (Latency.path_latency lat [ u ])
  end

let test_latency_stretch_at_least_one () =
  let t = small_internet ~seed:5 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let lat = Latency.assign ~rng:(rng ()) t in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let r = rng () in
  let checked = ref 0 in
  while !checked < 20 do
    let src = Broker_util.Xrandom.int r n and dst = Broker_util.Xrandom.int r n in
    if src <> dst then
      match Latency.stretch lat t ~is_broker ~src ~dst with
      | Some s ->
          check_bool "stretch >= 1" true (s >= 1.0 -. 1e-9);
          incr checked
      | None -> incr checked
  done

let test_latency_min_path_dominated () =
  let t = small_internet ~seed:5 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let lat = Latency.assign ~rng:(rng ()) t in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  match Latency.min_latency_path lat t ~is_broker ~src:0 ~dst:(n - 1) with
  | None -> () (* endpoints may be outside the covered region *)
  | Some (path, ms) ->
      check_bool "dominated" true
        (Broker_core.Dominating.is_dominated_path ~is_broker path);
      check_float_eps 1e-9 "latency consistent" ms (Latency.path_latency lat path)

let suite =
  [
    ( "sim.event_queue",
      [
        Alcotest.test_case "time order" `Quick test_eq_time_order;
        Alcotest.test_case "stable ties" `Quick test_eq_stable_ties;
        Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
        Alcotest.test_case "clear" `Quick test_eq_clear;
        Alcotest.test_case "length & high-water" `Quick test_eq_high_water;
        eq_qcheck_sorted;
        eq_qcheck_fifo_ties;
      ] );
    ( "sim.faults",
      [
        Alcotest.test_case "sorted & paired" `Quick test_faults_sorted_and_paired;
        Alcotest.test_case "deterministic & zero rate" `Quick
          test_faults_deterministic_and_zero_rate;
        Alcotest.test_case "invalid" `Quick test_faults_invalid;
        Alcotest.test_case "ixp groups" `Quick test_faults_ixp_groups;
        Alcotest.test_case "thin nested" `Quick test_faults_thin_nested;
      ] );
    ( "sim.workload",
      [
        Alcotest.test_case "sorted & valid" `Quick test_workload_sorted_and_valid;
        Alcotest.test_case "arrival rate" `Quick test_workload_rate;
        Alcotest.test_case "invalid" `Quick test_workload_invalid;
      ] );
    ( "sim.simulator",
      [
        Alcotest.test_case "capacity blocks" `Quick test_sim_capacity_blocks;
        Alcotest.test_case "departures free capacity" `Quick test_sim_departure_frees_capacity;
        Alcotest.test_case "no path" `Quick test_sim_no_path;
        Alcotest.test_case "revenue & hops" `Quick test_sim_revenue_and_hops;
        Alcotest.test_case "employee hops" `Quick test_sim_employee_hops;
        Alcotest.test_case "unsorted rejected" `Quick test_sim_unsorted_rejected;
        Alcotest.test_case "utilization bounds" `Quick test_sim_utilization_bounds;
        Alcotest.test_case "stats_window timelines" `Quick
          test_sim_stats_window;
      ] );
    ( "sim.chaos",
      [
        Alcotest.test_case "validates config" `Quick test_sim_validates_config;
        Alcotest.test_case "no-op equivalence" `Quick test_sim_chaos_noop_equivalence;
        sim_qcheck_noop;
        Alcotest.test_case "failover reroutes" `Quick test_sim_failover_reroutes;
        Alcotest.test_case "drop without alternate" `Quick test_sim_drop_without_alternate;
        Alcotest.test_case "retry admits after backoff" `Quick
          test_sim_retry_admits_after_backoff;
        Alcotest.test_case "breaker sheds" `Quick test_sim_breaker_sheds;
        Alcotest.test_case "deterministic" `Quick test_sim_chaos_deterministic;
      ] );
    ( "sim.cache",
      [
        Alcotest.test_case "validation" `Quick test_cache_validation;
        Alcotest.test_case "phased churn schedule" `Quick test_faults_phased;
        Alcotest.test_case "flush reverse-index invariant" `Quick
          test_cache_flush_invariant;
        cache_qcheck_remap;
        Alcotest.test_case "no-churn equivalence" `Quick
          test_cache_noop_equivalence;
        Alcotest.test_case "degraded outcomes" `Quick
          test_cache_degraded_outcomes;
      ] );
    ( "routing.latency",
      [
        Alcotest.test_case "assign all edges" `Quick test_latency_assign_all_edges;
        Alcotest.test_case "relation bases" `Quick test_latency_relation_bases;
        Alcotest.test_case "path latency" `Quick test_latency_path_latency;
        Alcotest.test_case "stretch >= 1" `Quick test_latency_stretch_at_least_one;
        Alcotest.test_case "min path dominated" `Quick test_latency_min_path_dominated;
      ] );
  ]
