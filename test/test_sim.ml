(* Tests for the flow-level simulator (Broker_sim) and the latency model
   (Broker_routing.Latency). *)

open Helpers
module G = Broker_graph.Graph
module Eq = Broker_sim.Event_queue
module Workload = Broker_sim.Workload
module Sim = Broker_sim.Simulator
module Latency = Broker_routing.Latency

(* ---------- Event_queue ---------- *)

let test_eq_time_order () =
  let q = Eq.create () in
  Eq.add q ~time:3.0 "c";
  Eq.add q ~time:1.0 "a";
  Eq.add q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  check_bool "drained" true (Eq.pop q = None)

let test_eq_stable_ties () =
  let q = Eq.create () in
  for i = 0 to 9 do
    Eq.add q ~time:5.0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_eq_interleaved () =
  let q = Eq.create () in
  Eq.add q ~time:2.0 2;
  check_bool "peek" true (Eq.peek_time q = Some 2.0);
  Eq.add q ~time:1.0 1;
  check_bool "peek updates" true (Eq.peek_time q = Some 1.0);
  check_int "size" 2 (Eq.size q);
  ignore (Eq.pop q);
  Eq.add q ~time:0.5 0;
  check_bool "reorder" true (snd (Option.get (Eq.pop q)) = 0)

let eq_qcheck_sorted =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"event queue pops sorted"
       QCheck.(small_list (float_range 0.0 1000.0))
       (fun times ->
         let q = Eq.create () in
         List.iteri (fun i t -> Eq.add q ~time:t i) times;
         let popped = List.init (List.length times) (fun _ -> fst (Option.get (Eq.pop q))) in
         popped = List.sort compare times))

(* ---------- Workload ---------- *)

let workload_fixture () =
  let masses = Array.make 20 1.0 in
  let model = { Broker_core.Traffic.masses } in
  Workload.generate ~rng:(rng ()) model ~n_sessions:200 Workload.default_params

let test_workload_sorted_and_valid () =
  let sessions = workload_fixture () in
  check_int "count" 200 (Array.length sessions);
  let prev = ref neg_infinity in
  Array.iter
    (fun (s : Workload.session) ->
      check_bool "sorted arrivals" true (s.Workload.arrival >= !prev);
      prev := s.Workload.arrival;
      check_bool "distinct endpoints" true (s.Workload.src <> s.Workload.dst);
      check_bool "positive duration" true (s.Workload.duration > 0.0);
      check_bool "endpoints in range" true
        (s.Workload.src >= 0 && s.Workload.src < 20 && s.Workload.dst >= 0
       && s.Workload.dst < 20))
    sessions

let test_workload_rate () =
  let sessions = workload_fixture () in
  let last = sessions.(199).Workload.arrival in
  (* 200 arrivals at rate 10/unit: expect ~20 time units. *)
  check_bool "arrival clock plausible" true (last > 10.0 && last < 40.0)

let test_workload_invalid () =
  let model = { Broker_core.Traffic.masses = [| 1.0; 1.0 |] } in
  Alcotest.check_raises "negative" (Invalid_argument "Workload.generate: negative count")
    (fun () ->
      ignore (Workload.generate ~rng:(rng ()) model ~n_sessions:(-1) Workload.default_params))

(* ---------- Simulator ---------- *)

(* Star topology fixture wrapped as a Topology.t: center 0 is the broker. *)
let star_topo n =
  let graph = star_graph n in
  {
    Broker_topo.Topology.graph;
    kinds = Array.make n Broker_topo.Node_meta.Transit;
    tiers = Array.make n 2;
    names = Array.init n (fun i -> Printf.sprintf "AS%d" i);
    relations = Broker_topo.Node_meta.Relations.create ();
  }

let session ~id ~src ~dst ~arrival ~duration =
  { Workload.id; src; dst; arrival; duration; demand = 1.0 }

let test_sim_capacity_blocks () =
  let topo = star_topo 6 in
  (* Two overlapping leaf-to-leaf sessions through the center broker. *)
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:10.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:1.0 ~duration:10.0;
    |]
  in
  let stats1 =
    Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)
  in
  check_int "one admitted" 1 stats1.Sim.admitted;
  check_int "one blocked on capacity" 1 stats1.Sim.rejected_capacity;
  let stats2 =
    Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 2.0)
  in
  check_int "both admitted with capacity 2" 2 stats2.Sim.admitted;
  check_int "peak in flight" 2 stats2.Sim.peak_in_flight

let test_sim_departure_frees_capacity () =
  let topo = star_topo 6 in
  (* Non-overlapping sessions reuse the same capacity unit. *)
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:1.0;
      session ~id:1 ~src:3 ~dst:4 ~arrival:2.0 ~duration:1.0;
    |]
  in
  let stats = Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0) in
  check_int "both admitted" 2 stats.Sim.admitted;
  check_int "peak one at a time" 1 stats.Sim.peak_in_flight

let test_sim_no_path () =
  let graph = G.of_edges ~n:4 [| (0, 1); (2, 3) |] in
  let topo = { (star_topo 4) with Broker_topo.Topology.graph } in
  let sessions = [| session ~id:0 ~src:0 ~dst:3 ~arrival:0.0 ~duration:1.0 |] in
  let stats = Sim.run topo ~brokers:[| 0; 2 |] ~sessions (Sim.uniform_capacity 10.0) in
  check_int "no path" 1 stats.Sim.rejected_no_path;
  check_float "admission 0" 0.0 stats.Sim.admission_rate

let test_sim_revenue_and_hops () =
  let topo = star_topo 4 in
  let sessions = [| session ~id:0 ~src:1 ~dst:2 ~arrival:0.0 ~duration:2.0 |] in
  let config = Sim.uniform_capacity 5.0 in
  let stats = Sim.run topo ~brokers:[| 0 |] ~sessions config in
  check_float "two hops via center" 2.0 stats.Sim.mean_hops;
  (* Revenue = 2 * price(1.0) * demand(1) * duration(2) = 4; no employees. *)
  check_float "revenue" 4.0 stats.Sim.revenue;
  check_float "no employee hops" 0.0 stats.Sim.employee_hop_fraction

let test_sim_employee_hops () =
  (* Path 0(broker) - 1 - 2(broker): vertex 1 is hired. *)
  let graph = path_graph 3 in
  let topo = { (star_topo 3) with Broker_topo.Topology.graph } in
  let sessions = [| session ~id:0 ~src:0 ~dst:2 ~arrival:0.0 ~duration:1.0 |] in
  let config = Sim.uniform_capacity 5.0 in
  let stats = Sim.run topo ~brokers:[| 0; 2 |] ~sessions config in
  check_int "admitted" 1 stats.Sim.admitted;
  check_float "employee hops 2 of 2" 1.0 stats.Sim.employee_hop_fraction;
  (* Revenue = 2*1*1*1 - 0.2*2*1*1 = 1.6. *)
  check_float_eps 1e-9 "revenue net of employee" 1.6 stats.Sim.revenue

let test_sim_unsorted_rejected () =
  let topo = star_topo 4 in
  let sessions =
    [|
      session ~id:0 ~src:1 ~dst:2 ~arrival:5.0 ~duration:1.0;
      session ~id:1 ~src:1 ~dst:2 ~arrival:1.0 ~duration:1.0;
    |]
  in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Simulator.run: sessions not sorted by arrival") (fun () ->
      ignore (Sim.run topo ~brokers:[| 0 |] ~sessions (Sim.uniform_capacity 1.0)))

let test_sim_utilization_bounds () =
  let t = small_internet ~seed:3 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:15 in
  let model = Broker_core.Traffic.gravity ~rng:(rng ()) g in
  let sessions =
    Workload.generate ~rng:(rng ()) model ~n_sessions:500 Workload.default_params
  in
  let stats = Sim.run t ~brokers ~sessions (Sim.degree_capacity g ~factor:0.2) in
  check_bool "admission in [0,1]" true
    (stats.Sim.admission_rate >= 0.0 && stats.Sim.admission_rate <= 1.0);
  check_bool "utilization in [0,1]" true
    (stats.Sim.mean_broker_utilization >= 0.0
    && stats.Sim.mean_broker_utilization <= 1.0 +. 1e-9);
  check_int "accounting adds up" stats.Sim.offered
    (stats.Sim.admitted + stats.Sim.rejected_no_path + stats.Sim.rejected_capacity)

(* ---------- Latency ---------- *)

let test_latency_assign_all_edges () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  G.iter_edges t.Broker_topo.Topology.graph (fun u v ->
      let l = Latency.edge_latency lat u v in
      check_bool "positive" true (l > 0.0);
      check_float "symmetric" l (Latency.edge_latency lat v u))

let test_latency_relation_bases () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  G.iter_edges t.Broker_topo.Topology.graph (fun u v ->
      let l = Latency.edge_latency lat u v in
      match Broker_topo.Node_meta.Relations.find t.Broker_topo.Topology.relations u v with
      | Some Broker_topo.Node_meta.Ixp_member ->
          check_bool "ixp range" true (l >= 1.0 && l <= 3.0)
      | Some Broker_topo.Node_meta.Peer ->
          check_bool "peer range" true (l >= 2.5 && l <= 7.5)
      | Some Broker_topo.Node_meta.Customer_provider ->
          check_bool "transit range" true (l >= 5.0 && l <= 15.0)
      | None -> ())

let test_latency_path_latency () =
  let t = small_internet ~seed:5 ~scale:0.005 () in
  let lat = Latency.assign ~rng:(rng ()) t in
  let g = t.Broker_topo.Topology.graph in
  (* Pick any 2-hop path via a neighbor. *)
  let u = 0 in
  let nbrs = G.neighbors g u in
  if Array.length nbrs > 0 then begin
    let v = nbrs.(0) in
    check_float "single hop" (Latency.edge_latency lat u v)
      (Latency.path_latency lat [ u; v ]);
    check_float "empty path" 0.0 (Latency.path_latency lat [ u ])
  end

let test_latency_stretch_at_least_one () =
  let t = small_internet ~seed:5 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let lat = Latency.assign ~rng:(rng ()) t in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let r = rng () in
  let checked = ref 0 in
  while !checked < 20 do
    let src = Broker_util.Xrandom.int r n and dst = Broker_util.Xrandom.int r n in
    if src <> dst then
      match Latency.stretch lat t ~is_broker ~src ~dst with
      | Some s ->
          check_bool "stretch >= 1" true (s >= 1.0 -. 1e-9);
          incr checked
      | None -> incr checked
  done

let test_latency_min_path_dominated () =
  let t = small_internet ~seed:5 ~scale:0.01 () in
  let g = t.Broker_topo.Topology.graph in
  let n = G.n g in
  let lat = Latency.assign ~rng:(rng ()) t in
  let brokers = Broker_core.Maxsg.run g ~k:20 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  match Latency.min_latency_path lat t ~is_broker ~src:0 ~dst:(n - 1) with
  | None -> () (* endpoints may be outside the covered region *)
  | Some (path, ms) ->
      check_bool "dominated" true
        (Broker_core.Dominating.is_dominated_path ~is_broker path);
      check_float_eps 1e-9 "latency consistent" ms (Latency.path_latency lat path)

let suite =
  [
    ( "sim.event_queue",
      [
        Alcotest.test_case "time order" `Quick test_eq_time_order;
        Alcotest.test_case "stable ties" `Quick test_eq_stable_ties;
        Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
        eq_qcheck_sorted;
      ] );
    ( "sim.workload",
      [
        Alcotest.test_case "sorted & valid" `Quick test_workload_sorted_and_valid;
        Alcotest.test_case "arrival rate" `Quick test_workload_rate;
        Alcotest.test_case "invalid" `Quick test_workload_invalid;
      ] );
    ( "sim.simulator",
      [
        Alcotest.test_case "capacity blocks" `Quick test_sim_capacity_blocks;
        Alcotest.test_case "departures free capacity" `Quick test_sim_departure_frees_capacity;
        Alcotest.test_case "no path" `Quick test_sim_no_path;
        Alcotest.test_case "revenue & hops" `Quick test_sim_revenue_and_hops;
        Alcotest.test_case "employee hops" `Quick test_sim_employee_hops;
        Alcotest.test_case "unsorted rejected" `Quick test_sim_unsorted_rejected;
        Alcotest.test_case "utilization bounds" `Quick test_sim_utilization_bounds;
      ] );
    ( "routing.latency",
      [
        Alcotest.test_case "assign all edges" `Quick test_latency_assign_all_edges;
        Alcotest.test_case "relation bases" `Quick test_latency_relation_bases;
        Alcotest.test_case "path latency" `Quick test_latency_path_latency;
        Alcotest.test_case "stretch >= 1" `Quick test_latency_stretch_at_least_one;
        Alcotest.test_case "min path dominated" `Quick test_latency_min_path_dominated;
      ] );
  ]
