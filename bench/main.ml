(* Benchmark & reproduction harness.

   Usage:
     main.exe                 regenerate every table/figure, then time the kernels
     main.exe table1 fig2b    regenerate selected experiments only
     main.exe --timings       run only the Bechamel timing suites
     main.exe --list          list experiment ids

   Environment: REPRO_SCALE (default 1.0), REPRO_SOURCES (default 192),
   REPRO_SEED (default 42) — see Broker_experiments.Ctx. *)

module E = Broker_experiments

let silently f =
  (* Bechamel iterates the experiment kernels; their table output would
     flood the report, so stdout is parked on /dev/null for the call. *)
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

(* Timing kernels run on a small fixed-scale context so each iteration is
   milliseconds; the correctness-bearing full-scale run happens above. *)
let bench_ctx () = E.Ctx.create ~scale:0.02 ~sources:48 ~seed:7 ()

let experiment_tests () =
  let open Bechamel in
  List.map
    (fun (e : E.All.experiment) ->
      Test.make ~name:e.E.All.id
        (Staged.stage (fun () ->
             (* Fresh context per iteration: the timing covers the whole
                regeneration including topology generation. *)
             let ctx = bench_ctx () in
             silently (fun () -> e.E.All.run ctx))))
    E.All.experiments

let kernel_tests () =
  let open Bechamel in
  let ctx = E.Ctx.create ~scale:0.05 ~sources:32 ~seed:11 () in
  let g = E.Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let rng = Broker_util.Xrandom.create 3 in
  [
    Test.make ~name:"bfs_full"
      (Staged.stage (fun () ->
           ignore (Broker_graph.Bfs.distances g (Broker_util.Xrandom.int rng n))));
    Test.make ~name:"pagerank"
      (Staged.stage (fun () -> ignore (Broker_graph.Pagerank.compute ~max_iter:20 g)));
    Test.make ~name:"kcore"
      (Staged.stage (fun () -> ignore (Broker_graph.Kcore.coreness g)));
    Test.make ~name:"celf_k100"
      (Staged.stage (fun () -> ignore (Broker_core.Greedy_mcb.celf g ~k:100)));
    Test.make ~name:"maxsg_k100"
      (Staged.stage (fun () -> ignore (Broker_core.Maxsg.run g ~k:100)));
    Test.make ~name:"connectivity_32src"
      (Staged.stage (fun () ->
           let brokers = Broker_core.Baselines.db g ~k:100 in
           ignore
             (Broker_core.Connectivity.sampled ~rng ~sources:32 g
                ~is_broker:(Broker_core.Connectivity.of_brokers ~n brokers))));
  ]

let chaos_tests () =
  let open Bechamel in
  let ctx = E.Ctx.create ~scale:0.02 ~sources:32 ~seed:13 () in
  let topo = E.Ctx.topo ctx in
  let g = E.Ctx.graph ctx in
  let order = E.Ctx.maxsg_order ctx in
  let brokers = Array.sub order 0 (min 24 (Array.length order)) in
  let model = Broker_core.Traffic.gravity ~rng:(E.Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(E.Ctx.rng ctx) model ~n_sessions:2000
      Broker_sim.Workload.default_params
  in
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival)
    +. 20.0
  in
  let scenario =
    Broker_sim.Faults.Independent { mtbf = horizon /. 6.0; mttr = 15.0 }
  in
  let gen () =
    Broker_sim.Faults.generate
      ~rng:(Broker_util.Xrandom.create 17)
      topo ~brokers ~horizon scenario
  in
  let faults = gen () in
  let config = Broker_sim.Simulator.degree_capacity g ~factor:0.25 in
  let chaos_run ~failover () =
    let chaos =
      { (Broker_sim.Simulator.default_chaos faults) with
        Broker_sim.Simulator.failover }
    in
    ignore (Broker_sim.Simulator.run ~chaos topo ~brokers ~sessions config)
  in
  [
    Test.make ~name:"faults_generate" (Staged.stage (fun () -> ignore (gen ())));
    Test.make ~name:"chaos_run_failover_on"
      (Staged.stage (chaos_run ~failover:true));
    Test.make ~name:"chaos_run_failover_off"
      (Staged.stage (chaos_run ~failover:false));
    Test.make ~name:"plain_run_no_chaos"
      (Staged.stage (fun () ->
           ignore (Broker_sim.Simulator.run topo ~brokers ~sessions config)));
  ]

let run_timings () =
  let open Bechamel in
  let benchmark name tests =
    Printf.printf "\n-- Bechamel timings: %s --\n%!" name;
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows = Hashtbl.fold (fun key v acc -> (key, v) :: acc) results [] in
    List.iter
      (fun (key, result) ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-44s %12.3f ms/run\n" key (est /. 1e6)
        | Some _ | None -> Printf.printf "%-44s (no estimate)\n" key)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
  in
  benchmark "tables_and_figures" (experiment_tests ());
  benchmark "kernels" (kernel_tests ());
  benchmark "chaos" (chaos_tests ())

let () =
  (* REPRO_LOG=info|debug enables library progress logging on stderr. *)
  (match Sys.getenv_opt "REPRO_LOG" with
  | Some level ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level
        (match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "warning" -> Some Logs.Warning
        | _ -> Some Logs.Info)
  | None -> ());
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, ids =
    List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--") args
  in
  let has f = List.mem f flags in
  if has "--list" then
    List.iter
      (fun (e : E.All.experiment) ->
        Printf.printf "%-18s %s\n" e.E.All.id e.E.All.description)
      E.All.experiments
  else begin
    let timings_only = has "--timings" in
    if not timings_only then begin
      let ctx = E.Ctx.from_env () in
      Printf.printf
        "Reproduction run: scale=%.3g sources=%d seed=%d (%d experiments)\n%!"
        (E.Ctx.scale ctx) (E.Ctx.sources ctx) (E.Ctx.seed ctx)
        (List.length E.All.experiments);
      match ids with
      | [] -> E.All.run_all ctx
      | ids ->
          List.iter
            (fun id ->
              match E.All.run_one ctx id with
              | Ok () -> ()
              | Error msg ->
                  prerr_endline msg;
                  exit 2)
            ids
    end;
    if timings_only || ids = [] then run_timings ()
  end
