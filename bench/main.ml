(* Benchmark & reproduction harness.

   Usage:
     main.exe                 regenerate every table/figure, then time the kernels
     main.exe table1 fig2b    regenerate selected experiments only
     main.exe --timings       run only the Bechamel timing suites
     main.exe --json FILE     with --timings/--perf-smoke: write per-kernel
                              medians as JSON (the BENCH_*.json trajectory)
     main.exe --perf-smoke    small-scale connectivity kernel trio only;
                              exits non-zero unless the projected engine
                              beats the legacy path AND the MS-BFS engine
                              beats the scalar projected one
     main.exe --timings --fullscale
                              additionally hand-time the connectivity pair
                              at REPRO_SCALE (Table 1 / Fig 2a shape)
     main.exe --list          list experiment ids

     main.exe --obs-overhead  time the connectivity kernel pair only (no
                              gate): CI runs this on the default build and
                              on --profile obs-absent and compares medians
                              to bound the disabled-probe overhead

   The JSON trajectory follows schema brokerset-bench/2: per kernel the
   median ns/run plus median GC allocation per run (minor_words /
   major_words), a "counters" object with the deterministic
   Broker_obs.Metrics fingerprint of one projected-connectivity pass,
   and the derived speedups.

   Environment: REPRO_SCALE (default 1.0), REPRO_SOURCES (default 192),
   REPRO_SEED (default 42), REPRO_TRACE (write a Chrome trace of the
   run) — see Broker_experiments.Ctx and Broker_obs. *)

module E = Broker_experiments
module Report_text = Broker_report.Report_text
module Obs = Broker_obs

(* Timing kernels run on a small fixed-scale context so each iteration is
   milliseconds; the correctness-bearing full-scale run happens above. *)
let bench_ctx () = E.Ctx.create ~scale:0.02 ~sources:48 ~seed:7 ()

let experiment_tests () =
  let open Bechamel in
  List.map
    (fun (e : E.All.experiment) ->
      Test.make ~name:e.E.All.id
        (Staged.stage (fun () ->
             (* Fresh context per iteration: the timing covers the whole
                regeneration including topology generation. Reports are
                built but not rendered — experiments no longer print. *)
             let ctx = bench_ctx () in
             ignore (e.E.All.report ctx))))
    E.All.experiments

(* The legacy/projected/msbfs trio must time the exact same evaluation
   (same brokers, same sources, same l_max): broker selection and source
   sampling are hoisted out of the staged thunks. 192 sources = three
   full MS-BFS batches plus a ragged tail, and the sampled-evaluator
   shape the acceptance speedups are quoted against. *)
let connectivity_setup ctx =
  let g = E.Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let brokers = Broker_core.Baselines.db g ~k:100 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let srcs =
    Broker_util.Sampling.without_replacement
      (Broker_util.Xrandom.create 3)
      ~n ~k:(min 192 n)
  in
  (g, is_broker, srcs)

let connectivity_pair ctx =
  let open Bechamel in
  let g, is_broker, srcs = connectivity_setup ctx in
  [
    Test.make ~name:"connectivity/legacy"
      (Staged.stage (fun () ->
           ignore
             (Broker_core.Connectivity.eval_sources_reference ~l_max:10 g
                ~is_broker srcs)));
    Test.make ~name:"connectivity/projected"
      (Staged.stage (fun () ->
           ignore
             (Broker_core.Connectivity.eval_sources_scalar ~l_max:10 g
                ~is_broker srcs)));
    Test.make ~name:"connectivity/msbfs"
      (Staged.stage (fun () ->
           ignore
             (Broker_core.Connectivity.eval_sources ~l_max:10 g ~is_broker
                srcs)));
  ]

(* Dynamic-topology kernels: overlay mutation, compaction back to CSR,
   and the headline incremental-vs-rebuild re-convergence pair. The burst
   is ~1% of the edges (the small-burst regime X9 targets); the
   incremental arm alternates the burst with its inverse so every
   iteration applies exactly one burst from a warm tracker, directly
   comparable to one full rebuild. *)
let dynamic_pair ctx =
  let open Bechamel in
  let module Delta = Broker_graph.Delta in
  let module Incr = Broker_core.Incremental in
  let module Stream = Broker_sim.Topo_stream in
  let g, is_broker, srcs = connectivity_setup ctx in
  let burst = max 1 (Broker_graph.Graph.m g / 100) in
  let ops =
    Stream.burst ~rng:(Broker_util.Xrandom.create 23) g ~size:burst
  in
  let apply_to d =
    Array.iter
      (fun op ->
        ignore
          (match op with
          | Stream.Announce (u, v) -> Delta.add_edge d u v
          | Stream.Withdraw (u, v) -> Delta.remove_edge d u v))
      ops
  in
  let fwd =
    Array.map
      (function
        | Stream.Announce (u, v) -> Incr.Add (u, v)
        | Stream.Withdraw (u, v) -> Incr.Remove (u, v))
      ops
  in
  let undo =
    Array.map
      (function
        | Incr.Add (u, v) -> Incr.Remove (u, v)
        | Incr.Remove (u, v) -> Incr.Add (u, v))
      fwd
  in
  let dirty = Delta.create g in
  apply_to dirty;
  let tracker = Incr.create g ~is_broker ~sources:srcs in
  let flip = ref false in
  [
    Test.make ~name:"delta_apply"
      (Staged.stage (fun () ->
           let d = Delta.create g in
           apply_to d));
    Test.make ~name:"delta_compact"
      (Staged.stage (fun () -> ignore (Delta.compact g dirty)));
    Test.make ~name:"reconverge/incremental"
      (Staged.stage (fun () ->
           let b = if !flip then undo else fwd in
           flip := not !flip;
           ignore (Incr.apply tracker b)));
    Test.make ~name:"reconverge/rebuild"
      (Staged.stage (fun () ->
           let d = Delta.create g in
           apply_to d;
           let g' = Delta.compact g d in
           ignore
             (Broker_core.Connectivity.eval_sources ~l_max:10 g' ~is_broker
                srcs)));
  ]

(* brokerstat hot paths: the sketch record (must bench at 0 allocated
   words — the admission loop calls it per session) and a window-flush
   cycle of the timeseries registry (restart + 256 adds across 64
   windows + flush). Values are precomputed so the staged thunks time
   the probes, not the value generation. *)
let brokerstat_tests () =
  let open Bechamel in
  let sk = Obs.Sketch.create () in
  let vals = Array.init 4096 (fun i -> i * 2654435761 land 0xFFFFF) in
  let cursor = ref 0 in
  let ts = Obs.Timeseries.series ~window:0.25 "bench.ts.window_flush" in
  [
    Test.make ~name:"sketch_record"
      (Staged.stage (fun () ->
           let j = !cursor land 4095 in
           incr cursor;
           Obs.Sketch.record sk vals.(j)));
    Test.make ~name:"window_flush"
      (Staged.stage (fun () ->
           Obs.Timeseries.restart ~window:0.25 ts;
           for k = 0 to 255 do
             Obs.Timeseries.add ts ~time:(float_of_int k *. 0.0625) 1
           done;
           Obs.Timeseries.flush ts));
  ]

let kernel_tests () =
  let open Bechamel in
  let ctx = E.Ctx.create ~scale:0.05 ~sources:32 ~seed:11 () in
  let g = E.Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let rng = Broker_util.Xrandom.create 3 in
  (* One full MS-BFS batch (a word's worth of lanes) on a reused
     workspace: the raw sweep kernel underneath connectivity/msbfs. *)
  let msbfs_ws = Broker_graph.Msbfs.workspace () in
  let msbfs_srcs =
    Broker_util.Sampling.without_replacement
      (Broker_util.Xrandom.create 5)
      ~n
      ~k:(min Broker_graph.Msbfs.lanes n)
  in
  [
    Test.make ~name:"bfs_full"
      (Staged.stage (fun () ->
           ignore (Broker_graph.Bfs.distances g (Broker_util.Xrandom.int rng n))));
    Test.make ~name:"msbfs_sweep"
      (Staged.stage (fun () ->
           Broker_graph.Msbfs.run msbfs_ws g msbfs_srcs ~lo:0
             ~len:(Array.length msbfs_srcs)));
    Test.make ~name:"pagerank"
      (Staged.stage (fun () -> ignore (Broker_graph.Pagerank.compute ~max_iter:20 g)));
    Test.make ~name:"kcore"
      (Staged.stage (fun () -> ignore (Broker_graph.Kcore.coreness g)));
    Test.make ~name:"celf_k100"
      (Staged.stage (fun () -> ignore (Broker_core.Greedy_mcb.celf g ~k:100)));
    Test.make ~name:"maxsg_k100"
      (Staged.stage (fun () -> ignore (Broker_core.Maxsg.run g ~k:100)));
  ]
  @ connectivity_pair ctx
  @ dynamic_pair ctx
  @ brokerstat_tests ()

let chaos_tests () =
  let open Bechamel in
  let ctx = E.Ctx.create ~scale:0.02 ~sources:32 ~seed:13 () in
  let topo = E.Ctx.topo ctx in
  let g = E.Ctx.graph ctx in
  let order = E.Ctx.maxsg_order ctx in
  let brokers = Array.sub order 0 (min 24 (Array.length order)) in
  let model = Broker_core.Traffic.gravity ~rng:(E.Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(E.Ctx.rng ctx) model ~n_sessions:2000
      Broker_sim.Workload.default_params
  in
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival)
    +. 20.0
  in
  let scenario =
    Broker_sim.Faults.Independent { mtbf = horizon /. 6.0; mttr = 15.0 }
  in
  let gen () =
    Broker_sim.Faults.generate
      ~rng:(Broker_util.Xrandom.create 17)
      topo ~brokers ~horizon scenario
  in
  let faults = gen () in
  let config = Broker_sim.Simulator.degree_capacity g ~factor:0.25 in
  let chaos_run ~failover () =
    let chaos =
      { (Broker_sim.Simulator.default_chaos faults) with
        Broker_sim.Simulator.failover }
    in
    ignore (Broker_sim.Simulator.run ~chaos topo ~brokers ~sessions config)
  in
  [
    Test.make ~name:"faults_generate" (Staged.stage (fun () -> ignore (gen ())));
    Test.make ~name:"chaos_run_failover_on"
      (Staged.stage (chaos_run ~failover:true));
    Test.make ~name:"chaos_run_failover_off"
      (Staged.stage (chaos_run ~failover:false));
    Test.make ~name:"plain_run_no_chaos"
      (Staged.stage (fun () ->
           ignore (Broker_sim.Simulator.run topo ~brokers ~sessions config)));
  ]

(* Path-cache machinery per strategy. Dominated paths are precomputed so
   the compute closures are table lookups: the medians time the cache,
   not the BFS underneath it. *)
let cache_tests () =
  let open Bechamel in
  let ctx = E.Ctx.create ~scale:0.02 ~sources:32 ~seed:13 () in
  let g = E.Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let order = E.Ctx.maxsg_order ctx in
  let brokers = Array.sub order 0 (min 16 (Array.length order)) in
  let model = Broker_sim.Workload.zipf ~n () in
  let draw =
    Broker_util.Sampling.weighted_alias model.Broker_core.Traffic.masses
  in
  let rng = Broker_util.Xrandom.create 19 in
  let keys =
    Array.init 2000 (fun _ ->
        let src = draw rng in
        let dst = ref (draw rng) in
        while !dst = src do
          dst := draw rng
        done;
        (src, !dst))
  in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let path_tbl = Hashtbl.create 2048 in
  Array.iter
    (fun (src, dst) ->
      if not (Hashtbl.mem path_tbl (src, dst)) then
        Hashtbl.replace path_tbl (src, dst)
          (match
             Broker_core.Dominating.find_dominated_path g ~is_broker src dst
           with
          | [] -> None
          | p -> Some (Array.of_list p)))
    keys;
  let fresh strategy =
    Broker_sim.Shard_cache.create ~strategy ~seed:7 ~n ~shards:brokers ()
  in
  let fill cache =
    Array.iter
      (fun (src, dst) ->
        ignore
          (Broker_sim.Shard_cache.find cache
             ~compute:(fun () -> Hashtbl.find path_tbl (src, dst))
             src dst))
      keys
  in
  let m = min 2 (Array.length brokers) in
  let churned = Array.sub brokers (Array.length brokers - m) m in
  List.concat_map
    (fun (label, strategy) ->
      let warm = fresh strategy in
      fill warm;
      [
        Test.make ~name:("insert/" ^ label)
          (Staged.stage (fun () ->
               let c = fresh strategy in
               fill c));
        Test.make ~name:("lookup/" ^ label)
          (Staged.stage (fun () -> fill warm));
        Test.make
          ~name:("invalidate/" ^ label)
          (Staged.stage (fun () ->
               let c = fresh strategy in
               fill c;
               Array.iter (Broker_sim.Shard_cache.crash c) churned;
               Array.iter (Broker_sim.Shard_cache.recover c) churned));
      ])
    [
      ("flush", Broker_sim.Shard_cache.Flush);
      ("modulo", Broker_sim.Shard_cache.Modulo);
      ( "ring",
        Broker_sim.Shard_cache.Ring
          { vnodes = Broker_sim.Shard_cache.default_vnodes } );
    ]

(* ------------------------------------------------------------------ *)
(* Timing statistics and the JSON perf trajectory                      *)
(* ------------------------------------------------------------------ *)

type kernel_stat = {
  name : string;
  median_ns : float;
  samples : int;
  minor_words : float;  (* median minor-heap words allocated per run *)
  major_words : float;  (* median words allocated directly on the major heap *)
}

let clock_label =
  Bechamel.Measure.label Bechamel.Toolkit.Instance.monotonic_clock

let minor_label =
  Bechamel.Measure.label Bechamel.Toolkit.Instance.minor_allocated

let major_label =
  Bechamel.Measure.label Bechamel.Toolkit.Instance.major_allocated

(* Median per-run value of one recorded measure — robust against the
   multi-modal noise (GC, frequency scaling) that skews a mean or an OLS
   fit on short CI runs, and what the BENCH_*.json trajectory records per
   kernel (time and allocation alike). *)
let median_of ~label (b : Bechamel.Benchmark.t) =
  let per_run =
    Array.map
      (fun m ->
        Bechamel.Measurement_raw.get ~label m /. Bechamel.Measurement_raw.run m)
      b.Bechamel.Benchmark.lr
  in
  Array.sort Float.compare per_run;
  let k = Array.length per_run in
  if k = 0 then 0.0
  else if k mod 2 = 1 then per_run.(k / 2)
  else (per_run.((k / 2) - 1) +. per_run.(k / 2)) /. 2.0

let run_suite ~quota name tests =
  let open Bechamel in
  let instances =
    Toolkit.Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let stats =
    Hashtbl.fold
      (fun key (b : Benchmark.t) acc ->
        {
          name = key;
          median_ns = median_of ~label:clock_label b;
          samples = Array.length b.Benchmark.lr;
          minor_words = median_of ~label:minor_label b;
          major_words = median_of ~label:major_label b;
        }
        :: acc)
      raw []
  in
  List.sort (fun a b -> String.compare a.name b.name) stats

let print_suite name stats =
  Printf.printf "\n-- Bechamel timings: %s (median) --\n%!" name;
  List.iter
    (fun s ->
      Printf.printf "%-44s %12.3f ms/run %14.0f minor-w %10.0f major-w\n"
        s.name (s.median_ns /. 1e6) s.minor_words s.major_words)
    stats

let find_stat stats suffix =
  List.find_opt
    (fun s ->
      let ls = String.length s.name and lx = String.length suffix in
      ls >= lx && String.sub s.name (ls - lx) lx = suffix)
    stats

(* legacy-over-projected median ratio of a connectivity kernel pair —
   the headline numbers of this perf trajectory. *)
let pair_speedup stats ~legacy ~projected =
  match (find_stat stats legacy, find_stat stats projected) with
  | Some l, Some p when p.median_ns > 0.0 -> Some (l.median_ns /. p.median_ns)
  | _ -> None

let connectivity_speedup stats =
  pair_speedup stats ~legacy:"connectivity/legacy"
    ~projected:"connectivity/projected"

let msbfs_speedup stats =
  pair_speedup stats ~legacy:"connectivity/projected"
    ~projected:"connectivity/msbfs"

let fullscale_speedup stats =
  pair_speedup stats ~legacy:"connectivity_fullscale/legacy"
    ~projected:"connectivity_fullscale/projected"

let fullscale_msbfs_speedup stats =
  pair_speedup stats ~legacy:"connectivity_fullscale/projected"
    ~projected:"connectivity_fullscale/msbfs"

let reconverge_speedup stats =
  pair_speedup stats ~legacy:"reconverge/rebuild"
    ~projected:"reconverge/incremental"

let write_json ~path ?(counters = []) suites =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"brokerset-bench/2\",\n";
  Printf.bprintf buf "  \"quota_s\": 2.0,\n";
  Buffer.add_string buf "  \"suites\": {\n";
  let n_suites = List.length suites in
  List.iteri
    (fun i (suite_name, stats) ->
      Printf.bprintf buf "    %S: [\n" suite_name;
      let n = List.length stats in
      List.iteri
        (fun j s ->
          Printf.bprintf buf
            "      {\"name\": %S, \"median_ns\": %.1f, \"samples\": %d,              \"minor_words\": %.1f, \"major_words\": %.1f}%s\n"
            s.name s.median_ns s.samples s.minor_words s.major_words
            (if j = n - 1 then "" else ","))
        stats;
      Printf.bprintf buf "    ]%s\n" (if i = n_suites - 1 then "" else ","))
    suites;
  Buffer.add_string buf "  },\n";
  if counters <> [] then begin
    Buffer.add_string buf "  \"counters\": {";
    List.iteri
      (fun i (k, v) ->
        Printf.bprintf buf "%s\"%s\": %d" (if i = 0 then "" else ", ") k v)
      counters;
    Buffer.add_string buf "},\n"
  end;
  let all_stats = List.concat_map snd suites in
  let derived =
    List.filter_map
      (fun (key, v) -> Option.map (fun s -> (key, s)) v)
      [
        ("connectivity_speedup", connectivity_speedup all_stats);
        ("msbfs_vs_projected", msbfs_speedup all_stats);
        ("connectivity_fullscale_speedup", fullscale_speedup all_stats);
        ("msbfs_vs_projected_fullscale", fullscale_msbfs_speedup all_stats);
        ("incremental_vs_rebuild", reconverge_speedup all_stats);
      ]
  in
  Buffer.add_string buf "  \"derived\": {";
  List.iteri
    (fun i (key, s) ->
      Printf.bprintf buf "%s\"%s\": %.2f" (if i = 0 then "" else ", ") key s)
    derived;
  Buffer.add_string buf "}\n";
  Buffer.add_string buf "}\n";
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n%!" path

(* Full-scale (REPRO_SCALE-sized) connectivity evaluation pair, hand-timed:
   the legacy path takes whole seconds per run out there, so a fixed small
   repetition count replaces Bechamel's sampling. This is the Table 1 /
   Fig 2a evaluation shape — a fixed source sample, each source
   contributing its exact distance row. *)
let fullscale_pair () =
  let ctx = E.Ctx.from_env () in
  let g = E.Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let brokers = Broker_core.Baselines.db g ~k:(min 1000 n) in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let srcs =
    Broker_util.Sampling.without_replacement
      (Broker_util.Xrandom.create (E.Ctx.seed ctx + 7777))
      ~n
      ~k:(min (E.Ctx.sources ctx) n)
  in
  let reps = 3 in
  let timed name f =
    let ns = Array.make reps 0.0 in
    let minor = Array.make reps 0.0 in
    let major = Array.make reps 0.0 in
    for i = 0 to reps - 1 do
      let s0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      f ();
      let t1 = Unix.gettimeofday () in
      let s1 = Gc.quick_stat () in
      ns.(i) <- (t1 -. t0) *. 1e9;
      minor.(i) <- s1.Gc.minor_words -. s0.Gc.minor_words;
      major.(i) <- s1.Gc.major_words -. s0.Gc.major_words
    done;
    let med a =
      Array.sort Float.compare a;
      a.(reps / 2)
    in
    {
      name;
      median_ns = med ns;
      samples = reps;
      minor_words = med minor;
      major_words = med major;
    }
  in
  [
    timed "connectivity_fullscale/legacy" (fun () ->
        ignore
          (Broker_core.Connectivity.eval_sources_reference ~l_max:10 g
             ~is_broker srcs));
    timed "connectivity_fullscale/projected" (fun () ->
        ignore
          (Broker_core.Connectivity.eval_sources_scalar ~l_max:10 g ~is_broker
             srcs));
    timed "connectivity_fullscale/msbfs" (fun () ->
        ignore
          (Broker_core.Connectivity.eval_sources ~l_max:10 g ~is_broker srcs));
  ]

(* One instrumented pass of the default (MS-BFS) connectivity kernel at a
   fixed small scale: the deterministic Broker_obs counter fingerprint
   attached to the brokerset-bench/2 JSON, now including the msbfs.*
   sweep/word counters. Runs outside the timed iterations so
   Bechamel's adaptive sample counts cannot perturb the counts, and resets
   the registry first so earlier suites don't leak in. Empty under
   --profile obs-absent. *)
let counter_snapshot () =
  if not Obs.Control.available then []
  else begin
    let was_enabled = Obs.Control.enabled () in
    Obs.Control.set_enabled true;
    Obs.Metrics.reset ();
    let g, is_broker, srcs =
      connectivity_setup (E.Ctx.create ~scale:0.02 ~sources:32 ~seed:11 ())
    in
    ignore (Broker_core.Connectivity.eval_sources ~l_max:10 g ~is_broker srcs);
    let snap = Obs.Metrics.deterministic (Obs.Metrics.snapshot ()) in
    Obs.Control.set_enabled was_enabled;
    List.filter_map
      (fun (e : Obs.Metrics.entry) ->
        match e.Obs.Metrics.value with
        | Obs.Metrics.Counter v | Obs.Metrics.Gauge_max v ->
            Some (e.Obs.Metrics.name, v)
        | Obs.Metrics.Histogram _ -> None)
      snap
  end

(* CI obs-overhead job: time the small-scale connectivity pair alone. The
   job runs this twice — on the default build (probes compiled in,
   disabled) and on --profile obs-absent (probes constant-folded away) —
   and fails if the disabled median exceeds the absent one by more than
   1%. *)
let obs_overhead ~json () =
  let ctx = E.Ctx.create ~scale:0.02 ~sources:32 ~seed:11 () in
  let stats = run_suite ~quota:2.0 "kernels" (connectivity_pair ctx) in
  let label =
    if Obs.Control.available then "kernels (obs compiled in, disabled)"
    else "kernels (obs absent)"
  in
  print_suite label stats;
  match json with
  | Some path -> write_json ~path [ ("kernels", stats) ]
  | None -> ()

let run_timings ~json ~fullscale () =
  let suites =
    [
      ("tables_and_figures", run_suite ~quota:2.0 "tables_and_figures" (experiment_tests ()));
      ("kernels", run_suite ~quota:2.0 "kernels" (kernel_tests ()));
      ("chaos", run_suite ~quota:2.0 "chaos" (chaos_tests ()));
      ("cache", run_suite ~quota:2.0 "cache" (cache_tests ()));
    ]
    @ (if fullscale then [ ("connectivity_fullscale", fullscale_pair ()) ] else [])
  in
  List.iter (fun (name, stats) -> print_suite name stats) suites;
  let all_stats = List.concat_map snd suites in
  (match connectivity_speedup all_stats with
  | Some s -> Printf.printf "\nconnectivity projected vs legacy: %.2fx\n" s
  | None -> ());
  (match msbfs_speedup all_stats with
  | Some s -> Printf.printf "connectivity msbfs vs projected: %.2fx\n" s
  | None -> ());
  (match fullscale_speedup all_stats with
  | Some s ->
      Printf.printf "connectivity full-scale projected vs legacy: %.2fx\n" s
  | None -> ());
  (match fullscale_msbfs_speedup all_stats with
  | Some s ->
      Printf.printf "connectivity full-scale msbfs vs projected: %.2fx\n" s
  | None -> ());
  (match reconverge_speedup all_stats with
  | Some s -> Printf.printf "reconverge incremental vs rebuild: %.2fx\n" s
  | None -> ());
  match json with
  | Some path -> write_json ~path ~counters:(counter_snapshot ()) suites
  | None -> ()

(* CI perf gate: time the connectivity kernel trio and the dynamic
   re-convergence pair at small scale and fail unless (a) the projected
   engine beats the legacy path, (b) the bit-parallel MS-BFS engine beats
   the scalar projected one, and (c) the incremental tracker beats a full
   compact-and-re-evaluate rebuild for a small (~1% of edges) burst. *)
let perf_smoke ~json () =
  let ctx = E.Ctx.create ~scale:0.02 ~sources:32 ~seed:11 () in
  let stats =
    run_suite ~quota:1.0 "kernels"
      (connectivity_pair ctx @ dynamic_pair ctx @ brokerstat_tests ())
  in
  print_suite "kernels (perf smoke)" stats;
  (match json with
  | Some path ->
      write_json ~path ~counters:(counter_snapshot ()) [ ("kernels", stats) ]
  | None -> ());
  (match connectivity_speedup stats with
  | Some s when s > 1.0 ->
      Printf.printf "perf-smoke OK: projected engine is %.2fx faster\n" s
  | Some s ->
      Printf.printf "perf-smoke FAIL: projected engine is not faster (%.2fx)\n" s;
      exit 1
  | None ->
      prerr_endline "perf-smoke FAIL: connectivity kernels missing";
      exit 1);
  (match msbfs_speedup stats with
  | Some s when s > 1.0 ->
      Printf.printf "perf-smoke OK: msbfs engine is %.2fx faster than projected\n"
        s
  | Some s ->
      Printf.printf
        "perf-smoke FAIL: msbfs engine is not faster than projected (%.2fx)\n" s;
      exit 1
  | None ->
      prerr_endline "perf-smoke FAIL: msbfs connectivity kernel missing";
      exit 1);
  match reconverge_speedup stats with
  | Some s when s > 1.0 ->
      Printf.printf
        "perf-smoke OK: incremental re-convergence is %.2fx faster than rebuild\n"
        s
  | Some s ->
      Printf.printf
        "perf-smoke FAIL: incremental re-convergence is not faster than \
         rebuild (%.2fx)\n"
        s;
      exit 1
  | None ->
      prerr_endline "perf-smoke FAIL: reconverge kernels missing";
      exit 1

let () =
  (* REPRO_LOG=info|debug enables library progress logging on stderr. *)
  (match Sys.getenv_opt "REPRO_LOG" with
  | Some level ->
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level
        (match String.lowercase_ascii level with
        | "debug" -> Some Logs.Debug
        | "warning" -> Some Logs.Warning
        | _ -> Some Logs.Info)
  | None -> ());
  (* REPRO_TRACE=FILE arms the span ring for the whole bench run; the
     Chrome trace is flushed by the trailing top-level binding below. *)
  (match Sys.getenv_opt "REPRO_TRACE" with
  | Some path when path <> "" ->
      Obs.Control.set_enabled true;
      Obs.Trace.arm ()
  | Some _ | None -> ());
  let rec parse flags json ids = function
    | [] -> (List.rev flags, json, List.rev ids)
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        exit 2
    | "--json" :: path :: rest -> parse flags (Some path) ids rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "--" ->
        parse (a :: flags) json ids rest
    | a :: rest -> parse flags json (a :: ids) rest
  in
  let flags, json, ids = parse [] None [] (List.tl (Array.to_list Sys.argv)) in
  let has f = List.mem f flags in
  if has "--list" then
    List.iter
      (fun (e : E.All.experiment) ->
        Printf.printf "%-18s %s\n" e.E.All.id e.E.All.description)
      E.All.experiments
  else if has "--perf-smoke" then perf_smoke ~json ()
  else if has "--obs-overhead" then obs_overhead ~json ()
  else begin
    let timings_only = has "--timings" in
    if not timings_only then begin
      let ctx = E.Ctx.from_env () in
      Printf.printf
        "Reproduction run: scale=%.3g sources=%d seed=%d (%d experiments)\n%!"
        (E.Ctx.scale ctx) (E.Ctx.sources ctx) (E.Ctx.seed ctx)
        (List.length E.All.experiments);
      match ids with
      | [] ->
          (* Stream each report as it completes so long runs stay
             observable; text output is byte-identical to the historical
             print-as-you-go harness. *)
          ignore
            (E.All.run_all
               ~emit:(fun _ r ->
                 Report_text.print r;
                 Report_text.flush ())
               ctx)
      | ids ->
          List.iter
            (fun id ->
              match E.All.run_one ctx id with
              | Ok r ->
                  Report_text.print r;
                  Report_text.flush ()
              | Error msg ->
                  prerr_endline msg;
                  exit 2)
            ids
    end;
    if timings_only || ids = [] then
      run_timings ~json ~fullscale:(has "--fullscale") ()
  end

let () =
  match Sys.getenv_opt "REPRO_TRACE" with
  | Some path when path <> "" && Obs.Trace.armed () ->
      if Obs.Trace.write ~path then
        Printf.eprintf "trace: %d events (%d dropped) -> %s\n%!"
          (Obs.Trace.recorded ()) (Obs.Trace.dropped ()) path
  | Some _ | None -> ()
