(* Topology zoo: why broker sets work on the Internet but not on arbitrary
   graphs. Compares how fast a MaxSG broker set's connectivity grows on
   ER-random, WS-small-world, BA-scale-free and Internet-like topologies
   with the same node/edge budget.

   Run with:  dune exec examples/topology_zoo.exe *)

let evaluate name g =
  let n = Broker_graph.Graph.n g in
  let rng = Broker_util.Xrandom.create 13 in
  let source_set = Broker_util.Sampling.without_replacement rng ~n ~k:(min 96 n) in
  let order = Broker_core.Maxsg.run_to_saturation g in
  Printf.printf "%-16s saturation at %4d brokers (%.1f%% of nodes)\n" name
    (Array.length order)
    (100.0 *. float_of_int (Array.length order) /. float_of_int n);
  List.iter
    (fun k ->
      if k <= Array.length order then begin
        let brokers = Array.sub order 0 k in
        let sat =
          (Broker_core.Connectivity.sampled ~l_max:1 ~source_set ~rng
             ~sources:(Array.length source_set) g
             ~is_broker:(Broker_core.Connectivity.of_brokers ~n brokers))
            .Broker_core.Connectivity.saturated
        in
        Printf.printf "    k=%-5d -> %.1f%% E2E connectivity\n" k (100.0 *. sat)
      end)
    [ 10; 50; 100; 200 ];
  Printf.printf "\n"

let () =
  let params = { (Broker_topo.Internet.scaled 0.06) with seed = 3 } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g and m = Broker_graph.Graph.m g in
  Printf.printf "All topologies: %d nodes, ~%d edges\n\n" n m;
  let rng = Broker_util.Xrandom.create 4 in
  evaluate "Internet (AS+IXP)" g;
  evaluate "ER-Random" (Broker_topo.Classic.erdos_renyi ~rng ~n ~m);
  let k = max 2 (2 * m / n land lnot 1) in
  evaluate "WS-Small-World" (Broker_topo.Classic.watts_strogatz ~rng ~n ~k ~beta:0.1);
  evaluate "BA-Scale-free"
    (Broker_topo.Classic.barabasi_albert ~rng ~n ~m:(max 1 (m / n)));
  Printf.printf
    "The heavy-tailed Internet graph needs far fewer brokers for the same\n\
     coverage than homogeneous random graphs - the structural fact the\n\
     paper's small-broker-set thesis rests on.\n"
