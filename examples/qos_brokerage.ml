(* QoS brokerage in operation: a capacity-planning study for the broker
   coalition. How much forwarding capacity must brokers provision so that
   (say) 99% of QoS sessions are admitted, and what latency penalty do
   customers pay for the guarantee?

   Run with:  dune exec examples/qos_brokerage.exe *)

let () =
  let params = { (Broker_topo.Internet.scaled 0.04) with seed = 17 } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g in
  let brokers = Broker_core.Maxsg.run g ~k:(n / 25) in
  Printf.printf "Topology: %d nodes; broker mesh: %d members\n\n" n
    (Array.length brokers);

  (* A day of QoS sessions with gravity-model endpoints. *)
  let rng = Broker_util.Xrandom.create 99 in
  let model = Broker_core.Traffic.gravity ~rng g in
  let sessions =
    Broker_sim.Workload.generate ~rng model ~n_sessions:12_000
      { Broker_sim.Workload.default_params with arrival_rate = 20.0 }
  in

  (* Sweep the provisioning factor until the admission target is met. *)
  Printf.printf "%-18s %-12s %-12s %-14s %s\n" "capacity factor" "admitted"
    "blocked" "utilization" "net revenue";
  let target = 0.99 in
  let met = ref None in
  List.iter
    (fun factor ->
      let config = Broker_sim.Simulator.degree_capacity g ~factor in
      let s = Broker_sim.Simulator.run topo ~brokers ~sessions config in
      Printf.printf "%-18.2f %-12s %-12d %-14s %.0f\n" factor
        (Printf.sprintf "%.2f%%" (100.0 *. s.Broker_sim.Simulator.admission_rate))
        s.Broker_sim.Simulator.rejected_capacity
        (Printf.sprintf "%.1f%%"
           (100.0 *. s.Broker_sim.Simulator.mean_broker_utilization))
        s.Broker_sim.Simulator.revenue;
      if !met = None && s.Broker_sim.Simulator.admission_rate >= target then
        met := Some factor)
    [ 0.02; 0.05; 0.1; 0.2; 0.4 ];
  (match !met with
  | Some f ->
      Printf.printf "\n-> provisioning factor %.2f suffices for %.0f%% admission.\n" f
        (100.0 *. target)
  | None -> Printf.printf "\n-> admission target not met in the sweep; provision more.\n");

  (* The latency cost of the guarantee. *)
  let lat = Broker_routing.Latency.assign ~rng topo in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let stretches = ref [] in
  for _ = 1 to 400 do
    let src = Broker_util.Xrandom.int rng n and dst = Broker_util.Xrandom.int rng n in
    if src <> dst then
      match Broker_routing.Latency.stretch lat topo ~is_broker ~src ~dst with
      | Some s -> stretches := s :: !stretches
      | None -> ()
  done;
  let arr = Array.of_list !stretches in
  let s = Broker_util.Stats.summarize arr in
  Printf.printf
    "\nLatency stretch of QoS paths vs unconstrained min-latency paths (%d pairs):\n"
    s.Broker_util.Stats.n;
  Printf.printf "  median %.3fx, mean %.3fx, p90 %.3fx, worst %.3fx\n"
    s.Broker_util.Stats.p50 s.Broker_util.Stats.mean s.Broker_util.Stats.p90
    s.Broker_util.Stats.max;

  (* One concrete session, end to end. *)
  let sample = sessions.(0) in
  (match
     Broker_routing.Latency.min_latency_path lat topo ~is_broker
       ~src:sample.Broker_sim.Workload.src ~dst:sample.Broker_sim.Workload.dst
   with
  | Some (path, ms) ->
      Printf.printf "\nSample QoS session %s -> %s: %d hops, %.1f ms via\n  %s\n"
        topo.Broker_topo.Topology.names.(sample.Broker_sim.Workload.src)
        topo.Broker_topo.Topology.names.(sample.Broker_sim.Workload.dst)
        (List.length path - 1) ms
        (String.concat " -> "
           (List.map (fun v -> topo.Broker_topo.Topology.names.(v)) path))
  | None -> Printf.printf "\nSample session has no dominated path.\n")
