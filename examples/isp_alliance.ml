(* ISP alliance planning: how large must a brokerage coalition grow, who
   should be in it, and when do new members stop paying for themselves?

   This is the workload the paper's introduction motivates: a consortium
   wants E2E QoS guarantees for most connections with as few members as
   possible, while respecting business reality (valley-free routing).

   Run with:  dune exec examples/isp_alliance.exe *)

let () =
  let params = { (Broker_topo.Internet.scaled 0.08) with seed = 5 } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g in
  Printf.printf "Planning an alliance over %d ASes/IXPs\n\n" n;

  (* Grow the alliance to saturation and show the coverage trajectory. *)
  let order = Broker_core.Maxsg.run_to_saturation g in
  let curve = Broker_core.Maxsg.coverage_curve g order in
  Printf.printf "%-10s %-12s %s\n" "members" "coverage" "marginal";
  let last = ref 0 in
  Array.iter
    (fun (size, f) ->
      if size land (size - 1) = 0 || size = Array.length order then begin
        (* powers of two + final *)
        Printf.printf "%-10d %5.1f%%      +%d nodes since last row\n" size
          (100.0 *. float_of_int f /. float_of_int n)
          (f - !last);
        last := f
      end)
    curve;
  Printf.printf "\nFull domination reached with %d members (paper: 3,540 of 52,079 = 6.8%%)\n\n"
    (Array.length order);

  (* Composition: who are these members? *)
  let shares = Broker_core.Composition.shares topo ~brokers:order in
  List.iter
    (fun (s : Broker_core.Composition.share) ->
      Printf.printf "  %-12s %4d members (%.1f%%)\n"
        (Broker_topo.Node_meta.kind_to_string s.Broker_core.Composition.kind)
        s.Broker_core.Composition.count
        (100.0 *. s.Broker_core.Composition.fraction))
    shares;

  (* Business reality check: what do the guarantees look like under
     valley-free routing, and how much do internal mutual-transit
     agreements recover? *)
  let k = min 150 (Array.length order) in
  let members = Array.sub order 0 k in
  let is_broker = Broker_core.Connectivity.of_brokers ~n members in
  let rng = Broker_util.Xrandom.create 9 in
  let source_set = Broker_util.Sampling.without_replacement rng ~n ~k:96 in
  let directional =
    Broker_core.Directional.saturated_sampled ~source_set ~rng ~sources:96 topo
      ~is_broker
  in
  let upgrades =
    Broker_core.Directional.upgrade_broker_edges ~rng topo ~brokers:members
      ~fraction:0.3
  in
  let upgraded =
    Broker_core.Directional.saturated_sampled ~upgrades ~source_set ~rng
      ~sources:96 topo ~is_broker
  in
  Printf.printf
    "\nWith %d members under valley-free routing: %.1f%% connectivity\n" k
    (100.0 *. directional);
  Printf.printf
    "After upgrading 30%% of inter-member links to mutual transit: %.1f%%\n"
    (100.0 *. upgraded);

  (* Economics: marginal value of members under pair-coverage revenue. *)
  let values =
    let cov = Broker_core.Coverage.create g in
    Array.map
      (fun b ->
        Broker_core.Coverage.add cov b;
        let f = float_of_int (Broker_core.Coverage.f cov) /. float_of_int n in
        f *. f)
      order
  in
  match Broker_econ.Coalition.supermodularity_break values with
  | Some i ->
      Printf.printf
        "\nMarginal (pair-coverage) revenue starts decaying at member #%d: new joiners beyond\nthis point contribute less than their predecessors - the natural alliance size.\n"
        (i + 1)
  | None -> Printf.printf "\nMarginal revenue never decayed.\n"
