(* Quickstart: generate a topology, pick a broker set, check what it buys.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A deterministic Internet-like AS+IXP topology (~2,600 nodes at 5%
     of the paper's scale). *)
  let params = { (Broker_topo.Internet.scaled 0.05) with seed = 1 } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g in
  Printf.printf "Topology: %d nodes, %d edges\n" n (Broker_graph.Graph.m g);

  (* 2. Select 50 brokers with the MaxSubGraph-Greedy heuristic
     (Algorithm 3 of the paper). *)
  let brokers = Broker_core.Maxsg.run g ~k:50 in
  let cov = Broker_core.Coverage.create g in
  Array.iter (Broker_core.Coverage.add cov) brokers;
  Printf.printf "Broker set: %d brokers covering %.1f%% of all nodes\n"
    (Array.length brokers)
    (100.0 *. Broker_core.Coverage.coverage_fraction cov);

  (* 3. How many end-to-end connections get a QoS-guaranteed (B-dominated)
     path? *)
  let rng = Broker_util.Xrandom.create 2 in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let curve = Broker_core.Connectivity.sampled ~rng ~sources:128 g ~is_broker in
  Printf.printf "E2E connectivity via brokers: %.1f%% within 4 hops, %.1f%% saturated\n"
    (100.0 *. Broker_core.Connectivity.value_at curve 4)
    (100.0 *. curve.Broker_core.Connectivity.saturated);

  (* 4. Stitch an explicit broker-mediated path between two random stub
     ASes and show the business segments. *)
  let pick_stub () =
    let rec go () =
      let v = Broker_util.Xrandom.int rng n in
      if Broker_topo.Topology.is_as topo v && not (is_broker v) then v else go ()
    in
    go ()
  in
  let src = pick_stub () and dst = pick_stub () in
  match Broker_routing.Stitch.stitch g ~is_broker ~src ~dst with
  | None -> Printf.printf "No dominated path between %d and %d\n" src dst
  | Some s ->
      Printf.printf "Stitched %s -> %s in %d hops via %d broker(s), hiring %d employee AS(es)\n"
        topo.Broker_topo.Topology.names.(src)
        topo.Broker_topo.Topology.names.(dst)
        s.Broker_routing.Stitch.hops
        (List.length
           (List.filter (fun v -> is_broker v) s.Broker_routing.Stitch.path))
        (List.length s.Broker_routing.Stitch.employees);
      Printf.printf "Path: %s\n"
        (String.concat " -> "
           (List.map
              (fun v -> topo.Broker_topo.Topology.names.(v))
              s.Broker_routing.Stitch.path))
