(* Economics of the brokerage: end-to-end walk through Section 7.

   1. The coalition posts a price; customer ASes best-respond (Stackelberg).
   2. Where brokers lack a direct link, a transit AS is hired at a
      Nash-bargained price.
   3. Coalition revenue is split by Shapley value; stability is checked.

   Run with:  dune exec examples/economics_sim.exe *)

let () =
  let rng = Broker_util.Xrandom.create 21 in

  (* --- Stage 1: Stackelberg pricing against 300 heterogeneous ASes. --- *)
  let population = Broker_econ.Market.random_population ~rng ~n:300 in
  let cost = Broker_econ.Market.default_cost in
  let eq = Broker_econ.Stackelberg.solve population ~cost in
  Printf.printf "Stackelberg equilibrium\n";
  Printf.printf "  posted price p_B        = %.3f per unit volume\n"
    eq.Broker_econ.Stackelberg.price;
  Printf.printf "  aggregate adoption      = %.1f / %d units\n"
    eq.Broker_econ.Stackelberg.alpha
    (Array.length population);
  Printf.printf "  coalition utility       = %.1f\n\n"
    eq.Broker_econ.Stackelberg.broker_utility;

  (* Price sensitivity: how adoption falls as the price rises. *)
  Printf.printf "  price -> adoption curve:\n";
  List.iter
    (fun p ->
      Printf.printf "    p=%5.2f  alpha=%6.1f\n" p
        (Broker_econ.Stackelberg.aggregate_response population ~price:p))
    [ 0.0; 2.0; 4.0; 8.0; 12.0 ];

  (* --- Stage 2: hiring an employee AS between two brokers. --- *)
  Printf.printf "\nNash bargaining with a hired transit AS (hops budget = ceil(beta/2) = 2)\n";
  (match
     Broker_econ.Bargain.solve ~cross_check:true
       ~broker_price:eq.Broker_econ.Stackelberg.price ~hops:2 0.25
   with
  | None -> Printf.printf "  bargaining set empty - the coalition cannot hire profitably\n"
  | Some b ->
      Printf.printf "  agreed transit price p_j = %.3f\n" b.Broker_econ.Bargain.price;
      Printf.printf "  employee surplus          = %.3f\n" b.Broker_econ.Bargain.u_employee;
      Printf.printf "  coalition surplus         = %.3f\n" b.Broker_econ.Bargain.u_broker);

  (* --- Stage 3: splitting coalition revenue by Shapley value. --- *)
  let params = { (Broker_topo.Internet.scaled 0.02) with seed = 21 } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let players = 8 in
  let stride = max 1 ((Array.length order - 4) / players) in
  let candidates = Array.init players (fun i -> order.(4 + (i * stride))) in
  let v mask =
    let cov = Broker_core.Coverage.create g in
    for j = 0 to players - 1 do
      if mask land (1 lsl j) <> 0 then Broker_core.Coverage.add cov candidates.(j)
    done;
    let f = float_of_int (Broker_core.Coverage.f cov) /. float_of_int n in
    f *. f
  in
  let phi = Broker_econ.Shapley.exact ~n:players ~v in
  Printf.printf "\nShapley revenue split among %d member ASes (value = served-pair share)\n" players;
  Array.iteri
    (fun j p ->
      Printf.printf "  %-10s phi = %.5f  (solo value %.5f)\n"
        topo.Broker_topo.Topology.names.(candidates.(j))
        p
        (v (1 lsl j)))
    phi;
  let mc =
    Broker_econ.Shapley.monte_carlo ~rng ~n:players ~samples:2000 ~v
  in
  let err = ref 0.0 in
  Array.iteri (fun j p -> err := Float.max !err (abs_float (p -. mc.(j)))) phi;
  Printf.printf "  Monte-Carlo (2000 permutations) max error vs exact: %.5f\n" !err;
  Printf.printf "  individually rational: %b\n"
    (Broker_econ.Coalition.individually_rational ~v ~n:players phi)
