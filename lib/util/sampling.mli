(** Sampling primitives for the estimators (source-sampled connectivity,
    Monte-Carlo Shapley values, topology generation). *)

val without_replacement : Xrandom.t -> n:int -> k:int -> int array
(** [without_replacement rng ~n ~k] draws [k] distinct integers from
    [0..n-1], in increasing order (Floyd's algorithm).
    @raise Invalid_argument if [k > n] or either is negative. *)

val reservoir : Xrandom.t -> k:int -> 'a Seq.t -> 'a array
(** Reservoir sampling of up to [k] items from a sequence of unknown length. *)

val weighted_index : Xrandom.t -> float array -> int
(** Draw an index proportionally to the (non-negative) weights.
    @raise Invalid_argument if all weights are zero or any is negative. *)

val weighted_alias : float array -> Xrandom.t -> int
(** [weighted_alias weights] precomputes Walker alias tables; the returned
    closure draws indices in O(1). Suitable when drawing many samples from the
    same distribution (preferential-attachment topology generation). *)
