type order = Min | Max

type t = {
  order : order;
  mutable prio : float array;
  mutable data : int array;
  mutable size : int;
}

let create ?(initial_capacity = 16) order =
  let cap = max initial_capacity 1 in
  { order; prio = Array.make cap 0.0; data = Array.make cap 0; size = 0 }

let size t = t.size
let is_empty t = t.size = 0

(* [before t a b]: should priority [a] sit above priority [b]? *)
let before t a b = match t.order with Min -> a < b | Max -> a > b

let grow t =
  let cap = Array.length t.prio in
  let prio = Array.make (2 * cap) 0.0 in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.prio 0 prio 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t t.prio.(i) t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t t.prio.(l) t.prio.(!best) then best := l;
  if r < t.size && before t t.prio.(r) t.prio.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let push t ~priority payload =
  if t.size = Array.length t.prio then grow t;
  t.prio.(t.size) <- priority;
  t.data.(t.size) <- payload;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let res = (t.prio.(0), t.data.(0)) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some res
  end

let pop_exn t =
  match pop t with Some x -> x | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t = t.size <- 0
