type t = { words : int array; n : int }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let unsafe_mem t i =
  Array.unsafe_get t.words (i / bits_per_word)
  land (1 lsl (i mod bits_per_word))
  <> 0

let[@brokercheck.noalloc] unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0
let copy t = { words = Array.copy t.words; n = t.n }

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let to_array t = Array.of_list (to_list t)

let union_into ~into s =
  if into.n <> s.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length s.words - 1 do
    into.words.(w) <- into.words.(w) lor s.words.(w)
  done

let inter_cardinal a b =
  if a.n <> b.n then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let equal a b = a.n = b.n && a.words = b.words
