type t = { words : int array; n : int }

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let unsafe_mem t i =
  Array.unsafe_get t.words (i / bits_per_word)
  land (1 lsl (i mod bits_per_word))
  <> 0

let[@brokercheck.noalloc] unsafe_add t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* Branch-free SWAR popcount. The usual 64-bit magic constants
   (0x5555...5555 etc.) do not fit in a 63-bit OCaml int literal, so the
   first mask is the 63-bit truncation 0x1555...5555 — bit 62 of
   [x lsr 1] is always 0, so nothing is lost — and the final multiply
   folds the byte sums into bits 56..62 (the total is <= 63 < 128, so
   the missing 64th bit never carries). Constant-time for dense words,
   unlike the classic clear-lowest-bit loop this replaced. *)
let[@brokercheck.noalloc] popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let num_words t = Array.length t.words

let word t w =
  if w < 0 || w >= Array.length t.words then
    invalid_arg "Bitset.word: word index out of bounds";
  t.words.(w)

let unsafe_word t w = Array.unsafe_get t.words w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let clear t = Array.fill t.words 0 (Array.length t.words) 0
let copy t = { words = Array.copy t.words; n = t.n }

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    let base = w * bits_per_word in
    (* Lowest-set-bit extraction: each member costs O(1) instead of the
       63-probe scan per word; the bit index is popcount of the mask
       below the isolated bit. Ascending order is preserved. *)
    while !word <> 0 do
      let low = !word land - !word in
      f (base + popcount (low - 1));
      word := !word land (!word - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let to_array t = Array.of_list (to_list t)

let union_into ~into s =
  if into.n <> s.n then invalid_arg "Bitset.union_into: capacity mismatch";
  for w = 0 to Array.length s.words - 1 do
    into.words.(w) <- into.words.(w) lor s.words.(w)
  done

let inter_cardinal a b =
  if a.n <> b.n then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let equal a b = a.n = b.n && a.words = b.words
