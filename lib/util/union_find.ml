type t = {
  parent : int array;
  comp_size : int array;
  mutable count : int;
  mutable max_size : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    comp_size = Array.make n 1;
    count = n;
    max_size = min n 1;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let same t a b = find t a = find t b
let size t x = t.comp_size.(find t x)

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let big, small = if t.comp_size.(ra) >= t.comp_size.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(small) <- big;
    t.comp_size.(big) <- t.comp_size.(big) + t.comp_size.(small);
    t.count <- t.count - 1;
    if t.comp_size.(big) > t.max_size then t.max_size <- t.comp_size.(big);
    true
  end

let count t = t.count
let max_component_size t = t.max_size
