let invphi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section_max ?(tol = 1e-9) ?(max_iter = 200) f ~lo ~hi =
  if hi < lo then invalid_arg "Optimize.golden_section_max: hi < lo";
  let a = ref lo and b = ref hi in
  let c = ref (!b -. (invphi *. (!b -. !a))) in
  let d = ref (!a +. (invphi *. (!b -. !a))) in
  let fc = ref (f !c) and fd = ref (f !d) in
  let iter = ref 0 in
  while !b -. !a > tol && !iter < max_iter do
    if !fc > !fd then begin
      b := !d;
      d := !c;
      fd := !fc;
      c := !b -. (invphi *. (!b -. !a));
      fc := f !c
    end
    else begin
      a := !c;
      c := !d;
      fc := !fd;
      d := !a +. (invphi *. (!b -. !a));
      fd := f !d
    end;
    incr iter
  done;
  let x = (!a +. !b) /. 2.0 in
  (x, f x)

let bisect_root ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let fa = f lo and fb = f hi in
  if fa = 0.0 then lo
  else if fb = 0.0 then hi
  else begin
    if fa *. fb > 0.0 then invalid_arg "Optimize.bisect_root: no sign change";
    let a = ref lo and b = ref hi and fa = ref fa in
    let iter = ref 0 in
    while !b -. !a > tol && !iter < max_iter do
      let m = (!a +. !b) /. 2.0 in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if !fa *. fm < 0.0 then b := m
      else begin
        a := m;
        fa := fm
      end;
      incr iter
    done;
    (!a +. !b) /. 2.0
  end

let grid_max f ~lo ~hi ~steps =
  if steps <= 0 then invalid_arg "Optimize.grid_max: steps must be positive";
  let best_x = ref lo and best_f = ref (f lo) in
  for i = 1 to steps do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int steps) in
    let fx = f x in
    if fx > !best_f then begin
      best_x := x;
      best_f := fx
    end
  done;
  (!best_x, !best_f)

let grid_then_golden ?(steps = 64) ?(tol = 1e-9) f ~lo ~hi =
  let x0, _ = grid_max f ~lo ~hi ~steps in
  let h = (hi -. lo) /. float_of_int steps in
  let a = max lo (x0 -. h) and b = min hi (x0 +. h) in
  golden_section_max ~tol f ~lo:a ~hi:b
