type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x5851F42D)

(* Non-negative 62-bit int from the top bits, avoiding sign issues. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xrandom.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = bound - 1 in
  if bound land mask = 0 then bits t land mask
  else
    let lim = (max_int / bound) * bound in
    let rec loop () =
      let v = bits t in
      if v < lim then v mod bound else loop ()
    in
    loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Xrandom.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  x *. (float_of_int v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Xrandom.exponential: lambda must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda

let pareto t ~alpha ~x_min =
  if alpha <= 0.0 || x_min <= 0.0 then invalid_arg "Xrandom.pareto";
  let u = 1.0 -. float t 1.0 in
  x_min /. (u ** (1.0 /. alpha))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Xrandom.geometric";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Xrandom.pick: empty array";
  a.(int t (Array.length a))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
