(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (topology generators,
    sampling estimators, Monte-Carlo Shapley values, ...) draw from this
    module rather than [Stdlib.Random] so that every experiment is exactly
    reproducible from its seed.

    The generator is xoshiro256** seeded through splitmix64, following the
    reference implementation of Blackman and Vigna. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a fresh generator deterministically from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; streams of the
    parent and child are (statistically) independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t lambda] samples Exp(lambda). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto(alpha, x_min) sample; used for heavy-tailed degree targets. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) process ([p] in (0,1]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)
