module Obs = Broker_obs

(* Per-domain utilization and allocation probes around every worker body.
   [parallel.invocations] is deterministic (one per fan-out call); the
   worker/GC tallies depend on scheduling and the domain budget, so they
   are registered volatile and never gate a diff. *)
let m_invocations = Obs.Metrics.counter "parallel.invocations"
let m_workers = Obs.Metrics.counter ~volatile:true "parallel.workers"
let m_worker_ns = Obs.Metrics.counter ~volatile:true "parallel.worker_ns"
let m_minor_words = Obs.Metrics.counter ~volatile:true "parallel.gc.minor_words"
let m_major_words = Obs.Metrics.counter ~volatile:true "parallel.gc.major_words"

let m_minor_gcs =
  Obs.Metrics.counter ~volatile:true "parallel.gc.minor_collections"

let m_major_gcs =
  Obs.Metrics.counter ~volatile:true "parallel.gc.major_collections"

let t_worker = Obs.Trace.scope "parallel.worker"

let instrumented f =
  if not (Obs.Control.enabled ()) then f ()
  else begin
    Obs.Metrics.incr m_workers;
    let ns0 = Obs.Clock.now_ns () in
    let tr0 = Obs.Trace.enter () in
    let x, d = Obs.Profile.measure f in
    Obs.Trace.leave t_worker tr0;
    Obs.Metrics.add m_worker_ns (Obs.Clock.now_ns () - ns0);
    Obs.Metrics.add m_minor_words (int_of_float d.Obs.Profile.minor_words);
    Obs.Metrics.add m_major_words (int_of_float d.Obs.Profile.major_words);
    Obs.Metrics.add m_minor_gcs d.Obs.Profile.minor_collections;
    Obs.Metrics.add m_major_gcs d.Obs.Profile.major_collections;
    x
  end

let domain_count () =
  match Sys.getenv_opt "REPRO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some d when d >= 1 -> d
      | Some _ | None -> 1)
  | None -> min 8 (Domain.recommended_domain_count ())

let chunked ?domains ~n ~worker ~merge init =
  let domains =
    match domains with Some d -> max 1 d | None -> domain_count ()
  in
  Obs.Metrics.incr m_invocations;
  if n <= 0 then init
  else if domains = 1 || n < 4 then
    merge init (instrumented (fun () -> worker ~lo:0 ~hi:n))
  else begin
    let k = min domains n in
    let chunk = (n + k - 1) / k in
    let handles =
      List.init k (fun i ->
          let lo = i * chunk in
          let hi = min n (lo + chunk) in
          Domain.spawn (fun () -> instrumented (fun () -> worker ~lo ~hi)))
    in
    (* Join in chunk order: the fold is deterministic. *)
    List.fold_left (fun acc h -> merge acc (Domain.join h)) init handles
  end

let strided ?domains ~n ~worker ~merge init =
  let domains =
    match domains with Some d -> max 1 d | None -> domain_count ()
  in
  Obs.Metrics.incr m_invocations;
  if n <= 0 then init
  else if domains = 1 || n < 4 then
    merge init (instrumented (fun () -> worker ~start:0 ~step:1))
  else begin
    let k = min domains n in
    let handles =
      List.init k (fun i ->
          Domain.spawn (fun () -> instrumented (fun () -> worker ~start:i ~step:k)))
    in
    (* Join in stride order: the fold order is fixed, so determinism only
       needs the merge to be insensitive to how items were partitioned. *)
    List.fold_left (fun acc h -> merge acc (Domain.join h)) init handles
  end

let map_array ?domains f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* [f arr.(0)] seeds the output array and is evaluated exactly once,
       on the calling domain; the workers then fill slots 1..n-1 (the
       chunked range is shifted up by one). [out] is shared across the
       workers by construction, but each writes a disjoint [lo+1..hi]
       slice — the strided-disjoint-writes pattern brokercheck's
       domain-safety rule blesses via the owned annotation. *)
    let[@brokercheck.owned] out = Array.make n (f arr.(0)) in
    let _ =
      chunked ?domains ~n:(n - 1)
        ~worker:(fun ~lo ~hi ->
          for i = lo + 1 to hi do
            out.(i) <- f arr.(i)
          done)
        ~merge:(fun () () -> ())
        ()
    in
    out
  end
