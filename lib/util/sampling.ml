let without_replacement rng ~n ~k =
  if k < 0 || n < 0 || k > n then invalid_arg "Sampling.without_replacement";
  (* Floyd's algorithm: k iterations, O(k) expected set operations. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let t = Xrandom.int rng (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun v () ->
      out.(!i) <- v;
      incr i)
    chosen;
  Array.sort Int.compare out;
  out

let reservoir rng ~k seq =
  if k <= 0 then invalid_arg "Sampling.reservoir";
  let buf = Array.make k None in
  let seen = ref 0 in
  Seq.iter
    (fun x ->
      if !seen < k then buf.(!seen) <- Some x
      else begin
        let j = Xrandom.int rng (!seen + 1) in
        if j < k then buf.(j) <- Some x
      end;
      incr seen)
    seq;
  let size = min !seen k in
  Array.init size (fun i ->
      match buf.(i) with Some x -> x | None -> assert false)

let weighted_index rng weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0.0 then invalid_arg "Sampling.weighted_index: negative weight";
        acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Sampling.weighted_index: zero total weight";
  let target = Xrandom.float rng total in
  let acc = ref 0.0 in
  let result = ref (Array.length weights - 1) in
  (try
     for i = 0 to Array.length weights - 1 do
       acc := !acc +. weights.(i);
       if target < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let weighted_alias weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampling.weighted_alias: empty weights";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Sampling.weighted_alias: zero total weight";
  let prob = Array.make n 0.0 in
  let alias = Array.make n 0 in
  let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
    if scaled.(l) < 1.0 then Stack.push l small else Stack.push l large
  done;
  Stack.iter (fun i -> prob.(i) <- 1.0) small;
  Stack.iter (fun i -> prob.(i) <- 1.0) large;
  fun rng ->
    let i = Xrandom.int rng n in
    if Xrandom.float rng 1.0 < prob.(i) then i else alias.(i)
