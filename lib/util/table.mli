(** Aligned plain-text tables: pure row/column data plus a string
    renderer.

    Every table/figure reproduction renders through this module (via the
    [Broker_report.Report_text] backend) so the bench output is uniform
    and diffable. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers; alignment defaults to [Right] for
    cells that parse as numbers, [Left] otherwise. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the headers. *)

val add_rule : t -> unit
(** Insert a horizontal separator at this position. *)

val render : t -> string
(** The formatted table, newline terminated. *)

val cell_float : ?decimals:int -> float -> string
val cell_pct : ?decimals:int -> float -> string
(** [cell_pct x] renders the fraction [x] as a percentage string. *)

val cell_int : int -> string
