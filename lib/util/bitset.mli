(** Fixed-capacity bit sets over the integers [0 .. capacity-1].

    Used pervasively for broker sets and coverage bookkeeping where the
    universe is the vertex set of a graph. *)

type t

val create : int -> t
(** [create n] is the empty set over universe size [n]. *)

val capacity : t -> int
(** Universe size the set was created with. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val unsafe_mem : t -> int -> bool
(** {!mem} without the bounds check — for hot inner loops whose index is
    already known to be in [0 .. capacity-1] (e.g. a CSR neighbor id). Out
    of range is undefined behavior. *)

val unsafe_add : t -> int -> unit
(** {!add} without the bounds check; same contract as {!unsafe_mem}. *)

val cardinal : t -> int
(** Number of members; O(words). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all members. *)

val copy : t -> t

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val to_array : t -> int array

val union_into : into:t -> t -> unit
(** [union_into ~into s] adds every member of [s] to [into]. Capacities must
    match. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection; capacities must match. *)

val equal : t -> t -> bool

(** {1 Word-level access}

    The packed representation itself, for word-parallel kernels (the
    MS-BFS engine packs one BFS lane per bit and advances all of them
    with word ops) and for counting without per-bit loops. *)

val bits_per_word : int
(** Bits packed per word: 63 (OCaml native ints). Member [i] lives in
    word [i / bits_per_word] at bit [i mod bits_per_word]. *)

val popcount : int -> int
(** Set bits in one word, over the full 63-bit pattern (sign bit
    included — [popcount (-1) = 63]). Branch-free SWAR, constant time;
    the building block of every per-level tally in the MS-BFS engine. *)

val num_words : t -> int
(** Words backing the set ([capacity]-derived, never 0). *)

val word : t -> int -> int
(** [word t w]: the [w]-th packed word.
    @raise Invalid_argument outside [0 .. num_words t - 1]. *)

val unsafe_word : t -> int -> int
(** {!word} without the bounds check; same contract as {!unsafe_mem}. *)
