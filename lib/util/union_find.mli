(** Disjoint-set forest with union by size and path compression.

    Tracks component sizes, the number of components and the largest
    component, which the MaxSubGraph-Greedy heuristic queries each step. *)

type t

val create : int -> t
(** [create n] has elements [0..n-1], each in its own singleton. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two components. Returns [true] if they were distinct. *)

val same : t -> int -> int -> bool
val size : t -> int -> int
(** Size of the component containing the element. *)

val count : t -> int
(** Number of components. *)

val max_component_size : t -> int
