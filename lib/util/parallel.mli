(** Deterministic fork-join parallelism over OCaml 5 domains.

    The connectivity estimator runs hundreds of independent BFS traversals
    over an immutable graph; this module fans those out over domains.
    Work is split into fixed contiguous chunks and the per-chunk
    accumulators are merged in chunk order, so results are bit-identical
    to the sequential run regardless of scheduling.

    The domain budget comes from [Domain.recommended_domain_count],
    clamped to 8 and overridable with the [REPRO_DOMAINS] environment
    variable (set [REPRO_DOMAINS=1] to force sequential execution). *)

val domain_count : unit -> int

val chunked :
  ?domains:int ->
  n:int ->
  worker:(lo:int -> hi:int -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc ->
  'acc
(** [chunked ~n ~worker ~merge init] partitions [0..n-1] into [domains]
    contiguous chunks, runs [worker ~lo ~hi] on each (half-open ranges) in
    parallel, and folds the results with [merge] in chunk order starting
    from [init]. [worker] must not mutate shared state. Runs sequentially
    when [n] is small or only one domain is available. *)

val strided :
  ?domains:int ->
  n:int ->
  worker:(start:int -> step:int -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc ->
  'acc
(** [strided ~n ~worker ~merge init] is {!chunked} with interleaved
    assignment: domain [i] of [k] processes items [i, i+k, i+2k, ...] (the
    sequential fallback is [worker ~start:0 ~step:1]), and results merge in
    stride order. Use it when per-item cost is very uneven — e.g. BFS
    sources whose traversal size varies by orders of magnitude, where
    contiguous chunks can leave most domains idle behind one hot chunk.

    Striding changes which items land in which accumulator, so (unlike
    {!chunked}) bit-identical results across [REPRO_DOMAINS] settings
    additionally require the per-item accumulation to be commutative and
    associative — integer counters and histograms qualify, float sums do
    not. [worker] must not mutate shared state. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; [f] must be pure w.r.t. shared state. *)
