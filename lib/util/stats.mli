(** Descriptive statistics used by the evaluation harness: moments,
    quantiles, correlation coefficients, histograms and empirical CDFs. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q] in [\[0,1\]], linear interpolation between order
    statistics. The input need not be sorted. *)

val median : float array -> float

val pearson : float array -> float array -> float
(** Pearson product-moment correlation; 0 when either side is constant.
    @raise Invalid_argument on length mismatch. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (Pearson on mid-ranks). *)

val ranks : float array -> float array
(** Mid-ranks (ties averaged), 1-based. *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram over the data range. *)

val cdf : float array -> (float * float) list
(** Empirical CDF as sorted [(x, F(x))] points, [F] in [\[0,1\]]. *)

val cdf_at : float array -> float -> float
(** [cdf_at xs x] = fraction of samples [<= x]. *)

val linear_fit : float array -> float array -> float * float
(** Least-squares [(slope, intercept)].
    @raise Invalid_argument on length mismatch or fewer than 2 points. *)

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
