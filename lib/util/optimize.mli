(** Scalar optimization routines for the economic model (Section 7): the
    Stackelberg inner/outer stages and the Nash bargaining objective maximize
    continuous concave functions over intervals. *)

val golden_section_max : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float * float
(** [golden_section_max f ~lo ~hi] returns the maximizing pair (x, f x) of a unimodal
    [f] over [\[lo, hi\]]. [tol] is the bracket width at termination
    (default [1e-9]).
    @raise Invalid_argument when [hi < lo]. *)

val bisect_root : ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float -> float
(** Root of a continuous [f] with [f lo] and [f hi] of opposite signs.
    @raise Invalid_argument when the bracket does not straddle a sign
    change. *)

val grid_max : (float -> float) -> lo:float -> hi:float -> steps:int -> float * float
(** Coarse grid search; robust against non-unimodal objectives, typically
    followed by [golden_section_max] on the winning cell. *)

val grid_then_golden : ?steps:int -> ?tol:float -> (float -> float) -> lo:float -> hi:float -> float * float
(** Grid search to localize the best cell, then golden-section refinement
    within that cell. Handles objectives that are only piecewise unimodal
    (the Stackelberg outer problem). *)
