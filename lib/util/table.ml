type align = Left | Right

type line = Row of string list | Rule

type t = { headers : string list; mutable lines : line list }

let create ~headers = { headers; lines = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.lines <- Row row :: t.lines

let add_rule t = t.lines <- Rule :: t.lines

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = '%' || c = 'e' || c = ','
         || c = 'x')
       s

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let lines = List.rev t.lines in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure t.headers;
  List.iter (function Row r -> measure r | Rule -> ()) lines;
  (* A column is right-aligned when every body cell looks numeric. One
     pass over the rows instead of List.nth per (row, column) pair, which
     was quadratic in the column count. *)
  let numeric = Array.make ncols true in
  List.iter
    (function
      | Rule -> ()
      | Row r ->
          List.iteri
            (fun i cell ->
              if not (looks_numeric cell || cell = "") then
                numeric.(i) <- false)
            r)
    lines;
  let aligns =
    Array.init ncols (fun i ->
        if numeric.(i) && lines <> [] then Right else Left)
  in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  emit_row t.headers;
  rule ();
  List.iter (function Row r -> emit_row r | Rule -> rule ()) lines;
  Buffer.contents buf

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct ?(decimals = 2) x = Printf.sprintf "%.*f%%" decimals (100.0 *. x)
let cell_int = string_of_int
