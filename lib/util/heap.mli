(** Resizable binary heap of [int] payloads keyed by [float] priorities.

    The heap does not support in-place decrease-key; algorithms that need it
    (Dijkstra, CELF lazy greedy) push duplicates and discard stale entries on
    pop, which is asymptotically equivalent and much simpler. *)

type order = Min | Max

type t

val create : ?initial_capacity:int -> order -> t

val size : t -> int
val is_empty : t -> bool

val push : t -> priority:float -> int -> unit

val peek : t -> (float * int) option
(** Best (priority, payload) without removing it. *)

val pop : t -> (float * int) option
(** Remove and return the best entry: smallest priority for [Min], largest for
    [Max]. *)

val pop_exn : t -> float * int
(** @raise Invalid_argument on an empty heap. *)

val clear : t -> unit
