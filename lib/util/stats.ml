let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  if n = 0 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)
  end

let ranks xs =
  let n = Array.length xs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Float.compare xs.(a) xs.(b)) idx;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    (* Find the extent of the tie group starting at !i. *)
    let j = ref !i in
    while !j + 1 < n && xs.(idx.(!j + 1)) = xs.(idx.(!i)) do incr j done;
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then { lo = 0.0; hi = 0.0; counts = Array.make bins 0 }
  else begin
    let lo = Array.fold_left min xs.(0) xs in
    let hi = Array.fold_left max xs.(0) xs in
    let counts = Array.make bins 0 in
    let width = (hi -. lo) /. float_of_int bins in
    let bin_of x =
      if width = 0.0 then 0
      else min (bins - 1) (int_of_float ((x -. lo) /. width))
    in
    Array.iter (fun x -> counts.(bin_of x) <- counts.(bin_of x) + 1) xs;
    { lo; hi; counts }
  end

let cdf xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  List.init n (fun i -> (sorted.(i), float_of_int (i + 1) /. float_of_int n))

let cdf_at xs x =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let count = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 xs in
    float_of_int count /. float_of_int n
  end

let linear_fit xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_fit: need at least 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxy := !sxy +. (dx *. (ys.(i) -. my));
    sxx := !sxx +. (dx *. dx)
  done;
  if !sxx = 0.0 then (0.0, my)
  else begin
    let slope = !sxy /. !sxx in
    (slope, my -. (slope *. mx))
  end

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array";
  {
    n = Array.length xs;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
    mean = mean xs;
    stddev = stddev xs;
    p50 = quantile xs 0.5;
    p90 = quantile xs 0.9;
    p99 = quantile xs 0.99;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.4g max=%.4g mean=%.4g sd=%.4g p50=%.4g p90=%.4g p99=%.4g" s.n
    s.min s.max s.mean s.stddev s.p50 s.p90 s.p99
