(** Breadth-first search variants.

    The broker evaluation repeatedly runs BFS over "restricted" graphs — e.g.
    the edge [(u,v)] is traversable only when at least one endpoint is a
    broker. Rather than materializing these subgraphs, the traversals below
    accept edge/vertex predicates and filter on the fly, which keeps every
    connectivity query at O(|V| + |E|). *)

val distances : Graph.t -> int -> int array
(** [distances g src] gives hop distances from [src]; [-1] marks unreachable
    vertices. *)

val distances_bounded : Graph.t -> max_depth:int -> int -> int array
(** Stop expanding beyond [max_depth] hops. *)

val distances_filtered :
  Graph.t -> edge_ok:(int -> int -> bool) -> int -> int array
(** [distances_filtered g ~edge_ok src]: the step x→y is taken only when
    [edge_ok x y] holds. [edge_ok] need not be symmetric (directional routing
    uses an asymmetric predicate). *)

val distances_multi : Graph.t -> int list -> int array
(** Distance to the nearest of several sources. *)

val reachable_count : Graph.t -> int -> int
(** Vertices reachable from [src], including [src]. *)

val farthest : Graph.t -> int -> int * int
(** [(vertex, distance)] of a farthest reachable vertex — one arm of the
    double-sweep diameter estimate. *)

val parents : Graph.t -> int -> int array
(** BFS tree parents from [src] ([-1] for the source and unreachable
    vertices); used to extract shortest paths for Algorithm 2's connector
    selection. *)

val path_to : parents:int array -> src:int -> int -> int list
(** Reconstruct the path [src..dst] from a [parents] array. Returns [[]] when
    [dst] was not reached. *)
