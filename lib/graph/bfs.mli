(** Breadth-first search variants.

    The broker evaluation repeatedly runs BFS over "restricted" graphs — e.g.
    the edge [(u,v)] is traversable only when at least one endpoint is a
    broker. Two strategies are provided:

    - the generic traversals below accept an [edge_ok] predicate and filter
      on the fly — no setup cost, one O(|V| + |E|) pass, the right tool for
      a single query (and the reference implementation the engine is
      property-tested against);
    - the workspace engine at the bottom runs closure-free
      direction-optimizing BFS over a prematerialized graph (usually a
      {!Projected} dominated subgraph) with zero per-run allocation — the
      right tool when many sources share one restriction. *)

val distances : Graph.t -> int -> int array
(** [distances g src] gives hop distances from [src]; [-1] marks unreachable
    vertices. *)

val distances_bounded : Graph.t -> max_depth:int -> int -> int array
(** Stop expanding beyond [max_depth] hops. *)

val distances_filtered :
  Graph.t -> edge_ok:(int -> int -> bool) -> int -> int array
(** [distances_filtered g ~edge_ok src]: the step x→y is taken only when
    [edge_ok x y] holds. [edge_ok] need not be symmetric (directional routing
    uses an asymmetric predicate). *)

val distances_multi : Graph.t -> int list -> int array
(** Distance to the nearest of several sources. *)

val reachable_count : Graph.t -> int -> int
(** Vertices reachable from [src], including [src]. *)

val farthest : Graph.t -> int -> int * int
(** [(vertex, distance)] of a farthest reachable vertex — one arm of the
    double-sweep diameter estimate. *)

val parents : Graph.t -> int -> int array
(** BFS tree parents from [src] ([-1] for the source and unreachable
    vertices); used to extract shortest paths for Algorithm 2's connector
    selection. *)

val path_to : parents:int array -> src:int -> int -> int list
(** Reconstruct the path [src..dst] from a [parents] array. Returns [[]] when
    [dst] was not reached. *)

(** {1 Direction-optimizing BFS engine}

    A {!workspace} owns every scratch array a BFS run needs (epoch-stamped
    distances, frontier queues, per-level counters). Allocate one per
    domain, then {!run} it once per source: runs reuse the arrays with an
    epoch bump instead of clearing them, so the marginal cost of a run is
    exactly the traversal. Queries ({!distance}, {!level_count}, ...) refer
    to the most recent {!run} and are invalidated by the next one.

    Expansion switches between conventional top-down frontier scans and
    bottom-up probing (Beamer's direction-optimizing BFS): once the
    frontier's out-edges dominate the unexplored edge set — which on
    broker-dominated graphs happens one or two hops out of the high-degree
    core — each still-unsettled vertex instead scans its own adjacency for
    a frontier member and stops at the first hit. Both directions settle
    identical vertices at identical depths, so results never depend on the
    switching heuristic. *)

type workspace
(** Reusable scratch for {!run}. Not thread-safe: confine each workspace to
    one domain. *)

val workspace : unit -> workspace
(** An empty workspace; arrays are sized lazily by the first {!run} (and
    regrown if a later run presents a larger graph). *)

val run : workspace -> Graph.t -> ?max_depth:int -> int -> unit
(** [run ws g src] computes single-source hop distances from [src] over
    [g], leaving the results in [ws]. [max_depth] (default unbounded)
    stops expanding beyond that many hops.
    @raise Invalid_argument when [src] is outside [0 .. n-1]. *)

val run_view : workspace -> View.t -> ?max_depth:int -> int -> unit
(** {!run} over a {!View.t} — the same engine reading through the
    base-or-overlay segment selector, so dynamic-topology callers
    traverse a {!Delta} overlay without compacting it first. *)

val distance : workspace -> int -> int
(** Distance of a vertex in the last run; [-1] when unreached. *)

val reached : workspace -> int
(** Vertices settled by the last run, source included. *)

val max_level : workspace -> int
(** Deepest level settled by the last run (0 when only the source). *)

val level_count : workspace -> int -> int
(** [level_count ws d]: vertices settled at depth exactly [d], for
    [d] in [0 .. max_level ws] — the per-hop histogram the connectivity
    curves are built from, with no O(n) distance scan.
    @raise Invalid_argument outside that range. *)

val distances_into : workspace -> int array -> unit
(** Materialize the last run's distances ([-1] = unreached) into a caller
    array, [Array.length]-clamped — the bridge back to the
    [distances_filtered]-style API for tests and one-off callers. *)
