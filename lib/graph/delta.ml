module Bitset = Broker_util.Bitset
module Obs = Broker_obs

(* Announce/withdraw probes: all commutative int counters over a
   single-writer structure, so they diff cleanly run-to-run like the
   bfs.* family. *)
let m_announced = Obs.Metrics.counter "topo.delta.announced"
let m_withdrawn = Obs.Metrics.counter "topo.delta.withdrawn"
let m_noops = Obs.Metrics.counter "topo.delta.noops"
let m_views = Obs.Metrics.counter "topo.delta.views_built"
let m_compactions = Obs.Metrics.counter "topo.delta.compactions"

(* A mutable edge-set diff against an immutable base CSR:

     - withdrawals of base edges are tombstones over base arc positions
       (one bit per directed arc, so a withdraw is two bit sets and two
       binary searches);
     - announcements of new edges live in per-vertex sorted arrays
       ([added]), kept strictly disjoint from the effective base
       segment — re-announcing a tombstoned base edge clears its
       tombstone instead of duplicating it in [added].

   [dirty.(u)] marks vertices whose effective segment differs (or ever
   differed) from the base; only those get a materialized override
   segment when a {!View.t} is built. The invariants keep every
   effective segment sorted, duplicate-free and self-loop-free — the
   same canonical form [Graph.of_edges] produces — which is what makes
   {!compact} bitwise-equal to a from-scratch rebuild. *)
type t = {
  base : Graph.t;
  n : int;
  added : int array array;  (* sorted strictly-increasing, per vertex *)
  tomb : Bitset.t;  (* withdrawn base arc positions *)
  tombed : int array;  (* per-vertex tombstone count *)
  dirty : bool array;
  mutable added_arcs : int;
  mutable tombed_arcs : int;
  mutable edits : int;  (* successful announce/withdraw operations *)
  mutable cache : View.t option;  (* memoized until the next mutation *)
}

let no_added : int array = [||]

let create base =
  let n = Graph.n base in
  {
    base;
    n;
    added = Array.make n no_added;
    tomb = Bitset.create (Graph.arcs base);
    tombed = Array.make n 0;
    dirty = Array.make n false;
    added_arcs = 0;
    tombed_arcs = 0;
    edits = 0;
    cache = None;
  }

let base t = t.base
let n t = t.n
let edits t = t.edits
let added_edges t = t.added_arcs / 2
let removed_edges t = t.tombed_arcs / 2

let is_dirty t u =
  if u < 0 || u >= t.n then invalid_arg "Delta.is_dirty: vertex out of range";
  t.dirty.(u)

(* Arc position of [v] inside [u]'s base segment, or -1. *)
let base_pos t u v =
  let off = Graph.csr_off t.base and adj = Graph.csr_adj t.base in
  let lo = ref off.(u) and hi = ref (off.(u + 1) - 1) in
  let pos = ref (-1) in
  while !pos < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = adj.(mid) in
    if w = v then pos := mid else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !pos

let added_mem t u v =
  let a = t.added.(u) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = a.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

(* Announced edges stay small relative to the base, so sorted-array
   insertion (fresh array per insert) is cheaper and friendlier to the
   merge in [materialize] than any tree would be. *)
let insert_sorted a v =
  let len = Array.length a in
  let out = Array.make (len + 1) v in
  let i = ref 0 in
  while !i < len && a.(!i) < v do
    out.(!i) <- a.(!i);
    incr i
  done;
  Array.blit a !i out (!i + 1) (len - !i);
  out

let remove_sorted a v =
  let len = Array.length a in
  let out = Array.make (len - 1) 0 in
  let j = ref 0 in
  for i = 0 to len - 1 do
    if a.(i) <> v then begin
      out.(!j) <- a.(i);
      incr j
    end
  done;
  out

let check_pair t name u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg ("Delta." ^ name ^ ": endpoint out of range")

let touch t u v =
  t.dirty.(u) <- true;
  t.dirty.(v) <- true;
  t.edits <- t.edits + 1;
  t.cache <- None

let add_edge t u v =
  check_pair t "add_edge" u v;
  if u = v then begin
    Obs.Metrics.incr m_noops;
    false
  end
  else begin
    let p = base_pos t u v in
    if p >= 0 then
      if Bitset.mem t.tomb p then begin
        (* Re-announce of a withdrawn base edge: clear both tombstones. *)
        let q = base_pos t v u in
        Bitset.remove t.tomb p;
        Bitset.remove t.tomb q;
        t.tombed.(u) <- t.tombed.(u) - 1;
        t.tombed.(v) <- t.tombed.(v) - 1;
        t.tombed_arcs <- t.tombed_arcs - 2;
        touch t u v;
        Obs.Metrics.incr m_announced;
        true
      end
      else begin
        Obs.Metrics.incr m_noops;
        false
      end
    else if added_mem t u v then begin
      Obs.Metrics.incr m_noops;
      false
    end
    else begin
      t.added.(u) <- insert_sorted t.added.(u) v;
      t.added.(v) <- insert_sorted t.added.(v) u;
      t.added_arcs <- t.added_arcs + 2;
      touch t u v;
      Obs.Metrics.incr m_announced;
      true
    end
  end

let remove_edge t u v =
  check_pair t "remove_edge" u v;
  if u = v then begin
    Obs.Metrics.incr m_noops;
    false
  end
  else if added_mem t u v then begin
    t.added.(u) <- remove_sorted t.added.(u) v;
    t.added.(v) <- remove_sorted t.added.(v) u;
    t.added_arcs <- t.added_arcs - 2;
    touch t u v;
    Obs.Metrics.incr m_withdrawn;
    true
  end
  else begin
    let p = base_pos t u v in
    if p >= 0 && not (Bitset.mem t.tomb p) then begin
      let q = base_pos t v u in
      Bitset.add t.tomb p;
      Bitset.add t.tomb q;
      t.tombed.(u) <- t.tombed.(u) + 1;
      t.tombed.(v) <- t.tombed.(v) + 1;
      t.tombed_arcs <- t.tombed_arcs + 2;
      touch t u v;
      Obs.Metrics.incr m_withdrawn;
      true
    end
    else begin
      Obs.Metrics.incr m_noops;
      false
    end
  end

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else if added_mem t u v then true
  else
    let p = base_pos t u v in
    p >= 0 && not (Bitset.mem t.tomb p)

let degree t u =
  if u < 0 || u >= t.n then invalid_arg "Delta.degree: vertex out of range";
  Graph.degree t.base u - t.tombed.(u) + Array.length t.added.(u)

let arcs t = Graph.arcs t.base - t.tombed_arcs + t.added_arcs
let edges t = arcs t / 2

(* Merge [u]'s effective segment (base minus tombstones, plus added)
   into [dst] starting at [start]; both inputs are sorted and disjoint,
   so this is a plain two-finger merge. Returns the write cursor. *)
let merge_into t u dst start =
  let off = Graph.csr_off t.base and adj = Graph.csr_adj t.base in
  let hi = off.(u + 1) in
  let add = t.added.(u) in
  let jn = Array.length add in
  let i = ref off.(u) and j = ref 0 and w = ref start in
  while !i < hi || !j < jn do
    if !i < hi && Bitset.mem t.tomb !i then incr i
    else if !j >= jn || (!i < hi && adj.(!i) < add.(!j)) then begin
      dst.(!w) <- adj.(!i);
      incr i;
      incr w
    end
    else begin
      dst.(!w) <- add.(!j);
      incr j;
      incr w
    end
  done;
  !w

let materialize t =
  let off = Graph.csr_off t.base and adj = Graph.csr_adj t.base in
  let xoff = Array.make (t.n + 1) 0 in
  for u = 0 to t.n - 1 do
    xoff.(u + 1) <-
      (xoff.(u)
      + if t.dirty.(u) then off.(u + 1) - off.(u) - t.tombed.(u)
                            + Array.length t.added.(u)
        else 0)
  done;
  let xadj = Array.make xoff.(t.n) 0 in
  for u = 0 to t.n - 1 do
    if t.dirty.(u) then ignore (merge_into t u xadj xoff.(u))
  done;
  {
    View.n = t.n;
    arcs = arcs t;
    off;
    adj;
    overlaid = true;
    (* Snapshot the flags: a view must stay a correct picture of the
       edge set it was built from even after the delta mutates on — the
       incremental tracker diffs an old view against a new one. *)
    dirty = Array.copy t.dirty;
    xoff;
    xadj;
  }

let view t =
  match t.cache with
  | Some vw -> vw
  | None ->
      let vw =
        (* Cancelled-out deltas read straight from the base: correct
           because the effective edge set is exactly the base's. *)
        if t.added_arcs = 0 && t.tombed_arcs = 0 then View.of_graph t.base
        else materialize t
      in
      Obs.Metrics.incr m_views;
      t.cache <- Some vw;
      vw

let compact base t =
  if not (Graph.equal base t.base) then
    invalid_arg "Delta.compact: delta was built over a different base";
  let off = Graph.csr_off t.base and adj = Graph.csr_adj t.base in
  let noff = Array.make (t.n + 1) 0 in
  for u = 0 to t.n - 1 do
    noff.(u + 1) <-
      noff.(u) + off.(u + 1) - off.(u) - t.tombed.(u)
      + Array.length t.added.(u)
  done;
  let nadj = Array.make noff.(t.n) 0 in
  for u = 0 to t.n - 1 do
    if t.dirty.(u) then ignore (merge_into t u nadj noff.(u))
    else Array.blit adj off.(u) nadj noff.(u) (off.(u + 1) - off.(u))
  done;
  Obs.Metrics.incr m_compactions;
  Graph.of_csr_unchecked ~n:t.n ~off:noff ~adj:nadj
