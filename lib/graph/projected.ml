module B = Broker_util.Bitset
module Obs = Broker_obs

type t = { graph : Graph.t; brokers : B.t; broker_count : int }

let m_builds = Obs.Metrics.counter "projected.builds"
let m_arcs_kept = Obs.Metrics.counter "projected.arcs_kept"
let m_broker_verts = Obs.Metrics.counter "projected.broker_vertices"
let t_build = Obs.Trace.scope "projected.build"

(* The per-vertex counter and write cursor are single refs hoisted above
   the CSR sweeps and reset per vertex: the body is checked
   [@brokercheck.noalloc], so the O(n + m) fill path must not allocate
   per iteration (the arrays and result record before/after the loops
   are the tolerated O(1) setup). Adjacency is read through the
   base-or-overlay segment selector of {!View}, so a {!Delta} overlay
   projects without compacting first; base views take the CSR branch
   throughout. *)
let[@brokercheck.noalloc] project_view vw ~is_broker =
  let tr0 = Obs.Trace.enter () in
  let n = vw.View.n in
  let off = vw.View.off and adj = vw.View.adj in
  let ov = vw.View.overlaid in
  let dirty = vw.View.dirty and xoff = vw.View.xoff and xadj = vw.View.xadj in
  let brokers = B.create n in
  let broker_count = ref 0 in
  for v = 0 to n - 1 do
    if is_broker v then begin
      B.add brokers v;
      incr broker_count
    end
  done;
  (* Counting pass: a broker keeps its whole (already sorted) segment; a
     non-broker keeps exactly its broker neighbors. *)
  let poff = Array.make (n + 1) 0 in
  let c = ref 0 in
  for u = 0 to n - 1 do
    let du = ov && Array.unsafe_get dirty u in
    let a = if du then xadj else adj in
    let lo = if du then Array.unsafe_get xoff u else Array.unsafe_get off u in
    let hi =
      if du then Array.unsafe_get xoff (u + 1)
      else Array.unsafe_get off (u + 1)
    in
    let kept =
      if B.unsafe_mem brokers u then hi - lo
      else begin
        c := 0;
        for i = lo to hi - 1 do
          if B.unsafe_mem brokers (Array.unsafe_get a i) then incr c
        done;
        !c
      end
    in
    poff.(u + 1) <- poff.(u) + kept
  done;
  (* Fill pass. Filtering a sorted, duplicate-free, symmetric CSR with a
     symmetric edge predicate preserves all of those invariants, so the
     result can be wrapped without re-normalizing. *)
  let padj = Array.make poff.(n) 0 in
  let w = ref 0 in
  for u = 0 to n - 1 do
    let du = ov && Array.unsafe_get dirty u in
    let a = if du then xadj else adj in
    let lo = if du then Array.unsafe_get xoff u else Array.unsafe_get off u in
    let hi =
      if du then Array.unsafe_get xoff (u + 1)
      else Array.unsafe_get off (u + 1)
    in
    if B.unsafe_mem brokers u then Array.blit a lo padj poff.(u) (hi - lo)
    else begin
      w := poff.(u);
      for i = lo to hi - 1 do
        let v = Array.unsafe_get a i in
        if B.unsafe_mem brokers v then begin
          Array.unsafe_set padj !w v;
          incr w
        end
      done
    end
  done;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr m_builds;
    Obs.Metrics.add m_arcs_kept poff.(n);
    Obs.Metrics.add m_broker_verts !broker_count
  end;
  Obs.Trace.leave t_build tr0;
  { graph = Graph.of_csr_unchecked ~n ~off:poff ~adj:padj; brokers; broker_count = !broker_count }

(* Static-graph entry point: the view record is the only extra setup
   allocation, built once before the passes. *)
let[@brokercheck.noalloc] project g ~is_broker =
  project_view (View.of_graph g) ~is_broker

let graph t = t.graph
let is_broker t v = B.mem t.brokers v
let broker_count t = t.broker_count
let arcs t = 2 * Graph.m t.graph
