let shortest_paths ?(edge_ok = fun _ _ -> true) g ~weight src =
  let n = Graph.n g in
  if src < 0 || src >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Broker_util.Heap.create ~initial_capacity:64 Broker_util.Heap.Min in
  dist.(src) <- 0.0;
  Broker_util.Heap.push heap ~priority:0.0 src;
  let continue = ref true in
  while !continue do
    match Broker_util.Heap.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          (* Stale entries have d > dist.(u); skipping them is the lazy
             decrease-key. *)
          if d <= dist.(u) then
            Graph.iter_neighbors g u (fun v ->
                if (not settled.(v)) && edge_ok u v then begin
                  let w = weight u v in
                  if w < 0.0 then
                    invalid_arg "Dijkstra: negative edge weight";
                  let nd = dist.(u) +. w in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    parent.(v) <- u;
                    Broker_util.Heap.push heap ~priority:nd v
                  end
                end)
        end
  done;
  (dist, parent)

let shortest_path ?edge_ok g ~weight src dst =
  let dist, parent = shortest_paths ?edge_ok g ~weight src in
  if dist.(dst) = infinity then []
  else begin
    let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
    walk dst []
  end
