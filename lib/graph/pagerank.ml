let compute ?(damping = 0.85) ?(tol = 1e-10) ?(max_iter = 200) g =
  let n = Graph.n g in
  if n = 0 then [||]
  else begin
    let fn = float_of_int n in
    let rank = Array.make n (1.0 /. fn) in
    let next = Array.make n 0.0 in
    let iter = ref 0 in
    let delta = ref infinity in
    while !iter < max_iter && !delta > tol do
      Array.fill next 0 n 0.0;
      (* Push each vertex's rank share to its neighbors; dangling (isolated)
         mass is redistributed uniformly. *)
      let dangling = ref 0.0 in
      for u = 0 to n - 1 do
        let d = Graph.degree g u in
        if d = 0 then dangling := !dangling +. rank.(u)
        else begin
          let share = rank.(u) /. float_of_int d in
          Graph.iter_neighbors g u (fun v -> next.(v) <- next.(v) +. share)
        end
      done;
      let base = ((1.0 -. damping) /. fn) +. (damping *. !dangling /. fn) in
      delta := 0.0;
      for v = 0 to n - 1 do
        let nv = base +. (damping *. next.(v)) in
        delta := !delta +. abs_float (nv -. rank.(v));
        rank.(v) <- nv
      done;
      incr iter
    done;
    rank
  end

let top g ~k =
  let rank = compute g in
  let idx = Array.init (Graph.n g) (fun i -> i) in
  Array.sort (fun a b -> Float.compare rank.(b) rank.(a)) idx;
  Array.sub idx 0 (min k (Array.length idx))
