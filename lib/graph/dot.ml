let to_dot ?(name = "g") ?(vertex_attrs = fun _ -> []) ?(max_vertices = 5000) g =
  let n = Graph.n g in
  let keep =
    if n <= max_vertices then Array.make n true
    else begin
      let idx = Array.init n (fun i -> i) in
      Array.sort
        (fun a b -> Int.compare (Graph.degree g b) (Graph.degree g a))
        idx;
      let keep = Array.make n false in
      for i = 0 to max_vertices - 1 do
        keep.(idx.(i)) <- true
      done;
      keep
    end
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=point];\n";
  for v = 0 to n - 1 do
    if keep.(v) then begin
      let attrs = vertex_attrs v in
      if attrs <> [] then begin
        let body =
          String.concat ", "
            (List.map (fun (k, value) -> Printf.sprintf "%s=\"%s\"" k value) attrs)
        in
        Buffer.add_string buf (Printf.sprintf "  %d [%s];\n" v body)
      end
    end
  done;
  Graph.iter_edges g (fun u v ->
      if keep.(u) && keep.(v) then
        Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)
