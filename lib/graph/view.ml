(* A read-only adjacency view: either a bare CSR, or a CSR with a sparse
   per-vertex override. Traversal kernels (Bfs, Msbfs, Projected,
   Dominating) read through this record so the same zero-alloc inner
   loops serve both the static graph and a Delta overlay.

   The record is deliberately flat and public within the library: the
   hot loops select a vertex's segment with two array reads and a
   branch — no closure, no per-vertex allocation:

     let du = vw.overlaid && Array.unsafe_get vw.dirty u in
     let a  = if du then vw.xadj else vw.adj in
     let lo = if du then vw.xoff u else vw.off u ...

   Clean vertices read the base CSR untouched; dirty vertices read their
   materialized merged segment in [xoff]/[xadj]. For a base view
   ([overlaid = false]) the override arrays are shared empty arrays and
   the short-circuit on [overlaid] guarantees they are never indexed. *)

type t = {
  n : int;
  arcs : int;  (** directed arc count of the viewed graph *)
  off : int array;
  adj : int array;
  overlaid : bool;
  dirty : bool array;  (** vertex has an override segment *)
  xoff : int array;  (** override offsets; 0-length segment when clean *)
  xadj : int array;
}

let no_dirty : bool array = [||]
let no_off : int array = [||]
let no_adj : int array = [||]

let of_graph g =
  {
    n = Graph.n g;
    arcs = Graph.arcs g;
    off = Graph.csr_off g;
    adj = Graph.csr_adj g;
    overlaid = false;
    dirty = no_dirty;
    xoff = no_off;
    xadj = no_adj;
  }

let n t = t.n
let arcs t = t.arcs

(* Segment bounds for vertex [u]: base or override. *)
let seg t u =
  if t.overlaid && Array.unsafe_get t.dirty u then
    (t.xadj, t.xoff.(u), t.xoff.(u + 1))
  else (t.adj, t.off.(u), t.off.(u + 1))

let degree t u =
  if u < 0 || u >= t.n then invalid_arg "View.degree: vertex out of range";
  if t.overlaid && Array.unsafe_get t.dirty u then t.xoff.(u + 1) - t.xoff.(u)
  else t.off.(u + 1) - t.off.(u)

let iter_neighbors t u f =
  let a, lo, hi = seg t u in
  for i = lo to hi - 1 do
    f a.(i)
  done

let fold_neighbors t u f init =
  let a, lo, hi = seg t u in
  let acc = ref init in
  for i = lo to hi - 1 do
    acc := f !acc a.(i)
  done;
  !acc

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else begin
    let a, lo0, hi0 = seg t u in
    let lo = ref lo0 and hi = ref (hi0 - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = a.(mid) in
      if w = v then found := true else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter_edges t f =
  for u = 0 to t.n - 1 do
    let a, lo, hi = seg t u in
    for i = lo to hi - 1 do
      let v = a.(i) in
      if u < v then f u v
    done
  done
