(** Dijkstra shortest paths with arbitrary non-negative edge weights.

    Algorithm 2 of the paper quotes the Fibonacci-heap complexity
    [O(|V| log |V| + |E|)]; we use a binary heap with lazy deletion, which is
    within a log factor and faster in practice at this scale. *)

val shortest_paths :
  ?edge_ok:(int -> int -> bool) ->
  Graph.t ->
  weight:(int -> int -> float) ->
  int ->
  float array * int array
(** [shortest_paths g ~weight src] returns [(dist, parent)]. Unreachable
    vertices have [dist = infinity] and [parent = -1]. [edge_ok] filters
    traversable arcs (e.g. the broker-domination predicate), defaulting to
    all.
    @raise Invalid_argument on a negative weight. *)

val shortest_path :
  ?edge_ok:(int -> int -> bool) ->
  Graph.t ->
  weight:(int -> int -> float) ->
  int ->
  int ->
  int list
(** Vertex sequence of a shortest path [src..dst], or [[]] when
    unreachable. *)
