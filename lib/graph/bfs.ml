let generic g ~edge_ok ~max_depth srcs =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Bfs: source out of range";
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < max_depth then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && edge_ok u v then begin
            dist.(v) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
  done;
  dist

let all_edges _ _ = true

let distances g src = generic g ~edge_ok:all_edges ~max_depth:max_int [ src ]

let distances_bounded g ~max_depth src =
  generic g ~edge_ok:all_edges ~max_depth [ src ]

let distances_filtered g ~edge_ok src =
  generic g ~edge_ok ~max_depth:max_int [ src ]

let distances_multi g srcs = generic g ~edge_ok:all_edges ~max_depth:max_int srcs

let reachable_count g src =
  let dist = distances g src in
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist

let farthest g src =
  let dist = distances g src in
  let best_v = ref src and best_d = ref 0 in
  Array.iteri
    (fun v d ->
      if d > !best_d then begin
        best_v := v;
        best_d := d
      end)
    dist;
  (!best_v, !best_d)

let parents g src =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  seen.(src) <- true;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  parent

let path_to ~parents ~src dst =
  if src = dst then [ src ]
  else if parents.(dst) < 0 then []
  else begin
    let rec walk v acc =
      if v = src then src :: acc
      else begin
        let p = parents.(v) in
        if p < 0 then [] else walk p (v :: acc)
      end
    in
    walk dst []
  end
