let generic g ~edge_ok ~max_depth srcs =
  let n = Graph.n g in
  (* Validate every source before touching any state: a bad source must not
     leave earlier sources enqueued in a half-initialized traversal for
     callers that catch the exception. *)
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Bfs: source out of range")
    srcs;
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    let du = dist.(u) in
    if du < max_depth then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && edge_ok u v then begin
            dist.(v) <- du + 1;
            queue.(!tail) <- v;
            incr tail
          end)
  done;
  dist

let all_edges _ _ = true

let distances g src = generic g ~edge_ok:all_edges ~max_depth:max_int [ src ]

let distances_bounded g ~max_depth src =
  generic g ~edge_ok:all_edges ~max_depth [ src ]

let distances_filtered g ~edge_ok src =
  generic g ~edge_ok ~max_depth:max_int [ src ]

let distances_multi g srcs = generic g ~edge_ok:all_edges ~max_depth:max_int srcs

let reachable_count g src =
  let dist = distances g src in
  Array.fold_left (fun acc d -> if d >= 0 then acc + 1 else acc) 0 dist

let farthest g src =
  let dist = distances g src in
  let best_v = ref src and best_d = ref 0 in
  Array.iteri
    (fun v d ->
      if d > !best_d then begin
        best_v := v;
        best_d := d
      end)
    dist;
  (!best_v, !best_d)

let parents g src =
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  seen.(src) <- true;
  queue.(!tail) <- src;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  parent

let path_to ~parents ~src dst =
  if src = dst then [ src ]
  else if parents.(dst) < 0 then []
  else begin
    let rec walk v acc =
      if v = src then src :: acc
      else begin
        let p = parents.(v) in
        if p < 0 then [] else walk p (v :: acc)
      end
    in
    walk dst []
  end

(* ------------------------------------------------------------------ *)
(* Direction-optimizing BFS over a reusable workspace                  *)
(* ------------------------------------------------------------------ *)

(* The connectivity evaluators run one BFS per source over the same
   (projected) graph, for hundreds of sources. A [workspace] holds every
   scratch array those runs need; successive runs reuse it with an epoch
   bump instead of reallocating or clearing, so a full evaluation performs
   O(1) allocations per domain rather than O(sources) arrays of n ints.

   A vertex [v] is settled in the current run iff [stamp.(v) = epoch];
   [dist.(v)] is only meaningful under that guard. The frontier at depth
   [d] is exactly the settled vertices with [dist.(v) = d], which lets the
   bottom-up sweep test frontier membership with two array reads and no
   separate frontier bitset to build or clear. *)

type workspace = {
  mutable cap : int;  (* arrays below are sized for [cap] vertices *)
  mutable epoch : int;
  mutable stamp : int array;  (* stamp.(v) = epoch  <=>  v settled *)
  mutable dist : int array;  (* valid only under the stamp guard *)
  mutable q_cur : int array;  (* current frontier, as a vertex queue *)
  mutable q_next : int array;  (* next frontier being produced *)
  mutable levels : int array;  (* levels.(d) = vertices settled at depth d *)
  mutable max_level : int;  (* levels valid for 0 .. max_level *)
  mutable settled : int;  (* total settled, source included *)
}

let workspace () =
  {
    cap = 0;
    epoch = 0;
    stamp = [||];
    dist = [||];
    q_cur = [||];
    q_next = [||];
    levels = [||];
    max_level = 0;
    settled = 0;
  }

let ensure ws n =
  if ws.cap < n then begin
    ws.cap <- n;
    ws.stamp <- Array.make n 0;
    ws.dist <- Array.make n 0;
    ws.q_cur <- Array.make n 0;
    ws.q_next <- Array.make n 0;
    ws.levels <- Array.make (n + 1) 0;
    (* Fresh stamps are all 0; restarting the epoch below keeps the
       guard [stamp.(v) = epoch] false until a vertex is settled. *)
    ws.epoch <- 0
  end

(* Beamer-style switching thresholds: expand bottom-up once the frontier's
   out-edges exceed 1/alpha of the edges still incident to unsettled
   vertices; fall back to top-down when the frontier shrinks below
   n/beta. The choice only affects speed — both directions settle the same
   vertices at the same depths — so distances (and everything derived from
   them) are identical whichever steps run bottom-up. *)
let alpha = 14
let beta = 24

(* Observability probes (Broker_obs): all counters are commutative int
   sums, so totals are REPRO_DOMAINS-independent and diffable; per-level
   tallies accumulate in locals and flush once per run, keeping the
   disabled-mode cost to one flag check per level. *)
module Obs = Broker_obs

let m_runs = Obs.Metrics.counter "bfs.runs"
let m_levels_td = Obs.Metrics.counter "bfs.levels.top_down"
let m_levels_bu = Obs.Metrics.counter "bfs.levels.bottom_up"
let m_switches = Obs.Metrics.counter "bfs.direction_switches"
let m_arcs = Obs.Metrics.counter "bfs.frontier_arcs"
let m_settled = Obs.Metrics.counter "bfs.settled"
let h_frontier = Obs.Metrics.histogram "bfs.frontier_size"
let t_run = Obs.Trace.scope "bfs.run"
let t_level_td = Obs.Trace.scope "bfs.frontier.top_down"
let t_level_bu = Obs.Trace.scope "bfs.frontier.bottom_up"

(* Degrees are read inline ([off.(v+1) - off.(v)]) rather than through a
   local [deg] helper: the body is checked [@brokercheck.noalloc] and a
   helper capturing [off] would cost a closure block per run.

   The engine reads adjacency through a {!View.t}: per vertex, a flag
   test selects the base CSR segment or the delta override segment (two
   array reads and a branch — no closure, no dispatch). For base views
   [ov] is false and the short-circuit keeps the static path's inner
   loops identical to the historical CSR-only engine. *)
let[@brokercheck.noalloc] run_view ws vw ?(max_depth = max_int) src =
  let n = vw.View.n in
  if src < 0 || src >= n then invalid_arg "Bfs: source out of range";
  ensure ws n;
  ws.epoch <- ws.epoch + 1;
  let epoch = ws.epoch in
  let off = vw.View.off and adj = vw.View.adj in
  let ov = vw.View.overlaid in
  let dirty = vw.View.dirty and xoff = vw.View.xoff and xadj = vw.View.xadj in
  let stamp = ws.stamp and dist = ws.dist and levels = ws.levels in
  stamp.(src) <- epoch;
  dist.(src) <- 0;
  levels.(0) <- 1;
  ws.max_level <- 0;
  ws.settled <- 1;
  let q_cur = ref ws.q_cur and q_next = ref ws.q_next in
  !q_cur.(0) <- src;
  let cur_n = ref 1 in
  let deg_src =
    if ov && Array.unsafe_get dirty src then
      Array.unsafe_get xoff (src + 1) - Array.unsafe_get xoff src
    else Array.unsafe_get off (src + 1) - Array.unsafe_get off src
  in
  (* Directed arcs still incident to unsettled vertices, and the frontier's
     total out-degree — the two sides of the switching heuristic. *)
  let edges_rest = ref (vw.View.arcs - deg_src) in
  let scout = ref deg_src in
  let bottom_up = ref false in
  let d = ref 0 in
  let tr0 = Obs.Trace.enter () in
  let lv_td = ref 0
  and lv_bu = ref 0
  and switches = ref 0
  and arcs_touched = ref 0
  and prev_dir = ref false in
  (* Loop scratch, hoisted so each level (and, for [probe]/[found], each
     bottom-up vertex probe) reuses the same refs instead of allocating
     fresh ones per iteration — [run] is checked noalloc. *)
  let next_n = ref 0 and next_scout = ref 0 in
  let probe = ref 0 and found = ref false in
  while !cur_n > 0 && !d < max_depth do
    if !bottom_up then begin
      if !cur_n * beta < n then bottom_up := false
    end
    else if !scout * alpha > !edges_rest then bottom_up := true;
    if Obs.Control.enabled () then begin
      if !bottom_up then incr lv_bu else incr lv_td;
      if !d > 0 && !bottom_up <> !prev_dir then incr switches;
      prev_dir := !bottom_up;
      arcs_touched := !arcs_touched + !scout;
      Obs.Metrics.observe h_frontier !cur_n;
      Obs.Trace.sample (if !bottom_up then t_level_bu else t_level_td) !cur_n
    end;
    let dn = !d + 1 in
    next_n := 0;
    next_scout := 0;
    let nq = !q_next in
    if !bottom_up then
      (* Bottom-up: every unsettled vertex probes its own adjacency for a
         frontier member and stops at the first hit — on the exploding
         levels of the broker core this touches a small fraction of the
         arcs a top-down expansion would. *)
      for v = 0 to n - 1 do
        if Array.unsafe_get stamp v <> epoch then begin
          let dv = ov && Array.unsafe_get dirty v in
          let a = if dv then xadj else adj in
          let lo =
            if dv then Array.unsafe_get xoff v else Array.unsafe_get off v
          in
          let hi =
            if dv then Array.unsafe_get xoff (v + 1)
            else Array.unsafe_get off (v + 1)
          in
          probe := lo;
          found := false;
          while (not !found) && !probe < hi do
            let w = Array.unsafe_get a !probe in
            if
              Array.unsafe_get stamp w = epoch
              && Array.unsafe_get dist w = !d
            then found := true
            else incr probe
          done;
          if !found then begin
            Array.unsafe_set stamp v epoch;
            Array.unsafe_set dist v dn;
            Array.unsafe_set nq !next_n v;
            incr next_n;
            next_scout := !next_scout + hi - lo
          end
        end
      done
    else begin
      let q = !q_cur in
      for i = 0 to !cur_n - 1 do
        let u = Array.unsafe_get q i in
        let du = ov && Array.unsafe_get dirty u in
        let a = if du then xadj else adj in
        let lo =
          if du then Array.unsafe_get xoff u else Array.unsafe_get off u
        in
        let hi =
          if du then Array.unsafe_get xoff (u + 1)
          else Array.unsafe_get off (u + 1)
        in
        for j = lo to hi - 1 do
          let v = Array.unsafe_get a j in
          if Array.unsafe_get stamp v <> epoch then begin
            Array.unsafe_set stamp v epoch;
            Array.unsafe_set dist v dn;
            Array.unsafe_set nq !next_n v;
            incr next_n;
            next_scout :=
              !next_scout
              +
              if ov && Array.unsafe_get dirty v then
                Array.unsafe_get xoff (v + 1) - Array.unsafe_get xoff v
              else Array.unsafe_get off (v + 1) - Array.unsafe_get off v
          end
        done
      done
    end;
    let tmp = !q_cur in
    q_cur := !q_next;
    q_next := tmp;
    cur_n := !next_n;
    edges_rest := !edges_rest - !next_scout;
    scout := !next_scout;
    if !next_n > 0 then begin
      ws.max_level <- dn;
      levels.(dn) <- !next_n;
      ws.settled <- ws.settled + !next_n
    end;
    d := dn
  done;
  ws.q_cur <- !q_cur;
  ws.q_next <- !q_next;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr m_runs;
    Obs.Metrics.add m_levels_td !lv_td;
    Obs.Metrics.add m_levels_bu !lv_bu;
    Obs.Metrics.add m_switches !switches;
    Obs.Metrics.add m_arcs !arcs_touched;
    Obs.Metrics.add m_settled ws.settled
  end;
  Obs.Trace.leave t_run tr0

(* Static-graph entry point: the view record is the only setup
   allocation, built once before the traversal loops. *)
let[@brokercheck.noalloc] run ws g ?max_depth src =
  run_view ws (View.of_graph g) ?max_depth src

let max_level ws = ws.max_level
let reached ws = ws.settled

let level_count ws d =
  if d < 0 || d > ws.max_level then
    invalid_arg "Bfs.level_count: level out of range";
  ws.levels.(d)

let distance ws v =
  if v < 0 || v >= ws.cap then invalid_arg "Bfs.distance: vertex out of range";
  if ws.stamp.(v) = ws.epoch then ws.dist.(v) else -1

let distances_into ws out =
  let k = min (Array.length out) ws.cap in
  let stamp = ws.stamp and dist = ws.dist and epoch = ws.epoch in
  for v = 0 to k - 1 do
    out.(v) <- (if stamp.(v) = epoch then dist.(v) else -1)
  done;
  for v = k to Array.length out - 1 do
    out.(v) <- -1
  done
