(* Brandes' dependency accumulation from each sampled source:
   delta(v) = sum over successors w of (sigma_v / sigma_w) (1 + delta(w)),
   accumulated in reverse BFS order. *)

let accumulate g source centrality ~sigma ~dist ~order ~parents_off ~parents =
  let n = Graph.n g in
  Array.fill sigma 0 n 0.0;
  Array.fill dist 0 n (-1);
  (* BFS computing shortest-path counts and predecessor lists. *)
  let queue = order in
  let head = ref 0 and tail = ref 0 in
  let push v =
    queue.(!tail) <- v;
    incr tail
  in
  sigma.(source) <- 1.0;
  dist.(source) <- 0;
  push source;
  let parent_count = Array.make n 0 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          push v
        end;
        if dist.(v) = dist.(u) + 1 then begin
          sigma.(v) <- sigma.(v) +. sigma.(u);
          let slot = parents_off.(v) + parent_count.(v) in
          parents.(slot) <- u;
          parent_count.(v) <- parent_count.(v) + 1
        end)
  done;
  (* Reverse-order dependency accumulation. *)
  let delta = Array.make n 0.0 in
  for i = !tail - 1 downto 0 do
    let w = queue.(i) in
    let coeff = (1.0 +. delta.(w)) /. sigma.(w) in
    for j = 0 to parent_count.(w) - 1 do
      let v = parents.(parents_off.(w) + j) in
      delta.(v) <- delta.(v) +. (sigma.(v) *. coeff)
    done;
    if w <> source then centrality.(w) <- centrality.(w) +. delta.(w)
  done

let compute ?(samples = 256) ~rng g =
  let n = Graph.n g in
  if n = 0 then [||]
  else begin
    let centrality = Array.make n 0.0 in
    let sigma = Array.make n 0.0 in
    let dist = Array.make n (-1) in
    let order = Array.make n 0 in
    (* Predecessor storage: a vertex has at most [degree] BFS parents, so
       CSR-style offsets sized by degree suffice. *)
    let parents_off = Array.make n 0 in
    let acc = ref 0 in
    for v = 0 to n - 1 do
      parents_off.(v) <- !acc;
      acc := !acc + Graph.degree g v
    done;
    let parents = Array.make (max !acc 1) 0 in
    let sources =
      if n <= samples then Array.init n (fun i -> i)
      else Broker_util.Sampling.without_replacement rng ~n ~k:samples
    in
    Array.iter
      (fun s -> accumulate g s centrality ~sigma ~dist ~order ~parents_off ~parents)
      sources;
    centrality
  end

let top ?(samples = 256) ~rng g ~k =
  let c = compute ~samples ~rng g in
  let idx = Array.init (Graph.n g) (fun i -> i) in
  Array.sort
    (fun a b ->
      let cmp = Float.compare c.(b) c.(a) in
      if cmp <> 0 then cmp else Int.compare a b)
    idx;
  Array.sub idx 0 (min k (Array.length idx))
