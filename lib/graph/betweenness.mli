(** Approximate betweenness centrality (Brandes' algorithm over sampled
    source vertices).

    Not part of the paper's baseline set, but the natural "next" centrality
    after degree and PageRank: the reproduction adds a Betweenness-Based
    broker selection to the algorithm comparison to test whether
    path-centrality escapes the marginal effect the paper observes for
    DB/PRB (it does not — see the extension experiment). Sampled Brandes is
    an unbiased estimator of betweenness up to the [n/samples] factor,
    which is irrelevant for ranking. *)

val compute :
  ?samples:int -> rng:Broker_util.Xrandom.t -> Graph.t -> float array
(** Estimated betweenness per vertex from [samples] (default 256) sampled
    single-source shortest-path DAGs. Exact (full Brandes) when the graph
    has no more than [samples] vertices. *)

val top : ?samples:int -> rng:Broker_util.Xrandom.t -> Graph.t -> k:int -> int array
(** The [k] highest-betweenness vertices, best first (ties by id). *)
