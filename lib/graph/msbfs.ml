module Bitset = Broker_util.Bitset
module Obs = Broker_obs

let lanes = Bitset.bits_per_word

(* Every word array below is indexed by vertex and carries a stamp array
   that says whether its word is meaningful:

     [seen]  — bits of lanes whose BFS has settled the vertex; valid for
               the whole batch iff [seen_stamp.(v) = epoch].
     [front] — bits newly settled at the vertex on the *previous* level
               (the frontier being expanded); valid iff
               [front_stamp.(v) = front_tick].
     [nxt]   — bits being settled at the vertex on the level under
               construction; valid iff [nxt_stamp.(v) = tick].

   [epoch] bumps once per batch and [tick] once per level (monotonically,
   across batches), so no array is ever cleared: a stale word is simply
   unreadable under its stamp. [front]/[nxt] swap wholesale (words and
   stamps together) at the end of each level, [front_tick] following. *)
type workspace = {
  mutable cap : int;  (* arrays below are sized for [cap] vertices *)
  mutable epoch : int;
  mutable tick : int;
  mutable seen : int array;
  mutable seen_stamp : int array;
  mutable front : int array;
  mutable front_stamp : int array;
  mutable front_tick : int;
  mutable nxt : int array;
  mutable nxt_stamp : int array;
  mutable q_cur : int array;  (* vertices with a valid front word *)
  mutable q_next : int array;  (* vertices gaining bits this level *)
  mutable touched : int array;  (* distinct vertices settled this batch *)
  mutable n_touched : int;
  mutable levels : int array;  (* levels.(d) = (lane,vertex) pairs at depth d *)
  mutable max_level : int;
  mutable pairs : int;  (* settled pairs at depth >= 1 *)
  mutable len : int;  (* lanes active in the last run *)
}

let workspace () =
  {
    cap = 0;
    epoch = 0;
    tick = 0;
    seen = [||];
    seen_stamp = [||];
    front = [||];
    front_stamp = [||];
    front_tick = 0;
    nxt = [||];
    nxt_stamp = [||];
    q_cur = [||];
    q_next = [||];
    touched = [||];
    n_touched = 0;
    levels = [||];
    max_level = 0;
    pairs = 0;
    len = 0;
  }

let ensure ws n =
  if ws.cap < n then begin
    ws.cap <- n;
    ws.seen <- Array.make n 0;
    ws.seen_stamp <- Array.make n 0;
    ws.front <- Array.make n 0;
    ws.front_stamp <- Array.make n 0;
    ws.nxt <- Array.make n 0;
    ws.nxt_stamp <- Array.make n 0;
    ws.q_cur <- Array.make n 0;
    ws.q_next <- Array.make n 0;
    ws.touched <- Array.make n 0;
    ws.levels <- Array.make (n + 1) 0;
    (* Fresh stamps are all 0; restarting both clocks keeps every stamp
       guard false until a vertex is actually written. *)
    ws.epoch <- 0;
    ws.tick <- 0;
    ws.front_tick <- 0
  end

(* Same Beamer-style switching thresholds as the scalar engine (Bfs):
   expand bottom-up once the frontier's out-arcs exceed 1/alpha of the
   arcs still incident to untouched vertices, fall back top-down when the
   frontier shrinks below n/beta vertices. Both directions settle the
   same bits at the same depths, so every count below is independent of
   the heuristic. *)
let alpha = 14
let beta = 24

(* Observability (Broker_obs): all counters are commutative int sums over
   deterministically composed batches, so totals are REPRO_DOMAINS-
   independent and diffable, exactly like the bfs.* family. *)
let m_batches = Obs.Metrics.counter "msbfs.batches"
let m_lanes = Obs.Metrics.counter "msbfs.lanes"
let m_sweeps = Obs.Metrics.counter "msbfs.sweeps"
let m_sweeps_td = Obs.Metrics.counter "msbfs.sweeps.top_down"
let m_sweeps_bu = Obs.Metrics.counter "msbfs.sweeps.bottom_up"
let m_active_words = Obs.Metrics.counter "msbfs.active_words"
let m_frontier_bits = Obs.Metrics.counter "msbfs.frontier_bits"
let m_settled_pairs = Obs.Metrics.counter "msbfs.settled_pairs"
let h_frontier_words = Obs.Metrics.histogram "msbfs.frontier_words"
let t_run = Obs.Trace.scope "msbfs.run"
let t_sweep_td = Obs.Trace.scope "msbfs.sweep.top_down"
let t_sweep_bu = Obs.Trace.scope "msbfs.sweep.bottom_up"

(* The sweep is the whole point of the module: one pass over the frontier
   advances up to [lanes] BFS traversals with three word ops per arc
   (AND-NOT against [seen], OR into [seen] and [nxt]); per-level pair
   counts come from one popcount per frontier word instead of any
   per-bit loop. Checked [@brokercheck.noalloc]: all loop scratch is
   hoisted refs, and per-arc work is pure int ops. *)
let[@brokercheck.noalloc] run_view ws vw ?(max_depth = max_int) sources ~lo
    ~len =
  let n = vw.View.n in
  if len < 1 || len > lanes then invalid_arg "Msbfs: batch size out of range";
  if lo < 0 || len > Array.length sources - lo then
    invalid_arg "Msbfs: source range out of bounds";
  (* Validate the whole batch before touching any workspace state. *)
  for b = 0 to len - 1 do
    let s = Array.unsafe_get sources (lo + b) in
    if s < 0 || s >= n then invalid_arg "Msbfs: source out of range"
  done;
  ensure ws n;
  ws.epoch <- ws.epoch + 1;
  ws.tick <- ws.tick + 1;
  let epoch = ws.epoch in
  (* Base-or-overlay segment select, exactly as in {!Bfs.run_view}: for
     base views [ov] is false and the loops read the bare CSR. *)
  let off = vw.View.off and adj = vw.View.adj in
  let ov = vw.View.overlaid in
  let dirty = vw.View.dirty and xoff = vw.View.xoff and xadj = vw.View.xadj in
  let seen = ws.seen and seen_stamp = ws.seen_stamp in
  let touched = ws.touched and levels = ws.levels in
  let q_cur = ref ws.q_cur and q_next = ref ws.q_next in
  let front = ref ws.front and front_stamp = ref ws.front_stamp in
  let nxt = ref ws.nxt and nxt_stamp = ref ws.nxt_stamp in
  let mask = if len >= lanes then -1 else (1 lsl len) - 1 in
  ws.n_touched <- 0;
  ws.max_level <- 0;
  ws.pairs <- 0;
  ws.len <- len;
  levels.(0) <- len;
  (* Seed: lane [b] starts at [sources.(lo + b)]. Duplicate sources are
     distinct lanes sharing a vertex, so the frontier queue dedups on the
     front stamp while the words accumulate one bit per lane. *)
  let tick = ref ws.tick in
  let cur_n = ref 0 in
  let scout = ref 0 in
  let edges_rest = ref vw.View.arcs in
  for b = 0 to len - 1 do
    let s = Array.unsafe_get sources (lo + b) in
    let bit = 1 lsl b in
    if Array.unsafe_get seen_stamp s <> epoch then begin
      Array.unsafe_set seen_stamp s epoch;
      Array.unsafe_set seen s bit;
      Array.unsafe_set touched ws.n_touched s;
      ws.n_touched <- ws.n_touched + 1;
      let deg =
        if ov && Array.unsafe_get dirty s then
          Array.unsafe_get xoff (s + 1) - Array.unsafe_get xoff s
        else Array.unsafe_get off (s + 1) - Array.unsafe_get off s
      in
      edges_rest := !edges_rest - deg;
      scout := !scout + deg
    end
    else Array.unsafe_set seen s (Array.unsafe_get seen s lor bit);
    if Array.unsafe_get !front_stamp s <> !tick then begin
      Array.unsafe_set !front_stamp s !tick;
      Array.unsafe_set !front s bit;
      Array.unsafe_set !q_cur !cur_n s;
      cur_n := !cur_n + 1
    end
    else Array.unsafe_set !front s (Array.unsafe_get !front s lor bit)
  done;
  ws.front_tick <- !tick;
  let bottom_up = ref false in
  let d = ref 0 in
  let tr0 = Obs.Trace.enter () in
  let sweeps_td = ref 0 and sweeps_bu = ref 0 in
  let words_touched = ref 0 and bits_front = ref 0 in
  (* Loop scratch, hoisted: the sweep body allocates nothing per level,
     per frontier word, or per arc. *)
  let next_n = ref 0 and next_scout = ref 0 and pc = ref 0 in
  let probe = ref 0 and acc = ref 0 in
  while !cur_n > 0 && !d < max_depth do
    if !bottom_up then begin
      if !cur_n * beta < n then bottom_up := false
    end
    else if !scout * alpha > !edges_rest then bottom_up := true;
    if Obs.Control.enabled () then begin
      if !bottom_up then incr sweeps_bu else incr sweeps_td;
      words_touched := !words_touched + !cur_n;
      bits_front := !bits_front + levels.(!d);
      Obs.Metrics.observe h_frontier_words !cur_n;
      Obs.Trace.sample (if !bottom_up then t_sweep_bu else t_sweep_td) !cur_n
    end;
    let dn = !d + 1 in
    ws.tick <- ws.tick + 1;
    tick := ws.tick;
    next_n := 0;
    next_scout := 0;
    let fr = !front and fr_stamp = !front_stamp and fr_tick = ws.front_tick in
    let nx = !nxt and nx_stamp = !nxt_stamp in
    let nq = !q_next in
    if !bottom_up then
      (* Bottom-up: every vertex still missing bits ORs its neighbors'
         frontier words until the missing bits are covered. With many
         lanes the early exit fires less often than in the scalar
         engine, but on exploding levels the frontier holds almost every
         vertex and one sequential pass still beats expanding it. *)
      for v = 0 to n - 1 do
        let sv =
          if Array.unsafe_get seen_stamp v = epoch then Array.unsafe_get seen v
          else 0
        in
        let miss = mask land lnot sv in
        if miss <> 0 then begin
          let dv = ov && Array.unsafe_get dirty v in
          let a = if dv then xadj else adj in
          let lo =
            if dv then Array.unsafe_get xoff v else Array.unsafe_get off v
          in
          let hi =
            if dv then Array.unsafe_get xoff (v + 1)
            else Array.unsafe_get off (v + 1)
          in
          probe := lo;
          acc := 0;
          while !probe < hi && miss land lnot !acc <> 0 do
            let w = Array.unsafe_get a !probe in
            if Array.unsafe_get fr_stamp w = fr_tick then
              acc := !acc lor Array.unsafe_get fr w;
            incr probe
          done;
          let add = !acc land miss in
          if add <> 0 then begin
            if sv = 0 && Array.unsafe_get seen_stamp v <> epoch then begin
              Array.unsafe_set seen_stamp v epoch;
              Array.unsafe_set seen v add;
              Array.unsafe_set touched ws.n_touched v;
              ws.n_touched <- ws.n_touched + 1;
              edges_rest := !edges_rest - (hi - lo)
            end
            else Array.unsafe_set seen v (sv lor add);
            Array.unsafe_set nx_stamp v !tick;
            Array.unsafe_set nx v add;
            Array.unsafe_set nq !next_n v;
            next_n := !next_n + 1;
            next_scout := !next_scout + (hi - lo)
          end
        end
      done
    else begin
      let q = !q_cur in
      for i = 0 to !cur_n - 1 do
        let u = Array.unsafe_get q i in
        let fu = Array.unsafe_get fr u in
        let du = ov && Array.unsafe_get dirty u in
        let a = if du then xadj else adj in
        let jlo =
          if du then Array.unsafe_get xoff u else Array.unsafe_get off u
        in
        let jhi =
          if du then Array.unsafe_get xoff (u + 1)
          else Array.unsafe_get off (u + 1)
        in
        for j = jlo to jhi - 1 do
          let v = Array.unsafe_get a j in
          let sv =
            if Array.unsafe_get seen_stamp v = epoch then
              Array.unsafe_get seen v
            else 0
          in
          let add = fu land lnot sv in
          if add <> 0 then begin
            let dv = ov && Array.unsafe_get dirty v in
            let deg_v =
              if dv then
                Array.unsafe_get xoff (v + 1) - Array.unsafe_get xoff v
              else Array.unsafe_get off (v + 1) - Array.unsafe_get off v
            in
            if sv = 0 && Array.unsafe_get seen_stamp v <> epoch then begin
              Array.unsafe_set seen_stamp v epoch;
              Array.unsafe_set seen v add;
              Array.unsafe_set touched ws.n_touched v;
              ws.n_touched <- ws.n_touched + 1;
              edges_rest := !edges_rest - deg_v
            end
            else Array.unsafe_set seen v (sv lor add);
            if Array.unsafe_get nx_stamp v <> !tick then begin
              Array.unsafe_set nx_stamp v !tick;
              Array.unsafe_set nx v add;
              Array.unsafe_set nq !next_n v;
              next_n := !next_n + 1;
              next_scout := !next_scout + deg_v
            end
            else Array.unsafe_set nx v (Array.unsafe_get nx v lor add)
          end
        done
      done
    end;
    (* Per-level pair count: one popcount per vertex that gained bits —
       [nx] holds exactly the first-arrival bits of this level. *)
    pc := 0;
    for i = 0 to !next_n - 1 do
      pc := !pc + Bitset.popcount (Array.unsafe_get nx (Array.unsafe_get nq i))
    done;
    if !next_n > 0 then begin
      ws.max_level <- dn;
      levels.(dn) <- !pc;
      ws.pairs <- ws.pairs + !pc
    end;
    (* Swap frontier and next (words, stamps, queues) for the next level. *)
    let tmpw = !front in
    front := !nxt;
    nxt := tmpw;
    let tmps = !front_stamp in
    front_stamp := !nxt_stamp;
    nxt_stamp := tmps;
    let tmpq = !q_cur in
    q_cur := !q_next;
    q_next := tmpq;
    ws.front_tick <- !tick;
    cur_n := !next_n;
    scout := !next_scout;
    d := dn
  done;
  ws.front <- !front;
  ws.front_stamp <- !front_stamp;
  ws.nxt <- !nxt;
  ws.nxt_stamp <- !nxt_stamp;
  ws.q_cur <- !q_cur;
  ws.q_next <- !q_next;
  if Obs.Control.enabled () then begin
    Obs.Metrics.incr m_batches;
    Obs.Metrics.add m_lanes len;
    Obs.Metrics.add m_sweeps (!sweeps_td + !sweeps_bu);
    Obs.Metrics.add m_sweeps_td !sweeps_td;
    Obs.Metrics.add m_sweeps_bu !sweeps_bu;
    Obs.Metrics.add m_active_words !words_touched;
    Obs.Metrics.add m_frontier_bits !bits_front;
    Obs.Metrics.add m_settled_pairs ws.pairs
  end;
  Obs.Trace.leave t_run tr0

(* Static-graph entry point: the view record is the only setup
   allocation, built once before the sweeps. *)
let[@brokercheck.noalloc] run ws g ?max_depth sources ~lo ~len =
  run_view ws (View.of_graph g) ?max_depth sources ~lo ~len

let batch_lanes ws = ws.len
let max_level ws = ws.max_level
let reached_pairs ws = ws.pairs

let level_pairs ws d =
  if d < 0 || d > ws.max_level then
    invalid_arg "Msbfs.level_pairs: level out of range";
  ws.levels.(d)

let settled_bits ws v =
  if v < 0 || v >= ws.cap then
    invalid_arg "Msbfs.settled_bits: vertex out of range";
  if ws.seen_stamp.(v) = ws.epoch then ws.seen.(v) else 0

let lane_counts_into ws ~keep out =
  if Array.length out < ws.len then
    invalid_arg "Msbfs.lane_counts_into: output shorter than the batch";
  Array.fill out 0 ws.len 0;
  let seen = ws.seen and touched = ws.touched in
  for i = 0 to ws.n_touched - 1 do
    let v = Array.unsafe_get touched i in
    if keep v then begin
      (* Lowest-set-bit extraction over the settled word: cost is one
         step per (lane, vertex) pair actually settled. *)
      let w = ref (Array.unsafe_get seen v) in
      while !w <> 0 do
        let low = !w land - !w in
        let b = Bitset.popcount (low - 1) in
        Array.unsafe_set out b (Array.unsafe_get out b + 1);
        w := !w land (!w - 1)
      done
    end
  done
