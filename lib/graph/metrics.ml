let degree_distribution g =
  let tbl = Hashtbl.create 64 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  List.sort
    (fun (d1, c1) (d2, c2) ->
      let c = Int.compare d1 d2 in
      if c <> 0 then c else Int.compare c1 c2)
    (Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [])

let average_degree g =
  if Graph.n g = 0 then 0.0
  else 2.0 *. float_of_int (Graph.m g) /. float_of_int (Graph.n g)

let power_law_exponent g =
  (* MLE alpha = 1 + n / sum ln(d / (dmin - 0.5)) with dmin = 2. *)
  let dmin = 2.0 in
  let acc = ref 0.0 and count = ref 0 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    if float_of_int d >= dmin then begin
      acc := !acc +. log (float_of_int d /. (dmin -. 0.5));
      incr count
    end
  done;
  if !count = 0 || !acc = 0.0 then nan
  else 1.0 +. (float_of_int !count /. !acc)

let local_clustering g u =
  (* Read the neighbor segment in place — no fresh array per vertex. *)
  let off = Graph.csr_off g and adj = Graph.csr_adj g in
  let lo = off.(u) and hi = off.(u + 1) in
  let d = hi - lo in
  if d < 2 then 0.0
  else begin
    let links = ref 0 in
    for i = lo to hi - 1 do
      for j = i + 1 to hi - 1 do
        if Graph.mem_edge g adj.(i) adj.(j) then incr links
      done
    done;
    2.0 *. float_of_int !links /. float_of_int (d * (d - 1))
  end

let clustering_coefficient ?(samples = 2000) ~rng g =
  let candidates = ref [] in
  for u = 0 to Graph.n g - 1 do
    if Graph.degree g u >= 2 then candidates := u :: !candidates
  done;
  let cands = Array.of_list !candidates in
  let total = Array.length cands in
  if total = 0 then 0.0
  else begin
    let chosen =
      if total <= samples then cands
      else begin
        let idx = Broker_util.Sampling.without_replacement rng ~n:total ~k:samples in
        Array.map (fun i -> cands.(i)) idx
      end
    in
    let sum = Array.fold_left (fun acc u -> acc +. local_clustering g u) 0.0 chosen in
    sum /. float_of_int (Array.length chosen)
  end

let diameter_lower_bound g =
  if Graph.n g < 2 then 0
  else begin
    (* Double sweep from the max-degree vertex. *)
    let start = ref 0 in
    for u = 1 to Graph.n g - 1 do
      if Graph.degree g u > Graph.degree g !start then start := u
    done;
    let far, _ = Bfs.farthest g !start in
    let _, d = Bfs.farthest g far in
    d
  end

let hop_distance_sample ~rng ~sources g =
  let n = Graph.n g in
  if n = 0 then [||]
  else begin
    let k = min sources n in
    let srcs = Broker_util.Sampling.without_replacement rng ~n ~k in
    let acc = ref [] in
    Array.iter
      (fun s ->
        let dist = Bfs.distances g s in
        Array.iter (fun d -> if d > 0 then acc := d :: !acc) dist)
      srcs;
    Array.of_list !acc
  end

let degree_assortativity g =
  let m = Graph.m g in
  if m = 0 then 0.0
  else begin
    let xs = Array.make m 0.0 and ys = Array.make m 0.0 in
    let i = ref 0 in
    Graph.iter_edges g (fun u v ->
        xs.(!i) <- float_of_int (Graph.degree g u);
        ys.(!i) <- float_of_int (Graph.degree g v);
        incr i);
    (* Symmetrize: each edge contributes both orientations. *)
    let xs' = Array.append xs ys and ys' = Array.append ys xs in
    Broker_util.Stats.pearson xs' ys'
  end
