type t = { component : int array; sizes : int array }

let compute g =
  let n = Graph.n g in
  let component = Array.make n (-1) in
  let queue = Array.make n 0 in
  let sizes = ref [] in
  let next_id = ref 0 in
  for s = 0 to n - 1 do
    if component.(s) < 0 then begin
      let id = !next_id in
      incr next_id;
      let head = ref 0 and tail = ref 0 in
      component.(s) <- id;
      queue.(!tail) <- s;
      incr tail;
      let size = ref 0 in
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        incr size;
        Graph.iter_neighbors g u (fun v ->
            if component.(v) < 0 then begin
              component.(v) <- id;
              queue.(!tail) <- v;
              incr tail
            end)
      done;
      sizes := !size :: !sizes
    end
  done;
  { component; sizes = Array.of_list (List.rev !sizes) }

let count t = Array.length t.sizes

let largest t =
  if Array.length t.sizes = 0 then (0, 0)
  else begin
    let best = ref 0 in
    Array.iteri (fun i s -> if s > t.sizes.(!best) then best := i) t.sizes;
    (!best, t.sizes.(!best))
  end

let largest_members g =
  let t = compute g in
  let id, size = largest t in
  let out = Array.make size 0 in
  let k = ref 0 in
  Array.iteri
    (fun v c ->
      if c = id then begin
        out.(!k) <- v;
        incr k
      end)
    t.component;
  out

let same t a b = t.component.(a) = t.component.(b)
