type t = { n : int; off : int array; adj : int array }

(* In-place ascending sort of [a.(lo) .. a.(hi-1)]: insertion sort for the
   short segments that dominate adjacency lists, sift-down heapsort above
   the cutoff (O(len log len) worst case, zero heap allocation). Produces
   the same order as [Array.sort Int.compare] on the slice — integer keys
   have a unique sorted arrangement — without the per-segment copy. *)
let sort_range a lo hi =
  let len = hi - lo in
  if len > 1 then begin
    if len <= 32 then
      for i = lo + 1 to hi - 1 do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
    else begin
      (* Heap over positions lo..hi-1; child of slot k is 2k+1 / 2k+2. *)
      let sift root last =
        let r = ref root in
        let continue = ref true in
        while !continue do
          let child = (2 * !r) + 1 in
          if child > last then continue := false
          else begin
            let child =
              if child < last && a.(lo + child) < a.(lo + child + 1) then
                child + 1
              else child
            in
            if a.(lo + !r) < a.(lo + child) then begin
              let tmp = a.(lo + !r) in
              a.(lo + !r) <- a.(lo + child);
              a.(lo + child) <- tmp;
              r := child
            end
            else continue := false
          end
        done
      in
      for root = (len - 2) / 2 downto 0 do
        sift root (len - 1)
      done;
      for last = len - 1 downto 1 do
        let tmp = a.(lo) in
        a.(lo) <- a.(lo + last);
        a.(lo + last) <- tmp;
        sift 0 (last - 1)
      done
    end
  end

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range")
    edges;
  (* First pass: degree counting (both directions), skipping self-loops. *)
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        adj.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1;
        adj.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1
      end)
    edges;
  (* Sort each adjacency segment in place and drop duplicates, compacting
     towards the front. The write cursor never catches up with the read
     cursor (it only advances on a kept element), so the in-place rewrite
     is safe; the final copy is skipped when nothing was compacted. *)
  let write = ref 0 in
  let new_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let lo = off.(u) and hi = off.(u + 1) in
    sort_range adj lo hi;
    new_off.(u) <- !write;
    let prev = ref (-1) in
    for i = lo to hi - 1 do
      let v = adj.(i) in
      if v <> !prev then begin
        adj.(!write) <- v;
        incr write;
        prev := v
      end
    done
  done;
  new_off.(n) <- !write;
  let adj = if !write = Array.length adj then adj else Array.sub adj 0 !write in
  { n; off = new_off; adj }

let n t = t.n
let m t = (t.off.(t.n) - t.off.(0)) / 2

let degree t u =
  if u < 0 || u >= t.n then invalid_arg "Graph.degree: vertex out of range";
  t.off.(u + 1) - t.off.(u)

let iter_neighbors t u f =
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    f t.adj.(i)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    acc := f !acc t.adj.(i)
  done;
  !acc

let neighbors t u = Array.sub t.adj t.off.(u) (t.off.(u + 1) - t.off.(u))

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else begin
    let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = t.adj.(mid) in
      if w = v then found := true
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj.(i) in
      if u < v then f u v
    done
  done

let edges t =
  let out = Array.make (m t) (0, 0) in
  let i = ref 0 in
  iter_edges t (fun u v ->
      out.(!i) <- (u, v);
      incr i);
  out

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    best := max !best (degree t u)
  done;
  !best

let degrees t = Array.init t.n (degree t)

let degrees_into t out =
  if Array.length out < t.n then
    invalid_arg "Graph.degrees_into: buffer too small";
  for u = 0 to t.n - 1 do
    out.(u) <- t.off.(u + 1) - t.off.(u)
  done

let is_empty t = t.n = 0
let arcs t = t.off.(t.n)
let csr_off t = t.off
let csr_adj t = t.adj

(* Segments are canonical (sorted, dedup'd, loop-free), so structural
   array equality decides graph equality — this is what lets Delta.compact
   claim bitwise agreement with an of_edges rebuild. *)
let equal a b =
  a.n = b.n
  && Array.length a.adj = Array.length b.adj
  && (a.off == b.off || Array.for_all2 Int.equal a.off b.off)
  && (a.adj == b.adj || Array.for_all2 Int.equal a.adj b.adj)

let of_csr_unchecked ~n ~off ~adj =
  if Array.length off <> n + 1 || off.(0) <> 0 || off.(n) <> Array.length adj
  then invalid_arg "Graph.of_csr_unchecked: malformed offsets";
  { n; off; adj }
