type t = { n : int; off : int array; adj : int array }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range")
    edges;
  (* First pass: degree counting (both directions), skipping self-loops. *)
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + deg.(i)
  done;
  let adj = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  Array.iter
    (fun (u, v) ->
      if u <> v then begin
        adj.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1;
        adj.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1
      end)
    edges;
  (* Sort each adjacency list and drop duplicates, compacting in place. *)
  let write = ref 0 in
  let new_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    let lo = off.(u) and hi = off.(u + 1) in
    let slice = Array.sub adj lo (hi - lo) in
    Array.sort Int.compare slice;
    new_off.(u) <- !write;
    let prev = ref (-1) in
    Array.iter
      (fun v ->
        if v <> !prev then begin
          adj.(!write) <- v;
          incr write;
          prev := v
        end)
      slice
  done;
  new_off.(n) <- !write;
  { n; off = new_off; adj = Array.sub adj 0 !write }

let n t = t.n
let m t = (t.off.(t.n) - t.off.(0)) / 2

let degree t u =
  if u < 0 || u >= t.n then invalid_arg "Graph.degree: vertex out of range";
  t.off.(u + 1) - t.off.(u)

let iter_neighbors t u f =
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    f t.adj.(i)
  done

let fold_neighbors t u f init =
  let acc = ref init in
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    acc := f !acc t.adj.(i)
  done;
  !acc

let neighbors t u = Array.sub t.adj t.off.(u) (t.off.(u + 1) - t.off.(u))

let mem_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else begin
    let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
    let found = ref false in
    while (not !found) && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = t.adj.(mid) in
      if w = v then found := true
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.adj.(i) in
      if u < v then f u v
    done
  done

let edges t =
  let out = Array.make (m t) (0, 0) in
  let i = ref 0 in
  iter_edges t (fun u v ->
      out.(!i) <- (u, v);
      incr i);
  out

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    best := max !best (degree t u)
  done;
  !best

let degrees t = Array.init t.n (degree t)
let is_empty t = t.n = 0
