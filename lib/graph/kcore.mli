(** k-core decomposition (Batagelj–Zaveršnik peeling, O(|V| + |E|)).

    The coreness of a vertex discriminates the Internet "core" (high-coreness
    transit/IXP mesh) from the "edge" (stub networks); Fig. 4 of the paper
    contrasts broker placements of the Degree-Based baseline (core-heavy)
    against MaxSG (edge-covering). *)

val coreness : Graph.t -> int array
(** Largest [k] such that the vertex belongs to the k-core. *)

val degeneracy : Graph.t -> int
(** Maximum coreness over all vertices (0 for the empty graph). *)

val core_members : Graph.t -> k:int -> int array
(** Vertices with coreness at least [k], ascending. *)
