(** Bit-parallel multi-source BFS (MS-BFS).

    The connectivity evaluators run one BFS per source over one shared
    (projected) graph for hundreds of sources. The scalar engine
    ({!Bfs.run}) already makes each run closure- and allocation-free;
    this module removes the per-source sweeps themselves: up to
    {!lanes} sources are packed one per bit into a machine word per
    vertex, and a single sweep advances *all* of them — the frontier
    word of a vertex is AND-NOT-ed against each neighbor's [seen] word
    and the surviving bits OR-ed in, so a 192-source evaluation costs a
    handful of word-parallel sweeps instead of 192 scalar traversals.

    Word layout: lane [b] of a batch is the BFS rooted at
    [sources.(lo + b)]; bit [b] of a vertex's [seen] word says lane
    [b]'s traversal has settled it, and the depth at which a bit first
    appears is exactly that lane's scalar BFS distance (all lanes
    advance in lock step, so first arrival = shortest path). Per-level
    totals are popcounts of the newly settled words — no per-bit loop,
    no per-lane distance array.

    Sweeps switch between top-down frontier expansion and bottom-up
    probing with the same thresholds as {!Bfs.run}. Both directions
    settle identical bits at identical depths, so every query below is
    independent of the heuristic — which keeps batched evaluations
    bitwise identical to their scalar and generic reference
    implementations. *)

val lanes : int
(** Sources packed per word: 63 ({!Broker_util.Bitset.bits_per_word} —
    OCaml native ints). *)

type workspace
(** Reusable scratch for {!run} (word arrays, stamps, queues). Runs
    reuse the arrays with epoch/tick bumps instead of clearing them, so
    the marginal cost of a batch is exactly its sweeps. Not thread-safe:
    confine each workspace to one domain. *)

val workspace : unit -> workspace
(** An empty workspace; arrays are sized lazily by the first {!run} (and
    regrown if a later run presents a larger graph). *)

val run :
  workspace -> Graph.t -> ?max_depth:int -> int array -> lo:int -> len:int ->
  unit
(** [run ws g sources ~lo ~len] traverses [g] from the batch
    [sources.(lo) .. sources.(lo + len - 1)], one lane each, leaving the
    results in [ws]. [max_depth] (default unbounded) stops expanding
    beyond that many hops. Duplicate sources are distinct lanes.
    Queries below refer to the most recent run and are invalidated by
    the next one.
    @raise Invalid_argument when [len] is outside [1 .. lanes], the
    range escapes [sources], or a source is outside [0 .. n-1]. *)

val run_view :
  workspace -> View.t -> ?max_depth:int -> int array -> lo:int -> len:int ->
  unit
(** {!run} over a {!View.t} — the same sweeps reading through the
    base-or-overlay segment selector, so dynamic-topology callers
    traverse a {!Delta} overlay without compacting it first. *)

val batch_lanes : workspace -> int
(** Lanes of the last run ([len]). *)

val max_level : workspace -> int
(** Deepest level any lane settled in the last run (0 when every source
    settled only itself). *)

val level_pairs : workspace -> int -> int
(** [level_pairs ws d]: (lane, vertex) pairs settled at depth exactly
    [d], summed over the batch — [level_pairs ws 0 = batch_lanes ws],
    and for [d >= 1] the batched counterpart of summing
    {!Bfs.level_count} over the batch's scalar runs. Valid for [d] in
    [0 .. max_level ws].
    @raise Invalid_argument outside that range. *)

val reached_pairs : workspace -> int
(** Total (lane, vertex) pairs settled at depth [>= 1] — the batched
    sum of per-source reached counts, sources themselves excluded. *)

val settled_bits : workspace -> int -> int
(** [settled_bits ws v]: the lanes whose traversal settled [v] (any
    depth, source included), as a bit word; [0] when untouched. The
    word-level view tests and word-parallel callers consume directly.
    @raise Invalid_argument when [v] is outside the workspace. *)

val lane_counts_into : workspace -> keep:(int -> bool) -> int array -> unit
(** [lane_counts_into ws ~keep out] sets [out.(b)], for each lane [b] of
    the last run, to the number of vertices lane [b] settled (any depth,
    source included) that satisfy [keep] — the per-lane tally behind
    batched marginal-gain probes (CELF/MaxSG seed their heaps with
    [keep] = "not yet covered"). Entries beyond the batch are left
    untouched. Cost: one [keep] test per distinct settled vertex plus
    one bit-extraction step per settled (lane, vertex) pair.
    @raise Invalid_argument when [out] is shorter than the batch. *)
