(** Immutable undirected graphs in compressed sparse row (CSR) form.

    Vertices are the integers [0 .. n-1]. Parallel edges and self-loops are
    removed at construction. Adjacency lists are sorted, enabling O(log d)
    membership tests. This is the representation every algorithm in the
    reproduction operates on; at the paper's scale (52,079 vertices, ~700k
    directed arcs) the whole structure fits comfortably in a few MB. *)

type t

val of_edges : n:int -> (int * int) array -> t
(** [of_edges ~n edges] builds the graph on [n] vertices from undirected edge
    pairs. Duplicates (in either orientation) and self-loops are dropped.
    @raise Invalid_argument when an endpoint is outside [0..n-1]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
val neighbors : t -> int -> int array
(** Fresh array of the (sorted) neighbors. *)

val mem_edge : t -> int -> int -> bool
(** O(log degree) adjacency test. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge exactly once, with [u < v]. *)

val edges : t -> (int * int) array
(** All undirected edges, [u < v], fresh array. *)

val max_degree : t -> int
val degrees : t -> int array
(** Fresh array of all vertex degrees. *)

val degrees_into : t -> int array -> unit
(** Write every vertex degree into the first [n] slots of a caller-owned
    buffer — the zero-copy alternative to {!degrees} for callers that
    reuse a scratch array. @raise Invalid_argument when the buffer is
    shorter than [n]. *)

val is_empty : t -> bool

val arcs : t -> int
(** Number of directed arcs, i.e. [2 * m t]; O(1). *)

val equal : t -> t -> bool
(** Structural equality of the CSR arrays. Because construction
    canonicalizes segments (sorted, duplicate- and self-loop-free), two
    graphs are [equal] iff they have the same vertex count and edge set —
    and then their CSR arrays are bitwise identical. *)

val csr_off : t -> int array
(** The CSR offset array (length [n+1]): vertex [u]'s neighbors occupy
    [csr_adj] indices [csr_off.(u) .. csr_off.(u+1) - 1]. Read-only view of
    the graph's own storage — callers must not mutate it. This is the
    zero-overhead access path for tight traversal kernels
    ({!Bfs.run} and {!Projected.project}); everything else should go
    through {!iter_neighbors}. *)

val csr_adj : t -> int array
(** The CSR adjacency array paired with {!csr_off}. Read-only. *)

val of_csr_unchecked : n:int -> off:int array -> adj:int array -> t
(** Wrap a prebuilt CSR without re-sorting or deduplicating. The caller
    promises the invariants {!of_edges} normally establishes: [off] has
    length [n+1] with [off.(0) = 0] and [off.(n) = Array.length adj]
    (checked), and each segment is sorted, duplicate-free, self-loop-free
    and symmetric (trusted). The arrays are owned by the result — do not
    mutate them afterwards. Used by {!Projected.project}, whose filtering
    preserves all of these properties from its (already valid) source. *)
