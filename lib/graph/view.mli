(** Read-only adjacency views: one API over a bare CSR or a CSR with a
    sparse delta overlay.

    Every traversal kernel ({!Bfs.run_view}, {!Msbfs.run_view},
    {!Projected.project_view}, [Dominating.find_dominated_path_view])
    consumes a view, so dynamic-topology callers pay for the overlay
    only on the vertices it actually touched. {!of_graph} is O(1) and
    allocation is a single record, which keeps the [Graph.t] wrappers of
    those kernels zero-cost on the static path.

    A view is a snapshot: it stays valid until the {!Delta} it came from
    is next mutated. The record is exposed (not abstract) so kernels can
    select a vertex's segment inline — two array reads and a branch —
    without closures; treat every field as read-only. *)

type t = {
  n : int;
  arcs : int;  (** directed arc count of the viewed graph *)
  off : int array;  (** base CSR offsets *)
  adj : int array;  (** base CSR adjacency *)
  overlaid : bool;  (** false: base arrays only, override arrays empty *)
  dirty : bool array;  (** [dirty.(u)]: read [u]'s segment from the override *)
  xoff : int array;  (** override offsets (length [n+1]); clean vertices
                          get 0-length segments *)
  xadj : int array;  (** override adjacency, sorted per segment *)
}

val of_graph : Graph.t -> t
(** O(1) base view sharing the graph's own CSR arrays. *)

val n : t -> int
val arcs : t -> int
(** Directed arcs, i.e. [2 *] edge count; O(1). *)

val degree : t -> int -> int
val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** O(log degree) adjacency test against the effective segment. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Each undirected edge exactly once, with [u < v]. *)
