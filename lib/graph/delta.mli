(** Mutable announce/withdraw overlay over an immutable CSR graph.

    A [Delta.t] records an edge-set diff against a {!Graph.t} base:
    withdrawals of base edges become tombstone bits over base arc
    positions, announcements of new edges live in per-vertex sorted
    arrays. Reads go through {!view} — an O(dirty) materialized
    {!View.t} every traversal kernel accepts — and {!compact} folds the
    diff into a fresh canonical CSR that is bitwise-equal to a
    [Graph.of_edges] rebuild of the same edge set.

    Invariants: effective segments stay sorted, duplicate- and
    self-loop-free; [added] never overlaps the live base segment
    (re-announcing a withdrawn base edge clears its tombstone instead).
    Single-writer: mutation is not domain-safe, but views are immutable
    snapshots — they stay correct pictures of the edge set they were
    built from even after the delta mutates on, and are safe to read
    from parallel workers. *)

type t

val create : Graph.t -> t
(** Empty diff over [base]; O(n). *)

val base : t -> Graph.t
val n : t -> int

val add_edge : t -> int -> int -> bool
(** Announce edge [(u, v)]. Returns [true] iff the edge set changed —
    self-loops and already-present edges are no-ops. @raise
    Invalid_argument when an endpoint is out of range. *)

val remove_edge : t -> int -> int -> bool
(** Withdraw edge [(u, v)]; [true] iff the edge set changed. *)

val mem_edge : t -> int -> int -> bool
(** Effective adjacency test (base minus withdrawals plus announces). *)

val degree : t -> int -> int
(** Effective degree; O(1). *)

val is_dirty : t -> int -> bool
(** [true] once vertex [u]'s segment has ever been touched by an
    applied operation (it stays dirty even if later operations cancel
    out). *)

val edits : t -> int
(** Count of successful (edge-set-changing) operations so far. *)

val added_edges : t -> int
(** Announced edges currently live (not in the base). *)

val removed_edges : t -> int
(** Base edges currently withdrawn. *)

val edges : t -> int
(** Effective undirected edge count; O(1). *)

val arcs : t -> int
(** Effective directed arc count; O(1). *)

val view : t -> View.t
(** Read view of the effective graph: O(1) when the diff is empty
    (cancelled out), otherwise O(n + dirty segments) to materialize the
    override — memoized until the next mutation. The returned view is an
    immutable snapshot of the current edge set. *)

val compact : Graph.t -> t -> Graph.t
(** [compact base t] folds the diff into a fresh CSR. The result is
    bitwise-equal ({!Graph.equal}) to [Graph.of_edges] on the effective
    edge set. @raise Invalid_argument when [base] is not the graph the
    delta was created over. *)
