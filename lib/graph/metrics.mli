(** Structural graph metrics used to validate the synthetic topologies
    against the paper's dataset (Section 3) and to instantiate the
    (α,β)-graph property (Definition 2). *)

val degree_distribution : Graph.t -> (int * int) list
(** Sorted [(degree, count)] pairs. *)

val average_degree : Graph.t -> float

val power_law_exponent : Graph.t -> float
(** Maximum-likelihood estimate of the scale-free exponent over degrees >= 2
    (Clauset–Shalizi–Newman discrete approximation). Returns [nan] when
    degenerate. *)

val clustering_coefficient : ?samples:int -> rng:Broker_util.Xrandom.t -> Graph.t -> float
(** Mean local clustering coefficient, estimated on [samples] random vertices
    of degree >= 2 (default 2000). Exact when the graph has fewer qualifying
    vertices than [samples]. *)

val diameter_lower_bound : Graph.t -> int
(** Double-sweep BFS bound, exact on trees and tight in practice on
    small-world graphs. 0 for graphs with under 2 vertices. *)

val hop_distance_sample :
  rng:Broker_util.Xrandom.t -> sources:int -> Graph.t -> int array
(** Pooled hop distances from [sources] random source vertices to every other
    reachable vertex — the raw material of the (α,β) estimate and the F(l)
    path-length distribution. *)

val degree_assortativity : Graph.t -> float
(** Pearson correlation of endpoint degrees over edges (negative on the
    Internet AS graph). *)
