(** Connected components of an undirected graph. *)

type t = {
  component : int array;  (** component id of every vertex, ids are dense 0.. *)
  sizes : int array;  (** size of each component, indexed by id *)
}

val compute : Graph.t -> t

val count : t -> int
(** Number of components. *)

val largest : t -> int * int
(** [(id, size)] of the largest component. *)

val largest_members : Graph.t -> int array
(** Vertices of the largest connected component, ascending. *)

val same : t -> int -> int -> bool
(** Whether two vertices share a component. *)
