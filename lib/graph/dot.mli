(** Graphviz DOT export of (sub)graphs — the reproduction's stand-in for the
    paper's Fig. 1 and Fig. 4 visualizations. *)

val to_dot :
  ?name:string ->
  ?vertex_attrs:(int -> (string * string) list) ->
  ?max_vertices:int ->
  Graph.t ->
  string
(** [to_dot g] renders the graph in DOT syntax. [vertex_attrs] supplies
    per-vertex attribute lists (e.g. [["color", "red"]] for brokers).
    When the graph exceeds [max_vertices] (default 5000), the highest-degree
    vertices and their induced edges are kept so the output stays renderable. *)

val write_file : path:string -> string -> unit
(** Write the DOT text to [path]. *)
