(** Materialized broker-dominated subgraphs.

    For a broker set [B], the paper's evaluation only ever traverses the
    edge [(u,v)] when [u ∈ B] or [v ∈ B] (the "B_A ⊙ A" operator of
    Section 5.2). The generic traversals re-test that predicate on every
    edge of every BFS; [project] instead materializes the dominated
    subgraph once — a single O(|V| + |E|) pass producing a compact CSR with
    exactly the dominated edges — after which every per-source BFS is
    closure-free and touches only edges that can actually be used.
    Amortized over the hundreds of sources of one connectivity evaluation,
    the projection pays for itself many times over.

    Vertex ids are shared with the source graph (non-dominated vertices
    simply have empty adjacency), so sources, distances and histograms need
    no translation. A projection is immutable and snapshots the broker set
    at [project] time: if the broker set changes, project again. *)

type t

val project : Graph.t -> is_broker:(int -> bool) -> t
(** [project g ~is_broker] evaluates [is_broker] once per vertex and keeps
    exactly the edges with a broker endpoint. Sorted/deduplicated/symmetric
    CSR invariants are inherited from [g], not recomputed. *)

val project_view : View.t -> is_broker:(int -> bool) -> t
(** {!project} over a {!View.t}: projects a {!Delta} overlay directly,
    without compacting it into a fresh CSR first. *)

val graph : t -> Graph.t
(** The dominated subgraph, on the same vertex ids as the source graph.
    BFS distances over it equal [Bfs.distances_filtered] distances over the
    source graph under the dominated-edge predicate (the property the
    qcheck suite pins down). *)

val is_broker : t -> int -> bool
(** The broker membership snapshot the projection was built from. *)

val broker_count : t -> int

val arcs : t -> int
(** Directed arcs kept by the projection (2x its undirected edge count). *)
