(** PageRank by power iteration, used by the PageRank-Based (PRB) baseline
    broker selection and the Fig. 3 correlation study. Undirected edges are
    treated as arcs in both directions. *)

val compute :
  ?damping:float -> ?tol:float -> ?max_iter:int -> Graph.t -> float array
(** [compute g] returns scores summing to 1. Defaults: damping 0.85,
    tolerance 1e-10 (L1 change per iteration), at most 200 iterations.
    Isolated vertices receive the teleport mass only. *)

val top : Graph.t -> k:int -> int array
(** Indices of the [k] highest-PageRank vertices, best first. *)
