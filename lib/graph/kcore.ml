let coreness g =
  let n = Graph.n g in
  let deg = Array.make n 0 in
  Graph.degrees_into g deg;
  let max_deg = Array.fold_left max 0 deg in
  (* Bucket sort vertices by current degree. *)
  let bin = Array.make (max_deg + 1) 0 in
  Array.iter (fun d -> bin.(d) <- bin.(d) + 1) deg;
  let start = ref 0 in
  for d = 0 to max_deg do
    let count = bin.(d) in
    bin.(d) <- !start;
    start := !start + count
  done;
  let pos = Array.make n 0 in
  let vert = Array.make n 0 in
  Array.iteri
    (fun v d ->
      pos.(v) <- bin.(d);
      vert.(bin.(d)) <- v;
      bin.(d) <- bin.(d) + 1)
    deg;
  (* Restore bucket starts. *)
  for d = max_deg downto 1 do
    bin.(d) <- bin.(d - 1)
  done;
  if max_deg >= 0 then bin.(0) <- 0;
  let core = Array.copy deg in
  for i = 0 to n - 1 do
    let v = vert.(i) in
    Graph.iter_neighbors g v (fun u ->
        if core.(u) > core.(v) then begin
          (* Move u one bucket down by swapping it with the first vertex of
             its bucket. *)
          let du = core.(u) in
          let pu = pos.(u) in
          let pw = bin.(du) in
          let w = vert.(pw) in
          if u <> w then begin
            pos.(u) <- pw;
            pos.(w) <- pu;
            vert.(pu) <- w;
            vert.(pw) <- u
          end;
          bin.(du) <- bin.(du) + 1;
          core.(u) <- du - 1
        end)
  done;
  core

let degeneracy g =
  let core = coreness g in
  Array.fold_left max 0 core

let core_members g ~k =
  let core = coreness g in
  let out = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if core.(v) >= k then out := v :: !out
  done;
  Array.of_list !out
