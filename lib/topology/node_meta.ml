type kind = Tier1 | Transit | Access | Content | Enterprise | Ixp

let kind_to_string = function
  | Tier1 -> "Tier1"
  | Transit -> "Transit"
  | Access -> "Access"
  | Content -> "Content"
  | Enterprise -> "Enterprise"
  | Ixp -> "IXP"

let kind_equal (a : kind) b = a = b
let is_as = function Ixp -> false | Tier1 | Transit | Access | Content | Enterprise -> true
let all_kinds = [ Tier1; Transit; Access; Content; Enterprise; Ixp ]

type relation = Customer_provider | Peer | Ixp_member

module Relations = struct
  (* Keyed by the canonical (min, max) pair; the payload records which
     orientation is the customer for C2P links. *)
  type entry = C2p_low_customer | C2p_high_customer | Peer_e | Ixp_e

  type t = (int * int, entry) Hashtbl.t

  let create () : t = Hashtbl.create 1024

  let key u v = if u < v then (u, v) else (v, u)

  let add_c2p t ~customer ~provider =
    if customer = provider then invalid_arg "Relations.add_c2p: self edge";
    let entry =
      if customer < provider then C2p_low_customer else C2p_high_customer
    in
    Hashtbl.replace t (key customer provider) entry

  let add_peer t u v =
    if u = v then invalid_arg "Relations.add_peer: self edge";
    Hashtbl.replace t (key u v) Peer_e

  let add_ixp_member t ~as_node ~ixp =
    if as_node = ixp then invalid_arg "Relations.add_ixp_member: self edge";
    Hashtbl.replace t (key as_node ixp) Ixp_e

  let find t u v =
    match Hashtbl.find_opt t (key u v) with
    | None -> None
    | Some (C2p_low_customer | C2p_high_customer) -> Some Customer_provider
    | Some Peer_e -> Some Peer
    | Some Ixp_e -> Some Ixp_member

  let customer_of t u v =
    match Hashtbl.find_opt t (key u v) with
    | Some C2p_low_customer -> u < v
    | Some C2p_high_customer -> u > v
    | Some (Peer_e | Ixp_e) | None -> false

  let provider_of t u v = customer_of t v u

  let peers t u v =
    match Hashtbl.find_opt t (key u v) with
    | Some (Peer_e | Ixp_e) -> true
    | Some (C2p_low_customer | C2p_high_customer) | None -> false

  let cardinal t = Hashtbl.length t
end
