(** Node and edge metadata of the AS-level Internet topology.

    Node kinds follow the classification the paper borrows from CAIDA
    (Transit/Access, Content, Enterprise) plus Tier-1 transit and IXPs.
    Edge relations follow the Gao business-relationship model: a link is
    either customer-to-provider, settlement-free peering, or an IXP
    membership (AS connected to an IXP fabric). *)

type kind =
  | Tier1  (** top-level transit provider, member of the tier-1 clique *)
  | Transit  (** regional/national transit & access provider *)
  | Access  (** eyeball/access network *)
  | Content  (** content provider / CDN *)
  | Enterprise  (** enterprise stub network *)
  | Ixp  (** Internet eXchange Point fabric, modelled as a node *)

val kind_to_string : kind -> string
val kind_equal : kind -> kind -> bool
val is_as : kind -> bool
(** Every kind except [Ixp]. *)

val all_kinds : kind list

type relation =
  | Customer_provider
      (** the canonical lower endpoint pays the higher one; orientation is
          stored by {!Relations.add_c2p} *)
  | Peer
  | Ixp_member

(** Business relations of all edges of a topology. Lookup is
    orientation-aware: [customer_of t u v] answers whether [u] buys transit
    from [v]. *)
module Relations : sig
  type t

  val create : unit -> t
  val add_c2p : t -> customer:int -> provider:int -> unit
  val add_peer : t -> int -> int -> unit
  val add_ixp_member : t -> as_node:int -> ixp:int -> unit

  val find : t -> int -> int -> relation option
  (** Relation of the undirected edge, if recorded. *)

  val customer_of : t -> int -> int -> bool
  (** [customer_of t u v] iff the edge is C2P with [u] the customer. *)

  val provider_of : t -> int -> int -> bool
  val peers : t -> int -> int -> bool
  (** True for both [Peer] and [Ixp_member] edges. *)

  val cardinal : t -> int
end
