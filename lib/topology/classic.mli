(** Classic random-graph generators — the comparison topologies of the
    paper's Table 3 (ER-Random, WS-Small-World, BA-Scale-free). All are
    deterministic given the RNG. *)

val erdos_renyi :
  rng:Broker_util.Xrandom.t -> n:int -> m:int -> Broker_graph.Graph.t
(** G(n, m): [m] uniform random edges (duplicates collapse, so the realized
    edge count can be marginally below [m] on dense requests). *)

val watts_strogatz :
  rng:Broker_util.Xrandom.t -> n:int -> k:int -> beta:float -> Broker_graph.Graph.t
(** Ring lattice on [n] vertices, each joined to its [k] nearest neighbours
    ([k] even), with each edge rewired to a random endpoint with probability
    [beta]. *)

val barabasi_albert :
  rng:Broker_util.Xrandom.t -> n:int -> m:int -> Broker_graph.Graph.t
(** Preferential attachment: [m] edges per arriving vertex, seeded with an
    [m+1]-clique. *)
