(** A labelled AS-level topology: the graph plus node kinds, tiers, display
    names and business relations. This is the composite structure the
    experiments consume. *)

type t = {
  graph : Broker_graph.Graph.t;
  kinds : Node_meta.kind array;
  tiers : int array;
      (** 1 = tier-1, 2 = transit, 3 = stub levels, 0 = IXP *)
  names : string array;
  relations : Node_meta.Relations.t;
}

val n : t -> int
val is_ixp : t -> int -> bool
val is_as : t -> int -> bool
val ixps : t -> int array
val ases : t -> int array

val count_kind : t -> Node_meta.kind -> int

val as_as_edges : t -> int
(** Number of AS–AS connections (paper's Table 2 row). *)

val as_ixp_edges : t -> int
(** Number of AS–IXP connections. *)

val with_ases_only : t -> t * int array
(** Restriction to AS nodes ("ASes without IXPs" in Table 3). Returns the
    restricted topology and the mapping from new ids to old ids. *)

val tier1_members : t -> int array

val ixp_connected_fraction : t -> float
(** Fraction of ASes with at least one IXP membership (paper: 40.2%). *)
