module G = Broker_graph.Graph

type summary = {
  ixps : int;
  ases : int;
  max_connected_subgraph : int;
  as_as_connections : int;
  as_ixp_connections : int;
  ixp_connected_fraction : float;
}

let summarize t =
  let comps = Broker_graph.Components.compute t.Topology.graph in
  let _, largest = Broker_graph.Components.largest comps in
  {
    ixps = Topology.count_kind t Node_meta.Ixp;
    ases = Topology.n t - Topology.count_kind t Node_meta.Ixp;
    max_connected_subgraph = largest;
    as_as_connections = Topology.as_as_edges t;
    as_ixp_connections = Topology.as_ixp_edges t;
    ixp_connected_fraction = Topology.ixp_connected_fraction t;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>IXPs: %d@,ASes: %d@,Max connected subgraph: %d@,AS-AS connections: %d@,AS-IXP connections: %d@,ASes with IXP membership: %.1f%%@]"
    s.ixps s.ases s.max_connected_subgraph s.as_as_connections
    s.as_ixp_connections
    (100.0 *. s.ixp_connected_fraction)

let kind_code = function
  | Node_meta.Tier1 -> "t1"
  | Node_meta.Transit -> "tr"
  | Node_meta.Access -> "ac"
  | Node_meta.Content -> "co"
  | Node_meta.Enterprise -> "en"
  | Node_meta.Ixp -> "ix"

let kind_of_code = function
  | "t1" -> Node_meta.Tier1
  | "tr" -> Node_meta.Transit
  | "ac" -> Node_meta.Access
  | "co" -> Node_meta.Content
  | "en" -> Node_meta.Enterprise
  | "ix" -> Node_meta.Ixp
  | s -> failwith (Printf.sprintf "Dataset.load: unknown kind %S" s)

let save ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let n = Topology.n t in
      Printf.fprintf oc "brokerset-topology 1 %d %d\n" n (G.m t.Topology.graph);
      for v = 0 to n - 1 do
        Printf.fprintf oc "n %d %s %d %s\n" v
          (kind_code t.Topology.kinds.(v))
          t.Topology.tiers.(v) t.Topology.names.(v)
      done;
      G.iter_edges t.Topology.graph (fun u v ->
          let rel =
            match Node_meta.Relations.find t.Topology.relations u v with
            | Some Node_meta.Customer_provider ->
                if Node_meta.Relations.customer_of t.Topology.relations u v
                then "cp"
                else "pc"
            | Some Node_meta.Peer -> "pp"
            | Some Node_meta.Ixp_member -> "im"
            | None -> "--"
          in
          Printf.fprintf oc "e %d %d %s\n" u v rel))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      let n, m =
        match String.split_on_char ' ' header with
        | [ "brokerset-topology"; "1"; n; m ] -> (int_of_string n, int_of_string m)
        | _ -> failwith "Dataset.load: bad header"
      in
      let kinds = Array.make n Node_meta.Enterprise in
      let tiers = Array.make n 3 in
      let names = Array.make n "" in
      let relations = Node_meta.Relations.create () in
      let edges = Array.make m (0, 0) in
      let n_edges = ref 0 in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | "n" :: v :: kind :: tier :: name_parts ->
               let v = int_of_string v in
               kinds.(v) <- kind_of_code kind;
               tiers.(v) <- int_of_string tier;
               names.(v) <- String.concat " " name_parts
           | [ "e"; u; v; rel ] ->
               let u = int_of_string u and v = int_of_string v in
               edges.(!n_edges) <- (u, v);
               incr n_edges;
               (match rel with
               | "cp" -> Node_meta.Relations.add_c2p relations ~customer:u ~provider:v
               | "pc" -> Node_meta.Relations.add_c2p relations ~customer:v ~provider:u
               | "pp" -> Node_meta.Relations.add_peer relations u v
               | "im" ->
                   if Node_meta.kind_equal kinds.(v) Node_meta.Ixp then
                     Node_meta.Relations.add_ixp_member relations ~as_node:u ~ixp:v
                   else Node_meta.Relations.add_ixp_member relations ~as_node:v ~ixp:u
               | "--" -> ()
               | s -> failwith (Printf.sprintf "Dataset.load: unknown relation %S" s))
           | [] | [ "" ] -> ()
           | _ -> failwith "Dataset.load: malformed line"
         done
       with End_of_file -> ());
      let graph = G.of_edges ~n (Array.sub edges 0 !n_edges) in
      { Topology.graph; kinds; tiers; names; relations })
