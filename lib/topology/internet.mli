(** Synthetic AS-level Internet topology with IXPs.

    Stand-in for the paper's 2014 CAIDA/RouteViews + IXP dataset (Table 2):
    51,757 ASes, 322 IXPs, 347,332 AS–AS connections, 55,282 AS–IXP
    connections, 40.2% of ASes IXP-connected, and the (0.99, 4)-graph
    small-world property. The generator reproduces those aggregates with a
    tiered construction:

    - a clique of tier-1 providers (settlement-free peering);
    - transit ASes multihoming into the tier-1/transit core
      (customer-to-provider links, degree-preferential provider choice);
    - stub ASes (access/content/enterprise) multihoming into transit;
    - extra degree-preferential peering links up to the AS–AS edge budget;
    - IXPs with heavy-tailed membership sizes over a degree-biased 40% of
      ASes.

    All randomness comes from the seeded generator, so a parameter set
    identifies the topology exactly. *)

type params = {
  n_as : int;
  n_ixp : int;
  n_tier1 : int;
  transit_frac : float;  (** fraction of ASes that are transit providers *)
  as_as_edge_target : int;
  as_ixp_edge_target : int;
  ixp_connect_frac : float;  (** fraction of ASes with >= 1 IXP membership *)
  seed : int;
}

val default : params
(** Full paper scale: 51,757 ASes + 322 IXPs. *)

val scaled : float -> params
(** [scaled s] shrinks every size of [default] by factor [s] (>= some small
    minimums so the structure survives). *)

val generate : params -> Topology.t
(** Deterministic for a given [params]. *)
