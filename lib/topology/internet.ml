module G = Broker_graph.Graph
module R = Broker_util.Xrandom

let src = Logs.Src.create "broker.topology" ~doc:"AS+IXP topology generation"

module Log = (val Logs.src_log src : Logs.LOG)

type params = {
  n_as : int;
  n_ixp : int;
  n_tier1 : int;
  transit_frac : float;
  as_as_edge_target : int;
  as_ixp_edge_target : int;
  ixp_connect_frac : float;
  seed : int;
}

let default =
  {
    n_as = 51_757;
    n_ixp = 322;
    n_tier1 = 15;
    transit_frac = 0.06;
    as_as_edge_target = 347_332;
    as_ixp_edge_target = 55_282;
    ixp_connect_frac = 0.402;
    seed = 42;
  }

let scaled s =
  if s <= 0.0 || s > 1.0 then invalid_arg "Internet.scaled: factor in (0,1]";
  let shrink x lo = max lo (int_of_float (float_of_int x *. s)) in
  {
    default with
    n_as = shrink default.n_as 200;
    n_ixp = shrink default.n_ixp 6;
    n_tier1 = shrink default.n_tier1 5;
    as_as_edge_target = shrink default.as_as_edge_target 1_000;
    as_ixp_edge_target = shrink default.as_ixp_edge_target 200;
  }

(* Degree-preferential endpoint pool: vertices appear once per incident
   edge, so uniform draws are degree-weighted. *)
type pool = { mutable arr : int array; mutable len : int }

let pool_create cap = { arr = Array.make (max cap 16) 0; len = 0 }

let pool_push p v =
  if p.len = Array.length p.arr then begin
    let bigger = Array.make (2 * Array.length p.arr) 0 in
    Array.blit p.arr 0 bigger 0 p.len;
    p.arr <- bigger
  end;
  p.arr.(p.len) <- v;
  p.len <- p.len + 1

let pool_draw rng p = p.arr.(R.int rng p.len)

let generate params =
  let {
    n_as;
    n_ixp;
    n_tier1;
    transit_frac;
    as_as_edge_target;
    as_ixp_edge_target;
    ixp_connect_frac;
    seed;
  } =
    params
  in
  if n_tier1 < 2 || n_as <= n_tier1 then invalid_arg "Internet.generate: sizes";
  let rng = R.create seed in
  let n_transit = max n_tier1 (int_of_float (transit_frac *. float_of_int n_as)) in
  let n_total = n_as + n_ixp in
  let kinds = Array.make n_total Node_meta.Enterprise in
  let tiers = Array.make n_total 3 in
  let relations = Node_meta.Relations.create () in
  let edges = ref [] in
  let n_edges = ref 0 in
  let edge_seen = Hashtbl.create (4 * as_as_edge_target) in
  let add_edge u v =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem edge_seen key) then begin
      Hashtbl.replace edge_seen key ();
      edges := (u, v) :: !edges;
      incr n_edges;
      true
    end
    else false
  in
  (* Kind assignment: ids 0..n_tier1-1 tier-1; next transit; stubs mixed. *)
  for v = 0 to n_tier1 - 1 do
    kinds.(v) <- Node_meta.Tier1;
    tiers.(v) <- 1
  done;
  for v = n_tier1 to n_transit - 1 do
    kinds.(v) <- Node_meta.Transit;
    tiers.(v) <- 2
  done;
  for v = n_transit to n_as - 1 do
    let r = R.float rng 1.0 in
    kinds.(v) <-
      (if r < 0.08 then Node_meta.Content
       else if r < 0.53 then Node_meta.Access
       else Node_meta.Enterprise)
  done;
  for v = n_as to n_total - 1 do
    kinds.(v) <- Node_meta.Ixp;
    tiers.(v) <- 0
  done;
  (* Transit-core preferential pool (tier-1 + transit only). *)
  let core_pool = pool_create (4 * n_transit) in
  (* Tier-1 clique: settlement-free peering. *)
  for u = 0 to n_tier1 - 1 do
    for v = u + 1 to n_tier1 - 1 do
      if add_edge u v then begin
        Node_meta.Relations.add_peer relations u v;
        pool_push core_pool u;
        pool_push core_pool v
      end
    done
  done;
  (* Transit ASes multihome into the existing core. *)
  let providers_buf = Hashtbl.create 8 in
  let multihome v pool n_providers =
    Hashtbl.reset providers_buf;
    let tries = ref 0 in
    while Hashtbl.length providers_buf < n_providers && !tries < 40 * n_providers do
      incr tries;
      let p = pool_draw rng pool in
      if p <> v then Hashtbl.replace providers_buf p ()
    done;
    Hashtbl.iter
      (fun p () ->
        if add_edge v p then begin
          Node_meta.Relations.add_c2p relations ~customer:v ~provider:p;
          pool_push core_pool v;
          pool_push core_pool p
        end)
      providers_buf
  in
  for v = n_tier1 to n_transit - 1 do
    let n_providers = 1 + min 3 (R.geometric rng 0.55) in
    multihome v core_pool n_providers
  done;
  (* Stub ASes multihome into transit (not into other stubs). *)
  let stub_provider_count rng =
    let r = R.float rng 1.0 in
    if r < 0.50 then 1 else if r < 0.85 then 2 else 3
  in
  for v = n_transit to n_as - 1 do
    Hashtbl.reset providers_buf;
    let wanted = stub_provider_count rng in
    let tries = ref 0 in
    while Hashtbl.length providers_buf < wanted && !tries < 40 * wanted do
      incr tries;
      let p = pool_draw rng core_pool in
      (* Only transit-capable nodes provide transit to stubs. *)
      if p <> v && tiers.(p) <= 2 then Hashtbl.replace providers_buf p ()
    done;
    Hashtbl.iter
      (fun p () ->
        if add_edge v p then begin
          Node_meta.Relations.add_c2p relations ~customer:v ~provider:p;
          pool_push core_pool p
          (* Stubs are not pushed: they never attract attachments. *)
        end)
      providers_buf
  done;
  (* Extra peering links up to the AS-AS edge budget. Endpoints are drawn
     degree-weighted over all ASes, concentrating peering in the core as in
     the real AS graph. *)
  let all_pool = pool_create (4 * as_as_edge_target) in
  List.iter
    (fun (u, v) ->
      pool_push all_pool u;
      pool_push all_pool v)
    !edges;
  let guard = ref 0 in
  let budget_guard = 30 * as_as_edge_target in
  while !n_edges < as_as_edge_target && !guard < budget_guard do
    incr guard;
    let u = pool_draw rng all_pool in
    let v = pool_draw rng all_pool in
    if u <> v && add_edge u v then begin
      Node_meta.Relations.add_peer relations u v;
      pool_push all_pool u;
      pool_push all_pool v
    end
  done;
  (* IXP memberships: a degree-biased ~ixp_connect_frac of ASes join, and
     membership slots are split across IXPs with heavy-tailed popularity. *)
  let as_degree = Array.make n_as 0 in
  List.iter
    (fun (u, v) ->
      as_degree.(u) <- as_degree.(u) + 1;
      as_degree.(v) <- as_degree.(v) + 1)
    !edges;
  let n_connected = int_of_float (ixp_connect_frac *. float_of_int n_as) in
  (* Efraimidis–Spirakis weighted sampling without replacement: keys
     u^(1/w), keep the n_connected largest. *)
  let keys =
    Array.init n_as (fun v ->
        let w = float_of_int (as_degree.(v) + 1) in
        let u = R.float rng 1.0 in
        (u ** (1.0 /. w), v))
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare b a) keys;
  let members = Array.init (min n_connected n_as) (fun i -> snd keys.(i)) in
  let ixp_weights =
    Array.init n_ixp (fun _ -> R.pareto rng ~alpha:1.1 ~x_min:1.0)
  in
  let draw_ixp = Broker_util.Sampling.weighted_alias ixp_weights in
  (* Every connected AS gets one membership; the remaining budget goes to
     degree-weighted repeat memberships. *)
  let add_membership v ixp_local =
    let ixp = n_as + ixp_local in
    if add_edge v ixp then begin
      Node_meta.Relations.add_ixp_member relations ~as_node:v ~ixp;
      true
    end
    else false
  in
  Array.iter (fun v -> ignore (add_membership v (draw_ixp rng))) members;
  let member_pool = pool_create (4 * Array.length members) in
  Array.iter
    (fun v ->
      (* Seed weight: AS degree, so big ASes collect more memberships. *)
      for _ = 0 to min 16 as_degree.(v) do
        pool_push member_pool v
      done)
    members;
  let total_edge_target = as_as_edge_target + as_ixp_edge_target in
  let guard = ref 0 in
  let budget_guard = 30 * as_ixp_edge_target in
  while !n_edges < total_edge_target && !guard < budget_guard do
    incr guard;
    let v = pool_draw rng member_pool in
    ignore (add_membership v (draw_ixp rng))
  done;
  (* Names. *)
  let names =
    Array.init n_total (fun v ->
        if v < n_as then
          Printf.sprintf "%s-AS%d"
            (match kinds.(v) with
            | Node_meta.Tier1 -> "T1"
            | Node_meta.Transit -> "TR"
            | Node_meta.Access -> "AC"
            | Node_meta.Content -> "CO"
            | Node_meta.Enterprise -> "EN"
            | Node_meta.Ixp -> assert false)
            v
        else Printf.sprintf "IXP-%d" (v - n_as))
  in
  let graph = G.of_edges ~n:n_total (Array.of_list !edges) in
  Log.info (fun m ->
      m "generated topology: %d ASes + %d IXPs, %d edges (seed %d)" n_as n_ixp
        (G.m graph) seed);
  { Topology.graph; kinds; tiers; names; relations }
