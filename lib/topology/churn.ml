module G = Broker_graph.Graph
module R = Broker_util.Xrandom

let grow ~rng topo ~new_ases =
  if new_ases < 0 then invalid_arg "Churn.grow: negative growth";
  let old_n = Topology.n topo in
  let n = old_n + new_ases in
  let edges = ref [] in
  let relations = Node_meta.Relations.create () in
  (* One in-place sweep collects the old edges and copies their relations
     onto the same ids — no materialized edge array. *)
  G.iter_edges topo.Topology.graph (fun u v ->
      edges := (u, v) :: !edges;
      match Node_meta.Relations.find topo.Topology.relations u v with
      | Some Node_meta.Customer_provider ->
          if Node_meta.Relations.customer_of topo.Topology.relations u v then
            Node_meta.Relations.add_c2p relations ~customer:u ~provider:v
          else Node_meta.Relations.add_c2p relations ~customer:v ~provider:u
      | Some Node_meta.Peer -> Node_meta.Relations.add_peer relations u v
      | Some Node_meta.Ixp_member ->
          if Topology.is_ixp topo v then
            Node_meta.Relations.add_ixp_member relations ~as_node:u ~ixp:v
          else Node_meta.Relations.add_ixp_member relations ~as_node:v ~ixp:u
      | None -> ());
  (* Degree-weighted provider pool over the existing transit core. *)
  let core = ref [] in
  for v = 0 to old_n - 1 do
    if topo.Topology.tiers.(v) >= 1 && topo.Topology.tiers.(v) <= 2 then
      for _ = 0 to G.degree topo.Topology.graph v do
        core := v :: !core
      done
  done;
  let pool = Array.of_list !core in
  if Array.length pool = 0 then invalid_arg "Churn.grow: no transit core";
  let ixps = Topology.ixps topo in
  let kinds = Array.make n Node_meta.Enterprise in
  let tiers = Array.make n 3 in
  let names = Array.make n "" in
  Array.blit topo.Topology.kinds 0 kinds 0 old_n;
  Array.blit topo.Topology.tiers 0 tiers 0 old_n;
  Array.blit topo.Topology.names 0 names 0 old_n;
  for v = old_n to n - 1 do
    let r = R.float rng 1.0 in
    kinds.(v) <-
      (if r < 0.08 then Node_meta.Content
       else if r < 0.53 then Node_meta.Access
       else Node_meta.Enterprise);
    names.(v) <- Printf.sprintf "NEW-AS%d" v;
    (* 1-3 providers, degree-preferential. *)
    let wanted = 1 + R.int rng 3 in
    let chosen = Hashtbl.create 4 in
    let tries = ref 0 in
    while Hashtbl.length chosen < wanted && !tries < 40 do
      incr tries;
      Hashtbl.replace chosen pool.(R.int rng (Array.length pool)) ()
    done;
    Hashtbl.iter
      (fun p () ->
        edges := (v, p) :: !edges;
        Node_meta.Relations.add_c2p relations ~customer:v ~provider:p)
      chosen;
    (* ~40% also join a random IXP, mirroring the base topology. *)
    if Array.length ixps > 0 && R.bernoulli rng 0.4 then begin
      let x = ixps.(R.int rng (Array.length ixps)) in
      edges := (v, x) :: !edges;
      Node_meta.Relations.add_ixp_member relations ~as_node:v ~ixp:x
    end
  done;
  let graph = G.of_edges ~n (Array.of_list !edges) in
  { Topology.graph; kinds; tiers; names; relations }
