module G = Broker_graph.Graph
module R = Broker_util.Xrandom

let erdos_renyi ~rng ~n ~m =
  if n < 2 then invalid_arg "Classic.erdos_renyi: need n >= 2";
  let edges =
    Array.init m (fun _ ->
        let u = R.int rng n in
        let v = ref (R.int rng n) in
        while !v = u do
          v := R.int rng n
        done;
        (u, !v))
  in
  G.of_edges ~n edges

let watts_strogatz ~rng ~n ~k ~beta =
  if k mod 2 <> 0 || k <= 0 then invalid_arg "Classic.watts_strogatz: k must be positive and even";
  if n <= k then invalid_arg "Classic.watts_strogatz: need n > k";
  let edges = ref [] in
  (* Ring lattice edges, possibly rewiring the far endpoint. *)
  for u = 0 to n - 1 do
    for j = 1 to k / 2 do
      let v = (u + j) mod n in
      if R.float rng 1.0 < beta then begin
        let w = ref (R.int rng n) in
        while !w = u do
          w := R.int rng n
        done;
        edges := (u, !w) :: !edges
      end
      else edges := (u, v) :: !edges
    done
  done;
  G.of_edges ~n (Array.of_list !edges)

let barabasi_albert ~rng ~n ~m =
  if m < 1 then invalid_arg "Classic.barabasi_albert: m must be >= 1";
  if n <= m then invalid_arg "Classic.barabasi_albert: need n > m";
  let edges = ref [] in
  (* Growable repeated-endpoints array implements preferential attachment:
     a vertex appears once per incident edge, so uniform draws are
     degree-weighted. *)
  let endpoints = ref (Array.make 1024 0) in
  let n_endpoints = ref 0 in
  let push v =
    if !n_endpoints = Array.length !endpoints then begin
      let bigger = Array.make (2 * !n_endpoints) 0 in
      Array.blit !endpoints 0 bigger 0 !n_endpoints;
      endpoints := bigger
    end;
    !endpoints.(!n_endpoints) <- v;
    incr n_endpoints
  in
  (* Seed: clique on vertices 0..m. *)
  for u = 0 to m do
    for v = u + 1 to m do
      edges := (u, v) :: !edges;
      push u;
      push v
    done
  done;
  for u = m + 1 to n - 1 do
    let chosen = Hashtbl.create (2 * m) in
    let tries = ref 0 in
    while Hashtbl.length chosen < m && !tries < 50 * m do
      incr tries;
      let v = !endpoints.(R.int rng !n_endpoints) in
      if v <> u then Hashtbl.replace chosen v ()
    done;
    Hashtbl.iter
      (fun v () ->
        edges := (u, v) :: !edges;
        push u;
        push v)
      chosen
  done;
  G.of_edges ~n (Array.of_list !edges)
