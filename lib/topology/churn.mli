(** Topology growth / churn (reproduction extension).

    The Internet the paper measured kept growing; a broker set selected
    today must keep working tomorrow. [grow] extends a topology with new
    stub ASes attaching preferentially to the existing transit core —
    the same process the generator uses — so experiments can measure how a
    frozen broker set's coverage decays and how cheap incremental repair
    (topping up with {!Broker_core.Maxsg.grow}-style picks) is compared to
    reselection from scratch. Existing node ids are preserved: the old
    broker set remains valid in the grown topology. *)

val grow :
  rng:Broker_util.Xrandom.t ->
  Topology.t ->
  new_ases:int ->
  Topology.t
(** Append [new_ases] stub ASes (ids [n .. n+new_ases-1]) multihoming into
    the existing transit/tier-1 core with degree-preferential provider
    choice; a realistic share also joins IXPs. Relations are extended
    accordingly. *)
