module G = Broker_graph.Graph

type t = {
  graph : G.t;
  kinds : Node_meta.kind array;
  tiers : int array;
  names : string array;
  relations : Node_meta.Relations.t;
}

let n t = G.n t.graph
let is_ixp t v = Node_meta.kind_equal t.kinds.(v) Node_meta.Ixp
let is_as t v = not (is_ixp t v)

let filter_nodes t pred =
  let out = ref [] in
  for v = n t - 1 downto 0 do
    if pred v then out := v :: !out
  done;
  Array.of_list !out

let ixps t = filter_nodes t (is_ixp t)
let ases t = filter_nodes t (is_as t)

let count_kind t kind =
  Array.fold_left
    (fun acc k -> if Node_meta.kind_equal k kind then acc + 1 else acc)
    0 t.kinds

let count_edges t pred =
  let acc = ref 0 in
  G.iter_edges t.graph (fun u v -> if pred u v then incr acc);
  !acc

let as_as_edges t = count_edges t (fun u v -> is_as t u && is_as t v)
let as_ixp_edges t = count_edges t (fun u v -> is_ixp t u <> is_ixp t v)

let with_ases_only t =
  let old_ids = ases t in
  let remap = Array.make (n t) (-1) in
  Array.iteri (fun new_id old_id -> remap.(old_id) <- new_id) old_ids;
  let edges = ref [] in
  G.iter_edges t.graph (fun u v ->
      if remap.(u) >= 0 && remap.(v) >= 0 then
        edges := (remap.(u), remap.(v)) :: !edges);
  let graph = G.of_edges ~n:(Array.length old_ids) (Array.of_list !edges) in
  let relations = Node_meta.Relations.create () in
  G.iter_edges graph (fun u v ->
      let ou = old_ids.(u) and ov = old_ids.(v) in
      match Node_meta.Relations.find t.relations ou ov with
      | Some Node_meta.Customer_provider ->
          if Node_meta.Relations.customer_of t.relations ou ov then
            Node_meta.Relations.add_c2p relations ~customer:u ~provider:v
          else Node_meta.Relations.add_c2p relations ~customer:v ~provider:u
      | Some Node_meta.Peer -> Node_meta.Relations.add_peer relations u v
      | Some Node_meta.Ixp_member | None -> ());
  ( {
      graph;
      kinds = Array.map (fun old_id -> t.kinds.(old_id)) old_ids;
      tiers = Array.map (fun old_id -> t.tiers.(old_id)) old_ids;
      names = Array.map (fun old_id -> t.names.(old_id)) old_ids;
      relations;
    },
    old_ids )

let tier1_members t =
  filter_nodes t (fun v -> Node_meta.kind_equal t.kinds.(v) Node_meta.Tier1)

let ixp_connected_fraction t =
  let as_total = ref 0 and connected = ref 0 in
  for v = 0 to n t - 1 do
    if is_as t v then begin
      incr as_total;
      let has_ixp = G.fold_neighbors t.graph v (fun acc w -> acc || is_ixp t w) false in
      if has_ixp then incr connected
    end
  done;
  if !as_total = 0 then 0.0 else float_of_int !connected /. float_of_int !as_total
