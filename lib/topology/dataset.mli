(** Topology persistence and dataset summaries (paper Table 2). *)

type summary = {
  ixps : int;
  ases : int;
  max_connected_subgraph : int;
  as_as_connections : int;
  as_ixp_connections : int;
  ixp_connected_fraction : float;
}

val summarize : Topology.t -> summary

val pp_summary : Format.formatter -> summary -> unit

val save : path:string -> Topology.t -> unit
(** Plain-text format: one header line, then node lines
    [v kind tier name] and edge lines [u v rel]. *)

val load : path:string -> Topology.t
(** Inverse of [save].
    @raise Failure on malformed input. *)
