type customer = {
  v_scale : float;
  v_curvature : float;
  p_peak : float;
  p_scale : float;
  a0 : float;
}

let customer ?(v_scale = 10.0) ?(v_curvature = 4.0) ?(p_peak = 0.6)
    ?(p_scale = 2.0) ?(a0 = 0.05) () =
  if v_scale <= 0.0 || v_curvature <= 0.0 then
    invalid_arg "Market.customer: v parameters must be positive";
  if p_peak < 0.0 || p_peak > 1.0 then
    invalid_arg "Market.customer: p_peak in [0,1]";
  if p_scale < 0.0 then invalid_arg "Market.customer: p_scale >= 0";
  if a0 < 0.0 || a0 > 1.0 then invalid_arg "Market.customer: a0 in [0,1]";
  { v_scale; v_curvature; p_peak; p_scale; a0 }

let random_population ~rng ~n =
  Array.init n (fun _ ->
      let jitter lo hi = lo +. Broker_util.Xrandom.float rng (hi -. lo) in
      customer ~v_scale:(jitter 5.0 15.0) ~v_curvature:(jitter 2.0 6.0)
        ~p_peak:(jitter 0.3 0.8) ~p_scale:(jitter 0.5 3.0)
        ~a0:(jitter 0.0 0.15) ())

let v c a = c.v_scale *. log (1.0 +. (c.v_curvature *. a)) /. log (1.0 +. c.v_curvature)

let p c a = c.p_scale *. (((1.0 -. c.p_peak) ** 2.0) -. ((a -. c.p_peak) ** 2.0))

let utility c ~price a = v c a +. p c a -. (price *. a)

let best_response c ~price =
  let f a = utility c ~price a in
  let a_star, _ = Broker_util.Optimize.golden_section_max ~tol:1e-10 f ~lo:c.a0 ~hi:1.0 in
  a_star

type broker_cost = { per_unit : float; concavity : float }

let default_cost = { per_unit = 0.5; concavity = 0.3 }

let cost bc alpha =
  if alpha < 0.0 then invalid_arg "Market.cost: negative traffic";
  (bc.per_unit *. alpha) +. (bc.concavity *. sqrt alpha)
