(** Nash bargaining between the broker coalition B and a hired "employee"
    AS (Section 7.1, Theorem 5).

    The employee transits traffic between two brokers for price [p_j] per
    unit volume, at cost [c]; its utility is [u_j = p_j - c] (Eq. 5). B
    charges [p_B] at both ends of the connection and budgets for hiring up
    to [h = ⌈β/2⌉] employees, giving the pessimistic per-unit utility
    [u_B = 2·p_B - h·p_j - h·c] (Eq. 6). The bargaining solution maximizes
    the Nash product [u_j · u_B] over [p_j > c] (Eq. 7). *)

type outcome = {
  price : float;  (** agreed per-unit transit price p_j *)
  u_employee : float;
  u_broker : float;
  nash_product : float;
}

val solve : ?cross_check:bool -> broker_price:float -> hops:int -> float -> outcome option
(** [solve ~broker_price ~hops cost]: closed-form maximizer
    [p_j = (2·p_B - h·c + h·c) / (2h) + c/2] of the concave Nash product,
    i.e. the midpoint between the employee's reservation price [c] and B's
    break-even price [(2·p_B - h·c)/h]. Returns [None] when the bargaining
    set is empty (B cannot profitably hire at any price above cost).
    [cross_check] (default false) verifies the closed form against a
    golden-section maximization and asserts agreement to 1e-6. *)

val feasible : broker_price:float -> hops:int -> cost:float -> bool
(** Non-empty bargaining set: [2·p_B > h·(2c)]... i.e. some price leaves
    both sides positive surplus. *)
