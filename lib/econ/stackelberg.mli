(** The Stackelberg pricing game of Section 7.1 (Theorem 6).

    B is the first mover and posts a per-unit routing price [p_B]; each
    customer AS [i] then best-responds with its adoption fraction
    [a_i(p_B)] (unique, since its utility is strictly concave — Eq. 10).
    B anticipates the responses and maximizes
    [u_B(p) = 2·p·α(p) - C(α(p))] over [0 <= p <= p_max] (Eq. 11).
    Backward induction: we evaluate the aggregate response [α(p)] exactly
    at every candidate price and search the outer objective, which is
    continuous on a compact interval — so an equilibrium exists. *)

type equilibrium = {
  price : float;  (** p_B at the Stackelberg equilibrium *)
  adoptions : float array;  (** a_i(p_B) per customer *)
  alpha : float;  (** Σ a_i *)
  broker_utility : float;
  customer_utilities : float array;
}

val aggregate_response : Market.customer array -> price:float -> float
(** [α(p) = Σ_i a_i(p)]. *)

val broker_utility :
  Market.customer array -> cost:Market.broker_cost -> price:float -> float

val solve :
  ?p_max:float ->
  ?steps:int ->
  Market.customer array ->
  cost:Market.broker_cost ->
  equilibrium
(** Backward-induction equilibrium; outer search is a [steps]-point grid
    (default 96) refined by golden section. [p_max] defaults to the largest
    marginal value any customer places on adoption (higher prices drive
    [α] to the boundary). *)

val full_adoption_price :
  Market.customer array -> epsilon:float -> float option
(** Largest grid price at which every customer adopts fully
    ([a_i >= 1 - epsilon]) — the paper's condition "make a_i = 1 under the
    steady state". [None] when even a zero price does not induce full
    adoption. *)
