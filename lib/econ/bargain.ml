type outcome = {
  price : float;
  u_employee : float;
  u_broker : float;
  nash_product : float;
}

(* u_j(p) = p - c;  u_B(p) = 2 p_B - h p - h c = R - h p  with
   R = 2 p_B - h c. The Nash product (p - c)(R - h p) is a concave parabola
   with roots c and R/h; the maximizer is their midpoint. *)
let feasible ~broker_price ~hops ~cost =
  if hops < 1 then invalid_arg "Bargain: hops must be >= 1";
  if cost < 0.0 then invalid_arg "Bargain: negative cost";
  let h = float_of_int hops in
  (2.0 *. broker_price) -. (h *. cost) > h *. cost

let solve ?(cross_check = false) ~broker_price ~hops cost =
  if not (feasible ~broker_price ~hops ~cost) then None
  else begin
    let h = float_of_int hops in
    let r = (2.0 *. broker_price) -. (h *. cost) in
    let price = (cost +. (r /. h)) /. 2.0 in
    if cross_check then begin
      let product p = (p -. cost) *. (r -. (h *. p)) in
      let p_num, _ =
        Broker_util.Optimize.golden_section_max ~tol:1e-10 product ~lo:cost
          ~hi:(r /. h)
      in
      assert (abs_float (p_num -. price) < 1e-6)
    end;
    let u_employee = price -. cost in
    let u_broker = r -. (h *. price) in
    Some { price; u_employee; u_broker; nash_product = u_employee *. u_broker }
  end
