(** Coalition-stability analysis of Section 7.2 (Theorems 7–8).

    - Superadditivity of the characteristic function implies individual
      rationality of the Shapley split (no single AS gains by leaving).
    - Supermodularity (convexity) implies group rationality — the Shapley
      value lies in the core, so no sub-coalition gains by splitting off.
    - The marginal-contribution curve of successively added brokers locates
      the point where supermodularity breaks — the paper's criterion for
      when to stop growing the broker set. *)

type check = { holds : bool; violations : int; trials : int }

val superadditive :
  rng:Broker_util.Xrandom.t -> n:int -> v:(int -> float) -> trials:int -> check
(** Sample disjoint pairs [K, L] and test
    [v(K ∪ L) >= v(K) + v(L) - 1e-9]. Exhaustive when [2^n <= 4096]. *)

val supermodular :
  rng:Broker_util.Xrandom.t -> n:int -> v:(int -> float) -> trials:int -> check
(** Sample chains [K ⊆ L ⊆ N\{j}] and test
    [v(K∪{j}) - v(K) <= v(L∪{j}) - v(L) + 1e-9]. *)

val individually_rational : v:(int -> float) -> n:int -> float array -> bool
(** [φ_j >= v({j})] for every player (Theorem 7's conclusion). *)

val group_rational :
  rng:Broker_util.Xrandom.t ->
  n:int ->
  v:(int -> float) ->
  float array ->
  trials:int ->
  check
(** [Σ_{j∈M} φ_j >= v(M)] on sampled coalitions [M] (Theorem 8's
    conclusion; exhaustive for small [n]). *)

val marginal_curve : float array -> float array
(** [marginal_curve values]: first differences of a value-per-prefix-size
    sequence; the index after which differences stop growing marks where
    supermodularity — and hence the incentive to keep adding brokers —
    ends. *)

val supermodularity_break : float array -> int option
(** First index (1-based prefix size) where the marginal contribution
    strictly decreases; [None] if never. *)
