let exact ~n ~v =
  if n < 1 || n > 20 then invalid_arg "Shapley.exact: n in [1, 20]";
  let fact = Array.make (n + 1) 1.0 in
  for i = 1 to n do
    fact.(i) <- fact.(i - 1) *. float_of_int i
  done;
  let phi = Array.make n 0.0 in
  let full = (1 lsl n) - 1 in
  for s = 0 to full do
    let size_s =
      let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
      pop s 0
    in
    if size_s < n then begin
      let vs = v s in
      (* Weight of adding j to coalition s: |s|! (n-|s|-1)! / n!. *)
      let w = fact.(size_s) *. fact.(n - size_s - 1) /. fact.(n) in
      for j = 0 to n - 1 do
        if s land (1 lsl j) = 0 then
          phi.(j) <- phi.(j) +. (w *. (v (s lor (1 lsl j)) -. vs))
      done
    end
  done;
  phi

let monte_carlo ~rng ~n ~samples ~v =
  if n < 1 || n > 62 then invalid_arg "Shapley.monte_carlo: n in [1, 62]";
  if samples < 1 then invalid_arg "Shapley.monte_carlo: samples >= 1";
  let phi = Array.make n 0.0 in
  for _ = 1 to samples do
    let perm = Broker_util.Xrandom.permutation rng n in
    let mask = ref 0 in
    let prev = ref (v 0) in
    Array.iter
      (fun j ->
        mask := !mask lor (1 lsl j);
        let cur = v !mask in
        phi.(j) <- phi.(j) +. (cur -. !prev);
        prev := cur)
      perm
  done;
  Array.map (fun x -> x /. float_of_int samples) phi

let efficiency_gap ~v ~n phi =
  let total = Array.fold_left ( +. ) 0.0 phi in
  abs_float (total -. v ((1 lsl n) - 1))
