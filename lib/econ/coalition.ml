type check = { holds : bool; violations : int; trials : int }

let tol = 1e-9

let superadditive ~rng ~n ~v ~trials =
  let full = (1 lsl n) - 1 in
  let violations = ref 0 and count = ref 0 in
  let test k l =
    if k land l = 0 && k <> 0 && l <> 0 then begin
      incr count;
      if v (k lor l) < v k +. v l -. tol then incr violations
    end
  in
  if full <= 4096 then
    for k = 1 to full do
      for l = 1 to full do
        test k l
      done
    done
  else
    for _ = 1 to trials do
      let k = Broker_util.Xrandom.int rng (full + 1) in
      let l = Broker_util.Xrandom.int rng (full + 1) land lnot k in
      test k l
    done;
  { holds = !violations = 0; violations = !violations; trials = !count }

let supermodular ~rng ~n ~v ~trials =
  let full = (1 lsl n) - 1 in
  let violations = ref 0 and count = ref 0 in
  let test j k l =
    let bit = 1 lsl j in
    if k land bit = 0 && l land bit = 0 && k land l = k (* K ⊆ L *) then begin
      incr count;
      let dk = v (k lor bit) -. v k and dl = v (l lor bit) -. v l in
      if dk > dl +. tol then incr violations
    end
  in
  if full <= 1024 then
    for j = 0 to n - 1 do
      for l = 0 to full do
        (* Enumerate subsets k of l. *)
        let k = ref l in
        let stop = ref false in
        while not !stop do
          test j !k l;
          if !k = 0 then stop := true else k := (!k - 1) land l
        done
      done
    done
  else
    for _ = 1 to trials do
      let j = Broker_util.Xrandom.int rng n in
      let l = Broker_util.Xrandom.int rng (full + 1) land lnot (1 lsl j) in
      (* Random subset of l. *)
      let k = Broker_util.Xrandom.int rng (full + 1) land l in
      test j k l
    done;
  { holds = !violations = 0; violations = !violations; trials = !count }

let individually_rational ~v ~n phi =
  let ok = ref true in
  for j = 0 to n - 1 do
    if phi.(j) < v (1 lsl j) -. tol then ok := false
  done;
  !ok

let group_rational ~rng ~n ~v phi ~trials =
  let full = (1 lsl n) - 1 in
  let violations = ref 0 and count = ref 0 in
  let test m =
    if m <> 0 then begin
      incr count;
      let sum = ref 0.0 in
      for j = 0 to n - 1 do
        if m land (1 lsl j) <> 0 then sum := !sum +. phi.(j)
      done;
      if !sum < v m -. tol then incr violations
    end
  in
  if full <= 65536 then
    for m = 1 to full do
      test m
    done
  else
    for _ = 1 to trials do
      test (Broker_util.Xrandom.int rng (full + 1))
    done;
  { holds = !violations = 0; violations = !violations; trials = !count }

let marginal_curve values =
  let n = Array.length values in
  if n = 0 then [||]
  else
    Array.init n (fun i -> if i = 0 then values.(0) else values.(i) -. values.(i - 1))

let supermodularity_break values =
  let marg = marginal_curve values in
  let n = Array.length marg in
  let rec scan i =
    if i >= n then None
    else if marg.(i) < marg.(i - 1) -. tol then Some i
    else scan (i + 1)
  in
  if n < 2 then None else scan 1
