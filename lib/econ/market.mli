(** Utility-function families of the Section 7 economic model.

    The paper leaves the customer-AS utility components abstract, imposing
    only shape conditions; we instantiate the standard parameterizations
    satisfying exactly those conditions (DESIGN.md §5):

    - [V_i(a)]: income from end users — continuous, strictly increasing,
      concave (diminishing returns on QoS). We use
      [v_scale · ln(1 + v_curvature·a) / ln(1 + v_curvature)].
    - [P_i(a)]: legacy routing cost/revenue rebalancing — continuous,
      concave, non-decreasing on [a0, peak], non-increasing after, with
      [P_i(1) = 0]. We use the concave parabola
      [p_scale · ((1 - peak)² - (a - peak)²)].
    - Customer utility: [u_i(a) = V_i(a) + P_i(a) - price·a], strictly
      concave, hence a unique best response (Theorem 6's inner stage). *)

type customer = {
  v_scale : float;  (** end-user income at full adoption *)
  v_curvature : float;  (** diminishing-returns curvature, > 0 *)
  p_peak : float;  (** adoption level where legacy rebalancing peaks *)
  p_scale : float;  (** magnitude of the legacy term *)
  a0 : float;  (** pre-existing (BGP-era) fraction routed through B *)
}

val customer :
  ?v_scale:float ->
  ?v_curvature:float ->
  ?p_peak:float ->
  ?p_scale:float ->
  ?a0:float ->
  unit ->
  customer
(** Defaults: [v_scale = 10], [v_curvature = 4], [p_peak = 0.6],
    [p_scale = 2], [a0 = 0.05].
    @raise Invalid_argument on out-of-range parameters. *)

val random_population :
  rng:Broker_util.Xrandom.t -> n:int -> customer array
(** Heterogeneous customers with jittered parameters, for the adoption
    experiments. *)

val v : customer -> float -> float
val p : customer -> float -> float

val utility : customer -> price:float -> float -> float
(** [utility c ~price a] = [V(a) + P(a) - price·a]. *)

val best_response : customer -> price:float -> float
(** The unique [a* ∈ [a0, 1]] maximizing utility at the given price. *)

type broker_cost = { per_unit : float; concavity : float }
(** Coalition cost [C(α) = per_unit·α + concavity·√α] — concavely
    increasing in total routed traffic [α], as assumed for Eq. (9). *)

val default_cost : broker_cost
val cost : broker_cost -> float -> float
