type equilibrium = {
  price : float;
  adoptions : float array;
  alpha : float;
  broker_utility : float;
  customer_utilities : float array;
}

let aggregate_response customers ~price =
  Array.fold_left
    (fun acc c -> acc +. Market.best_response c ~price)
    0.0 customers

let broker_utility customers ~cost ~price =
  let alpha = aggregate_response customers ~price in
  (2.0 *. price *. alpha) -. Market.cost cost alpha

let default_p_max customers =
  (* Above the steepest initial marginal value V'(a0) + P'(a0) no customer
     moves beyond a0, so the search interval can stop there. *)
  Array.fold_left
    (fun acc c ->
      let da = 1e-5 in
      let slope =
        (Market.utility c ~price:0.0 (c.Market.a0 +. da)
        -. Market.utility c ~price:0.0 c.Market.a0)
        /. da
      in
      Float.max acc slope)
    1.0 customers

let solve ?p_max ?(steps = 96) customers ~cost =
  if Array.length customers = 0 then invalid_arg "Stackelberg.solve: no customers";
  let p_max = match p_max with Some p -> p | None -> default_p_max customers in
  let objective price = broker_utility customers ~cost ~price in
  let price, _ =
    Broker_util.Optimize.grid_then_golden ~steps ~tol:1e-7 objective ~lo:0.0
      ~hi:p_max
  in
  let adoptions = Array.map (fun c -> Market.best_response c ~price) customers in
  let alpha = Array.fold_left ( +. ) 0.0 adoptions in
  let customer_utilities =
    Array.mapi (fun i c -> Market.utility c ~price adoptions.(i)) customers
  in
  {
    price;
    adoptions;
    alpha;
    broker_utility = (2.0 *. price *. alpha) -. Market.cost cost alpha;
    customer_utilities;
  }

let full_adoption_price customers ~epsilon =
  let full price =
    Array.for_all
      (fun c -> Market.best_response c ~price >= 1.0 -. epsilon)
      customers
  in
  if not (full 0.0) then None
  else begin
    (* Largest price keeping adoption full, by bisection on the indicator
       (adoption is monotone non-increasing in price). *)
    let lo = ref 0.0 and hi = ref (default_p_max customers) in
    if full !hi then Some !hi
    else begin
      for _ = 1 to 60 do
        let mid = (!lo +. !hi) /. 2.0 in
        if full mid then lo := mid else hi := mid
      done;
      Some !lo
    end
  end
