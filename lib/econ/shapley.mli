(** Shapley-value revenue distribution inside the broker coalition
    (Section 7.2, Eq. 12–13).

    The characteristic function is supplied as a closure over player
    bitmasks (player [i] present iff bit [i] set), so callers can wire it
    to anything — including the topology-level connectivity value used by
    the experiments. Exact computation enumerates all [2^n] subsets
    (feasible to ~20 players); beyond that, the permutation-sampling
    estimator of [35],[37] applies. *)

val exact : n:int -> v:(int -> float) -> float array
(** Exact Shapley values.
    @raise Invalid_argument when [n < 1] or [n > 20]. *)

val monte_carlo :
  rng:Broker_util.Xrandom.t ->
  n:int ->
  samples:int ->
  v:(int -> float) ->
  float array
(** Permutation-sampling estimate; unbiased, with standard error
    O(1/√samples). [n] up to 62 (bitmask width). *)

val efficiency_gap : v:(int -> float) -> n:int -> float array -> float
(** |Σ_j φ_j - v(N)| — zero for exact values (the efficiency axiom), small
    for Monte-Carlo estimates. *)
