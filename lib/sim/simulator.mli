(** Flow-level discrete-event simulation of the brokerage scheme.

    Sessions arrive between AS pairs and request a QoS-guaranteed
    B-dominated path. Admission control: every *broker* on the selected
    path must have spare capacity for the session's demand for its whole
    duration (brokers are the supervision/forwarding bottleneck the paper
    centralizes; non-broker endpoints are not capacity-constrained).
    Admitted sessions hold their reservation until departure; blocked ones
    fall back to best-effort BGP and count as rejected.

    Paths are hop-shortest dominated paths, computed once per distinct
    (src, dst) pair and cached in a {!Shard_cache} (strategy selectable
    via [?cache]; the default {!Shard_cache.Flush} reproduces the
    historical flush-on-crash behavior exactly, so runs without churn are
    byte-identical to older versions). Brokers earn
    [2·price·demand·duration] per
    admitted session (both endpoints pay, as in Fig. 6) and pay
    [employee_cost] per non-broker transit hop used.

    With {!chaos} supplied, the run becomes an event-driven loop — arrivals,
    departures, failures, recoveries and retries merged through one
    {!Event_queue} — that injects broker crash/recover events ({!Faults}),
    fails live sessions over onto alternate dominated paths avoiding down
    brokers, retries blocked arrivals with exponential backoff, and
    optionally sheds load via a per-broker admission circuit breaker.

    Determinism: given the same topology, broker set, session array and
    chaos value, [run] is bit-for-bit reproducible — the only randomness is
    the pre-generated fault stream and a jitter stream derived from
    [chaos_seed]. With [?chaos] absent the loop degenerates to the plain
    arrival/departure simulation, byte-identical to a chaos value with an
    empty fault stream and [no_retry]. *)

type config = {
  capacity_of : int -> float;  (** per-broker capacity in demand units *)
  price : float;  (** per unit demand-time charged at each end *)
  employee_cost : float;  (** per employee hop, per unit demand-time *)
}

val uniform_capacity : float -> config
(** Same capacity everywhere, price 1.0, employee cost 0.2. *)

val degree_capacity : Broker_graph.Graph.t -> factor:float -> config
(** Capacity proportional to broker degree — big hubs carry more. *)

type retry_policy = {
  max_attempts : int;  (** additional attempts after the initial one *)
  base_delay : float;
  multiplier : float;  (** exponential backoff factor *)
  jitter : float;
      (** each delay is scaled by [1 + jitter·u], [u ~ U(0,1)] drawn from
          the deterministic chaos jitter stream *)
}

val no_retry : retry_policy
(** [max_attempts = 0]: every blocked arrival is rejected immediately. *)

val default_retry : retry_policy
(** 3 attempts, base delay 1.0, doubling, jitter 0.5. *)

type breaker_policy = {
  high_water : float;  (** utilization fraction that arms the breaker *)
  trip_after : float;
      (** how long utilization must stay at/above [high_water] to trip *)
  cooldown : float;  (** a tripped broker sheds all arrivals this long *)
}

val default_breaker : breaker_policy
(** high-water 0.9, trip after 5.0, cooldown 25.0. *)

type chaos = {
  faults : Faults.event array;
      (** pre-generated, time-sorted; events for non-broker vertices are
          ignored. At equal times faults are served before departures and
          retries (pessimistic order). *)
  failover : bool;
      (** when a broker crashes, try to move its in-flight sessions onto an
          alternate dominated path avoiding every down broker (the X7
          ablation switch) *)
  retry : retry_policy;
  breaker : breaker_policy option;
      (** admission-side circuit breaker; failover placement is exempt *)
  chaos_seed : int;  (** seeds the retry-jitter stream *)
}

val default_chaos : Faults.event array -> chaos
(** Failover on, {!default_retry}, no breaker, seed 97. *)

type topo_churn = {
  updates : Topo_stream.event array;
      (** announce/withdraw stream stamped with *origin* times; the
          simulator delays each by the propagation model before it takes
          effect *)
  propagation : Topo_stream.propagation;
}
(** Streaming topology churn. Routing reads a {!Broker_graph.Delta}
    overlay over the base CSR; every applied update refreshes the
    overlay view and invalidates the whole path cache (an edge change
    can reroute any pair). At equal times faults are served before
    updates. With [?topo] absent — or an empty/no-op stream — the run is
    byte-identical to the static simulator. *)

type stats = {
  offered : int;  (** sessions presented (retries not re-counted) *)
  admitted : int;
  rejected_no_path : int;
  rejected_capacity : int;
  rejected_shed : int;  (** blocked by a tripped circuit breaker *)
  admission_rate : float;
  mean_hops : float;  (** over admitted sessions, at admission time *)
  employee_hop_fraction : float;
      (** fraction of admitted-session hops crossing a hired non-broker *)
  peak_in_flight : int;
  mean_broker_utilization : float;
      (** time-average of used/capacity over brokers that served traffic *)
  revenue : float;
      (** broker coalition net revenue; mid-flight drops refund the
          unserved remainder of their take *)
  failed_over : int;  (** session-reroute events caused by broker crashes *)
  dropped_midflight : int;  (** admitted sessions killed by a crash *)
  retried_admitted : int;  (** admitted on a retry attempt (> 0) *)
  broker_downtime : float;
      (** summed per-broker down time (union of overlapping outages),
          clipped to the run horizon *)
  revenue_lost : float;  (** refunds issued for mid-flight drops *)
  availability : float;
      (** 1 − downtime / (brokers · horizon); 1.0 without chaos *)
  topo_applied : int;
      (** delivered topology updates that changed the edge set *)
  topo_ignored : int;
      (** delivered updates that were already satisfied (duplicate
          announce, withdraw of an absent edge) *)
  cache : Shard_cache.stats;
      (** path-cache outcome tallies (hits, degraded serves, lazy
          repairs, recomputes, evictions) for the whole run *)
}

val delivered_rate : stats -> float
(** Fraction of offered sessions admitted {e and} carried to completion:
    [(admitted − dropped_midflight) / offered]. *)

val timeline_names : string list
(** The windowed series [run ?stats_window] collects into the
    {!Broker_obs.Timeseries} registry (restarted at each instrumented
    run, so they always describe the latest one):

    - [sim.ts.admitted] / [sim.ts.delivered] / [sim.ts.rejected] —
      per-window admissions, completed departures, and terminal
      rejections;
    - [sim.ts.cache.lookups] / [sim.ts.cache.recomputes] — path-cache
      traffic; a window's hit rate is [1 - recomputes/lookups], and
      recompute spikes are re-convergence work after crashes or applied
      topology updates;
    - [sim.ts.latency.queue_wait] — admission instant minus intended
      (open-loop) arrival, over admitted sessions;
    - [sim.ts.latency.admission] — intended arrival to {e final}
      decision (admit or terminal reject), over all decided sessions;
    - [sim.ts.latency.failover] — session age when a crash forced it
      onto an alternate path;
    - [sim.ts.latency.e2e] — intended arrival to completed departure.

    Latency series sketch their samples in
    {!Broker_obs.Timeseries.fixed_point} micro-units of sim-time. All
    series are keyed on sim-time and deterministic for a fixed
    seed/scale. *)

val stats_equal : stats -> stats -> bool
(** Field-wise equality, [Float.equal] on floats (no polymorphic compare). *)

val run :
  ?chaos:chaos ->
  ?topo:topo_churn ->
  ?cache:Shard_cache.strategy ->
  ?stats_window:float ->
  Broker_topo.Topology.t ->
  brokers:int array ->
  sessions:Workload.session array ->
  config ->
  stats
(** Deterministic given the inputs. Sessions must be sorted by arrival
    (as {!Workload.generate} produces). [?cache] selects the path-cache
    strategy (default {!Shard_cache.Flush}, the historical behavior);
    without faults every strategy admits the same sessions — only the
    cache outcome tallies may differ.

    [?stats_window w] additionally collects the {!timeline_names}
    series with window width [w] (sim-time units). Collection is
    passive — it never feeds back into admission — so [stats] and
    every golden are byte-identical with or without it; with the
    option absent no series is touched at all.
    @raise Invalid_argument on out-of-order arrivals, negative [price],
    [employee_cost] or [capacity_of], an out-of-range broker or topology
    update endpoint, an invalid cache strategy ([Ring] with
    [vnodes < 1]), or a non-positive [stats_window]. *)
