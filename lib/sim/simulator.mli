(** Flow-level discrete-event simulation of the brokerage scheme.

    Sessions arrive between AS pairs and request a QoS-guaranteed
    B-dominated path. Admission control: every *broker* on the selected
    path must have spare capacity for the session's demand for its whole
    duration (brokers are the supervision/forwarding bottleneck the paper
    centralizes; non-broker endpoints are not capacity-constrained).
    Admitted sessions hold their reservation until departure; blocked ones
    fall back to best-effort BGP and count as rejected.

    Paths are hop-shortest dominated paths, computed once per distinct
    (src, dst) pair and cached. Brokers earn [2·price·demand·duration] per
    admitted session (both endpoints pay, as in Fig. 6) and pay
    [employee_cost] per non-broker transit hop used. *)

type config = {
  capacity_of : int -> float;  (** per-broker capacity in demand units *)
  price : float;  (** per unit demand-time charged at each end *)
  employee_cost : float;  (** per employee hop, per unit demand-time *)
}

val uniform_capacity : float -> config
(** Same capacity everywhere, price 1.0, employee cost 0.2. *)

val degree_capacity : Broker_graph.Graph.t -> factor:float -> config
(** Capacity proportional to broker degree — big hubs carry more. *)

type stats = {
  offered : int;
  admitted : int;
  rejected_no_path : int;
  rejected_capacity : int;
  admission_rate : float;
  mean_hops : float;  (** over admitted sessions *)
  employee_hop_fraction : float;
      (** fraction of admitted-session hops crossing a hired non-broker *)
  peak_in_flight : int;
  mean_broker_utilization : float;
      (** time-average of used/capacity over brokers that served traffic *)
  revenue : float;  (** broker coalition net revenue *)
}

val run :
  Broker_topo.Topology.t ->
  brokers:int array ->
  sessions:Workload.session array ->
  config ->
  stats
(** Deterministic given the inputs. Sessions must be sorted by arrival
    (as {!Workload.generate} produces).
    @raise Invalid_argument on out-of-order arrivals. *)
