module G = Broker_graph.Graph
module X = Broker_util.Xrandom
module Obs = Broker_obs

(* Event-loop probes: every counter below is driven by the simulated
   structure (event kinds, cache membership, breaker excursions), so all
   are deterministic for a fixed seed and diffable run-to-run. *)
let m_ev_depart = Obs.Metrics.counter "sim.events.depart"
let m_ev_fault = Obs.Metrics.counter "sim.events.fault"
let m_ev_retry = Obs.Metrics.counter "sim.events.retry"
let m_ev_topo = Obs.Metrics.counter "sim.events.topo_update"
let m_topo_applied = Obs.Metrics.counter "sim.topo.applied"
let m_topo_ignored = Obs.Metrics.counter "sim.topo.ignored"
let m_failovers = Obs.Metrics.counter "sim.failovers"
let m_drops = Obs.Metrics.counter "sim.dropped_midflight"
let m_retries_scheduled = Obs.Metrics.counter "sim.retries_scheduled"
let m_breaker_trips = Obs.Metrics.counter "sim.breaker_trips"
let g_queue_depth = Obs.Metrics.gauge "sim.queue.max_depth"
let t_sim = Obs.Trace.scope "simulator.run"

(* brokerstat timelines: windowed series keyed on the simulation clock,
   collected only when [run ?stats_window] asks for them. Counter series
   hold per-window event tallies; latency series additionally sketch
   their samples in Timeseries fixed-point micro-units of sim-time.
   All are deterministic for a fixed seed/scale — the window key is
   sim-time, never wall-clock. *)
let ts_admitted = Obs.Timeseries.series "sim.ts.admitted"
let ts_delivered = Obs.Timeseries.series "sim.ts.delivered"
let ts_rejected = Obs.Timeseries.series "sim.ts.rejected"
let ts_lookups = Obs.Timeseries.series "sim.ts.cache.lookups"
let ts_recomputes = Obs.Timeseries.series "sim.ts.cache.recomputes"
let ts_queue_wait = Obs.Timeseries.series "sim.ts.latency.queue_wait"
let ts_admission = Obs.Timeseries.series "sim.ts.latency.admission"
let ts_failover = Obs.Timeseries.series "sim.ts.latency.failover"
let ts_e2e = Obs.Timeseries.series "sim.ts.latency.e2e"

let timeline_series =
  [
    ts_admitted;
    ts_delivered;
    ts_rejected;
    ts_lookups;
    ts_recomputes;
    ts_queue_wait;
    ts_admission;
    ts_failover;
    ts_e2e;
  ]

let timeline_names = List.map Obs.Timeseries.name timeline_series

type config = {
  capacity_of : int -> float;
  price : float;
  employee_cost : float;
}

let uniform_capacity c =
  { capacity_of = (fun _ -> c); price = 1.0; employee_cost = 0.2 }

let degree_capacity g ~factor =
  {
    capacity_of = (fun v -> factor *. float_of_int (max 1 (G.degree g v)));
    price = 1.0;
    employee_cost = 0.2;
  }

type retry_policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  jitter : float;
}

let no_retry = { max_attempts = 0; base_delay = 1.0; multiplier = 2.0; jitter = 0.0 }
let default_retry = { max_attempts = 3; base_delay = 1.0; multiplier = 2.0; jitter = 0.5 }

type breaker_policy = { high_water : float; trip_after : float; cooldown : float }

let default_breaker = { high_water = 0.9; trip_after = 5.0; cooldown = 25.0 }

type chaos = {
  faults : Faults.event array;
  failover : bool;
  retry : retry_policy;
  breaker : breaker_policy option;
  chaos_seed : int;
}

let default_chaos faults =
  { faults; failover = true; retry = default_retry; breaker = None; chaos_seed = 97 }

type topo_churn = {
  updates : Topo_stream.event array;  (* origin-time announce/withdraws *)
  propagation : Topo_stream.propagation;
}

type stats = {
  offered : int;
  admitted : int;
  rejected_no_path : int;
  rejected_capacity : int;
  rejected_shed : int;
  admission_rate : float;
  mean_hops : float;
  employee_hop_fraction : float;
  peak_in_flight : int;
  mean_broker_utilization : float;
  revenue : float;
  failed_over : int;
  dropped_midflight : int;
  retried_admitted : int;
  broker_downtime : float;
  revenue_lost : float;
  availability : float;
  topo_applied : int;
  topo_ignored : int;
  cache : Shard_cache.stats;
}

(* An admitted session's live reservation. [path_brokers] is mutated on
   failover; [active] flips off at departure or mid-flight drop so a stale
   departure event is a no-op. *)
type live = {
  id : int;
  src : int;
  dst : int;
  demand : float;
  arrived : float;  (* intended (open-loop) arrival, for e2e latency *)
  admitted_at : float;  (* admission instant, for time-to-failover *)
  depart : float;
  rev_rate : float;  (* net revenue per unit time, for drop refunds *)
  mutable path_brokers : int array;
  mutable active : bool;
}

type ev =
  | Depart of live
  | Fault of Faults.kind * int
  | Retry of Workload.session * int  (* next attempt number *)
  | Topo_update of Topo_stream.op  (* delivered announce/withdraw *)

type block_reason = No_path | Capacity | Shed

let validate ~n ~brokers config =
  if Float.is_nan config.price || config.price < 0.0 then
    invalid_arg "Simulator.run: price must be >= 0";
  if Float.is_nan config.employee_cost || config.employee_cost < 0.0 then
    invalid_arg "Simulator.run: employee_cost must be >= 0";
  Array.iter
    (fun b ->
      if b < 0 || b >= n then invalid_arg "Simulator.run: broker id out of range";
      if not (config.capacity_of b >= 0.0) then
        invalid_arg "Simulator.run: capacity_of must be >= 0")
    brokers

let run ?chaos ?topo:topo_churn ?(cache = Shard_cache.Flush) ?stats_window topo
    ~brokers ~sessions config =
  let tr0 = Obs.Trace.enter () in
  let g = topo.Broker_topo.Topology.graph in
  let n = G.n g in
  validate ~n ~brokers config;
  (* Timeline collection is strictly opt-in: with [?stats_window] absent
     not a single series is touched, so the default path stays
     byte-identical (the timelines never feed back into admission). *)
  let tl_on =
    match stats_window with
    | None -> false
    | Some w ->
        if Float.is_nan w || w <= 0.0 then
          invalid_arg "Simulator.run: stats_window must be > 0";
        List.iter (fun s -> Obs.Timeseries.restart ~window:w s) timeline_series;
        true
  in
  (match topo_churn with
  | None -> ()
  | Some tc ->
      Array.iter
        (fun (e : Topo_stream.event) ->
          let u, v = Topo_stream.op_endpoints e.Topo_stream.op in
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid_arg "Simulator.run: topo update endpoint out of range")
        tc.updates);
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let has_chaos = Option.is_some chaos in
  let failover_on, retry, breaker, fault_events, chaos_seed =
    match chaos with
    | None -> (false, no_retry, None, [||], 0)
    | Some c -> (c.failover, c.retry, c.breaker, c.faults, c.chaos_seed)
  in
  let jitter_rng = X.create (0x5EED lxor chaos_seed) in
  (* Broker liveness: a down-counter per vertex (correlated scenarios can
     crash an already-down broker); a down broker stops being a broker — it
     neither dominates edges nor carries reservations — but keeps forwarding
     as a plain AS, mirroring Broker_core.Resilience. *)
  let down = Array.make n 0 in
  let down_since = Array.make n 0.0 in
  let total_down = ref 0 in
  let downtime = ref 0.0 in
  let is_broker_live v = is_broker v && down.(v) = 0 in
  (* Per-broker capacity accounting with lazy time-integrated usage. *)
  let used = Hashtbl.create 1024 in
  let area = Hashtbl.create 1024 in
  let last_change = Hashtbl.create 1024 in
  let get tbl b = Option.value ~default:0.0 (Hashtbl.find_opt tbl b) in
  let touch b t =
    let lu = get last_change b in
    Hashtbl.replace area b (get area b +. (get used b *. (t -. lu)));
    Hashtbl.replace last_change b t
  in
  (* Admission circuit breaker: track how long a broker's utilization has
     been continuously at or above the high-water mark. *)
  let above_since = Array.make (if Option.is_none breaker then 0 else n) nan in
  let tripped_until =
    Array.make (if Option.is_none breaker then 0 else n) neg_infinity
  in
  let update_water b t =
    match breaker with
    | None -> ()
    | Some bp ->
        let cap = config.capacity_of b in
        if cap > 0.0 then
          if get used b /. cap >= bp.high_water then begin
            if Float.is_nan above_since.(b) then above_since.(b) <- t
          end
          else above_since.(b) <- nan
  in
  let adjust b t delta =
    touch b t;
    Hashtbl.replace used b (get used b +. delta);
    update_water b t
  in
  let shedding b t =
    match breaker with
    | None -> false
    | Some bp ->
        if t < tripped_until.(b) then true
        else if
          (not (Float.is_nan above_since.(b)))
          && t -. above_since.(b) >= bp.trip_after
        then begin
          Obs.Metrics.incr m_breaker_trips;
          tripped_until.(b) <- t +. bp.cooldown;
          (* A fresh sustained excursion is needed to re-trip after cooldown. *)
          above_since.(b) <- nan;
          true
        end
        else false
  in
  (* Hop-shortest dominated path per distinct pair, cached under the current
     liveness. The cache policy — flush-on-crash reverse-index eviction
     (the historical default) vs sharded assignment with graceful
     degradation — lives in {!Shard_cache}; the simulator only reports
     liveness transitions to it. *)
  let pcache =
    Shard_cache.create ~strategy:cache ~seed:(0x5A4D lxor chaos_seed) ~n
      ~shards:brokers ()
  in
  (* The routed topology is a delta overlay over the base CSR: updates
     mutate [tdelta] and refresh the immutable [tview] snapshot routing
     reads. Without topology churn [tview] stays the zero-copy base view,
     so the static path is untouched. *)
  let tdelta =
    match topo_churn with
    | None -> None
    | Some _ -> Some (Broker_graph.Delta.create g)
  in
  let tview = ref (Broker_graph.View.of_graph g) in
  let topo_applied = ref 0 in
  let topo_ignored = ref 0 in
  let path_for t src dst =
    if tl_on then Obs.Timeseries.add ts_lookups ~time:t 1;
    Shard_cache.find pcache
      ~compute:(fun () ->
        if tl_on then Obs.Timeseries.add ts_recomputes ~time:t 1;
        match
          Broker_core.Dominating.find_dominated_path_view !tview
            ~is_broker:is_broker_live src dst
        with
        | [] -> None
        | path -> Some (Array.of_list path))
      src dst
  in
  let events : ev Event_queue.t = Event_queue.create () in
  (* Fault events enter the queue up front: at equal times they precede the
     departures/retries scheduled later (FIFO tie-break), which is the
     pessimistic order — a failure beats a same-instant departure. Events
     for vertices outside the broker set are ignored. *)
  Array.iter
    (fun (e : Faults.event) ->
      if is_broker e.Faults.broker then
        Event_queue.add events ~time:e.Faults.time
          (Fault (e.Faults.kind, e.Faults.broker)))
    fault_events;
  (* Topology updates enter at their *delivery* time under the selected
     propagation model — centralized feed or hop-by-hop BGP-like crawl
     towards the nearest broker (hop counts on the pre-update graph).
     Enqueued after the faults, so at equal times a fault is served
     first (same pessimistic tie-break). *)
  (match topo_churn with
  | None -> ()
  | Some tc ->
      Array.iter
        (fun (e : Topo_stream.event) ->
          Event_queue.add events ~time:e.Topo_stream.time
            (Topo_update e.Topo_stream.op))
        (Topo_stream.schedule g ~brokers tc.propagation tc.updates));
  let in_flight_tbl : (int, live) Hashtbl.t = Hashtbl.create 256 in
  let offered = ref 0 in
  let admitted = ref 0 in
  let rejected_no_path = ref 0 in
  let rejected_capacity = ref 0 in
  let rejected_shed = ref 0 in
  let hops_total = ref 0 in
  let employee_hops_total = ref 0 in
  let in_flight = ref 0 in
  let peak_in_flight = ref 0 in
  let revenue = ref 0.0 in
  let failed_over = ref 0 in
  let dropped_midflight = ref 0 in
  let retried_admitted = ref 0 in
  let revenue_lost = ref 0.0 in
  let last_arrival = ref neg_infinity in
  (* Single-pass broker filter over a path (no list round-trip). *)
  let filter_live_brokers path =
    let count = ref 0 in
    Array.iter (fun v -> if is_broker_live v then incr count) path;
    let out = Array.make !count 0 in
    let j = ref 0 in
    Array.iter
      (fun v ->
        if is_broker_live v then begin
          out.(!j) <- v;
          incr j
        end)
      path;
    out
  in
  let fits path_brokers demand =
    Array.for_all
      (fun b -> get used b +. demand <= config.capacity_of b +. 1e-9)
      path_brokers
  in
  let blocked (s : Workload.session) t ~attempt ~reason =
    let retryable =
      has_chaos
      && attempt < retry.max_attempts
      && (match reason with
         (* A structural no-path can never be retried away; one caused by an
            outage can. *)
         | No_path -> !total_down > 0
         | Capacity | Shed -> true)
    in
    if retryable then begin
      Obs.Metrics.incr m_retries_scheduled;
      let jitter = 1.0 +. (retry.jitter *. X.float jitter_rng 1.0) in
      let delay =
        retry.base_delay *. (retry.multiplier ** float_of_int attempt) *. jitter
      in
      Event_queue.add events ~time:(t +. delay) (Retry (s, attempt + 1))
    end
    else begin
      (match reason with
      | No_path -> incr rejected_no_path
      | Capacity -> incr rejected_capacity
      | Shed -> incr rejected_shed);
      if tl_on then begin
        Obs.Timeseries.add ts_rejected ~time:t 1;
        (* Admission latency covers every finally-decided session —
           open-loop discipline: measured from the intended arrival,
           through however many backoff retries it took to conclude. *)
        Obs.Timeseries.observe ts_admission ~time:t
          (Obs.Timeseries.to_fp (t -. s.Workload.arrival))
      end
    end
  in
  let admit_session (s : Workload.session) t ~attempt =
    match path_for t s.Workload.src s.Workload.dst with
    | None -> blocked s t ~attempt ~reason:No_path
    | Some path ->
        let path_brokers = filter_live_brokers path in
        if has_chaos && Array.exists (fun b -> shedding b t) path_brokers then
          blocked s t ~attempt ~reason:Shed
        else if not (fits path_brokers s.Workload.demand) then
          blocked s t ~attempt ~reason:Capacity
        else begin
          incr admitted;
          if attempt > 0 then incr retried_admitted;
          incr in_flight;
          if !in_flight > !peak_in_flight then peak_in_flight := !in_flight;
          Array.iter (fun b -> adjust b t s.Workload.demand) path_brokers;
          let hops = Array.length path - 1 in
          hops_total := !hops_total + hops;
          (* Employees: intermediate non-(live-)broker vertices. *)
          let employees = ref 0 in
          for i = 1 to Array.length path - 2 do
            if not (is_broker_live path.(i)) then incr employees
          done;
          employee_hops_total := !employee_hops_total + (2 * !employees);
          let dt = s.Workload.duration *. s.Workload.demand in
          let net =
            (2.0 *. config.price *. dt)
            -. (config.employee_cost *. float_of_int (2 * !employees) *. dt)
          in
          revenue := !revenue +. net;
          if tl_on then begin
            Obs.Timeseries.add ts_admitted ~time:t 1;
            let wait = Obs.Timeseries.to_fp (t -. s.Workload.arrival) in
            Obs.Timeseries.observe ts_queue_wait ~time:t wait;
            Obs.Timeseries.observe ts_admission ~time:t wait
          end;
          let l =
            {
              id = s.Workload.id;
              src = s.Workload.src;
              dst = s.Workload.dst;
              demand = s.Workload.demand;
              arrived = s.Workload.arrival;
              admitted_at = t;
              depart = t +. s.Workload.duration;
              rev_rate =
                (if s.Workload.duration > 0.0 then net /. s.Workload.duration
                 else 0.0);
              path_brokers;
              active = true;
            }
          in
          if has_chaos then Hashtbl.replace in_flight_tbl l.id l;
          Event_queue.add events ~time:l.depart (Depart l)
        end
  in
  let drop l t =
    Obs.Metrics.incr m_drops;
    l.active <- false;
    Hashtbl.remove in_flight_tbl l.id;
    decr in_flight;
    incr dropped_midflight;
    let lost = l.rev_rate *. (l.depart -. t) in
    revenue := !revenue -. lost;
    revenue_lost := !revenue_lost +. lost
  in
  let on_crash b t =
    down.(b) <- down.(b) + 1;
    if down.(b) = 1 then begin
      incr total_down;
      down_since.(b) <- t;
      Shard_cache.crash pcache b;
      (* In-flight sessions riding b, in session-id order (deterministic). *)
      let affected =
        Hashtbl.fold
          (fun _ l acc ->
            if l.active && Array.exists (fun pb -> pb = b) l.path_brokers then
              l :: acc
            else acc)
          in_flight_tbl []
      in
      let affected = List.sort (fun a b -> Int.compare a.id b.id) affected in
      List.iter
        (fun l ->
          (* Release the whole old reservation, then try an alternate
             B-dominated path that avoids every down broker. *)
          Array.iter (fun pb -> adjust pb t (-.l.demand)) l.path_brokers;
          let rerouted =
            failover_on
            &&
            match path_for t l.src l.dst with
            | None -> false
            | Some path ->
                let pbs = filter_live_brokers path in
                if fits pbs l.demand then begin
                  Array.iter (fun pb -> adjust pb t l.demand) pbs;
                  l.path_brokers <- pbs;
                  true
                end
                else false
          in
          if rerouted then begin
            incr failed_over;
            Obs.Metrics.incr m_failovers;
            (* Time-to-failover: how long the session had been in
               flight when the crash forced it onto an alternate
               path. *)
            if tl_on then
              Obs.Timeseries.observe ts_failover ~time:t
                (Obs.Timeseries.to_fp (t -. l.admitted_at))
          end
          else drop l t)
        affected
    end
  in
  let on_recover b t =
    if down.(b) > 0 then begin
      down.(b) <- down.(b) - 1;
      if down.(b) = 0 then begin
        decr total_down;
        downtime := !downtime +. (t -. down_since.(b));
        Shard_cache.recover pcache b
      end
    end
  in
  let handle ev t =
    match ev with
    | Depart l ->
        Obs.Metrics.incr m_ev_depart;
        if l.active then begin
          Array.iter (fun pb -> adjust pb t (-.l.demand)) l.path_brokers;
          l.active <- false;
          if has_chaos then Hashtbl.remove in_flight_tbl l.id;
          decr in_flight;
          if tl_on then begin
            Obs.Timeseries.add ts_delivered ~time:t 1;
            (* End-to-end completion from the intended arrival: queue
               wait (retries) plus the session's service time. *)
            Obs.Timeseries.observe ts_e2e ~time:t
              (Obs.Timeseries.to_fp (t -. l.arrived))
          end
        end
    | Fault (Faults.Crash, b) ->
        Obs.Metrics.incr m_ev_fault;
        on_crash b t
    | Fault (Faults.Recover, b) ->
        Obs.Metrics.incr m_ev_fault;
        on_recover b t
    | Retry (s, attempt) ->
        Obs.Metrics.incr m_ev_retry;
        admit_session s t ~attempt
    | Topo_update op ->
        Obs.Metrics.incr m_ev_topo;
        let d =
          match tdelta with
          | Some d -> d
          | None -> assert false (* only enqueued when topo_churn is set *)
        in
        let changed =
          match op with
          | Topo_stream.Announce (u, v) -> Broker_graph.Delta.add_edge d u v
          | Topo_stream.Withdraw (u, v) -> Broker_graph.Delta.remove_edge d u v
        in
        if changed then begin
          incr topo_applied;
          Obs.Metrics.incr m_topo_applied;
          tview := Broker_graph.Delta.view d;
          (* Any cached path may now be wrong (or newly beatable):
             everything goes. Subsequent lookups recompute against the
             fresh view. *)
          Shard_cache.invalidate_all pcache
        end
        else begin
          incr topo_ignored;
          Obs.Metrics.incr m_topo_ignored
        end
  in
  let process_until t =
    let continue = ref true in
    while !continue do
      match Event_queue.peek_time events with
      | Some et when et <= t -> begin
          match Event_queue.pop events with
          | Some (et, ev) -> handle ev et
          | None -> assert false
        end
      | Some _ | None -> continue := false
    done
  in
  Array.iter
    (fun (s : Workload.session) ->
      if s.Workload.arrival < !last_arrival then
        invalid_arg "Simulator.run: sessions not sorted by arrival";
      last_arrival := s.Workload.arrival;
      incr offered;
      process_until s.Workload.arrival;
      admit_session s s.Workload.arrival ~attempt:0)
    sessions;
  (* Drain remaining events (departures, retries, faults) to close the
     utilization and downtime integrals. *)
  let horizon = ref (Float.max !last_arrival 0.0) in
  let continue = ref true in
  while !continue do
    match Event_queue.pop events with
    | Some (t, ev) ->
        horizon := Float.max !horizon t;
        handle ev t
    | None -> continue := false
  done;
  Obs.Metrics.gauge_max g_queue_depth (Event_queue.max_length events);
  Event_queue.clear events;
  (* Close the timelines: the trailing still-open windows become
     Perfetto counter samples when the trace ring is armed. *)
  if tl_on then List.iter Obs.Timeseries.flush timeline_series;
  let horizon = !horizon in
  Array.iter
    (fun b ->
      if down.(b) > 0 then begin
        downtime := !downtime +. (horizon -. down_since.(b));
        down.(b) <- 0
      end)
    brokers;
  let mean_utilization =
    let touched = Hashtbl.fold (fun b _ acc -> b :: acc) last_change [] in
    let sum = ref 0.0 and count = ref 0 in
    List.iter
      (fun b ->
        touch b horizon;
        let cap = config.capacity_of b in
        if cap > 0.0 && horizon > 0.0 then begin
          sum := !sum +. (get area b /. (cap *. horizon));
          incr count
        end)
      touched;
    if !count = 0 then 0.0 else !sum /. float_of_int !count
  in
  let n_brokers = Array.length brokers in
  let availability =
    if n_brokers = 0 || horizon <= 0.0 then 1.0
    else
      Float.max 0.0 (1.0 -. (!downtime /. (float_of_int n_brokers *. horizon)))
  in
  {
    offered = !offered;
    admitted = !admitted;
    rejected_no_path = !rejected_no_path;
    rejected_capacity = !rejected_capacity;
    rejected_shed = !rejected_shed;
    admission_rate =
      (if !offered = 0 then 0.0
       else float_of_int !admitted /. float_of_int !offered);
    mean_hops =
      (if !admitted = 0 then 0.0
       else float_of_int !hops_total /. float_of_int !admitted);
    employee_hop_fraction =
      (if !hops_total = 0 then 0.0
       else float_of_int !employee_hops_total /. float_of_int !hops_total);
    peak_in_flight = !peak_in_flight;
    mean_broker_utilization = mean_utilization;
    revenue = !revenue;
    failed_over = !failed_over;
    dropped_midflight = !dropped_midflight;
    retried_admitted = !retried_admitted;
    broker_downtime = !downtime;
    revenue_lost = !revenue_lost;
    availability;
    topo_applied = !topo_applied;
    topo_ignored = !topo_ignored;
    cache = Shard_cache.stats pcache;
  }
  |> fun stats ->
  Obs.Trace.leave t_sim tr0;
  stats

let delivered_rate s =
  if s.offered = 0 then 0.0
  else float_of_int (s.admitted - s.dropped_midflight) /. float_of_int s.offered

let stats_equal a b =
  a.offered = b.offered && a.admitted = b.admitted
  && a.rejected_no_path = b.rejected_no_path
  && a.rejected_capacity = b.rejected_capacity
  && a.rejected_shed = b.rejected_shed
  && Float.equal a.admission_rate b.admission_rate
  && Float.equal a.mean_hops b.mean_hops
  && Float.equal a.employee_hop_fraction b.employee_hop_fraction
  && a.peak_in_flight = b.peak_in_flight
  && Float.equal a.mean_broker_utilization b.mean_broker_utilization
  && Float.equal a.revenue b.revenue
  && a.failed_over = b.failed_over
  && a.dropped_midflight = b.dropped_midflight
  && a.retried_admitted = b.retried_admitted
  && Float.equal a.broker_downtime b.broker_downtime
  && Float.equal a.revenue_lost b.revenue_lost
  && Float.equal a.availability b.availability
  && a.topo_applied = b.topo_applied
  && a.topo_ignored = b.topo_ignored
  && Shard_cache.stats_equal a.cache b.cache
