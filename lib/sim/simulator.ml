module G = Broker_graph.Graph

type config = {
  capacity_of : int -> float;
  price : float;
  employee_cost : float;
}

let uniform_capacity c =
  { capacity_of = (fun _ -> c); price = 1.0; employee_cost = 0.2 }

let degree_capacity g ~factor =
  {
    capacity_of = (fun v -> factor *. float_of_int (max 1 (G.degree g v)));
    price = 1.0;
    employee_cost = 0.2;
  }

type stats = {
  offered : int;
  admitted : int;
  rejected_no_path : int;
  rejected_capacity : int;
  admission_rate : float;
  mean_hops : float;
  employee_hop_fraction : float;
  peak_in_flight : int;
  mean_broker_utilization : float;
  revenue : float;
}

type departure = { path_brokers : int array; demand : float }

let run topo ~brokers ~sessions config =
  let g = topo.Broker_topo.Topology.graph in
  let n = G.n g in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  (* Per-broker capacity accounting with lazy time-integrated usage. *)
  let used = Hashtbl.create 1024 in
  let area = Hashtbl.create 1024 in
  let last_change = Hashtbl.create 1024 in
  let get tbl b = Option.value ~default:0.0 (Hashtbl.find_opt tbl b) in
  let touch b t =
    let lu = get last_change b in
    Hashtbl.replace area b (get area b +. (get used b *. (t -. lu)));
    Hashtbl.replace last_change b t
  in
  let adjust b t delta =
    touch b t;
    Hashtbl.replace used b (get used b +. delta)
  in
  (* Hop-shortest dominated path per distinct pair, cached. *)
  let path_cache : (int * int, int array option) Hashtbl.t = Hashtbl.create 1024 in
  let path_for src dst =
    match Hashtbl.find_opt path_cache (src, dst) with
    | Some p -> p
    | None ->
        let p =
          match Broker_core.Dominating.find_dominated_path g ~is_broker src dst with
          | [] -> None
          | path -> Some (Array.of_list path)
        in
        Hashtbl.replace path_cache (src, dst) p;
        p
  in
  let departures : departure Event_queue.t = Event_queue.create () in
  let offered = ref 0 in
  let admitted = ref 0 in
  let rejected_no_path = ref 0 in
  let rejected_capacity = ref 0 in
  let hops_total = ref 0 in
  let employee_hops_total = ref 0 in
  let in_flight = ref 0 in
  let peak_in_flight = ref 0 in
  let revenue = ref 0.0 in
  let last_arrival = ref neg_infinity in
  let process_departures_until t =
    let continue = ref true in
    while !continue do
      match Event_queue.peek_time departures with
      | Some dt when dt <= t -> begin
          match Event_queue.pop departures with
          | Some (dt, dep) ->
              Array.iter (fun b -> adjust b dt (-.dep.demand)) dep.path_brokers;
              decr in_flight
          | None -> assert false
        end
      | Some _ | None -> continue := false
    done
  in
  Array.iter
    (fun (s : Workload.session) ->
      if s.Workload.arrival < !last_arrival then
        invalid_arg "Simulator.run: sessions not sorted by arrival";
      last_arrival := s.Workload.arrival;
      incr offered;
      process_departures_until s.Workload.arrival;
      match path_for s.Workload.src s.Workload.dst with
      | None -> incr rejected_no_path
      | Some path ->
          let path_brokers =
            Array.of_list
              (List.filter is_broker (Array.to_list path))
          in
          let fits =
            Array.for_all
              (fun b ->
                get used b +. s.Workload.demand
                <= config.capacity_of b +. 1e-9)
              path_brokers
          in
          if not fits then incr rejected_capacity
          else begin
            incr admitted;
            incr in_flight;
            if !in_flight > !peak_in_flight then peak_in_flight := !in_flight;
            Array.iter
              (fun b -> adjust b s.Workload.arrival s.Workload.demand)
              path_brokers;
            Event_queue.add departures
              ~time:(s.Workload.arrival +. s.Workload.duration)
              { path_brokers; demand = s.Workload.demand };
            let hops = Array.length path - 1 in
            hops_total := !hops_total + hops;
            (* Employees: intermediate non-broker vertices. *)
            let employees = ref 0 in
            for i = 1 to Array.length path - 2 do
              if not (is_broker path.(i)) then incr employees
            done;
            employee_hops_total := !employee_hops_total + (2 * !employees);
            let dt = s.Workload.duration *. s.Workload.demand in
            revenue :=
              !revenue
              +. (2.0 *. config.price *. dt)
              -. (config.employee_cost *. float_of_int (2 * !employees) *. dt)
          end)
    sessions;
  (* Drain remaining departures to close the utilization integrals. *)
  let horizon =
    let rec drain acc =
      match Event_queue.pop departures with
      | Some (t, dep) ->
          Array.iter (fun b -> adjust b t (-.dep.demand)) dep.path_brokers;
          drain (Float.max acc t)
      | None -> acc
    in
    drain (Float.max !last_arrival 0.0)
  in
  let mean_utilization =
    let touched = Hashtbl.fold (fun b _ acc -> b :: acc) last_change [] in
    let sum = ref 0.0 and count = ref 0 in
    List.iter
      (fun b ->
        touch b horizon;
        let cap = config.capacity_of b in
        if cap > 0.0 && horizon > 0.0 then begin
          sum := !sum +. (get area b /. (cap *. horizon));
          incr count
        end)
      touched;
    if !count = 0 then 0.0 else !sum /. float_of_int !count
  in
  {
    offered = !offered;
    admitted = !admitted;
    rejected_no_path = !rejected_no_path;
    rejected_capacity = !rejected_capacity;
    admission_rate =
      (if !offered = 0 then 0.0
       else float_of_int !admitted /. float_of_int !offered);
    mean_hops =
      (if !admitted = 0 then 0.0
       else float_of_int !hops_total /. float_of_int !admitted);
    employee_hop_fraction =
      (if !hops_total = 0 then 0.0
       else float_of_int !employee_hops_total /. float_of_int !hops_total);
    peak_in_flight = !peak_in_flight;
    mean_broker_utilization = mean_utilization;
    revenue = !revenue;
  }
