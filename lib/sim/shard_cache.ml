module Obs = Broker_obs

(* Cache-outcome probes. The two invalidation counters used to live in
   Simulator; they moved here with the cache itself. All are driven by
   deterministic cache structure, so they diff cleanly run-to-run. *)
let m_invalidated = Obs.Metrics.counter "sim.cache.invalidated_keys"
let m_degraded_flushed = Obs.Metrics.counter "sim.cache.degraded_flushed"
let m_hits = Obs.Metrics.counter "sim.cache.hits"
let m_served_degraded = Obs.Metrics.counter "sim.cache.served_degraded"
let m_repaired = Obs.Metrics.counter "sim.cache.repaired_lazily"
let m_recomputed = Obs.Metrics.counter "sim.cache.recomputed"

type strategy = Flush | Modulo | Ring of { vnodes : int }

let default_vnodes = 64

let strategy_name = function
  | Flush -> "flush"
  | Modulo -> "modulo"
  | Ring _ -> "ring"

let strategy_of_string ?(vnodes = default_vnodes) s =
  match String.lowercase_ascii s with
  | "flush" -> Ok Flush
  | "modulo" -> Ok Modulo
  | "ring" ->
      if vnodes < 1 then Error "ring cache strategy needs vnodes >= 1"
      else Ok (Ring { vnodes })
  | _ ->
      Error
        ("unknown cache strategy '" ^ s
       ^ "' (expected flush, modulo or ring)")

type stats = {
  lookups : int;
  hits : int;
  served_degraded : int;
  repaired_lazily : int;
  recomputed : int;
  evicted : int;
  flushed : int;
}

let stats_equal a b =
  a.lookups = b.lookups && a.hits = b.hits
  && a.served_degraded = b.served_degraded
  && a.repaired_lazily = b.repaired_lazily
  && a.recomputed = b.recomputed
  && a.evicted = b.evicted
  && a.flushed = b.flushed

(* Seeded splitmix64 finalizer — the deterministic stand-in for
   [Hashtbl.hash] (banned in lib code, brokerlint R9): owners must be
   identical across runs, processes and REPRO_DOMAINS settings. *)
let mix64 state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Two ints -> nonnegative 62-bit hash under a seed. *)
let hash2 ~seed a b =
  let h = mix64 (Int64.add (Int64.of_int seed) (Int64.of_int a)) in
  let h = mix64 (Int64.logxor h (Int64.of_int b)) in
  Int64.to_int (Int64.logand h 0x3FFF_FFFF_FFFF_FFFFL)

(* Salt so ring-point placement and key placement draw from unrelated
   streams even though they share the user seed. *)
let ring_salt = 0x52696E67 (* "Ring" *)

type key = int * int

(* Legacy flush-on-crash cache: one global store, a per-broker reverse
   index of the keys whose cached path rides that broker, and the set of
   keys computed while any broker was down. The reverse index holds key
   *sets* (not lists): evicting a key also purges it from the other
   brokers' sets, so the index can no longer accumulate stale entries
   across re-cache cycles. *)
type flush_state = {
  store : (key, int array option) Hashtbl.t;
  rev : (int, (key, unit) Hashtbl.t) Hashtbl.t;
  degraded : (key, unit) Hashtbl.t;
}

(* Sharded cache: one table per shard slot. Entries remember whether they
   were computed under an outage; hits are validated against current
   liveness instead of trusted blindly. Keys are placed by [Modulo]
   (static [h mod n_live]) or [Ring] (consistent hashing over
   [vnodes]-replicated shard points). *)
type sharded_state = {
  tables : (key, entry) Hashtbl.t array;  (* indexed by shard slot *)
  shard_ids : int array;  (* sorted distinct shard vertex ids *)
  mutable live : int array;  (* sorted live slots, for [Modulo] *)
  ring_pos : int array;  (* ring point positions, ascending; [Ring] only *)
  ring_slot : int array;  (* slot owning ring point i *)
}

and entry = { path : int array option; degraded : bool }

type body = Flush_body of flush_state | Sharded_body of sharded_state

type t = {
  strategy : strategy;
  n : int;
  is_shard : bool array;  (* static broker membership *)
  down : bool array;
  mutable n_down : int;
  mutable live_count : int;
  seed : int;
  body : body;
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_served_degraded : int;
  mutable s_repaired : int;
  mutable s_recomputed : int;
  mutable s_evicted : int;
  mutable s_flushed : int;
}

let strategy t = t.strategy
let live_shards t = t.live_count

let stats t =
  {
    lookups = t.s_lookups;
    hits = t.s_hits;
    served_degraded = t.s_served_degraded;
    repaired_lazily = t.s_repaired;
    recomputed = t.s_recomputed;
    evicted = t.s_evicted;
    flushed = t.s_flushed;
  }

let create ?(strategy = Flush) ?(seed = 0) ~n ~shards () =
  (match strategy with
  | Ring { vnodes } when vnodes < 1 ->
      invalid_arg "Shard_cache.create: vnodes must be >= 1"
  | Flush | Modulo | Ring _ -> ());
  Array.iter
    (fun b ->
      if b < 0 || b >= n then
        invalid_arg "Shard_cache.create: shard id out of range")
    shards;
  let shard_ids = List.sort_uniq Int.compare (Array.to_list shards) in
  let shard_ids = Array.of_list shard_ids in
  let nshards = Array.length shard_ids in
  let is_shard = Array.make n false in
  Array.iter (fun b -> is_shard.(b) <- true) shard_ids;
  let body =
    match strategy with
    | Flush ->
        Flush_body
          {
            store = Hashtbl.create 1024;
            rev = Hashtbl.create 64;
            degraded = Hashtbl.create 64;
          }
    | Modulo | Ring _ ->
        let tables = Array.init nshards (fun _ -> Hashtbl.create 64) in
        let live = Array.init nshards (fun slot -> slot) in
        let ring_pos, ring_slot =
          match strategy with
          | Ring { vnodes } ->
              let npoints = nshards * vnodes in
              (* Sort ring points by position with a deterministic
                 (slot, replica) tie-break; ties across distinct shards
                 are astronomically unlikely but must not depend on the
                 sort's internals. *)
              let points = Array.make npoints (0, 0, 0) in
              let i = ref 0 in
              Array.iteri
                (fun slot v ->
                  for r = 0 to vnodes - 1 do
                    let pos = hash2 ~seed:(seed lxor ring_salt) v r in
                    points.(!i) <- (pos, slot, r);
                    incr i
                  done)
                shard_ids;
              Array.sort
                (fun (p1, s1, r1) (p2, s2, r2) ->
                  let c = Int.compare p1 p2 in
                  if c <> 0 then c
                  else
                    let c = Int.compare s1 s2 in
                    if c <> 0 then c else Int.compare r1 r2)
                points;
              ( Array.map (fun (p, _, _) -> p) points,
                Array.map (fun (_, s, _) -> s) points )
          | Flush | Modulo -> ([||], [||])
        in
        Sharded_body { tables; shard_ids; live; ring_pos; ring_slot }
  in
  {
    strategy;
    n;
    is_shard;
    down = Array.make n false;
    n_down = 0;
    live_count = nshards;
    seed;
    body;
    s_lookups = 0;
    s_hits = 0;
    s_served_degraded = 0;
    s_repaired = 0;
    s_recomputed = 0;
    s_evicted = 0;
    s_flushed = 0;
  }

let size t =
  match t.body with
  | Flush_body fs -> Hashtbl.length fs.store
  | Sharded_body sh ->
      Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 sh.tables

(* Every hop of a dominated path needs a live broker endpoint; a down
   broker keeps forwarding as a plain AS but stops dominating. *)
let path_valid t p =
  let live v = t.is_shard.(v) && not t.down.(v) in
  let ok = ref true in
  for i = 0 to Array.length p - 2 do
    if not (live p.(i) || live p.(i + 1)) then ok := false
  done;
  !ok

let rides_down t p = Array.exists (fun v -> t.is_shard.(v) && t.down.(v)) p

(* --- Flush body ------------------------------------------------------- *)

let rev_set fs b =
  match Hashtbl.find_opt fs.rev b with
  | Some set -> set
  | None ->
      let set = Hashtbl.create 16 in
      Hashtbl.replace fs.rev b set;
      set

let register_flush t fs key path =
  (* Static broker membership, as the historical simulator cache used:
     a down broker on the path still indexes the key. *)
  Array.iter
    (fun v -> if t.is_shard.(v) then Hashtbl.replace (rev_set fs v) key ())
    path

(* Drop [key] everywhere: store, degraded set, and — via its cached
   path — every broker's reverse-index set (the staleness fix). *)
let purge_flush fs key =
  (match Hashtbl.find_opt fs.store key with
  | Some (Some path) ->
      Array.iter
        (fun v ->
          match Hashtbl.find_opt fs.rev v with
          | Some set -> Hashtbl.remove set key
          | None -> ())
        path
  | Some None | None -> ());
  Hashtbl.remove fs.degraded key;
  Hashtbl.remove fs.store key

let find_flush t fs ~compute src dst =
  let key = (src, dst) in
  match Hashtbl.find_opt fs.store key with
  | Some p ->
      (* Flush never validates a hit — it trusts eviction to have removed
         anything broken. Classify the hit for the stats only. *)
      (match p with
      | Some path when Hashtbl.mem fs.degraded key || rides_down t path ->
          t.s_served_degraded <- t.s_served_degraded + 1;
          Obs.Metrics.incr m_served_degraded
      | Some _ ->
          t.s_hits <- t.s_hits + 1;
          Obs.Metrics.incr m_hits
      | None ->
          if Hashtbl.mem fs.degraded key then begin
            t.s_served_degraded <- t.s_served_degraded + 1;
            Obs.Metrics.incr m_served_degraded
          end
          else begin
            t.s_hits <- t.s_hits + 1;
            Obs.Metrics.incr m_hits
          end);
      p
  | None ->
      let p = compute () in
      Hashtbl.replace fs.store key p;
      (match p with Some path -> register_flush t fs key path | None -> ());
      if t.n_down > 0 then Hashtbl.replace fs.degraded key ();
      t.s_recomputed <- t.s_recomputed + 1;
      Obs.Metrics.incr m_recomputed;
      p

let crash_flush t fs b =
  match Hashtbl.find_opt fs.rev b with
  | Some set ->
      let count = Hashtbl.length set in
      if Obs.Control.enabled () then Obs.Metrics.add m_invalidated count;
      t.s_evicted <- t.s_evicted + count;
      (* Snapshot: purge mutates the sets we are iterating over. *)
      let keys = Hashtbl.fold (fun key () acc -> key :: acc) set [] in
      List.iter (purge_flush fs) keys;
      Hashtbl.remove fs.rev b
  | None -> ()

(* Fires on every full per-broker recovery, exactly as the historical
   simulator's [flush_degraded] did: keys computed under any outage may
   be suboptimal or spuriously None, so they are recomputed on demand. *)
let recover_flush t (fs : flush_state) =
  let count = Hashtbl.length fs.degraded in
  if Obs.Control.enabled () then Obs.Metrics.add m_degraded_flushed count;
  t.s_flushed <- t.s_flushed + count;
  let keys = Hashtbl.fold (fun key () acc -> key :: acc) fs.degraded [] in
  List.iter (purge_flush fs) keys;
  Hashtbl.reset fs.degraded

(* --- Sharded bodies --------------------------------------------------- *)

let rebuild_live t sh =
  let out = Array.make t.live_count 0 in
  let j = ref 0 in
  Array.iteri
    (fun slot v ->
      if not t.down.(v) then begin
        out.(!j) <- slot;
        incr j
      end)
    sh.shard_ids;
  sh.live <- out

(* Smallest ring index with position >= h, wrapping past the top. *)
let ring_successor sh h =
  let pos = sh.ring_pos in
  let len = Array.length pos in
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pos.(mid) >= h then hi := mid else lo := mid + 1
  done;
  if !lo = len then 0 else !lo

let owner_slot t sh src dst =
  let h = hash2 ~seed:t.seed src dst in
  match t.strategy with
  | Flush -> -1
  | Modulo ->
      let len = Array.length sh.live in
      if len = 0 then -1 else sh.live.(h mod len)
  | Ring _ ->
      let len = Array.length sh.ring_pos in
      if t.live_count = 0 || len = 0 then -1
      else begin
        let start = ring_successor sh h in
        let slot = ref (-1) in
        let i = ref 0 in
        while !slot < 0 && !i < len do
          let cand = sh.ring_slot.((start + !i) mod len) in
          if not t.down.(sh.shard_ids.(cand)) then slot := cand;
          incr i
        done;
        !slot
      end

let owner t src dst =
  match t.body with
  | Flush_body _ -> None
  | Sharded_body sh ->
      let slot = owner_slot t sh src dst in
      if slot < 0 then None else Some sh.shard_ids.(slot)

(* After a membership change each shard sheds the keys it no longer owns
   (they would be unreachable garbage, and under sustained churn they
   would accumulate without bound). This is where the assignment
   functions separate: removing a ring shard never moves a key between
   two live shards, so [Ring] sheds nothing on a crash and ~1/n of the
   keys on the recovery handback, while any change to the live count
   reassigns ~(n−1)/n of [Modulo]'s keys — both transitions cost it
   almost the whole cache. *)
let compact t sh =
  Array.iteri
    (fun slot v ->
      if not t.down.(v) then begin
        let tbl = sh.tables.(slot) in
        let doomed =
          Hashtbl.fold
            (fun ((src, dst) as key) _ acc ->
              if owner_slot t sh src dst <> slot then key :: acc else acc)
            tbl []
        in
        (match doomed with
        | [] -> ()
        | _ ->
            let count = List.length doomed in
            if Obs.Control.enabled () then Obs.Metrics.add m_invalidated count;
            t.s_evicted <- t.s_evicted + count;
            List.iter (Hashtbl.remove tbl) doomed)
      end)
    sh.shard_ids

let store_sharded t tbl key p =
  Hashtbl.replace tbl key { path = p; degraded = t.n_down > 0 }

let find_sharded t sh ~compute src dst =
  let slot = owner_slot t sh src dst in
  if slot < 0 then begin
    (* No live shard to hold the entry: compute, serve, don't cache. *)
    t.s_recomputed <- t.s_recomputed + 1;
    Obs.Metrics.incr m_recomputed;
    compute ()
  end
  else begin
    let tbl = sh.tables.(slot) in
    let key = (src, dst) in
    match Hashtbl.find_opt tbl key with
    | None ->
        let p = compute () in
        store_sharded t tbl key p;
        t.s_recomputed <- t.s_recomputed + 1;
        Obs.Metrics.incr m_recomputed;
        p
    | Some e -> (
        let refresh () =
          (* Entry computed under an outage that has fully cleared:
             recompute once so the cache converges back to the optimum
             (the lazy analogue of Flush's recovery flush). *)
          let p = compute () in
          store_sharded t tbl key p;
          t.s_recomputed <- t.s_recomputed + 1;
          Obs.Metrics.incr m_recomputed;
          p
        in
        match e.path with
        | None ->
            if e.degraded && t.n_down = 0 then refresh ()
            else if e.degraded then begin
              t.s_served_degraded <- t.s_served_degraded + 1;
              Obs.Metrics.incr m_served_degraded;
              None
            end
            else begin
              t.s_hits <- t.s_hits + 1;
              Obs.Metrics.incr m_hits;
              None
            end
        | Some p ->
            if path_valid t p then begin
              if e.degraded && t.n_down = 0 then refresh ()
              else if e.degraded || rides_down t p then begin
                t.s_served_degraded <- t.s_served_degraded + 1;
                Obs.Metrics.incr m_served_degraded;
                Some p
              end
              else begin
                t.s_hits <- t.s_hits + 1;
                Obs.Metrics.incr m_hits;
                Some p
              end
            end
            else begin
              (* Stale hit: the cached path lost a dominating broker.
                 Lazy repair — recompute under current liveness, which
                 fails over onto a live dominated path when one exists. *)
              let p' = compute () in
              (match p' with
              | Some _ ->
                  t.s_repaired <- t.s_repaired + 1;
                  Obs.Metrics.incr m_repaired
              | None ->
                  t.s_recomputed <- t.s_recomputed + 1;
                  Obs.Metrics.incr m_recomputed);
              store_sharded t tbl key p';
              p'
            end)
  end

let crash_sharded t sh b =
  (* The shard's own entries died with the broker; everything else
     survives and is validated lazily on hit. *)
  let slot = ref (-1) in
  Array.iteri (fun i v -> if v = b then slot := i) sh.shard_ids;
  (match !slot with
  | -1 -> ()
  | s ->
      let count = Hashtbl.length sh.tables.(s) in
      if Obs.Control.enabled () then Obs.Metrics.add m_invalidated count;
      t.s_evicted <- t.s_evicted + count;
      Hashtbl.reset sh.tables.(s));
  rebuild_live t sh;
  compact t sh

(* --- Shared front ------------------------------------------------------ *)

let find t ~compute src dst =
  t.s_lookups <- t.s_lookups + 1;
  match t.body with
  | Flush_body fs -> find_flush t fs ~compute src dst
  | Sharded_body sh -> find_sharded t sh ~compute src dst

(* A topology change can reroute any pair, so every cached path is
   suspect: drop everything, regardless of strategy. *)
let invalidate_all t =
  let count = size t in
  if count > 0 then begin
    t.s_evicted <- t.s_evicted + count;
    if Obs.Control.enabled () then Obs.Metrics.add m_invalidated count;
    match t.body with
    | Flush_body fs ->
        Hashtbl.reset fs.store;
        Hashtbl.reset fs.rev;
        Hashtbl.reset fs.degraded
    | Sharded_body sh -> Array.iter Hashtbl.reset sh.tables
  end

let crash t b =
  if b >= 0 && b < t.n && t.is_shard.(b) && not t.down.(b) then begin
    t.down.(b) <- true;
    t.n_down <- t.n_down + 1;
    t.live_count <- t.live_count - 1;
    match t.body with
    | Flush_body fs -> crash_flush t fs b
    | Sharded_body sh -> crash_sharded t sh b
  end

let recover t b =
  if b >= 0 && b < t.n && t.is_shard.(b) && t.down.(b) then begin
    t.down.(b) <- false;
    t.n_down <- t.n_down - 1;
    t.live_count <- t.live_count + 1;
    match t.body with
    | Flush_body fs -> recover_flush t fs
    | Sharded_body sh ->
        rebuild_live t sh;
        compact t sh
  end

let invariant_ok t =
  match t.body with
  | Flush_body fs ->
      let rev_ok = ref true in
      Hashtbl.iter
        (fun b set ->
          Hashtbl.iter
            (fun key () ->
              match Hashtbl.find_opt fs.store key with
              | Some (Some path) ->
                  if not (Array.exists (fun v -> v = b) path) then
                    rev_ok := false
              | Some None | None -> rev_ok := false)
            set)
        fs.rev;
      let degraded_ok = ref true in
      Hashtbl.iter
        (fun key () ->
          if not (Hashtbl.mem fs.store key) then degraded_ok := false)
        fs.degraded;
      !rev_ok && !degraded_ok
  | Sharded_body sh ->
      let down_empty = ref true in
      Array.iteri
        (fun slot v ->
          if t.down.(v) && Hashtbl.length sh.tables.(slot) > 0 then
            down_empty := false)
        sh.shard_ids;
      (* Compaction on every transition keeps each shard holding exactly
         keys it currently owns. *)
      let owned = ref true in
      Array.iteri
        (fun slot _ ->
          Hashtbl.iter
            (fun (src, dst) _ ->
              if owner_slot t sh src dst <> slot then owned := false)
            sh.tables.(slot))
        sh.shard_ids;
      let live_expected =
        Array.to_list sh.shard_ids
        |> List.filter (fun v -> not t.down.(v))
        |> List.length
      in
      let live_ok =
        t.live_count = live_expected
        &&
        match t.strategy with
        | Modulo ->
            Array.length sh.live = live_expected
            && Array.for_all
                 (fun slot -> not t.down.(sh.shard_ids.(slot)))
                 sh.live
        | Flush | Ring _ -> true
      in
      let ring_ok =
        let ok = ref true in
        for i = 0 to Array.length sh.ring_pos - 2 do
          if sh.ring_pos.(i) > sh.ring_pos.(i + 1) then ok := false
        done;
        !ok
      in
      !down_empty && !owned && live_ok && ring_ok
