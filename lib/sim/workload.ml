type session = {
  id : int;
  src : int;
  dst : int;
  arrival : float;
  duration : float;
  demand : float;
}

type params = { arrival_rate : float; mean_duration : float; demand : float }

let default_params = { arrival_rate = 10.0; mean_duration = 5.0; demand = 1.0 }

let generate ~rng model ~n_sessions params =
  if n_sessions < 0 then invalid_arg "Workload.generate: negative count";
  if params.arrival_rate <= 0.0 || params.mean_duration <= 0.0 then
    invalid_arg "Workload.generate: rates must be positive";
  let masses = model.Broker_core.Traffic.masses in
  let draw = Broker_util.Sampling.weighted_alias masses in
  let clock = ref 0.0 in
  Array.init n_sessions (fun id ->
      clock := !clock +. Broker_util.Xrandom.exponential rng params.arrival_rate;
      let src = draw rng in
      let dst = ref (draw rng) in
      while !dst = src do
        dst := draw rng
      done;
      {
        id;
        src;
        dst = !dst;
        arrival = !clock;
        duration =
          Broker_util.Xrandom.exponential rng (1.0 /. params.mean_duration);
        demand = params.demand;
      })
