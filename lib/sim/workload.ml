type session = {
  id : int;
  src : int;
  dst : int;
  arrival : float;
  duration : float;
  demand : float;
}

type params = { arrival_rate : float; mean_duration : float; demand : float }

let default_params = { arrival_rate = 10.0; mean_duration = 5.0; demand = 1.0 }

(* Zipf-skewed endpoint popularity: mass of vertex i is 1/(i+1)^alpha,
   normalized to mean 1 like the gravity model. Deterministic (no rng) —
   the skew is what X8 needs so a small set of hot (src, dst) pairs
   dominates cache traffic. *)
let zipf ?(alpha = 1.2) ~n () =
  if n < 2 then invalid_arg "Workload.zipf: need at least 2 vertices";
  if Float.is_nan alpha || alpha <= 0.0 || alpha = infinity then
    invalid_arg "Workload.zipf: alpha must be positive and finite";
  let masses =
    Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** alpha))
  in
  let total = Array.fold_left ( +. ) 0.0 masses in
  let scale = float_of_int n /. total in
  { Broker_core.Traffic.masses = Array.map (fun m -> m *. scale) masses }

let generate ~rng model ~n_sessions params =
  if n_sessions < 0 then invalid_arg "Workload.generate: negative count";
  if params.arrival_rate <= 0.0 || params.mean_duration <= 0.0 then
    invalid_arg "Workload.generate: rates must be positive";
  let masses = model.Broker_core.Traffic.masses in
  let draw = Broker_util.Sampling.weighted_alias masses in
  let clock = ref 0.0 in
  Array.init n_sessions (fun id ->
      clock := !clock +. Broker_util.Xrandom.exponential rng params.arrival_rate;
      let src = draw rng in
      let dst = ref (draw rng) in
      while !dst = src do
        dst := draw rng
      done;
      {
        id;
        src;
        dst = !dst;
        arrival = !clock;
        duration =
          Broker_util.Xrandom.exponential rng (1.0 /. params.mean_duration);
        demand = params.demand;
      })
