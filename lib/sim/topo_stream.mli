(** Streaming topology updates: announce/withdraw events plus the
    propagation model that turns an origin-time update into the moment
    the broker layer actually learns about it.

    Two propagation models from the paper's deployment discussion:

    - {!Centralized}: every update reaches the broker control plane
      after one constant delay (an SDN-style feed).
    - {!Bgp_like}: an update crawls hop by hop, so its delivery lag is
      [base + per_hop * hops] where [hops] is the BGP-like distance
      from the update's nearer endpoint to the closest broker on the
      pre-update graph. *)

type op =
  | Announce of int * int  (** new undirected edge [(u, v)] *)
  | Withdraw of int * int  (** retract undirected edge [(u, v)] *)

val op_endpoints : op -> int * int

type event = { time : float; op : op }
(** An update stamped with its origin time (when the edge actually
    changed, not when anyone hears of it). *)

type propagation =
  | Centralized of { delay : float }
  | Bgp_like of { base : float; per_hop : float }

val delay_of : propagation -> hops:int -> float
(** Delivery lag of a single update. [hops] is clamped at 0 and ignored
    by {!Centralized}. *)

val burst :
  ?withdraw_fraction:float ->
  rng:Broker_util.Xrandom.t ->
  Broker_graph.Graph.t ->
  size:int ->
  op array
(** Deterministic burst of [size] distinct updates at time 0:
    [withdraw_fraction] (default 0.5, rounded to nearest) withdraws of
    uniformly sampled existing edges, the rest announces of fresh
    non-edges. Rejection sampling is bounded, so bursts on tiny or
    near-complete graphs may come back short.
    @raise Invalid_argument on a negative size or a fraction outside
    [0, 1]. *)

val schedule :
  Broker_graph.Graph.t ->
  brokers:int array ->
  propagation ->
  event array ->
  event array
(** Map origin-time events to delivery-time events under the given
    propagation model. Hop counts for {!Bgp_like} are computed on the
    given (pre-update) graph; endpoints no broker can reach pay a
    pessimistic [n] hops. *)
