(** Deterministic broker fault injection for the flow-level simulator.

    A fault stream is a time-sorted array of crash/recover events over a
    broker set, generated from an {!Broker_util.Xrandom} stream — never
    from wall-clock or [Stdlib.Random] — so a chaos run replays bit-for-bit
    from its seed (HACKING.md, "Determinism discipline").

    Crash and recover events always come in matched pairs (the recover of a
    pair is clamped to the horizon), and a broker may crash again while
    already down under the correlated scenario: consumers must treat broker
    liveness as a down-{e counter}, up when it returns to zero. *)

type kind = Crash | Recover

val kind_equal : kind -> kind -> bool

type event = { time : float; broker : int; kind : kind }

type scenario =
  | Independent of { mtbf : float; mttr : float }
      (** Every broker fails independently: up-times ~ Exp(1/mtbf),
          down-times ~ Exp(1/mttr). [mtbf = infinity] yields the empty
          stream (the zero-rate process). *)
  | Degree_targeted of { mtbf : float; mttr : float; bias : float }
      (** Like [Independent] but a broker's failure rate scales with
          [(degree / mean broker degree) ^ bias]: the high-degree hubs —
          exactly the brokers the alliance leans on — fail first. [bias = 0]
          degenerates to [Independent]; the broker-averaged rate stays near
          [1/mtbf]. *)
  | Ixp_outage of { mtbf : float; mttr : float }
      (** Correlated facility outages: each IXP fabric fails as a unit
          (up ~ Exp(1/mtbf) per fabric), taking down simultaneously every
          broker member of the fabric plus the IXP node itself when it is a
          broker. Models the shared-fate risk of colocating alliance members
          at the same exchange. *)

val generate :
  rng:Broker_util.Xrandom.t ->
  Broker_topo.Topology.t ->
  brokers:int array ->
  horizon:float ->
  scenario ->
  event array
(** Fault events over [\[0, horizon)], sorted by time (emission-order
    tie-break, hence stable and deterministic). Per-broker draws come from
    {!Broker_util.Xrandom.split} streams taken in [brokers] array order, so
    one broker's parameters never perturb another broker's sample path.
    @raise Invalid_argument on non-positive mtbf/mttr, negative bias or
    horizon. *)

val phased : (float * int array) list -> event array
(** [phased [(d1, down1); (d2, down2); ...]] is the deterministic churn
    schedule that holds exactly the brokers of [down_i] down for the
    [i]-th phase of duration [d_i] (phases are laid back to back from
    time 0). At each phase boundary, recovers for brokers leaving the
    down-set precede crashes for brokers entering it (both in ascending
    broker order); after the final phase every remaining down broker
    recovers, so crash/recover pairs stay matched. No randomness: the
    n → n−m → n churn of X8 is the three-phase schedule
    [[(d, \[||\]); (d', crashed); (d'', \[||\])]].
    @raise Invalid_argument on a NaN or non-positive phase duration, or a
    negative broker id. *)

val thin :
  rng:Broker_util.Xrandom.t -> keep:float -> event array -> event array
(** [thin ~rng ~keep events] keeps each crash/recover pair independently
    with probability [keep] (FIFO-matched per broker). The per-pair uniform
    is drawn for {e every} pair regardless of [keep], so calls on the same
    base stream with identically seeded [rng] and increasing [keep] produce
    {e nested} outage sets — the coupling that makes an availability-vs-rate
    sweep monotone sample-wise, not just in expectation. *)
