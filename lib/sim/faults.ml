module G = Broker_graph.Graph
module T = Broker_topo.Topology
module X = Broker_util.Xrandom

type kind = Crash | Recover

let kind_equal a b =
  match (a, b) with Crash, Crash | Recover, Recover -> true | _ -> false

type event = { time : float; broker : int; kind : kind }

type scenario =
  | Independent of { mtbf : float; mttr : float }
  | Degree_targeted of { mtbf : float; mttr : float; bias : float }
  | Ixp_outage of { mtbf : float; mttr : float }

let validate ~mtbf ~mttr =
  if Float.is_nan mtbf || mtbf <= 0.0 then
    invalid_arg "Faults.generate: mtbf must be positive";
  if Float.is_nan mttr || mttr <= 0.0 || mttr = infinity then
    invalid_arg "Faults.generate: mttr must be positive and finite"

(* Alternating up/down renewal process clipped to [0, horizon]. Every Crash
   gets a matching Recover (clamped to the horizon), so down intervals are
   always well-formed crash/recover pairs. *)
let renewal rng ~mtbf ~mttr ~horizon ~emit target =
  if mtbf < infinity then begin
    let t = ref 0.0 in
    let continue = ref true in
    while !continue do
      let crash = !t +. X.exponential rng (1.0 /. mtbf) in
      if crash >= horizon then continue := false
      else begin
        let recover = crash +. X.exponential rng (1.0 /. mttr) in
        emit ~crash ~recover:(Float.min recover horizon) target;
        t := recover;
        if recover >= horizon then continue := false
      end
    done
  end

let generate ~rng topo ~brokers ~horizon scenario =
  if Float.is_nan horizon || horizon < 0.0 then
    invalid_arg "Faults.generate: horizon must be >= 0";
  let events = ref [] in
  let n_emitted = ref 0 in
  let push time broker kind =
    events := (!n_emitted, { time; broker; kind }) :: !events;
    incr n_emitted
  in
  let emit1 ~crash ~recover b =
    push crash b Crash;
    push recover b Recover
  in
  (match scenario with
  | Independent { mtbf; mttr } ->
      validate ~mtbf ~mttr;
      (* One split stream per broker, in array order: the draw sequence of
         broker [i] is independent of every other broker's parameters. *)
      Array.iter
        (fun b -> renewal (X.split rng) ~mtbf ~mttr ~horizon ~emit:emit1 b)
        brokers
  | Degree_targeted { mtbf; mttr; bias } ->
      validate ~mtbf ~mttr;
      if Float.is_nan bias || bias < 0.0 then
        invalid_arg "Faults.generate: bias must be >= 0";
      let g = topo.T.graph in
      let deg b = float_of_int (max 1 (G.degree g b)) in
      let mean_deg =
        if Array.length brokers = 0 then 1.0
        else
          Array.fold_left (fun acc b -> acc +. deg b) 0.0 brokers
          /. float_of_int (Array.length brokers)
      in
      Array.iter
        (fun b ->
          (* Hubs fail more often: failure rate scales with (deg/mean)^bias,
             so the broker-averaged rate stays ~1/mtbf. *)
          let mtbf_b = mtbf *. ((mean_deg /. deg b) ** bias) in
          renewal (X.split rng) ~mtbf:mtbf_b ~mttr ~horizon ~emit:emit1 b)
        brokers
  | Ixp_outage { mtbf; mttr } ->
      validate ~mtbf ~mttr;
      let g = topo.T.graph in
      let n = G.n g in
      let is_broker = Array.make n false in
      Array.iter (fun b -> if b >= 0 && b < n then is_broker.(b) <- true) brokers;
      (* A facility outage takes down the IXP node itself (when it is a
         broker) plus every broker member of the fabric, simultaneously. *)
      Array.iter
        (fun x ->
          let members = ref [] in
          if is_broker.(x) then members := x :: !members;
          G.iter_neighbors g x (fun b -> if is_broker.(b) then members := b :: !members);
          let members = List.sort_uniq Int.compare !members in
          if members <> [] then
            let emit_group ~crash ~recover () =
              List.iter
                (fun b ->
                  push crash b Crash;
                  push recover b Recover)
                members
            in
            renewal (X.split rng) ~mtbf ~mttr ~horizon ~emit:emit_group ())
        (T.ixps topo));
  let arr = Array.of_list !events in
  (* Time order with emission-order tie-break: deterministic and stable. *)
  Array.sort
    (fun (i, a) (j, b) ->
      let c = Float.compare a.time b.time in
      if c <> 0 then c else Int.compare i j)
    arr;
  Array.map snd arr

(* Deterministic phased churn: each phase holds a fixed down-set for a
   fixed duration. At every boundary the previous down-set is diffed
   against the next one — recovers are emitted before crashes (both in
   ascending broker order) so the event-queue FIFO tie-break serves the
   returning brokers first. After the last phase everything still down
   recovers, keeping crash/recover pairs matched. *)
let phased phases =
  let events = ref [] in
  let push time broker kind = events := { time; broker; kind } :: !events in
  let t = ref 0.0 in
  let prev = ref [||] in
  List.iter
    (fun (duration, down) ->
      if Float.is_nan duration || duration <= 0.0 then
        invalid_arg "Faults.phased: phase duration must be positive";
      let down = Array.of_list (List.sort_uniq Int.compare (Array.to_list down)) in
      Array.iter
        (fun b ->
          if b < 0 then invalid_arg "Faults.phased: broker id must be >= 0")
        down;
      let mem arr b = Array.exists (fun x -> x = b) arr in
      Array.iter (fun b -> if not (mem down b) then push !t b Recover) !prev;
      Array.iter (fun b -> if not (mem !prev b) then push !t b Crash) down;
      prev := down;
      t := !t +. duration)
    phases;
  Array.iter (fun b -> push !t b Recover) !prev;
  Array.of_list (List.rev !events)

let thin ~rng ~keep events =
  if Float.is_nan keep then invalid_arg "Faults.thin: keep must be a number";
  (* FIFO-match each broker's Crash with its next Recover and decide per
     pair. The uniform draw happens for every pair regardless of [keep], in
     stream order, so two calls seeded identically but with different [keep]
     values produce nested outage sets (the coupling that makes availability
     sweeps sample-wise monotone). *)
  let pending : (int, bool Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun e ->
      match e.kind with
      | Crash ->
          let u = X.float rng 1.0 in
          let d = u < keep in
          let q =
            match Hashtbl.find_opt pending e.broker with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace pending e.broker q;
                q
          in
          Queue.push d q;
          if d then out := e :: !out
      | Recover ->
          let d =
            match Hashtbl.find_opt pending e.broker with
            | Some q when not (Queue.is_empty q) -> Queue.pop q
            | Some _ | None -> false
          in
          if d then out := e :: !out)
    events;
  Array.of_list (List.rev !out)
