(** Time-ordered event queue for the discrete-event simulator. Ties are
    served in insertion order (stable), which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> time:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
val size : 'a t -> int

val length : 'a t -> int
(** Alias for {!size} (O(1)). *)

val max_length : 'a t -> int
(** High-water mark: the largest {!length} ever reached since creation
    or the last {!clear} (O(1); popping never lowers it). Feeds the
    simulator's [sim.queue.max_depth] gauge. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the queue and release the backing storage (so large drained
    queues do not pin their peak capacity — or any popped payload — in
    memory). The queue remains usable; the insertion-sequence counter
    and the {!max_length} high-water mark restart. *)
