module G = Broker_graph.Graph
module X = Broker_util.Xrandom

type op = Announce of int * int | Withdraw of int * int

let op_endpoints = function Announce (u, v) | Withdraw (u, v) -> (u, v)

type event = { time : float; op : op }

type propagation =
  | Centralized of { delay : float }
  | Bgp_like of { base : float; per_hop : float }

let delay_of prop ~hops =
  match prop with
  | Centralized { delay } -> delay
  | Bgp_like { base; per_hop } -> base +. (per_hop *. float_of_int (max 0 hops))

(* Uniform existing-edge sampling by arc position: each undirected edge
   owns exactly two arcs, so a uniform arc is a uniform edge. The owner
   vertex of a position is recovered by binary search over the offsets. *)
let vertex_of_pos off n p =
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if off.(mid) <= p then lo := mid else hi := mid - 1
  done;
  !lo

let burst ?(withdraw_fraction = 0.5) ~rng g ~size =
  if size < 0 then invalid_arg "Topo_stream.burst: negative size";
  if
    Float.is_nan withdraw_fraction
    || withdraw_fraction < 0.0
    || withdraw_fraction > 1.0
  then invalid_arg "Topo_stream.burst: withdraw_fraction outside [0, 1]";
  let n = G.n g in
  let arcs = G.arcs g in
  let off = G.csr_off g and adj = G.csr_adj g in
  let n_withdraw =
    int_of_float ((withdraw_fraction *. float_of_int size) +. 0.5)
  in
  (* Dedup within the burst on a packed (min, max) vertex-pair key. *)
  let seen = Hashtbl.create (max 16 (2 * size)) in
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  let out = ref [] and count = ref 0 in
  let tries = ref 0 in
  let budget = 50 * (size + 1) in
  while !count < n_withdraw && !tries < budget && arcs > 0 do
    incr tries;
    let p = X.int rng arcs in
    let u = vertex_of_pos off n p in
    let v = adj.(p) in
    let k = key u v in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      out := Withdraw (min u v, max u v) :: !out;
      incr count
    end
  done;
  let tries = ref 0 in
  while !count < size && !tries < budget && n >= 2 do
    incr tries;
    let u = X.int rng n and v = X.int rng n in
    if u <> v && not (G.mem_edge g u v) then begin
      let k = key u v in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.replace seen k ();
        out := Announce (min u v, max u v) :: !out;
        incr count
      end
    end
  done;
  Array.of_list (List.rev !out)

let schedule g ~brokers prop events =
  match prop with
  | Centralized { delay } ->
      Array.map (fun e -> { e with time = e.time +. delay }) events
  | Bgp_like _ ->
      (* Hop count of an update = distance from its nearer endpoint to
         the closest broker on the pre-update graph — the path the
         announcement travels before the (centralized-per-domain) broker
         layer learns of it. Endpoints outside every broker's reach pay
         the pessimistic n hops. *)
      let n = G.n g in
      let dist = Broker_graph.Bfs.distances_multi g (Array.to_list brokers) in
      let hops_to_broker v = if dist.(v) < 0 then n else dist.(v) in
      Array.map
        (fun e ->
          let u, v = op_endpoints e.op in
          let hops = min (hops_to_broker u) (hops_to_broker v) in
          { e with time = e.time +. delay_of prop ~hops })
        events
