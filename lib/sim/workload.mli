(** Session workload generation for the brokerage simulator.

    Sessions are QoS flows between AS pairs: Poisson arrivals, exponential
    holding times, unit (configurable) bandwidth demand. Endpoints are
    drawn from the gravity-model traffic masses, so demand concentrates on
    the popular eyeball/content pairs — the VoIP/video traffic mix that
    motivates the paper. *)

type session = {
  id : int;
  src : int;
  dst : int;
  arrival : float;
  duration : float;
  demand : float;
}

type params = {
  arrival_rate : float;  (** sessions per time unit *)
  mean_duration : float;
  demand : float;  (** bandwidth units per session *)
}

val default_params : params
(** arrival_rate 10, mean_duration 5, demand 1. *)

val zipf : ?alpha:float -> n:int -> unit -> Broker_core.Traffic.model
(** Zipf-skewed traffic masses over [n] vertices: vertex [i] has mass
    proportional to [1/(i+1)^alpha] (default [alpha = 1.2]), normalized to
    mean 1 like the gravity model. Deterministic. Feeding this to
    {!generate} concentrates sessions on a small hot set of (src, dst)
    pairs — the skew that makes path-cache hit rates meaningful (X8).
    @raise Invalid_argument if [n < 2] or [alpha] is not positive and
    finite. *)

val generate :
  rng:Broker_util.Xrandom.t ->
  Broker_core.Traffic.model ->
  n_sessions:int ->
  params ->
  session array
(** Sessions sorted by arrival time; [src <> dst] always. *)
