(** Churn-resilient sharded cache for dominated paths.

    The simulator caches the hop-shortest B-dominated path per distinct
    [(src, dst)] pair. Under broker churn the cache policy is the whole
    game: a crash that flushes every entry riding the dead broker
    degenerates sustained churn into recomputing paths from scratch. This
    module makes the key→shard assignment pluggable, with shards being the
    brokers themselves:

    - {!Flush} — one global store plus a per-broker reverse index; a crash
      evicts exactly the keys whose path rides the dead broker, a recovery
      flushes every key computed while any broker was down. This is the
      historical simulator behavior and the default.
    - {!Modulo} — static assignment [owner = live.(h mod n_live)]: any
      change in the live-shard count remaps ≈ (n−1)/n of the keys (the
      SimpleHash baseline of the KoordeDHT churn experiment).
    - {!Ring} — consistent hashing: each live shard owns the arcs of its
      [vnodes] ring points, so one crash/recover remaps only ≈ 1/n of the
      keys. Crashed shards lose their own entries (the broker's memory
      died with it); everything else survives.

    Sharded lookups degrade gracefully instead of trusting stale entries:
    a hit is validated against current liveness, an invalid path triggers
    a lazy repair (recompute, which finds a dominated path avoiding the
    down brokers), and a valid path that merely rides an outage is served
    degraded. Outcomes are tallied in {!stats} (plain ints, always on) and
    mirrored as brokerscope counters ([sim.cache.*], active only when
    {!Broker_obs.Control.enabled}).

    Determinism: key and ring-point placement hash through a seeded
    splitmix64 on the key ints — never [Hashtbl.hash] (brokerlint R9) —
    so owners are reproducible across runs, processes and domain counts. *)

type strategy =
  | Flush  (** global store, reverse-index eviction, recovery flush *)
  | Modulo  (** static [h mod n_live] assignment — remaps almost all keys *)
  | Ring of { vnodes : int }
      (** consistent hashing with [vnodes] virtual nodes per shard *)

val default_vnodes : int
(** Virtual nodes per shard used by {!strategy_of_string} and the CLI
    default (64). *)

val strategy_name : strategy -> string
(** ["flush"], ["modulo"] or ["ring"]. *)

val strategy_of_string : ?vnodes:int -> string -> (strategy, string) result
(** Parse a CLI strategy name (case-insensitive). [~vnodes] (default
    {!default_vnodes}) applies to ["ring"]. Unknown names and [vnodes < 1]
    are [Error] with a usable message. *)

type stats = {
  lookups : int;
  hits : int;  (** clean hits: entry valid and untouched by any outage *)
  served_degraded : int;
      (** valid hits that ride a current outage (or were computed under
          one): served, not treated as misses *)
  repaired_lazily : int;
      (** invalidated hits healed by recomputing a live dominated path *)
  recomputed : int;
      (** full recomputes: cold misses, failed repairs, post-outage
          refreshes of degraded entries *)
  evicted : int;  (** keys lost to crash eviction / shard purge *)
  flushed : int;  (** keys dropped by the {!Flush} recovery flush *)
}

val stats_equal : stats -> stats -> bool
(** Field-wise equality. *)

type t

val create :
  ?strategy:strategy -> ?seed:int -> n:int -> shards:int array -> unit -> t
(** A cache over vertices [0..n-1] whose shards are [shards] (the broker
    set; deduplicated). All shards start live. Default strategy {!Flush},
    default seed 0.
    @raise Invalid_argument on [Ring] with [vnodes < 1], or a shard id
    outside [0..n-1]. *)

val strategy : t -> strategy

val find :
  t -> compute:(unit -> int array option) -> int -> int -> int array option
(** [find t ~compute src dst] is the cached dominated path for the pair,
    calling [compute] on a miss (or repair/refresh) and storing the
    result. [compute] must respect current liveness — it is the
    [find_dominated_path] closure of the caller. [None] results (no
    dominated path) are cached too. *)

val crash : t -> int -> unit
(** Shard [b] went down. {!Flush}: evict exactly the keys riding [b].
    Sharded: purge [b]'s own table, then compact — every live shard sheds
    the keys the new assignment no longer maps to it. Removing a ring
    shard never moves a key between two live shards, so {!Ring} sheds
    nothing extra; a {!Modulo} live-count change reassigns ≈ (n−1)/n of
    the keys. Surviving entries are validated lazily on hit. No-op for an
    unknown or already-down shard. *)

val recover : t -> int -> unit
(** Shard [b] came back (empty — its memory died with it). {!Flush}:
    additionally drop every key computed while any broker was down, as
    the historical simulator did on each full recovery. Sharded: compact
    again — {!Ring} hands ≈ 1/n of the keys back to the returning shard,
    {!Modulo} reshuffles almost everything a second time. No-op for an
    unknown or already-live shard. *)

val invalidate_all : t -> unit
(** Drop every cached entry under any strategy, counting them as evicted.
    Liveness flags are untouched. This is the topology-update hammer: an
    announce/withdraw can reroute any pair, so no cached path survives. *)

val owner : t -> int -> int -> int option
(** Current owning shard of the pair, [None] for {!Flush} or when no
    shard is live. Deterministic; the remap-fraction measurements of X8
    and the qcheck bound sample this across a crash. *)

val live_shards : t -> int
(** Number of currently-live shards. *)

val size : t -> int
(** Total cached entries across shards. *)

val stats : t -> stats
(** Cumulative outcome tallies since {!create}. *)

val invariant_ok : t -> bool
(** Internal consistency, for tests. {!Flush}: every reverse-index key is
    present in the store and its cached path rides the indexing broker;
    every degraded key is present in the store. Sharded: down shards hold
    no entries, every live shard holds only keys it currently owns, and
    the ring/live views match the down flags. *)
