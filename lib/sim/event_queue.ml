type 'a t = {
  mutable times : float array;
  mutable seqs : int array;  (* insertion sequence: stable tie-break *)
  mutable data : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable max_size : int;  (* high-water mark since creation/clear *)
}

let create () =
  { times = [||]; seqs = [||]; data = [||]; size = 0; next_seq = 0; max_size = 0 }

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let tm = t.times.(i) and sq = t.seqs.(i) and d = t.data.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.data.(i) <- t.data.(j);
  t.times.(j) <- tm;
  t.seqs.(j) <- sq;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t i p then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && before t l !best then best := l;
  if r < t.size && before t r !best then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let grow t x =
  let cap = max 16 (2 * Array.length t.times) in
  let times = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let data = Array.make cap x in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.data 0 data 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.data <- data

let add t ~time x =
  if t.size = Array.length t.times then grow t x;
  t.times.(t.size) <- time;
  t.seqs.(t.size) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  if t.size > t.max_size then t.max_size <- t.size;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let res = (t.times.(0), t.data.(0)) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.times.(0) <- t.times.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.data.(0) <- t.data.(t.size);
      (* Alias the vacated slot to the new root so it never retains the
         payload that just moved down: a fully drained queue would otherwise
         keep every popped element reachable through the backing array. *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end;
    Some res
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)
let size t = t.size
let length t = t.size
let max_length t = t.max_size
let is_empty t = t.size = 0

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.data <- [||];
  t.size <- 0;
  t.next_seq <- 0;
  t.max_size <- 0
