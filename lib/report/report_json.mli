(** JSON backend for {!Report}: the machine artifact consumed by
    [brokerctl report diff] and the CI golden job.

    The document is schema-versioned ([brokerset-report/1]) and emitted
    with a fixed key order, so equal reports serialize to byte-identical
    strings. Floats round-trip exactly; JSON has no non-finite numbers, so
    NaN and infinities are written as the strings ["NaN"] /
    ["Infinity"] / ["-Infinity"] and parse back losslessly. *)

val schema : string
(** ["brokerset-report/1"] *)

val to_string : Report.t -> string
(** Serialize (stable key order, trailing newline). *)

val of_string : string -> (Report.t, string) result
(** Parse a document produced by {!to_string}. Self-contained
    recursive-descent parser — no external JSON dependency. *)

(** {1 Generic JSON}

    The parser underneath {!of_string}, exposed so other JSON artifacts
    the toolchain emits (notably the Chrome trace files written by
    [Broker_obs.Trace]) can be validated without adding a dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_of_string : string -> (json, string) result
(** Parse any JSON document (trailing garbage is an error). *)
