(** JSON backend for {!Report}: the machine artifact consumed by
    [brokerctl report diff] and the CI golden job.

    The document is schema-versioned ([brokerset-report/1]) and emitted
    with a fixed key order, so equal reports serialize to byte-identical
    strings. Floats round-trip exactly; JSON has no non-finite numbers, so
    NaN and infinities are written as the strings ["NaN"] /
    ["Infinity"] / ["-Infinity"] and parse back losslessly. *)

val schema : string
(** ["brokerset-report/1"] *)

val to_string : Report.t -> string
(** Serialize (stable key order, trailing newline). *)

val of_string : string -> (Report.t, string) result
(** Parse a document produced by {!to_string}. Self-contained
    recursive-descent parser — no external JSON dependency. *)
