(* CSV backend: one file per table and per series, raw typed values (no
   display rounding) so downstream plotting scripts get full precision. *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let float_repr x =
  if Float.is_finite x then begin
    let s = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x
  end
  else if Float.is_nan x then "nan"
  else if x > 0.0 then "inf"
  else "-inf"

let add_line buf cells =
  Buffer.add_string buf (String.concat "," (List.map quote cells));
  Buffer.add_char buf '\n'

let cell_raw cell =
  match Report.cell_value cell with
  | Some v -> float_repr v
  | None -> Report.cell_text cell

let column_header (c : Report.column) =
  match c.Report.unit_ with
  | Some u -> Printf.sprintf "%s (%s)" c.Report.title u
  | None -> c.Report.title

let table_csv tbl =
  let buf = Buffer.create 256 in
  add_line buf (List.map column_header (Report.columns tbl));
  List.iter
    (function
      | Report.Row cells -> add_line buf (List.map cell_raw cells)
      | Report.Rule -> ())
    (Report.rows tbl);
  Buffer.contents buf

let series_csv (s : Report.series) =
  let buf = Buffer.create 256 in
  add_line buf [ s.Report.x_label; s.Report.y_label ];
  Array.iter
    (fun (x, y) -> add_line buf [ float_repr x; float_repr y ])
    s.Report.points;
  Buffer.contents buf

let slug key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    key

let files r =
  let name = Report.name r in
  let acc = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun item ->
          match item with
          | Report.Table tbl ->
              let fname =
                Printf.sprintf "%s.table.%s.csv" name
                  (slug (Report.table_key tbl))
              in
              acc := (fname, table_csv tbl) :: !acc
          | Report.Series sr ->
              let fname =
                Printf.sprintf "%s.series.%s.csv" name (slug sr.Report.skey)
              in
              acc := (fname, series_csv sr) :: !acc
          | Report.Note _ | Report.Metric _ -> ())
        (Report.items s))
    (Report.sections r);
  List.rev !acc
