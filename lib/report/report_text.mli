(** Text backend for {!Report}: reproduces the historical terminal output
    byte for byte (verified against captured seed output in
    [test/goldens/text/] and by the CI golden job).

    Rendering rules: a 72-[=] banner per section; tables through
    {!Broker_util.Table.render} with cells formatted by
    {!Report.cell_text}; notes and metric display strings verbatim; silent
    metrics and series emit nothing. *)

val render : Report.t -> string
val pp : Format.formatter -> Report.t -> unit

val print : Report.t -> unit
(** Render to the current output formatter (see {!set_out}). *)

val out : unit -> Format.formatter
(** The formatter report text goes to ({!Format.std_formatter} unless
    {!set_out} changed it). *)

val set_out : Format.formatter -> unit
(** Redirect all report text — e.g. into a buffer for tests or a per-run
    log file. This is the only mutable output state in the library. *)

val flush : unit -> unit
(** Flush the current output formatter (called between experiments so
    channel- and formatter-level output interleave correctly). *)
