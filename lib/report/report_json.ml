(* JSON backend: schema-versioned (brokerset-report/1) machine artifact
   with a stable key order, plus a self-contained parser so goldens can be
   read back without external dependencies. Floats round-trip exactly
   (shortest decimal that re-reads to the same bits, widened to %.17g when
   needed); JSON has no non-finite numbers, so NaN/infinities are emitted
   as the strings "NaN"/"Infinity"/"-Infinity" and parsed back. *)

let schema = "brokerset-report/1"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  let s = Printf.sprintf "%.12g" x in
  if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x

let add_float buf x =
  if Float.is_finite x then Buffer.add_string buf (float_repr x)
  else if Float.is_nan x then Buffer.add_string buf "\"NaN\""
  else if x > 0.0 then Buffer.add_string buf "\"Infinity\""
  else Buffer.add_string buf "\"-Infinity\""

let add_sep buf first = if !first then first := false else Buffer.add_string buf ", "

let add_cell buf cell =
  Buffer.add_char buf '{';
  (match Report.cell_value cell with
  | None ->
      Buffer.add_string buf "\"s\": ";
      add_escaped buf (Report.cell_text cell)
  | Some v ->
      let tag =
        match (Report.cell_decimals cell, Report.cell_volatile cell) with
        | None, _ -> "i"
        | Some _, true -> "v"
        | Some _, false ->
            (* Distinguish plain floats from percentage fractions by the
               rendered text: pct cells end in '%'. *)
            let t = Report.cell_text cell in
            if String.length t > 0 && t.[String.length t - 1] = '%' then "p"
            else "f"
      in
      Printf.bprintf buf "\"%s\": " tag;
      add_float buf v;
      (match Report.cell_decimals cell with
      | Some d -> Printf.bprintf buf ", \"d\": %d" d
      | None -> ()));
  Buffer.add_char buf '}'

let add_table buf tbl =
  Buffer.add_string buf "{\"type\": \"table\", \"key\": ";
  add_escaped buf (Report.table_key tbl);
  Buffer.add_string buf ", \"columns\": [";
  let first = ref true in
  List.iter
    (fun (c : Report.column) ->
      add_sep buf first;
      Buffer.add_string buf "{\"title\": ";
      add_escaped buf c.Report.title;
      (match c.Report.unit_ with
      | Some u ->
          Buffer.add_string buf ", \"unit\": ";
          add_escaped buf u
      | None -> ());
      Buffer.add_char buf '}')
    (Report.columns tbl);
  Buffer.add_string buf "], \"rows\": [";
  let first = ref true in
  List.iter
    (fun row ->
      add_sep buf first;
      match row with
      | Report.Rule -> Buffer.add_string buf "{\"rule\": true}"
      | Report.Row cells ->
          Buffer.add_string buf "{\"cells\": [";
          let fc = ref true in
          List.iter
            (fun c ->
              add_sep buf fc;
              add_cell buf c)
            cells;
          Buffer.add_string buf "]}")
    (Report.rows tbl);
  Buffer.add_string buf "]}"

let add_item buf item =
  match item with
  | Report.Table tbl -> add_table buf tbl
  | Report.Note text ->
      Buffer.add_string buf "{\"type\": \"note\", \"text\": ";
      add_escaped buf text;
      Buffer.add_char buf '}'
  | Report.Metric m ->
      Buffer.add_string buf "{\"type\": \"metric\", \"key\": ";
      add_escaped buf m.Report.mkey;
      Buffer.add_string buf ", \"value\": ";
      add_float buf m.Report.value;
      (match m.Report.munit with
      | Some u ->
          Buffer.add_string buf ", \"unit\": ";
          add_escaped buf u
      | None -> ());
      if m.Report.mvolatile then Buffer.add_string buf ", \"volatile\": true";
      (match m.Report.display with
      | Some d ->
          Buffer.add_string buf ", \"display\": ";
          add_escaped buf d
      | None -> ());
      Buffer.add_char buf '}'
  | Report.Series s ->
      Buffer.add_string buf "{\"type\": \"series\", \"key\": ";
      add_escaped buf s.Report.skey;
      Buffer.add_string buf ", \"x\": ";
      add_escaped buf s.Report.x_label;
      Buffer.add_string buf ", \"y\": ";
      add_escaped buf s.Report.y_label;
      Buffer.add_string buf ", \"points\": [";
      Array.iteri
        (fun i (x, y) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '[';
          add_float buf x;
          Buffer.add_string buf ", ";
          add_float buf y;
          Buffer.add_char buf ']')
        s.Report.points;
      Buffer.add_string buf "]}"

let to_string r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": ";
  add_escaped buf schema;
  Buffer.add_string buf ",\n  \"name\": ";
  add_escaped buf (Report.name r);
  Buffer.add_string buf ",\n  \"meta\": {";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      add_sep buf first;
      add_escaped buf k;
      Buffer.add_string buf ": ";
      add_float buf v)
    (Report.meta r);
  Buffer.add_string buf "},\n  \"sections\": [\n";
  let nsec = List.length (Report.sections r) in
  List.iteri
    (fun i s ->
      Buffer.add_string buf "    {\"title\": ";
      add_escaped buf (Report.section_title s);
      Buffer.add_string buf ", \"items\": [\n";
      let nitems = List.length (Report.items s) in
      List.iteri
        (fun j item ->
          Buffer.add_string buf "      ";
          add_item buf item;
          Buffer.add_string buf (if j = nitems - 1 then "\n" else ",\n"))
        (Report.items s);
      Buffer.add_string buf "    ]}";
      Buffer.add_string buf (if i = nsec - 1 then "\n" else ",\n"))
    (Report.sections r);
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Generic JSON parser (no external dependency)                        *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected %c, found %c" c.pos ch x
  | None -> parse_error "at %d: expected %c, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "at %d: invalid literal" c.pos

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "at %d: unterminated string" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then
              parse_error "at %d: truncated \\u escape" c.pos;
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> parse_error "at %d: bad \\u escape" c.pos
            in
            (* The writer only escapes control characters this way; decode
               the Latin-1 range and reject the rest. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else parse_error "at %d: unsupported \\u escape" c.pos;
            go ()
        | Some ch -> parse_error "at %d: bad escape \\%c" c.pos ch
        | None -> parse_error "at %d: unterminated escape" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let lexeme = String.sub c.src start (c.pos - start) in
  match float_of_string_opt lexeme with
  | Some x -> Num x
  | None -> parse_error "at %d: bad number %S" start lexeme

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "at %d: unexpected end of input" c.pos
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> parse_error "at %d: expected , or } in object" c.pos
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "at %d: expected , or ] in array" c.pos
        in
        List (elements [])
      end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "at %d: unexpected character %c" c.pos ch

let parse_json s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then
    parse_error "at %d: trailing garbage after document" c.pos;
  v

let json_of_string s =
  match parse_json s with
  | j -> Ok j
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Decoding into the IR                                                *)
(* ------------------------------------------------------------------ *)

let field obj key =
  match obj with
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_string what v =
  match v with Str s -> s | _ -> parse_error "%s: expected string" what

let get_number what v =
  match v with
  | Num x -> x
  | Str "NaN" | Null -> Float.nan
  | Str "Infinity" -> Float.infinity
  | Str "-Infinity" -> Float.neg_infinity
  | _ -> parse_error "%s: expected number" what

let get_list what v =
  match v with List l -> l | _ -> parse_error "%s: expected array" what

let req what obj key =
  match field obj key with
  | Some v -> v
  | None -> parse_error "%s: missing field %S" what key

let opt_string what obj key = Option.map (get_string what) (field obj key)

let get_bool what v =
  match v with Bool b -> b | _ -> parse_error "%s: expected bool" what

let decode_cell v =
  match
    (field v "s", field v "i", field v "f", field v "p", field v "v")
  with
  | Some s, None, None, None, None -> Report.str (get_string "cell.s" s)
  | None, Some n, None, None, None ->
      Report.int (int_of_float (get_number "cell.i" n))
  | None, None, Some n, None, None ->
      let d = int_of_float (get_number "cell.d" (req "cell" v "d")) in
      Report.float ~decimals:d (get_number "cell.f" n)
  | None, None, None, Some n, None ->
      let d = int_of_float (get_number "cell.d" (req "cell" v "d")) in
      Report.pct ~decimals:d (get_number "cell.p" n)
  | None, None, None, None, Some n ->
      let d = int_of_float (get_number "cell.d" (req "cell" v "d")) in
      Report.seconds ~decimals:d (get_number "cell.v" n)
  | _ -> parse_error "cell: expected exactly one of s/i/f/p/v"

let decode_item section v =
  match field v "rule" with
  | Some _ -> parse_error "item: stray rule outside a table"
  | None -> (
      match get_string "item.type" (req "item" v "type") with
      | "note" -> Report.note section (get_string "note.text" (req "note" v "text"))
      | "metric" -> (
          let key = get_string "metric.key" (req "metric" v "key") in
          let value = get_number "metric.value" (req "metric" v "value") in
          let unit = opt_string "metric.unit" v "unit" in
          let volatile =
            match field v "volatile" with
            | Some b -> get_bool "metric.volatile" b
            | None -> false
          in
          match opt_string "metric.display" v "display" with
          | Some display ->
              Report.metricf section ~key ?unit ~volatile value "%s" display
          | None -> Report.metric section ~key ?unit ~volatile value)
      | "series" ->
          let key = get_string "series.key" (req "series" v "key") in
          let x = get_string "series.x" (req "series" v "x") in
          let y = get_string "series.y" (req "series" v "y") in
          let points =
            get_list "series.points" (req "series" v "points")
            |> List.map (fun p ->
                   match get_list "series.point" p with
                   | [ px; py ] ->
                       (get_number "point.x" px, get_number "point.y" py)
                   | _ -> parse_error "series point: expected [x, y]")
            |> Array.of_list
          in
          Report.series section ~key ~x ~y points
      | "table" ->
          let key = get_string "table.key" (req "table" v "key") in
          let columns =
            get_list "table.columns" (req "table" v "columns")
            |> List.map (fun cv ->
                   Report.col
                     ?unit:(opt_string "column.unit" cv "unit")
                     (get_string "column.title" (req "column" cv "title")))
          in
          let tbl = Report.table section ~key ~columns () in
          List.iter
            (fun rv ->
              match field rv "rule" with
              | Some _ -> Report.rule tbl
              | None ->
                  Report.row tbl
                    (List.map decode_cell
                       (get_list "row.cells" (req "row" rv "cells"))))
            (get_list "table.rows" (req "table" v "rows"))
      | other -> parse_error "item: unknown type %S" other)

let decode v =
  let got_schema = get_string "schema" (req "report" v "schema") in
  if got_schema <> schema then
    parse_error "unsupported schema %S (want %S)" got_schema schema;
  let name = get_string "name" (req "report" v "name") in
  let meta =
    match field v "meta" with
    | None -> []
    | Some (Obj fields) ->
        List.map (fun (k, mv) -> (k, get_number "meta" mv)) fields
    | Some _ -> parse_error "meta: expected object"
  in
  let r = Report.create ~meta ~name () in
  List.iter
    (fun sv ->
      let s =
        Report.section r (get_string "section.title" (req "section" sv "title"))
      in
      List.iter (decode_item s) (get_list "section.items" (req "section" sv "items")))
    (get_list "sections" (req "report" v "sections"));
  r

let of_string s =
  match decode (parse_json s) with
  | r -> Ok r
  | exception Parse_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg
