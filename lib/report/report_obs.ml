module Metrics = Broker_obs.Metrics

let kind_label (e : Metrics.entry) =
  let base =
    match e.value with
    | Metrics.Counter _ -> "counter"
    | Metrics.Gauge_max _ -> "gauge.max"
    | Metrics.Histogram _ -> "histogram"
  in
  if e.volatile then base ^ " (volatile)" else base

let scalar_cell (e : Metrics.entry) v =
  (* Deterministic values diff as exact integers; volatile ones reuse the
     Seconds volatility channel (0 decimals keeps the text rendering an
     integer) so Report_diff skips them. *)
  if e.volatile then Report.seconds ~decimals:0 (float_of_int v)
  else Report.int v

let histogram_total buckets = Array.fold_left ( + ) 0 buckets

let report ?(name = "obs_metrics") snap =
  let rep = Report.create ~name () in
  let s = Report.section rep "Observability - metrics snapshot" in
  let t =
    Report.table s ~key:"metrics"
      ~columns:[ Report.col "Metric"; Report.col "Kind"; Report.col "Value" ]
      ()
  in
  List.iter
    (fun (e : Metrics.entry) ->
      let value_cell =
        match e.value with
        | Metrics.Counter v | Metrics.Gauge_max v -> scalar_cell e v
        | Metrics.Histogram buckets -> scalar_cell e (histogram_total buckets)
      in
      Report.row t [ Report.str e.name; Report.str (kind_label e); value_cell ])
    snap;
  (* Non-volatile histograms additionally export their full (log-bucketed)
     shape as a diffable series: x = bucket index, y = observations. *)
  List.iter
    (fun (e : Metrics.entry) ->
      match e.value with
      | Metrics.Histogram buckets when not e.volatile ->
          let points = ref [] in
          Array.iteri
            (fun i c ->
              if c > 0 then
                points := (float_of_int i, float_of_int c) :: !points)
            buckets;
          Report.series s
            ~key:("hist." ^ e.name)
            ~x:"bucket" ~y:"count"
            (Array.of_list (List.rev !points))
      | _ -> ())
    snap;
  Report.note s
    "Counters/gauges above are deterministic for a fixed seed and scale \
     unless marked volatile; volatile entries (wall-clock, GC words, \
     scheduling) are excluded from `report diff`.\n";
  rep

(* --- brokerstat timelines --------------------------------------------- *)

module Ts = Broker_obs.Timeseries
module Sketch = Broker_obs.Sketch

let quantile_points quantile pts =
  let out = ref [] in
  Array.iter
    (fun (p : Ts.point) ->
      match p.Ts.sketch with
      | Some sk when p.Ts.count > 0 ->
          out := (p.Ts.t_start, float_of_int (Sketch.quantile sk quantile)) :: !out
      | _ -> ())
    pts;
  Array.of_list (List.rev !out)

let timeline_report ?(name = "obs_timeline") () =
  let rep = Report.create ~name () in
  let s = Report.section rep "Observability - sim-time timelines" in
  let with_data =
    List.filter (fun ts -> Array.length (Ts.points ts) > 0) (Ts.all ())
  in
  let t =
    Report.table s ~key:"series"
      ~columns:
        [
          Report.col "Series";
          Report.col "Window";
          Report.col "Windows";
          Report.col "Count";
          Report.col "Sum";
        ]
      ()
  in
  List.iter
    (fun ts ->
      let pts = Ts.points ts in
      let count = Array.fold_left (fun a (p : Ts.point) -> a + p.Ts.count) 0 pts in
      let sum = Array.fold_left (fun a (p : Ts.point) -> a + p.Ts.sum) 0 pts in
      Report.row t
        [
          Report.str (Ts.name ts);
          Report.float ~decimals:3 (Ts.width ts);
          Report.int (Array.length pts);
          Report.int count;
          Report.int sum;
        ])
    with_data;
  (* Every series exports its per-window sums; windows that carry a
     sketch additionally export p50/p99 timelines. All values are keyed
     on sim-time — deterministic for a fixed seed/scale, so two runs
     diff clean through `report diff` (wall-clock never enters here;
     the Perfetto C events carry the volatile view). Sketched series
     are in Timeseries fixed-point micro-units of sim-time. *)
  List.iter
    (fun ts ->
      let pts = Ts.points ts in
      Report.series s ~key:("ts." ^ Ts.name ts) ~x:"t" ~y:"sum" (Ts.values ts);
      let p50 = quantile_points 0.5 pts in
      if Array.length p50 > 0 then begin
        Report.series s ~key:("ts." ^ Ts.name ts ^ ".p50") ~x:"t" ~y:"p50" p50;
        Report.series s
          ~key:("ts." ^ Ts.name ts ^ ".p99")
          ~x:"t" ~y:"p99" (quantile_points 0.99 pts)
      end)
    with_data;
  Report.note s
    "Windowed series keyed on deterministic sim-time (brokerstat). \
     Latency sketches are recorded in fixed-point micro-units of \
     sim-time; divide by 1e6 for sim-time units.\n";
  rep

let timeline_to_json () = Report_json.to_string (timeline_report ())
let to_text snap = Report_text.render (report snap)
let to_json snap = Report_json.to_string (report snap)
