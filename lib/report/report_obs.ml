module Metrics = Broker_obs.Metrics

let kind_label (e : Metrics.entry) =
  let base =
    match e.value with
    | Metrics.Counter _ -> "counter"
    | Metrics.Gauge_max _ -> "gauge.max"
    | Metrics.Histogram _ -> "histogram"
  in
  if e.volatile then base ^ " (volatile)" else base

let scalar_cell (e : Metrics.entry) v =
  (* Deterministic values diff as exact integers; volatile ones reuse the
     Seconds volatility channel (0 decimals keeps the text rendering an
     integer) so Report_diff skips them. *)
  if e.volatile then Report.seconds ~decimals:0 (float_of_int v)
  else Report.int v

let histogram_total buckets = Array.fold_left ( + ) 0 buckets

let report ?(name = "obs_metrics") snap =
  let rep = Report.create ~name () in
  let s = Report.section rep "Observability - metrics snapshot" in
  let t =
    Report.table s ~key:"metrics"
      ~columns:[ Report.col "Metric"; Report.col "Kind"; Report.col "Value" ]
      ()
  in
  List.iter
    (fun (e : Metrics.entry) ->
      let value_cell =
        match e.value with
        | Metrics.Counter v | Metrics.Gauge_max v -> scalar_cell e v
        | Metrics.Histogram buckets -> scalar_cell e (histogram_total buckets)
      in
      Report.row t [ Report.str e.name; Report.str (kind_label e); value_cell ])
    snap;
  (* Non-volatile histograms additionally export their full (log-bucketed)
     shape as a diffable series: x = bucket index, y = observations. *)
  List.iter
    (fun (e : Metrics.entry) ->
      match e.value with
      | Metrics.Histogram buckets when not e.volatile ->
          let points = ref [] in
          Array.iteri
            (fun i c ->
              if c > 0 then
                points := (float_of_int i, float_of_int c) :: !points)
            buckets;
          Report.series s
            ~key:("hist." ^ e.name)
            ~x:"bucket" ~y:"count"
            (Array.of_list (List.rev !points))
      | _ -> ())
    snap;
  Report.note s
    "Counters/gauges above are deterministic for a fixed seed and scale \
     unless marked volatile; volatile entries (wall-clock, GC words, \
     scheduling) are excluded from `report diff`.\n";
  rep

let to_text snap = Report_text.render (report snap)
let to_json snap = Report_json.to_string (report snap)
