(** CSV backend for {!Report}: one file per table and per series.

    Values are the raw typed numbers (full [%.12g]/[%.17g] precision, not
    the rounded display text); table rules are dropped; notes and metrics
    have no CSV representation. File names follow
    [<report>.table.<key>.csv] / [<report>.series.<key>.csv] with
    non-alphanumeric key characters mapped to [_]. *)

val files : Report.t -> (string * string) list
(** [(filename, contents)] pairs, in report order. *)
