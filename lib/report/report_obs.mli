(** Bridge from a {!Broker_obs.Metrics} snapshot to the report IR.

    The snapshot becomes a one-section report named ["obs_metrics"]:
    a [Metric | Kind | Value] table (one row per instrument, sorted by
    name), plus one series per deterministic histogram carrying the
    log-bucket shape. Deterministic values are plain integer cells — so
    two runs at the same seed/scale diff clean through
    [brokerctl report diff] and CI can assert counter determinism —
    while volatile values are emitted through the [Report.seconds]
    volatility channel and never gate a diff. *)

val report : ?name:string -> Broker_obs.Metrics.snapshot -> Report.t
(** Build the report ([name] defaults to ["obs_metrics"]). *)

val to_text : Broker_obs.Metrics.snapshot -> string
(** The text summary ([--obs-summary]), rendered through
    [Broker_util.Table] via {!Report_text}. *)

val to_json : Broker_obs.Metrics.snapshot -> string
(** The [brokerset-report/1] JSON artifact ([--metrics FILE]). *)
