(** Bridge from a {!Broker_obs.Metrics} snapshot to the report IR.

    The snapshot becomes a one-section report named ["obs_metrics"]:
    a [Metric | Kind | Value] table (one row per instrument, sorted by
    name), plus one series per deterministic histogram carrying the
    log-bucket shape. Deterministic values are plain integer cells — so
    two runs at the same seed/scale diff clean through
    [brokerctl report diff] and CI can assert counter determinism —
    while volatile values are emitted through the [Report.seconds]
    volatility channel and never gate a diff. *)

val report : ?name:string -> Broker_obs.Metrics.snapshot -> Report.t
(** Build the report ([name] defaults to ["obs_metrics"]). *)

val to_text : Broker_obs.Metrics.snapshot -> string
(** The text summary ([--obs-summary]), rendered through
    [Broker_util.Table] via {!Report_text}. *)

val to_json : Broker_obs.Metrics.snapshot -> string
(** The [brokerset-report/1] JSON artifact ([--metrics FILE]). *)

val timeline_report : ?name:string -> unit -> Report.t
(** Snapshot every registered {!Broker_obs.Timeseries} that holds data
    into a one-section report ([name] defaults to ["obs_timeline"]):
    a [Series | Window | Windows | Count | Sum] table, one
    [ts.<series>] series of per-window [(t, sum)] points each, and
    [ts.<series>.p50]/[.p99] timelines for windows carrying a latency
    sketch (values in {!Broker_obs.Timeseries.fixed_point} micro-units
    of sim-time). Everything is keyed on sim-time, hence deterministic
    and gated by [report diff] — wall-clock stays in the volatile
    trace/metrics channels. *)

val timeline_to_json : unit -> string
(** [timeline_report] as a [brokerset-report/1] JSON artifact
    ([brokerctl simulate --timeline FILE]). *)
