(* Typed report IR: every experiment builds one of these instead of
   printing. Rendering lives in the backend modules (Report_text,
   Report_json, Report_csv); regression comparison in Report_diff. *)

type cell =
  | Int of int
  | Float of { value : float; decimals : int; volatile : bool }
  | Pct of { value : float; decimals : int }
  | Str of string

type column = { title : string; unit_ : string option }

type trow = Row of cell list | Rule

type table = {
  tkey : string;
  columns : column list;
  mutable rev_rows : trow list;
}

type metric = {
  mkey : string;
  value : float;
  munit : string option;
  mvolatile : bool;
  display : string option;
}

type series = {
  skey : string;
  x_label : string;
  y_label : string;
  points : (float * float) array;
}

type item =
  | Table of table
  | Note of string
  | Metric of metric
  | Series of series

type section = { title : string; parent : t; mutable rev_items : item list }

and t = {
  name : string;
  mutable meta : (string * float) list;
  mutable rev_sections : section list;
  used_keys : (string, unit) Hashtbl.t;
}

let create ?(meta = []) ~name () =
  if name = "" then invalid_arg "Report.create: empty name";
  { name; meta; rev_sections = []; used_keys = Hashtbl.create 8 }

let name t = t.name
let meta t = t.meta
let set_meta t meta = t.meta <- meta

let claim_key t kind key =
  if key = "" then invalid_arg (Printf.sprintf "Report: empty %s key" kind);
  let full = kind ^ "." ^ key in
  if Hashtbl.mem t.used_keys full then
    invalid_arg
      (Printf.sprintf "Report %S: duplicate %s key %S" t.name kind key);
  Hashtbl.replace t.used_keys full ()

let section t title =
  let s = { title; parent = t; rev_items = [] } in
  t.rev_sections <- s :: t.rev_sections;
  s

let sections t = List.rev t.rev_sections
let section_title s = s.title
let items s = List.rev s.rev_items

let note s text = s.rev_items <- Note text :: s.rev_items
let notef s fmt = Printf.ksprintf (note s) fmt

let metric s ~key ?unit:munit ?(volatile = false) value =
  claim_key s.parent "metric" key;
  s.rev_items <-
    Metric { mkey = key; value; munit; mvolatile = volatile; display = None }
    :: s.rev_items

let metricf s ~key ?unit:munit ?(volatile = false) value fmt =
  Printf.ksprintf
    (fun display ->
      claim_key s.parent "metric" key;
      s.rev_items <-
        Metric
          { mkey = key; value; munit; mvolatile = volatile;
            display = Some display }
        :: s.rev_items)
    fmt

let series s ~key ?(x = "k") ?(y = "value") points =
  claim_key s.parent "series" key;
  s.rev_items <-
    Series { skey = key; x_label = x; y_label = y; points = Array.copy points }
    :: s.rev_items

let col ?unit:u title = { title; unit_ = u }

let table s ?(key = "main") ~columns () =
  if columns = [] then invalid_arg "Report.table: no columns";
  claim_key s.parent "table" key;
  let tbl = { tkey = key; columns; rev_rows = [] } in
  s.rev_items <- Table tbl :: s.rev_items;
  tbl

let row tbl cells =
  if List.length cells <> List.length tbl.columns then
    invalid_arg
      (Printf.sprintf "Report.row: arity mismatch in table %S" tbl.tkey);
  tbl.rev_rows <- Row cells :: tbl.rev_rows

let rule tbl = tbl.rev_rows <- Rule :: tbl.rev_rows
let rows tbl = List.rev tbl.rev_rows
let table_key tbl = tbl.tkey
let columns tbl = tbl.columns

(* Cell constructors mirror Broker_util.Table.cell_* so the text renderer
   reproduces the historical terminal output byte for byte. *)
let int n = Int n
let float ?(decimals = 2) value = Float { value; decimals; volatile = false }
let pct ?(decimals = 2) value = Pct { value; decimals }
let str s = Str s
let strf fmt = Printf.ksprintf str fmt

let seconds ?(decimals = 3) value =
  Float { value; decimals; volatile = true }

let cell_text = function
  | Int n -> string_of_int n
  | Float { value; decimals; _ } -> Printf.sprintf "%.*f" decimals value
  | Pct { value; decimals } -> Printf.sprintf "%.*f%%" decimals (100.0 *. value)
  | Str s -> s

let cell_value = function
  | Int n -> Some (float_of_int n)
  | Float { value; _ } | Pct { value; _ } -> Some value
  | Str _ -> None

let cell_volatile = function
  | Float { volatile; _ } -> volatile
  | Int _ | Pct _ | Str _ -> false

let cell_decimals = function
  | Float { decimals; _ } | Pct { decimals; _ } -> Some decimals
  | Int _ | Str _ -> None

(* ------------------------------------------------------------------ *)
(* Structural equality (monomorphic: the float fields rule out the
   polymorphic compare, and NaN must equal NaN for round-trip tests).   *)
(* ------------------------------------------------------------------ *)

let float_eq a b = Float.equal a b || (Float.is_nan a && Float.is_nan b)

let opt_eq eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let list_eq eq a b =
  List.length a = List.length b && List.for_all2 eq a b

let cell_eq a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float a, Float b ->
      float_eq a.value b.value && a.decimals = b.decimals
      && Bool.equal a.volatile b.volatile
  | Pct a, Pct b -> float_eq a.value b.value && a.decimals = b.decimals
  | Str x, Str y -> String.equal x y
  | (Int _ | Float _ | Pct _ | Str _), _ -> false

let column_eq (a : column) (b : column) =
  String.equal a.title b.title && opt_eq String.equal a.unit_ b.unit_

let trow_eq a b =
  match (a, b) with
  | Rule, Rule -> true
  | Row x, Row y -> list_eq cell_eq x y
  | (Row _ | Rule), _ -> false

let table_eq a b =
  String.equal a.tkey b.tkey
  && list_eq column_eq a.columns b.columns
  && list_eq trow_eq (rows a) (rows b)

let points_eq a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i (x, y) ->
           let x', y' = b.(i) in
           if not (float_eq x x' && float_eq y y') then ok := false)
         a;
       !ok
     end

let item_eq a b =
  match (a, b) with
  | Note x, Note y -> String.equal x y
  | Metric a, Metric b ->
      String.equal a.mkey b.mkey && float_eq a.value b.value
      && opt_eq String.equal a.munit b.munit
      && Bool.equal a.mvolatile b.mvolatile
      && opt_eq String.equal a.display b.display
  | Series a, Series b ->
      String.equal a.skey b.skey
      && String.equal a.x_label b.x_label
      && String.equal a.y_label b.y_label
      && points_eq a.points b.points
  | Table a, Table b -> table_eq a b
  | (Note _ | Metric _ | Series _ | Table _), _ -> false

let section_eq a b =
  String.equal a.title b.title && list_eq item_eq (items a) (items b)

let meta_eq a b =
  list_eq
    (fun (ka, va) (kb, vb) -> String.equal ka kb && float_eq va vb)
    a b

let equal a b =
  String.equal a.name b.name
  && meta_eq a.meta b.meta
  && list_eq section_eq (sections a) (sections b)
