(* Text backend: renders a report exactly as the pre-IR harness printed it
   (section banners, aligned tables, prose), so the seed determinism
   guarantees carry over byte for byte. This module also owns the one
   redirectable output formatter that used to live in Ctx. *)

module Table = Broker_util.Table

let render_table tbl =
  let t =
    Table.create
      ~headers:(List.map (fun c -> c.Report.title) (Report.columns tbl))
  in
  List.iter
    (function
      | Report.Row cells ->
          Table.add_row t (List.map Report.cell_text cells)
      | Report.Rule -> Table.add_rule t)
    (Report.rows tbl);
  Table.render t

let banner title =
  let bar = String.make 72 '=' in
  Printf.sprintf "\n%s\n%s\n%s\n" bar title bar

let render_section buf s =
  Buffer.add_string buf (banner (Report.section_title s));
  List.iter
    (fun item ->
      match item with
      | Report.Note text -> Buffer.add_string buf text
      | Report.Metric { Report.display = Some d; _ } -> Buffer.add_string buf d
      | Report.Metric { Report.display = None; _ } -> ()
      | Report.Table tbl -> Buffer.add_string buf (render_table tbl)
      | Report.Series _ -> ())
    (Report.items s)

let render r =
  let buf = Buffer.create 1024 in
  List.iter (render_section buf) (Report.sections r);
  Buffer.contents buf

let pp ppf r = Format.pp_print_string ppf (render r)

(* The redirectable output channel: all terminal-facing experiment text
   funnels through here so library code never touches stdout directly
   (brokerlint: no-stdout-in-lib) and harnesses can capture a run. *)
let out_ppf = ref Format.std_formatter
let set_out ppf = out_ppf := ppf
let out () = !out_ppf
let print r = pp !out_ppf r
let flush () = Format.pp_print_flush !out_ppf ()
