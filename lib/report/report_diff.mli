(** Regression comparison between two {!Report.t} values — the engine
    behind [brokerctl report diff] and the CI golden gate.

    Reports flatten to [(stable key, entry)] pairs:
    - [meta.<name>] — run parameters;
    - [metric.<key>] — scalar metrics (volatile ones skipped);
    - [table.<tkey>.r<i>.<colslug>] — each non-volatile cell, with [i] the
      0-based data-row index (rules don't count) and [colslug] the
      lowercased column title (positional suffix on duplicates);
    - [series.<skey>.<i>.x|y] — curve points;
    - [note.s<i>.<j>] — free-text notes (string comparison, so drifting
      numbers embedded in prose are caught too). *)

type entry = Num of float | Text of string

type drift = { key : string; a : string; b : string }

type outcome = {
  drifts : drift list;  (** present in both, values differ *)
  only_a : string list;  (** keys missing from [b] *)
  only_b : string list;  (** keys missing from [a] *)
}

val flatten : Report.t -> (string * entry) list
(** The flat view, in report order. Volatile values are omitted. *)

val compare : ?tols:(string * float) list -> Report.t -> Report.t -> outcome
(** [tols] maps key prefixes to absolute tolerances; the longest matching
    prefix wins, and the empty prefix sets a global default. Unmatched keys
    compare exactly (NaN equals NaN). *)

val ok : outcome -> bool

val pp : Format.formatter -> outcome -> unit
(** Human-readable listing: one line per drift/missing key, then a
    summary line. *)
