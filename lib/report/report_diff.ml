(* Regression comparison between two reports. Reports are flattened into
   (stable key, entry) pairs; numeric entries compare within a per-key
   tolerance (longest-prefix match over the --tol arguments), text entries
   compare exactly, volatile values (wall-clock timings) are skipped. *)

type entry = Num of float | Text of string

type drift = { key : string; a : string; b : string }

type outcome = {
  drifts : drift list;
  only_a : string list;
  only_b : string list;
}

let slug s =
  String.lowercase_ascii
    (String.map
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
         | _ -> '_')
       s)

let column_slugs columns =
  (* Disambiguate duplicate column titles with a positional suffix so every
     cell key stays unique and stable. *)
  let slugs = List.map (fun (c : Report.column) -> slug c.Report.title) columns in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace counts s
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    slugs;
  let seen = Hashtbl.create 8 in
  List.map
    (fun s ->
      if Hashtbl.find counts s = 1 then s
      else begin
        let n = Option.value ~default:0 (Hashtbl.find_opt seen s) in
        Hashtbl.replace seen s (n + 1);
        Printf.sprintf "%s%d" s n
      end)
    slugs

let flatten r =
  let acc = ref [] in
  let push key entry = acc := (key, entry) :: !acc in
  List.iter (fun (k, v) -> push (Printf.sprintf "meta.%s" k) (Num v)) (Report.meta r);
  List.iteri
    (fun si s ->
      let note_idx = ref 0 in
      List.iter
        (fun item ->
          match item with
          | Report.Note text ->
              push (Printf.sprintf "note.s%d.%d" si !note_idx) (Text text);
              incr note_idx
          | Report.Metric m ->
              if not m.Report.mvolatile then
                push (Printf.sprintf "metric.%s" m.Report.mkey) (Num m.Report.value)
          | Report.Series sr ->
              Array.iteri
                (fun i (x, y) ->
                  push (Printf.sprintf "series.%s.%d.x" sr.Report.skey i) (Num x);
                  push (Printf.sprintf "series.%s.%d.y" sr.Report.skey i) (Num y))
                sr.Report.points
          | Report.Table tbl ->
              let tkey = Report.table_key tbl in
              let slugs = column_slugs (Report.columns tbl) in
              let ri = ref 0 in
              List.iter
                (fun trow ->
                  match trow with
                  | Report.Rule -> ()
                  | Report.Row cells ->
                      List.iter2
                        (fun cslug cell ->
                          if not (Report.cell_volatile cell) then begin
                            let key =
                              Printf.sprintf "table.%s.r%d.%s" tkey !ri cslug
                            in
                            match Report.cell_value cell with
                            | Some v -> push key (Num v)
                            | None -> push key (Text (Report.cell_text cell))
                          end)
                        slugs cells;
                      incr ri)
                (Report.rows tbl))
        (Report.items s))
    (Report.sections r);
  List.rev !acc

(* Longest-prefix tolerance lookup; the empty prefix acts as a global
   default. Returns 0.0 (exact comparison) when nothing matches. *)
let tolerance_for tols key =
  let best = ref None in
  List.iter
    (fun (prefix, eps) ->
      let plen = String.length prefix in
      let matches =
        plen <= String.length key && String.sub key 0 plen = prefix
      in
      if matches then
        match !best with
        | Some (blen, _) when blen >= plen -> ()
        | Some _ | None -> best := Some (plen, eps))
    tols;
  match !best with Some (_, eps) -> eps | None -> 0.0

let num_repr x =
  if Float.is_finite x then begin
    let s = Printf.sprintf "%.12g" x in
    if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x
  end
  else if Float.is_nan x then "nan"
  else if x > 0.0 then "inf"
  else "-inf"

let entry_repr = function Num x -> num_repr x | Text s -> Printf.sprintf "%S" s

let entries_match ~eps a b =
  match (a, b) with
  | Num x, Num y ->
      (Float.is_nan x && Float.is_nan y)
      || Float.equal x y
      || Float.abs (x -. y) <= eps
  | Text x, Text y -> String.equal x y
  | Num _, Text _ | Text _, Num _ -> false

let compare ?(tols = []) a b =
  let fa = flatten a and fb = flatten b in
  let tb = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) fb;
  let ta = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace ta k v) fa;
  let drifts = ref [] and only_a = ref [] in
  List.iter
    (fun (key, va) ->
      match Hashtbl.find_opt tb key with
      | None -> only_a := key :: !only_a
      | Some vb ->
          let eps = tolerance_for tols key in
          if not (entries_match ~eps va vb) then
            drifts :=
              { key; a = entry_repr va; b = entry_repr vb } :: !drifts)
    fa;
  let only_b =
    List.filter_map
      (fun (k, _) -> if Hashtbl.mem ta k then None else Some k)
      fb
  in
  { drifts = List.rev !drifts; only_a = List.rev !only_a; only_b }

let ok o = o.drifts = [] && o.only_a = [] && o.only_b = []

let pp ppf o =
  List.iter
    (fun d ->
      Format.fprintf ppf "drift  %s: %s -> %s@." d.key d.a d.b)
    o.drifts;
  List.iter (fun k -> Format.fprintf ppf "only-a %s@." k) o.only_a;
  List.iter (fun k -> Format.fprintf ppf "only-b %s@." k) o.only_b;
  if ok o then Format.fprintf ppf "reports match@."
  else
    Format.fprintf ppf "%d drift(s), %d missing in b, %d missing in a@."
      (List.length o.drifts) (List.length o.only_a) (List.length o.only_b)
