(** Typed report IR for the experiment harness.

    Every experiment builds and returns a {!t} — named sections holding
    tables with typed columns, scalar metrics with stable dotted keys,
    [(k, value)] series, and free-text notes — instead of printing.
    Rendering is a separate backend concern: {!Report_text} reproduces the
    historical terminal output byte for byte, {!Report_json} emits the
    schema-versioned machine artifact ([brokerset-report/1]), and
    {!Report_csv} one file per table/series. {!Report_diff} compares two
    reports numerically and powers the CI regression gate.

    Invariants:
    - metric/series/table keys are dotted, stable across runs, and unique
      within a report (enforced: duplicate keys raise [Invalid_argument]);
    - cells carry both the typed value and the formatting contract
      (decimals), so text rendering is reproducible;
    - values measured off the wall clock (timings) are flagged [volatile]:
      rendered in text, excluded from {!Report_diff} comparison. *)

type t
type section
type table

type cell
(** A typed table cell. *)

type column = { title : string; unit_ : string option }

type trow = Row of cell list | Rule

type metric = {
  mkey : string;
  value : float;
  munit : string option;
  mvolatile : bool;
  display : string option;
      (** Exact text line(s) the text renderer emits; [None] = silent
          (machine-only) metric. *)
}

type series = {
  skey : string;
  x_label : string;
  y_label : string;
  points : (float * float) array;
}

type item =
  | Table of table
  | Note of string  (** free text, rendered verbatim *)
  | Metric of metric
  | Series of series  (** machine-only: not rendered as text *)

(** {1 Building} *)

val create : ?meta:(string * float) list -> name:string -> unit -> t
(** A fresh empty report. [name] keys the artifact files and must match the
    registry id. @raise Invalid_argument on an empty name. *)

val name : t -> string
val meta : t -> (string * float) list
val set_meta : t -> (string * float) list -> unit
(** Run parameters (scale/sources/seed), attached by the registry runner. *)

val section : t -> string -> section
(** Append a section (its banner in text output) and return it. *)

val note : section -> string -> unit
val notef : section -> ('a, unit, string, unit) format4 -> 'a
(** Append free text, [Printf]-style. The string is rendered verbatim —
    include the trailing newline, exactly as the old [Ctx.printf] calls. *)

val metric :
  section -> key:string -> ?unit:string -> ?volatile:bool -> float -> unit
(** A silent (machine-only) scalar with a stable dotted key. *)

val metricf :
  section ->
  key:string ->
  ?unit:string ->
  ?volatile:bool ->
  float ->
  ('a, unit, string, unit) format4 ->
  'a
(** A scalar plus its exact text rendering (replaces a [Ctx.printf] line
    that carried one headline number). *)

val series :
  section -> key:string -> ?x:string -> ?y:string -> (float * float) array -> unit
(** A [(k, value)] curve. [x]/[y] label the CSV columns (defaults ["k"],
    ["value"]). The points array is copied. *)

val col : ?unit:string -> string -> column

val table : section -> ?key:string -> columns:column list -> unit -> table
(** Append a table ([key] defaults to ["main"]; must be unique within the
    report). *)

val row : table -> cell list -> unit
(** @raise Invalid_argument when the arity differs from the columns. *)

val rule : table -> unit
(** Horizontal separator at this position. *)

(** {1 Cells}

    Constructors mirror [Broker_util.Table.cell_*] so text rendering is
    byte-identical to the historical output. *)

val int : int -> cell
val float : ?decimals:int -> float -> cell
(** Rendered ["%.*f"], [decimals] defaults to 2. *)

val pct : ?decimals:int -> float -> cell
(** A fraction, rendered ["%.*f%%"] of [100 x]; the typed value stays the
    fraction. [decimals] defaults to 2. *)

val str : string -> cell
val strf : ('a, unit, string, cell) format4 -> 'a

val seconds : ?decimals:int -> float -> cell
(** A wall-clock measurement: rendered like {!float} ([decimals] defaults
    to 3) but flagged volatile, so {!Report_diff} ignores it. *)

(** {1 Reading (for renderers)} *)

val sections : t -> section list
val section_title : section -> string
val items : section -> item list
val rows : table -> trow list
val table_key : table -> string
val columns : table -> column list
val cell_text : cell -> string
(** The exact string the text renderer prints for a cell. *)

val cell_value : cell -> float option
(** The typed numeric value ([Pct] yields the fraction), [None] for
    strings. *)

val cell_volatile : cell -> bool
val cell_decimals : cell -> int option

val equal : t -> t -> bool
(** Structural equality; NaN equals NaN (round-trip tests). *)
