module Report = Broker_report.Report
module X = Broker_util.Xrandom
module Sim = Broker_sim.Simulator
module Faults = Broker_sim.Faults

type row = {
  k : int;
  keep : float;
  availability : float;
  delivered_on : float;
  delivered_off : float;
  failed_over : int;
  dropped_off : int;
}

let keeps = [ 0.0; 0.25; 0.5; 1.0 ]

(* Availability from the downtime integral against the *generation* horizon,
   which is identical across the failover on/off runs (every crash carries a
   matched recover clamped to that horizon, so the run's own end-of-horizon
   clipping never fires). Monotonicity in [keep] is then structural: thinned
   outage sets are nested, so the downtime union can only grow. *)
let availability_of ~k ~horizon downtime =
  if k = 0 || horizon <= 0.0 then 1.0
  else 1.0 -. (downtime /. (float_of_int k *. horizon))

let compute ?(n_sessions = 4000) ctx =
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params =
    { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx }
  in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let model = Broker_core.Traffic.gravity ~rng:(Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions
      Broker_sim.Workload.default_params
  in
  (* Slack past the last arrival so outages also hit in-flight tails. *)
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Broker_sim.Workload.arrival)
    +. 20.0
  in
  let config = Sim.degree_capacity g ~factor:0.25 in
  List.concat_map
    (fun k0 ->
      let k =
        min (Array.length order)
          (max 4 (int_of_float (float_of_int k0 *. sim_scale)))
      in
      let brokers = Array.sub order 0 k in
      let fault_seed = Ctx.seed ctx + (7 * k0) in
      (* One max-rate base stream per alliance size; each sweep point keeps
         a nested subset of its crash/recover pairs (identically seeded thin
         rng), so availability degrades monotonically in [keep] sample-wise,
         not just in expectation. *)
      let base =
        Faults.generate ~rng:(X.create fault_seed) topo ~brokers ~horizon
          (Faults.Independent { mtbf = horizon /. 8.0; mttr = 20.0 })
      in
      List.map
        (fun keep ->
          let faults =
            Faults.thin ~rng:(X.create (fault_seed lxor 0x7a05)) ~keep base
          in
          let chaos_on = Sim.default_chaos faults in
          let chaos_off = { chaos_on with Sim.failover = false } in
          let on = Sim.run ~chaos:chaos_on topo ~brokers ~sessions config in
          let off = Sim.run ~chaos:chaos_off topo ~brokers ~sessions config in
          {
            k;
            keep;
            availability = availability_of ~k ~horizon on.Sim.broker_downtime;
            delivered_on = Sim.delivered_rate on;
            delivered_off = Sim.delivered_rate off;
            failed_over = on.Sim.failed_over;
            dropped_off = off.Sim.dropped_midflight;
          })
        keeps)
    [ 100; 1000; 3540 ]

let report ctx =
  let rep = Report.create ~name:"ext_chaos" () in
  let s =
    Report.section rep "Extension - chaos brokerage: failures, failover, availability"
  in
  let rows = compute ctx in
  let t =
    Report.table s ~key:"sweep"
      ~columns:
        [
          Report.col "k";
          Report.col "Fault rate";
          Report.col "Availability";
          Report.col "Delivered (failover)";
          Report.col "Delivered (no failover)";
          Report.col "Failed over";
          Report.col "Dropped (no fo)";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.int r.k;
          Report.strf "%.2fx" r.keep;
          Report.pct r.availability;
          Report.pct r.delivered_on;
          Report.pct r.delivered_off;
          Report.int r.failed_over;
          Report.int r.dropped_off;
        ])
    rows;
  Report.note s
    "Fault rate is the kept fraction of a max-rate per-broker failure\nprocess (MTBF = horizon/8, MTTR = 20). Failover reroutes in-flight\nsessions of a crashed broker onto alternate dominated paths.\n";
  (* Circuit-breaker ablation under deliberate overload: tight uniform
     capacity so the hub brokers sit above the high-water mark. *)
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params =
    { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx }
  in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let k =
    min (Array.length order) (max 4 (int_of_float (1000.0 *. sim_scale)))
  in
  let brokers = Array.sub order 0 k in
  let model = Broker_core.Traffic.gravity ~rng:(Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions:3000
      Broker_sim.Workload.default_params
  in
  let config = Sim.uniform_capacity 12.0 in
  let bt =
    Report.table s ~key:"breaker"
      ~columns:
        [
          Report.col "Breaker";
          Report.col "Admitted";
          Report.col "Shed";
          Report.col "No capacity";
          Report.col "Mean util";
          Report.col "Net revenue";
        ]
      ()
  in
  List.iter
    (fun (label, breaker) ->
      let chaos =
        { (Sim.default_chaos [||]) with Sim.retry = Sim.no_retry; breaker }
      in
      let sr = Sim.run ~chaos topo ~brokers ~sessions config in
      Report.row bt
        [
          Report.str label;
          Report.pct sr.Sim.admission_rate;
          Report.int sr.Sim.rejected_shed;
          Report.int sr.Sim.rejected_capacity;
          Report.pct sr.Sim.mean_broker_utilization;
          Report.float ~decimals:0 sr.Sim.revenue;
        ])
    [
      ("off", None);
      ( "on",
        Some { Sim.high_water = 0.7; trip_after = 2.0; cooldown = 10.0 } );
    ];
  Report.note s
    "Breaker: a broker whose utilization stays >= 70% for 2 time units\nsheds arrivals for 10 units, trading admitted sessions for headroom\non the saturated hubs.\n";
  rep
