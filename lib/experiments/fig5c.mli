(** Fig. 5c: connectivity under pure business-relationship (valley-free)
    routing across broker-set sizes — sharply below the bidirectional
    assumption, motivating the Fig. 5b upgrades. *)

type row = { k : int; directional : float; bidirectional : float }

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
