(** Table 3: l-hop E2E connectivity of comparison topologies — ER-Random,
    WS-Small-World, BA-Scale-free (same node/edge budget) and the AS
    topology with and without IXPs. Free path selection (no broker
    restriction). The paper's headline cell: ASes-with-IXPs reaches 99.21%
    at l = 4. *)

type row = { name : string; curve : Broker_core.Connectivity.curve }

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
