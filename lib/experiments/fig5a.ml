module Report = Broker_report.Report

let report ctx =
  let rep = Report.create ~name:"fig5a" () in
  let s =
    Report.section rep "Fig 5a - alliance composition and broker-only traffic share"
  in
  let topo = Ctx.topo ctx in
  let brokers = Ctx.maxsg_order ctx in
  let shares = Broker_core.Composition.shares topo ~brokers in
  let t =
    Report.table s
      ~columns:[ Report.col "Kind"; Report.col "Brokers"; Report.col "Share" ]
      ()
  in
  List.iter
    (fun (sh : Broker_core.Composition.share) ->
      Report.row t
        [
          Report.str
            (Broker_topo.Node_meta.kind_to_string sh.Broker_core.Composition.kind);
          Report.int sh.Broker_core.Composition.count;
          Report.pct sh.Broker_core.Composition.fraction;
        ])
    shares;
  let quick_sources = min 48 (Ctx.sources ctx) in
  let bo =
    Broker_core.Dominating.broker_only_fraction ~rng:(Ctx.rng ctx)
      ~sources:quick_sources (Ctx.graph ctx) ~brokers
  in
  Report.metric s ~key:"broker_only_pairs"
    bo.Broker_core.Dominating.broker_only_pairs;
  Report.metricf s ~key:"broker_only_ratio" bo.Broker_core.Dominating.ratio
    "E2E connections served by the broker mesh alone: %.1f%% of all pairs = %.1f%% of served pairs (paper: >90%%).\n"
    (100.0 *. bo.Broker_core.Dominating.broker_only_pairs)
    (100.0 *. bo.Broker_core.Dominating.ratio);
  rep
