module Table = Broker_util.Table

let run ctx =
  Ctx.section "Fig 5a - alliance composition and broker-only traffic share";
  let topo = Ctx.topo ctx in
  let brokers = Ctx.maxsg_order ctx in
  let shares = Broker_core.Composition.shares topo ~brokers in
  let t = Table.create ~headers:[ "Kind"; "Brokers"; "Share" ] in
  List.iter
    (fun (s : Broker_core.Composition.share) ->
      Table.add_row t
        [
          Broker_topo.Node_meta.kind_to_string s.Broker_core.Composition.kind;
          Table.cell_int s.Broker_core.Composition.count;
          Table.cell_pct s.Broker_core.Composition.fraction;
        ])
    shares;
  Ctx.table t;
  let quick_sources = min 48 (Ctx.sources ctx) in
  let bo =
    Broker_core.Dominating.broker_only_fraction ~rng:(Ctx.rng ctx)
      ~sources:quick_sources (Ctx.graph ctx) ~brokers
  in
  Ctx.printf
    "E2E connections served by the broker mesh alone: %.1f%% of all pairs = %.1f%% of served pairs (paper: >90%%).\n"
    (100.0 *. bo.Broker_core.Dominating.broker_only_pairs)
    (100.0 *. bo.Broker_core.Dominating.ratio)
