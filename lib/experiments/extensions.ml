module Report = Broker_report.Report
module Conn = Broker_core.Connectivity
module G = Broker_graph.Graph

let resilience ctx =
  let rep = Report.create ~name:"ext_resilience" () in
  let s =
    Report.section rep "Extension - broker failure resilience (random vs targeted)"
  in
  let g = Ctx.graph ctx in
  let order = Ctx.maxsg_order ctx in
  let k = min (Ctx.scale_count ctx 1000) (Array.length order) in
  let brokers = Array.sub order 0 k in
  let fractions = [ 0.0; 0.05; 0.1; 0.2; 0.4 ] in
  let sources = min 96 (Ctx.sources ctx) in
  let run model =
    (* Same seed for both models: identical source samples (and the 0% rows
       coincide), so the two columns are directly comparable. *)
    Broker_core.Resilience.degradation
      ~rng:(Broker_util.Xrandom.create (Ctx.seed ctx + 31))
      ~sources g ~brokers ~model ~fractions
  in
  let random = run Broker_core.Resilience.Random in
  let targeted = run Broker_core.Resilience.Targeted in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Failed %";
          Report.col "Random failures";
          Report.col "Targeted failures";
        ]
      ()
  in
  List.iter2
    (fun (r : Broker_core.Resilience.point) (tg : Broker_core.Resilience.point) ->
      Report.row t
        [
          Report.pct ~decimals:0 r.Broker_core.Resilience.failed_fraction;
          Report.pct r.Broker_core.Resilience.connectivity;
          Report.pct tg.Broker_core.Resilience.connectivity;
        ])
    random targeted;
  Report.note s
    "Targeted loss of the hub brokers is far more damaging than random outages - the\ncontrol plane should replicate its highest-degree members first.\n";
  rep

let traffic ctx =
  let rep = Report.create ~name:"ext_traffic" () in
  let s =
    Report.section rep "Extension - traffic-weighted (gravity model) connectivity"
  in
  let g = Ctx.graph ctx in
  let n = G.n g in
  let order = Ctx.maxsg_order ctx in
  let model = Broker_core.Traffic.gravity ~rng:(Ctx.rng ctx) g in
  let sources = min 128 (Ctx.sources ctx) in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Brokers";
          Report.col "Pairs served";
          Report.col "Traffic served";
        ]
      ()
  in
  List.iter
    (fun paper_k ->
      let k = min (Ctx.scale_count ctx paper_k) (Array.length order) in
      let brokers = Array.sub order 0 k in
      let is_broker = Conn.of_brokers ~n brokers in
      let pairs = Ctx.saturated ctx ~brokers in
      let traffic =
        Broker_core.Traffic.weighted_saturated ~rng:(Ctx.rng ctx) ~sources g
          model ~is_broker
      in
      Report.row t
        [ Report.int k; Report.pct pairs; Report.pct traffic ])
    [ 100; 300; 1000 ];
  Report.note s
    "High-demand (high-degree) endpoints are covered first, so the broker set serves\nan even larger share of bytes than of connections.\n";
  rep

let betweenness ctx =
  let rep = Report.create ~name:"ext_betweenness" () in
  let s =
    Report.section rep "Extension - betweenness-based selection vs DB/PRB/MaxSG"
  in
  let g = Ctx.graph ctx in
  let k = Ctx.scale_count ctx 1000 in
  let order = Ctx.maxsg_order ctx in
  let bb =
    Broker_graph.Betweenness.top ~samples:128 ~rng:(Ctx.rng ctx) g ~k
  in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Selection";
          Report.col "k";
          Report.col "Saturated connectivity";
        ]
      ()
  in
  let row name brokers =
    Report.row t
      [
        Report.str name;
        Report.int (Array.length brokers);
        Report.pct (Ctx.saturated ctx ~brokers);
      ]
  in
  row "BB (betweenness)" bb;
  row "DB (degree)" (Broker_core.Baselines.db g ~k);
  row "PRB (PageRank)" (Broker_core.Baselines.prb g ~k);
  row "MaxSG" (Array.sub order 0 (min k (Array.length order)));
  Report.note s
    "Betweenness behaves like the other centralities: it crowds the core and hits the\nsame marginal effect; coverage-aware greedy keeps winning.\n";
  rep

let bounded ctx =
  let rep = Report.create ~name:"ext_bounded" () in
  let s =
    Report.section rep "Extension - radius-bounded selection (Problem 4, constructive)"
  in
  let g = Ctx.graph ctx in
  let order = Ctx.maxsg_order ctx in
  let k = min (Ctx.scale_count ctx 1000) (Array.length order) in
  let maxsg = Array.sub order 0 k in
  let bounded2 = Broker_core.Bounded_coverage.run g ~k ~radius:2 in
  let free = Ctx.free_curve ctx in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Selection";
          Report.col "k";
          Report.col "l=3";
          Report.col "l=4";
          Report.col "l=5";
          Report.col "saturated";
          Report.col "max dev vs free";
        ]
      ()
  in
  let row name brokers =
    let c = Ctx.curve ctx brokers in
    let dev, _ = Broker_core.Path_constraint.max_deviation c ~target:free in
    Report.row t
      (Report.str name :: Report.int (Array.length brokers)
       :: List.map (fun l -> Report.pct (Conn.value_at c l)) [ 3; 4; 5 ]
      @ [ Report.pct c.Conn.saturated; Report.pct dev ])
  in
  row "MaxSG (radius 1)" maxsg;
  row "Bounded (radius 2)" bounded2;
  Report.note s
    "Radius-2 selection trades a little saturated coverage for wider geographic spread;\nEq.(4) feasibility (deviation vs the free distribution) is reported per row.\n";
  rep

let churn ctx =
  let rep = Report.create ~name:"ext_churn" () in
  let s =
    Report.section rep "Extension - topology growth and broker-set maintenance"
  in
  let topo = Ctx.topo ctx in
  let g = Ctx.graph ctx in
  let n0 = G.n g in
  let order = Ctx.maxsg_order ctx in
  let k = min (Ctx.scale_count ctx 1000) (Array.length order) in
  let brokers = Array.sub order 0 k in
  let growth = max 50 (n0 / 10) in
  let grown = Broker_topo.Churn.grow ~rng:(Ctx.rng ctx) topo ~new_ases:growth in
  let g' = grown.Broker_topo.Topology.graph in
  let n' = G.n g' in
  let rng = Ctx.rng ctx in
  let source_set =
    Broker_util.Sampling.without_replacement rng ~n:n' ~k:(min (Ctx.sources ctx) n')
  in
  let sat brokers =
    (Conn.sampled ~l_max:1 ~source_set ~rng ~sources:(Array.length source_set) g'
       ~is_broker:(Conn.of_brokers ~n:n' brokers))
      .Conn.saturated
  in
  let frozen = sat brokers in
  (* Incremental repair: keep the frozen set, let constrained greedy top it
     up by 5%. *)
  let cov = Broker_core.Coverage.create g' in
  Array.iter (Broker_core.Coverage.add cov) brokers;
  Broker_core.Maxsg.grow cov ~k:(k + max 1 (k / 20));
  let repaired = Broker_core.Coverage.brokers cov in
  let repaired_sat = sat repaired in
  (* Reselection from scratch at the same repaired budget. *)
  let rescratch = Broker_core.Maxsg.run g' ~k:(Array.length repaired) in
  let rescratch_sat = sat rescratch in
  let t =
    Report.table s
      ~columns:
        [ Report.col "Strategy"; Report.col "Brokers"; Report.col "Connectivity" ]
      ()
  in
  Report.row t
    [
      Report.strf "Frozen set (+%d new ASes)" growth;
      Report.int k;
      Report.pct frozen;
    ];
  Report.row t
    [
      Report.str "Incremental top-up (+5% brokers)";
      Report.int (Array.length repaired);
      Report.pct repaired_sat;
    ];
  Report.row t
    [
      Report.str "Reselect from scratch";
      Report.int (Array.length rescratch);
      Report.pct rescratch_sat;
    ];
  let stable =
    let old = Hashtbl.create k in
    Array.iter (fun b -> Hashtbl.replace old b ()) brokers;
    Array.fold_left (fun acc b -> if Hashtbl.mem old b then acc + 1 else acc) 0 rescratch
  in
  Report.metricf s ~key:"stable_brokers" (float_of_int stable)
    "Reselection keeps %d of the %d original brokers; the cheap incremental top-up\nrecovers nearly all of the reselection connectivity without renegotiating contracts.\n"
    stable k;
  rep

let exact_ratio ctx =
  let rep = Report.create ~name:"ablation_exact" () in
  let s =
    Report.section rep
      "Ablation - empirical approximation ratios vs brute-force optimum"
  in
  let rng = Ctx.rng ctx in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Instance";
          Report.col "k";
          Report.col "OPT f(B)";
          Report.col "Greedy";
          Report.col "MaxSG";
          Report.col "MCBG";
          Report.col "Worst-case bound";
        ]
      ()
  in
  let worst_g = ref 1.0 and worst_m = ref 1.0 and worst_b = ref 1.0 in
  for i = 1 to 10 do
    let n = 12 + Broker_util.Xrandom.int rng 8 in
    let m = n + Broker_util.Xrandom.int rng (2 * n) in
    let g =
      let edges =
        Array.init m (fun _ ->
            (Broker_util.Xrandom.int rng n, Broker_util.Xrandom.int rng n))
      in
      let chain = Array.init (n - 1) (fun j -> (j, j + 1)) in
      G.of_edges ~n (Array.append edges chain)
    in
    let k = 2 + Broker_util.Xrandom.int rng 2 in
    let _, opt = Broker_core.Exact.mcb_opt g ~k in
    let f brokers =
      let cov = Broker_core.Coverage.create g in
      Array.iter (Broker_core.Coverage.add cov) brokers;
      Broker_core.Coverage.f cov
    in
    let greedy = f (Broker_core.Greedy_mcb.celf g ~k) in
    let maxsg = f (Broker_core.Maxsg.run g ~k) in
    let mcbg = f (Broker_core.Mcbg.run g ~k ~beta:4).Broker_core.Mcbg.brokers in
    let ratio x = float_of_int x /. float_of_int (max opt 1) in
    worst_g := Float.min !worst_g (ratio greedy);
    worst_m := Float.min !worst_m (ratio maxsg);
    worst_b := Float.min !worst_b (ratio mcbg);
    Report.row t
      [
        Report.strf "random #%d (n=%d)" i n;
        Report.int k;
        Report.int opt;
        Report.int greedy;
        Report.int maxsg;
        Report.int mcbg;
        Report.str "";
      ]
  done;
  Report.metric s ~key:"worst_ratio.maxsg" !worst_m;
  Report.metric s ~key:"worst_ratio.mcbg" !worst_b;
  Report.metricf s ~key:"worst_ratio.greedy" !worst_g
    "Worst empirical ratios: greedy %.3f (bound %.3f), MaxSG %.3f, MCBG %.3f (bound %.3f for beta=4).\n"
    !worst_g
    (1.0 -. exp (-1.0))
    !worst_m !worst_b
    ((1.0 -. exp (-1.0)) /. 4.0);
  assert (!worst_g >= 1.0 -. exp (-1.0) -. 1e-9);
  rep

let regions ctx =
  let rep = Report.create ~name:"ext_regions" () in
  let s =
    Report.section rep "Extension - region-aware selection and coverage fairness"
  in
  let g = Ctx.graph ctx in
  let n_regions = 8 in
  let regions = Broker_core.Regions.partition g ~k:n_regions in
  let sizes = Broker_core.Regions.region_sizes regions ~k:n_regions in
  Report.notef s "BFS-derived regions (farthest-point seeds): sizes %s\n"
    (String.concat ", " (Array.to_list (Array.map string_of_int sizes)));
  let k = Ctx.scale_count ctx 1000 in
  let order = Ctx.maxsg_order ctx in
  let plain = Array.sub order 0 (min k (Array.length order)) in
  let seeded = Broker_core.Regions.seeded_selection g ~regions ~k in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Selection";
          Report.col "k";
          Report.col "Coverage";
          Report.col "Worst region";
          Report.col "Best region";
          Report.col "Jain fairness";
        ]
      ()
  in
  let row name brokers =
    let f = Broker_core.Regions.coverage_fairness g ~regions ~n_regions ~brokers in
    let cov = Broker_core.Coverage.create g in
    Array.iter (Broker_core.Coverage.add cov) brokers;
    Report.row t
      [
        Report.str name;
        Report.int (Array.length brokers);
        Report.pct (Broker_core.Coverage.coverage_fraction cov);
        Report.pct f.Broker_core.Regions.min_region;
        Report.pct f.Broker_core.Regions.max_region;
        Report.float ~decimals:4 f.Broker_core.Regions.jain;
      ]
  in
  row "MaxSG (global)" plain;
  row "Region-seeded MaxSG" seeded;
  Report.note s
    "Seeding every region before the global greedy closes the worst-region coverage gap\nat negligible total-coverage cost.\n";
  rep
