(** Reproduction extensions beyond the paper's own figures (DESIGN.md:
    optional/extension features). Each is a full experiment with the same
    deterministic-context discipline as the table/figure reproductions. *)

val resilience : Ctx.t -> Broker_report.Report.t
(** Broker-failure degradation: random vs targeted failures of the MaxSG
    alliance at several failure fractions. *)

val traffic : Ctx.t -> Broker_report.Report.t
(** Gravity-model traffic-weighted connectivity vs the unweighted pair
    count, across broker budgets. *)

val betweenness : Ctx.t -> Broker_report.Report.t
(** Betweenness-Based selection vs DB/PRB/MaxSG at the ~1,000-broker
    budget: does path centrality escape the marginal effect? *)

val bounded : Ctx.t -> Broker_report.Report.t
(** Radius-bounded selection (Problem 4's constructive side): l-hop curves
    of MaxSG vs Bounded_coverage at the same budget. *)

val churn : Ctx.t -> Broker_report.Report.t
(** Topology growth: coverage decay of a frozen broker set and the cost of
    incremental repair vs reselection. *)

val exact_ratio : Ctx.t -> Broker_report.Report.t
(** Empirical approximation ratios of Algorithms 1-3 against brute-force
    optima on tiny graphs (Lemma 4 / Theorem 3 sanity). *)

val regions : Ctx.t -> Broker_report.Report.t
(** Region-aware selection: BFS-derived regions; coverage fairness (Jain
    index, worst region) of plain MaxSG vs region-seeded selection. *)
