(** Fig. 4: where the brokers sit — DB packs the network core and leaves
    the edge uncovered; MaxSG spreads over core and outer ring. Quantified
    here by the coreness distribution of each selected set. *)

type row = {
  name : string;
  mean_coreness : float;
  median_coreness : float;
  deep_core_share : float;  (** fraction with coreness in the top quartile *)
  edge_share : float;  (** fraction with coreness <= 2 *)
  covered_fraction : float;  (** f(B)/|V| — how much of the network is touched *)
}

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
