module Report = Broker_report.Report
module Conn = Broker_core.Connectivity

type result = {
  alliance_size : int;
  alliance : Conn.curve;
  free : Conn.curve;
  max_inflation : float;
}

let compute ctx =
  let brokers = Ctx.maxsg_order ctx in
  let alliance = Ctx.curve ctx brokers in
  let free = Ctx.free_curve ctx in
  let max_inflation = ref 0.0 in
  for l = 1 to min alliance.Conn.l_max free.Conn.l_max do
    let d = Conn.value_at free l -. Conn.value_at alliance l in
    if d > !max_inflation then max_inflation := d
  done;
  {
    alliance_size = Array.length brokers;
    alliance;
    free;
    max_inflation = !max_inflation;
  }

let report ctx =
  let rep = Report.create ~name:"table4" () in
  let s =
    Report.section rep "Table 4 - path inflation: full alliance vs free path selection"
  in
  let r = compute ctx in
  let columns =
    Report.col "Routing"
    :: List.map (fun l -> Report.col (Printf.sprintf "l=%d" l)) [ 2; 3; 4; 5; 6 ]
    @ [ Report.col "saturated" ]
  in
  let t = Report.table s ~columns () in
  let row name curve =
    Report.row t
      (Report.str name
       :: List.map (fun l -> Report.pct (Conn.value_at curve l)) [ 2; 3; 4; 5; 6 ]
      @ [ Report.pct curve.Conn.saturated ])
  in
  row (Printf.sprintf "%d-alliance" r.alliance_size) r.alliance;
  row "ASesWithIXPs (free)" r.free;
  Report.metricf s ~key:"max_inflation" r.max_inflation
    "Max inflation (free - alliance) over hop counts: %.2f%% (paper: curves almost overlap).\n"
    (100.0 *. r.max_inflation);
  rep
