module Table = Broker_util.Table
module Conn = Broker_core.Connectivity

type result = {
  alliance_size : int;
  alliance : Conn.curve;
  free : Conn.curve;
  max_inflation : float;
}

let compute ctx =
  let brokers = Ctx.maxsg_order ctx in
  let alliance = Ctx.curve ctx brokers in
  let free = Ctx.free_curve ctx in
  let max_inflation = ref 0.0 in
  for l = 1 to min alliance.Conn.l_max free.Conn.l_max do
    let d = Conn.value_at free l -. Conn.value_at alliance l in
    if d > !max_inflation then max_inflation := d
  done;
  {
    alliance_size = Array.length brokers;
    alliance;
    free;
    max_inflation = !max_inflation;
  }

let run ctx =
  Ctx.section "Table 4 - path inflation: full alliance vs free path selection";
  let r = compute ctx in
  let headers =
    "Routing" :: List.map (fun l -> Printf.sprintf "l=%d" l) [ 2; 3; 4; 5; 6 ]
    @ [ "saturated" ]
  in
  let t = Table.create ~headers in
  let row name curve =
    Table.add_row t
      (name
       :: List.map (fun l -> Table.cell_pct (Conn.value_at curve l)) [ 2; 3; 4; 5; 6 ]
      @ [ Table.cell_pct curve.Conn.saturated ])
  in
  row (Printf.sprintf "%d-alliance" r.alliance_size) r.alliance;
  row "ASesWithIXPs (free)" r.free;
  Ctx.table t;
  Ctx.printf
    "Max inflation (free - alliance) over hop counts: %.2f%% (paper: curves almost overlap).\n"
    (100.0 *. r.max_inflation)
