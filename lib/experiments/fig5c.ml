module Report = Broker_report.Report

type row = { k : int; directional : float; bidirectional : float }

let compute ctx =
  let topo = Ctx.topo ctx in
  let order = Ctx.maxsg_order ctx in
  let n = Broker_topo.Topology.n topo in
  let source_set = Ctx.directional_sources ctx in
  let sat = Array.length order in
  let budgets =
    List.sort_uniq Int.compare
      [
        Ctx.scale_count ctx 100;
        Ctx.scale_count ctx 500;
        Ctx.scale_count ctx 1000;
        Ctx.scale_count ctx 2000;
        sat;
      ]
  in
  List.map
    (fun k ->
      let brokers = Array.sub order 0 (min k sat) in
      let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
      {
        k = Array.length brokers;
        directional =
          Broker_core.Directional.saturated_sampled ~source_set
            ~rng:(Ctx.rng ctx) ~sources:(Array.length source_set) topo
            ~is_broker;
        bidirectional =
          (Broker_core.Connectivity.sampled ~l_max:1 ~source_set
             ~rng:(Ctx.rng ctx) ~sources:(Array.length source_set)
             topo.Broker_topo.Topology.graph ~is_broker)
            .Broker_core.Connectivity.saturated;
      })
    budgets

let report ctx =
  let rep = Report.create ~name:"fig5c" () in
  let s =
    Report.section rep
      "Fig 5c - valley-free vs bidirectional connectivity by broker budget"
  in
  let rows = compute ctx in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Brokers";
          Report.col "Valley-free";
          Report.col "Bidirectional assumption";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.int r.k;
          Report.pct r.directional;
          Report.pct r.bidirectional;
        ])
    rows;
  Report.series s ~key:"valley_free" ~x:"brokers" ~y:"connectivity"
    (Array.of_list
       (List.map (fun r -> (float_of_int r.k, r.directional)) rows));
  Report.series s ~key:"bidirectional" ~x:"brokers" ~y:"connectivity"
    (Array.of_list
       (List.map (fun r -> (float_of_int r.k, r.bidirectional)) rows));
  Report.note s
    "Paper: forcing existing business relationships sharply decreases connectivity at every size.\n";
  rep
