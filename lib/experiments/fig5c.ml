module Table = Broker_util.Table

type row = { k : int; directional : float; bidirectional : float }

let compute ctx =
  let topo = Ctx.topo ctx in
  let order = Ctx.maxsg_order ctx in
  let n = Broker_topo.Topology.n topo in
  let source_set = Ctx.directional_sources ctx in
  let sat = Array.length order in
  let budgets =
    List.sort_uniq Int.compare
      [
        Ctx.scale_count ctx 100;
        Ctx.scale_count ctx 500;
        Ctx.scale_count ctx 1000;
        Ctx.scale_count ctx 2000;
        sat;
      ]
  in
  List.map
    (fun k ->
      let brokers = Array.sub order 0 (min k sat) in
      let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
      {
        k = Array.length brokers;
        directional =
          Broker_core.Directional.saturated_sampled ~source_set
            ~rng:(Ctx.rng ctx) ~sources:(Array.length source_set) topo
            ~is_broker;
        bidirectional =
          (Broker_core.Connectivity.sampled ~l_max:1 ~source_set
             ~rng:(Ctx.rng ctx) ~sources:(Array.length source_set)
             topo.Broker_topo.Topology.graph ~is_broker)
            .Broker_core.Connectivity.saturated;
      })
    budgets

let run ctx =
  Ctx.section "Fig 5c - valley-free vs bidirectional connectivity by broker budget";
  let t =
    Table.create ~headers:[ "Brokers"; "Valley-free"; "Bidirectional assumption" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.k;
          Table.cell_pct r.directional;
          Table.cell_pct r.bidirectional;
        ])
    (compute ctx);
  Ctx.table t;
  Ctx.printf
    "Paper: forcing existing business relationships sharply decreases connectivity at every size.\n"
