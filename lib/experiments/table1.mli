(** Table 1: alliance size vs QoS coverage — our approach at the paper's
    three budgets against the all-AS alliance of [13],[14]/[18],[19] and the
    all-IXP mediators of [20],[21],[22]. *)

type row = {
  method_name : string;
  brokers : int;
  fraction_of_nodes : float;
  coverage : float;  (** measured saturated E2E connectivity *)
  paper_coverage : float option;
}

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
