module Report = Broker_report.Report
module Sim = Broker_sim.Simulator
module Faults = Broker_sim.Faults
module Workload = Broker_sim.Workload
module Cache = Broker_sim.Shard_cache
module Topo_stream = Broker_sim.Topo_stream
module Ts = Broker_obs.Timeseries
module Sketch = Broker_obs.Sketch

let phase_names = [ "warm"; "fault"; "recovered" ]

(* Fractions of the horizon where the fault phase starts and ends; the
   topology burst lands mid-fault so its re-convergence cost shows up in
   the fault-phase cache series, not as a separate bump. *)
let fault_from = 0.35
let fault_until = 0.65
let burst_at = 0.5
let windows_per_run = 40

type latency_row = {
  lat_phase : string;
  kind : string;
  samples : int;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

type throughput_row = {
  tp_phase : string;
  duration : float;
  admitted_rate : float;
  delivered_rate : float;
  rejected_rate : float;
  hit_rate : float;
  recomputes : int;
}

type result = {
  horizon : float;
  window : float;
  stats : Sim.stats;
  latencies : latency_row list;
  throughput : throughput_row list;
  recovery_time : float;
  delivered_series : (float * float) array;
  rejected_series : (float * float) array;
  recompute_series : (float * float) array;
  queue_p99_series : (float * float) array;
}

(* Same scene as X8 — scaled Internet topology, MaxSG broker order —
   except the crashed set is the m = k/2 *top*-ranked alliance members:
   X8 crashes the tail to isolate cache policy, but a timeline experiment
   wants a fault that visibly dents admission and stretches latency, and
   dominated paths lean on the top brokers. *)
let scene ctx =
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params =
    { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx }
  in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let k =
    min (Array.length order) (max 8 (int_of_float (1000.0 *. sim_scale)))
  in
  let brokers = Array.sub order 0 k in
  let m = max 1 (k / 2) in
  let crashed = Array.sub order 0 m in
  (topo, g, brokers, crashed)

let find_series name =
  List.find (fun ts -> String.equal (Ts.name ts) name) (Ts.all ())

let phase_of ~horizon mid =
  if mid < fault_from *. horizon then "warm"
  else if mid < fault_until *. horizon then "fault"
  else "recovered"

(* Merge the window sketches of [ts] whose window midpoint falls into
   [phase]; quantiles come out in fixed-point micro-units of sim-time. *)
let phase_quantiles ~horizon ~window ts phase =
  let acc = Sketch.create () in
  let samples = ref 0 in
  Array.iter
    (fun (p : Ts.point) ->
      if String.equal (phase_of ~horizon (p.Ts.t_start +. (0.5 *. window))) phase
      then begin
        samples := !samples + p.Ts.count;
        match p.Ts.sketch with
        | Some sk -> Sketch.merge ~into:acc sk
        | None -> ()
      end)
    (Ts.points ts);
  let q x = Ts.of_fp (Sketch.quantile acc x) in
  (!samples, q 0.5, q 0.9, q 0.99, q 0.999)

let phase_sum ~horizon ~window ts phase =
  Array.fold_left
    (fun acc (p : Ts.point) ->
      if String.equal (phase_of ~horizon (p.Ts.t_start +. (0.5 *. window))) phase
      then acc + p.Ts.sum
      else acc)
    0 (Ts.points ts)

let compute ?(n_sessions = 4000) ctx =
  let topo, g, brokers, crashed = scene ctx in
  let n = Broker_graph.Graph.n g in
  let model = Workload.zipf ~n () in
  let sessions =
    Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions
      Workload.default_params
  in
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Workload.arrival)
    +. 20.0
  in
  let faults =
    Faults.phased
      [
        (fault_from *. horizon, [||]);
        ((fault_until -. fault_from) *. horizon, crashed);
        ((1.0 -. fault_until) *. horizon, [||]);
      ]
  in
  let burst =
    Topo_stream.burst ~rng:(Ctx.rng ctx) g
      ~size:(max 16 (Array.length brokers))
  in
  let topo_churn =
    {
      Sim.updates =
        Array.map
          (fun op -> { Topo_stream.time = burst_at *. horizon; op })
          burst;
      propagation = Topo_stream.Centralized { delay = 1.0 };
    }
  in
  let window = horizon /. float_of_int windows_per_run in
  let config = Sim.degree_capacity g ~factor:0.25 in
  let chaos = Sim.default_chaos faults in
  let stats =
    Sim.run ~chaos ~topo:topo_churn
      ~cache:(Cache.Ring { vnodes = Cache.default_vnodes })
      ~stats_window:window topo ~brokers ~sessions config
  in
  let ts_admitted = find_series "sim.ts.admitted" in
  let ts_delivered = find_series "sim.ts.delivered" in
  let ts_rejected = find_series "sim.ts.rejected" in
  let ts_lookups = find_series "sim.ts.cache.lookups" in
  let ts_recomputes = find_series "sim.ts.cache.recomputes" in
  let ts_queue = find_series "sim.ts.latency.queue_wait" in
  let ts_e2e = find_series "sim.ts.latency.e2e" in
  let latencies =
    List.concat_map
      (fun (kind, ts) ->
        List.map
          (fun phase ->
            let samples, p50, p90, p99, p999 =
              phase_quantiles ~horizon ~window ts phase
            in
            { lat_phase = phase; kind; samples; p50; p90; p99; p999 })
          phase_names)
      [ ("queue_wait", ts_queue); ("e2e", ts_e2e) ]
  in
  (* Deliveries trail the last arrival, so the recovered phase runs to
     the last delivered window rather than stopping at the horizon. *)
  let last_end =
    Float.max horizon
      (float_of_int (Array.length (Ts.points ts_delivered)) *. window)
  in
  let bounds =
    [
      ("warm", 0.0, fault_from *. horizon);
      ("fault", fault_from *. horizon, fault_until *. horizon);
      ("recovered", fault_until *. horizon, last_end);
    ]
  in
  let throughput =
    List.map
      (fun (phase, t0, t1) ->
        let duration = t1 -. t0 in
        let rate ts =
          float_of_int (phase_sum ~horizon ~window ts phase) /. duration
        in
        let lookups = phase_sum ~horizon ~window ts_lookups phase in
        let recomputes = phase_sum ~horizon ~window ts_recomputes phase in
        {
          tp_phase = phase;
          duration;
          admitted_rate = rate ts_admitted;
          delivered_rate = rate ts_delivered;
          rejected_rate = rate ts_rejected;
          hit_rate =
            (if lookups = 0 then 0.0
             else 1.0 -. (float_of_int recomputes /. float_of_int lookups));
          recomputes;
        })
      bounds
  in
  (* Recovery: first post-all-clear window whose delivered count reaches
     90% of the warm per-window mean. *)
  let boundary = fault_until *. horizon in
  let warm_windows = ref 0 and warm_delivered = ref 0 in
  Array.iter
    (fun (p : Ts.point) ->
      if p.Ts.t_start +. (0.5 *. window) < fault_from *. horizon then begin
        incr warm_windows;
        warm_delivered := !warm_delivered + p.Ts.sum
      end)
    (Ts.points ts_delivered);
  let warm_mean =
    if !warm_windows = 0 then 0.0
    else float_of_int !warm_delivered /. float_of_int !warm_windows
  in
  let recovery_time = ref nan in
  Array.iter
    (fun (p : Ts.point) ->
      if
        Float.is_nan !recovery_time
        && p.Ts.t_start >= boundary
        && float_of_int p.Ts.sum >= 0.9 *. warm_mean
      then recovery_time := p.Ts.t_start -. boundary)
    (Ts.points ts_delivered);
  let queue_p99_series =
    let out = ref [] in
    Array.iter
      (fun (p : Ts.point) ->
        match p.Ts.sketch with
        | Some sk when p.Ts.count > 0 ->
            out :=
              (p.Ts.t_start, Ts.of_fp (Sketch.quantile sk 0.99)) :: !out
        | _ -> ())
      (Ts.points ts_queue);
    Array.of_list (List.rev !out)
  in
  {
    horizon;
    window;
    stats;
    latencies;
    throughput;
    recovery_time = !recovery_time;
    delivered_series = Ts.values ts_delivered;
    rejected_series = Ts.values ts_rejected;
    recompute_series = Ts.values ts_recomputes;
    queue_p99_series;
  }

let report ctx =
  let rep = Report.create ~name:"ext_timeline" () in
  let s =
    Report.section rep
      "Extension - brokerstat phase timelines: latency and recovery"
  in
  let r = compute ctx in
  Report.metricf s ~key:"horizon" r.horizon "horizon: %.1f sim-time units\n"
    r.horizon;
  Report.metricf s ~key:"stats.window" r.window
    "stats window: %.3f sim-time units (40 per run)\n" r.window;
  let lt =
    Report.table s ~key:"latency"
      ~columns:
        [
          Report.col "Kind";
          Report.col "Phase";
          Report.col "Samples";
          Report.col "p50";
          Report.col "p90";
          Report.col "p99";
          Report.col "p99.9";
        ]
      ()
  in
  List.iter
    (fun (row : latency_row) ->
      Report.row lt
        [
          Report.str row.kind;
          Report.str row.lat_phase;
          Report.int row.samples;
          Report.float ~decimals:3 row.p50;
          Report.float ~decimals:3 row.p90;
          Report.float ~decimals:3 row.p99;
          Report.float ~decimals:3 row.p999;
        ])
    r.latencies;
  Report.note s
    "Latency percentiles per schedule phase, from merged per-window\nsketches (relative error < 1/32). Open-loop discipline: queue wait and\nend-to-end times are measured from each session's intended arrival, so\nretry backoff during the fault phase shows up as latency rather than\nvanishing into a coordinated-omission gap.\n";
  let tt =
    Report.table s ~key:"throughput"
      ~columns:
        [
          Report.col "Phase";
          Report.col "Duration";
          Report.col "Admit/t";
          Report.col "Deliver/t";
          Report.col "Reject/t";
          Report.col "Cache hits";
          Report.col "Recomputes";
        ]
      ()
  in
  List.iter
    (fun (row : throughput_row) ->
      Report.row tt
        [
          Report.str row.tp_phase;
          Report.float ~decimals:1 row.duration;
          Report.float ~decimals:2 row.admitted_rate;
          Report.float ~decimals:2 row.delivered_rate;
          Report.float ~decimals:2 row.rejected_rate;
          Report.pct row.hit_rate;
          Report.int row.recomputes;
        ])
    r.throughput;
  Report.note s
    "Per-phase rates over the windowed series: the fault phase combines\nthe k/2 top-ranked brokers going down with a topology-update burst\nlanding mid-fault, so its recompute count is crash flushes plus\nre-convergence work.\n";
  if Float.is_nan r.recovery_time then
    Report.note s
      "Delivered throughput never regained 90% of its warm per-window mean\nwithin the horizon.\n"
  else
    Report.metricf s ~key:"recovery.time" r.recovery_time
      "recovery: delivered throughput back to 90%% of warm mean %.2f\nsim-time units after the all-clear\n"
      r.recovery_time;
  Report.series s ~key:"timeline.delivered" ~x:"t" ~y:"delivered"
    r.delivered_series;
  Report.series s ~key:"timeline.rejected" ~x:"t" ~y:"rejected"
    r.rejected_series;
  Report.series s ~key:"timeline.recomputes" ~x:"t" ~y:"recomputes"
    r.recompute_series;
  Report.series s ~key:"timeline.queue_wait.p99" ~x:"t" ~y:"p99"
    r.queue_p99_series;
  Report.note s
    "All series are keyed on deterministic sim-time, so this report is\nbitwise stable across runs and REPRO_DOMAINS settings and diffs clean\nthrough `brokerctl report diff`.\n";
  rep
