(** Table 4: minimal path inflation — the connectivity-vs-hop-count curve of
    the full MaxSG alliance (bidirectional internal links) nearly overlaps
    the free-path-selection curve of the whole topology. *)

type result = {
  alliance_size : int;
  alliance : Broker_core.Connectivity.curve;
  free : Broker_core.Connectivity.curve;
  max_inflation : float;  (** sup_l (free(l) - alliance(l)) *)
}

val compute : Ctx.t -> result
val report : Ctx.t -> Broker_report.Report.t
