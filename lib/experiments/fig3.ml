module Report = Broker_report.Report
module Stats = Broker_util.Stats

type point = { pagerank : float; delta_connectivity : float }

type result = { base_size : int; correlation : float; points : point array }

let compute ?(candidates = 48) ctx ~base_k =
  let g = Ctx.graph ctx in
  let order = Broker_core.Baselines.pagerank_order g in
  let rank = Broker_graph.Pagerank.compute g in
  let base = Array.sub order 0 (min base_k (Array.length order)) in
  let base_sat = Ctx.quick_saturated ctx ~brokers:base in
  (* Candidates: a PageRank-stratified sample of the non-selected vertices,
     so the x axis spans the full PageRank range as in the paper's
     scatter. *)
  let remaining = Array.sub order base_k (Array.length order - base_k) in
  let stride = max 1 (Array.length remaining / candidates) in
  let chosen =
    Array.init
      (min candidates (Array.length remaining / stride))
      (fun i -> remaining.(i * stride))
  in
  let points =
    Array.map
      (fun w ->
        let brokers = Array.append base [| w |] in
        {
          pagerank = rank.(w);
          delta_connectivity = Ctx.quick_saturated ctx ~brokers -. base_sat;
        })
      chosen
  in
  let xs = Array.map (fun p -> p.pagerank) points in
  let ys = Array.map (fun p -> p.delta_connectivity) points in
  { base_size = base_k; correlation = Stats.pearson xs ys; points }

let report ctx =
  let rep = Report.create ~name:"fig3" () in
  let s =
    Report.section rep "Fig 3 - PageRank value vs marginal connectivity contribution"
  in
  let k_small = Ctx.scale_count ctx 100 in
  let k_large = Ctx.scale_count ctx 1000 in
  let small = compute ctx ~base_k:k_small in
  let large = compute ctx ~base_k:k_large in
  Report.metricf s ~key:"corr.small" small.correlation
    "corr(PageRank, delta saturated connectivity) as broker #%d: %+.3f (paper: 0.818)\n"
    (k_small + 1) small.correlation;
  Report.metricf s ~key:"corr.large" large.correlation
    "corr(PageRank, delta saturated connectivity) as broker #%d: %+.3f (paper: 0.227)\n"
    (k_large + 1) large.correlation;
  Report.note s
    "The correlation collapses as the broker set grows: high-PageRank nodes stop being the right next pick.\n";
  let scatter r =
    Array.map (fun p -> (p.pagerank, p.delta_connectivity)) r.points
  in
  Report.series s ~key:"scatter.small" ~x:"pagerank" ~y:"delta_connectivity"
    (scatter small);
  Report.series s ~key:"scatter.large" ~x:"pagerank" ~y:"delta_connectivity"
    (scatter large);
  rep
