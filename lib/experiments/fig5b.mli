(** Fig. 5b: directional (business-relationship-constrained) connectivity
    when a fraction p of inter-broker links is upgraded to bidirectional
    mutual transit. Paper: at p = 0.3, a 1,000-broker set reaches 72.5%
    and the full alliance 84.68%. *)

type row = { k : int; fraction : float; upgraded_links : int; connectivity : float }

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
