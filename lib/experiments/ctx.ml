module T = Broker_topo.Topology

type t = {
  scale : float;
  sources : int;
  seed : int;
  mutable rng_counter : int;
  mutable topo : T.t option;
  mutable maxsg : int array option;
  mutable greedy : int array option;
  mutable free : Broker_core.Connectivity.curve option;
  mutable source_sample : int array option;
  mutable quick_sample : int array option;
}

let create ?(scale = 1.0) ?(sources = 192) ?(seed = 42) () =
  if scale <= 0.0 || scale > 1.0 then invalid_arg "Ctx.create: scale in (0,1]";
  if sources < 1 then invalid_arg "Ctx.create: sources >= 1";
  {
    scale;
    sources;
    seed;
    rng_counter = 0;
    topo = None;
    maxsg = None;
    greedy = None;
    free = None;
    source_sample = None;
    quick_sample = None;
  }

let env_float name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( try float_of_string s with Failure _ -> default)

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some s -> ( try int_of_string s with Failure _ -> default)

let from_env () =
  create
    ~scale:(env_float "REPRO_SCALE" 1.0)
    ~sources:(env_int "REPRO_SOURCES" 192)
    ~seed:(env_int "REPRO_SEED" 42) ()

let scale t = t.scale
let sources t = t.sources
let seed t = t.seed

let rng t =
  t.rng_counter <- t.rng_counter + 1;
  Broker_util.Xrandom.create ((t.seed * 1_000_003) + t.rng_counter)

let params t =
  if t.scale >= 1.0 then { Broker_topo.Internet.default with seed = t.seed }
  else { (Broker_topo.Internet.scaled t.scale) with seed = t.seed }

let topo t =
  match t.topo with
  | Some topo -> topo
  | None ->
      let topo = Broker_topo.Internet.generate (params t) in
      t.topo <- Some topo;
      topo

let graph t = (topo t).T.graph

let maxsg_order t =
  match t.maxsg with
  | Some order -> order
  | None ->
      let order = Broker_core.Maxsg.run_to_saturation (graph t) in
      t.maxsg <- Some order;
      order

let greedy_order t =
  match t.greedy with
  | Some order -> order
  | None ->
      let budget = Array.length (maxsg_order t) in
      let order = Broker_core.Greedy_mcb.celf (graph t) ~k:budget in
      t.greedy <- Some order;
      order

let scale_count t count = max 1 (int_of_float (float_of_int count *. t.scale))

let source_sample t =
  match t.source_sample with
  | Some s -> s
  | None ->
      let g = graph t in
      let n = Broker_graph.Graph.n g in
      let k = min t.sources n in
      let s =
        Broker_util.Sampling.without_replacement
          (Broker_util.Xrandom.create (t.seed + 7777))
          ~n ~k
      in
      t.source_sample <- Some s;
      s

let quick_sample t =
  match t.quick_sample with
  | Some s -> s
  | None ->
      let g = graph t in
      let n = Broker_graph.Graph.n g in
      let k = min 64 n in
      let s =
        Broker_util.Sampling.without_replacement
          (Broker_util.Xrandom.create (t.seed + 8888))
          ~n ~k
      in
      t.quick_sample <- Some s;
      s

let directional_sources t =
  let s = source_sample t in
  Array.sub s 0 (min 96 (Array.length s))

(* Shared fixed-source evaluator: common random numbers across broker
   sets. *)
let eval_curve ?srcs t ~l_max ~is_broker =
  let g = graph t in
  let srcs = match srcs with Some s -> s | None -> source_sample t in
  Broker_core.Connectivity.eval_sources ~l_max g ~is_broker srcs

let curve t ?(l_max = 10) brokers =
  let n = Broker_graph.Graph.n (graph t) in
  eval_curve t ~l_max ~is_broker:(Broker_core.Connectivity.of_brokers ~n brokers)

let saturated t ~brokers =
  (curve t ~l_max:1 brokers).Broker_core.Connectivity.saturated

let quick_saturated t ~brokers =
  let n = Broker_graph.Graph.n (graph t) in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  (eval_curve ~srcs:(quick_sample t) t ~l_max:1 ~is_broker)
    .Broker_core.Connectivity.saturated

let free_curve t =
  match t.free with
  | Some c -> c
  | None ->
      let c = eval_curve t ~l_max:10 ~is_broker:Broker_core.Connectivity.unrestricted in
      t.free <- Some c;
      c
