(** Fig. 3: why PageRank-guided selection stops working — the correlation
    between a candidate's PageRank value and the saturated-connectivity
    increase it brings as the 101st vs the 1,001st broker. The paper
    measures the correlation dropping from 0.818 to 0.227. *)

type point = { pagerank : float; delta_connectivity : float }

type result = {
  base_size : int;
  correlation : float;
  points : point array;
}

val compute : ?candidates:int -> Ctx.t -> base_k:int -> result
val report : Ctx.t -> Broker_report.Report.t
