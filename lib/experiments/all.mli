(** Registry of every table/figure reproduction, in paper order.

    Each experiment builds a {!Broker_report.Report.t}; the caller picks a
    backend ({!Broker_report.Report_text} reproduces the historical
    terminal output byte for byte). *)

type experiment = {
  id : string;  (** registry key, lowercase (["table1"], ["fig2b"], ...) *)
  description : string;  (** one-line summary for [brokerctl list] *)
  artifact : string;
      (** the paper artifact reproduced (["Table 1"], ["Fig. 2b"], ...) or
          ["ablation"] / ["extension"] for the repo's own studies *)
  report : Ctx.t -> Broker_report.Report.t;
}

val experiments : experiment list
(** In presentation order: T1-T5, F1-F6, econ, ablations, extensions. *)

val find : string -> experiment option
(** Lookup by id (case-insensitive), e.g. ["table1"], ["fig2b"]. *)

val run_meta : Ctx.t -> (string * float) list
(** The run-parameter meta block ([scale]/[sources]/[seed]) the runners
    attach to every report. *)

val report_of : Ctx.t -> experiment -> Broker_report.Report.t
(** Build one experiment's report on the shared context, with the
    {!run_meta} block attached. *)

val run_all :
  ?emit:(experiment -> Broker_report.Report.t -> unit) ->
  Ctx.t ->
  (string * Broker_report.Report.t) list
(** Run every experiment on the shared context, returning [(id, report)]
    pairs in registry order. [emit] is called after each experiment
    completes — use it to stream text output progressively on long runs. *)

val run_one :
  Ctx.t -> string -> (Broker_report.Report.t, string) Stdlib.result
