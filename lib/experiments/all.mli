(** Run every table/figure reproduction in paper order. *)

type experiment = { id : string; description : string; run : Ctx.t -> unit }

val experiments : experiment list
(** In presentation order: T1-T5, F1-F6, econ, ablations. *)

val find : string -> experiment option
(** Lookup by id (case-insensitive), e.g. ["table1"], ["fig2b"]. *)

val run_all : Ctx.t -> unit
val run_one : Ctx.t -> string -> (unit, string) Stdlib.result
