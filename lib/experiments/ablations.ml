module Table = Broker_util.Table
module Conn = Broker_core.Connectivity

let small_topo ctx factor =
  let params = { (Broker_topo.Internet.scaled factor) with seed = Ctx.seed ctx } in
  (Broker_topo.Internet.generate params).Broker_topo.Topology.graph

let time f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let celf_vs_naive ctx =
  Ctx.section "Ablation - CELF lazy greedy vs naive greedy (Algorithm 1)";
  let g = small_topo ctx 0.05 in
  let k = 200 in
  let naive, t_naive = time (fun () -> Broker_core.Greedy_mcb.naive g ~k) in
  let evals_naive = Broker_core.Greedy_mcb.gain_evaluations () in
  let celf, t_celf = time (fun () -> Broker_core.Greedy_mcb.celf g ~k) in
  let evals_celf = Broker_core.Greedy_mcb.gain_evaluations () in
  let t = Table.create ~headers:[ "Implementation"; "Gain evals"; "Seconds" ] in
  Table.add_row t [ "naive"; Table.cell_int evals_naive; Printf.sprintf "%.3f" t_naive ];
  Table.add_row t [ "CELF"; Table.cell_int evals_celf; Printf.sprintf "%.3f" t_celf ];
  Ctx.table t;
  Ctx.printf "Outputs identical: %b (submodularity makes lazy evaluation exact).\n"
    (naive = celf)

let beta_sweep ctx =
  Ctx.section "Ablation - Algorithm 2 budget split as assumed beta varies";
  let g = small_topo ctx 0.05 in
  let n = Broker_graph.Graph.n g in
  (* Small enough that the x* coverage brokers sit several hops apart, so
     the connector stage actually has work to do. *)
  let k = 30 in
  let rng = Ctx.rng ctx in
  let sources = 96 in
  let t =
    Table.create
      ~headers:[ "beta"; "x*"; "connectors"; "theta"; "coverage f(B)/|V|"; "saturated" ]
  in
  List.iter
    (fun beta ->
      let r = Broker_core.Mcbg.run g ~k ~beta in
      let cov = Broker_core.Coverage.create g in
      Array.iter (Broker_core.Coverage.add cov) r.Broker_core.Mcbg.brokers;
      let sat =
        Conn.saturated_sampled ~rng ~sources g
          ~is_broker:(Conn.of_brokers ~n r.Broker_core.Mcbg.brokers)
      in
      Table.add_row t
        [
          Table.cell_int beta;
          Table.cell_int r.Broker_core.Mcbg.x_star;
          Table.cell_int (Array.length r.Broker_core.Mcbg.connectors);
          Table.cell_int r.Broker_core.Mcbg.theta;
          Table.cell_pct (Broker_core.Coverage.coverage_fraction cov);
          Table.cell_pct sat;
        ])
    [ 2; 4; 6; 8 ];
  Ctx.table t;
  (* Single-root shortcut comparison at beta=4. *)
  let full = Broker_core.Mcbg.run ~all_roots:true g ~k ~beta:4 in
  let quick = Broker_core.Mcbg.run ~all_roots:false g ~k ~beta:4 in
  Ctx.printf
    "Single-root shortcut: %d connectors vs %d with all-roots search (identical coverage brokers).\n"
    (Array.length quick.Broker_core.Mcbg.connectors)
    (Array.length full.Broker_core.Mcbg.connectors)

let sampling_accuracy ctx =
  Ctx.section "Ablation - sampled connectivity estimator accuracy";
  let g = small_topo ctx 0.04 in
  let n = Broker_graph.Graph.n g in
  let brokers = Broker_core.Maxsg.run g ~k:(max 10 (n / 50)) in
  let is_broker = Conn.of_brokers ~n brokers in
  let exact = Conn.exact ~l_max:8 g ~is_broker in
  let t = Table.create ~headers:[ "Sources"; "Max curve deviation"; "Saturated deviation" ] in
  List.iter
    (fun sources ->
      let sampled = Conn.sampled ~l_max:8 ~rng:(Ctx.rng ctx) ~sources g ~is_broker in
      let dev, _ =
        Broker_core.Path_constraint.max_deviation sampled ~target:exact
      in
      Table.add_row t
        [
          Table.cell_int sources;
          Printf.sprintf "%.4f" dev;
          Printf.sprintf "%.4f"
            (abs_float (sampled.Conn.saturated -. exact.Conn.saturated));
        ])
    [ 16; 64; 256; 1024 ];
  Ctx.table t;
  Ctx.printf "The default budget (192+ sources) keeps deviation well under 1%%.\n"

let run ctx =
  celf_vs_naive ctx;
  beta_sweep ctx;
  sampling_accuracy ctx
