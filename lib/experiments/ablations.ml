module Report = Broker_report.Report
module Conn = Broker_core.Connectivity

let small_topo ctx factor =
  let params = { (Broker_topo.Internet.scaled factor) with seed = Ctx.seed ctx } in
  (Broker_topo.Internet.generate params).Broker_topo.Topology.graph

(* Timing goes through the obs clock (brokerlint R8, clock-discipline):
   monotonic, and the resulting cells stay flagged volatile via
   [Report.seconds]. *)
let time = Broker_obs.Clock.time

let celf_vs_naive ctx =
  let rep = Report.create ~name:"ablation_celf" () in
  let s =
    Report.section rep "Ablation - CELF lazy greedy vs naive greedy (Algorithm 1)"
  in
  let g = small_topo ctx 0.05 in
  let k = 200 in
  let naive, t_naive = time (fun () -> Broker_core.Greedy_mcb.naive g ~k) in
  let evals_naive = Broker_core.Greedy_mcb.gain_evaluations () in
  let celf, t_celf = time (fun () -> Broker_core.Greedy_mcb.celf g ~k) in
  let evals_celf = Broker_core.Greedy_mcb.gain_evaluations () in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Implementation";
          Report.col "Gain evals";
          Report.col ~unit:"s" "Seconds";
        ]
      ()
  in
  Report.row t
    [ Report.str "naive"; Report.int evals_naive; Report.seconds t_naive ];
  Report.row t
    [ Report.str "CELF"; Report.int evals_celf; Report.seconds t_celf ];
  Report.notef s "Outputs identical: %b (submodularity makes lazy evaluation exact).\n"
    (naive = celf);
  rep

let beta_sweep ctx =
  let rep = Report.create ~name:"ablation_beta" () in
  let s =
    Report.section rep "Ablation - Algorithm 2 budget split as assumed beta varies"
  in
  let g = small_topo ctx 0.05 in
  let n = Broker_graph.Graph.n g in
  (* Small enough that the x* coverage brokers sit several hops apart, so
     the connector stage actually has work to do. *)
  let k = 30 in
  let rng = Ctx.rng ctx in
  let sources = 96 in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "beta";
          Report.col "x*";
          Report.col "connectors";
          Report.col "theta";
          Report.col "coverage f(B)/|V|";
          Report.col "saturated";
        ]
      ()
  in
  List.iter
    (fun beta ->
      let r = Broker_core.Mcbg.run g ~k ~beta in
      let cov = Broker_core.Coverage.create g in
      Array.iter (Broker_core.Coverage.add cov) r.Broker_core.Mcbg.brokers;
      let sat =
        Conn.saturated_sampled ~rng ~sources g
          ~is_broker:(Conn.of_brokers ~n r.Broker_core.Mcbg.brokers)
      in
      Report.row t
        [
          Report.int beta;
          Report.int r.Broker_core.Mcbg.x_star;
          Report.int (Array.length r.Broker_core.Mcbg.connectors);
          Report.int r.Broker_core.Mcbg.theta;
          Report.pct (Broker_core.Coverage.coverage_fraction cov);
          Report.pct sat;
        ])
    [ 2; 4; 6; 8 ];
  (* Single-root shortcut comparison at beta=4. *)
  let full = Broker_core.Mcbg.run ~all_roots:true g ~k ~beta:4 in
  let quick = Broker_core.Mcbg.run ~all_roots:false g ~k ~beta:4 in
  Report.metricf s ~key:"single_root_connectors"
    (float_of_int (Array.length quick.Broker_core.Mcbg.connectors))
    "Single-root shortcut: %d connectors vs %d with all-roots search (identical coverage brokers).\n"
    (Array.length quick.Broker_core.Mcbg.connectors)
    (Array.length full.Broker_core.Mcbg.connectors);
  rep

let sampling_accuracy ctx =
  let rep = Report.create ~name:"ablation_sampling" () in
  let s =
    Report.section rep "Ablation - sampled connectivity estimator accuracy"
  in
  let g = small_topo ctx 0.04 in
  let n = Broker_graph.Graph.n g in
  let brokers = Broker_core.Maxsg.run g ~k:(max 10 (n / 50)) in
  let is_broker = Conn.of_brokers ~n brokers in
  let exact = Conn.exact ~l_max:8 g ~is_broker in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Sources";
          Report.col "Max curve deviation";
          Report.col "Saturated deviation";
        ]
      ()
  in
  List.iter
    (fun sources ->
      let sampled = Conn.sampled ~l_max:8 ~rng:(Ctx.rng ctx) ~sources g ~is_broker in
      let dev, _ =
        Broker_core.Path_constraint.max_deviation sampled ~target:exact
      in
      Report.row t
        [
          Report.int sources;
          Report.float ~decimals:4 dev;
          Report.float ~decimals:4
            (abs_float (sampled.Conn.saturated -. exact.Conn.saturated));
        ])
    [ 16; 64; 256; 1024 ];
  Report.note s "The default budget (192+ sources) keeps deviation well under 1%.\n";
  rep
