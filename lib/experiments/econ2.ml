module Report = Broker_report.Report

type result = {
  players : int;
  shapley : float array;
  efficiency_gap : float;
  superadditive : Broker_econ.Coalition.check;
  supermodular : Broker_econ.Coalition.check;
  individually_rational : bool;
  group_rational : Broker_econ.Coalition.check;
  supermodularity_break : int option;
}

let compute ?(players = 10) ctx =
  (* Small dedicated topology: exact 2^players enumeration of v. *)
  let params = { (Broker_topo.Internet.scaled 0.02) with seed = Ctx.seed ctx } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let n = Broker_graph.Graph.n g in
  let order = Broker_core.Maxsg.run_to_saturation g in
  (* Candidate players: mid-ranked brokers spread along the MaxSG order.
     Their coverages are modest and mostly disjoint — the early-coalition
     regime where the paper's network-externality argument (superadditive,
     supermodular value) applies. The mega-hubs at the head of the order
     overlap almost completely and would sit in the post-threshold regime
     instead. *)
  let head = min 4 (Array.length order - 1) in
  let tail = Array.length order - head in
  let players = min players tail in
  let stride = max 1 (tail / players) in
  let candidates = Array.init players (fun i -> order.(head + (i * stride))) in
  (* v(S) = (f(S)/n)^2: revenue proportional to served pair fraction. *)
  let memo = Hashtbl.create 1024 in
  let v mask =
    match Hashtbl.find_opt memo mask with
    | Some x -> x
    | None ->
        let cov = Broker_core.Coverage.create g in
        for j = 0 to players - 1 do
          if mask land (1 lsl j) <> 0 then Broker_core.Coverage.add cov candidates.(j)
        done;
        let frac = float_of_int (Broker_core.Coverage.f cov) /. float_of_int n in
        let value = frac *. frac in
        Hashtbl.replace memo mask value;
        value
  in
  let shapley = Broker_econ.Shapley.exact ~n:players ~v in
  let rng = Ctx.rng ctx in
  let trials = 20_000 in
  (* Marginal-contribution curve along the full MaxSG growth sequence. *)
  let values =
    let cov = Broker_core.Coverage.create g in
    Array.map
      (fun b ->
        Broker_core.Coverage.add cov b;
        let frac = float_of_int (Broker_core.Coverage.f cov) /. float_of_int n in
        frac *. frac)
      order
  in
  {
    players;
    shapley;
    efficiency_gap = Broker_econ.Shapley.efficiency_gap ~v ~n:players shapley;
    superadditive = Broker_econ.Coalition.superadditive ~rng ~n:players ~v ~trials;
    supermodular = Broker_econ.Coalition.supermodular ~rng ~n:players ~v ~trials;
    individually_rational =
      Broker_econ.Coalition.individually_rational ~v ~n:players shapley;
    group_rational =
      Broker_econ.Coalition.group_rational ~rng ~n:players ~v shapley ~trials;
    supermodularity_break = Broker_econ.Coalition.supermodularity_break values;
  }

let report ctx =
  let rep = Report.create ~name:"econ2" () in
  let s =
    Report.section rep "Sec 7.2 - Shapley revenue division and coalition stability"
  in
  let r = compute ctx in
  let t =
    Report.table s ~columns:[ Report.col "Broker"; Report.col "Shapley share" ] ()
  in
  Array.iteri
    (fun j phi ->
      Report.row t
        [ Report.strf "#%d" (j + 1); Report.float ~decimals:5 phi ])
    r.shapley;
  let pp_check name key (c : Broker_econ.Coalition.check) =
    Report.metricf s ~key
      (float_of_int c.Broker_econ.Coalition.violations)
      "%s: %s (%d violations / %d trials)\n" name
      (if c.Broker_econ.Coalition.holds then "holds" else "VIOLATED")
      c.Broker_econ.Coalition.violations c.Broker_econ.Coalition.trials
  in
  Report.metricf s ~key:"efficiency_gap" r.efficiency_gap
    "Efficiency gap |sum phi - v(N)|: %.2e\n" r.efficiency_gap;
  pp_check "Superadditivity (Thm 7 hypothesis)" "superadditive.violations"
    r.superadditive;
  pp_check "Supermodularity (Thm 8 hypothesis)" "supermodular.violations"
    r.supermodular;
  Report.note s
    "(the paper predicts supermodularity holds early and breaks once the important ASes are in)\n";
  Report.notef s "Individual rationality phi_j >= v({j}): %b\n"
    r.individually_rational;
  pp_check "Group rationality (core membership)" "group_rational.violations"
    r.group_rational;
  (match r.supermodularity_break with
  | Some i ->
      Report.metricf s ~key:"supermodularity_break" (float_of_int (i + 1))
        "Marginal contribution starts decaying at broker #%d - the paper's signal to stop growing B.\n"
        (i + 1)
  | None ->
      Report.note s "Marginal contributions never decayed (graph too small).\n");
  rep
