module Table = Broker_util.Table

let run ctx =
  Ctx.section "Table 5 - example brokers and rankings (MaxSG selection order)";
  let topo = Ctx.topo ctx in
  let brokers = Ctx.maxsg_order ctx in
  let ranked = Broker_core.Composition.ranking topo ~brokers in
  let t = Table.create ~headers:[ "Rank"; "Type"; "Name"; "Degree" ] in
  let show r =
    Table.add_row t
      [
        Table.cell_int r.Broker_core.Composition.rank;
        Broker_topo.Node_meta.kind_to_string r.Broker_core.Composition.kind;
        r.Broker_core.Composition.name;
        Table.cell_int r.Broker_core.Composition.degree;
      ]
  in
  (* Top of the ranking, then the first appearances of the stub kinds the
     paper's Table 5 samples (content/enterprise). *)
  Array.iteri (fun i r -> if i < 10 then show r) ranked;
  Table.add_rule t;
  let shown = ref [] in
  Array.iter
    (fun r ->
      let kind = r.Broker_core.Composition.kind in
      let is_stub =
        match kind with
        | Broker_topo.Node_meta.Content | Broker_topo.Node_meta.Enterprise -> true
        | Broker_topo.Node_meta.Tier1 | Broker_topo.Node_meta.Transit
        | Broker_topo.Node_meta.Access | Broker_topo.Node_meta.Ixp ->
            false
      in
      if is_stub && (not (List.mem kind !shown)) && r.Broker_core.Composition.rank > 10
      then begin
        shown := kind :: !shown;
        show r
      end)
    ranked;
  Ctx.table t;
  let ixp_ranks = Broker_core.Composition.first_ixp_ranks topo ~brokers in
  let firsts = List.filteri (fun i _ -> i < 5) ixp_ranks in
  Ctx.printf "First IXP selection ranks: %s (paper: 1, 4, 7, 9, ...).\n"
    (String.concat ", " (List.map string_of_int firsts))
