module Report = Broker_report.Report

let report ctx =
  let rep = Report.create ~name:"table5" () in
  let s =
    Report.section rep
      "Table 5 - example brokers and rankings (MaxSG selection order)"
  in
  let topo = Ctx.topo ctx in
  let brokers = Ctx.maxsg_order ctx in
  let ranked = Broker_core.Composition.ranking topo ~brokers in
  let t =
    Report.table s
      ~columns:
        [ Report.col "Rank"; Report.col "Type"; Report.col "Name"; Report.col "Degree" ]
      ()
  in
  let show r =
    Report.row t
      [
        Report.int r.Broker_core.Composition.rank;
        Report.str
          (Broker_topo.Node_meta.kind_to_string r.Broker_core.Composition.kind);
        Report.str r.Broker_core.Composition.name;
        Report.int r.Broker_core.Composition.degree;
      ]
  in
  (* Top of the ranking, then the first appearances of the stub kinds the
     paper's Table 5 samples (content/enterprise). *)
  Array.iteri (fun i r -> if i < 10 then show r) ranked;
  Report.rule t;
  let shown = ref [] in
  Array.iter
    (fun r ->
      let kind = r.Broker_core.Composition.kind in
      let is_stub =
        match kind with
        | Broker_topo.Node_meta.Content | Broker_topo.Node_meta.Enterprise -> true
        | Broker_topo.Node_meta.Tier1 | Broker_topo.Node_meta.Transit
        | Broker_topo.Node_meta.Access | Broker_topo.Node_meta.Ixp ->
            false
      in
      if is_stub && (not (List.mem kind !shown)) && r.Broker_core.Composition.rank > 10
      then begin
        shown := kind :: !shown;
        show r
      end)
    ranked;
  let ixp_ranks = Broker_core.Composition.first_ixp_ranks topo ~brokers in
  let firsts = List.filteri (fun i _ -> i < 5) ixp_ranks in
  Report.notef s "First IXP selection ranks: %s (paper: 1, 4, 7, 9, ...).\n"
    (String.concat ", " (List.map string_of_int firsts));
  rep
