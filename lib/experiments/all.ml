module Report = Broker_report.Report
module Obs = Broker_obs

let m_runs = Obs.Metrics.counter "experiments.runs"

type experiment = {
  id : string;
  description : string;
  artifact : string;
  report : Ctx.t -> Report.t;
}

let experiments =
  [
    { id = "table1"; description = "alliance size vs QoS coverage"; artifact = "Table 1"; report = Table1.report };
    { id = "table2"; description = "dataset summary"; artifact = "Table 2"; report = Table2.report };
    { id = "table3"; description = "l-hop connectivity per topology"; artifact = "Table 3"; report = Table3.report };
    { id = "table4"; description = "path inflation of the full alliance"; artifact = "Table 4"; report = Table4.report };
    { id = "table5"; description = "example brokers and rankings"; artifact = "Table 5"; report = Table5.report };
    { id = "fig1"; description = "topology structure + DOT export"; artifact = "Fig. 1"; report = (fun ctx -> Fig1.report ctx) };
    { id = "fig2a"; description = "Set-Cover set-size CDF"; artifact = "Fig. 2a"; report = Fig2a.report };
    { id = "fig2b"; description = "algorithm comparison"; artifact = "Fig. 2b"; report = Fig2b.report };
    { id = "fig3"; description = "PageRank correlation decay"; artifact = "Fig. 3"; report = Fig3.report };
    { id = "fig4"; description = "broker placement core vs edge"; artifact = "Fig. 4"; report = Fig4.report };
    { id = "fig5a"; description = "alliance composition"; artifact = "Fig. 5a"; report = Fig5a.report };
    { id = "fig5b"; description = "bidirectional upgrades"; artifact = "Fig. 5b"; report = Fig5b.report };
    { id = "fig5c"; description = "valley-free connectivity sweep"; artifact = "Fig. 5c"; report = Fig5c.report };
    { id = "fig6"; description = "bargaining + Stackelberg pricing"; artifact = "Fig. 6 / Sec 7.1"; report = Fig6.report };
    { id = "econ2"; description = "Shapley division + stability"; artifact = "Sec 7.2"; report = Econ2.report };
    { id = "ablation_celf"; description = "CELF vs naive greedy"; artifact = "ablation"; report = Ablations.celf_vs_naive };
    { id = "ablation_beta"; description = "Algorithm 2 beta sweep"; artifact = "ablation"; report = Ablations.beta_sweep };
    { id = "ablation_sampling"; description = "estimator accuracy"; artifact = "ablation"; report = Ablations.sampling_accuracy };
    { id = "ablation_exact"; description = "empirical approx ratios vs OPT"; artifact = "ablation"; report = Extensions.exact_ratio };
    { id = "ext_resilience"; description = "broker failure degradation"; artifact = "extension"; report = Extensions.resilience };
    { id = "ext_traffic"; description = "traffic-weighted connectivity"; artifact = "extension"; report = Extensions.traffic };
    { id = "ext_betweenness"; description = "betweenness-based selection"; artifact = "extension"; report = Extensions.betweenness };
    { id = "ext_bounded"; description = "radius-bounded selection"; artifact = "extension"; report = Extensions.bounded };
    { id = "ext_churn"; description = "growth & broker maintenance"; artifact = "extension"; report = Extensions.churn };
    { id = "ext_sim"; description = "flow-level brokerage simulation"; artifact = "extension"; report = Ext_sim.report };
    { id = "ext_chaos"; description = "fault injection, failover & availability"; artifact = "extension"; report = Ext_chaos.report };
    { id = "ext_regions"; description = "region-aware selection fairness"; artifact = "extension"; report = Extensions.regions };
    { id = "ext_churn_cache"; description = "path-cache strategies under broker churn"; artifact = "extension"; report = Ext_churn_cache.report };
    { id = "ext_reconverge"; description = "dynamic topology & coverage re-convergence"; artifact = "extension"; report = Ext_reconverge.report };
    { id = "ext_timeline"; description = "brokerstat phase timelines & recovery"; artifact = "extension"; report = Ext_timeline.report };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.equal e.id id) experiments

let run_meta ctx =
  [
    ("scale", Ctx.scale ctx);
    ("sources", float_of_int (Ctx.sources ctx));
    ("seed", float_of_int (Ctx.seed ctx));
  ]

let report_of ctx e =
  Obs.Metrics.incr m_runs;
  let tr0 = Obs.Trace.enter () in
  let r = e.report ctx in
  if Obs.Trace.armed () then Obs.Trace.leave_named ("experiment." ^ e.id) tr0;
  Report.set_meta r (run_meta ctx);
  r

let run_all ?emit ctx =
  List.map
    (fun e ->
      let r = report_of ctx e in
      (match emit with Some f -> f e r | None -> ());
      (e.id, r))
    experiments

let run_one ctx id =
  match find id with
  | Some e -> Ok (report_of ctx e)
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; known: %s" id
           (String.concat ", " (List.map (fun e -> e.id) experiments)))
