type experiment = { id : string; description : string; run : Ctx.t -> unit }

let experiments =
  [
    { id = "table1"; description = "alliance size vs QoS coverage"; run = Table1.run };
    { id = "table2"; description = "dataset summary"; run = Table2.run };
    { id = "table3"; description = "l-hop connectivity per topology"; run = Table3.run };
    { id = "table4"; description = "path inflation of the full alliance"; run = Table4.run };
    { id = "table5"; description = "example brokers and rankings"; run = Table5.run };
    { id = "fig1"; description = "topology structure + DOT export"; run = (fun ctx -> Fig1.run ctx) };
    { id = "fig2a"; description = "Set-Cover set-size CDF"; run = Fig2a.run };
    { id = "fig2b"; description = "algorithm comparison"; run = Fig2b.run };
    { id = "fig3"; description = "PageRank correlation decay"; run = Fig3.run };
    { id = "fig4"; description = "broker placement core vs edge"; run = Fig4.run };
    { id = "fig5a"; description = "alliance composition"; run = Fig5a.run };
    { id = "fig5b"; description = "bidirectional upgrades"; run = Fig5b.run };
    { id = "fig5c"; description = "valley-free connectivity sweep"; run = Fig5c.run };
    { id = "fig6"; description = "bargaining + Stackelberg pricing"; run = Fig6.run };
    { id = "econ2"; description = "Shapley division + stability"; run = Econ2.run };
    { id = "ablation_celf"; description = "CELF vs naive greedy"; run = Ablations.celf_vs_naive };
    { id = "ablation_beta"; description = "Algorithm 2 beta sweep"; run = Ablations.beta_sweep };
    { id = "ablation_sampling"; description = "estimator accuracy"; run = Ablations.sampling_accuracy };
    { id = "ablation_exact"; description = "empirical approx ratios vs OPT"; run = Extensions.exact_ratio };
    { id = "ext_resilience"; description = "broker failure degradation"; run = Extensions.resilience };
    { id = "ext_traffic"; description = "traffic-weighted connectivity"; run = Extensions.traffic };
    { id = "ext_betweenness"; description = "betweenness-based selection"; run = Extensions.betweenness };
    { id = "ext_bounded"; description = "radius-bounded selection"; run = Extensions.bounded };
    { id = "ext_churn"; description = "growth & broker maintenance"; run = Extensions.churn };
    { id = "ext_sim"; description = "flow-level brokerage simulation"; run = Ext_sim.run };
    { id = "ext_chaos"; description = "fault injection, failover & availability"; run = Ext_chaos.run };
    { id = "ext_regions"; description = "region-aware selection fairness"; run = Extensions.regions };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) experiments

let run_all ctx =
  List.iter
    (fun e ->
      e.run ctx;
      (* Keep long runs observable when stdout is a file. *)
      Ctx.flush_out ())
    experiments

let run_one ctx id =
  match find id with
  | Some e ->
      e.run ctx;
      Ctx.flush_out ();
      Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; known: %s" id
           (String.concat ", " (List.map (fun e -> e.id) experiments)))
