(** Fig. 5a: composition of the full MaxSG alliance (diversified, not a
    tier-1 monopoly) and the fraction of E2E connections carried by broker
    nodes alone (paper: > 90%). *)

val report : Ctx.t -> Broker_report.Report.t
