(** Fig. 1: the AS-level topology is a scale-free, layered network with
    IXPs at both core and edge. We report the structural statistics behind
    the picture and export a renderable DOT sample. *)

val report : ?dot_path:string -> Ctx.t -> Broker_report.Report.t
(** Writes the DOT sample to [dot_path] (default
    ["fig1_topology.dot"] in the working directory). *)
