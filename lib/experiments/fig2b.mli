(** Fig. 2b: l-hop E2E connectivity achieved by each selection algorithm at
    a ~1,000-broker budget (plus each baseline's natural size) — the
    paper's main algorithm comparison. MCBG-approx and MaxSG dominate; DB
    and PRB suffer the marginal effect; IXPB and Tier1Only stall under 16%. *)

type row = {
  name : string;
  brokers : int;
  curve : Broker_core.Connectivity.curve;
}

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
