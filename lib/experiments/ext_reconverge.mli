(** X9 (reproduction extension): dynamic topology & coverage
    re-convergence.

    Streams announce/withdraw bursts through the three dynamic-topology
    layers — the {!Broker_graph.Delta} overlay, the
    {!Broker_core.Incremental} connectivity tracker, and the flow-level
    simulator's streaming-update mode — and tests the
    "centralization accelerates convergence" claim of the SDN-BGP line
    of work (PAPERS.md). Three tables:

    - {e incremental} — one burst per (broker budget, burst size)
      through the tracker, against a compact-and-rebuild oracle whose
      curve must match bitwise ([oracle_ok]).
    - {e reconverge} — the same bursts scheduled under a centralized
      constant-delay feed vs a BGP-like hop-staggered crawl
      ({!Broker_sim.Topo_stream.propagation}); re-convergence time is
      the earliest delivery after which saturated coverage never
      changes again.
    - {e sim} — the full simulator with a mid-run 64-update burst;
      every applied update flushes the whole path cache, so the cache
      columns price the recomputation churn per propagation model. *)

val burst_sizes : int list
(** [[8; 32; 128]], in report order. *)

val propagations : (string * Broker_sim.Topo_stream.propagation) list
(** [centralized] (delay 1.0) and [bgp-like] (base 0.5, per-hop 1.0),
    in report order. *)

type incr_row = {
  k : int;  (** broker budget *)
  burst : int;  (** ops actually generated (may be < requested) *)
  applied : int;
  ignored : int;  (** ops with no broker endpoint *)
  affected : int;  (** sources whose reachable set may have changed *)
  reevaluated : int;  (** source batches re-swept *)
  batches : int;
  saturated : float;
  oracle_ok : bool;  (** curve bitwise-equal to from-scratch rebuild *)
}

type conv_row = {
  model : string;
  cburst : int;
  events : int;
  t_first : float;  (** earliest delivery time *)
  t_last : float;  (** latest delivery time *)
  t_stable : float;  (** re-convergence time (see above) *)
  final : float;  (** saturated coverage after the last delivery *)
}

type sim_row = {
  smodel : string;  (** ["static"] baseline or a propagation label *)
  updates : int;
  applied : int;
  ignored : int;
  delivered : float;
  recomputed : int;  (** path-cache recomputations *)
  evicted : int;  (** cache evictions (full flush per applied update) *)
}

val compute_incremental : Ctx.t -> incr_row list
(** Rows grouped by broker budget in ascending order, burst sizes in
    {!burst_sizes} order within each. Deterministic in the context. *)

val compute_reconverge : Ctx.t -> conv_row list
(** Rows grouped by burst size, propagation models in {!propagations}
    order within each; all at the largest broker budget. *)

val compute_sim : ?n_sessions:int -> Ctx.t -> sim_row list
(** The static baseline followed by one row per propagation model,
    identical sessions and update burst across rows. Runs at a capped
    simulation scale like [ext_sim]. *)

val report : Ctx.t -> Broker_report.Report.t
