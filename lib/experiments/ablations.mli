(** Ablations of the reproduction's own design choices (DESIGN.md §6). *)

val celf_vs_naive : Ctx.t -> unit
(** Identical outputs, gain-evaluation counts and wall-clock of the two
    Algorithm 1 implementations on a mid-size topology. *)

val beta_sweep : Ctx.t -> unit
(** Algorithm 2's coverage/connector split and resulting connectivity as
    the assumed β varies, plus single-root vs all-roots connector search. *)

val sampling_accuracy : Ctx.t -> unit
(** Sampled-vs-exact connectivity deviation as the source budget grows. *)

val run : Ctx.t -> unit
(** All three. *)
