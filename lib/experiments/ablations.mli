(** Ablations of the reproduction's own design choices (DESIGN.md §6). *)

val celf_vs_naive : Ctx.t -> Broker_report.Report.t
(** Identical outputs, gain-evaluation counts and wall-clock of the two
    Algorithm 1 implementations on a mid-size topology. The timing cells
    are volatile ({!Broker_report.Report.seconds}): rendered in text but
    excluded from regression diffs. *)

val beta_sweep : Ctx.t -> Broker_report.Report.t
(** Algorithm 2's coverage/connector split and resulting connectivity as
    the assumed β varies, plus single-root vs all-roots connector search. *)

val sampling_accuracy : Ctx.t -> Broker_report.Report.t
(** Sampled-vs-exact connectivity deviation as the source budget grows. *)
