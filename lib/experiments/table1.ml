module Report = Broker_report.Report

type row = {
  method_name : string;
  brokers : int;
  fraction_of_nodes : float;
  coverage : float;
  paper_coverage : float option;
}

let compute ctx =
  let topo = Ctx.topo ctx in
  let n = Broker_topo.Topology.n topo in
  let order = Ctx.maxsg_order ctx in
  let prefix k = Array.sub order 0 (min k (Array.length order)) in
  let ours k paper =
    let brokers = prefix (Ctx.scale_count ctx k) in
    {
      method_name = "Our approach (MaxSG)";
      brokers = Array.length brokers;
      fraction_of_nodes = float_of_int (Array.length brokers) /. float_of_int n;
      coverage = Ctx.saturated ctx ~brokers;
      paper_coverage = Some paper;
    }
  in
  let all_ases =
    let brokers = Broker_topo.Topology.ases topo in
    {
      method_name = "All-AS alliance [13,14,18,19]";
      brokers = Array.length brokers;
      fraction_of_nodes = float_of_int (Array.length brokers) /. float_of_int n;
      coverage = Ctx.saturated ctx ~brokers;
      paper_coverage = Some 1.0;
    }
  in
  let all_ixps =
    let brokers = Broker_core.Baselines.ixpb topo ~min_degree:0 in
    {
      method_name = "All-IXP mediators [20,21,22]";
      brokers = Array.length brokers;
      fraction_of_nodes = float_of_int (Array.length brokers) /. float_of_int n;
      coverage = Ctx.saturated ctx ~brokers;
      paper_coverage = Some 0.157;
    }
  in
  [ ours 100 0.5314; ours 1000 0.8541; ours 3540 0.9929; all_ases; all_ixps ]

let report ctx =
  let rep = Report.create ~name:"table1" () in
  let s = Report.section rep "Table 1 - alliance size vs QoS coverage" in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Method";
          Report.col ~unit:"count" "Brokers";
          Report.col "% of nodes";
          Report.col "Coverage";
          Report.col "Paper";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.str r.method_name;
          Report.int r.brokers;
          Report.pct r.fraction_of_nodes;
          Report.pct r.coverage;
          (match r.paper_coverage with
          | Some p -> Report.pct p
          | None -> Report.str "-");
        ])
    (compute ctx);
  rep
