module Report = Broker_report.Report
module Conn = Broker_core.Connectivity

type row = { name : string; curve : Conn.curve }

let compute ctx =
  let topo = Ctx.topo ctx in
  let g = Ctx.graph ctx in
  let n = Broker_graph.Graph.n g in
  let m = Broker_graph.Graph.m g in
  let sources = Ctx.sources ctx in
  let eval name graph =
    let c =
      Conn.sampled ~l_max:8 ~rng:(Ctx.rng ctx) ~sources graph
        ~is_broker:Conn.unrestricted
    in
    { name; curve = c }
  in
  let er = Broker_topo.Classic.erdos_renyi ~rng:(Ctx.rng ctx) ~n ~m in
  let ws_k =
    let k = int_of_float (Float.round (float_of_int (2 * m) /. float_of_int n)) in
    max 2 (if k mod 2 = 0 then k else k + 1)
  in
  let ws = Broker_topo.Classic.watts_strogatz ~rng:(Ctx.rng ctx) ~n ~k:ws_k ~beta:0.1 in
  let ba_m = max 1 (m / n) in
  let ba = Broker_topo.Classic.barabasi_albert ~rng:(Ctx.rng ctx) ~n ~m:ba_m in
  let ases_only, _ = Broker_topo.Topology.with_ases_only topo in
  [
    eval "ER-Random" er;
    eval "WS-Small-World" ws;
    eval "BA-Scale-free" ba;
    eval "ASes w/o IXPs" ases_only.Broker_topo.Topology.graph;
    eval "ASes with IXPs" g;
  ]

let report ctx =
  let rep = Report.create ~name:"table3" () in
  let s =
    Report.section rep "Table 3 - l-hop E2E connectivity per topology (free paths)"
  in
  let columns =
    Report.col "Topology"
    :: List.map (fun l -> Report.col (Printf.sprintf "l=%d" l)) [ 1; 2; 3; 4; 5; 6 ]
    @ [ Report.col "saturated" ]
  in
  let t = Report.table s ~columns () in
  List.iter
    (fun r ->
      Report.row t
        (Report.str r.name
         :: List.map
              (fun l -> Report.pct (Conn.value_at r.curve l))
              [ 1; 2; 3; 4; 5; 6 ]
        @ [ Report.pct r.curve.Conn.saturated ]))
    (compute ctx);
  Report.note s "Paper: ASes-with-IXPs = 99.21% at l=4 (a (0.99,4)-graph).\n";
  rep
