(* X9 — dynamic topology: streaming announce/withdraw bursts, the
   incremental coverage tracker, and coverage re-convergence time under
   centralized vs BGP-like update propagation. *)

module Report = Broker_report.Report
module X = Broker_util.Xrandom
module G = Broker_graph.Graph
module Delta = Broker_graph.Delta
module Conn = Broker_core.Connectivity
module Incr = Broker_core.Incremental
module Sim = Broker_sim.Simulator
module Workload = Broker_sim.Workload
module Stream = Broker_sim.Topo_stream

let burst_sizes = [ 8; 32; 128 ]

let to_incr_op = function
  | Stream.Announce (u, v) -> Incr.Add (u, v)
  | Stream.Withdraw (u, v) -> Incr.Remove (u, v)

(* Fixed source sample shared by every row: common random numbers across
   broker budgets and burst sizes. *)
let sample_sources ctx g =
  let n = G.n g in
  let k = min (Ctx.sources ctx) n in
  Broker_util.Sampling.without_replacement
    (X.create (Ctx.seed ctx + 0x9E))
    ~n ~k

type incr_row = {
  k : int;
  burst : int;
  applied : int;
  ignored : int;
  affected : int;
  reevaluated : int;
  batches : int;
  saturated : float;
  oracle_ok : bool;
}

(* Table A: one burst through the incremental tracker per (broker
   budget, burst size); the oracle column replays the same ops into a
   topology-level delta, compacts to a fresh CSR and re-evaluates from
   scratch — curves must match bitwise. *)
let compute_incremental ctx =
  let g = Ctx.graph ctx in
  let order = Ctx.maxsg_order ctx in
  let sources = sample_sources ctx g in
  let budgets =
    List.sort_uniq Int.compare
      [
        min (Array.length order) (Ctx.scale_count ctx 1000);
        min (Array.length order) (Ctx.scale_count ctx 3540);
      ]
  in
  List.concat_map
    (fun k ->
      let brokers = Array.sub order 0 k in
      let is_broker = Conn.of_brokers ~n:(G.n g) brokers in
      List.map
        (fun burst ->
          let rng = Ctx.rng ctx in
          let ops = Stream.burst ~rng g ~size:burst in
          let tracker = Incr.create g ~is_broker ~sources in
          let stats = Incr.apply tracker (Array.map to_incr_op ops) in
          let curve = Incr.curve tracker in
          (* From-scratch oracle on the compacted updated topology. *)
          let d = Delta.create g in
          Array.iter
            (fun op ->
              let u, v = Stream.op_endpoints op in
              ignore
                (match op with
                | Stream.Announce _ -> Delta.add_edge d u v
                | Stream.Withdraw _ -> Delta.remove_edge d u v))
            ops;
          let g' = Delta.compact g d in
          let oracle = Conn.eval_sources g' ~is_broker sources in
          {
            k;
            burst = Array.length ops;
            applied = stats.Incr.applied;
            ignored = stats.Incr.ignored;
            affected = stats.Incr.sources_affected;
            reevaluated = stats.Incr.batches_reevaluated;
            batches = stats.Incr.batches_total;
            saturated = curve.Conn.saturated;
            oracle_ok =
              Float.equal curve.Conn.saturated oracle.Conn.saturated
              && Array.for_all2 Float.equal curve.Conn.per_hop
                   oracle.Conn.per_hop;
          })
        burst_sizes)
    budgets

type conv_row = {
  model : string;
  cburst : int;
  events : int;
  t_first : float;
  t_last : float;
  t_stable : float;
  final : float;
}

let propagations =
  [
    ("centralized", Stream.Centralized { delay = 1.0 });
    ("bgp-like", Stream.Bgp_like { base = 0.5; per_hop = 1.0 });
  ]

(* Table B: the same burst originates at t = 0; each update takes effect
   at its propagation-delayed delivery time. Coverage is re-evaluated
   incrementally after every delivery; the re-convergence time is the
   earliest delivery after which saturated coverage never changes
   again. *)
let compute_reconverge ctx =
  let g = Ctx.graph ctx in
  let order = Ctx.maxsg_order ctx in
  let sources = sample_sources ctx g in
  let k = min (Array.length order) (Ctx.scale_count ctx 3540) in
  let brokers = Array.sub order 0 k in
  let is_broker = Conn.of_brokers ~n:(G.n g) brokers in
  List.concat_map
    (fun burst ->
      let rng = Ctx.rng ctx in
      let ops = Stream.burst ~rng g ~size:burst in
      List.map
        (fun (label, prop) ->
          let events =
            Stream.schedule g ~brokers prop
              (Array.map (fun op -> { Stream.time = 0.0; op }) ops)
          in
          let events = Array.copy events in
          (* Stable sort keeps the burst order inside equal delivery
             times, so both models apply simultaneous ops identically. *)
          Array.stable_sort
            (fun a b -> Float.compare a.Stream.time b.Stream.time)
            events;
          let tracker = Incr.create g ~is_broker ~sources in
          let trace =
            Array.map
              (fun (e : Stream.event) ->
                ignore (Incr.apply tracker [| to_incr_op e.Stream.op |]);
                (e.Stream.time, Incr.saturated tracker))
              events
          in
          let ne = Array.length trace in
          let final = if ne = 0 then Incr.saturated tracker else snd trace.(ne - 1) in
          (* Walk back through the deliveries: coverage is converged from
             the first event whose *predecessor* state already equals the
             final value. *)
          let t_stable = ref 0.0 in
          (try
             for i = ne - 1 downto 0 do
               if not (Float.equal (snd trace.(i)) final) then begin
                 if i + 1 < ne then t_stable := fst trace.(i + 1);
                 raise Exit
               end;
               t_stable := fst trace.(i)
             done
           with Exit -> ());
          {
            model = label;
            cburst = Array.length ops;
            events = ne;
            t_first = (if ne = 0 then 0.0 else fst trace.(0));
            t_last = (if ne = 0 then 0.0 else fst trace.(ne - 1));
            t_stable = !t_stable;
            final;
          })
        propagations)
    burst_sizes

type sim_row = {
  smodel : string;
  updates : int;
  applied : int;
  ignored : int;
  delivered : float;
  recomputed : int;
  evicted : int;
}

(* Table C: the full flow-level simulator with a mid-run update burst.
   Every applied update flushes the path cache, so the cache columns
   price the recomputation churn the propagation model causes. *)
let compute_sim ?(n_sessions = 3000) ctx =
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params =
    { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx }
  in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let k =
    min (Array.length order) (max 8 (int_of_float (1000.0 *. sim_scale)))
  in
  let brokers = Array.sub order 0 k in
  let model = Workload.zipf ~n:(G.n g) () in
  let sessions =
    Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions
      Workload.default_params
  in
  let horizon =
    if Array.length sessions = 0 then 0.0
    else sessions.(Array.length sessions - 1).Workload.arrival
  in
  let ops = Stream.burst ~rng:(Ctx.rng ctx) g ~size:64 in
  let updates =
    Array.map (fun op -> { Stream.time = 0.3 *. horizon; op }) ops
  in
  let config = Sim.degree_capacity g ~factor:0.25 in
  let baseline = Sim.run topo ~brokers ~sessions config in
  let base_row =
    {
      smodel = "static";
      updates = 0;
      applied = baseline.Sim.topo_applied;
      ignored = baseline.Sim.topo_ignored;
      delivered = Sim.delivered_rate baseline;
      recomputed = baseline.Sim.cache.Broker_sim.Shard_cache.recomputed;
      evicted = baseline.Sim.cache.Broker_sim.Shard_cache.evicted;
    }
  in
  base_row
  :: List.map
       (fun (label, propagation) ->
         let s =
           Sim.run ~topo:{ Sim.updates; propagation } topo ~brokers ~sessions
             config
         in
         {
           smodel = label;
           updates = Array.length updates;
           applied = s.Sim.topo_applied;
           ignored = s.Sim.topo_ignored;
           delivered = Sim.delivered_rate s;
           recomputed = s.Sim.cache.Broker_sim.Shard_cache.recomputed;
           evicted = s.Sim.cache.Broker_sim.Shard_cache.evicted;
         })
       propagations

let report ctx =
  let rep = Report.create ~name:"ext_reconverge" () in
  let s =
    Report.section rep
      "Extension - dynamic topology: incremental coverage & re-convergence"
  in
  let it =
    Report.table s ~key:"incremental"
      ~columns:
        [
          Report.col "Brokers";
          Report.col "Burst";
          Report.col "Applied";
          Report.col "Ignored";
          Report.col "Affected src";
          Report.col "Re-eval";
          Report.col "Batches";
          Report.col "Saturated";
          Report.col "Oracle";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row it
        [
          Report.int r.k;
          Report.int r.burst;
          Report.int r.applied;
          Report.int r.ignored;
          Report.int r.affected;
          Report.int r.reevaluated;
          Report.int r.batches;
          Report.pct r.saturated;
          Report.str (if r.oracle_ok then "match" else "MISMATCH");
        ])
    (compute_incremental ctx);
  Report.note s
    "One announce/withdraw burst through the incremental tracker per\n\
     (broker budget, burst size). Ignored ops touch no broker endpoint and\n\
     never enter the dominated projection. Oracle: compact the delta and\n\
     re-evaluate from scratch - curves must match bitwise.\n";
  let ct =
    Report.table s ~key:"reconverge"
      ~columns:
        [
          Report.col "Propagation";
          Report.col "Burst";
          Report.col "Events";
          Report.col ~unit:"s" "First";
          Report.col ~unit:"s" "Last";
          Report.col ~unit:"s" "Stable";
          Report.col "Final";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row ct
        [
          Report.str r.model;
          Report.int r.cburst;
          Report.int r.events;
          Report.float ~decimals:2 r.t_first;
          Report.float ~decimals:2 r.t_last;
          Report.float ~decimals:2 r.t_stable;
          Report.pct r.final;
        ])
    (compute_reconverge ctx);
  Report.note s
    "Coverage stabilization after a burst originating at t = 0. The\n\
     centralized feed delivers everything after one constant delay; the\n\
     BGP-like crawl staggers deliveries by hop distance to the nearest\n\
     broker, stretching the window the coverage estimate is stale.\n";
  let st =
    Report.table s ~key:"sim"
      ~columns:
        [
          Report.col "Propagation";
          Report.col "Updates";
          Report.col "Applied";
          Report.col "Ignored";
          Report.col "Delivered";
          Report.col "Recomputed";
          Report.col "Evicted";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row st
        [
          Report.str r.smodel;
          Report.int r.updates;
          Report.int r.applied;
          Report.int r.ignored;
          Report.pct r.delivered;
          Report.int r.recomputed;
          Report.int r.evicted;
        ])
    (compute_sim ctx);
  Report.note s
    "Flow-level simulation with a 64-update burst at 0.3x the arrival\n\
     horizon: every applied update flushes the whole path cache, so the\n\
     recompute/evict columns price cache churn under each propagation\n\
     model against the static baseline.\n";
  rep
