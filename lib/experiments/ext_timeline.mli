(** X10 (reproduction extension): brokerstat phase timelines.

    One flow-level run — Zipf open-loop arrivals through a three-phase
    fault schedule (warm → the m = k/2 {e top}-ranked brokers down →
    recovered) with a topology-update burst landing mid-fault — collected
    through the {!Broker_sim.Simulator} [?stats_window] timelines. The
    report slices every windowed series by schedule phase: latency
    percentiles (p50/p90/p99/p99.9 of queue wait and end-to-end
    completion, from merged per-window {!Broker_obs.Sketch}es),
    throughput and cache hit rate per phase, and the time from the
    all-clear until per-window delivered throughput recovers to 90% of
    its warm-phase mean.

    Everything is keyed on deterministic sim-time: the timeline series
    are bitwise identical across [REPRO_DOMAINS] settings and across
    repeated runs at a fixed seed/scale (asserted by the tests and the
    CI determinism-replay job). *)

val phase_names : string list
(** [["warm"; "fault"; "recovered"]], in schedule order. The fault
    phase spans the middle \[0.35, 0.65) of the horizon. *)

type latency_row = {
  lat_phase : string;
  kind : string;  (** ["queue_wait"] or ["e2e"] *)
  samples : int;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;  (** sim-time units (converted back from fixed-point) *)
}

type throughput_row = {
  tp_phase : string;
  duration : float;  (** phase length in sim-time units *)
  admitted_rate : float;  (** admissions per unit sim-time *)
  delivered_rate : float;  (** completed departures per unit sim-time *)
  rejected_rate : float;  (** terminal rejections per unit sim-time *)
  hit_rate : float;  (** 1 − recomputes/lookups over the phase's windows *)
  recomputes : int;
}

type result = {
  horizon : float;
  window : float;  (** the [?stats_window] width ([horizon / 40]) *)
  stats : Broker_sim.Simulator.stats;
  latencies : latency_row list;
      (** grouped by kind, phases in {!phase_names} order *)
  throughput : throughput_row list;  (** {!phase_names} order *)
  recovery_time : float;
      (** sim-time from the all-clear boundary to the first window whose
          delivered count reaches 90% of the warm per-window mean;
          [nan] when throughput never recovers within the horizon *)
  delivered_series : (float * float) array;  (** per-window (t, count) *)
  rejected_series : (float * float) array;
  recompute_series : (float * float) array;
  queue_p99_series : (float * float) array;
      (** per-window p99 queue wait in sim-time units *)
}

val compute : ?n_sessions:int -> Ctx.t -> result
(** Run the scene (default 4000 sessions) and slice the timelines.
    Deterministic in the context's seed; independent of domain count. *)

val report : Ctx.t -> Broker_report.Report.t
