module G = Broker_graph.Graph
module Report = Broker_report.Report

let report ?(dot_path = "fig1_topology.dot") ctx =
  let rep = Report.create ~name:"fig1" () in
  let s =
    Report.section rep
      "Fig 1 - topology structure (scale-free, layered, IXPs core+edge)"
  in
  let topo = Ctx.topo ctx in
  let g = Ctx.graph ctx in
  let rng = Ctx.rng ctx in
  let core = Broker_graph.Kcore.coreness g in
  let degeneracy = Array.fold_left max 0 core in
  let ixps = Broker_topo.Topology.ixps topo in
  let deep = degeneracy / 2 in
  let ixp_core =
    Array.fold_left (fun acc v -> if core.(v) >= deep then acc + 1 else acc) 0 ixps
  in
  let ixp_edge =
    Array.fold_left (fun acc v -> if core.(v) <= 2 then acc + 1 else acc) 0 ixps
  in
  let avg_degree = Broker_graph.Metrics.average_degree g in
  Report.metric s ~key:"vertices" (float_of_int (G.n g));
  Report.metric s ~key:"edges" (float_of_int (G.m g));
  Report.metricf s ~key:"average_degree" avg_degree
    "Vertices: %d  Edges: %d  Average degree: %.2f\n" (G.n g) (G.m g) avg_degree;
  let exponent = Broker_graph.Metrics.power_law_exponent g in
  Report.metricf s ~key:"power_law_exponent" exponent
    "Power-law exponent (MLE, d >= 2): %.2f (scale-free range 1.5-3)\n" exponent;
  let assortativity = Broker_graph.Metrics.degree_assortativity g in
  Report.metricf s ~key:"assortativity" assortativity
    "Degree assortativity: %.3f (Internet AS graph is disassortative)\n"
    assortativity;
  let clustering = Broker_graph.Metrics.clustering_coefficient ~samples:1000 ~rng g in
  Report.metricf s ~key:"clustering" clustering
    "Mean clustering coefficient (sampled): %.3f\n" clustering;
  Report.metricf s ~key:"degeneracy" (float_of_int degeneracy)
    "Graph degeneracy (max coreness): %d\n" degeneracy;
  Report.metric s ~key:"ixp_core" (float_of_int ixp_core);
  Report.metricf s ~key:"ixp_edge" (float_of_int ixp_edge)
    "IXPs in the deep core (coreness >= %d): %d / %d; IXPs at the edge (coreness <= 2): %d\n"
    deep ixp_core (Array.length ixps) ixp_edge;
  let est =
    Broker_core.Alpha_beta.estimate ~rng:(Ctx.rng ctx) ~sources:(min 64 (Ctx.sources ctx))
      g ~alpha:0.99
  in
  Report.metric s ~key:"alpha" est.Broker_core.Alpha_beta.alpha;
  Report.metricf s ~key:"beta" (float_of_int est.Broker_core.Alpha_beta.beta)
    "(alpha,beta)-graph estimate: (%.3f, %d) (paper: (0.99, 4))\n"
    est.Broker_core.Alpha_beta.alpha est.Broker_core.Alpha_beta.beta;
  let attrs v =
    if Broker_topo.Topology.is_ixp topo v then [ ("color", "red"); ("shape", "box") ]
    else []
  in
  let dot = Broker_graph.Dot.to_dot ~name:"as_topology" ~vertex_attrs:attrs ~max_vertices:800 g in
  Broker_graph.Dot.write_file ~path:dot_path dot;
  Report.notef s "DOT sample (800 highest-degree nodes) written to %s\n" dot_path;
  rep
