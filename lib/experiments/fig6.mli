(** Fig. 6 + Section 7.1: the brokerage business model in numbers — Nash
    bargaining with a hired employee AS, and the Stackelberg pricing game
    against a heterogeneous customer population. *)

type result = {
  bargain : Broker_econ.Bargain.outcome;
  equilibrium : Broker_econ.Stackelberg.equilibrium;
  mean_adoption : float;
  full_adopters : int;
  customers : int;
  full_adoption_price : float option;
}

val compute : ?customers:int -> Ctx.t -> result
val report : Ctx.t -> Broker_report.Report.t
