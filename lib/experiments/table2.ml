module Table = Broker_util.Table

type row = { description : string; measured : int; paper : int option }

let paper_at_scale ctx v =
  if Ctx.scale ctx >= 1.0 then Some v else None

let compute ctx =
  let s = Broker_topo.Dataset.summarize (Ctx.topo ctx) in
  [
    { description = "IXPs"; measured = s.Broker_topo.Dataset.ixps; paper = paper_at_scale ctx 322 };
    { description = "ASes"; measured = s.Broker_topo.Dataset.ases; paper = paper_at_scale ctx 51_757 };
    {
      description = "Size of the maximum connected subgraph";
      measured = s.Broker_topo.Dataset.max_connected_subgraph;
      paper = paper_at_scale ctx 51_895;
    };
    {
      description = "# of connections among ASes";
      measured = s.Broker_topo.Dataset.as_as_connections;
      paper = paper_at_scale ctx 347_332;
    };
    {
      description = "# of connections between IXPs and ASes";
      measured = s.Broker_topo.Dataset.as_ixp_connections;
      paper = paper_at_scale ctx 55_282;
    };
    {
      description = "ASes with an IXP membership (x0.1%)";
      measured =
        int_of_float (1000.0 *. s.Broker_topo.Dataset.ixp_connected_fraction);
      paper = paper_at_scale ctx 402;
    };
  ]

let run ctx =
  Ctx.section "Table 2 - dataset summary (synthetic topology vs paper)";
  let t = Table.create ~headers:[ "Description"; "Measured"; "Paper" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.description;
          Table.cell_int r.measured;
          (match r.paper with Some p -> Table.cell_int p | None -> "-");
        ])
    (compute ctx);
  Ctx.table t
