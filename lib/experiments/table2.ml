module Report = Broker_report.Report

type row = { description : string; measured : int; paper : int option }

let paper_at_scale ctx v =
  if Ctx.scale ctx >= 1.0 then Some v else None

let compute ctx =
  let s = Broker_topo.Dataset.summarize (Ctx.topo ctx) in
  [
    { description = "IXPs"; measured = s.Broker_topo.Dataset.ixps; paper = paper_at_scale ctx 322 };
    { description = "ASes"; measured = s.Broker_topo.Dataset.ases; paper = paper_at_scale ctx 51_757 };
    {
      description = "Size of the maximum connected subgraph";
      measured = s.Broker_topo.Dataset.max_connected_subgraph;
      paper = paper_at_scale ctx 51_895;
    };
    {
      description = "# of connections among ASes";
      measured = s.Broker_topo.Dataset.as_as_connections;
      paper = paper_at_scale ctx 347_332;
    };
    {
      description = "# of connections between IXPs and ASes";
      measured = s.Broker_topo.Dataset.as_ixp_connections;
      paper = paper_at_scale ctx 55_282;
    };
    {
      description = "ASes with an IXP membership (x0.1%)";
      measured =
        int_of_float (1000.0 *. s.Broker_topo.Dataset.ixp_connected_fraction);
      paper = paper_at_scale ctx 402;
    };
  ]

let report ctx =
  let rep = Report.create ~name:"table2" () in
  let s =
    Report.section rep "Table 2 - dataset summary (synthetic topology vs paper)"
  in
  let t =
    Report.table s
      ~columns:[ Report.col "Description"; Report.col "Measured"; Report.col "Paper" ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.str r.description;
          Report.int r.measured;
          (match r.paper with Some p -> Report.int p | None -> Report.str "-");
        ])
    (compute ctx);
  rep
