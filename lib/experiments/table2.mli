(** Table 2: summary of the (synthetic) dataset against the paper's
    collected-dataset numbers. *)

type row = { description : string; measured : int; paper : int option }

val compute : Ctx.t -> row list
val report : Ctx.t -> Broker_report.Report.t
