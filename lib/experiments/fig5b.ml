module Report = Broker_report.Report

type row = { k : int; fraction : float; upgraded_links : int; connectivity : float }

let compute ctx =
  let topo = Ctx.topo ctx in
  let order = Ctx.maxsg_order ctx in
  let n = Broker_topo.Topology.n topo in
  let source_set = Ctx.directional_sources ctx in
  let budgets = [ Ctx.scale_count ctx 1000; Array.length order ] in
  let fractions = [ 0.0; 0.3; 1.0 ] in
  List.concat_map
    (fun k ->
      let brokers = Array.sub order 0 (min k (Array.length order)) in
      let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
      List.map
        (fun fraction ->
          let upgrades =
            Broker_core.Directional.upgrade_broker_edges ~rng:(Ctx.rng ctx) topo
              ~brokers ~fraction
          in
          let connectivity =
            Broker_core.Directional.saturated_sampled ~upgrades ~source_set
              ~rng:(Ctx.rng ctx) ~sources:(Array.length source_set) topo
              ~is_broker
          in
          {
            k = Array.length brokers;
            fraction;
            upgraded_links = Broker_core.Directional.upgrade_count upgrades;
            connectivity;
          })
        fractions)
    budgets

let report ctx =
  let rep = Report.create ~name:"fig5b" () in
  let s =
    Report.section rep "Fig 5b - directional connectivity vs bidirectional upgrades"
  in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Brokers";
          Report.col "Upgraded fraction";
          Report.col "Upgraded links";
          Report.col "Connectivity";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.int r.k;
          Report.pct ~decimals:0 r.fraction;
          Report.int r.upgraded_links;
          Report.pct r.connectivity;
        ])
    (compute ctx);
  Report.note s
    "Paper at p=30%: 72.5% with 1,000 brokers; 84.68% with the full 3,540-alliance.\n";
  rep
