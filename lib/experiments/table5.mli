(** Table 5: example brokers and their selection ranks — the paper
    highlights that IXPs appear at the very top (Equinix, LINX, DE-CIX
    ranks 1, 4, 7, 9) alongside tier-1 transit, with content and enterprise
    ASes appearing deeper. *)

val report : Ctx.t -> Broker_report.Report.t
