module Report = Broker_report.Report

type result = {
  bargain : Broker_econ.Bargain.outcome;
  equilibrium : Broker_econ.Stackelberg.equilibrium;
  mean_adoption : float;
  full_adopters : int;
  customers : int;
  full_adoption_price : float option;
}

let compute ?(customers = 200) ctx =
  let rng = Ctx.rng ctx in
  let population = Broker_econ.Market.random_population ~rng ~n:customers in
  let cost = Broker_econ.Market.default_cost in
  let eq = Broker_econ.Stackelberg.solve population ~cost in
  (* Employee bargaining at the equilibrium broker price: the AS graph is a
     (0.99, 4)-graph, so B budgets for up to ceil(beta/2) = 2 hired hops. *)
  let bargain =
    match
      Broker_econ.Bargain.solve ~cross_check:true
        ~broker_price:(Float.max eq.Broker_econ.Stackelberg.price 1.0)
        ~hops:2 0.2
    with
    | Some b -> b
    | None -> failwith "Fig6: empty bargaining set at equilibrium price"
  in
  let adoptions = eq.Broker_econ.Stackelberg.adoptions in
  let full = Array.fold_left (fun a x -> if x >= 0.99 then a + 1 else a) 0 adoptions in
  {
    bargain;
    equilibrium = eq;
    mean_adoption = Broker_util.Stats.mean adoptions;
    full_adopters = full;
    customers;
    full_adoption_price =
      Broker_econ.Stackelberg.full_adoption_price population ~epsilon:0.01;
  }

let report ctx =
  let rep = Report.create ~name:"fig6" () in
  let s = Report.section rep "Fig 6 / Sec 7.1 - bargaining and Stackelberg pricing" in
  let r = compute ctx in
  let eq = r.equilibrium in
  let t =
    Report.table s ~columns:[ Report.col "Quantity"; Report.col "Value" ] ()
  in
  Report.row t [ Report.str "Customers (non-broker ASes)"; Report.int r.customers ];
  Report.row t
    [
      Report.str "Stackelberg price p_B";
      Report.float ~decimals:3 eq.Broker_econ.Stackelberg.price;
    ];
  Report.row t
    [
      Report.str "Aggregate adoption alpha";
      Report.float ~decimals:2 eq.Broker_econ.Stackelberg.alpha;
    ];
  Report.row t
    [ Report.str "Mean adoption a_i"; Report.float ~decimals:3 r.mean_adoption ];
  Report.row t [ Report.str "Full adopters (a_i ~ 1)"; Report.int r.full_adopters ];
  Report.row t
    [
      Report.str "Broker coalition utility";
      Report.float ~decimals:2 eq.Broker_econ.Stackelberg.broker_utility;
    ];
  Report.row t
    [
      Report.str "Price for universal adoption";
      (match r.full_adoption_price with
      | Some p -> Report.float ~decimals:3 p
      | None -> Report.str "none (heterogeneous population)");
    ];
  Report.rule t;
  Report.row t
    [
      Report.str "Nash bargaining price p_j";
      Report.float ~decimals:3 r.bargain.Broker_econ.Bargain.price;
    ];
  Report.row t
    [
      Report.str "Employee utility u_j";
      Report.float ~decimals:3 r.bargain.Broker_econ.Bargain.u_employee;
    ];
  Report.row t
    [
      Report.str "Broker utility per unit u_B";
      Report.float ~decimals:3 r.bargain.Broker_econ.Bargain.u_broker;
    ];
  Report.note s
    "Theorems 5-6: both the bargaining problem and the Stackelberg game admit equilibria (existence verified numerically).\n";
  assert (r.bargain.Broker_econ.Bargain.u_employee > 0.0);
  assert (r.bargain.Broker_econ.Bargain.u_broker > 0.0);
  rep
