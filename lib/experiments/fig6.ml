module Table = Broker_util.Table

type result = {
  bargain : Broker_econ.Bargain.outcome;
  equilibrium : Broker_econ.Stackelberg.equilibrium;
  mean_adoption : float;
  full_adopters : int;
  customers : int;
  full_adoption_price : float option;
}

let compute ?(customers = 200) ctx =
  let rng = Ctx.rng ctx in
  let population = Broker_econ.Market.random_population ~rng ~n:customers in
  let cost = Broker_econ.Market.default_cost in
  let eq = Broker_econ.Stackelberg.solve population ~cost in
  (* Employee bargaining at the equilibrium broker price: the AS graph is a
     (0.99, 4)-graph, so B budgets for up to ceil(beta/2) = 2 hired hops. *)
  let bargain =
    match
      Broker_econ.Bargain.solve ~cross_check:true
        ~broker_price:(Float.max eq.Broker_econ.Stackelberg.price 1.0)
        ~hops:2 0.2
    with
    | Some b -> b
    | None -> failwith "Fig6: empty bargaining set at equilibrium price"
  in
  let adoptions = eq.Broker_econ.Stackelberg.adoptions in
  let full = Array.fold_left (fun a x -> if x >= 0.99 then a + 1 else a) 0 adoptions in
  {
    bargain;
    equilibrium = eq;
    mean_adoption = Broker_util.Stats.mean adoptions;
    full_adopters = full;
    customers;
    full_adoption_price =
      Broker_econ.Stackelberg.full_adoption_price population ~epsilon:0.01;
  }

let run ctx =
  Ctx.section "Fig 6 / Sec 7.1 - bargaining and Stackelberg pricing";
  let r = compute ctx in
  let eq = r.equilibrium in
  let t = Table.create ~headers:[ "Quantity"; "Value" ] in
  Table.add_row t [ "Customers (non-broker ASes)"; Table.cell_int r.customers ];
  Table.add_row t
    [ "Stackelberg price p_B"; Table.cell_float ~decimals:3 eq.Broker_econ.Stackelberg.price ];
  Table.add_row t
    [ "Aggregate adoption alpha"; Table.cell_float ~decimals:2 eq.Broker_econ.Stackelberg.alpha ];
  Table.add_row t [ "Mean adoption a_i"; Table.cell_float ~decimals:3 r.mean_adoption ];
  Table.add_row t [ "Full adopters (a_i ~ 1)"; Table.cell_int r.full_adopters ];
  Table.add_row t
    [
      "Broker coalition utility";
      Table.cell_float ~decimals:2 eq.Broker_econ.Stackelberg.broker_utility;
    ];
  Table.add_row t
    [
      "Price for universal adoption";
      (match r.full_adoption_price with
      | Some p -> Table.cell_float ~decimals:3 p
      | None -> "none (heterogeneous population)");
    ];
  Table.add_rule t;
  Table.add_row t
    [ "Nash bargaining price p_j"; Table.cell_float ~decimals:3 r.bargain.Broker_econ.Bargain.price ];
  Table.add_row t
    [ "Employee utility u_j"; Table.cell_float ~decimals:3 r.bargain.Broker_econ.Bargain.u_employee ];
  Table.add_row t
    [ "Broker utility per unit u_B"; Table.cell_float ~decimals:3 r.bargain.Broker_econ.Bargain.u_broker ];
  Ctx.table t;
  Ctx.printf
    "Theorems 5-6: both the bargaining problem and the Stackelberg game admit equilibria (existence verified numerically).\n";
  assert (r.bargain.Broker_econ.Bargain.u_employee > 0.0);
  assert (r.bargain.Broker_econ.Bargain.u_broker > 0.0)
