module Report = Broker_report.Report

let report ctx =
  let rep = Report.create ~name:"ext_sim" () in
  let s =
    Report.section rep "Extension - flow-level brokerage simulation + latency stretch"
  in
  (* Simulation scale is capped: per-session path queries on the full graph
     would dominate runtime without changing the story. *)
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params = { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:(max 30 (Broker_graph.Graph.n g / 20)) in
  let model = Broker_core.Traffic.gravity ~rng:(Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions:8000
      Broker_sim.Workload.default_params
  in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Capacity factor";
          Report.col "Admitted";
          Report.col "No path";
          Report.col "No capacity";
          Report.col "Mean hops";
          Report.col "Utilization";
          Report.col "Net revenue";
        ]
      ()
  in
  List.iter
    (fun factor ->
      let config = Broker_sim.Simulator.degree_capacity g ~factor in
      let sr = Broker_sim.Simulator.run topo ~brokers ~sessions config in
      Report.row t
        [
          Report.float factor;
          Report.pct sr.Broker_sim.Simulator.admission_rate;
          Report.int sr.Broker_sim.Simulator.rejected_no_path;
          Report.int sr.Broker_sim.Simulator.rejected_capacity;
          Report.float sr.Broker_sim.Simulator.mean_hops;
          Report.pct sr.Broker_sim.Simulator.mean_broker_utilization;
          Report.float ~decimals:0 sr.Broker_sim.Simulator.revenue;
        ])
    [ 0.05; 0.1; 0.25; 0.5; 1.0 ];
  (* Latency stretch of broker paths vs free min-latency paths. *)
  let lat = Broker_routing.Latency.assign ~rng:(Ctx.rng ctx) topo in
  let n = Broker_graph.Graph.n g in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let rng = Ctx.rng ctx in
  let stretches = ref [] in
  let tries = ref 0 in
  while List.length !stretches < 60 && !tries < 600 do
    incr tries;
    let src = Broker_util.Xrandom.int rng n and dst = Broker_util.Xrandom.int rng n in
    if src <> dst then
      match Broker_routing.Latency.stretch lat topo ~is_broker ~src ~dst with
      | Some st -> stretches := st :: !stretches
      | None -> ()
  done;
  let arr = Array.of_list !stretches in
  if Array.length arr > 0 then begin
    let st = Broker_util.Stats.summarize arr in
    Report.metric s ~key:"stretch.median" st.Broker_util.Stats.p50;
    Report.metric s ~key:"stretch.p90" st.Broker_util.Stats.p90;
    Report.metricf s ~key:"stretch.mean" st.Broker_util.Stats.mean
      "Latency stretch of dominated paths vs free min-latency paths over %d pairs:\nmean %.3f, median %.3f, p90 %.3f (1.0 = no inflation).\n"
      st.Broker_util.Stats.n st.Broker_util.Stats.mean st.Broker_util.Stats.p50
      st.Broker_util.Stats.p90
  end;
  rep
