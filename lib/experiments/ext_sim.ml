module Table = Broker_util.Table

let run ctx =
  Ctx.section "Extension - flow-level brokerage simulation + latency stretch";
  (* Simulation scale is capped: per-session path queries on the full graph
     would dominate runtime without changing the story. *)
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params = { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx } in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let brokers = Broker_core.Maxsg.run g ~k:(max 30 (Broker_graph.Graph.n g / 20)) in
  let model = Broker_core.Traffic.gravity ~rng:(Ctx.rng ctx) g in
  let sessions =
    Broker_sim.Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions:8000
      Broker_sim.Workload.default_params
  in
  let t =
    Table.create
      ~headers:
        [
          "Capacity factor"; "Admitted"; "No path"; "No capacity";
          "Mean hops"; "Utilization"; "Net revenue";
        ]
  in
  List.iter
    (fun factor ->
      let config = Broker_sim.Simulator.degree_capacity g ~factor in
      let s = Broker_sim.Simulator.run topo ~brokers ~sessions config in
      Table.add_row t
        [
          Printf.sprintf "%.2f" factor;
          Table.cell_pct s.Broker_sim.Simulator.admission_rate;
          Table.cell_int s.Broker_sim.Simulator.rejected_no_path;
          Table.cell_int s.Broker_sim.Simulator.rejected_capacity;
          Table.cell_float s.Broker_sim.Simulator.mean_hops;
          Table.cell_pct s.Broker_sim.Simulator.mean_broker_utilization;
          Printf.sprintf "%.0f" s.Broker_sim.Simulator.revenue;
        ])
    [ 0.05; 0.1; 0.25; 0.5; 1.0 ];
  Ctx.table t;
  (* Latency stretch of broker paths vs free min-latency paths. *)
  let lat = Broker_routing.Latency.assign ~rng:(Ctx.rng ctx) topo in
  let n = Broker_graph.Graph.n g in
  let is_broker = Broker_core.Connectivity.of_brokers ~n brokers in
  let rng = Ctx.rng ctx in
  let stretches = ref [] in
  let tries = ref 0 in
  while List.length !stretches < 60 && !tries < 600 do
    incr tries;
    let src = Broker_util.Xrandom.int rng n and dst = Broker_util.Xrandom.int rng n in
    if src <> dst then
      match Broker_routing.Latency.stretch lat topo ~is_broker ~src ~dst with
      | Some s -> stretches := s :: !stretches
      | None -> ()
  done;
  let arr = Array.of_list !stretches in
  if Array.length arr > 0 then begin
    let s = Broker_util.Stats.summarize arr in
    Ctx.printf
      "Latency stretch of dominated paths vs free min-latency paths over %d pairs:\nmean %.3f, median %.3f, p90 %.3f (1.0 = no inflation).\n"
      s.Broker_util.Stats.n s.Broker_util.Stats.mean s.Broker_util.Stats.p50
      s.Broker_util.Stats.p90
  end
