(** Flow-level simulation of the brokerage (reproduction extension):
    Poisson QoS sessions over the broker mesh with per-broker admission
    control, swept over the capacity provisioning factor; plus the latency
    view of Table 4's "minimal path inflation" claim. *)

val report : Ctx.t -> Broker_report.Report.t
