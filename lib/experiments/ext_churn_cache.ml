module Report = Broker_report.Report
module X = Broker_util.Xrandom
module Sim = Broker_sim.Simulator
module Faults = Broker_sim.Faults
module Workload = Broker_sim.Workload
module Cache = Broker_sim.Shard_cache

let strategies =
  [
    ("flush", Cache.Flush);
    ("modulo", Cache.Modulo);
    ("ring", Cache.Ring { vnodes = Cache.default_vnodes });
  ]

type phase_row = {
  strategy : string;
  phase : string;
  lookups : int;
  hit_rate : float;
  served_degraded : int;
  repaired_lazily : int;
  recomputed : int;
}

type remap_row = {
  strategy : string;
  shards : int;
  crashed_shards : int;
  remap_fraction : float;  (** nan for flush (no owner function) *)
}

type sim_row = {
  strategy : string;
  delivered : float;
  sim_hit_rate : float;
  sim_served_degraded : int;
  sim_repaired : int;
  sim_recomputed : int;
  evicted : int;
  flushed : int;
}

type rate_row = {
  strategy : string;
  keep : float;
  rate_delivered : float;
  rate_hit_rate : float;
  rate_recomputed : int;
}

let phase_names = [ "warm"; "churn"; "recovered" ]

let hit_rate_of (s : Cache.stats) =
  if s.Cache.lookups = 0 then 0.0
  else
    float_of_int (s.Cache.hits + s.Cache.served_degraded)
    /. float_of_int s.Cache.lookups

(* Shared scene for every strategy: scaled Internet topology, MaxSG broker
   order, Zipf-skewed endpoints. Brokers crashed by the churn are the m
   lowest-ranked alliance members, so dominated paths mostly survive and
   the experiment isolates cache policy rather than reachability. *)
let scene ctx =
  let sim_scale = Float.min (Ctx.scale ctx) 0.05 in
  let params =
    { (Broker_topo.Internet.scaled sim_scale) with seed = Ctx.seed ctx }
  in
  let topo = Broker_topo.Internet.generate params in
  let g = topo.Broker_topo.Topology.graph in
  let order = Broker_core.Maxsg.run_to_saturation g in
  let k =
    min (Array.length order) (max 8 (int_of_float (1000.0 *. sim_scale)))
  in
  let brokers = Array.sub order 0 k in
  let m = max 1 (k / 8) in
  let crashed = Array.sub order (k - m) m in
  (topo, g, brokers, crashed)

let compute ?(requests_per_phase = 4000) ctx =
  let _topo, g, brokers, crashed = scene ctx in
  let n = Broker_graph.Graph.n g in
  let model = Workload.zipf ~n () in
  let draw = Broker_util.Sampling.weighted_alias model.Broker_core.Traffic.masses in
  (* One request stream and one owner-sample key set, generated once and
     replayed for every strategy: the comparison below is on identical
     traffic. *)
  let req_rng = Ctx.rng ctx in
  let n_phases = List.length phase_names in
  let requests =
    Array.init (n_phases * requests_per_phase) (fun _ ->
        let src = draw req_rng in
        let dst = ref (draw req_rng) in
        while !dst = src do
          dst := draw req_rng
        done;
        (src, !dst))
  in
  let sample_rng = Ctx.rng ctx in
  let sample_keys =
    Array.init 1024 (fun _ ->
        let src = X.int sample_rng n in
        let dst = ref (X.int sample_rng n) in
        while !dst = src do
          dst := X.int sample_rng n
        done;
        (src, !dst))
  in
  let is_broker = Array.make n false in
  Array.iter (fun b -> is_broker.(b) <- true) brokers;
  let run_strategy (label, strategy) =
    let down = Array.make n false in
    let cache =
      Cache.create ~strategy ~seed:(Ctx.seed ctx lxor 0xCACE) ~n
        ~shards:brokers ()
    in
    let compute_path src dst =
      match
        Broker_core.Dominating.find_dominated_path g
          ~is_broker:(fun v -> is_broker.(v) && not down.(v))
          src dst
      with
      | [] -> None
      | path -> Some (Array.of_list path)
    in
    let run_phase idx name prev =
      for i = idx * requests_per_phase to ((idx + 1) * requests_per_phase) - 1
      do
        let src, dst = requests.(i) in
        ignore (Cache.find cache ~compute:(fun () -> compute_path src dst) src dst)
      done;
      let s = Cache.stats cache in
      ( {
          strategy = label;
          phase = name;
          lookups = s.Cache.lookups - prev.Cache.lookups;
          hit_rate =
            (let d = s.Cache.lookups - prev.Cache.lookups in
             if d = 0 then 0.0
             else
               float_of_int
                 (s.Cache.hits - prev.Cache.hits
                 + (s.Cache.served_degraded - prev.Cache.served_degraded))
               /. float_of_int d);
          served_degraded = s.Cache.served_degraded - prev.Cache.served_degraded;
          repaired_lazily = s.Cache.repaired_lazily - prev.Cache.repaired_lazily;
          recomputed = s.Cache.recomputed - prev.Cache.recomputed;
        },
        s )
    in
    let owners () = Array.map (fun (s, d) -> Cache.owner cache s d) sample_keys in
    let warm, after_warm = run_phase 0 "warm" (Cache.stats cache) in
    let owners_before = owners () in
    Array.iter (fun b -> down.(b) <- true) crashed;
    Array.iter (Cache.crash cache) crashed;
    let owners_after = owners () in
    let remapped = ref 0 in
    Array.iteri
      (fun i before ->
        let same =
          match (before, owners_after.(i)) with
          | None, None -> true
          | Some a, Some b -> a = b
          | None, Some _ | Some _, None -> false
        in
        if not same then incr remapped)
      owners_before;
    let remap =
      {
        strategy = label;
        shards = Array.length brokers;
        crashed_shards = Array.length crashed;
        remap_fraction =
          (match strategy with
          | Cache.Flush -> nan
          | Cache.Modulo | Cache.Ring _ ->
              float_of_int !remapped /. float_of_int (Array.length sample_keys));
      }
    in
    let churn, after_churn = run_phase 1 "churn" after_warm in
    Array.iter (fun b -> down.(b) <- false) crashed;
    Array.iter (Cache.recover cache) crashed;
    let recovered, _ = run_phase 2 "recovered" after_churn in
    ([ warm; churn; recovered ], remap)
  in
  let results = List.map run_strategy strategies in
  (List.concat_map fst results, List.map snd results)

let phase_schedule ~horizon ~crashed =
  Faults.phased
    [
      (0.4 *. horizon, [||]);
      (0.3 *. horizon, crashed);
      (0.3 *. horizon, [||]);
    ]

let compute_sim ?(n_sessions = 4000) ctx =
  let topo, g, brokers, crashed = scene ctx in
  let n = Broker_graph.Graph.n g in
  let model = Workload.zipf ~n () in
  let sessions =
    Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions
      Workload.default_params
  in
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Workload.arrival)
    +. 20.0
  in
  let faults = phase_schedule ~horizon ~crashed in
  let config = Sim.degree_capacity g ~factor:0.25 in
  List.map
    (fun (label, strategy) ->
      let chaos = Sim.default_chaos faults in
      let s = Sim.run ~chaos ~cache:strategy topo ~brokers ~sessions config in
      let c = s.Sim.cache in
      {
        strategy = label;
        delivered = Sim.delivered_rate s;
        sim_hit_rate = hit_rate_of c;
        sim_served_degraded = c.Cache.served_degraded;
        sim_repaired = c.Cache.repaired_lazily;
        sim_recomputed = c.Cache.recomputed;
        evicted = c.Cache.evicted;
        flushed = c.Cache.flushed;
      })
    strategies

let rate_keeps = [ 0.25; 1.0 ]

let compute_rates ?(n_sessions = 3000) ctx =
  let topo, g, brokers, _crashed = scene ctx in
  let n = Broker_graph.Graph.n g in
  let model = Workload.zipf ~n () in
  let sessions =
    Workload.generate ~rng:(Ctx.rng ctx) model ~n_sessions
      Workload.default_params
  in
  let horizon =
    (if Array.length sessions = 0 then 0.0
     else sessions.(Array.length sessions - 1).Workload.arrival)
    +. 20.0
  in
  let fault_seed = Ctx.seed ctx + 131 in
  let base =
    Faults.generate ~rng:(X.create fault_seed) topo ~brokers ~horizon
      (Faults.Independent { mtbf = horizon /. 8.0; mttr = 20.0 })
  in
  let config = Sim.degree_capacity g ~factor:0.25 in
  List.concat_map
    (fun keep ->
      let faults =
        Faults.thin ~rng:(X.create (fault_seed lxor 0x7a05)) ~keep base
      in
      List.map
        (fun (label, strategy) ->
          let chaos = Sim.default_chaos faults in
          let s =
            Sim.run ~chaos ~cache:strategy topo ~brokers ~sessions config
          in
          let c = s.Sim.cache in
          {
            strategy = label;
            keep;
            rate_delivered = Sim.delivered_rate s;
            rate_hit_rate = hit_rate_of c;
            rate_recomputed = c.Cache.recomputed;
          })
        strategies)
    rate_keeps

let report ctx =
  let rep = Report.create ~name:"ext_churn_cache" () in
  let s =
    Report.section rep
      "Extension - churn-resilient path cache: consistent hashing vs flush"
  in
  let phases, remaps = compute ctx in
  let pt =
    Report.table s ~key:"phases"
      ~columns:
        [
          Report.col "Strategy";
          Report.col "Phase";
          Report.col "Lookups";
          Report.col "Hit rate";
          Report.col "Degraded";
          Report.col "Repaired";
          Report.col "Recomputed";
        ]
      ()
  in
  List.iter
    (fun (r : phase_row) ->
      Report.row pt
        [
          Report.str r.strategy;
          Report.str r.phase;
          Report.int r.lookups;
          Report.pct r.hit_rate;
          Report.int r.served_degraded;
          Report.int r.repaired_lazily;
          Report.int r.recomputed;
        ])
    phases;
  Report.note s
    "Three-phase churn over Zipf-skewed pairs: all brokers up (warm), the\nlowest-ranked k/8 alliance members down (churn), everyone back\n(recovered). Hit rate counts degraded serves: a valid path riding an\noutage is still a cache win.\n";
  let rt =
    Report.table s ~key:"remap"
      ~columns:
        [
          Report.col "Strategy";
          Report.col "Shards";
          Report.col "Crashed";
          Report.col "Remapped keys";
        ]
      ()
  in
  List.iter
    (fun (r : remap_row) ->
      Report.row rt
        [
          Report.str r.strategy;
          Report.int r.shards;
          Report.int r.crashed_shards;
          (if Float.is_nan r.remap_fraction then Report.str "n/a"
           else Report.pct r.remap_fraction);
        ])
    remaps;
  Report.note s
    "Owner remap fraction over a fixed uniform key sample when the crashed\nshards leave: consistent hashing moves ~m/n of the keys, modulo\nreassignment moves almost all of them.\n";
  let st =
    Report.table s ~key:"sim"
      ~columns:
        [
          Report.col "Strategy";
          Report.col "Delivered";
          Report.col "Hit rate";
          Report.col "Degraded";
          Report.col "Repaired";
          Report.col "Recomputed";
          Report.col "Evicted";
          Report.col "Flushed";
        ]
      ()
  in
  List.iter
    (fun (r : sim_row) ->
      Report.row st
        [
          Report.str r.strategy;
          Report.pct r.delivered;
          Report.pct r.sim_hit_rate;
          Report.int r.sim_served_degraded;
          Report.int r.sim_repaired;
          Report.int r.sim_recomputed;
          Report.int r.evicted;
          Report.int r.flushed;
        ])
    (compute_sim ctx);
  Report.note s
    "Full flow-level simulation under the same three-phase schedule\n(Faults.phased): delivered sessions and cache outcomes per strategy.\n";
  let kt =
    Report.table s ~key:"rates"
      ~columns:
        [
          Report.col "Strategy";
          Report.col "Fault rate";
          Report.col "Delivered";
          Report.col "Hit rate";
          Report.col "Recomputed";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row kt
        [
          Report.str r.strategy;
          Report.strf "%.2fx" r.keep;
          Report.pct r.rate_delivered;
          Report.pct r.rate_hit_rate;
          Report.int r.rate_recomputed;
        ])
    (compute_rates ctx);
  Report.note s
    "Independent crash/recover churn (MTBF = horizon/8, MTTR = 20) thinned\nto the kept fraction, as in X7: sustained churn is where the sharded\nstrategies separate from flush-on-crash.\n";
  rep
