(** X8 (reproduction extension): path-cache resilience under broker churn.

    Reproduces the consistent-hashing-vs-static-assignment gap of the
    KoordeDHT churn experiment, for dominated paths instead of URLs: a
    three-phase churn schedule (all up → the m = k/8 lowest-ranked brokers
    down → all up) over Zipf-skewed (src, dst) pairs, replayed on the same
    request stream for every {!Broker_sim.Shard_cache} strategy. Four
    tables: per-phase hit rate / outcome counts, owner remap fraction
    across the crash, the same schedule through the full flow-level
    simulator ({!Broker_sim.Faults.phased}), and an X7-style thinned
    independent-churn rate sweep.

    Expected shape (asserted by the tests): warm-phase hit rates are
    identical across strategies; through the churn and recovered phases
    [Ring] holds a strictly higher hit rate than [Modulo]; the remap
    fraction is ≈ m/n for [Ring] vs ≈ 1 for [Modulo]. *)

val strategies : (string * Broker_sim.Shard_cache.strategy) list
(** [flush], [modulo], [ring] (with {!Broker_sim.Shard_cache.default_vnodes}),
    in report order. *)

type phase_row = {
  strategy : string;
  phase : string;  (** ["warm"], ["churn"] or ["recovered"] *)
  lookups : int;
  hit_rate : float;  (** (hits + degraded serves) / lookups, this phase *)
  served_degraded : int;
  repaired_lazily : int;
  recomputed : int;
}

type remap_row = {
  strategy : string;
  shards : int;  (** alliance size k *)
  crashed_shards : int;  (** m brokers taken down by the churn phase *)
  remap_fraction : float;
      (** owner changes over a fixed uniform key sample; [nan] for flush,
          which has no owner function *)
}

type sim_row = {
  strategy : string;
  delivered : float;
  sim_hit_rate : float;
  sim_served_degraded : int;
  sim_repaired : int;
  sim_recomputed : int;
  evicted : int;
  flushed : int;
}

type rate_row = {
  strategy : string;
  keep : float;
  rate_delivered : float;
  rate_hit_rate : float;
  rate_recomputed : int;
}

val phase_names : string list
(** [["warm"; "churn"; "recovered"]], in schedule order. *)

val compute :
  ?requests_per_phase:int -> Ctx.t -> phase_row list * remap_row list
(** Direct cache exercise (no simulator): per-strategy phase rows in
    {!phase_names} order, grouped by strategy in {!strategies} order, plus
    one remap row per strategy. Every strategy replays the identical
    request stream. Deterministic in the context's seed. *)

val compute_sim : ?n_sessions:int -> Ctx.t -> sim_row list
(** The same three-phase schedule through {!Broker_sim.Simulator.run}
    (one run per strategy, identical sessions and fault stream). *)

val rate_keeps : float list
(** Kept fractions of the independent-churn stream for the rate sweep. *)

val compute_rates : ?n_sessions:int -> Ctx.t -> rate_row list
(** X7-style thinned [Independent] churn × strategies, grouped by kept
    fraction in {!rate_keeps} order. *)

val report : Ctx.t -> Broker_report.Report.t
