module Report = Broker_report.Report
module Stats = Broker_util.Stats

type row = {
  name : string;
  mean_coreness : float;
  median_coreness : float;
  deep_core_share : float;
  edge_share : float;
  covered_fraction : float;
}

let compute ctx =
  let g = Ctx.graph ctx in
  let core = Broker_graph.Kcore.coreness g in
  let degeneracy = Array.fold_left max 0 core in
  let deep = 3 * degeneracy / 4 in
  let k = Ctx.scale_count ctx 1000 in
  let describe name brokers =
    let cs = Array.map (fun v -> float_of_int core.(v)) brokers in
    let total = float_of_int (max 1 (Array.length brokers)) in
    let count p = float_of_int (Array.fold_left (fun a v -> if p core.(v) then a + 1 else a) 0 brokers) in
    let cov = Broker_core.Coverage.create g in
    Array.iter (Broker_core.Coverage.add cov) brokers;
    {
      name;
      mean_coreness = Stats.mean cs;
      median_coreness = Stats.median cs;
      deep_core_share = count (fun c -> c >= deep) /. total;
      edge_share = count (fun c -> c <= 2) /. total;
      covered_fraction = Broker_core.Coverage.coverage_fraction cov;
    }
  in
  let maxsg = Array.sub (Ctx.maxsg_order ctx) 0 (min k (Array.length (Ctx.maxsg_order ctx))) in
  [
    describe "DB (degree)" (Broker_core.Baselines.db g ~k);
    describe "MaxSG" maxsg;
  ]

let report ctx =
  let rep = Report.create ~name:"fig4" () in
  let s =
    Report.section rep "Fig 4 - broker placement: core concentration vs edge coverage"
  in
  let t =
    Report.table s
      ~columns:
        [
          Report.col "Selection";
          Report.col "Mean coreness";
          Report.col "Median";
          Report.col "Deep-core %";
          Report.col "Edge %";
          Report.col "f(B)/|V|";
        ]
      ()
  in
  List.iter
    (fun r ->
      Report.row t
        [
          Report.str r.name;
          Report.float r.mean_coreness;
          Report.float r.median_coreness;
          Report.pct r.deep_core_share;
          Report.pct r.edge_share;
          Report.pct r.covered_fraction;
        ])
    (compute ctx);
  Report.note s
    "Paper: DB crowds the core leaving the edge uncovered; MaxSG covers the outer ring too.\n";
  rep
