module Report = Broker_report.Report
module Conn = Broker_core.Connectivity

type row = { name : string; brokers : int; curve : Conn.curve }

let compute ctx =
  let topo = Ctx.topo ctx in
  let g = Ctx.graph ctx in
  let k = Ctx.scale_count ctx 1000 in
  let eval name brokers =
    { name; brokers = Array.length brokers; curve = Ctx.curve ctx brokers }
  in
  let prefix order = Array.sub order 0 (min k (Array.length order)) in
  (* All-roots MCBG is quadratic in x*; at full scale use the single-root
     shortcut (ablation_beta quantifies the negligible difference). *)
  let all_roots = Ctx.scale ctx < 0.2 in
  let mcbg = Broker_core.Mcbg.run ~all_roots g ~k ~beta:4 in
  [
    eval "MCBG-approx" mcbg.Broker_core.Mcbg.brokers;
    eval "MaxSG" (prefix (Ctx.maxsg_order ctx));
    eval "Greedy-MCB" (prefix (Ctx.greedy_order ctx));
    eval "DB (degree)" (Broker_core.Baselines.db g ~k);
    eval "PRB (PageRank)" (Broker_core.Baselines.prb g ~k);
    eval "IXPB (all IXPs)" (Broker_core.Baselines.ixpb topo ~min_degree:0);
    eval "Tier1Only" (Broker_core.Baselines.tier1_only topo);
  ]

let report ctx =
  let rep = Report.create ~name:"fig2b" () in
  let s = Report.section rep "Fig 2b - l-hop connectivity per selection algorithm" in
  let columns =
    Report.col "Algorithm" :: Report.col "k"
    :: List.map (fun l -> Report.col (Printf.sprintf "l=%d" l)) [ 2; 3; 4; 5; 6 ]
    @ [ Report.col "saturated" ]
  in
  let t = Report.table s ~columns () in
  List.iter
    (fun r ->
      Report.row t
        (Report.str r.name :: Report.int r.brokers
         :: List.map (fun l -> Report.pct (Conn.value_at r.curve l)) [ 2; 3; 4; 5; 6 ]
        @ [ Report.pct r.curve.Conn.saturated ]))
    (compute ctx);
  Report.note s
    "Paper at ~1,000 brokers: approx 85.71%, MaxSG within 0.5% of approx, DB 72.53%, IXPB <= 15.70%, Tier1Only worse.\n";
  rep
