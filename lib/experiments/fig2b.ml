module Table = Broker_util.Table
module Conn = Broker_core.Connectivity

type row = { name : string; brokers : int; curve : Conn.curve }

let compute ctx =
  let topo = Ctx.topo ctx in
  let g = Ctx.graph ctx in
  let k = Ctx.scale_count ctx 1000 in
  let eval name brokers =
    { name; brokers = Array.length brokers; curve = Ctx.curve ctx brokers }
  in
  let prefix order = Array.sub order 0 (min k (Array.length order)) in
  (* All-roots MCBG is quadratic in x*; at full scale use the single-root
     shortcut (ablation_beta quantifies the negligible difference). *)
  let all_roots = Ctx.scale ctx < 0.2 in
  let mcbg = Broker_core.Mcbg.run ~all_roots g ~k ~beta:4 in
  [
    eval "MCBG-approx" mcbg.Broker_core.Mcbg.brokers;
    eval "MaxSG" (prefix (Ctx.maxsg_order ctx));
    eval "Greedy-MCB" (prefix (Ctx.greedy_order ctx));
    eval "DB (degree)" (Broker_core.Baselines.db g ~k);
    eval "PRB (PageRank)" (Broker_core.Baselines.prb g ~k);
    eval "IXPB (all IXPs)" (Broker_core.Baselines.ixpb topo ~min_degree:0);
    eval "Tier1Only" (Broker_core.Baselines.tier1_only topo);
  ]

let run ctx =
  Ctx.section "Fig 2b - l-hop connectivity per selection algorithm";
  let headers =
    "Algorithm" :: "k"
    :: List.map (fun l -> Printf.sprintf "l=%d" l) [ 2; 3; 4; 5; 6 ]
    @ [ "saturated" ]
  in
  let t = Table.create ~headers in
  List.iter
    (fun r ->
      Table.add_row t
        (r.name :: Table.cell_int r.brokers
         :: List.map (fun l -> Table.cell_pct (Conn.value_at r.curve l)) [ 2; 3; 4; 5; 6 ]
        @ [ Table.cell_pct r.curve.Conn.saturated ]))
    (compute ctx);
  Ctx.table t;
  Ctx.printf
    "Paper at ~1,000 brokers: approx 85.71%%, MaxSG within 0.5%% of approx, DB 72.53%%, IXPB <= 15.70%%, Tier1Only worse.\n"
