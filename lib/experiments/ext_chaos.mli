(** X7 (reproduction extension): availability vs failure rate under chaos.

    Sweeps the kept fraction of a max-rate per-broker failure process over
    alliance sizes k ∈ {100, 1000, 3540} (scaled), running the flow-level
    simulator with the fault stream injected, failover both on and off on
    the {e same} stream. Thinning couples the sweep points (nested outage
    sets), so availability degrades monotonically in the fault rate
    sample-wise. A second table ablates the per-broker admission circuit
    breaker under deliberate overload. *)

type row = {
  k : int;  (** alliance size actually used (scaled, clamped) *)
  keep : float;  (** kept fraction of the max-rate fault stream *)
  availability : float;  (** 1 − downtime / (k · horizon) *)
  delivered_on : float;  (** delivered rate with failover *)
  delivered_off : float;  (** delivered rate without failover *)
  failed_over : int;  (** successful mid-flight reroutes (failover run) *)
  dropped_off : int;  (** mid-flight drops in the no-failover run *)
}

val keeps : float list
(** The fault-rate sweep: kept fractions, ascending, starting at 0. *)

val compute : ?n_sessions:int -> Ctx.t -> row list
(** Rows grouped by k (in {!keeps} order within each k). Deterministic in
    the context's seed. *)

val report : Ctx.t -> Broker_report.Report.t
