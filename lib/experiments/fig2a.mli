(** Fig. 2a: CDF of the broker-set size produced by the Set Cover baseline
    over 300 random-order runs — always ~100% coverage but at an enormous
    (paper: ~40,000 nodes, >76% of the network) alliance size. *)

type result = {
  runs : int;
  sizes : float array;
  mean_fraction : float;  (** mean set size / |V| *)
}

val compute : ?runs:int -> Ctx.t -> result
val report : Ctx.t -> Broker_report.Report.t
