(** Section 7.2: Shapley-value revenue division and coalition stability.

    The characteristic function is topology-derived: a broker subset S
    earns revenue proportional to the fraction of E2E pairs it can serve,
    v(S) = (f(S)/|V|)² — pair coverage exhibits the "network externality"
    the paper describes: marginal contributions first grow (supermodular
    phase — strong stability), then decay once the important ASes are in
    (the signal to stop growing B). Runs on a small (~1,000-node) topology
    so the 2^n subset enumeration stays exact. *)

type result = {
  players : int;
  shapley : float array;
  efficiency_gap : float;
  superadditive : Broker_econ.Coalition.check;
  supermodular : Broker_econ.Coalition.check;
  individually_rational : bool;
  group_rational : Broker_econ.Coalition.check;
  supermodularity_break : int option;
      (** prefix size where marginal contributions start decaying, over the
          MaxSG growth sequence *)
}

val compute : ?players:int -> Ctx.t -> result
val report : Ctx.t -> Broker_report.Report.t
