(** Shared context for the table/figure reproductions: the topology, the
    expensive broker orderings, and the evaluation budget. Everything is
    derived deterministically from [seed] and [scale].

    Environment knobs (read by {!from_env}):
    - [REPRO_SCALE] — topology scale factor in (0, 1], default 1.0 (the
      paper's full 52,079 nodes);
    - [REPRO_SOURCES] — BFS sources of the sampled connectivity estimator,
      default 192;
    - [REPRO_SEED] — master seed, default 42. *)

type t

val create : ?scale:float -> ?sources:int -> ?seed:int -> unit -> t
val from_env : unit -> t

val scale : t -> float
val sources : t -> int
val seed : t -> int

val rng : t -> Broker_util.Xrandom.t
(** A fresh deterministic RNG stream (distinct per call). *)

val params : t -> Broker_topo.Internet.params
val topo : t -> Broker_topo.Topology.t
(** Generated once and cached. *)

val graph : t -> Broker_graph.Graph.t

val maxsg_order : t -> int array
(** MaxSG run to saturation (cached); prefixes give every budget. *)

val greedy_order : t -> int array
(** CELF greedy MCB ordering up to the saturation size of MaxSG (cached). *)

val scale_count : t -> int -> int
(** Scale a paper-quoted count (e.g. 3,540 brokers) by the topology scale,
    min 1. *)

val saturated : t -> brokers:int array -> float
(** Saturated E2E connectivity of a broker set, with the context's source
    budget and a fixed source sample (common random numbers across calls,
    so differences between broker sets are low-variance). *)

val curve : t -> ?l_max:int -> int array -> Broker_core.Connectivity.curve
(** [curve t brokers]: l-hop connectivity curve of the broker set, on the
    context's fixed source sample. [l_max] defaults to 10. *)

val directional_sources : t -> int array
(** Fixed source sample (<= 96 vertices) for the valley-free evaluations —
    shared across Fig. 5b/5c rows so upgrade levels and broker budgets are
    compared with common random numbers. *)

val quick_saturated : t -> brokers:int array -> float
(** Like {!saturated} but with a smaller fixed source sample (64), for
    experiments that evaluate hundreds of candidate broker sets (Fig. 3).
    Still common-random-numbers across calls. *)

val free_curve : t -> Broker_core.Connectivity.curve
(** Unrestricted ("ASesWithIXPs") curve, cached. *)

(** Note: [Ctx] carries no output state. Experiments build a
    {!Broker_report.Report.t} and the harness picks a backend
    ({!Broker_report.Report_text} for the terminal, [Report_json] /
    [Report_csv] for artifacts). *)
