module Report = Broker_report.Report
module Stats = Broker_util.Stats

type result = { runs : int; sizes : float array; mean_fraction : float }

let compute ?(runs = 300) ctx =
  let g = Ctx.graph ctx in
  let rng = Ctx.rng ctx in
  let n = float_of_int (Broker_graph.Graph.n g) in
  let sizes =
    Array.init runs (fun _ ->
        float_of_int (Array.length (Broker_core.Baselines.set_cover ~rng g)))
  in
  { runs; sizes; mean_fraction = Stats.mean sizes /. n }

let report ctx =
  let rep = Report.create ~name:"fig2a" () in
  let sec =
    Report.section rep "Fig 2a - CDF of Set-Cover broker set sizes (300 runs)"
  in
  let r = compute ctx in
  let s = Stats.summarize r.sizes in
  let quantiles =
    [ ("min", 0.0); ("p10", 0.1); ("p50", 0.5); ("p90", 0.9); ("max", 1.0) ]
  in
  let t =
    Report.table sec
      ~columns:[ Report.col "Quantile"; Report.col ~unit:"nodes" "Set size" ]
      ()
  in
  List.iter
    (fun (name, q) ->
      Report.row t
        [ Report.str name; Report.int (int_of_float (Stats.quantile r.sizes q)) ])
    quantiles;
  Report.series sec ~key:"size_cdf" ~x:"quantile" ~y:"set_size"
    (Array.of_list
       (List.map (fun (_, q) -> (q, Stats.quantile r.sizes q)) quantiles));
  Report.metric sec ~key:"mean_fraction" r.mean_fraction;
  Report.metricf sec ~key:"mean_size" s.Stats.mean
    "Mean SC alliance: %.0f nodes = %.1f%% of the network over %d runs (paper: ~40,000 nodes, >76%%).\n"
    s.Stats.mean (100.0 *. r.mean_fraction) r.runs;
  rep
