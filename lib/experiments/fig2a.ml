module Table = Broker_util.Table
module Stats = Broker_util.Stats

type result = { runs : int; sizes : float array; mean_fraction : float }

let compute ?(runs = 300) ctx =
  let g = Ctx.graph ctx in
  let rng = Ctx.rng ctx in
  let n = float_of_int (Broker_graph.Graph.n g) in
  let sizes =
    Array.init runs (fun _ ->
        float_of_int (Array.length (Broker_core.Baselines.set_cover ~rng g)))
  in
  { runs; sizes; mean_fraction = Stats.mean sizes /. n }

let run ctx =
  Ctx.section "Fig 2a - CDF of Set-Cover broker set sizes (300 runs)";
  let r = compute ctx in
  let s = Stats.summarize r.sizes in
  let t = Table.create ~headers:[ "Quantile"; "Set size" ] in
  List.iter
    (fun (name, q) ->
      Table.add_row t [ name; Table.cell_int (int_of_float (Stats.quantile r.sizes q)) ])
    [ ("min", 0.0); ("p10", 0.1); ("p50", 0.5); ("p90", 0.9); ("max", 1.0) ];
  Ctx.table t;
  Ctx.printf
    "Mean SC alliance: %.0f nodes = %.1f%% of the network over %d runs (paper: ~40,000 nodes, >76%%).\n"
    s.Stats.mean (100.0 *. r.mean_fraction) r.runs
