(** Gao–Rexford routing policies over AS business relationships.

    A path is valley-free when it consists of zero or more
    customer→provider hops, at most one peering hop, then zero or more
    provider→customer hops. IXP fabric nodes are transparent: traversing
    AS→IXP→AS forms a single peering segment (DESIGN.md §5). *)

type hop_class =
  | Up  (** customer → provider *)
  | Down  (** provider → customer *)
  | Flat  (** settlement-free peering (or unknown, treated as peering) *)
  | Into_fabric  (** AS → IXP *)
  | Out_of_fabric  (** IXP → AS *)

val classify : Broker_topo.Topology.t -> int -> int -> hop_class
(** Classification of the directed hop [u → v].
    @raise Invalid_argument when [(u,v)] is not an edge of the topology. *)

val valley_free : Broker_topo.Topology.t -> int list -> bool
(** Whether a vertex path obeys the valley-free rule. Paths shorter than 2
    vertices are trivially valid; non-edges make the path invalid. *)

val exports_to : Broker_topo.Topology.t -> learned_from:hop_class -> toward:hop_class -> bool
(** The Gao–Rexford export filter: a route learned from a customer ([Down]
    hop toward us... expressed from the exporter's perspective) is exported
    to everyone; routes learned from peers or providers are exported to
    customers only. [learned_from]/[toward] classify the exporter's view of
    the neighbor the route came from / goes to. *)
