(** BGP-like route computation under Gao–Rexford policies.

    For a destination [d], every AS selects its most-preferred valley-free
    route: customer routes over peer routes over provider routes, shortest
    AS path within a class — the standard abstraction of BGP decision
    making. Computed with three BFS passes per destination:

    + customer routes: ascend provider links from [d];
    + peer routes: one peering hop off a customer route;
    + provider routes: descend customer links from any routed AS.

    The paper's claim that BGP cannot guarantee E2E QoS beyond the first
    hop motivates the broker scheme; this module supplies the BGP baseline
    paths the examples compare against. *)

type route_class = Via_customer | Via_peer | Via_provider

type route = { hops : int; via : route_class }

val routes_to : Broker_topo.Topology.t -> int -> route option array
(** [routes_to topo d] gives every vertex's selected route toward [d]
    ([None] when no policy-compliant route exists; the destination itself
    has [hops = 0, via = Via_customer]). IXP nodes participate as
    transparent fabrics: their memberships behave as peerings. *)

val reachable_fraction :
  rng:Broker_util.Xrandom.t -> destinations:int -> Broker_topo.Topology.t -> float
(** Fraction of ordered pairs with a policy-compliant BGP route, estimated
    over sampled destinations. *)

val average_path_length :
  rng:Broker_util.Xrandom.t -> destinations:int -> Broker_topo.Topology.t -> float
(** Mean selected-route length over reachable sampled pairs. *)
