type segment =
  | Ingress of int
  | Broker_hop of int * int
  | Employee_hop of int * int * int
  | Egress of int

type stitched = {
  path : int list;
  segments : segment list;
  employees : int list;
  hops : int;
}

let stitch g ~is_broker ~src ~dst =
  match Broker_core.Dominating.find_dominated_path g ~is_broker src dst with
  | [] -> None
  | path ->
      let arr = Array.of_list path in
      let m = Array.length arr in
      let segments = ref [] in
      let employees = ref [] in
      let i = ref 0 in
      while !i < m - 1 do
        let u = arr.(!i) and v = arr.(!i + 1) in
        if u = src && not (is_broker u) then begin
          segments := Ingress v :: !segments;
          incr i
        end
        else if v = dst && not (is_broker v) then begin
          segments := Egress u :: !segments;
          incr i
        end
        else if is_broker u && is_broker v then begin
          segments := Broker_hop (u, v) :: !segments;
          incr i
        end
        else if is_broker u && (not (is_broker v)) && !i + 2 < m && is_broker arr.(!i + 2)
        then begin
          (* Non-broker v is dominated on both sides: a hired employee. *)
          segments := Employee_hop (u, v, arr.(!i + 2)) :: !segments;
          if not (List.mem v !employees) then employees := v :: !employees;
          i := !i + 2
        end
        else begin
          (* Mixed hop with a broker endpoint (e.g. broker → non-broker
             destination-side vertex). Record as ingress/egress-like broker
             hop. *)
          segments := Broker_hop (u, v) :: !segments;
          incr i
        end
      done;
      Some
        {
          path;
          segments = List.rev !segments;
          employees = List.rev !employees;
          hops = m - 1;
        }

let total_employee_hops s =
  List.fold_left
    (fun acc seg ->
      match seg with
      | Employee_hop _ -> acc + 2
      | Ingress _ | Broker_hop _ | Egress _ -> acc)
    0 s.segments
