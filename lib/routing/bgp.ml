module T = Broker_topo.Topology
module G = Broker_graph.Graph
module Rel = Broker_topo.Node_meta.Relations

type route_class = Via_customer | Via_peer | Via_provider

type route = { hops : int; via : route_class }

(* Customer routes: BFS from d along customer→provider arcs (a provider
   inherits a customer route from each customer it serves). *)
let customer_pass topo d =
  let g = topo.T.graph in
  let n = G.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(d) <- 0;
  queue.(!tail) <- d;
  incr tail;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    G.iter_neighbors g u (fun p ->
        (* u is a customer of p: p learns the route from its customer u. *)
        if dist.(p) < 0 && Rel.customer_of topo.T.relations u p then begin
          dist.(p) <- dist.(u) + 1;
          queue.(!tail) <- p;
          incr tail
        end)
  done;
  dist

(* Peer routes: one peering segment off a neighbor's customer route —
   either a direct peering edge (1 hop) or an AS→IXP→AS crossing (2
   hops). Per-IXP minima make the fabric scan linear. *)
let peer_pass topo dist_c =
  let g = topo.T.graph in
  let n = G.n g in
  let dist = Array.make n (-1) in
  (* For each IXP: the two best customer-route distances among members
     (two, so a member does not route through itself). *)
  let ixp_best = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let best1 = ref (max_int, -1) and best2 = ref (max_int, -1) in
      G.iter_neighbors g x (fun w ->
          if T.is_as topo w && dist_c.(w) >= 0 then begin
            if dist_c.(w) < fst !best1 then begin
              best2 := !best1;
              best1 := (dist_c.(w), w)
            end
            else if dist_c.(w) < fst !best2 then best2 := (dist_c.(w), w)
          end);
      Hashtbl.replace ixp_best x (!best1, !best2))
    (T.ixps topo);
  for v = 0 to n - 1 do
    if T.is_as topo v && dist_c.(v) < 0 then begin
      let best = ref max_int in
      G.iter_neighbors g v (fun w ->
          if T.is_ixp topo w then begin
            match Hashtbl.find_opt ixp_best w with
            | Some ((d1, w1), (d2, _)) ->
                let d = if w1 = v then d2 else d1 in
                if d < max_int && d + 2 < !best then best := d + 2
            | None -> ()
          end
          else if Rel.peers topo.T.relations v w && dist_c.(w) >= 0 then
            if dist_c.(w) + 1 < !best then best := dist_c.(w) + 1);
      if !best < max_int then dist.(v) <- !best
    end
  done;
  dist

(* Provider routes: descend provider→customer arcs from any routed AS, in
   increasing distance order (distances differ, so a heap orders the
   relaxation). *)
let provider_pass topo dist_c dist_p =
  let g = topo.T.graph in
  let n = G.n g in
  let dist = Array.make n (-1) in
  let heap = Broker_util.Heap.create ~initial_capacity:1024 Broker_util.Heap.Min in
  let seed v d = Broker_util.Heap.push heap ~priority:(float_of_int d) v in
  for v = 0 to n - 1 do
    let d =
      if dist_c.(v) >= 0 then dist_c.(v)
      else if dist_p.(v) >= 0 then dist_p.(v)
      else -1
    in
    if d >= 0 then seed v d
  done;
  let settled = Array.make n false in
  let continue = ref true in
  while !continue do
    match Broker_util.Heap.pop heap with
    | None -> continue := false
    | Some (fd, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          let d = int_of_float fd in
          (* The route propagates from provider u to its customers only. *)
          G.iter_neighbors g u (fun c ->
              if (not settled.(c)) && Rel.provider_of topo.T.relations u c then begin
                let nd = d + 1 in
                if dist.(c) < 0 || nd < dist.(c) then begin
                  dist.(c) <- nd;
                  seed c nd
                end
              end)
        end
  done;
  (* Remove entries that merely echo a better-class route. *)
  for v = 0 to n - 1 do
    if dist_c.(v) >= 0 || dist_p.(v) >= 0 then dist.(v) <- -1
  done;
  dist

let routes_to topo d =
  let dist_c = customer_pass topo d in
  let dist_p = peer_pass topo dist_c in
  let dist_pr = provider_pass topo dist_c dist_p in
  Array.init (T.n topo) (fun v ->
      if dist_c.(v) >= 0 then Some { hops = dist_c.(v); via = Via_customer }
      else if dist_p.(v) >= 0 then Some { hops = dist_p.(v); via = Via_peer }
      else if dist_pr.(v) >= 0 then Some { hops = dist_pr.(v); via = Via_provider }
      else None)

let sample_routes ~rng ~destinations topo f =
  let as_nodes = T.ases topo in
  let n = Array.length as_nodes in
  let k = min destinations n in
  let idx = Broker_util.Sampling.without_replacement rng ~n ~k in
  Array.iter (fun i -> f as_nodes.(i) (routes_to topo as_nodes.(i))) idx

let reachable_fraction ~rng ~destinations topo =
  let reached = ref 0 and total = ref 0 in
  sample_routes ~rng ~destinations topo (fun d routes ->
      Array.iteri
        (fun v r ->
          if v <> d && T.is_as topo v then begin
            incr total;
            if r <> None then incr reached
          end)
        routes);
  if !total = 0 then 0.0 else float_of_int !reached /. float_of_int !total

let average_path_length ~rng ~destinations topo =
  let sum = ref 0 and count = ref 0 in
  sample_routes ~rng ~destinations topo (fun d routes ->
      Array.iteri
        (fun v r ->
          match r with
          | Some { hops; _ } when v <> d && T.is_as topo v ->
              sum := !sum + hops;
              incr count
          | Some _ | None -> ())
        routes);
  if !count = 0 then 0.0 else float_of_int !sum /. float_of_int !count
