(** Explicit construction of broker-mediated end-to-end paths.

    The brokerage framework carries traffic from a source AS into the
    broker mesh at the first hop, across brokers (hiring a non-broker
    "employee" AS where two brokers lack a direct link — the Fig. 6
    business model), and out to the destination at the last hop. This
    module materializes such a path and itemizes who gets paid. *)

type segment =
  | Ingress of int  (** source → first broker *)
  | Broker_hop of int * int  (** broker → broker direct link *)
  | Employee_hop of int * int * int  (** broker → hired non-broker → broker *)
  | Egress of int  (** last broker → destination *)

type stitched = {
  path : int list;  (** full vertex path, source to destination *)
  segments : segment list;
  employees : int list;  (** distinct hired non-broker ASes *)
  hops : int;
}

val stitch :
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  src:int ->
  dst:int ->
  stitched option
(** Shortest B-dominated path decorated with its business segments. [None]
    when no dominated path exists. Adjacent [src]-[dst] pairs where either
    endpoint is a broker yield a direct 1-hop result. *)

val total_employee_hops : stitched -> int
