(** Per-link latency model and latency-aware dominated-path selection.

    The paper's brokers take responsibility for "network performance
    measurement" — this module gives them something to measure. Latencies
    are drawn per undirected edge from relation-dependent bases (IXP fabric
    hops are fastest, peering links fast, transit links slower) with
    multiplicative jitter, deterministically from the RNG. The QoS path
    for a pair is then the minimum-latency B-dominated path, which can
    differ from the minimum-hop one. *)

type t

val assign : rng:Broker_util.Xrandom.t -> Broker_topo.Topology.t -> t
(** Draw a latency for every edge. Bases (ms): IXP membership 2, peering
    5, customer-provider 10, unknown 8; jitter multiplies by U[0.5, 1.5]. *)

val edge_latency : t -> int -> int -> float
(** Latency of an edge in ms.
    @raise Not_found when [(u,v)] is not an edge. *)

val path_latency : t -> int list -> float
(** Sum over consecutive hops. 0 for paths shorter than 2 vertices. *)

val min_latency_path :
  t ->
  Broker_topo.Topology.t ->
  is_broker:(int -> bool) ->
  src:int ->
  dst:int ->
  (int list * float) option
(** Minimum-latency B-dominated path and its latency, or [None] when no
    dominated path exists. *)

val stretch :
  t ->
  Broker_topo.Topology.t ->
  is_broker:(int -> bool) ->
  src:int ->
  dst:int ->
  float option
(** Latency of the best dominated path over the latency of the best
    unrestricted path (>= 1); [None] when either does not exist. *)
