module G = Broker_graph.Graph
module T = Broker_topo.Topology
module Rel = Broker_topo.Node_meta.Relations

type t = { tbl : (int * int, float) Hashtbl.t }

let key u v = if u < v then (u, v) else (v, u)

let assign ~rng topo =
  let g = topo.T.graph in
  let tbl = Hashtbl.create (2 * G.m g) in
  G.iter_edges g (fun u v ->
      let base =
        match Rel.find topo.T.relations u v with
        | Some Broker_topo.Node_meta.Ixp_member -> 2.0
        | Some Broker_topo.Node_meta.Peer -> 5.0
        | Some Broker_topo.Node_meta.Customer_provider -> 10.0
        | None -> 8.0
      in
      let jitter = 0.5 +. Broker_util.Xrandom.float rng 1.0 in
      Hashtbl.replace tbl (key u v) (base *. jitter));
  { tbl }

let edge_latency t u v = Hashtbl.find t.tbl (key u v)

let path_latency t path =
  let rec go acc = function
    | u :: (v :: _ as rest) -> go (acc +. edge_latency t u v) rest
    | [ _ ] | [] -> acc
  in
  go 0.0 path

let min_latency_path t topo ~is_broker ~src ~dst =
  let g = topo.T.graph in
  let edge_ok u v = is_broker u || is_broker v in
  let weight u v = edge_latency t u v in
  match Broker_graph.Dijkstra.shortest_path ~edge_ok g ~weight src dst with
  | [] -> None
  | path -> Some (path, path_latency t path)

let stretch t topo ~is_broker ~src ~dst =
  let g = topo.T.graph in
  let weight u v = edge_latency t u v in
  match
    ( min_latency_path t topo ~is_broker ~src ~dst,
      Broker_graph.Dijkstra.shortest_path g ~weight src dst )
  with
  | Some (_, dominated), (_ :: _ as free) ->
      let free_latency = path_latency t free in
      if free_latency <= 0.0 then None else Some (dominated /. free_latency)
  | _, _ -> None
