module T = Broker_topo.Topology
module Rel = Broker_topo.Node_meta.Relations

type hop_class = Up | Down | Flat | Into_fabric | Out_of_fabric

let classify topo u v =
  if not (Broker_graph.Graph.mem_edge topo.T.graph u v) then
    invalid_arg "Policy.classify: not an edge";
  if T.is_ixp topo v then Into_fabric
  else if T.is_ixp topo u then Out_of_fabric
  else if Rel.customer_of topo.T.relations u v then Up
  else if Rel.provider_of topo.T.relations u v then Down
  else Flat

(* State machine: 0 = ascending, 1 = descending. The single permitted
   "peak" is a Flat hop or an AS→IXP→AS fabric crossing. *)
let valley_free topo path =
  let rec walk state = function
    | u :: (v :: _ as rest) ->
        if not (Broker_graph.Graph.mem_edge topo.T.graph u v) then false
        else begin
          match (classify topo u v, state) with
          | Up, 0 -> walk 0 rest
          | Up, _ -> false
          | Down, _ -> walk 1 rest
          | Flat, 0 -> walk 1 rest
          | Flat, _ -> false
          | Into_fabric, 0 -> walk 0 rest
          | Into_fabric, _ -> false
          | Out_of_fabric, 0 -> walk 1 rest
          | Out_of_fabric, _ -> false
        end
    | [ _ ] | [] -> true
  in
  walk 0 path

let exports_to _topo ~learned_from ~toward =
  (* From the exporter's point of view: a route learned from a customer
     (the neighbor below us: our [Down] direction) goes to everyone; routes
     learned from peers or providers go to customers only. *)
  let from_customer = match learned_from with Down -> true | Up | Flat | Into_fabric | Out_of_fabric -> false in
  let to_customer = match toward with Down -> true | Up | Flat | Into_fabric | Out_of_fabric -> false in
  from_customer || to_customer
