module G = Broker_graph.Graph
module Heap = Broker_util.Heap
module Bitset = Broker_util.Bitset

(* Bounded BFS visiting the r-ball of [v]; calls [f] on each ball member
   (including v). Reuses scratch arrays across calls. *)
let ball_iter g ~radius ~dist ~queue v f =
  let head = ref 0 and tail = ref 0 in
  let visited = ref [] in
  let push u d =
    dist.(u) <- d;
    visited := u :: !visited;
    queue.(!tail) <- u;
    incr tail
  in
  push v 0;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    f u;
    if dist.(u) < radius then
      G.iter_neighbors g u (fun w -> if dist.(w) < 0 then push w (dist.(u) + 1))
  done;
  List.iter (fun u -> dist.(u) <- -1) !visited

let covered_within g ~brokers ~radius =
  let n = G.n g in
  let covered = Bitset.create n in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  Array.iter
    (fun b -> ball_iter g ~radius ~dist ~queue b (fun u -> Bitset.add covered u))
    brokers;
  Bitset.cardinal covered

let run g ~k ~radius =
  if radius < 1 then invalid_arg "Bounded_coverage.run: radius >= 1";
  let n = G.n g in
  if n = 0 || k <= 0 then [||]
  else begin
    let dist = Array.make n (-1) in
    let queue = Array.make n 0 in
    let covered = Bitset.create n in
    (* Dominated region (1-hop coverage) constrains candidacy, as in
       MaxSG, so the result keeps the mutual-domination guarantee. *)
    let dominated = Bitset.create n in
    let brokers = ref [] in
    let n_brokers = ref 0 in
    let is_broker = Bitset.create n in
    let gain v =
      let acc = ref 0 in
      ball_iter g ~radius ~dist ~queue v (fun u ->
          if not (Bitset.mem covered u) then incr acc);
      !acc
    in
    let heap = Heap.create ~initial_capacity:256 Heap.Max in
    let cached = Array.make n (-1) in
    let enqueued = Array.make n false in
    let priority gain v =
      (float_of_int gain *. float_of_int (n + 1)) +. float_of_int (n - v)
    in
    let enqueue v =
      if (not enqueued.(v)) && not (Bitset.mem is_broker v) then begin
        enqueued.(v) <- true;
        let gn = gain v in
        cached.(v) <- gn;
        if gn > 0 then Heap.push heap ~priority:(priority gn v) v
      end
    in
    let add v =
      Bitset.add is_broker v;
      brokers := v :: !brokers;
      incr n_brokers;
      ball_iter g ~radius ~dist ~queue v (fun u -> Bitset.add covered u);
      if not (Bitset.mem dominated v) then begin
        Bitset.add dominated v;
        enqueue v
      end;
      G.iter_neighbors g v (fun w ->
          if not (Bitset.mem dominated w) then begin
            Bitset.add dominated w;
            enqueue w
          end
          else enqueue w)
    in
    (* Seed: maximum-degree vertex. *)
    let seed = ref 0 in
    for v = 1 to n - 1 do
      if G.degree g v > G.degree g !seed then seed := v
    done;
    add !seed;
    let continue = ref true in
    while !continue && !n_brokers < k do
      match Heap.pop heap with
      | None -> continue := false
      | Some (_, v) ->
          if not (Bitset.mem is_broker v) then begin
            let fresh = gain v in
            if fresh = cached.(v) then begin
              if fresh = 0 then continue := false else add v
            end
            else begin
              cached.(v) <- fresh;
              if fresh > 0 then Heap.push heap ~priority:(priority fresh v) v
            end
          end
    done;
    (* Densify: leftover budget goes to dominated-region coverage picks,
       preserving the mutual-domination property. *)
    if !n_brokers < k then begin
      let cov = Coverage.create g in
      List.iter (fun v -> Coverage.add cov v) (List.rev !brokers);
      Maxsg.grow cov ~k;
      Coverage.brokers cov
    end
    else begin
      let out = Array.make !n_brokers 0 in
      let i = ref (!n_brokers - 1) in
      List.iter
        (fun v ->
          out.(!i) <- v;
          decr i)
        !brokers;
      out
    end
  end
