module G = Broker_graph.Graph

let is_dominated_path ~is_broker path =
  let rec check = function
    | u :: (v :: _ as rest) -> (is_broker u || is_broker v) && check rest
    | [ _ ] | [] -> true
  in
  check path

let find_dominated_path_view vw ~is_broker u v =
  let edge_ok = Connectivity.edge_ok ~is_broker in
  let n = Broker_graph.View.n vw in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  seen.(u) <- true;
  queue.(!tail) <- u;
  incr tail;
  while !head < !tail && not seen.(v) do
    let x = queue.(!head) in
    incr head;
    Broker_graph.View.iter_neighbors vw x (fun y ->
        if (not seen.(y)) && edge_ok x y then begin
          seen.(y) <- true;
          parent.(y) <- x;
          queue.(!tail) <- y;
          incr tail
        end)
  done;
  if not seen.(v) then []
  else begin
    let rec walk x acc = if x = u then u :: acc else walk parent.(x) (x :: acc) in
    walk v []
  end

let find_dominated_path g ~is_broker u v =
  find_dominated_path_view (Broker_graph.View.of_graph g) ~is_broker u v

type broker_only = {
  broker_only_pairs : float;
  saturated_pairs : float;
  ratio : float;
}

let broker_only_fraction ~rng ~sources g ~brokers =
  let n = G.n g in
  let is_broker = Connectivity.of_brokers ~n brokers in
  (* Components of the broker-induced subgraph. *)
  let uf = Broker_util.Union_find.create n in
  Array.iter
    (fun b -> G.iter_neighbors g b (fun w -> if is_broker w then ignore (Broker_util.Union_find.union uf b w)))
    brokers;
  let comp_id = Hashtbl.create 64 in
  let next_id = ref 0 in
  let id_of root =
    match Hashtbl.find_opt comp_id root with
    | Some id -> id
    | None ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace comp_id root id;
        id
  in
  (* Per-vertex list of adjacent broker components (deduplicated). *)
  let adj_comps =
    Array.init n (fun v ->
        let acc = ref [] in
        let push b =
          let id = id_of (Broker_util.Union_find.find uf b) in
          if not (List.mem id !acc) then acc := id :: !acc
        in
        if is_broker v then push v;
        G.iter_neighbors g v (fun w -> if is_broker w then push w);
        Array.of_list !acc)
  in
  let n_comps = !next_id in
  let mark = Array.make (max n_comps 1) (-1) in
  let k = min sources n in
  let srcs = Broker_util.Sampling.without_replacement rng ~n ~k in
  let broker_only = ref 0 and total = ref 0 in
  Array.iteri
    (fun stamp u ->
      Array.iter (fun c -> mark.(c) <- stamp) adj_comps.(u);
      for v = 0 to n - 1 do
        if v <> u then begin
          incr total;
          if Array.exists (fun c -> mark.(c) = stamp) adj_comps.(v) then
            incr broker_only
        end
      done)
    srcs;
  (* Every sampled source runs over the same dominated subgraph: project
     once and count reached vertices straight off the engine workspace. *)
  let pg =
    Broker_graph.Projected.graph (Broker_graph.Projected.project g ~is_broker)
  in
  let ws = Broker_graph.Bfs.workspace () in
  let saturated = ref 0 in
  Array.iter
    (fun u ->
      Broker_graph.Bfs.run ws pg u;
      saturated := !saturated + (Broker_graph.Bfs.reached ws - 1))
    srcs;
  let ftotal = float_of_int (max 1 !total) in
  let broker_only_pairs = float_of_int !broker_only /. ftotal in
  let saturated_pairs = float_of_int !saturated /. ftotal in
  {
    broker_only_pairs;
    saturated_pairs;
    ratio = (if saturated_pairs = 0.0 then 0.0 else broker_only_pairs /. saturated_pairs);
  }
