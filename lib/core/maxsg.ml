module G = Broker_graph.Graph
module Heap = Broker_util.Heap
module Obs = Broker_obs

let m_lazy_hits = Obs.Metrics.counter "maxsg.lazy_hits"
let m_lazy_misses = Obs.Metrics.counter "maxsg.lazy_misses"
let t_run = Obs.Trace.scope "maxsg.run"

let src = Logs.Src.create "broker.maxsg" ~doc:"MaxSubGraph-Greedy selection"

module Log = (val Logs.src_log src : Logs.LOG)

let priority_of ~n gain v =
  (float_of_int gain *. float_of_int (n + 1)) +. float_of_int (n - v)

(* Lazy constrained greedy: candidates are the covered vertices; gains only
   shrink and candidacy only grows, so a popped entry whose recomputed gain
   is unchanged is a true argmax among candidates. *)
let grow cov ~k =
  let g = Coverage.graph cov in
  let n = G.n g in
  let heap = Heap.create ~initial_capacity:256 Heap.Max in
  let cached_gain = Array.make n (-1) in
  let enqueued = Array.make n false in
  (* New candidates are staged, then their gains probed through the
     word-parallel MS-BFS batch evaluator ([Coverage.gains_into]) and
     pushed in staging order. Each flush happens against a fixed covered
     set (staging never mutates coverage), so gains, cached values, and
     pop order are identical to probing one candidate at a time. *)
  let staged = Array.make (max 1 n) 0 in
  let n_staged = ref 0 in
  let stage v =
    if (not enqueued.(v)) && not (Coverage.is_broker cov v) then begin
      enqueued.(v) <- true;
      staged.(!n_staged) <- v;
      incr n_staged
    end
  in
  let gains = Array.make Broker_graph.Msbfs.lanes 0 in
  let flush () =
    let lo = ref 0 in
    while !lo < !n_staged do
      let len = min Broker_graph.Msbfs.lanes (!n_staged - !lo) in
      Coverage.gains_into cov staged ~lo:!lo ~len gains;
      for b = 0 to len - 1 do
        let v = staged.(!lo + b) in
        let gain = gains.(b) in
        cached_gain.(v) <- gain;
        if gain > 0 then Heap.push heap ~priority:(priority_of ~n gain v) v
      done;
      lo := !lo + len
    done;
    n_staged := 0
  in
  let add_broker v =
    Coverage.add cov v;
    stage v;
    G.iter_neighbors g v (fun w -> stage w);
    flush ()
  in
  (* Seed candidacy with the currently covered region. *)
  Broker_util.Bitset.iter stage (Coverage.covered cov);
  flush ();
  let continue = ref true in
  while !continue && Coverage.size cov < k do
    match Heap.pop heap with
    | None -> continue := false
    | Some (_, v) ->
        if not (Coverage.is_broker cov v) then begin
          let fresh = Coverage.gain cov v in
          if fresh = cached_gain.(v) then begin
            Obs.Metrics.incr m_lazy_hits;
            if fresh = 0 then continue := false else add_broker v
          end
          else begin
            Obs.Metrics.incr m_lazy_misses;
            cached_gain.(v) <- fresh;
            if fresh > 0 then Heap.push heap ~priority:(priority_of ~n fresh v) v
          end
        end
  done

let run g ~k =
  Obs.Trace.with_span t_run @@ fun () ->
  let n = G.n g in
  if n = 0 || k <= 0 then [||]
  else begin
    let cov = Coverage.create g in
    (* Seed: maximum-degree vertex. *)
    let seed = ref 0 in
    for v = 1 to n - 1 do
      if G.degree g v > G.degree g !seed then seed := v
    done;
    Coverage.add cov !seed;
    if k > 1 then grow cov ~k;
    Log.info (fun m ->
        m "MaxSG selected %d brokers covering %d/%d vertices"
          (Coverage.size cov) (Coverage.f cov) n);
    Coverage.brokers cov
  end

let run_to_saturation g = run g ~k:max_int

let coverage_curve g brokers =
  let cov = Coverage.create g in
  Array.map
    (fun v ->
      Coverage.add cov v;
      (Coverage.size cov, Coverage.f cov))
    brokers
