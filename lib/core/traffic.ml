module G = Broker_graph.Graph

type model = { masses : float array }

let gravity ~rng g =
  let n = G.n g in
  let raw =
    Array.init n (fun v ->
        let base = float_of_int (G.degree g v + 1) in
        (* Log-normal-ish multiplicative noise: exp(N(0, 0.75²))
           approximated by a product of uniforms (CLT on logs). *)
        let z =
          Broker_util.Xrandom.float rng 1.0
          +. Broker_util.Xrandom.float rng 1.0
          +. Broker_util.Xrandom.float rng 1.0 -. 1.5
        in
        base *. exp (0.75 *. z))
  in
  let mean = Array.fold_left ( +. ) 0.0 raw /. float_of_int (max n 1) in
  { masses = Array.map (fun x -> x /. mean) raw }

let total_demand m =
  let s = Array.fold_left ( +. ) 0.0 m.masses in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.masses in
  (s *. s) -. s2

let weighted_saturated ~rng ~sources g m ~is_broker =
  let n = G.n g in
  if n < 2 then 0.0
  else begin
    let draw = Broker_util.Sampling.weighted_alias m.masses in
    (* All [sources] draws share one broker set: project once, then reuse a
       single BFS workspace across the rows. *)
    let pg =
      Broker_graph.Projected.graph (Broker_graph.Projected.project g ~is_broker)
    in
    let ws = Broker_graph.Bfs.workspace () in
    let mass_total = Array.fold_left ( +. ) 0.0 m.masses in
    let served = ref 0.0 and possible = ref 0.0 in
    for _ = 1 to sources do
      let s = draw rng in
      Broker_graph.Bfs.run ws pg s;
      let row_served = ref 0.0 in
      for v = 0 to n - 1 do
        if Broker_graph.Bfs.distance ws v > 0 then
          row_served := !row_served +. m.masses.(v)
      done;
      (* Row total demand excludes the self pair. *)
      served := !served +. !row_served;
      possible := !possible +. (mass_total -. m.masses.(s))
    done;
    if !possible = 0.0 then 0.0 else !served /. !possible
  end
