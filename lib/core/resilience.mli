(** Broker-failure resilience (reproduction extension).

    The paper's brokerage layer concentrates control in few nodes; a
    natural systems question it leaves open is how gracefully the E2E
    guarantee degrades when brokers fail. This module evaluates the
    connectivity of a broker set after removing a fraction of its members,
    under two failure models:

    - [Random]: uniformly chosen brokers fail (independent outages);
    - [Targeted]: the highest-degree brokers fail first (attack /
      correlated overload).

    The remaining brokers keep serving; failed brokers stop dominating
    edges (their node still forwards its own traffic as a plain AS). *)

type failure_model = Random | Targeted

type point = {
  failed_fraction : float;
  failed : int;
  connectivity : float;  (** saturated E2E connectivity of the survivors *)
}

val degradation :
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  brokers:int array ->
  model:failure_model ->
  fractions:float list ->
  point list
(** One evaluation per requested failure fraction, on a fixed shared source
    sample (common random numbers across the sweep). *)

val survivors :
  rng:Broker_util.Xrandom.t ->
  Broker_graph.Graph.t ->
  brokers:int array ->
  model:failure_model ->
  fraction:float ->
  int array
(** The broker subset remaining after failures (deterministic for
    [Targeted]). *)
