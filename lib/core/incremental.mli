(** Incremental dominated-connectivity under streaming topology updates.

    A tracker holds the l-hop connectivity curve of an evolving
    topology for a fixed broker set and source sample. Updates are
    applied as announce/withdraw operations; only the dominated subset
    (a broker endpoint) enters the projected overlay the evaluators
    sweep, and after each burst the tracker re-runs MS-BFS only for the
    source batches whose reachable set can have changed: a source is
    *affected* when it reaches an endpoint of a changed edge in the old
    or the new edge set (an undirected distance can only change when its
    shortest path crosses a changed edge). Unaffected batches keep
    their cached integer tallies.

    Equivalence guarantee: {!curve} is bitwise identical to running
    {!Connectivity.eval_sources} from scratch on the compacted updated
    graph with the same [l_max], broker set and source array — both
    paths produce the same per-batch integer counts and share
    {!Connectivity.curve_of_counts} — for any [REPRO_DOMAINS].

    Single-writer: {!apply} is not domain-safe (re-sweeps parallelize
    internally over read-only snapshots). *)

type t

type op =
  | Add of int * int  (** announce edge [(u, v)] *)
  | Remove of int * int  (** withdraw edge [(u, v)] *)

type stats = {
  applied : int;  (** ops that changed the dominated edge set *)
  noops : int;  (** dominated ops that were already satisfied *)
  ignored : int;  (** ops with no broker endpoint (outside the projection) *)
  sources_affected : int;  (** sources whose reachable set may have changed *)
  batches_reevaluated : int;
  batches_total : int;
}

val create :
  ?l_max:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  sources:int array ->
  t
(** Project the base graph, cache every batch's tallies (full initial
    evaluation). [l_max] defaults to 10 as in
    {!Connectivity.eval_sources}. The source array is copied. *)

val apply : t -> op array -> stats
(** Apply an update burst and re-sweep the affected batches. Returns the
    burst's statistics (also readable via {!last_stats}).
    @raise Invalid_argument when an endpoint is out of range. *)

val curve : t -> Connectivity.curve
(** Current connectivity curve, bitwise identical to a from-scratch
    {!Connectivity.eval_sources} on the updated topology. *)

val saturated : t -> float
(** [saturated] of {!curve}. *)

val last_stats : t -> stats
(** Statistics of the most recent {!apply} (zeros before the first). *)

val l_max : t -> int

val batches : t -> int
(** Source batches tracked ([ceil (sources / Msbfs.lanes)]). *)
