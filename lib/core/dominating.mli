(** B-dominating path predicates and construction (Definition 1), plus the
    Fig. 5a "90% of E2E connections only use nodes in the broker set"
    analysis. *)

val is_dominated_path : is_broker:(int -> bool) -> int list -> bool
(** Every hop of the path has at least one broker endpoint. Paths of fewer
    than 2 vertices are vacuously dominated. *)

val find_dominated_path :
  Broker_graph.Graph.t -> is_broker:(int -> bool) -> int -> int -> int list
(** Shortest B-dominated path between the endpoints, [[]] when none
    exists. *)

val find_dominated_path_view :
  Broker_graph.View.t -> is_broker:(int -> bool) -> int -> int -> int list
(** {!find_dominated_path} over a {!Broker_graph.View.t}, so the
    simulator can route against a live {!Broker_graph.Delta} overlay
    without compacting after every topology update. *)

type broker_only = {
  broker_only_pairs : float;
      (** fraction of all ordered pairs connected through broker-internal
          paths only (intermediate hops all brokers) *)
  saturated_pairs : float;
      (** fraction connected through any dominated path *)
  ratio : float;
      (** [broker_only_pairs / saturated_pairs] — the paper's ">90%"
          statistic *)
}

val broker_only_fraction :
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  brokers:int array ->
  broker_only
(** A pair [(u,v)] counts as broker-only when some connected component of
    the broker-induced subgraph is adjacent to (or contains) both [u] and
    [v] — i.e. traffic enters the broker mesh at the first hop and leaves it
    at the last, paying no non-broker transit. *)
