(** Exact (exponential-time) optima for tiny instances.

    The MCB/MCBG problems are NP-hard (Lemmas 1–2); these brute-force
    solvers make the approximation guarantees *testable*: on graphs small
    enough to enumerate, the greedy Algorithm 1 must achieve at least
    [(1 - 1/e)·OPT] (Lemma 4) and Algorithm 2 at least
    [(1 - 1/e)/θ·OPT] (Theorem 3). The ablation experiment measures the
    empirical ratios, which are far better than the worst-case bounds. *)

val mcb_opt : Broker_graph.Graph.t -> k:int -> int array * int
(** Optimal MCB solution: a coverage-maximizing broker set of size <= k and
    its coverage value [f(B)]. Enumerates subsets with pruning; intended
    for [n <= ~25] and small [k].
    @raise Invalid_argument when [n > 25]. *)

val mcbg_opt : Broker_graph.Graph.t -> k:int -> int array * int
(** Optimal MCBG solution: additionally requires the B-dominating path
    guarantee ({!Mcbg.guarantees_dominating_paths}) among covered nodes. *)

val pds_exists : Broker_graph.Graph.t -> k:int -> bool
(** Decision version of the Path-Dominating Set problem (Problem 1): does a
    broker set of size <= k exist whose coverage is all of V with mutual
    dominating paths? Per Theorem 1 this is checked through the MCBG
    optimum. *)
