module G = Broker_graph.Graph
module Heap = Broker_util.Heap
module Obs = Broker_obs

let evaluations = ref 0
let gain_evaluations () = !evaluations

(* Deterministic selection counters: gain evaluations are shared with
   [naive]; the hit/miss split is the CELF lazy-heap scorecard (a popped
   entry whose recomputed gain is unchanged is accepted without a
   re-push). *)
let m_gain_evals = Obs.Metrics.counter "greedy.gain_evals"
let m_lazy_hits = Obs.Metrics.counter "celf.lazy_hits"
let m_lazy_misses = Obs.Metrics.counter "celf.lazy_misses"
let t_naive = Obs.Trace.scope "greedy.naive"
let t_celf = Obs.Trace.scope "celf.select"

let naive g ~k =
  Obs.Trace.with_span t_naive @@ fun () ->
  evaluations := 0;
  let cov = Coverage.create g in
  let n = G.n g in
  let continue = ref true in
  while !continue && Coverage.size cov < k do
    let best = ref (-1) and best_gain = ref 0 in
    for v = 0 to n - 1 do
      if not (Coverage.is_broker cov v) then begin
        incr evaluations;
        Obs.Metrics.incr m_gain_evals;
        let gain = Coverage.gain cov v in
        (* Ties break toward the smaller id, matching CELF. *)
        if gain > !best_gain then begin
          best := v;
          best_gain := gain
        end
      end
    done;
    if !best < 0 || !best_gain = 0 then continue := false
    else Coverage.add cov !best
  done;
  Coverage.brokers cov

(* CELF lazy greedy: heap priorities encode (gain, vertex) with vertex id as
   tie-breaker folded into the float so pops match naive's ordering. *)
let priority_of ~n gain v =
  (* Larger gain first; among equal gains, smaller vertex id first. *)
  (float_of_int gain *. float_of_int (n + 1)) +. float_of_int (n - v)

let celf_into cov ~k =
  Obs.Trace.with_span t_celf @@ fun () ->
  let g = Coverage.graph cov in
  let n = G.n g in
  evaluations := 0;
  let heap = Heap.create ~initial_capacity:n Heap.Max in
  let cached_gain = Array.make n (-1) in
  (* Heap seeding rides the MS-BFS kernel: candidates are gathered in
     ascending order and their gains probed [Msbfs.lanes] per word-
     parallel batch. Gains, eval counts, and push order are identical to
     the scalar per-vertex loop this replaces (pop order never depended
     on push order — the vertex id is folded into the priority). *)
  let cands = Array.make (max 1 n) 0 in
  let n_cands = ref 0 in
  for v = 0 to n - 1 do
    if not (Coverage.is_broker cov v) then begin
      cands.(!n_cands) <- v;
      incr n_cands
    end
  done;
  let gains = Array.make Broker_graph.Msbfs.lanes 0 in
  let lo = ref 0 in
  while !lo < !n_cands do
    let len = min Broker_graph.Msbfs.lanes (!n_cands - !lo) in
    Coverage.gains_into cov cands ~lo:!lo ~len gains;
    for b = 0 to len - 1 do
      let v = cands.(!lo + b) in
      incr evaluations;
      Obs.Metrics.incr m_gain_evals;
      let gain = gains.(b) in
      cached_gain.(v) <- gain;
      if gain > 0 then Heap.push heap ~priority:(priority_of ~n gain v) v
    done;
    lo := !lo + len
  done;
  let continue = ref true in
  while !continue && Coverage.size cov < k do
    match Heap.pop heap with
    | None -> continue := false
    | Some (_, v) ->
        if not (Coverage.is_broker cov v) then begin
          incr evaluations;
          Obs.Metrics.incr m_gain_evals;
          let fresh = Coverage.gain cov v in
          if fresh = cached_gain.(v) then begin
            Obs.Metrics.incr m_lazy_hits;
            if fresh = 0 then continue := false
            else Coverage.add cov v
          end
          else begin
            Obs.Metrics.incr m_lazy_misses;
            cached_gain.(v) <- fresh;
            if fresh > 0 then Heap.push heap ~priority:(priority_of ~n fresh v) v
          end
        end
  done

let celf g ~k =
  let cov = Coverage.create g in
  celf_into cov ~k;
  Coverage.brokers cov
