(** Radius-bounded broker selection — the constructive side of Problem 4
    (MCBG with path-length constraints).

    A broker "r-covers" every vertex within [radius] hops. If every vertex
    is r-covered and the broker mesh is mutually dominated, an E2E path
    needs at most [2·radius] hops to enter and leave the mesh plus the
    mesh distance — giving a handle on the path-length distribution
    [F_B(l)] that plain coverage maximization lacks. The selection below is
    the lazy greedy over the (submodular) r-ball coverage function,
    restricted — like MaxSG — to candidates already inside the dominated
    region so the output keeps the B-dominating-path guarantee. *)

val run : Broker_graph.Graph.t -> k:int -> radius:int -> int array
(** Brokers in selection order. Two phases: the r-ball greedy runs until
    every reachable vertex is r-covered (the "spread" phase, bounding the
    hops from any endpoint to its nearest broker); any remaining budget is
    spent on {!Maxsg.grow}-style 1-hop coverage picks (the "densify"
    phase, pushing the dominated-path connectivity up). [radius >= 1];
    [radius = 1] coincides with {!Maxsg.run}'s objective. *)

val covered_within : Broker_graph.Graph.t -> brokers:int array -> radius:int -> int
(** Number of vertices within [radius] hops of some broker (brokers
    included). *)
