module G = Broker_graph.Graph

let order_by_score g score =
  let idx = Array.init (G.n g) (fun i -> i) in
  (* Stable by id on ties: compare scores descending, then ids ascending. *)
  Array.sort
    (fun a b ->
      let c = Float.compare (score b) (score a) in
      if c <> 0 then c else Int.compare a b)
    idx;
  idx

let degree_order g = order_by_score g (fun v -> float_of_int (G.degree g v))

let db g ~k =
  let order = degree_order g in
  Array.sub order 0 (min k (Array.length order))

let pagerank_order g =
  let rank = Broker_graph.Pagerank.compute g in
  order_by_score g (fun v -> rank.(v))

let prb g ~k =
  let order = pagerank_order g in
  Array.sub order 0 (min k (Array.length order))

let set_cover ~rng g =
  let n = G.n g in
  let dominated = Array.make n false in
  let perm = Broker_util.Xrandom.permutation rng n in
  let brokers = ref [] in
  Array.iter
    (fun v ->
      if not dominated.(v) then begin
        brokers := v :: !brokers;
        dominated.(v) <- true;
        G.iter_neighbors g v (fun w -> dominated.(w) <- true)
      end)
    perm;
  Array.of_list (List.rev !brokers)

let ixpb topo ~min_degree =
  let g = topo.Broker_topo.Topology.graph in
  let ixps = Broker_topo.Topology.ixps topo in
  let selected =
    Array.to_list ixps
    |> List.filter (fun v -> G.degree g v >= min_degree)
  in
  (* Highest-degree IXPs first, mirroring the other rankings. *)
  let arr = Array.of_list selected in
  Array.sort
    (fun a b ->
      let c = Int.compare (G.degree g b) (G.degree g a) in
      if c <> 0 then c else Int.compare a b)
    arr;
  arr

let tier1_only topo = Broker_topo.Topology.tier1_members topo
