module G = Broker_graph.Graph
module Bitset = Broker_util.Bitset

let m_adds = Broker_obs.Metrics.counter "coverage.adds"

type t = {
  graph : G.t;
  broker : Bitset.t;
  covered_set : Bitset.t;
  mutable order : int array;  (* insertion order; first [n_brokers] live *)
  mutable n_brokers : int;
  mutable n_covered : int;
  msbfs : Broker_graph.Msbfs.workspace;  (* scratch for [gains_into] *)
}

let create graph =
  let n = G.n graph in
  {
    graph;
    broker = Bitset.create n;
    covered_set = Bitset.create n;
    order = [||];
    n_brokers = 0;
    n_covered = 0;
    msbfs = Broker_graph.Msbfs.workspace ();
  }

let graph t = t.graph
let f t = t.n_covered
let size t = t.n_brokers
let brokers t = Array.sub t.order 0 t.n_brokers
let nth_broker t i =
  if i < 0 || i >= t.n_brokers then invalid_arg "Coverage.nth_broker";
  t.order.(i)

let is_broker t v = Bitset.mem t.broker v
let is_covered t v = Bitset.mem t.covered_set v
let covered t = t.covered_set

let gain t v =
  let acc = ref (if Bitset.mem t.covered_set v then 0 else 1) in
  G.iter_neighbors t.graph v (fun w ->
      if not (Bitset.mem t.covered_set w) then incr acc);
  !acc

(* Batched [gain] on the MS-BFS kernel: a depth-<=1 batch settles exactly
   the closed neighborhood of each candidate in its lane, so the per-lane
   count of settled-and-uncovered vertices is that candidate's marginal
   gain. The greedy selectors (CELF, MaxSG) seed their heaps with this —
   candidates probe [Msbfs.lanes] at a time instead of one closure-built
   neighbor sweep each. Gains are identical to [gain] by construction
   (self-loop-free CSR: the candidate itself is the lone depth-0 settle). *)
let gains_into t cands ~lo ~len out =
  Broker_graph.Msbfs.run t.msbfs t.graph ~max_depth:1 cands ~lo ~len;
  Broker_graph.Msbfs.lane_counts_into t.msbfs
    ~keep:(fun w -> not (Bitset.unsafe_mem t.covered_set w))
    out

let push_order t v =
  let cap = Array.length t.order in
  if t.n_brokers = cap then begin
    let grown = Array.make (max 8 (2 * cap)) 0 in
    Array.blit t.order 0 grown 0 t.n_brokers;
    t.order <- grown
  end;
  t.order.(t.n_brokers) <- v

(* The neighbor sweep is an explicit loop over the CSR arrays — same
   ascending order as [G.iter_neighbors], without the closure that call
   would build; [add] sits on the greedy inner loop and is checked
   [@brokercheck.noalloc]. *)
let[@brokercheck.noalloc] add t v =
  if not (Bitset.mem t.broker v) then begin
    Broker_obs.Metrics.incr m_adds;
    Bitset.add t.broker v;
    push_order t v;
    t.n_brokers <- t.n_brokers + 1;
    if not (Bitset.mem t.covered_set v) then begin
      Bitset.add t.covered_set v;
      t.n_covered <- t.n_covered + 1
    end;
    let off = G.csr_off t.graph and adj = G.csr_adj t.graph in
    for i = off.(v) to off.(v + 1) - 1 do
      let w = Array.unsafe_get adj i in
      if not (Bitset.mem t.covered_set w) then begin
        Bitset.add t.covered_set w;
        t.n_covered <- t.n_covered + 1
      end
    done
  end

let coverage_fraction t =
  let n = G.n t.graph in
  if n = 0 then 0.0 else float_of_int t.n_covered /. float_of_int n
