module G = Broker_graph.Graph
module T = Broker_topo.Topology
module Rel = Broker_topo.Node_meta.Relations

type upgrades = (int * int, unit) Hashtbl.t

let no_upgrades : upgrades = Hashtbl.create 1

let canon u v = if u < v then (u, v) else (v, u)

let upgrade_broker_edges ~rng topo ~brokers ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Directional.upgrade_broker_edges: fraction in [0,1]";
  let g = topo.T.graph in
  let is_broker = Connectivity.of_brokers ~n:(G.n g) brokers in
  let candidates = ref [] in
  Array.iter
    (fun b ->
      G.iter_neighbors g b (fun w ->
          if b < w && is_broker w then candidates := (b, w) :: !candidates))
    brokers;
  let arr = Array.of_list !candidates in
  Broker_util.Xrandom.shuffle rng arr;
  let take = int_of_float (fraction *. float_of_int (Array.length arr)) in
  let tbl : upgrades = Hashtbl.create (2 * max take 1) in
  for i = 0 to take - 1 do
    Hashtbl.replace tbl arr.(i) ()
  done;
  tbl

let upgrade_count = Hashtbl.length

(* Two-phase valley-free BFS. State 0 = ascending (customer→provider hops
   so far only), state 1 = descending (a peak — peer hop or first
   provider→customer hop — has been passed). *)
let bfs_valley_free topo ~is_broker ~upgrades src dist_out =
  let g = topo.T.graph in
  let n = G.n g in
  let rel = topo.T.relations in
  let is_ixp v = T.is_ixp topo v in
  let dist = Array.make (2 * n) (-1) in
  let queue = Array.make (2 * n) 0 in
  let head = ref 0 and tail = ref 0 in
  let push v s d =
    let i = (2 * v) + s in
    if dist.(i) < 0 then begin
      dist.(i) <- d;
      queue.(!tail) <- i;
      incr tail
    end
  in
  push src 0 0;
  while !head < !tail do
    let i = queue.(!head) in
    incr head;
    let u = i / 2 and s = i land 1 in
    let d = dist.(i) in
    G.iter_neighbors g u (fun v ->
        if is_broker u || is_broker v then begin
          if Hashtbl.mem upgrades (canon u v) then push v s (d + 1)
          else if is_ixp v then begin
            (* Entering an IXP fabric: part of a peering, ascending only. *)
            if s = 0 then push v 0 (d + 1)
          end
          else if is_ixp u then begin
            (* Leaving the fabric consumes the peering transition. *)
            if s = 0 then push v 1 (d + 1)
          end
          else if Rel.customer_of rel u v then begin
            if s = 0 then push v 0 (d + 1)
          end
          else if Rel.provider_of rel u v then push v 1 (d + 1)
          else if s = 0 then push v 1 (d + 1) (* peer or unknown *)
        end)
  done;
  for v = 0 to n - 1 do
    let a = dist.(2 * v) and b = dist.((2 * v) + 1) in
    dist_out.(v) <-
      (if a < 0 then b else if b < 0 then a else min a b)
  done

let curve_sampled ?(l_max = 10) ?(upgrades = no_upgrades) ?source_set ~rng
    ~sources topo ~is_broker =
  let g = topo.T.graph in
  let n = G.n g in
  if n < 2 then
    { Connectivity.l_max; per_hop = Array.make (l_max + 1) 0.0; saturated = 0.0 }
  else begin
    let srcs =
      match source_set with
      | Some s -> s
      | None ->
          let k = min sources n in
          Broker_util.Sampling.without_replacement rng ~n ~k
    in
    let hist = Array.make (l_max + 1) 0 in
    let reached = ref 0 and total = ref 0 in
    let dist = Array.make n (-1) in
    Array.iter
      (fun s ->
        bfs_valley_free topo ~is_broker ~upgrades s dist;
        Array.iteri
          (fun v d ->
            if v <> s && d > 0 then begin
              incr reached;
              if d <= l_max then hist.(d) <- hist.(d) + 1
            end)
          dist;
        total := !total + (n - 1))
      srcs;
    let ftotal = float_of_int (max 1 !total) in
    let per_hop = Array.make (l_max + 1) 0.0 in
    let acc = ref 0 in
    for l = 1 to l_max do
      acc := !acc + hist.(l);
      per_hop.(l) <- float_of_int !acc /. ftotal
    done;
    {
      Connectivity.l_max;
      per_hop;
      saturated = float_of_int !reached /. ftotal;
    }
  end

let saturated_sampled ?(upgrades = no_upgrades) ?source_set ~rng ~sources topo
    ~is_broker =
  (curve_sampled ~l_max:1 ~upgrades ?source_set ~rng ~sources topo ~is_broker)
    .Connectivity.saturated
