type verdict = {
  feasible : bool;
  epsilon : float;
  max_deviation : float;
  worst_l : int;
}

let max_deviation (c : Connectivity.curve) ~(target : Connectivity.curve) =
  let l_max = min c.Connectivity.l_max target.Connectivity.l_max in
  let worst = ref 0.0 and worst_l = ref 1 in
  for l = 1 to l_max do
    let d =
      abs_float (Connectivity.value_at c l -. Connectivity.value_at target l)
    in
    if d > !worst then begin
      worst := d;
      worst_l := l
    end
  done;
  let d_sat = abs_float (c.Connectivity.saturated -. target.Connectivity.saturated) in
  if d_sat > !worst then begin
    worst := d_sat;
    worst_l := l_max + 1
  end;
  (!worst, !worst_l)

let feasible ~epsilon c ~target =
  let dev, worst_l = max_deviation c ~target in
  { feasible = dev <= epsilon; epsilon; max_deviation = dev; worst_l }
