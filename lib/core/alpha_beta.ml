type estimate = { beta : int; alpha : float; cdf : float array }

let distance_cdf ?(l_max = 16) ~rng ~sources g =
  let dists = Broker_graph.Metrics.hop_distance_sample ~rng ~sources g in
  let total = Array.length dists in
  let hist = Array.make (l_max + 1) 0 in
  Array.iter (fun d -> if d <= l_max then hist.(d) <- hist.(d) + 1) dists;
  let cdf = Array.make (l_max + 1) 0.0 in
  let acc = ref 0 in
  for l = 1 to l_max do
    acc := !acc + hist.(l);
    cdf.(l) <- (if total = 0 then 0.0 else float_of_int !acc /. float_of_int total)
  done;
  cdf

let estimate ?(l_max = 16) ~rng ~sources g ~alpha =
  let cdf = distance_cdf ~l_max ~rng ~sources g in
  let beta = ref l_max in
  (try
     for l = 1 to l_max do
       if cdf.(l) >= alpha then begin
         beta := l;
         raise Exit
       end
     done
   with Exit -> ());
  { beta = !beta; alpha = cdf.(!beta); cdf }

let alpha_at ~rng ~sources g ~beta =
  let cdf = distance_cdf ~l_max:(max beta 1) ~rng ~sources g in
  cdf.(beta)
