(** Business-relationship-aware (directional) connectivity — Fig. 5b/5c.

    Under real AS economics a path must be valley-free (Gao–Rexford): zero
    or more customer→provider hops, at most one peering hop, then zero or
    more provider→customer hops. IXP fabrics are transparent: entering an
    IXP does not consume the peering transition, leaving it toward an AS
    does. The broker restriction composes with this — every hop still needs
    a broker endpoint.

    "Changing an inter-broker connection to bidirectional" (Fig. 5b) marks a
    broker–broker edge as freely traversable in both directions at any path
    phase, modelling the mutual-transit agreement the brokerage coalition
    signs internally. *)

type upgrades
(** A set of undirected edges upgraded to free traversal. *)

val no_upgrades : upgrades

val upgrade_broker_edges :
  rng:Broker_util.Xrandom.t ->
  Broker_topo.Topology.t ->
  brokers:int array ->
  fraction:float ->
  upgrades
(** Uniformly sample [fraction] of the broker–broker edges. *)

val upgrade_count : upgrades -> int

val curve_sampled :
  ?l_max:int ->
  ?upgrades:upgrades ->
  ?source_set:int array ->
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_topo.Topology.t ->
  is_broker:(int -> bool) ->
  Connectivity.curve
(** l-hop E2E connectivity where paths must be valley-free (modulo upgraded
    edges) and B-dominated. Edges without a recorded relation are treated as
    peering. [source_set] pins the BFS sources (common random numbers when
    comparing broker sets or upgrade levels); otherwise [sources] are drawn
    from [rng]. *)

val saturated_sampled :
  ?upgrades:upgrades ->
  ?source_set:int array ->
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_topo.Topology.t ->
  is_broker:(int -> bool) ->
  float
