(** Algorithm 3 of the paper: the MaxSubGraph-Greedy (MaxSG) heuristic,
    O(k (|V| + |E|)).

    Each iteration adds the vertex that maximizes the size of the dominated
    connected subgraph. Following DESIGN.md §5: candidates are restricted to
    vertices already inside the dominated region [B ∪ N(B)] (each new broker
    is therefore at most 2 hops from an existing one through a dominated
    vertex), and among candidates the coverage gain [f(B ∪ {v}) - f(B)] is
    maximized. The output hence grows one connected dominated cluster — by
    construction any two covered vertices have a B-dominating path through
    the cluster, satisfying the MCBG constraint.

    The first broker is the maximum-degree vertex (the densest point of the
    AS graph core). Lazy gain maintenance (gains only shrink; the candidate
    set only grows, and vertices are (re)inserted into the heap as they
    become covered) keeps the whole run linear-ish in practice. *)

val grow : Coverage.t -> k:int -> unit
(** Continue the constrained greedy from an existing coverage state until it
    holds [k] brokers or the dominated region stops growing. Candidates are
    the already-covered vertices, so every addition keeps the broker cluster
    mutually dominated. Algorithm 2 reuses this to spend leftover budget. *)

val run : Broker_graph.Graph.t -> k:int -> int array
(** Brokers in selection order. Stops early once the dominated region stops
    growing (the paper's "3,540-alliance" point: the maximum connected
    subgraph is fully dominated). A prefix of the output is exactly the
    result for a smaller [k]. *)

val run_to_saturation : Broker_graph.Graph.t -> int array
(** [run] with an unbounded budget: grow until full domination of the
    component of the starting vertex. *)

val coverage_curve : Broker_graph.Graph.t -> int array -> (int * int) array
(** [(prefix size, f(B_prefix))] after each addition, for sweep plots. *)
