module G = Broker_graph.Graph
module View = Broker_graph.View
module Delta = Broker_graph.Delta
module Msbfs = Broker_graph.Msbfs
module Obs = Broker_obs

(* Dirty-region probes: commutative int counters over deterministically
   composed batches, diffable run-to-run like the msbfs.* family. *)
let m_applies = Obs.Metrics.counter "incr.applies"
let m_ops_applied = Obs.Metrics.counter "incr.ops.applied"
let m_ops_noop = Obs.Metrics.counter "incr.ops.noop"
let m_ops_ignored = Obs.Metrics.counter "incr.ops.ignored"
let m_batches_reeval = Obs.Metrics.counter "incr.batches.reevaluated"
let m_batches_skipped = Obs.Metrics.counter "incr.batches.skipped"
let m_sources_affected = Obs.Metrics.counter "incr.sources.affected"

type op = Add of int * int | Remove of int * int

type stats = {
  applied : int;
  noops : int;
  ignored : int;
  sources_affected : int;
  batches_reevaluated : int;
  batches_total : int;
}

let lanes = Msbfs.lanes

(* The tracker maintains the dominated-connectivity curve of an evolving
   topology. Only dominated edges (a broker endpoint) survive the
   projection the evaluators run on, so the tracker keeps a {!Delta}
   over the *projected* base graph, applies exactly the dominated subset
   of each update burst to it, and caches the MS-BFS tallies of every
   source batch. After a burst, a batch is re-swept only when one of its
   sources can reach a touched endpoint — in the old or the new edge
   set — because an undirected distance can only change when its
   shortest path crosses a changed edge. Everything cached is an integer
   count keyed by batch id, so totals are REPRO_DOMAINS-independent and
   the final curve goes through {!Connectivity.curve_of_counts}, bitwise
   identical to a from-scratch {!Connectivity.eval_sources}. *)
type t = {
  n : int;  (* vertex count of the original graph *)
  l_max : int;
  is_broker : int -> bool;
  sources : int array;
  nbatch : int;
  pdelta : Delta.t;  (* overlay over the projected base *)
  mutable cur_view : View.t;  (* snapshot of pdelta's current state *)
  hists : int array array;  (* per-batch first-arrival pair counts *)
  reached : int array;  (* per-batch pairs settled at depth >= 1 *)
  mutable last : stats;
}

let no_stats =
  {
    applied = 0;
    noops = 0;
    ignored = 0;
    sources_affected = 0;
    batches_reevaluated = 0;
    batches_total = 0;
  }

(* Re-sweep the batches listed in [ids] against [vw] and overwrite their
   cache rows. Workers only read shared state and return rows keyed by
   batch id (merged by list append), so the strided split passes C1
   domain-safety and the written caches are split-independent. *)
let reeval t vw ids =
  let sources = t.sources and l_max = t.l_max in
  let nsrc = Array.length sources in
  let nids = Array.length ids in
  let worker ~start ~step =
    let ws = Msbfs.workspace () in
    let rows = ref [] in
    let i = ref start in
    while !i < nids do
      let b = ids.(!i) in
      let lo = b * lanes in
      let len = min lanes (nsrc - lo) in
      Msbfs.run_view ws vw sources ~lo ~len;
      let hist = Array.make (l_max + 1) 0 in
      let reached = ref 0 in
      for d = 1 to Msbfs.max_level ws do
        let c = Msbfs.level_pairs ws d in
        reached := !reached + c;
        if d <= l_max then hist.(d) <- hist.(d) + c
      done;
      rows := (b, hist, !reached) :: !rows;
      i := !i + step
    done;
    !rows
  in
  let rows =
    Broker_util.Parallel.strided ~n:nids ~worker
      ~merge:(fun a b -> List.rev_append b a)
      []
  in
  List.iter
    (fun (b, hist, reached) ->
      t.hists.(b) <- hist;
      t.reached.(b) <- reached)
    rows

let create ?(l_max = 10) g ~is_broker ~sources =
  let n = G.n g in
  let sources = Array.copy sources in
  let nsrc = Array.length sources in
  let nbatch = (nsrc + lanes - 1) / lanes in
  let pg = Broker_graph.Projected.graph (Broker_graph.Projected.project g ~is_broker) in
  let pdelta = Delta.create pg in
  let t =
    {
      n;
      l_max;
      is_broker;
      sources;
      nbatch;
      pdelta;
      cur_view = View.of_graph pg;
      hists = Array.init nbatch (fun _ -> Array.make (l_max + 1) 0);
      reached = Array.make nbatch 0;
      last = no_stats;
    }
  in
  reeval t t.cur_view (Array.init nbatch (fun b -> b));
  t

let l_max t = t.l_max
let batches t = t.nbatch
let last_stats t = t.last

(* Vertices reachable from any seed, marked into [out] — the plain
   multi-source BFS behind the dirty-region bound. *)
let mark_reachable vw seeds out =
  let n = View.n vw in
  let queue = Array.make (max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if not out.(s) then begin
        out.(s) <- true;
        queue.(!tail) <- s;
        incr tail
      end)
    seeds;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    View.iter_neighbors vw u (fun v ->
        if not out.(v) then begin
          out.(v) <- true;
          queue.(!tail) <- v;
          incr tail
        end)
  done

let apply t ops =
  let applied = ref 0 and noops = ref 0 and ignored = ref 0 in
  let touched = ref [] in
  Array.iter
    (fun op ->
      let u, v, add =
        match op with Add (u, v) -> (u, v, true) | Remove (u, v) -> (u, v, false)
      in
      if not (Connectivity.edge_ok ~is_broker:t.is_broker u v) then
        (* No broker endpoint: the edge never enters the dominated
           projection, so the curve cannot depend on it. *)
        incr ignored
      else begin
        let changed =
          if add then Delta.add_edge t.pdelta u v
          else Delta.remove_edge t.pdelta u v
        in
        if changed then begin
          incr applied;
          touched := u :: v :: !touched
        end
        else incr noops
      end)
    ops;
  Obs.Metrics.incr m_applies;
  Obs.Metrics.add m_ops_applied !applied;
  Obs.Metrics.add m_ops_noop !noops;
  Obs.Metrics.add m_ops_ignored !ignored;
  if !applied = 0 then begin
    t.last <-
      {
        applied = 0;
        noops = !noops;
        ignored = !ignored;
        sources_affected = 0;
        batches_reevaluated = 0;
        batches_total = t.nbatch;
      };
    Obs.Metrics.add m_batches_skipped t.nbatch;
    t.last
  end
  else begin
    let old_view = t.cur_view in
    let new_view = Delta.view t.pdelta in
    t.cur_view <- new_view;
    (* A source's distance vector can only change when its shortest path
       crosses a changed edge, i.e. when it reaches a touched endpoint
       in the old edge set (withdrawn path) or the new one (announced
       path). Mark both reachable regions and re-sweep exactly the
       batches owning a marked source. *)
    let pn = View.n new_view in
    let mark_old = Array.make pn false in
    let mark_new = Array.make pn false in
    mark_reachable old_view !touched mark_old;
    mark_reachable new_view !touched mark_new;
    let nsrc = Array.length t.sources in
    let affected_sources = ref 0 in
    let ids = ref [] and nids = ref 0 in
    for b = t.nbatch - 1 downto 0 do
      let lo = b * lanes in
      let hi = min (lo + lanes) nsrc in
      let hit = ref false in
      for i = lo to hi - 1 do
        let s = t.sources.(i) in
        if mark_old.(s) || mark_new.(s) then begin
          incr affected_sources;
          hit := true
        end
      done;
      if !hit then begin
        ids := b :: !ids;
        incr nids
      end
    done;
    let ids = Array.of_list !ids in
    reeval t new_view ids;
    Obs.Metrics.add m_batches_reeval !nids;
    Obs.Metrics.add m_batches_skipped (t.nbatch - !nids);
    Obs.Metrics.add m_sources_affected !affected_sources;
    t.last <-
      {
        applied = !applied;
        noops = !noops;
        ignored = !ignored;
        sources_affected = !affected_sources;
        batches_reevaluated = !nids;
        batches_total = t.nbatch;
      };
    t.last
  end

let curve t =
  if t.n < 2 then
    {
      Connectivity.l_max = t.l_max;
      per_hop = Array.make (t.l_max + 1) 0.0;
      saturated = 0.0;
    }
  else begin
    let hist = Array.make (t.l_max + 1) 0 in
    let reached = ref 0 in
    for b = 0 to t.nbatch - 1 do
      let h = t.hists.(b) in
      for l = 1 to t.l_max do
        hist.(l) <- hist.(l) + h.(l)
      done;
      reached := !reached + t.reached.(b)
    done;
    Connectivity.curve_of_counts ~l_max:t.l_max ~hist ~reached:!reached
      ~total:(Array.length t.sources * (t.n - 1))
  end

let saturated t = (curve t).Connectivity.saturated
