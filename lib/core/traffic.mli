(** Traffic-weighted connectivity (reproduction extension).

    The paper counts E2E *connections*; operators care about E2E *traffic*.
    This module weights each ordered pair by a gravity-model demand
    [w(u)·w(v)] — node masses follow degree with heavy-tailed noise, so a
    few eyeball/content pairs carry most bytes, mirroring the "82% of IP
    traffic is video" motivation. The weighted saturated connectivity is
    the fraction of demand whose pair has a B-dominated path; because
    brokers are picked from the high-degree core, it exceeds the unweighted
    fraction at every budget. *)

type model = {
  masses : float array;  (** per-node gravity mass, normalized to mean 1 *)
}

val gravity : rng:Broker_util.Xrandom.t -> Broker_graph.Graph.t -> model
(** Mass = degree scaled by a log-normal-ish factor. Deterministic for a
    given RNG state. *)

val weighted_saturated :
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  model ->
  is_broker:(int -> bool) ->
  float
(** Fraction of total pairwise demand served by dominated paths, estimated
    by mass-weighted source sampling: sources drawn proportionally to
    their mass, each source's row weighted by destination masses (an
    unbiased estimator of the demand-weighted mean). *)

val total_demand : model -> float
(** [Σ_u Σ_{v≠u} w(u)·w(v)], the normalization constant. *)
