(** Algorithm 1 of the paper: the greedy [(1 - 1/e)]-approximation for the
    Maximum Coverage with broker set (MCB) problem.

    Two implementations with identical outputs (ties broken by vertex id):

    - [naive]: re-evaluates every vertex each round, O(k (|V| + |E|)) with a
      large constant — kept as the reference for the CELF ablation;
    - [celf]: lazy greedy. Marginal gains only shrink as the set grows
      (submodularity, Lemma 3), so a stale max-heap entry whose recomputed
      gain still tops the heap is the true argmax. Orders of magnitude fewer
      gain evaluations in practice. *)

val naive : Broker_graph.Graph.t -> k:int -> int array
(** Brokers in selection order. Stops early when coverage is complete. *)

val celf : Broker_graph.Graph.t -> k:int -> int array
(** Same output as [naive]. *)

val celf_into : Coverage.t -> k:int -> unit
(** Run CELF on an existing coverage state until it holds [k] brokers (or
    coverage is complete), e.g. to top up Algorithm 2's budget remainder. *)

val gain_evaluations : unit -> int
(** Number of marginal-gain evaluations performed by the last [naive]/[celf]
    call on this domain — the ablation's work metric. *)
