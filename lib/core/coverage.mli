(** Incremental state for the coverage function [f(B) = |B ∪ N(B)|]
    (Problem 2/3 of the paper).

    [f] is submodular and nondecreasing (Lemma 3), which the greedy
    algorithms exploit; this module provides O(deg) marginal-gain queries
    and O(deg) insertion. *)

type t

val create : Broker_graph.Graph.t -> t
(** Empty broker set over the graph. *)

val graph : t -> Broker_graph.Graph.t

val f : t -> int
(** Current coverage value [|B ∪ N(B)|]. *)

val size : t -> int
(** [|B|]. *)

val brokers : t -> int array
(** Brokers in insertion order (fresh array, O(|B|)). *)

val nth_broker : t -> int -> int
(** [nth_broker t i]: the [i]-th broker added, O(1).
    @raise Invalid_argument unless [0 <= i < size t]. *)

val is_broker : t -> int -> bool
val is_covered : t -> int -> bool
(** Member of [B ∪ N(B)]. *)

val covered : t -> Broker_util.Bitset.t
(** The covered set itself (not a copy — do not mutate). *)

val gain : t -> int -> int
(** [gain t v] = [f (B ∪ {v}) - f B], i.e. uncovered vertices in the closed
    neighbourhood of [v]. O(deg v). *)

val gains_into : t -> int array -> lo:int -> len:int -> int array -> unit
(** [gains_into t cands ~lo ~len out] evaluates
    [gain t cands.(lo + b)] for each [b < len] into [out.(b)], riding the
    bit-parallel MS-BFS kernel ({!Broker_graph.Msbfs}): one depth-1
    batch settles every candidate's closed neighbourhood word-parallel,
    and per-lane uncovered counts are the gains — identical to calling
    {!gain} per candidate. [len] at most [Broker_graph.Msbfs.lanes];
    entries of [out] beyond [len] are untouched. *)

val add : t -> int -> unit
(** Add a broker. Adding an existing broker is a no-op. *)

val coverage_fraction : t -> float
(** [f B / |V|]. *)
