(** The paper's evaluation metric: l-hop E2E connectivity under a broker set.

    For a broker set [B], the usable graph keeps the edge [(u,v)] iff
    [u ∈ B] or [v ∈ B] (the "B_A ⊙ A" operator of Section 5.2); any path in
    that graph is B-dominated. The l-hop E2E connectivity is the fraction of
    ordered vertex pairs [(u,v)], [u ≠ v], whose shortest such path has at
    most [l] hops; the limit for large [l] is the saturated E2E
    connectivity (Section 5.2, Remark).

    Exact evaluation runs one filtered BFS per source ([O(|V|·(|V|+|E|))]);
    at the paper's 52k-node scale we use the unbiased source-sampled
    estimator instead (a uniform subset of sources, each contributing its
    exact row of the distance matrix). *)

type curve = {
  l_max : int;
  per_hop : float array;
      (** index [l] (0 .. l_max): fraction of ordered pairs with a dominated
          path of at most [l] hops; [per_hop.(0) = 0]. *)
  saturated : float;  (** fraction with any dominated path *)
}

val value_at : curve -> int -> float
(** [value_at c l]: connectivity at hop bound [l], clamped to [saturated]
    beyond [l_max]. *)

val unrestricted : (int -> bool)
(** Predicate allowing every vertex — evaluates the raw topology ("free-path
    selection" rows of Tables 3/4). *)

val of_brokers : n:int -> int array -> (int -> bool)
(** Membership predicate of a broker array over universe size [n]. *)

val exact :
  ?l_max:int -> Broker_graph.Graph.t -> is_broker:(int -> bool) -> curve
(** All-pairs evaluation; [l_max] defaults to 10. *)

val sampled :
  ?l_max:int ->
  ?source_set:int array ->
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  curve
(** Source-sampled estimator; [sources] are drawn without replacement,
    unless [source_set] pins them explicitly (common random numbers when
    comparing broker sets). *)

val saturated_sampled :
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  float
(** Saturated connectivity only (cheaper bookkeeping, same BFS cost). *)

val eval_sources :
  ?l_max:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  int array ->
  curve
(** Evaluation over an explicit source array. All evaluators (including
    this one) run on the bit-parallel MS-BFS engine: the broker-dominated
    subgraph is materialized once per call ({!Broker_graph.Projected}),
    sources are packed {!Broker_graph.Msbfs.lanes} per machine word and
    each batch is settled by word-parallel sweeps on a per-domain
    reusable workspace ({!Broker_graph.Msbfs.run}), and batches are
    strided across OCaml 5 domains ({!Broker_util.Parallel.strided}).
    Batch composition depends only on the source order and every
    accumulated quantity is an integer count, so results are
    deterministic and bit-identical to a sequential run (and to
    {!eval_sources_scalar} and {!eval_sources_reference}) for any
    [REPRO_DOMAINS]. *)

val eval_sources_scalar :
  ?l_max:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  int array ->
  curve
(** The scalar projected engine (one direction-optimizing
    {!Broker_graph.Bfs.run} per source over the projected subgraph) —
    the pre-MS-BFS default. Kept as the [connectivity/projected] bench
    kernel and a second equivalence oracle for the batched path. *)

val eval_sources_reference :
  ?l_max:int ->
  Broker_graph.Graph.t ->
  is_broker:(int -> bool) ->
  int array ->
  curve
(** The pre-engine generic path — one predicate-filtered BFS per source
    over the unprojected graph. Slow; kept as the reference oracle the
    qcheck equivalence suite and the [connectivity/legacy] bench kernel
    compare the engine against. *)

val edge_ok : is_broker:(int -> bool) -> int -> int -> bool
(** The dominated-edge predicate itself, for composing with other
    traversals. *)

val curve_of_counts :
  l_max:int -> hist:int array -> reached:int -> total:int -> curve
(** Fold integer tallies into a {!curve}: [hist.(l)] pairs first reached
    at hop [l] (index 0 unused), [reached] pairs reached at any depth,
    [total] ordered pairs considered. This is the single float-math
    path every evaluator shares — external incremental evaluators (see
    [Incremental]) use it so their curves are bitwise-comparable to
    {!eval_sources}. @raise Invalid_argument when [hist] is shorter
    than [l_max + 1]. *)
