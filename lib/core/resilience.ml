module G = Broker_graph.Graph

type failure_model = Random | Targeted

type point = { failed_fraction : float; failed : int; connectivity : float }

(* A single elimination order per model; failure sets at different
   fractions are nested prefixes of it, so degradation is monotone by
   construction. *)
let elimination_order ~rng g ~brokers ~model =
  let order = Array.copy brokers in
  (match model with
  | Random -> Broker_util.Xrandom.shuffle rng order
  | Targeted ->
      Array.sort
        (fun a b ->
          let c = Int.compare (G.degree g b) (G.degree g a) in
          if c <> 0 then c else Int.compare a b)
        order);
  order

let drop_prefix ~order ~brokers ~fraction =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Resilience: fraction in [0,1]";
  let n_fail = int_of_float (fraction *. float_of_int (Array.length brokers)) in
  let doomed = Hashtbl.create (2 * max n_fail 1) in
  for i = 0 to n_fail - 1 do
    Hashtbl.replace doomed order.(i) ()
  done;
  Array.of_list
    (List.filter (fun b -> not (Hashtbl.mem doomed b)) (Array.to_list brokers))

let survivors ~rng g ~brokers ~model ~fraction =
  let order = elimination_order ~rng g ~brokers ~model in
  drop_prefix ~order ~brokers ~fraction

let degradation ~rng ~sources g ~brokers ~model ~fractions =
  let n = G.n g in
  let source_set =
    Broker_util.Sampling.without_replacement rng ~n ~k:(min sources n)
  in
  let order = elimination_order ~rng g ~brokers ~model in
  List.map
    (fun fraction ->
      let alive = drop_prefix ~order ~brokers ~fraction in
      let is_broker = Connectivity.of_brokers ~n alive in
      let c =
        Connectivity.sampled ~l_max:1 ~source_set ~rng
          ~sources:(Array.length source_set) g ~is_broker
      in
      {
        failed_fraction = fraction;
        failed = Array.length brokers - Array.length alive;
        connectivity = c.Connectivity.saturated;
      })
    fractions
