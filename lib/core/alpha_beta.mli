(** (α,β)-graph estimation (Definition 2 of the paper):
    a graph is an (α,β)-graph when
    [Prob(d(u,v) <= β) >= α] over uniform vertex pairs, with β far below the
    diameter. The paper's AS topology is a (0.99, 4)-graph; Algorithm 2's
    split between coverage brokers and connectors is driven by β. *)

type estimate = {
  beta : int;
  alpha : float;  (** measured [Prob(d <= beta)] *)
  cdf : float array;  (** index l: [Prob(d <= l)], up to the array length *)
}

val estimate :
  ?l_max:int ->
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  alpha:float ->
  estimate
(** Smallest [beta] (up to [l_max], default 16) whose measured probability
    reaches [alpha]; when none does, [beta = l_max] with its measured
    alpha. Distances are pooled from [sources] BFS runs (reachable pairs
    only, matching the paper's use on the giant component). *)

val alpha_at :
  rng:Broker_util.Xrandom.t ->
  sources:int ->
  Broker_graph.Graph.t ->
  beta:int ->
  float
(** Measured [Prob(d <= beta)]. *)
