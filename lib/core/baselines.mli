(** The comparison broker-selection strategies of Section 5.1 / Fig. 2.

    Order-producing baselines (DB, PRB) return the full ranking so prefixes
    give every budget at once; set-producing baselines (SC, IXPB, Tier1Only)
    return the set the strategy defines. *)

val degree_order : Broker_graph.Graph.t -> int array
(** DB: all vertices by decreasing degree (ties by id). *)

val db : Broker_graph.Graph.t -> k:int -> int array
(** Top-[k] prefix of [degree_order]. *)

val pagerank_order : Broker_graph.Graph.t -> int array
(** PRB: all vertices by decreasing PageRank. *)

val prb : Broker_graph.Graph.t -> k:int -> int array

val set_cover : rng:Broker_util.Xrandom.t -> Broker_graph.Graph.t -> int array
(** SC [31]: sweep the vertices in a uniform random order, adding every
    vertex that is not yet dominated. Produces a (maximal-independent-style)
    dominating set — valid but typically enormous, which is the point of
    Fig. 2a. *)

val ixpb : Broker_topo.Topology.t -> min_degree:int -> int array
(** IXPB: all IXPs with degree at least [min_degree] ([0] selects every
    IXP, the configuration of Table 1's "[20],[21],[22]" row). *)

val tier1_only : Broker_topo.Topology.t -> int array
(** Tier1Only: exactly the tier-1 clique. *)
