(** Geographic regions and region-aware broker selection (reproduction
    extension).

    The paper's broker set is selected globally; real deployments negotiate
    per jurisdiction, and an alliance that leaves a continent uncovered is
    a non-starter. Lacking geography in the dataset, regions are derived
    from the graph itself: k-way partition by multi-source BFS from
    farthest-point-seeded centers (graph distance is a serviceable proxy
    for geography on AS topologies). Selection can then be forced to seed
    every region before optimizing globally, and coverage fairness across
    regions is measurable. *)

val partition :
  Broker_graph.Graph.t -> k:int -> int array
(** [partition g ~k] assigns every vertex a region id in [0..k-1]:
    farthest-point seeding (first seed = max-degree vertex), then each
    vertex joins its nearest seed (ties to the lower region id). Vertices
    unreachable from every seed land in region 0. Deterministic. *)

val region_sizes : int array -> k:int -> int array

val seeded_selection :
  Broker_graph.Graph.t -> regions:int array -> k:int -> int array
(** Place one initial broker (the region's max-degree vertex) in every
    region, then continue with the constrained greedy ({!Maxsg.grow}).
    Note: until the regional clusters' dominated regions merge, the
    B-dominating-path guarantee holds within clusters only. *)

type fairness = {
  per_region : float array;  (** coverage fraction inside each region *)
  min_region : float;
  max_region : float;
  jain : float;  (** Jain's fairness index of the per-region coverages *)
}

val coverage_fairness :
  Broker_graph.Graph.t -> regions:int array -> n_regions:int -> brokers:int array -> fairness
(** How evenly a broker set covers the regions. *)
