(** Broker-set composition analysis — Fig. 5a (kind shares of the alliance)
    and Table 5 (example brokers with ranks). *)

type share = { kind : Broker_topo.Node_meta.kind; count : int; fraction : float }

val shares : Broker_topo.Topology.t -> brokers:int array -> share list
(** One entry per kind present in the broker set, largest first. *)

type ranked = { rank : int; node : int; kind : Broker_topo.Node_meta.kind; name : string; degree : int }

val ranking : Broker_topo.Topology.t -> brokers:int array -> ranked array
(** Brokers with their selection rank (selection order = rank, as the greedy
    algorithms emit most valuable first). *)

val first_ixp_ranks : Broker_topo.Topology.t -> brokers:int array -> int list
(** Selection ranks at which IXPs appear (Table 5 highlights how early IXPs
    are picked). *)
